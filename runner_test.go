package tapejuke_test

import (
	"reflect"
	"testing"

	"tapejuke"
)

// runnerConfigs is a gauntlet of configurations exercising every cache key
// the Runner holds: repeated identical configs (cache hits), layout changes
// (replicas, placement, partial fill), cost-table changes (block size,
// profile), workload model changes, serpentine profiles with and without
// RAO, multi-drive, and the fault and overload extensions whose runs skip
// request harvesting.
func runnerConfigs(horizon float64) []tapejuke.Config {
	base := tapejuke.Config{HorizonSec: horizon, Seed: 7}.WithDefaults()
	repl := base
	repl.Algorithm = tapejuke.EnvelopeMaxBandwidth
	repl.Placement = tapejuke.Vertical
	repl.Replicas = 9
	repl.StartPos = 1
	open := base
	open.QueueLength = 0
	open.MeanInterarrivalSec = 40
	blocks := base
	blocks.BlockMB = 8
	serp := base
	serp.DriveProfile = "lto9"
	rao := serp
	rao.RAO = true
	multi := base
	multi.Drives = 2
	faulty := base
	faulty.Faults.ReadTransientProb = 0.01
	faulty.Faults.MaxRetries = 2
	deadline := base
	deadline.Deadlines = tapejuke.DeadlineConfig{HotTTL: 4000, ColdTTL: 8000}
	return []tapejuke.Config{
		base, base, repl, base, blocks, serp, rao, serp, open,
		multi, faulty, deadline, base,
	}
}

// TestRunnerMatchesRun pins the Runner's contract: for every configuration,
// in any order, with caches hot or cold, Session reuse produces results
// identical to a fresh Run.
func TestRunnerMatchesRun(t *testing.T) {
	horizon := 150_000.0
	if testing.Short() {
		horizon = 40_000
	}
	r := tapejuke.NewRunner()
	for i, cfg := range runnerConfigs(horizon) {
		fresh, err := tapejuke.Run(cfg)
		if err != nil {
			t.Fatalf("config %d: Run: %v", i, err)
		}
		reused, err := r.Run(cfg)
		if err != nil {
			t.Fatalf("config %d: Runner.Run: %v", i, err)
		}
		if !reflect.DeepEqual(fresh, reused) {
			t.Errorf("config %d: Runner result diverges from Run:\nfresh:  %+v\nreused: %+v", i, fresh, reused)
		}
	}
}

// TestRunnerErrorRecovery checks that a failed run leaves the Runner usable
// and still result-identical to fresh runs.
func TestRunnerErrorRecovery(t *testing.T) {
	r := tapejuke.NewRunner()
	good := tapejuke.Config{HorizonSec: 40_000, Seed: 3}.WithDefaults()
	if _, err := r.Run(good); err != nil {
		t.Fatalf("good config: %v", err)
	}
	bad := good
	bad.DriveProfile = "no-such-drive"
	if _, err := r.Run(bad); err == nil {
		t.Fatal("expected an error for an unknown profile")
	}
	badRAO := good
	badRAO.RAO = true // helical profile: must be rejected
	if _, err := r.Run(badRAO); err == nil {
		t.Fatal("expected an error for RAO on a helical profile")
	}
	fresh, err := tapejuke.Run(good)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := r.Run(good)
	if err != nil {
		t.Fatalf("runner after failures: %v", err)
	}
	if !reflect.DeepEqual(fresh, reused) {
		t.Errorf("runner diverges after error recovery:\nfresh:  %+v\nreused: %+v", fresh, reused)
	}
}
