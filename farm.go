package tapejuke

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tapejuke/internal/farm"
	"tapejuke/internal/faults"
	"tapejuke/internal/layout"
	"tapejuke/internal/workload"
)

// FarmPlacement selects how hot-data copies are distributed across the
// farm's libraries; see the internal farm.Policy values for semantics.
type FarmPlacement string

const (
	// FarmLocal keeps the NR replicas inside each block's one home
	// library (the paper's scheme, hash-partitioned across libraries).
	FarmLocal FarmPlacement = "local"
	// FarmSpread puts the NR+1 copies of each hot block on NR+1 distinct
	// libraries, with request rotation and failover between them.
	FarmSpread FarmPlacement = "spread"
	// FarmMirror mirrors the whole farm-wide hot set onto every library.
	FarmMirror FarmPlacement = "mirror"
)

// TenantClass is one arrival class of the aggregated farm workload. The
// farm-level request rate is the sum over tenants; "millions of users"
// shows up as classes, not as a queue-length knob.
type TenantClass struct {
	// Name labels the class in diagnostics.
	Name string
	// MeanInterarrivalSec is the class's Poisson mean gap in seconds.
	MeanInterarrivalSec float64
	// ReadHotPercent is the class's RH; zero inherits the base config's.
	ReadHotPercent float64
}

// FarmConfig describes a farm of identical jukebox libraries fed by one
// aggregated open-model request stream through a hash router.
type FarmConfig struct {
	// Shards is the number of libraries (>= 1).
	Shards int
	// Placement distributes hot copies across libraries (default
	// FarmLocal; any policy collapses to FarmLocal at Shards == 1).
	Placement FarmPlacement
	// Workers bounds the goroutines simulating shards concurrently
	// (0 = GOMAXPROCS). Results are byte-identical at any worker count.
	Workers int
	// Tenants, when non-empty, aggregates several arrival classes.
	// Empty means one class at the base config's rate and skew.
	Tenants []TenantClass
	// Base configures each library and the per-library workload knobs.
	// It must use the open model (MeanInterarrivalSec > 0); the writes,
	// Zipf, and sequential extensions are per-library concerns the
	// router cannot split and are rejected.
	Base Config
	// ShardObserver, when non-nil, supplies one event observer per
	// shard index (Base.Observer must be nil: shards run concurrently,
	// so a shared observer would interleave nondeterministically).
	ShardObserver func(shard int) Observer `json:"-"`
}

// FarmResult aggregates one farm run. Per-shard metrics stay available in
// Shards; the scalars are deterministic shard-order reductions.
type FarmResult struct {
	// Shards holds each library's full Result, indexed by shard.
	Shards []*Result
	// Placement echoes the effective placement policy.
	Placement FarmPlacement
	// Routed counts requests the router sent to each shard; FailedOver
	// counts requests that skipped at least one dead copy holder.
	Routed     []int64
	FailedOver int64

	// Conservation ledger, whole-run, summed over shards:
	// TotalArrivals = TotalCompleted + Expired + Shed + Unserviceable +
	// Outstanding. (Rejected arrivals are turned away before minting and
	// so are not part of TotalArrivals, as in the single-library model.)
	TotalArrivals  int64
	TotalCompleted int64
	Expired        int64
	Shed           int64
	Rejected       int64
	Unserviceable  int64
	Outstanding    int64

	// Completed counts post-warmup completions; ThroughputKBps and
	// RequestsPerMinute are farm-wide sums over the common measurement
	// window.
	Completed         int64
	ThroughputKBps    float64
	RequestsPerMinute float64

	// MeanResponseSec is the completion-weighted mean over shards.
	// P50/P99 are completion-weighted quantiles over the per-shard
	// percentile scalars — an approximation (each shard summarizes its
	// own distribution first), good enough to rank placements.
	MeanResponseSec float64
	P50ResponseSec  float64
	P99ResponseSec  float64

	// Availability is post-warmup farm completions over completions plus
	// abandoned-every-copy-lost requests.
	Availability float64

	// RequestImbalance is max/mean over Routed; QueueImbalance is
	// max/mean over the shards' time-averaged queue lengths. 1.0 is a
	// perfectly balanced farm.
	RequestImbalance float64
	QueueImbalance   float64
}

// shardSeed spaces shard RNG universes the way replications are spaced
// elsewhere in the repo; shard 0 keeps the base seed, which is what makes
// a 1-shard farm bit-identical to a plain run.
func shardSeed(base int64, shard int) int64 { return base + int64(shard)*7919 }

// RunFarm simulates a farm of Shards identical libraries: it derives each
// library's layout from the placement policy, generates and routes the
// aggregated arrival stream, runs every shard's full discrete-event
// simulation (concurrently, on up to Workers goroutines), and merges the
// results deterministically. The merged result is byte-identical at any
// worker count, and a 1-shard farm reproduces Runner.Run of Base exactly.
func RunFarm(fc FarmConfig) (*FarmResult, error) {
	base := fc.Base.WithDefaults()
	pol, err := validateFarm(fc, base)
	if err != nil {
		return nil, err
	}
	n := fc.Shards

	cfgs := make([]Config, n)
	var traces []farm.Trace
	routed := make([]int64, n)
	var failedOver int64
	if n == 1 {
		// The farm layer is inert at one shard: no routing decision
		// exists, every placement stores the same blocks, and the shard
		// runs Base verbatim (trace-free), so the event stream is the
		// plain single-library one.
		cfgs[0] = base
	} else {
		shardCfg, lh, lc, fh, fcold, err := planPlacement(base, n, pol)
		if err != nil {
			return nil, err
		}
		dead, err := projectDeaths(shardCfg, base.Seed, n, pol)
		if err != nil {
			return nil, err
		}
		tenants, err := farmTenants(fc, base)
		if err != nil {
			return nil, err
		}
		split, err := farm.Split(farm.SplitConfig{
			Shards:    n,
			Policy:    pol,
			Copies:    base.Replicas,
			FarmHot:   fh,
			FarmCold:  fcold,
			LocalHot:  lh,
			LocalCold: lc,
			HotDeadAt: dead,
			Horizon:   base.HorizonSec,
			Tenants:   tenants,
			Seed:      base.Seed + 6,
		})
		if err != nil {
			return nil, err
		}
		traces = split.Traces
		routed = split.Routed
		failedOver = split.FailedOver
		for i := range cfgs {
			cfgs[i] = shardCfg
			cfgs[i].Seed = shardSeed(base.Seed, i)
		}
	}
	if fc.ShardObserver != nil {
		for i := range cfgs {
			cfgs[i].Observer = fc.ShardObserver(i)
		}
	}

	results, err := runShards(cfgs, traces, base.Seed, fc.Workers)
	if err != nil {
		return nil, err
	}
	if n == 1 {
		routed[0] = results[0].TotalArrivals
	}
	return mergeFarm(results, routed, failedOver, pol), nil
}

// validateFarm checks the farm-specific configuration surface and
// resolves the placement policy.
func validateFarm(fc FarmConfig, base Config) (farm.Policy, error) {
	if fc.Shards < 1 {
		return 0, fmt.Errorf("tapejuke: farm needs at least one shard, got %d", fc.Shards)
	}
	var pol farm.Policy
	switch fc.Placement {
	case FarmLocal, "":
		pol = farm.PlaceLocal
	case FarmSpread:
		pol = farm.PlaceSpread
	case FarmMirror:
		pol = farm.PlaceMirror
	default:
		return 0, fmt.Errorf("tapejuke: unknown farm placement %q", fc.Placement)
	}
	if fc.Shards == 1 {
		// Every policy stores the same single-library layout at N=1.
		pol = farm.PlaceLocal
	}
	if base.MeanInterarrivalSec <= 0 || base.QueueLength > 0 {
		return 0, errors.New("tapejuke: a farm aggregates open-model arrivals; set Base.MeanInterarrivalSec and leave QueueLength zero")
	}
	if base.Writes.MeanInterarrivalSec > 0 {
		return 0, errors.New("tapejuke: the farm router cannot split the write extension's delta stream")
	}
	if base.ZipfS > 0 || base.SequentialProb > 0 {
		return 0, errors.New("tapejuke: farm workloads use the two-class skew (ZipfS and SequentialProb unsupported)")
	}
	if base.Observer != nil {
		return 0, errors.New("tapejuke: shards run concurrently; use FarmConfig.ShardObserver instead of Base.Observer")
	}
	if base.Burst.Enabled() && len(fc.Tenants) > 1 {
		return 0, errors.New("tapejuke: burst modulation supports a single tenant class")
	}
	if pol == farm.PlaceSpread && base.Replicas+1 > fc.Shards {
		return 0, fmt.Errorf("tapejuke: spread placement cannot put %d copies on %d libraries; lower Replicas or add shards",
			base.Replicas+1, fc.Shards)
	}
	for i, t := range fc.Tenants {
		if t.MeanInterarrivalSec <= 0 {
			return 0, fmt.Errorf("tapejuke: tenant %d needs a positive mean interarrival", i)
		}
		if t.ReadHotPercent < 0 || t.ReadHotPercent > 100 {
			return 0, fmt.Errorf("tapejuke: tenant %d RH %v out of [0,100]", i, t.ReadHotPercent)
		}
	}
	return pol, nil
}

// planPlacement derives the per-shard library configuration for the
// placement policy plus the local and farm-wide hot/cold universe sizes.
// All shards share one geometry; only seeds differ.
//
// Storage accounting keeps the expansion factor E equal between FarmLocal
// and FarmSpread: under FarmLocal one library stores Hl hot blocks with
// NR+1 tape copies each plus Cl cold blocks; under FarmSpread it stores
// (NR+1)*Hl distinct hot blocks (each a single tape copy, the other
// copies living on other libraries) plus Cl cold blocks — the same block
// count, so the same E. FarmMirror stores the whole farm hot set (N*Hl)
// everywhere and is the expensive end of the trade.
func planPlacement(base Config, n int, pol farm.Policy) (shardCfg Config, localHot, localCold, farmHot, farmCold int, err error) {
	sc, err := base.toSim()
	if err != nil {
		return Config{}, 0, 0, 0, 0, err
	}
	layCfg, _, err := sc.LayoutConfig()
	if err != nil {
		return Config{}, 0, 0, 0, 0, err
	}
	lt, err := layout.Build(layCfg)
	if err != nil {
		return Config{}, 0, 0, 0, 0, fmt.Errorf("tapejuke: %w", err)
	}
	hl, cl := lt.NumHot(), lt.NumCold()
	farmHot, farmCold = n*hl, n*cl
	shardCfg = base
	switch pol {
	case farm.PlaceLocal:
		return shardCfg, hl, cl, farmHot, farmCold, nil
	case farm.PlaceSpread:
		stored := hl*(1+base.Replicas) + cl
		shardCfg.Replicas = 0
		shardCfg.DataMB = float64(stored) * base.BlockMB
		shardCfg.HotPercent = 100 * float64(hl*(1+base.Replicas)) / float64(stored)
	case farm.PlaceMirror:
		stored := n*hl + cl
		shardCfg.Replicas = 0
		shardCfg.DataMB = float64(stored) * base.BlockMB
		shardCfg.HotPercent = 100 * float64(n*hl) / float64(stored)
	}
	// Re-derive the actual layout the shards will build: integer rounding
	// in the hot count must match the engine exactly, not the intent.
	ssc, err := shardCfg.toSim()
	if err != nil {
		return Config{}, 0, 0, 0, 0, err
	}
	sLayCfg, _, err := ssc.LayoutConfig()
	if err != nil {
		return Config{}, 0, 0, 0, 0, err
	}
	sl, err := layout.Build(sLayCfg)
	if err != nil {
		if pol == farm.PlaceMirror {
			return Config{}, 0, 0, 0, 0, fmt.Errorf("tapejuke: mirrored hot set (%d blocks per library) does not fit: %w", n*hl, err)
		}
		return Config{}, 0, 0, 0, 0, fmt.Errorf("tapejuke: %w", err)
	}
	return shardCfg, sl.NumHot(), sl.NumCold(), farmHot, farmCold, nil
}

// projectDeaths pre-computes, per shard, when each local hot block loses
// its last in-library copy, by replaying the deterministic fault streams
// each shard's engine will draw (tape failure times and permanent
// bad-block ranges are fixed at injector construction). The router uses
// the projection for failover under spread/mirror placement. Latent
// errors surface only when read, so they stay invisible to the router —
// the shard handles them like a single library would. Returns nil when no
// copy-killing fault class is enabled or the policy has no failover.
func projectDeaths(shardCfg Config, baseSeed int64, n int, pol farm.Policy) ([][]float64, error) {
	if pol == farm.PlaceLocal {
		return nil, nil
	}
	fcf := shardCfg.Faults.toFaults()
	if fcf.TapeMTBFSec <= 0 && fcf.BadBlocksPerTape <= 0 {
		return nil, nil
	}
	sc, err := shardCfg.toSim()
	if err != nil {
		return nil, err
	}
	layCfg, capBlocks, err := sc.LayoutConfig()
	if err != nil {
		return nil, err
	}
	lay, err := layout.Build(layCfg)
	if err != nil {
		return nil, fmt.Errorf("tapejuke: %w", err)
	}
	drives := shardCfg.Drives
	if drives < 1 {
		drives = 1
	}
	dead := make([][]float64, n)
	for s := 0; s < n; s++ {
		fi := fcf
		if fi.Seed == 0 {
			fi.Seed = shardSeed(baseSeed, s) + 3
		}
		inj, err := faults.New(fi, shardCfg.Tapes, drives, capBlocks)
		if err != nil {
			return nil, fmt.Errorf("tapejuke: %w", err)
		}
		row := make([]float64, lay.NumHot())
		for b := range row {
			// A block dies when its last copy does; a copy inside a
			// permanent bad-block range is dead from the start.
			at := 0.0
			for _, cp := range lay.Replicas(layout.BlockID(b)) {
				copyAt := inj.TapeFailTime(cp.Tape)
				if inj.CopyDead(cp.Tape, cp.Pos) {
					copyAt = 0
				}
				if copyAt > at {
					at = copyAt
				}
			}
			row[b] = at
		}
		dead[s] = row
	}
	return dead, nil
}

// farmTenants builds the aggregated arrival classes. Tenant 0's stream
// derives from Seed+1 — the same universe a plain run's Poisson arrivals
// use — and later tenants space theirs like replications do.
func farmTenants(fc FarmConfig, base Config) ([]farm.Tenant, error) {
	mk := func(mean float64, idx int) (workload.Arrivals, error) {
		seed := base.Seed + 1 + int64(idx)*7919
		if b := base.Burst; b.Enabled() {
			if b.Seed != 0 {
				seed = b.Seed
			} else {
				seed = base.Seed + 5
			}
			return workload.NewBurstArrivals(mean, b.Factor, b.OnFrac, b.Period, b.FlashAt, b.FlashLen, seed)
		}
		return workload.NewPoissonArrivals(mean, seed)
	}
	if len(fc.Tenants) == 0 {
		arr, err := mk(base.MeanInterarrivalSec, 0)
		if err != nil {
			return nil, err
		}
		return []farm.Tenant{{Arrivals: arr, HotFrac: base.ReadHotPercent / 100}}, nil
	}
	ts := make([]farm.Tenant, len(fc.Tenants))
	for i, t := range fc.Tenants {
		arr, err := mk(t.MeanInterarrivalSec, i)
		if err != nil {
			return nil, err
		}
		rh := t.ReadHotPercent
		if rh == 0 {
			rh = base.ReadHotPercent
		}
		ts[i] = farm.Tenant{Arrivals: arr, HotFrac: rh / 100}
	}
	return ts, nil
}

// runShards simulates every shard configuration, fanning out over up to
// workers goroutines. Each worker owns one Runner (cached layouts, cost
// tables, scratch) and claims shard indices from an atomic counter;
// results land in per-shard slots, so the outcome is independent of the
// claim order — the same discipline as the figures grid.
func runShards(cfgs []Config, traces []farm.Trace, baseSeed int64, workers int) ([]*Result, error) {
	n := len(cfgs)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]*Result, n)
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rn := NewRunner()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				res, err := rn.runShard(cfgs[i], traces, i, baseSeed)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("tapejuke: shard %d: %w", i, err)
		}
	}
	return results, nil
}

// runShard runs one shard on this Runner, replaying its routed trace when
// the farm materialized one (multi-shard runs). The trace replaces both
// the arrival clock and the block generator; everything else — layout,
// scheduler, faults, overload machinery — is the ordinary per-library
// simulation.
func (r *Runner) runShard(c Config, traces []farm.Trace, shard int, baseSeed int64) (*Result, error) {
	sc, err := r.prepare(c)
	if err != nil {
		return nil, err
	}
	if traces != nil {
		tr := &traces[shard]
		sc.Arrivals = workload.NewTraceArrivals(tr.Times)
		sc.Source = workload.NewTraceSource(tr.Blocks, shardSeed(baseSeed, shard))
	}
	return r.sess.Run(*sc)
}

// mergeFarm reduces per-shard results in shard order (deterministic
// float summation) into the aggregate FarmResult.
func mergeFarm(results []*Result, routed []int64, failedOver int64, pol farm.Policy) *FarmResult {
	fr := &FarmResult{
		Shards:     results,
		Placement:  FarmPlacement(pol.String()),
		Routed:     routed,
		FailedOver: failedOver,
	}
	var unserv int64
	for _, r := range results {
		fr.TotalArrivals += r.TotalArrivals
		fr.TotalCompleted += r.TotalCompleted
		fr.Expired += r.Expired
		fr.Shed += r.Shed
		fr.Rejected += r.Rejected
		fr.Unserviceable += r.Unserviceable
		fr.Completed += r.Completed
		fr.ThroughputKBps += r.ThroughputKBps
		fr.RequestsPerMinute += r.RequestsPerMinute
		fr.MeanResponseSec += float64(r.Completed) * r.MeanResponseSec
		unserv += r.Unserviceable
	}
	fr.Outstanding = fr.TotalArrivals - fr.TotalCompleted - fr.Expired - fr.Shed - fr.Unserviceable
	if fr.Completed > 0 {
		fr.MeanResponseSec /= float64(fr.Completed)
	} else {
		fr.MeanResponseSec = 0
	}
	fr.P50ResponseSec = weightedQuantile(results, 0.50, func(r *Result) float64 { return r.P50ResponseSec })
	fr.P99ResponseSec = weightedQuantile(results, 0.99, func(r *Result) float64 { return r.P99ResponseSec })
	if fr.Completed+unserv > 0 {
		fr.Availability = float64(fr.Completed) / float64(fr.Completed+unserv)
	} else {
		fr.Availability = 1
	}
	fr.RequestImbalance = maxOverMeanInt(routed)
	queues := make([]float64, len(results))
	for i, r := range results {
		queues[i] = r.MeanQueueLen
	}
	fr.QueueImbalance = maxOverMean(queues)
	return fr
}

// weightedQuantile takes the completion-weighted q-quantile of a
// per-shard scalar: shards sorted by value (ties by index), pick the
// first whose cumulative completion weight reaches q of the total.
func weightedQuantile(results []*Result, q float64, val func(*Result) float64) float64 {
	type wv struct {
		v float64
		w int64
	}
	var total int64
	vs := make([]wv, 0, len(results))
	for _, r := range results {
		if r.Completed > 0 {
			vs = append(vs, wv{val(r), r.Completed})
			total += r.Completed
		}
	}
	if total == 0 {
		return 0
	}
	sort.SliceStable(vs, func(i, j int) bool { return vs[i].v < vs[j].v })
	need := q * float64(total)
	var cum int64
	for _, e := range vs {
		cum += e.w
		if float64(cum) >= need {
			return e.v
		}
	}
	return vs[len(vs)-1].v
}

// maxOverMeanInt returns max/mean of non-negative counts (1 when the
// mean is zero: an empty farm is trivially balanced).
func maxOverMeanInt(xs []int64) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return maxOverMean(fs)
}

func maxOverMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var max, sum float64
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	mean := sum / float64(len(xs))
	if mean <= 0 || math.IsNaN(mean) {
		return 1
	}
	return max / mean
}
