#!/usr/bin/env bash
# Runs the scheduler-critical benchmarks and records them in
# BENCH_sched.json via cmd/benchdiff, so every PR leaves a perf
# trajectory behind.
#
# Usage:
#   scripts/bench.sh LABEL [BASELINE_LABEL]
#
# LABEL names this run's entry in BENCH_sched.json (re-running with the
# same label updates it in place). With BASELINE_LABEL the run is also
# diffed against that recorded entry and the script fails on a >20% ns/op
# regression.
set -euo pipefail
cd "$(dirname "$0")/.."

label=${1:?usage: scripts/bench.sh LABEL [BASELINE_LABEL]}
base=${2:-}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
    -bench 'BenchmarkFullRun|BenchmarkAblationEnvelopeMaxBandwidthRepl|BenchmarkAblationDynamicMaxBandwidthRepl|BenchmarkAblationTwoDrives|BenchmarkSimulationDefault|BenchmarkFarmRun' \
    -benchmem -benchtime 1s . | tee "$tmp"
go test -run '^$' \
    -bench 'BenchmarkUpperEnvelope|BenchmarkEnvelopeReschedule|BenchmarkEnvelopeOnArrival' \
    -benchmem -benchtime 1s ./internal/core | tee -a "$tmp"
go test -run '^$' \
    -bench 'BenchmarkFaultRepairIdle|BenchmarkScrubIdle' \
    -benchmem -benchtime 1s ./internal/sim | tee -a "$tmp"

# Tracked pair for the experiment engine: BenchmarkFullRun above measures
# one warm-context run; this measures the real `figures -full` wall time
# (every figure at the paper's 10M-second horizon, all cores). Recorded as
# a synthetic one-iteration benchmark line so benchdiff tracks it like any
# other. Skip with FIGURES_FULL=0 when iterating on micro-benchmarks.
if [ "${FIGURES_FULL:-1}" != "0" ]; then
    go build -o "$tmp.figures" ./cmd/figures
    start=$(date +%s%N)
    "$tmp.figures" -full > /dev/null
    elapsed=$(( $(date +%s%N) - start ))
    rm -f "$tmp.figures"
    echo "BenchmarkFiguresFullWall 1 $elapsed ns/op" | tee -a "$tmp"
fi

if [ -n "$base" ]; then
    go run ./cmd/benchdiff -in "$tmp" -json BENCH_sched.json -label "$label" -compare "$base"
else
    go run ./cmd/benchdiff -in "$tmp" -json BENCH_sched.json -label "$label"
fi
