#!/usr/bin/env bash
# Pre-merge gate: vet, build, and race-test the internal packages, then
# the full test suite. Run before every merge (see README).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test -race -short ./..."
go test -race -short ./...
echo "== go test ./..."
go test ./...
echo "check.sh: all green"
