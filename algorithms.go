package tapejuke

import (
	"fmt"

	"tapejuke/internal/core"
	"tapejuke/internal/sched"
)

// Scheduler is a retrieval-scheduling algorithm: a major rescheduler that
// picks a tape and builds a service list at tape-switch time, plus an
// incremental scheduler for requests arriving mid-sweep.
type Scheduler = sched.Scheduler

// Algorithm names a scheduling algorithm from the paper.
type Algorithm string

// The fourteen algorithms of Section 3. FIFO is the baseline; the five
// static and five dynamic algorithms differ in their tape-selection policy;
// the three envelope algorithms are the paper's contribution (Section 3.2).
const (
	FIFO Algorithm = "fifo"

	StaticRoundRobin         Algorithm = "static-round-robin"
	StaticMaxRequests        Algorithm = "static-max-requests"
	StaticMaxBandwidth       Algorithm = "static-max-bandwidth"
	StaticOldestMaxRequests  Algorithm = "static-oldest-max-requests"
	StaticOldestMaxBandwidth Algorithm = "static-oldest-max-bandwidth"

	DynamicRoundRobin         Algorithm = "dynamic-round-robin"
	DynamicMaxRequests        Algorithm = "dynamic-max-requests"
	DynamicMaxBandwidth       Algorithm = "dynamic-max-bandwidth"
	DynamicOldestMaxRequests  Algorithm = "dynamic-oldest-max-requests"
	DynamicOldestMaxBandwidth Algorithm = "dynamic-oldest-max-bandwidth"

	EnvelopeOldestRequest Algorithm = "envelope-oldest-request"
	EnvelopeMaxRequests   Algorithm = "envelope-max-requests"
	EnvelopeMaxBandwidth  Algorithm = "envelope-max-bandwidth"
)

// Algorithms lists every available algorithm in presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{
		FIFO,
		StaticRoundRobin, StaticMaxRequests, StaticMaxBandwidth,
		StaticOldestMaxRequests, StaticOldestMaxBandwidth,
		DynamicRoundRobin, DynamicMaxRequests, DynamicMaxBandwidth,
		DynamicOldestMaxRequests, DynamicOldestMaxBandwidth,
		EnvelopeOldestRequest, EnvelopeMaxRequests, EnvelopeMaxBandwidth,
	}
}

// NewScheduler instantiates a fresh scheduler for the named algorithm.
// Scheduler instances are stateful and must not be shared across runs.
func NewScheduler(a Algorithm) (Scheduler, error) {
	switch a {
	case FIFO:
		return sched.NewFIFO(), nil
	case StaticRoundRobin:
		return sched.NewStatic(sched.RoundRobin), nil
	case StaticMaxRequests:
		return sched.NewStatic(sched.MaxRequests), nil
	case StaticMaxBandwidth:
		return sched.NewStatic(sched.MaxBandwidth), nil
	case StaticOldestMaxRequests:
		return sched.NewStatic(sched.OldestMaxRequests), nil
	case StaticOldestMaxBandwidth:
		return sched.NewStatic(sched.OldestMaxBandwidth), nil
	case DynamicRoundRobin:
		return sched.NewDynamic(sched.RoundRobin), nil
	case DynamicMaxRequests:
		return sched.NewDynamic(sched.MaxRequests), nil
	case DynamicMaxBandwidth:
		return sched.NewDynamic(sched.MaxBandwidth), nil
	case DynamicOldestMaxRequests:
		return sched.NewDynamic(sched.OldestMaxRequests), nil
	case DynamicOldestMaxBandwidth:
		return sched.NewDynamic(sched.OldestMaxBandwidth), nil
	case EnvelopeOldestRequest:
		return core.NewEnvelope(core.OldestRequest), nil
	case EnvelopeMaxRequests:
		return core.NewEnvelope(core.MaxRequests), nil
	case EnvelopeMaxBandwidth:
		return core.NewEnvelope(core.MaxBandwidth), nil
	}
	return nil, fmt.Errorf("tapejuke: unknown algorithm %q", a)
}
