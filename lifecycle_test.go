package tapejuke

import (
	"strings"
	"testing"
)

// TestPlanGradualFillEdges covers the error and boundary paths of the
// public gradual-fill planner that TestPlanGradualFill's happy-path walk
// does not reach: errors propagated from the internal planner, the
// partial-replication stage, and the not-quite-full recapture edge.
func TestPlanGradualFillEdges(t *testing.T) {
	const capacityMB = 10 * 7168.0

	t.Run("data exceeds capacity", func(t *testing.T) {
		cfg := Config{DataMB: capacityMB + 16}
		if _, _, err := PlanGradualFill(cfg); err == nil {
			t.Error("overfull jukebox accepted")
		} else if !strings.Contains(err.Error(), "fit") {
			t.Errorf("unexpected overfull error: %v", err)
		}
	})

	t.Run("single tape", func(t *testing.T) {
		// WithDefaults only replaces a zero tape count, so one tape
		// reaches the internal planner and must be rejected there.
		cfg := Config{Tapes: 1, DataMB: 1000}
		if _, _, err := PlanGradualFill(cfg); err == nil {
			t.Error("single-tape jukebox accepted")
		}
	})

	t.Run("hot percent out of range", func(t *testing.T) {
		for _, ph := range []float64{-5, 150} {
			cfg := Config{DataMB: 1000, HotPercent: ph}
			if _, _, err := PlanGradualFill(cfg); err == nil {
				t.Errorf("hot percent %v accepted", ph)
			}
		}
	})

	t.Run("partial stage", func(t *testing.T) {
		// 90% full: spare covers one replica set of the 10%-hot data but
		// nowhere near full replication.
		cfg := Config{DataMB: 0.9 * capacityMB}
		planned, plan, err := PlanGradualFill(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Stage != FillPartial {
			t.Errorf("90%% fill stage = %v, want partial", plan.Stage)
		}
		if plan.Replicas < 1 || plan.Replicas >= 9 {
			t.Errorf("90%% fill replicas = %d, want partial replication", plan.Replicas)
		}
		if planned.Replicas != plan.Replicas || !planned.PackAfterData {
			t.Errorf("partial config not materialized: %+v", planned)
		}
		if plan.Fill <= 0.8 || plan.Fill > 0.95 {
			t.Errorf("reported fill %v inconsistent with 90%% occupancy", plan.Fill)
		}
		if plan.Rationale == "" {
			t.Error("partial plan carries no rationale")
		}
		planned.HorizonSec = 50_000
		if _, err := Run(planned); err != nil {
			t.Errorf("partial-stage config does not run: %v", err)
		}
	})

	t.Run("recapture before completely full", func(t *testing.T) {
		// 97% full: spare capacity exists but no longer holds a whole
		// replica set, so the procedure falls back to recapture with hot
		// data at the tape beginnings.
		cfg := Config{DataMB: 0.97 * capacityMB}
		planned, plan, err := PlanGradualFill(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Stage != FillRecapture || plan.Replicas != 0 {
			t.Errorf("97%% fill plan: %+v", plan)
		}
		if planned.Replicas != 0 || planned.PackAfterData || planned.StartPos != 0 {
			t.Errorf("recapture config not materialized: %+v", planned)
		}
		if planned.Placement != Horizontal {
			t.Errorf("recapture placement = %v, want horizontal", planned.Placement)
		}
	})
}
