package tapejuke

import (
	"tapejuke/internal/sim"
)

// Overload-extension event kinds.
const (
	// EventExpire reports a request cancelled at its deadline.
	EventExpire = sim.EventExpire
	// EventShed reports a pending request dropped by AdmitShed overflow.
	EventShed = sim.EventShed
	// EventReject reports an arrival turned away by AdmitReject overflow.
	EventReject = sim.EventReject
)

// DeadlineConfig assigns per-class request deadlines (TTLs); see the
// internal sim package mirror of this type for field documentation.
type DeadlineConfig = sim.DeadlineConfig

// AdmissionConfig bounds the number of outstanding requests, turning the
// overflow away by policy.
type AdmissionConfig = sim.AdmissionConfig

// AdmitPolicy selects what a bounded admission queue does on overflow.
type AdmitPolicy = sim.AdmitPolicy

// Admission overflow policies.
const (
	// AdmitNone disables admission control (unbounded queue).
	AdmitNone = sim.AdmitNone
	// AdmitReject turns the newly arriving request away.
	AdmitReject = sim.AdmitReject
	// AdmitShed drops the oldest pending request to admit the newcomer.
	AdmitShed = sim.AdmitShed
)

// BurstConfig makes the arrival process bursty: ON-OFF rate modulation and
// flash-crowd windows for the open model, one-shot flash crowds for the
// closed model.
type BurstConfig = sim.BurstConfig

// DegradeConfig enables graceful degradation under sustained overload:
// sweep truncation to the most urgent requests and write-flush deferral.
type DegradeConfig = sim.DegradeConfig

// ConfigError is the typed validation error reported for bad
// overload-robustness configurations, retrievable with errors.As.
type ConfigError = sim.ConfigError
