// Command figures regenerates the paper's evaluation figures (1 and 3-10)
// as tab-separated series.
//
// Usage:
//
//	figures                 # all figures at the default 1M s horizon
//	figures -fig fig6       # one figure
//	figures -quick          # 200k s horizon (coarse but fast)
//	figures -full           # the paper's 10M s horizon
//	figures -open           # open-queuing variants of the parametric figures
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"tapejuke/figures"
)

// main delegates to run so that deferred cleanups -- in particular flushing
// an in-progress CPU or heap profile -- execute on every exit path, which
// os.Exit would skip.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		fig     = flag.String("fig", "", "regenerate a single figure (fig1, fig3..fig9, fig10a, fig10b)")
		quick   = flag.Bool("quick", false, "200,000 s horizon")
		full    = flag.Bool("full", false, "the paper's 10,000,000 s horizon")
		open    = flag.Bool("open", false, "open-queuing (Poisson) variants")
		horizon = flag.Float64("horizon", 0, "explicit horizon in simulated seconds")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0,
			fmt.Sprintf("concurrent simulations (0 = GOMAXPROCS, here %d)", runtime.GOMAXPROCS(0)))
		svgDir     = flag.String("svg", "", "also render each figure as an SVG chart into this directory")
		reps       = flag.Int("reps", 1, "replications per point (reports 95% confidence half-widths)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "figures: writing heap profile:", err)
			}
		}()
	}

	opts := figures.Options{Seed: *seed, Open: *open, Workers: *workers, Replications: *reps}
	switch {
	case *horizon > 0:
		opts.HorizonSec = *horizon
	case *quick:
		opts.HorizonSec = 200_000
	case *full:
		opts.HorizonSec = 10_000_000
	}

	var figs []*figures.Figure
	var err error
	if *fig != "" {
		var f *figures.Figure
		f, err = figures.ByID(*fig, opts)
		figs = []*figures.Figure{f}
	} else {
		figs, err = figures.All(opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 1
	}

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		for _, f := range figs {
			path := filepath.Join(*svgDir, f.ID+".svg")
			out, err := os.Create(path)
			if err == nil {
				err = f.RenderSVG(out, figures.PlotAuto)
				if cerr := out.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	for _, f := range figs {
		fmt.Printf("# %s: %s\n", f.ID, f.Title)
		valueCol := f.ValueName
		if valueCol == "" {
			valueCol = "-"
		}
		hasCI := *reps > 1
		for _, r := range f.Rows {
			if r.ThroughputCI95 > 0 || r.ResponseCI95 > 0 {
				hasCI = true
				break
			}
		}
		if hasCI {
			fmt.Printf("figure\tseries\t%s\tthroughput_kbps\tthroughput_ci95\treq_per_min\tmean_response_s\tresponse_ci95\t%s\n",
				f.ParamName, valueCol)
			for _, r := range f.Rows {
				fmt.Printf("%s\t%s\t%g\t%.2f\t%.2f\t%.4f\t%.1f\t%.1f\t%.4f\n",
					f.ID, r.Series, r.Param,
					r.ThroughputKBps, r.ThroughputCI95, r.RequestsPerMinute,
					r.MeanResponseSec, r.ResponseCI95, r.Value)
			}
		} else {
			fmt.Printf("figure\tseries\t%s\tthroughput_kbps\treq_per_min\tmean_response_s\t%s\n",
				f.ParamName, valueCol)
			for _, r := range f.Rows {
				fmt.Printf("%s\t%s\t%g\t%.2f\t%.4f\t%.1f\t%.4f\n",
					f.ID, r.Series, r.Param,
					r.ThroughputKBps, r.RequestsPerMinute, r.MeanResponseSec, r.Value)
			}
		}
		fmt.Println()
	}
	return 0
}
