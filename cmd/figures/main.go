// Command figures regenerates the paper's evaluation figures (1 and 3-10)
// as tab-separated series.
//
// Usage:
//
//	figures                 # all figures at the default 1M s horizon
//	figures -fig fig6       # one figure
//	figures -quick          # 200k s horizon (coarse but fast)
//	figures -full           # the paper's 10M s horizon
//	figures -open           # open-queuing variants of the parametric figures
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"tapejuke/figures"
)

// main delegates to run so that deferred cleanups -- in particular flushing
// an in-progress CPU or heap profile -- execute on every exit path, which
// os.Exit would skip.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		fig     = flag.String("fig", "", "regenerate a single figure (fig1, fig3..fig9, fig10a, fig10b, or an extension: convergence, serpentine, lto9, multidrive, gradualfill, repair, health, farm)")
		quick   = flag.Bool("quick", false, "200,000 s horizon")
		full    = flag.Bool("full", false, "the paper's 10,000,000 s horizon")
		open    = flag.Bool("open", false, "open-queuing (Poisson) variants")
		horizon = flag.Float64("horizon", 0, "explicit horizon in simulated seconds")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0,
			fmt.Sprintf("concurrent simulations (0 = GOMAXPROCS, here %d)", runtime.GOMAXPROCS(0)))
		svgDir     = flag.String("svg", "", "also render each figure as an SVG chart into this directory")
		reps       = flag.Int("reps", 1, "replications per point (reports 95% confidence half-widths)")
		drive      = flag.String("drive", "", "drive profile for the simulated figures (default exb8505xl; also: fast, dlt7000, lto9)")
		rao        = flag.Bool("rao", false, "apply Recommended-Access-Order sweep reordering (requires -drive dlt7000 or lto9)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "figures: -workers must be >= 0 (0 = GOMAXPROCS), got %d\n", *workers)
		return 1
	}
	if *reps < 1 {
		fmt.Fprintf(os.Stderr, "figures: -reps must be >= 1, got %d\n", *reps)
		return 1
	}
	if *rao && *drive != "dlt7000" && *drive != "lto9" {
		fmt.Fprintf(os.Stderr, "figures: -rao requires a serpentine drive (-drive dlt7000 or -drive lto9), got %q\n", *drive)
		return 1
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "figures: writing heap profile:", err)
			}
		}()
	}

	opts := figures.Options{
		Seed: *seed, Open: *open, Workers: *workers, Replications: *reps,
		DriveProfile: *drive, RAO: *rao,
	}
	switch {
	case *horizon > 0:
		opts.HorizonSec = *horizon
	case *quick:
		opts.HorizonSec = 200_000
	case *full:
		opts.HorizonSec = 10_000_000
	}

	var figs []*figures.Figure
	var err error
	if *fig != "" {
		var f *figures.Figure
		f, err = figures.ByID(*fig, opts)
		figs = []*figures.Figure{f}
	} else {
		figs, err = figures.All(opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 1
	}

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		for _, f := range figs {
			path := filepath.Join(*svgDir, f.ID+".svg")
			out, err := os.Create(path)
			if err == nil {
				err = f.RenderSVG(out, figures.PlotAuto)
				if cerr := out.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	for _, f := range figs {
		if err := f.WriteTSV(os.Stdout, *reps > 1); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
	}
	return 0
}
