// Command juketrace records a simulation's event stream to a JSON-lines
// trace file and summarizes recorded traces, the way an operator would
// inspect a real jukebox's activity log.
//
// Usage:
//
//	juketrace record -out run.trace [-alg ... -queue ... -horizon ...]
//	juketrace summarize run.trace
//	juketrace verify run.trace     # replay against the timing model
package main

import (
	"flag"
	"fmt"
	"os"

	"tapejuke"
	"tapejuke/internal/tapemodel"
	"tapejuke/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "summarize":
		summarize(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: juketrace record -out FILE [flags] | juketrace summarize FILE | juketrace verify FILE")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		out     = fs.String("out", "run.trace", "trace output file")
		alg     = fs.String("alg", string(tapejuke.EnvelopeMaxBandwidth), "scheduling algorithm")
		queue   = fs.Int("queue", 60, "closed-model queue length")
		nr      = fs.Int("nr", 0, "replicas of each hot block")
		horizon = fs.Float64("horizon", 500_000, "simulated seconds")
		seed    = fs.Int64("seed", 1, "random seed")
	)
	fs.Parse(args)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	rec := trace.NewRecorder(f)
	cfg := tapejuke.Config{
		Algorithm:   tapejuke.Algorithm(*alg),
		QueueLength: *queue,
		Replicas:    *nr,
		HorizonSec:  *horizon,
		Seed:        *seed,
		Observer:    rec,
	}
	if *nr > 0 {
		cfg.Placement = tapejuke.Vertical
		cfg.StartPos = 1
	}
	res, err := tapejuke.Run(cfg.WithDefaults())
	if err != nil {
		fatal(err)
	}
	if err := rec.Flush(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d events to %s (%d completions, %.1f KB/s)\n",
		rec.Count(), *out, res.TotalCompleted, res.ThroughputKBps)
}

func summarize(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	trace.Summarize(recs).Format(os.Stdout)
}

func verify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	var (
		profile = fs.String("profile", "exb8505xl", "drive profile the trace was recorded with")
		blockMB = fs.Float64("block", 16, "transfer size in MB")
		tapes   = fs.Int("tapes", 10, "tapes in the jukebox")
		capMB   = fs.Float64("cap", 7168, "tape capacity in MB")
		tol     = fs.Float64("tol", 1e-6, "tolerance in seconds")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	prof := tapemodel.PositionerByName(*profile)
	if prof == nil {
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}
	rep, err := trace.Verify(recs, prof, *blockMB, *tapes, int(*capMB / *blockMB), *tol)
	if err != nil {
		fatal(err)
	}
	if rep.OK() {
		fmt.Printf("ok: %d operations replayed, all durations match the %s model\n",
			rep.Operations, *profile)
		return
	}
	fmt.Printf("FAILED: %d of %d operations disagree (max error %.3f s)\n",
		rep.Mismatches, rep.Operations, rep.MaxError)
	fmt.Println(rep.First)
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "juketrace:", err)
	os.Exit(1)
}
