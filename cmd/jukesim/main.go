// Command jukesim runs a single tape-jukebox simulation and prints its
// metrics.
//
// Usage examples:
//
//	jukesim                                  # paper defaults
//	jukesim -alg envelope-max-bandwidth -nr 9 -sp 1 -placement vertical
//	jukesim -interarrival 120 -queue 0       # open-queuing model
//	jukesim -format csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"tapejuke"
)

// main delegates to run so that deferred cleanups -- in particular flushing
// an in-progress CPU or heap profile -- execute on every exit path, which
// os.Exit would skip.
func main() {
	os.Exit(run())
}

// usage prints the flag help grouped into labeled sections, so each
// extension's flags read as a unit instead of one alphabetical wall.
func usage() {
	out := flag.CommandLine.Output()
	sections := []struct {
		title    string
		prefixes []string
	}{
		{"Workload, scheduling, and output", nil}, // everything unclaimed
		{"Jukebox farm", []string{"farm-"}},
		{"Delta writes", []string{"write-"}},
		{"Fault injection", []string{"fault-"}},
		{"Overload handling", []string{"deadline-", "admit-", "burst-", "degrade-", "age-weight"}},
		{"Self-healing repair", []string{"repair"}},
		{"Media health", []string{"health", "scrub-"}},
	}
	claim := func(name string) int {
		for i := 1; i < len(sections); i++ {
			for _, p := range sections[i].prefixes {
				if name == strings.TrimSuffix(p, "-") || strings.HasPrefix(name, strings.TrimSuffix(p, "-")+"-") {
					return i
				}
			}
		}
		return 0
	}
	grouped := make([][]*flag.Flag, len(sections))
	flag.VisitAll(func(f *flag.Flag) {
		i := claim(f.Name)
		grouped[i] = append(grouped[i], f)
	})
	fmt.Fprintln(out, "Usage: jukesim [flags]")
	for i, sec := range sections {
		if len(grouped[i]) == 0 {
			continue
		}
		fmt.Fprintf(out, "\n%s:\n", sec.title)
		for _, f := range grouped[i] {
			name, help := flag.UnquoteUsage(f)
			if name != "" {
				name = " " + name
			}
			if f.DefValue != "" && f.DefValue != "0" && f.DefValue != "false" {
				help += fmt.Sprintf(" (default %s)", f.DefValue)
			}
			fmt.Fprintf(out, "  -%s%s\n    \t%s\n", f.Name, name, help)
		}
	}
}

// parseTenants decodes the -farm-tenants list: comma-separated
// mean[:rh] pairs, where mean is the class's Poisson interarrival in
// seconds and rh its hot-read percent (empty rh inherits -rh).
func parseTenants(s string) ([]tapejuke.TenantClass, error) {
	if s == "" {
		return nil, nil
	}
	var ts []tapejuke.TenantClass
	for i, part := range strings.Split(s, ",") {
		mean, rhStr, _ := strings.Cut(strings.TrimSpace(part), ":")
		t := tapejuke.TenantClass{Name: fmt.Sprintf("class%d", i)}
		if _, err := fmt.Sscanf(mean, "%g", &t.MeanInterarrivalSec); err != nil {
			return nil, fmt.Errorf("tenant %d: bad mean interarrival %q", i, mean)
		}
		if rhStr != "" {
			if _, err := fmt.Sscanf(rhStr, "%g", &t.ReadHotPercent); err != nil {
				return nil, fmt.Errorf("tenant %d: bad RH %q", i, rhStr)
			}
		}
		ts = append(ts, t)
	}
	return ts, nil
}

// runFarm executes a farm simulation and prints its ledger: aggregate
// lines, the conservation identity, and a per-shard summary table.
func runFarm(fc tapejuke.FarmConfig, format string) int {
	fr, err := tapejuke.RunFarm(fc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jukesim:", err)
		return 1
	}
	if strings.ToLower(format) == "csv" {
		fmt.Println("shard,requests,completed,throughput_kbps,availability,p99_response_s,mean_queue")
		for s, r := range fr.Shards {
			fmt.Printf("%d,%d,%d,%.2f,%.4f,%.1f,%.1f\n",
				s, fr.Routed[s], r.Completed, r.ThroughputKBps, r.Availability, r.P99ResponseSec, r.MeanQueueLen)
		}
		fmt.Printf("total,%d,%d,%.2f,%.4f,%.1f,\n",
			fr.TotalArrivals, fr.Completed, fr.ThroughputKBps, fr.Availability, fr.P99ResponseSec)
		return 0
	}
	workers := fc.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("farm                 %d shards, %s placement, %d workers\n", fc.Shards, fr.Placement, workers)
	fmt.Printf("farm throughput      %.1f KB/s aggregate (%.3f requests/minute)\n", fr.ThroughputKBps, fr.RequestsPerMinute)
	fmt.Printf("farm response        mean %.1f s, p50 %.1f s, p99 %.1f s (completion-weighted)\n",
		fr.MeanResponseSec, fr.P50ResponseSec, fr.P99ResponseSec)
	fmt.Printf("farm availability    %.4f (%d unserviceable, %d failed over)\n",
		fr.Availability, fr.Unserviceable, fr.FailedOver)
	fmt.Printf("farm imbalance       requests %.3f max/mean, queue %.3f max/mean\n",
		fr.RequestImbalance, fr.QueueImbalance)
	sum := fr.TotalCompleted + fr.Expired + fr.Shed + fr.Unserviceable + fr.Outstanding
	verdict := "ok"
	if sum != fr.TotalArrivals {
		verdict = "VIOLATED"
	}
	fmt.Printf("farm conservation    %s (%d arrivals = %d completed + %d expired + %d shed + %d unserviceable + %d outstanding)\n",
		verdict, fr.TotalArrivals, fr.TotalCompleted, fr.Expired, fr.Shed, fr.Unserviceable, fr.Outstanding)
	fmt.Println("per-shard summary")
	fmt.Printf("  %5s %10s %10s %11s %8s %10s %11s\n",
		"shard", "requests", "completed", "tput_KB/s", "avail", "p99_s", "mean_queue")
	for s, r := range fr.Shards {
		fmt.Printf("  %5d %10d %10d %11.1f %8.4f %10.1f %11.1f\n",
			s, fr.Routed[s], r.Completed, r.ThroughputKBps, r.Availability, r.P99ResponseSec, r.MeanQueueLen)
	}
	if verdict != "ok" {
		return 1
	}
	return 0
}

// startCPUProfile begins CPU profiling into path and returns the stop
// function, or an error. The caller must defer the stop.
func startCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile records an up-to-date heap profile at path.
func writeMemProfile(path, prog string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize the final live set
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "%s: writing heap profile: %v\n", prog, err)
	}
}

func run() int {
	var (
		alg         = flag.String("alg", string(tapejuke.DynamicMaxBandwidth), "scheduling algorithm (see -list)")
		list        = flag.Bool("list", false, "list available algorithms and exit")
		profile     = flag.String("profile", "exb8505xl", "drive profile: exb8505xl, fast, dlt7000, or lto9")
		blockMB     = flag.Float64("block", 16, "transfer size in MB")
		tapes       = flag.Int("tapes", 10, "tapes in the jukebox")
		drives      = flag.Int("drives", 1, "drives sharing the tapes (multi-drive extension)")
		capMB       = flag.Float64("cap", 7168, "tape capacity in MB")
		ph          = flag.Float64("ph", 10, "percent of data that is hot (PH)")
		rh          = flag.Float64("rh", 40, "percent of requests to hot data (RH)")
		zipf        = flag.Float64("zipf", 0, "Zipf popularity exponent (>1; 0 = paper's hot/cold model)")
		dataMB      = flag.Float64("data", 0, "base data volume in MB (0 = fill the jukebox)")
		nr          = flag.Int("nr", 0, "replicas of each hot block (NR)")
		placement   = flag.String("placement", "horizontal", "hot layout: horizontal or vertical")
		sp          = flag.Float64("sp", 0, "hot region start position in [0,1] (SP)")
		rao         = flag.Bool("rao", false, "Recommended-Access-Order sweep reordering (serpentine profiles only)")
		queue       = flag.Int("queue", 60, "closed-model queue length (0 with -interarrival)")
		interarrive = flag.Float64("interarrival", 0, "open-model mean interarrival seconds (0 = closed)")
		horizon     = flag.Float64("horizon", 2e6, "simulated seconds")
		seed        = flag.Int64("seed", 1, "random seed")
		writeEvery  = flag.Float64("write-interarrival", 0, "mean seconds between delta writes (0 = no writes)")
		writePolicy = flag.String("write-policy", "piggyback", "delta flush policy: piggyback, idle-only, piggyback+idle")
		transient   = flag.Float64("fault-transient", 0, "transient read-error probability per attempt")
		badBlocks   = flag.Float64("fault-bad-blocks", 0, "expected bad-block ranges per tape")
		tapeMTBF    = flag.Float64("fault-tape-mtbf", 0, "mean seconds to permanent tape failure (0 = never)")
		driveMTBF   = flag.Float64("fault-drive-mtbf", 0, "mean seconds between drive failures (0 = never)")
		driveRepair = flag.Float64("fault-drive-repair", 0, "drive repair downtime seconds (default 3600 when enabled)")
		switchFail  = flag.Float64("fault-switch", 0, "tape load failure probability per attempt")
		latentPer   = flag.Float64("fault-latent", 0, "expected latent errors per tape (silent until read)")
		latentOnset = flag.Float64("fault-latent-onset", 0, "mean latent-error onset seconds (default 500000)")
		faultSeed   = flag.Int64("fault-seed", 0, "fault stream seed (0 = derive from -seed)")
		hotTTL      = flag.Float64("deadline-hot-ttl", 0, "mean TTL seconds for hot-block requests (0 = no deadline)")
		coldTTL     = flag.Float64("deadline-cold-ttl", 0, "mean TTL seconds for cold-block requests (0 = no deadline)")
		fixedTTL    = flag.Bool("deadline-fixed", false, "use the TTL means as exact deadlines instead of exponential draws")
		admitMax    = flag.Int("admit-max-queue", 0, "outstanding-request admission bound (0 = unbounded)")
		admitPolicy = flag.String("admit-policy", "none", "admission overflow policy: none, reject, shed")
		burstFactor = flag.Float64("burst-factor", 0, "arrival-rate multiplier while bursting")
		burstOnFrac = flag.Float64("burst-on-frac", 0, "fraction of an ON-OFF cycle spent bursting (open model)")
		burstPeriod = flag.Float64("burst-period", 0, "mean ON-OFF cycle seconds (0 = no modulation; open model)")
		flashAt     = flag.Float64("burst-flash-at", 0, "flash-crowd start time in seconds")
		flashLen    = flag.Float64("burst-flash-len", 0, "flash-crowd window seconds (open model)")
		flashCount  = flag.Int("burst-flash-count", 0, "one-shot flash-crowd request count (closed model)")
		ageWeight   = flag.Float64("age-weight", 0, "starvation-aware aging weight in tape selection (0 = off)")
		degradeQ    = flag.Int("degrade-queue", 0, "outstanding-request threshold for graceful degradation (0 = off)")
		degradeMax  = flag.Int("degrade-max-sweep", 0, "truncate sweeps to this many requests while overloaded")
		degradeDW   = flag.Bool("degrade-defer-writes", false, "defer delta-write flushes while overloaded")
		repairOn    = flag.Bool("repair", false, "rebuild lost replicas in drive idle time (self-healing replication)")
		repairHL    = flag.Float64("repair-half-life", 0, "block heat half-life seconds (default 100000)")
		repairProm  = flag.Float64("repair-promote", 0, "heat above which under-replicated blocks gain a copy (0 = off)")
		repairRecl  = flag.Float64("repair-reclaim", 0, "heat below which excess copies are reclaimed (0 = off)")
		repairMax   = flag.Int("repair-max-copies", 0, "cap on copies per block under promotion (default NR+1)")
		repairScan  = flag.Int("repair-scan-rate", 0, "blocks examined per idle scan (default 64)")
		healthOn    = flag.Bool("health", false, "proactive media health: scrubbing, scoring, evacuation, fencing")
		scrubRate   = flag.Int("scrub-rate", 0, "block positions patrolled per idle scrub op (0 = no scrubbing)")
		healthHL    = flag.Float64("health-half-life", 0, "error-score decay half-life seconds (default 100000)")
		healthWear  = flag.Float64("health-wear", 0, "wear hazard added to a tape's score per mount (0 = off)")
		healthSusp  = flag.Float64("health-suspect", 0, "score above which a tape is marked suspect (0 = off)")
		healthEvac  = flag.Bool("health-evacuate", false, "drain suspect tapes through the repair machinery")
		healthFence = flag.Float64("health-fence", 0, "score above which a drive is fenced for maintenance (0 = off)")
		healthMaint = flag.Float64("health-maintenance", 0, "fenced-drive maintenance seconds (default 3600)")
		farmShards  = flag.Int("farm-shards", 0, "simulate a farm of this many identical libraries (0 = single jukebox; needs -interarrival)")
		farmPlace   = flag.String("farm-placement", "local", "cross-library hot-copy placement: local, spread, or mirror")
		farmWorkers = flag.Int("farm-workers", 0, "goroutines simulating shards concurrently (0 = GOMAXPROCS; results identical at any value)")
		farmTenants = flag.String("farm-tenants", "", "aggregated arrival classes as mean[:rh] pairs, e.g. '120:90,600:10' (empty = one class at -interarrival/-rh)")
		format      = flag.String("format", "text", "output format: text or csv")
		analytic    = flag.Bool("analytic", false, "also print the closed-form estimate (no-replication closed models)")
		configPath  = flag.String("config", "", "load the full configuration from a JSON file (other workload flags are ignored)")
		dump        = flag.Bool("dump", false, "print the effective configuration as JSON and exit")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Usage = usage
	flag.Parse()

	if *cpuprofile != "" {
		stop, err := startCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jukesim:", err)
			return 1
		}
		defer stop()
	}
	if *memprofile != "" {
		defer writeMemProfile(*memprofile, "jukesim")
	}

	if *list {
		for _, a := range tapejuke.Algorithms() {
			fmt.Println(a)
		}
		return 0
	}

	var admit tapejuke.AdmitPolicy
	switch strings.ToLower(*admitPolicy) {
	case "", "none":
		admit = tapejuke.AdmitNone
	case "reject":
		admit = tapejuke.AdmitReject
	case "shed", "shed-oldest":
		admit = tapejuke.AdmitShed
	default:
		fmt.Fprintf(os.Stderr, "jukesim: unknown admission policy %q\n", *admitPolicy)
		return 1
	}

	cfg := tapejuke.Config{
		DriveProfile:        *profile,
		BlockMB:             *blockMB,
		TapeCapMB:           *capMB,
		Tapes:               *tapes,
		Drives:              *drives,
		HotPercent:          *ph,
		ReadHotPercent:      *rh,
		ZipfS:               *zipf,
		DataMB:              *dataMB,
		Replicas:            *nr,
		Placement:           tapejuke.Placement(*placement),
		StartPos:            *sp,
		RAO:                 *rao,
		Algorithm:           tapejuke.Algorithm(*alg),
		QueueLength:         *queue,
		MeanInterarrivalSec: *interarrive,
		HorizonSec:          *horizon,
		Seed:                *seed,
		Writes: tapejuke.WriteConfig{
			MeanInterarrivalSec: *writeEvery,
			Policy:              tapejuke.WritePolicy(*writePolicy),
		},
		Faults: tapejuke.FaultConfig{
			ReadTransientProb:   *transient,
			BadBlocksPerTape:    *badBlocks,
			TapeMTBFSec:         *tapeMTBF,
			DriveMTBFSec:        *driveMTBF,
			DriveRepairSec:      *driveRepair,
			SwitchFailProb:      *switchFail,
			LatentErrorsPerTape: *latentPer,
			LatentMeanOnsetSec:  *latentOnset,
			Seed:                *faultSeed,
		},
		Deadlines: tapejuke.DeadlineConfig{
			HotTTL:  *hotTTL,
			ColdTTL: *coldTTL,
			Fixed:   *fixedTTL,
		},
		Admission: tapejuke.AdmissionConfig{
			MaxQueue: *admitMax,
			Policy:   admit,
		},
		Burst: tapejuke.BurstConfig{
			Factor:     *burstFactor,
			OnFrac:     *burstOnFrac,
			Period:     *burstPeriod,
			FlashAt:    *flashAt,
			FlashLen:   *flashLen,
			FlashCount: *flashCount,
		},
		Repair: tapejuke.RepairConfig{
			Enable:      *repairOn,
			HalfLifeSec: *repairHL,
			PromoteHeat: *repairProm,
			ReclaimHeat: *repairRecl,
			MaxCopies:   *repairMax,
			ScanRate:    *repairScan,
		},
		Health: tapejuke.HealthConfig{
			Enable:          *healthOn,
			ScrubRate:       *scrubRate,
			ErrHalfLifeSec:  *healthHL,
			WearWeight:      *healthWear,
			SuspectScore:    *healthSusp,
			Evacuate:        *healthEvac,
			DriveFenceScore: *healthFence,
			MaintenanceSec:  *healthMaint,
		},
		Degrade: tapejuke.DegradeConfig{
			QueueThreshold: *degradeQ,
			MaxSweep:       *degradeMax,
			DeferWrites:    *degradeDW,
		},
		AgeWeight: *ageWeight,
	}
	if *interarrive > 0 {
		cfg.QueueLength = 0
	}
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jukesim:", err)
			return 1
		}
		cfg = tapejuke.Config{}
		if err := json.Unmarshal(data, &cfg); err != nil {
			fmt.Fprintln(os.Stderr, "jukesim: parsing config:", err)
			return 1
		}
	}
	if *dump {
		out, err := json.MarshalIndent(cfg.WithDefaults(), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "jukesim:", err)
			return 1
		}
		fmt.Println(string(out))
		return 0
	}

	if *farmShards > 0 {
		tenants, err := parseTenants(*farmTenants)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jukesim:", err)
			return 1
		}
		return runFarm(tapejuke.FarmConfig{
			Shards:    *farmShards,
			Placement: tapejuke.FarmPlacement(*farmPlace),
			Workers:   *farmWorkers,
			Tenants:   tenants,
			Base:      cfg,
		}, *format)
	}

	res, err := tapejuke.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jukesim:", err)
		return 1
	}

	if *analytic {
		if cfg.MeanInterarrivalSec > 0 {
			a, err := tapejuke.AssessOpenLoad(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jukesim: analytic assessment unavailable:", err)
			} else {
				state := "light"
				if a.Saturated {
					state = "SATURATED (backlog diverges)"
				}
				fmt.Printf("analytic assessment  offered %.1f KB/s vs ceiling %.1f KB/s (utilization %.2f, %s)\n",
					a.OfferedKBps, a.SaturationKBps, a.Utilization, state)
			}
		} else {
			est, err := tapejuke.Analyze(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jukesim: analytic estimate unavailable:", err)
			} else {
				fmt.Printf("analytic estimate    %.1f KB/s (%.1f requests per sweep, %.0f s cycle)\n",
					est.ThroughputKBps, est.RequestsPerSweep, est.CycleSeconds)
			}
		}
	}

	switch strings.ToLower(*format) {
	case "csv":
		fmt.Println("scheduler,throughput_kbps,req_per_min,mean_response_s,p50_response_s,p95_response_s,p99_response_s,tape_switches,mean_queue,deadline_miss_rate,shed,rejected")
		fmt.Printf("%s,%.2f,%.4f,%.1f,%.1f,%.1f,%.1f,%d,%.1f,%.4f,%d,%d\n",
			res.SchedulerName, res.ThroughputKBps, res.RequestsPerMinute,
			res.MeanResponseSec, res.P50ResponseSec, res.P95ResponseSec, res.P99ResponseSec,
			res.TapeSwitches, res.MeanQueueLen, res.DeadlineMissRate, res.Shed, res.Rejected)
	default:
		stream, _ := tapejuke.StreamingRateKBps(*profile)
		fmt.Printf("scheduler            %s\n", res.SchedulerName)
		fmt.Printf("simulated            %.0f s (%.0f s measured after warm-up)\n", res.SimSeconds, res.MeasuredSeconds)
		fmt.Printf("completed            %d requests (%d switches)\n", res.Completed, res.TapeSwitches)
		fmt.Printf("throughput           %.1f KB/s (%.1f%% of streaming)\n", res.ThroughputKBps, 100*res.ThroughputKBps/stream)
		fmt.Printf("requests/minute      %.3f\n", res.RequestsPerMinute)
		fmt.Printf("response time        mean %.1f s, p50 %.1f s, p95 %.1f s, p99 %.1f s, max %.1f s\n",
			res.MeanResponseSec, res.P50ResponseSec, res.P95ResponseSec, res.P99ResponseSec, res.MaxResponseSec)
		fmt.Printf("time breakdown       locate %.0f s, read %.0f s, switch %.0f s, idle %.0f s\n",
			res.LocateSeconds, res.ReadSeconds, res.SwitchSeconds, res.IdleSeconds)
		fmt.Printf("mean queue length    %.1f\n", res.MeanQueueLen)
		if cfg.Writes.MeanInterarrivalSec > 0 {
			fmt.Printf("writes               %d flushed (%.0f s drive time), mean residence %.0f s, peak buffer %d blocks\n",
				res.WritesFlushed, res.WriteSeconds, res.MeanWriteDelaySec, res.MaxBufferedWrites)
		}
		if cfg.Faults.Enabled() {
			fmt.Printf("faults               %d transient (%d retries), %d permanent, %d switch; %.0f s lost\n",
				res.TransientFaults, res.Retries, res.PermanentFaults, res.SwitchFaults, res.FaultSeconds)
			fmt.Printf("failures             %d tapes, %d drive repairs (%.0f s down)\n",
				res.TapeFailures, res.DriveFailures, res.DriveRepairSeconds)
			fmt.Printf("availability         %.4f (%d unserviceable, %d rerouted, mean recovery %.1f s)\n",
				res.Availability, res.Unserviceable, res.Rerouted, res.MeanRecoverySec)
			if cfg.Faults.LatentErrorsPerTape > 0 {
				fmt.Printf("latent errors        %d injected, %d found, mean time to detect %.0f s\n",
					res.LatentErrorsInjected, res.LatentErrorsFound, res.MeanTimeToDetectSec)
			}
		}
		if cfg.Deadlines.Enabled() {
			fmt.Printf("deadlines            %d expired, %d late completions, miss rate %.4f\n",
				res.Expired, res.LateCompletions, res.DeadlineMissRate)
		}
		if cfg.Admission.Enabled() {
			fmt.Printf("admission            %d shed, %d rejected (bound %d, policy %s)\n",
				res.Shed, res.Rejected, cfg.Admission.MaxQueue, cfg.Admission.Policy)
		}
		if cfg.Deadlines.Enabled() || cfg.Admission.Enabled() {
			fmt.Printf("max queue age        %.0f s\n", res.MaxQueueAgeSec)
		}
		if cfg.Degrade.Enabled() {
			fmt.Printf("degradation          %d truncated sweeps, %d deferred flushes\n",
				res.TruncatedSweeps, res.DeferredFlushes)
		}
		if cfg.Repair.Enabled() {
			fmt.Printf("repair               %d jobs, %d copies rebuilt, %d reclaimed (%.0f s drive time)\n",
				res.RepairJobs, res.RepairedCopies, res.ReclaimedCopies, res.RepairSeconds)
			fmt.Printf("mean time to repair  %.0f s\n", res.MeanTimeToRepairSec)
		}
		if cfg.Health.Enabled() {
			fmt.Printf("health               %.0f MB scrubbed (%.0f s), %d latent found by scrub\n",
				res.ScrubbedMB, res.ScrubSeconds, res.LatentFoundByScrub)
			fmt.Printf("media                %d suspect tapes, %d evacuated (%d jobs, %d copies moved), %d drives fenced\n",
				res.SuspectTapes, res.EvacuatedTapes, res.EvacuationJobs, res.EvacuatedCopies, res.FencedDrives)
		}
	}
	return 0
}
