// Command benchdiff records `go test -bench` results into a JSON perf
// trajectory file and compares runs against a recorded baseline.
//
// It parses standard benchmark output lines:
//
//	BenchmarkEnvelopeReschedule/q=140-8   139272   9219 ns/op   184 B/op   3 allocs/op
//
// including custom metrics (KB/s, requests), and appends one labelled
// entry per invocation to the JSON file (replacing any previous entry with
// the same label, so re-runs update in place):
//
//	go test -run '^$' -bench . -benchmem ./internal/core | \
//	    benchdiff -in - -json BENCH_sched.json -label post-PR1
//
// With -compare LABEL it prints a delta table against the entry recorded
// under LABEL and exits non-zero when any benchmark's ns/op regressed by
// more than -threshold (default 1.20, i.e. 20%). scripts/bench.sh wires
// this into the repo's pre-merge routine.
//
// With -calibrate NAME the comparison divides every benchmark's ns/op
// ratio by the ratio of the named calibration benchmark, cancelling the
// uniform machine-speed skew between the two runs (recorded entries from
// different machines or CPU-frequency states drift together by a constant
// factor; see DESIGN.md's bench note). The regression threshold then
// applies to the normalized ratios, so a cross-machine comparison no
// longer needs a manual stash A/B to interpret.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result holds one benchmark's parsed measurements.
type Result struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Entry is one labelled benchmark run.
type Entry struct {
	Label      string            `json:"label"`
	Date       string            `json:"date"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// File is the on-disk trajectory: a sequence of labelled runs.
type File struct {
	Entries []Entry `json:"entries"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	in := flag.String("in", "-", "benchmark output to parse (file path or - for stdin)")
	jsonPath := flag.String("json", "BENCH_sched.json", "JSON trajectory file to update")
	label := flag.String("label", "", "label for this run (required)")
	compare := flag.String("compare", "", "baseline label to diff against")
	threshold := flag.Float64("threshold", 1.20, "ns/op regression factor that fails the run")
	calibrate := flag.String("calibrate", "", "benchmark whose ns/op ratio normalizes all deltas (cancels uniform machine skew)")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -label is required")
		os.Exit(2)
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	benchmarks, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in %s", *in))
	}

	file := &File{}
	if raw, err := os.ReadFile(*jsonPath); err == nil {
		if err := json.Unmarshal(raw, file); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *jsonPath, err))
		}
	} else if !os.IsNotExist(err) {
		fatal(err)
	}

	entry := Entry{
		Label:      *label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchmarks: benchmarks,
	}
	replaced := false
	for i := range file.Entries {
		if file.Entries[i].Label == *label {
			file.Entries[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		file.Entries = append(file.Entries, entry)
	}
	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchdiff: recorded %d benchmarks under %q in %s\n", len(benchmarks), *label, *jsonPath)

	if *compare == "" {
		return
	}
	var base *Entry
	for i := range file.Entries {
		if file.Entries[i].Label == *compare {
			base = &file.Entries[i]
			break
		}
	}
	if base == nil {
		fatal(fmt.Errorf("no entry labelled %q in %s", *compare, *jsonPath))
	}
	if regressed := diff(base, &entry, *threshold, *calibrate); regressed {
		fmt.Fprintf(os.Stderr, "benchdiff: ns/op regression beyond %.2fx against %q\n", *threshold, *compare)
		os.Exit(1)
	}
}

// parse extracts benchmark results from go test -bench output.
func parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		out[m[1]] = res
	}
	return out, sc.Err()
}

// diff prints a delta table and reports whether any common benchmark's
// ns/op regressed beyond the threshold factor. With a calibration
// benchmark named, every ratio is divided by that benchmark's own ratio
// before the threshold applies, so a uniform machine-speed skew between
// the two runs cancels out; the calibration benchmark itself (normalized
// 1.00 by construction) is exempt from the regression check.
func diff(base, cur *Entry, threshold float64, calibrate string) bool {
	scale := 1.0
	if calibrate != "" {
		b, okB := base.Benchmarks[calibrate]
		c, okC := cur.Benchmarks[calibrate]
		if !okB || !okC || b.NsPerOp <= 0 || c.NsPerOp <= 0 {
			fatal(fmt.Errorf("calibration benchmark %q missing from %q or %q", calibrate, base.Label, cur.Label))
		}
		scale = c.NsPerOp / b.NsPerOp
		fmt.Printf("calibrated by %s: machine skew %.2fx divided out of every ratio\n", calibrate, scale)
	}
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	regressed := false
	fmt.Printf("%-50s %14s %14s %8s\n", "benchmark", base.Label, cur.Label, "ratio")
	for _, name := range names {
		b, c := base.Benchmarks[name], cur.Benchmarks[name]
		if b.NsPerOp <= 0 {
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp / scale
		mark := ""
		if ratio > threshold && name != calibrate {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Printf("%-50s %12.0fns %12.0fns %7.2fx%s\n", name, b.NsPerOp, c.NsPerOp, ratio, mark)
	}
	return regressed
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
