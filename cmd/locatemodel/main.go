// Command locatemodel prints the tape positioning model of Figure 1: the
// fitted locate-time segments and a table of locate times by distance, for
// any registered drive profile.
package main

import (
	"flag"
	"fmt"
	"os"

	"tapejuke/internal/tapemodel"
)

func main() {
	profile := flag.String("profile", "exb8505xl", "drive profile: exb8505xl, fast, or dlt7000")
	maxMB := flag.Float64("max", 7168, "largest distance to tabulate, in MB")
	flag.Parse()

	pos := tapemodel.PositionerByName(*profile)
	if pos == nil {
		fmt.Fprintf(os.Stderr, "locatemodel: unknown profile %q\n", *profile)
		os.Exit(1)
	}
	p, helical := pos.(*tapemodel.Profile)
	if !helical {
		s := pos.(*tapemodel.Serpentine)
		fmt.Printf("# %s\n", s.Name)
		fmt.Printf("# %d tracks x %.0f MB; seek %.1f s + distance/%.0f MBps + %.1f s per track step\n",
			s.Tracks, s.TrackMB, s.SeekStartup, s.SeekRateMB, s.TrackStep)
		fmt.Printf("# read: %.2f + %.2f*k s; switch %.0f s; streaming %.0f KB/s\n",
			s.ReadRate.Startup, s.ReadRate.PerMB, s.SwitchTime(), s.StreamingRateMBps()*1024)
		fmt.Println()
		fmt.Println("from_mb\tto_mb\tlocate_s")
		for d := 1.0; d <= *maxMB; d *= 2 {
			sec, _ := s.Locate(0, d)
			fmt.Printf("0\t%.0f\t%.3f\n", d, sec)
		}
		return
	}

	fmt.Printf("# %s\n", p.Name)
	fmt.Printf("# forward locate:  %.3f + %.4f*k s (k <= %.0f MB), else %.3f + %.4f*k s\n",
		p.ShortForward.Startup, p.ShortForward.PerMB, p.ShortMaxMB,
		p.LongForward.Startup, p.LongForward.PerMB)
	fmt.Printf("# reverse locate:  %.3f + %.4f*k s (k <= %.0f MB), else %.3f + %.4f*k s\n",
		p.ShortReverse.Startup, p.ShortReverse.PerMB, p.ShortMaxMB,
		p.LongReverse.Startup, p.LongReverse.PerMB)
	fmt.Printf("# locate to BOT:   +%.0f s\n", p.BOTOverhead)
	fmt.Printf("# read after fwd:  %.2f + %.2f*k s; after rev: %.2f + %.2f*k s\n",
		p.ReadForward.Startup, p.ReadForward.PerMB,
		p.ReadReverse.Startup, p.ReadReverse.PerMB)
	fmt.Printf("# tape switch:     %.0f s eject + %.0f s robot + %.0f s load = %.0f s\n",
		p.EjectTime, p.RobotTime, p.LoadTime, p.SwitchTime())
	fmt.Printf("# streaming rate:  %.0f KB/s\n", p.StreamingRateMBps()*1024)
	fmt.Println()
	fmt.Println("distance_mb\tforward_s\treverse_s")
	for d := 1.0; d <= *maxMB; d *= 2 {
		fmt.Printf("%.0f\t%.3f\t%.3f\n", d, p.LocateForward(d), p.LocateReverse(d))
	}
	if *maxMB > 1 {
		fmt.Printf("%.0f\t%.3f\t%.3f\n", *maxMB, p.LocateForward(*maxMB), p.LocateReverse(*maxMB))
	}
}
