package tapejuke

import (
	"tapejuke/internal/sim"
)

// Repair-extension event kinds.
const (
	// EventRepairRead reports a repair job reading a surviving copy; the
	// event's Request field carries the repair job ID.
	EventRepairRead = sim.EventRepairRead
	// EventRepairWrite reports a repair job writing its rebuilt copy.
	EventRepairWrite = sim.EventRepairWrite
	// EventReclaim reports an excess replica of a cooled block being
	// reclaimed (metadata-only; no drive motion).
	EventReclaim = sim.EventReclaim
)

// RepairConfig enables the self-healing replication extension: heat-tracked
// background repair jobs that rebuild lost replicas -- and optionally
// promote hot under-replicated blocks and reclaim cold excess copies --
// during drive idle time. Repair jobs are preemptible at step granularity:
// a real request arriving mid-job takes the drive, and the job resumes
// later without repeating completed work. The zero value disables the
// extension entirely and the engine is bit-identical to the repair-free
// one; see the internal sim package mirror of this type for field
// documentation.
type RepairConfig = sim.RepairConfig
