module tapejuke

go 1.22
