package tapejuke

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func shortCfg() Config {
	c := Config{HorizonSec: 150_000}.WithDefaults()
	return c
}

func TestDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.BlockMB != 16 || c.TapeCapMB != 7168 || c.Tapes != 10 {
		t.Errorf("jukebox defaults wrong: %+v", c)
	}
	if c.HotPercent != 10 || c.ReadHotPercent != 40 {
		t.Errorf("skew defaults wrong: %+v", c)
	}
	if c.Algorithm != DynamicMaxBandwidth || c.QueueLength != 60 {
		t.Errorf("workload defaults wrong: %+v", c)
	}
	// Open-queuing configs keep QueueLength at zero.
	open := Config{MeanInterarrivalSec: 100}.WithDefaults()
	if open.QueueLength != 0 {
		t.Errorf("open config grew a queue length: %+v", open)
	}
}

func TestRunDefaults(t *testing.T) {
	res, err := Run(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.ThroughputKBps <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.SchedulerName != string(DynamicMaxBandwidth) {
		t.Errorf("scheduler = %q", res.SchedulerName)
	}
}

func TestAllAlgorithmsInstantiate(t *testing.T) {
	if len(Algorithms()) != 14 {
		t.Fatalf("expected 14 algorithms, got %d", len(Algorithms()))
	}
	for _, a := range Algorithms() {
		s, err := NewScheduler(a)
		if err != nil {
			t.Errorf("%s: %v", a, err)
			continue
		}
		if s.Name() != string(a) {
			t.Errorf("scheduler name %q != algorithm %q", s.Name(), a)
		}
	}
	if _, err := NewScheduler("bogus"); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestConfigErrors(t *testing.T) {
	c := shortCfg()
	c.DriveProfile = "bogus"
	if _, err := Run(c); err == nil {
		t.Error("bogus profile accepted")
	}
	c = shortCfg()
	c.Placement = "diagonal"
	if _, err := Run(c); err == nil {
		t.Error("bogus placement accepted")
	}
	c = shortCfg()
	c.Algorithm = "bogus"
	if _, err := Run(c); err == nil {
		t.Error("bogus algorithm accepted")
	}
	c = shortCfg()
	c.Replicas = 99
	if _, err := Run(c); err == nil {
		t.Error("impossible replication accepted")
	}
}

func TestExpansionFactor(t *testing.T) {
	c := shortCfg()
	c.Replicas = 9
	if e := c.ExpansionFactor(); math.Abs(e-1.9) > 1e-12 {
		t.Errorf("E = %v, want 1.9", e)
	}
}

func TestCostPerformanceHelpers(t *testing.T) {
	base := shortCfg()
	base.Algorithm = EnvelopeMaxBandwidth
	b, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	repl := base
	repl.Replicas = 9
	repl.Placement = Vertical
	repl.StartPos = 1
	q, err := ScaledQueueLength(base.QueueLength, repl.ExpansionFactor())
	if err != nil {
		t.Fatal(err)
	}
	if q != 32 {
		t.Errorf("scaled queue = %d, want 32", q)
	}
	repl.QueueLength = q
	r, err := Run(repl)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := CostPerformanceRatio(r, b)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 0 || ratio > 2 {
		t.Errorf("cost-performance ratio = %v, implausible", ratio)
	}
	if _, err := CostPerformanceRatio(nil, b); err == nil {
		t.Error("nil result accepted")
	}
}

func TestStreamingRate(t *testing.T) {
	kbps, err := StreamingRateKBps("exb8505xl")
	if err != nil {
		t.Fatal(err)
	}
	// 1/1.77 MB/s is about 578 KB/s.
	if kbps < 500 || kbps > 650 {
		t.Errorf("streaming rate = %v KB/s", kbps)
	}
	if _, err := StreamingRateKBps("bogus"); err == nil {
		t.Error("bogus profile accepted")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	orig := Config{
		Algorithm: EnvelopeMaxBandwidth,
		Placement: Vertical,
		Replicas:  9,
		StartPos:  1,
		ZipfS:     1.3,
		Writes:    WriteConfig{MeanInterarrivalSec: 500, Policy: WriteIdleOnly},
		Observer:  ObserverFunc(func(Event) {}), // must not serialize
	}.WithDefaults()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("Observer")) {
		t.Error("Observer leaked into JSON")
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	orig.Observer = nil
	if !reflect.DeepEqual(orig, back) {
		t.Errorf("round trip changed the config:\n%+v\n%+v", orig, back)
	}
	back.HorizonSec = 100_000
	if _, err := Run(back); err != nil {
		t.Fatalf("deserialized config does not run: %v", err)
	}
}

func TestPlanGradualFill(t *testing.T) {
	base := shortCfg()
	base.DataMB = 0.3 * 10 * 7168
	cfg, plan, err := PlanGradualFill(base)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stage != FillEarly || plan.Replicas != 9 {
		t.Errorf("30%% fill plan: %+v", plan)
	}
	if cfg.Placement != Vertical || !cfg.PackAfterData {
		t.Errorf("30%% fill config: placement=%s packed=%v", cfg.Placement, cfg.PackAfterData)
	}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("planned config does not run: %v", err)
	}

	base.DataMB = 10 * 7168 // completely full
	cfg, plan, err = PlanGradualFill(base)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stage != FillRecapture || cfg.Replicas != 0 || cfg.PackAfterData {
		t.Errorf("full plan: %+v cfg: %+v", plan, cfg)
	}

	base.DataMB = 0
	if _, _, err := PlanGradualFill(base); err == nil {
		t.Error("missing DataMB accepted")
	}
}

func TestZipfWorkloadEndToEnd(t *testing.T) {
	// The paper's replication recommendation holds under Zipf popularity
	// too: replicating the top-ranked (hot-class) blocks on every tape
	// raises throughput.
	base := shortCfg()
	base.ZipfS = 1.4
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	repl := base
	repl.Placement = Vertical
	repl.Replicas = 9
	repl.StartPos = 1
	repl.Algorithm = EnvelopeMaxBandwidth
	full, err := Run(repl)
	if err != nil {
		t.Fatal(err)
	}
	if full.ThroughputKBps <= plain.ThroughputKBps {
		t.Errorf("replication under Zipf: %.1f vs %.1f KB/s, expected a gain",
			full.ThroughputKBps, plain.ThroughputKBps)
	}
	bad := base
	bad.ZipfS = 0.5
	if _, err := Run(bad); err == nil {
		t.Error("Zipf exponent 0.5 accepted")
	}
}

func TestReadsConcentrateOnHotTape(t *testing.T) {
	// Vertical layout: tape 0 holds all hot data, which draws RH=40% of
	// requests. The per-tape read counters must show that concentration.
	cfg := shortCfg()
	cfg.Placement = Vertical
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ReadsPerTape) != 10 {
		t.Fatalf("ReadsPerTape has %d entries", len(res.ReadsPerTape))
	}
	frac := float64(res.ReadsPerTape[0]) / float64(res.Completed)
	if frac < 0.3 || frac > 0.5 {
		t.Errorf("hot tape served %.0f%% of reads, want about 40%%", frac*100)
	}
	// With full replication the envelope spreads hot reads across tapes:
	// the original hot tape loses its monopoly.
	cfg.Replicas = 9
	cfg.StartPos = 1
	cfg.Algorithm = EnvelopeMaxBandwidth
	repl, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rfrac := float64(repl.ReadsPerTape[0]) / float64(repl.Completed)
	if rfrac >= frac {
		t.Errorf("replication left the hot tape at %.0f%% of reads (was %.0f%%)",
			rfrac*100, frac*100)
	}
}

func TestAnalyze(t *testing.T) {
	cfg := shortCfg()
	est, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The closed form models fair rotation; the dynamic max-bandwidth
	// simulation should land within ~25% of it on the default skew.
	lo, hi := est.ThroughputKBps*0.75, est.ThroughputKBps*1.35
	if res.ThroughputKBps < lo || res.ThroughputKBps > hi {
		t.Errorf("simulated %.1f KB/s outside [%.1f, %.1f] around analytic %.1f",
			res.ThroughputKBps, lo, hi, est.ThroughputKBps)
	}

	bad := shortCfg()
	bad.Replicas = 3
	if _, err := Analyze(bad); err == nil {
		t.Error("replication accepted")
	}
	bad = shortCfg()
	bad.QueueLength = 0
	bad.MeanInterarrivalSec = 100
	if _, err := Analyze(bad); err == nil {
		t.Error("open queuing accepted")
	}
	bad = shortCfg()
	bad.DriveProfile = "dlt7000"
	if _, err := Analyze(bad); err == nil {
		t.Error("serpentine profile accepted")
	}
}

func TestAssessOpenLoad(t *testing.T) {
	cfg := shortCfg()
	cfg.QueueLength = 0
	cfg.MeanInterarrivalSec = 30
	a, err := AssessOpenLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Saturated || a.Utilization <= 1 {
		t.Errorf("30 s arrivals should saturate: %+v", a)
	}
	cfg.MeanInterarrivalSec = 600
	a, err = AssessOpenLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Saturated {
		t.Errorf("600 s arrivals should not saturate: %+v", a)
	}
	bad := shortCfg() // closed config
	if _, err := AssessOpenLoad(bad); err == nil {
		t.Error("closed config accepted")
	}
}

func TestClusteredAccessHelps(t *testing.T) {
	// The paper excludes clustered dependencies and notes it therefore
	// leaves performance on the table; the extension confirms the
	// direction: sequential runs raise throughput (adjacent blocks need no
	// locates).
	indep, err := Run(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	c := shortCfg()
	c.SequentialProb = 0.6
	clustered, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if clustered.ThroughputKBps <= indep.ThroughputKBps {
		t.Errorf("clustered access (%.1f KB/s) should beat independent (%.1f KB/s)",
			clustered.ThroughputKBps, indep.ThroughputKBps)
	}
	c.SequentialProb = 1.5
	if _, err := Run(c); err == nil {
		t.Error("probability above 1 accepted")
	}
}

func TestMultiDriveConfig(t *testing.T) {
	one, err := Run(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	c := shortCfg()
	c.Drives = 2
	two, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if two.ThroughputKBps <= one.ThroughputKBps {
		t.Errorf("2 drives (%v KB/s) should beat 1 drive (%v KB/s)",
			two.ThroughputKBps, one.ThroughputKBps)
	}
	c.Drives = 99
	if _, err := Run(c); err == nil {
		t.Error("99 drives on 10 tapes accepted")
	}
}

func TestFastProfileIsFaster(t *testing.T) {
	slow, err := Run(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	c := shortCfg()
	c.DriveProfile = "fast"
	fast, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if fast.ThroughputKBps <= slow.ThroughputKBps {
		t.Errorf("fast drive %v KB/s should beat EXB %v KB/s",
			fast.ThroughputKBps, slow.ThroughputKBps)
	}
}
