package tapejuke_test

import (
	"fmt"

	"tapejuke"
)

// Simulate the paper's reference jukebox with full replication of hot data
// at the tape ends, scheduled by the envelope-extension algorithm.
func ExampleRun() {
	cfg := tapejuke.Config{
		Algorithm:  tapejuke.EnvelopeMaxBandwidth,
		Placement:  tapejuke.Vertical,
		Replicas:   9,
		StartPos:   1,
		HorizonSec: 200_000,
	}.WithDefaults()

	res, err := tapejuke.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("scheduler: %s\n", res.SchedulerName)
	fmt.Printf("served %d requests\n", res.Completed)
	// Output:
	// scheduler: envelope-max-bandwidth
	// served 3162 requests
}

// The storage expansion factor of Figure 10a is a one-liner.
func ExampleConfig_ExpansionFactor() {
	cfg := tapejuke.Config{HotPercent: 10, Replicas: 9}
	fmt.Printf("E = %.1f\n", cfg.ExpansionFactor())
	// Output:
	// E = 1.9
}

// Analyze cross-checks a configuration against the closed-form model
// without running the simulator.
func ExampleAnalyze() {
	cfg := tapejuke.Config{QueueLength: 60}.WithDefaults()
	est, err := tapejuke.Analyze(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("about %.0f requests per tape visit\n", est.RequestsPerSweep)
	// Output:
	// about 12 requests per tape visit
}

// Algorithms enumerates every scheduler from the paper.
func ExampleAlgorithms() {
	fmt.Println(len(tapejuke.Algorithms()), "algorithms, best first among envelopes:")
	fmt.Println(tapejuke.EnvelopeMaxBandwidth)
	// Output:
	// 14 algorithms, best first among envelopes:
	// envelope-max-bandwidth
}
