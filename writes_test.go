package tapejuke

import "testing"

func TestWritesThroughPublicAPI(t *testing.T) {
	cfg := shortCfg()
	cfg.Writes = WriteConfig{
		MeanInterarrivalSec: 400,
		Policy:              WritePiggyback,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WritesFlushed == 0 {
		t.Error("no writes flushed")
	}
	if res.Completed == 0 {
		t.Error("reads starved")
	}
}

func TestWritePolicyValidation(t *testing.T) {
	cfg := shortCfg()
	cfg.Writes = WriteConfig{MeanInterarrivalSec: 400, Policy: "sideways"}
	if _, err := Run(cfg); err == nil {
		t.Error("bogus write policy accepted")
	}
	// Zero interarrival: extension disabled, policy ignored.
	cfg.Writes = WriteConfig{Policy: "sideways"}
	if _, err := Run(cfg); err != nil {
		t.Errorf("disabled write config rejected: %v", err)
	}
}

func TestObserverThroughPublicAPI(t *testing.T) {
	cfg := shortCfg()
	reads := 0
	var lastTime float64
	cfg.Observer = ObserverFunc(func(ev Event) {
		if ev.Time < lastTime {
			t.Errorf("events out of order: %v after %v", ev.Time, lastTime)
		}
		lastTime = ev.Time
		if ev.Kind == EventRead {
			reads++
		}
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(reads) != res.TotalCompleted {
		t.Errorf("observed %d reads, completed %d", reads, res.TotalCompleted)
	}
}
