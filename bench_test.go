// Benchmarks regenerating each figure of the paper's evaluation at a
// reduced horizon, plus micro-benchmarks of the scheduling hot paths.
//
// Figure benches report figure-level summary metrics alongside ns/op so a
// bench run doubles as a coarse reproduction check:
//
//	go test -bench=Fig -benchmem
//
// For the faithful (10M-second) reproduction use cmd/figures -full.
package tapejuke_test

import (
	"testing"

	"tapejuke"
	"tapejuke/figures"
)

// benchOpts keeps figure benchmarks quick: a 50k-second horizon over three
// workload intensities.
func benchOpts() figures.Options {
	return figures.Options{
		HorizonSec:   50_000,
		QueueLengths: []int{20, 60, 140},
		Seed:         1,
	}
}

// runFigure repeats one figure generator and reports its mean throughput
// across rows (KB/s) as a custom metric.
func runFigure(b *testing.B, gen func(figures.Options) (*figures.Figure, error)) {
	b.Helper()
	var lastMean float64
	for i := 0; i < b.N; i++ {
		f, err := gen(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, r := range f.Rows {
			if r.ThroughputKBps > 0 {
				sum += r.ThroughputKBps
				n++
			}
		}
		if n > 0 {
			lastMean = sum / float64(n)
		}
	}
	if lastMean > 0 {
		b.ReportMetric(lastMean, "KB/s")
	}
}

func BenchmarkFig1LocateModel(b *testing.B)      { runFigure(b, figures.Fig1) }
func BenchmarkFig3TransferSize(b *testing.B)     { runFigure(b, figures.Fig3) }
func BenchmarkFig4SchedulersNoRepl(b *testing.B) { runFigure(b, figures.Fig4) }
func BenchmarkFig5HotPlacement(b *testing.B)     { runFigure(b, figures.Fig5) }
func BenchmarkFig6ReplicaCount(b *testing.B)     { runFigure(b, figures.Fig6) }
func BenchmarkFig7ReplicaPlacement(b *testing.B) { runFigure(b, figures.Fig7) }
func BenchmarkFig8SchedulersRepl(b *testing.B)   { runFigure(b, figures.Fig8) }
func BenchmarkFig9Skew(b *testing.B)             { runFigure(b, figures.Fig9) }
func BenchmarkFig10aExpansion(b *testing.B)      { runFigure(b, figures.Fig10a) }
func BenchmarkFig10bCostPerf(b *testing.B)       { runFigure(b, figures.Fig10b) }

// benchRun measures one full simulation at the given configuration. The
// seed is fixed so every b.N iteration simulates the same workload: with a
// per-iteration seed, ns/op would average over different workloads and the
// KB/s metric (reported from the last iteration only) would not be
// comparable across runs.
func benchRun(b *testing.B, mutate func(*tapejuke.Config)) {
	b.Helper()
	var last *tapejuke.Result
	for i := 0; i < b.N; i++ {
		cfg := tapejuke.Config{HorizonSec: 100_000, Seed: 1}.WithDefaults()
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := tapejuke.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.ThroughputKBps, "KB/s")
		b.ReportMetric(float64(last.Completed), "requests")
	}
}

// Ablation: the envelope algorithm against its dynamic counterpart on the
// replicated layout where the global view should pay off (Section 4.6).
func BenchmarkAblationDynamicMaxBandwidthRepl(b *testing.B) {
	benchRun(b, func(c *tapejuke.Config) {
		c.Algorithm = tapejuke.DynamicMaxBandwidth
		c.Placement = tapejuke.Vertical
		c.Replicas = 9
		c.StartPos = 1
	})
}

func BenchmarkAblationEnvelopeMaxBandwidthRepl(b *testing.B) {
	benchRun(b, func(c *tapejuke.Config) {
		c.Algorithm = tapejuke.EnvelopeMaxBandwidth
		c.Placement = tapejuke.Vertical
		c.Replicas = 9
		c.StartPos = 1
	})
}

// Ablation: replica placement at the two ends of the tape (Section 4.5).
func BenchmarkAblationReplicasAtStart(b *testing.B) {
	benchRun(b, func(c *tapejuke.Config) {
		c.Placement = tapejuke.Vertical
		c.Replicas = 9
		c.StartPos = 0
	})
}

func BenchmarkAblationReplicasAtEnd(b *testing.B) {
	benchRun(b, func(c *tapejuke.Config) {
		c.Placement = tapejuke.Vertical
		c.Replicas = 9
		c.StartPos = 1
	})
}

// Ablation: the multi-drive extension (the paper's future work) against the
// single-drive baseline on the same workload.
func BenchmarkAblationOneDrive(b *testing.B) {
	benchRun(b, func(c *tapejuke.Config) { c.Drives = 1 })
}

func BenchmarkAblationTwoDrives(b *testing.B) {
	benchRun(b, func(c *tapejuke.Config) { c.Drives = 2 })
}

// Baseline single-run cost of the default configuration.
func BenchmarkSimulationDefault(b *testing.B) {
	benchRun(b, nil)
}
