package tapejuke

import "testing"

// farmBenchConfig is the BENCH_sched.json farm workload: four libraries
// under spread placement with enough per-shard traffic that shard
// simulation dominates the split pre-pass.
func farmBenchConfig(workers int) FarmConfig {
	return FarmConfig{
		Shards:    4,
		Placement: FarmSpread,
		Workers:   workers,
		Base: Config{
			Replicas:            1,
			HotPercent:          10,
			ReadHotPercent:      60,
			Algorithm:           EnvelopeMaxBandwidth,
			MeanInterarrivalSec: 55,
			HorizonSec:          2_000_000,
			Seed:                1,
		},
	}
}

// benchFarm runs the farm to completion b.N times.
func benchFarm(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr, err := RunFarm(farmBenchConfig(workers))
		if err != nil {
			b.Fatal(err)
		}
		if fr.TotalCompleted == 0 {
			b.Fatal("empty farm run")
		}
	}
}

// BenchmarkFarmRun is the headline scale-out claim: one farm run with
// per-shard goroutines (GOMAXPROCS workers). Compare against
// BenchmarkFarmRunSequential on a multi-core box for the speedup; on a
// 1-core container the two coincide by construction.
func BenchmarkFarmRun(b *testing.B) { benchFarm(b, 0) }

// BenchmarkFarmRunSequential runs the same farm on a single worker — the
// sequential baseline for the scaling claim.
func BenchmarkFarmRunSequential(b *testing.B) { benchFarm(b, 1) }
