package tapejuke

import (
	"errors"
	"fmt"

	"tapejuke/internal/analytic"
	"tapejuke/internal/layout"
	"tapejuke/internal/tapemodel"
)

// Estimate is a closed-form first-order performance prediction; see Analyze.
type Estimate = analytic.Estimate

// OpenAssessment reports whether an open (Poisson) workload saturates the
// jukebox; see AssessOpenLoad.
type OpenAssessment = analytic.OpenAssessment

// Analyze returns an analytic throughput estimate for a closed-queuing
// configuration on a helical-scan drive without replication, modelling fair
// single-sweep rotation over the tapes. It complements Run: the simulator
// and the closed form are independent implementations that agree to first
// order, so a large disagreement on a custom configuration is a signal
// worth investigating. Replicated layouts, open queuing, and serpentine
// drives are out of the model's scope and return an error.
func Analyze(c Config) (*Estimate, error) {
	c = c.WithDefaults()
	if c.Replicas != 0 {
		return nil, errors.New("tapejuke: Analyze does not model replication")
	}
	if c.QueueLength <= 0 {
		return nil, errors.New("tapejuke: Analyze requires a closed-queuing configuration")
	}
	prof, ok := tapemodel.PositionerByName(driveName(c.DriveProfile)).(*tapemodel.Profile)
	if !ok || prof == nil {
		return nil, fmt.Errorf("tapejuke: Analyze needs a helical-scan profile, not %q", c.DriveProfile)
	}
	kind := layout.Horizontal
	if c.Placement == Vertical {
		kind = layout.Vertical
	}
	lay, err := layout.Build(layout.Config{
		Tapes:         c.Tapes,
		TapeCapBlocks: int(c.TapeCapMB / c.BlockMB),
		HotPercent:    c.HotPercent,
		Kind:          kind,
		StartPos:      c.StartPos,
	})
	if err != nil {
		return nil, fmt.Errorf("tapejuke: %w", err)
	}
	return analytic.ClosedThroughput(prof, c.BlockMB, lay, c.ReadHotPercent, c.QueueLength)
}

// AssessOpenLoad estimates whether an open-queuing configuration's Poisson
// arrivals exceed the jukebox's service ceiling. Beyond saturation the
// backlog diverges and — as the paper observes — schedulers differ only in
// delay, not throughput. Same scope limits as Analyze (helical drive, no
// replication).
func AssessOpenLoad(c Config) (*OpenAssessment, error) {
	c = c.WithDefaults()
	if c.MeanInterarrivalSec <= 0 {
		return nil, errors.New("tapejuke: AssessOpenLoad requires an open-queuing configuration")
	}
	if c.Replicas != 0 {
		return nil, errors.New("tapejuke: AssessOpenLoad does not model replication")
	}
	prof, ok := tapemodel.PositionerByName(driveName(c.DriveProfile)).(*tapemodel.Profile)
	if !ok || prof == nil {
		return nil, fmt.Errorf("tapejuke: AssessOpenLoad needs a helical-scan profile, not %q", c.DriveProfile)
	}
	kind := layout.Horizontal
	if c.Placement == Vertical {
		kind = layout.Vertical
	}
	lay, err := layout.Build(layout.Config{
		Tapes:         c.Tapes,
		TapeCapBlocks: int(c.TapeCapMB / c.BlockMB),
		HotPercent:    c.HotPercent,
		Kind:          kind,
		StartPos:      c.StartPos,
	})
	if err != nil {
		return nil, fmt.Errorf("tapejuke: %w", err)
	}
	return analytic.AssessOpen(prof, c.BlockMB, lay, c.ReadHotPercent, c.MeanInterarrivalSec)
}
