package tapejuke

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// farmBase returns a small open-model library config exercising faults
// and replication, defaulted like RunFarm will see it.
func farmBase() Config {
	return Config{
		Tapes:               6,
		Replicas:            1,
		HotPercent:          10,
		ReadHotPercent:      60,
		DataMB:              19200, // 1200 blocks: partial fill so mirror placement can fit
		Algorithm:           EnvelopeMaxBandwidth,
		QueueLength:         0,
		MeanInterarrivalSec: 300,
		HorizonSec:          200_000,
		Faults:              FaultConfig{TapeMTBFSec: 400_000, BadBlocksPerTape: 0.5},
		Seed:                3,
	}.WithDefaults()
}

// shardEventCollector returns a ShardObserver recording every shard's
// event stream into evs (one slice per shard; shards run concurrently
// but each appends only to its own slice).
func shardEventCollector(n int) (func(int) Observer, [][]Event) {
	evs := make([][]Event, n)
	return func(shard int) Observer {
		return ObserverFunc(func(e Event) {
			evs[shard] = append(evs[shard], e)
		})
	}, evs
}

// TestFarmOneShardInert pins the farm layer's inertness at N=1: the event
// stream and the Result must be identical to a plain Runner.Run of the
// same configuration, for every placement policy.
func TestFarmOneShardInert(t *testing.T) {
	ref := farmBase()
	var refEvents []Event
	ref.Observer = ObserverFunc(func(e Event) { refEvents = append(refEvents, e) })
	want, err := NewRunner().Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []FarmPlacement{FarmLocal, FarmSpread, FarmMirror, ""} {
		obs, evs := shardEventCollector(1)
		fr, err := RunFarm(FarmConfig{
			Shards:        1,
			Placement:     pol,
			Base:          farmBase(),
			ShardObserver: obs,
		})
		if err != nil {
			t.Fatalf("placement %q: %v", pol, err)
		}
		if !reflect.DeepEqual(fr.Shards[0], want) {
			t.Errorf("placement %q: 1-shard farm Result differs from Runner.Run", pol)
		}
		if len(evs[0]) != len(refEvents) {
			t.Fatalf("placement %q: %d events vs %d from plain run", pol, len(evs[0]), len(refEvents))
		}
		for i := range evs[0] {
			if evs[0][i] != refEvents[i] {
				t.Fatalf("placement %q: event %d differs: %+v vs %+v", pol, i, evs[0][i], refEvents[i])
			}
		}
		if fr.TotalArrivals != want.TotalArrivals || fr.ThroughputKBps != want.ThroughputKBps {
			t.Errorf("placement %q: aggregate rollup differs from the single shard", pol)
		}
	}
}

// TestFarmDeterministicAcrossWorkers pins the headline determinism claim:
// per-shard event streams and the merged result are byte-identical at
// worker counts 1, 4, and GOMAXPROCS.
func TestFarmDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (*FarmResult, [][]Event) {
		obs, evs := shardEventCollector(4)
		fr, err := RunFarm(FarmConfig{
			Shards:        4,
			Placement:     FarmSpread,
			Workers:       workers,
			Base:          farmBase(),
			ShardObserver: obs,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fr, evs
	}
	refRes, refEvs := run(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		res, evs := run(w)
		// The observer funcs differ by identity; compare everything else.
		if !reflect.DeepEqual(res, refRes) {
			t.Errorf("workers=%d: merged FarmResult differs from workers=1", w)
		}
		for s := range evs {
			if len(evs[s]) != len(refEvs[s]) {
				t.Fatalf("workers=%d shard %d: %d events vs %d", w, s, len(evs[s]), len(refEvs[s]))
			}
			for i := range evs[s] {
				if evs[s][i] != refEvs[s][i] {
					t.Fatalf("workers=%d shard %d: event %d differs", w, s, i)
				}
			}
		}
	}
}

// TestFarmConservation checks the aggregate ledger: every minted arrival
// is completed, expired, shed, abandoned unserviceable, or still
// outstanding; and the router's trace covers at least the minted count
// (arrivals routed but still behind an op in flight at the horizon are
// never minted by the shard engine).
func TestFarmConservation(t *testing.T) {
	for _, pol := range []FarmPlacement{FarmLocal, FarmSpread, FarmMirror} {
		fr, err := RunFarm(FarmConfig{Shards: 3, Placement: pol, Base: farmBase()})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if fr.TotalArrivals == 0 {
			t.Fatalf("%s: empty farm run", pol)
		}
		sum := fr.TotalCompleted + fr.Expired + fr.Shed + fr.Unserviceable + fr.Outstanding
		if sum != fr.TotalArrivals {
			t.Errorf("%s: conservation violated: %d arrivals vs %d accounted", pol, fr.TotalArrivals, sum)
		}
		if fr.Outstanding < 0 {
			t.Errorf("%s: negative outstanding %d", pol, fr.Outstanding)
		}
		var routed, minted int64
		for s, r := range fr.Shards {
			routed += fr.Routed[s]
			minted += r.TotalArrivals
			if r.TotalArrivals > fr.Routed[s] {
				t.Errorf("%s shard %d: minted %d > routed %d", pol, s, r.TotalArrivals, fr.Routed[s])
			}
		}
		if minted != fr.TotalArrivals {
			t.Errorf("%s: shard mint sum %d != aggregate %d", pol, minted, fr.TotalArrivals)
		}
		if fr.RequestImbalance < 1 || fr.QueueImbalance < 1 {
			t.Errorf("%s: impossible imbalance (req %v, queue %v)", pol, fr.RequestImbalance, fr.QueueImbalance)
		}
	}
}

// TestFarmValidation exercises the farm-specific rejections.
func TestFarmValidation(t *testing.T) {
	reject := func(name, wantSub string, fc FarmConfig) {
		t.Helper()
		if _, err := RunFarm(fc); err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: got %v, want error containing %q", name, err, wantSub)
		}
	}
	closed := farmBase()
	closed.QueueLength, closed.MeanInterarrivalSec = 60, 0
	reject("closed model", "open-model", FarmConfig{Shards: 2, Base: closed})

	writes := farmBase()
	writes.Writes.MeanInterarrivalSec = 500
	reject("writes", "write extension", FarmConfig{Shards: 2, Base: writes})

	zipf := farmBase()
	zipf.ZipfS = 1.2
	reject("zipf", "two-class", FarmConfig{Shards: 2, Base: zipf})

	obs := farmBase()
	obs.Observer = ObserverFunc(func(Event) {})
	reject("shared observer", "ShardObserver", FarmConfig{Shards: 2, Base: obs})

	reject("zero shards", "at least one shard", FarmConfig{Shards: 0, Base: farmBase()})
	reject("bad placement", "unknown farm placement", FarmConfig{Shards: 2, Placement: "ring", Base: farmBase()})

	thin := farmBase()
	thin.Replicas = 3
	reject("spread needs shards", "spread placement", FarmConfig{Shards: 2, Placement: FarmSpread, Base: thin})

	tenant := FarmConfig{Shards: 2, Base: farmBase(),
		Tenants: []TenantClass{{Name: "bad", MeanInterarrivalSec: 0}}}
	reject("tenant rate", "positive mean", tenant)

	full := farmBase()
	full.DataMB = 0 // filled to capacity: no room to mirror the hot set N times
	reject("mirror overflow", "does not fit", FarmConfig{Shards: 3, Placement: FarmMirror, Base: full})
}

// TestFarmTenantsAggregate checks multi-tenant aggregation: two classes
// at mean gaps m produce roughly the summed rate, and tenant skew shifts
// hot traffic.
func TestFarmTenantsAggregate(t *testing.T) {
	base := farmBase()
	fr, err := RunFarm(FarmConfig{
		Shards: 2,
		Base:   base,
		Tenants: []TenantClass{
			{Name: "interactive", MeanInterarrivalSec: 400, ReadHotPercent: 90},
			{Name: "batch", MeanInterarrivalSec: 400, ReadHotPercent: 5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two tenants at mean 400 over 200k s ≈ 1000 arrivals total; allow
	// generous Poisson slack.
	if fr.TotalArrivals < 700 || fr.TotalArrivals > 1300 {
		t.Errorf("aggregated arrivals = %d, want ≈1000", fr.TotalArrivals)
	}
}
