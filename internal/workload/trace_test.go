package workload

import (
	"math"
	"testing"

	"tapejuke/internal/layout"
)

func TestTraceArrivalsReplay(t *testing.T) {
	tr := NewTraceArrivals([]float64{1.5, 2, 7.25})
	if tr.Closed() {
		t.Error("trace arrivals reported closed")
	}
	if tr.InitialCount() != 0 {
		t.Error("trace arrivals reported nonzero initial count")
	}
	for _, want := range []float64{1.5, 2, 7.25} {
		if got := tr.Next(); got != want {
			t.Fatalf("Next() = %v, want %v", got, want)
		}
	}
	if !math.IsInf(tr.Next(), 1) || !math.IsInf(tr.Next(), 1) {
		t.Error("exhausted trace must keep returning +Inf")
	}
	if !math.IsInf(NewTraceArrivals(nil).Next(), 1) {
		t.Error("empty trace must return +Inf immediately")
	}
}

func TestTraceSourceReplay(t *testing.T) {
	blocks := []layout.BlockID{4, 0, 9}
	src := NewTraceSource(blocks, 42)
	if src.Rand() == nil {
		t.Fatal("trace source must expose an auxiliary Rand stream")
	}
	// Draining the auxiliary stream must not perturb block identity.
	src.Rand().Int63n(100)
	for _, want := range blocks {
		if got := src.Next(); got != want {
			t.Fatalf("Next() = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("drawing past the trace must panic")
		}
	}()
	src.Next()
}
