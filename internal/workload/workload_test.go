package workload

import (
	"math"
	"testing"
	"testing/quick"

	"tapejuke/internal/layout"
)

func testLayout(t *testing.T, ph float64) *layout.Layout {
	t.Helper()
	l, err := layout.Build(layout.Config{
		Tapes: 10, TapeCapBlocks: 448, HotPercent: ph,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestSkewFractions(t *testing.T) {
	l := testLayout(t, 10)
	g, err := NewGenerator(l, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	hot := 0
	for i := 0; i < n; i++ {
		b := g.Next()
		if b < 0 || int(b) >= l.NumBlocks() {
			t.Fatalf("block %d out of range", b)
		}
		if l.IsHot(b) {
			hot++
		}
	}
	frac := float64(hot) / n
	if math.Abs(frac-0.40) > 0.01 {
		t.Errorf("hot fraction = %.3f, want 0.40 +- 0.01", frac)
	}
}

func TestSkewDeterminism(t *testing.T) {
	l := testLayout(t, 10)
	g1, _ := NewGenerator(l, 40, 42)
	g2, _ := NewGenerator(l, 40, 42)
	for i := 0; i < 1000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
	g3, _ := NewGenerator(l, 40, 43)
	same := true
	for i := 0; i < 1000; i++ {
		if g1.Next() != g3.Next() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeneratorEdgeCases(t *testing.T) {
	// No hot data: RH is ignored, all requests are cold.
	l0 := testLayout(t, 0)
	g, err := NewGenerator(l0, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if l0.IsHot(g.Next()) {
			t.Fatal("hot request from a layout with no hot blocks")
		}
	}
	// All hot data: every request is hot.
	l100, err := layout.Build(layout.Config{Tapes: 10, TapeCapBlocks: 448, HotPercent: 100})
	if err != nil {
		t.Fatal(err)
	}
	g, err = NewGenerator(l100, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !l100.IsHot(g.Next()) {
			t.Fatal("cold request from a layout with no cold blocks")
		}
	}
	// RH out of range.
	if _, err := NewGenerator(l0, -1, 1); err == nil {
		t.Error("RH=-1 accepted")
	}
	if _, err := NewGenerator(l0, 101, 1); err == nil {
		t.Error("RH=101 accepted")
	}
}

func TestClosedArrivals(t *testing.T) {
	c := ClosedArrivals{QueueLength: 60}
	if !c.Closed() {
		t.Error("ClosedArrivals.Closed() = false")
	}
	if c.InitialCount() != 60 {
		t.Errorf("InitialCount = %d, want 60", c.InitialCount())
	}
	if !math.IsInf(c.Next(), 1) {
		t.Error("closed model should have no external arrivals")
	}
}

func TestPoissonArrivals(t *testing.T) {
	p, err := NewPoissonArrivals(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Closed() {
		t.Error("PoissonArrivals.Closed() = true")
	}
	if p.InitialCount() != 0 {
		t.Error("open model should start empty")
	}
	const n = 100000
	prev := 0.0
	for i := 0; i < n; i++ {
		next := p.Next()
		if next <= prev {
			t.Fatalf("arrival %d at %v not after %v", i, next, prev)
		}
		prev = next
	}
	mean := prev / n
	if math.Abs(mean-100)/100 > 0.02 {
		t.Errorf("mean interarrival = %v, want 100 +- 2%%", mean)
	}
	if _, err := NewPoissonArrivals(0, 1); err == nil {
		t.Error("zero interarrival accepted")
	}
	if _, err := NewPoissonArrivals(-5, 1); err == nil {
		t.Error("negative interarrival accepted")
	}
}

func TestSequentialRuns(t *testing.T) {
	l := testLayout(t, 10)
	g, err := NewGenerator(l, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetSequentialProb(0.8); err != nil {
		t.Fatal(err)
	}
	successor := func(b layout.BlockID) layout.BlockID {
		if l.IsHot(b) {
			return layout.BlockID((int(b) + 1) % l.NumHot())
		}
		c := int(b) - l.NumHot()
		return layout.BlockID(l.NumHot() + (c+1)%l.NumCold())
	}
	const n = 50000
	sequential := 0
	prev := g.Next()
	for i := 1; i < n; i++ {
		b := g.Next()
		if b == successor(prev) {
			sequential++
		}
		prev = b
	}
	frac := float64(sequential) / n
	if math.Abs(frac-0.8) > 0.03 {
		t.Errorf("sequential fraction = %.3f, want about 0.8", frac)
	}
	// Skew must be preserved: runs stay within their class.
	hot := 0
	for i := 0; i < n; i++ {
		if l.IsHot(g.Next()) {
			hot++
		}
	}
	if f := float64(hot) / n; math.Abs(f-0.4) > 0.05 {
		t.Errorf("hot fraction with clustering = %.3f, want about 0.4", f)
	}
}

func TestSequentialProbValidation(t *testing.T) {
	l := testLayout(t, 10)
	g, _ := NewGenerator(l, 40, 1)
	if err := g.SetSequentialProb(-0.1); err == nil {
		t.Error("negative probability accepted")
	}
	if err := g.SetSequentialProb(1); err == nil {
		t.Error("probability 1 accepted (would loop forever on one run)")
	}
	if err := g.SetSequentialProb(0); err != nil {
		t.Errorf("zero rejected: %v", err)
	}
}

func TestZipfDeterminism(t *testing.T) {
	l := testLayout(t, 10)
	g1, _ := NewZipfGenerator(l, 1.5, 42)
	g2, _ := NewZipfGenerator(l, 1.5, 42)
	for i := 0; i < 1000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("same seed produced different Zipf streams")
		}
	}
}

func TestZipfPopularityOrder(t *testing.T) {
	l := testLayout(t, 10)
	g, err := NewZipfGenerator(l, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	counts := make([]int, l.NumBlocks())
	for i := 0; i < n; i++ {
		b := g.Next()
		if int(b) >= l.NumBlocks() || b < 0 {
			t.Fatalf("block %d out of range", b)
		}
		counts[b]++
	}
	// Block 0 is the most popular; popularity decays with rank.
	if counts[0] < counts[10] || counts[10] < counts[1000] {
		t.Errorf("popularity not decreasing: c0=%d c10=%d c1000=%d",
			counts[0], counts[10], counts[1000])
	}
	// The hot class (lowest IDs) absorbs a large share of requests.
	hot := 0
	for b := 0; b < l.NumHot(); b++ {
		hot += counts[b]
	}
	if frac := float64(hot) / n; frac < 0.5 {
		t.Errorf("hot class absorbed %.0f%% under Zipf(1.5); expected a majority", frac*100)
	}
}

func TestZipfSkewGrowsWithS(t *testing.T) {
	l := testLayout(t, 10)
	hotShare := func(s float64) float64 {
		g, err := NewZipfGenerator(l, s, 5)
		if err != nil {
			t.Fatal(err)
		}
		hot := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if l.IsHot(g.Next()) {
				hot++
			}
		}
		return float64(hot) / n
	}
	if mild, sharp := hotShare(1.2), hotShare(2.5); sharp <= mild {
		t.Errorf("Zipf(2.5) hot share %.2f should exceed Zipf(1.2) %.2f", sharp, mild)
	}
}

func TestZipfValidation(t *testing.T) {
	l := testLayout(t, 10)
	for _, s := range []float64{0, 1, -2} {
		if _, err := NewZipfGenerator(l, s, 1); err == nil {
			t.Errorf("exponent %v accepted", s)
		}
	}
	g, err := NewZipfGenerator(l, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rand() == nil {
		t.Error("Rand not exposed")
	}
}

// Property: the empirical hot fraction tracks RH for arbitrary skews.
func TestSkewProperty(t *testing.T) {
	l := testLayout(t, 10)
	f := func(rhRaw uint8, seed int64) bool {
		rh := float64(rhRaw % 101)
		g, err := NewGenerator(l, rh, seed)
		if err != nil {
			return false
		}
		const n = 20000
		hot := 0
		for i := 0; i < n; i++ {
			if l.IsHot(g.Next()) {
				hot++
			}
		}
		return math.Abs(float64(hot)/n-rh/100) < 0.03
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
