package workload

import (
	"fmt"
	"math"
	"math/rand"

	"tapejuke/internal/layout"
)

// This file holds the overload-robustness workload extensions: per-class
// deadline (TTL) assignment and bursty arrival processes (ON-OFF modulated
// Poisson and flash crowds). The paper's workload is infinitely patient and
// stationary; these extensions let the simulator exercise admission control,
// deadline expiry, and graceful degradation.

// TTLSampler assigns a time-to-live to each request by the hot/cold class
// of its block: hot and cold requests draw from separate distributions
// (exponential by default, or fixed), modelling interactive recalls with
// tight patience against batch reads with loose ones. A class with a zero
// mean issues no deadlines. Deterministic for a given seed, on a stream
// independent of the block generator's.
type TTLSampler struct {
	lay      *layout.Layout
	hotMean  float64
	coldMean float64
	fixed    bool
	rng      *rand.Rand
}

// NewTTLSampler builds a sampler over the blocks of l with the given mean
// TTLs in seconds (zero disables deadlines for that class).
func NewTTLSampler(l *layout.Layout, hotMeanSec, coldMeanSec float64, fixed bool, seed int64) (*TTLSampler, error) {
	if hotMeanSec < 0 || coldMeanSec < 0 {
		return nil, fmt.Errorf("workload: TTL means (%v, %v) must be non-negative", hotMeanSec, coldMeanSec)
	}
	return &TTLSampler{
		lay:      l,
		hotMean:  hotMeanSec,
		coldMean: coldMeanSec,
		fixed:    fixed,
		rng:      rand.New(rand.NewSource(seed)),
	}, nil
}

// TTL draws the time-to-live for a request on block b, or 0 when b's class
// has no deadline.
func (s *TTLSampler) TTL(b layout.BlockID) float64 {
	mean := s.coldMean
	if s.lay.IsHot(b) {
		mean = s.hotMean
	}
	if mean <= 0 {
		return 0
	}
	if s.fixed {
		return mean
	}
	return s.rng.ExpFloat64() * mean
}

// BurstArrivals is a non-homogeneous Poisson arrival process with a
// piecewise-constant rate: the baseline rate 1/MeanInterarrival multiplied
// by Factor during ON phases of an ON-OFF modulation (exponentially
// distributed phase durations) and during one deterministic flash-crowd
// window. Arrival times come from integrating a unit-rate exponential
// across the rate segments, so the process is exact, deterministic for a
// given seed, and degenerates to PoissonArrivals draw-for-draw when no
// modulation is configured.
type BurstArrivals struct {
	mean     float64 // baseline mean interarrival (seconds)
	factor   float64 // rate multiplier while bursting
	onFrac   float64 // fraction of an ON-OFF cycle spent ON
	period   float64 // mean ON-OFF cycle length (0 = no modulation)
	flashAt  float64 // flash window start
	flashLen float64 // flash window length (0 = no flash)

	rng      *rand.Rand
	clock    float64
	on       bool
	phaseEnd float64
}

// NewBurstArrivals creates the bursty open-model arrival process. period
// and onFrac configure ON-OFF modulation (both zero disables it); flashAt
// and flashLen configure the flash window (flashLen zero disables it).
func NewBurstArrivals(meanInterarrival, factor, onFrac, period, flashAt, flashLen float64, seed int64) (*BurstArrivals, error) {
	if meanInterarrival <= 0 {
		return nil, fmt.Errorf("workload: mean interarrival %v must be positive", meanInterarrival)
	}
	if factor <= 0 {
		return nil, fmt.Errorf("workload: burst factor %v must be positive", factor)
	}
	if onFrac < 0 || onFrac >= 1 {
		return nil, fmt.Errorf("workload: burst ON fraction %v out of [0,1)", onFrac)
	}
	if period > 0 && onFrac == 0 {
		return nil, fmt.Errorf("workload: ON-OFF modulation needs a positive ON fraction")
	}
	if period < 0 || flashAt < 0 || flashLen < 0 {
		return nil, fmt.Errorf("workload: burst period/flash parameters must be non-negative")
	}
	b := &BurstArrivals{
		mean:     meanInterarrival,
		factor:   factor,
		onFrac:   onFrac,
		period:   period,
		flashAt:  flashAt,
		flashLen: flashLen,
		rng:      rand.New(rand.NewSource(seed)),
		phaseEnd: math.Inf(1),
	}
	if period > 0 {
		// Cycles start OFF; the first ON phase arrives after one OFF draw.
		b.phaseEnd = b.rng.ExpFloat64() * period * (1 - onFrac)
	}
	return b, nil
}

// Closed reports false.
func (b *BurstArrivals) Closed() bool { return false }

// InitialCount returns 0: the open system starts empty.
func (b *BurstArrivals) InitialCount() int { return 0 }

// Next returns the next arrival time by spending a unit-rate exponential
// across the piecewise-constant rate profile from the previous arrival.
func (b *BurstArrivals) Next() float64 {
	need := b.rng.ExpFloat64()
	t := b.clock
	for {
		rate, segEnd := b.rateAt(t)
		if dt := need / rate; math.IsInf(segEnd, 1) || t+dt <= segEnd {
			b.clock = t + dt
			return b.clock
		}
		need -= (segEnd - t) * rate
		t = segEnd
		if b.period > 0 && t >= b.phaseEnd {
			b.on = !b.on
			mean := b.period * b.onFrac
			if !b.on {
				mean = b.period * (1 - b.onFrac)
			}
			b.phaseEnd = t + b.rng.ExpFloat64()*mean
		}
	}
}

// rateAt returns the arrival rate in force at time t and the end of the
// constant-rate segment containing t.
func (b *BurstArrivals) rateAt(t float64) (rate, segEnd float64) {
	rate = 1 / b.mean
	segEnd = math.Inf(1)
	burst := false
	if b.period > 0 {
		burst = b.on
		segEnd = b.phaseEnd
	}
	if b.flashLen > 0 {
		switch end := b.flashAt + b.flashLen; {
		case t < b.flashAt:
			if b.flashAt < segEnd {
				segEnd = b.flashAt
			}
		case t < end:
			burst = true
			if end < segEnd {
				segEnd = end
			}
		}
	}
	if burst {
		rate *= b.factor
	}
	return rate, segEnd
}

// FlashClosedArrivals is the closed-model flash crowd: the fixed process
// population of ClosedArrivals plus FlashCount one-shot external requests
// all arriving at FlashAt. The extras are ephemeral -- the engine does not
// respawn them on completion -- so the population returns to QueueLength
// once the crowd drains.
type FlashClosedArrivals struct {
	QueueLength int
	FlashAt     float64
	FlashCount  int
	issued      int
}

// Closed reports true: completions of the base population still respawn.
func (f *FlashClosedArrivals) Closed() bool { return true }

// InitialCount returns the base population size.
func (f *FlashClosedArrivals) InitialCount() int { return f.QueueLength }

// Next returns FlashAt for each of the FlashCount extras, then +Inf.
func (f *FlashClosedArrivals) Next() float64 {
	if f.issued < f.FlashCount {
		f.issued++
		return f.FlashAt
	}
	return math.Inf(1)
}
