package workload

import (
	"math"
	"testing"

	"tapejuke/internal/layout"
)

func TestTTLSamplerClassSplit(t *testing.T) {
	l := testLayout(t, 10)
	s, err := NewTTLSampler(l, 100, 10_000, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	var hotSum, coldSum float64
	var hotN, coldN int
	for b := 0; b < l.NumBlocks(); b++ {
		id := layout.BlockID(b)
		for i := 0; i < 20; i++ {
			ttl := s.TTL(id)
			if ttl <= 0 {
				t.Fatalf("block %d: TTL %v not positive", b, ttl)
			}
			if l.IsHot(id) {
				hotSum += ttl
				hotN++
			} else {
				coldSum += ttl
				coldN++
			}
		}
	}
	hotMean, coldMean := hotSum/float64(hotN), coldSum/float64(coldN)
	if hotMean < 50 || hotMean > 200 {
		t.Errorf("hot TTL mean %.1f far from configured 100", hotMean)
	}
	if coldMean < 5_000 || coldMean > 20_000 {
		t.Errorf("cold TTL mean %.1f far from configured 10000", coldMean)
	}
}

func TestTTLSamplerDisabledClassAndFixed(t *testing.T) {
	l := testLayout(t, 10)
	s, err := NewTTLSampler(l, 0, 500, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := false, false
	for b := 0; b < l.NumBlocks(); b++ {
		id := layout.BlockID(b)
		ttl := s.TTL(id)
		if l.IsHot(id) {
			hot = true
			if ttl != 0 {
				t.Fatalf("hot block %d: zero-mean class drew TTL %v", b, ttl)
			}
		} else {
			cold = true
			if ttl != 500 {
				t.Fatalf("cold block %d: fixed TTL = %v, want 500", b, ttl)
			}
		}
	}
	if !hot || !cold {
		t.Fatal("layout missing a class; the test is vacuous")
	}
}

func TestTTLSamplerDeterminism(t *testing.T) {
	l := testLayout(t, 10)
	s1, _ := NewTTLSampler(l, 100, 1000, false, 42)
	s2, _ := NewTTLSampler(l, 100, 1000, false, 42)
	for i := 0; i < 1000; i++ {
		b := layout.BlockID(i % l.NumBlocks())
		if s1.TTL(b) != s2.TTL(b) {
			t.Fatal("same seed produced different TTL streams")
		}
	}
	if _, err := NewTTLSampler(l, -1, 0, false, 1); err == nil {
		t.Error("negative TTL mean accepted")
	}
}

// TestBurstEqualsPoissonUnmodulated pins the degenerate case: with no
// ON-OFF modulation and no flash window, BurstArrivals must reproduce
// PoissonArrivals draw for draw.
func TestBurstEqualsPoissonUnmodulated(t *testing.T) {
	b, err := NewBurstArrivals(120, 10, 0, 0, 0, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPoissonArrivals(120, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if got, want := b.Next(), p.Next(); got != want {
			t.Fatalf("draw %d: burst %v != poisson %v", i, got, want)
		}
	}
}

// TestBurstOnOffRate: ON-OFF modulation raises the long-run rate to the
// time-weighted mixture of the baseline and burst rates.
func TestBurstOnOffRate(t *testing.T) {
	const (
		mean    = 100.0
		factor  = 10.0
		onFrac  = 0.5
		horizon = 4_000_000.0
	)
	b, err := NewBurstArrivals(mean, factor, onFrac, 10_000, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for b.Next() < horizon {
		n++
	}
	want := horizon / mean * (onFrac*factor + (1 - onFrac)) // mixture rate
	if ratio := float64(n) / want; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("ON-OFF arrivals %d, want about %.0f (ratio %.2f)", n, want, ratio)
	}
	base := horizon / mean
	if float64(n) < 2*base {
		t.Errorf("modulated process (%d arrivals) not clearly above baseline %.0f", n, base)
	}
}

// TestBurstFlashDensity: the flash window multiplies the local rate.
func TestBurstFlashDensity(t *testing.T) {
	const (
		mean     = 100.0
		factor   = 10.0
		flashAt  = 200_000.0
		flashLen = 100_000.0
	)
	b, err := NewBurstArrivals(mean, factor, 0, 0, flashAt, flashLen, 5)
	if err != nil {
		t.Fatal(err)
	}
	before, during := 0, 0
	for {
		at := b.Next()
		if at >= flashAt+flashLen {
			break
		}
		if at < flashAt {
			if at >= flashAt-flashLen {
				before++
			}
		} else {
			during++
		}
	}
	if before == 0 || during == 0 {
		t.Fatalf("degenerate windows: %d before, %d during", before, during)
	}
	if ratio := float64(during) / float64(before); ratio < factor/2 || ratio > factor*2 {
		t.Errorf("flash density ratio %.1f, want about %.0f", ratio, factor)
	}
}

func TestBurstValidation(t *testing.T) {
	cases := []struct {
		name                                            string
		mean, factor, onFrac, period, flashAt, flashLen float64
	}{
		{"zero mean", 0, 2, 0, 0, 0, 0},
		{"zero factor", 100, 0, 0, 0, 0, 0},
		{"onFrac at 1", 100, 2, 1, 1000, 0, 0},
		{"period without onFrac", 100, 2, 0, 1000, 0, 0},
		{"negative flash", 100, 2, 0, 0, -1, 10},
	}
	for _, c := range cases {
		if _, err := NewBurstArrivals(c.mean, c.factor, c.onFrac, c.period, c.flashAt, c.flashLen, 1); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestFlashClosedArrivals(t *testing.T) {
	f := &FlashClosedArrivals{QueueLength: 30, FlashAt: 5_000, FlashCount: 3}
	if !f.Closed() {
		t.Error("flash closed model reports open")
	}
	if f.InitialCount() != 30 {
		t.Errorf("InitialCount = %d, want 30", f.InitialCount())
	}
	for i := 0; i < 3; i++ {
		if at := f.Next(); at != 5_000 {
			t.Fatalf("extra %d arrives at %v, want 5000", i, at)
		}
	}
	if at := f.Next(); !math.IsInf(at, 1) {
		t.Fatalf("after the crowd, Next = %v, want +Inf", at)
	}
}
