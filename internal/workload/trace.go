package workload

import (
	"math"
	"math/rand"

	"tapejuke/internal/layout"
)

// TraceArrivals replays a fixed schedule of arrival times. The farm
// front end routes an aggregated open-model stream across libraries and
// hands each shard its sub-stream as a trace; the shard's engine then
// sees exactly the arrivals the router sent it, in order. An exhausted
// trace behaves like a source that has gone quiet (+Inf), which is also
// how the engine learns an open model has no further arrivals before the
// horizon.
type TraceArrivals struct {
	times []float64
	i     int
}

// NewTraceArrivals wraps a non-decreasing schedule of arrival times. The
// slice is retained, not copied.
func NewTraceArrivals(times []float64) *TraceArrivals {
	return &TraceArrivals{times: times}
}

// Closed reports false: a trace is an open (externally clocked) stream.
func (t *TraceArrivals) Closed() bool { return false }

// InitialCount returns 0: traced arrivals all carry explicit times.
func (t *TraceArrivals) InitialCount() int { return 0 }

// Next returns the next traced arrival time, or +Inf once exhausted.
func (t *TraceArrivals) Next() float64 {
	if t.i >= len(t.times) {
		return math.Inf(1)
	}
	v := t.times[t.i]
	t.i++
	return v
}

// TraceSource replays a fixed sequence of requested blocks, one per
// traced arrival. It satisfies the same Source contract as Generator, so
// the engine's reservoir sampling can keep drawing from Rand() without
// perturbing the block sequence — the farm's whole point is that the
// router, not the shard, already chose the blocks.
type TraceSource struct {
	blocks []layout.BlockID
	i      int
	rng    *rand.Rand
}

// NewTraceSource wraps a block sequence (retained, not copied). seed
// feeds the auxiliary Rand() stream only; block identity never depends
// on it.
func NewTraceSource(blocks []layout.BlockID, seed int64) *TraceSource {
	return &TraceSource{blocks: blocks, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next traced block. Panics if drawn past the trace:
// the farm mints exactly one block per traced arrival, so exhaustion
// means the trace and arrival streams disagree — a bug, not a workload.
func (t *TraceSource) Next() layout.BlockID {
	if t.i >= len(t.blocks) {
		panic("workload: trace source exhausted (more requests minted than traced arrivals)")
	}
	b := t.blocks[t.i]
	t.i++
	return b
}

// Rand exposes the auxiliary stream shared with reservoir sampling.
func (t *TraceSource) Rand() *rand.Rand { return t.rng }
