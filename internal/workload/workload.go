// Package workload generates the request streams of the study: random
// logical block reads with hot/cold skew (Section 4), driven either by a
// closed-queuing model (a fixed population of I/O-bound processes keeping
// the queue length constant) or an open-queuing model (Poisson arrivals from
// a large client pool).
//
// The skew model has two parameters: PH, the percent of tape-resident data
// that is hot (a property of the layout), and RH, the percent of requests
// directed to hot data. A hot request picks uniformly among hot blocks, a
// cold request uniformly among cold blocks. Requested blocks are independent
// of one another; the paper deliberately does not exploit clustered or
// Markov-type dependencies.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tapejuke/internal/layout"
)

// Generator draws random block requests with hot/cold skew. With a
// positive sequential probability it also models clustered access -- the
// Markov-type dependence the paper deliberately excludes ("we do not
// exploit performance gains from clustered or Markov-type data
// dependencies") -- so that exclusion can be quantified: each request
// continues the previous one's sequential run with probability p, else
// draws fresh from the skewed distribution.
type Generator struct {
	numHot  int
	numCold int
	rh      float64 // fraction (0..1) of requests to hot data
	seqProb float64 // probability the next request continues sequentially
	last    layout.BlockID
	started bool
	rng     *rand.Rand
}

// NewGenerator builds a generator over the blocks of l, directing
// readHotPercent (RH) percent of requests to the hot set. Deterministic for
// a given seed.
func NewGenerator(l *layout.Layout, readHotPercent float64, seed int64) (*Generator, error) {
	return NewGeneratorRand(l, readHotPercent, rand.New(rand.NewSource(seed)))
}

// NewGeneratorRand is NewGenerator drawing from a caller-supplied source,
// so a session runner can recycle one generator (reseeded in place) across
// runs instead of allocating the ~5 KB lagged-Fibonacci state every time.
// The caller must have seeded rng; Rand.Seed(s) reproduces exactly the
// stream of rand.New(rand.NewSource(s)).
func NewGeneratorRand(l *layout.Layout, readHotPercent float64, rng *rand.Rand) (*Generator, error) {
	if readHotPercent < 0 || readHotPercent > 100 {
		return nil, fmt.Errorf("workload: RH %v out of range [0,100]", readHotPercent)
	}
	g := &Generator{
		numHot:  l.NumHot(),
		numCold: l.NumCold(),
		rh:      readHotPercent / 100,
		rng:     rng,
	}
	if g.numHot == 0 && g.rh > 0 {
		// No hot blocks to direct requests at; fall back to uniform cold.
		g.rh = 0
	}
	if g.numCold == 0 && g.rh < 1 {
		if g.numHot == 0 {
			return nil, errors.New("workload: layout holds no blocks")
		}
		g.rh = 1
	}
	return g, nil
}

// SetSequentialProb enables clustered access: each request continues the
// previous block's run (next block ID within its hot/cold class) with the
// given probability. Zero restores the paper's independent-request model.
func (g *Generator) SetSequentialProb(p float64) error {
	if p < 0 || p >= 1 {
		return fmt.Errorf("workload: sequential probability %v out of [0,1)", p)
	}
	g.seqProb = p
	return nil
}

// Next returns the next requested logical block.
func (g *Generator) Next() layout.BlockID {
	if g.started && g.seqProb > 0 && g.rng.Float64() < g.seqProb {
		g.last = g.successor(g.last)
		return g.last
	}
	var b layout.BlockID
	if g.rng.Float64() < g.rh {
		b = layout.BlockID(g.rng.Intn(g.numHot))
	} else {
		b = layout.BlockID(g.numHot + g.rng.Intn(g.numCold))
	}
	g.last, g.started = b, true
	return b
}

// successor returns the next block within the same hot/cold class, wrapping
// at the class boundary so sequential runs preserve the skew.
func (g *Generator) successor(b layout.BlockID) layout.BlockID {
	if int(b) < g.numHot {
		return layout.BlockID((int(b) + 1) % g.numHot)
	}
	c := int(b) - g.numHot
	return layout.BlockID(g.numHot + (c+1)%g.numCold)
}

// Rand exposes the generator's random source so that other simulator
// components (e.g. reservoir sampling) can share one deterministic stream.
func (g *Generator) Rand() *rand.Rand { return g.rng }

// Arrivals produces request arrival times. Implementations are deterministic
// for a fixed seed.
type Arrivals interface {
	// Closed reports whether the process is a closed-queuing model. Closed
	// models regenerate a request at every completion rather than following
	// an external arrival clock.
	Closed() bool
	// InitialCount is the number of requests present at time zero.
	InitialCount() int
	// Next returns the next external arrival time; successive calls yield a
	// non-decreasing sequence. Closed models return +Inf (no external
	// arrivals). The simulator consumes arrivals one at a time so none are
	// ever skipped.
	Next() float64
}

// ClosedArrivals implements the closed-queuing model: QueueLength requests
// exist at time zero, and every completion immediately generates a
// replacement, so the number of outstanding requests is constant.
type ClosedArrivals struct {
	QueueLength int
}

// Closed reports true.
func (c ClosedArrivals) Closed() bool { return true }

// InitialCount returns the constant queue length.
func (c ClosedArrivals) InitialCount() int { return c.QueueLength }

// Next returns +Inf: a closed model has no external arrival process.
func (c ClosedArrivals) Next() float64 { return math.Inf(1) }

// PoissonArrivals implements the open-queuing model: arrivals form a Poisson
// process with the given mean interarrival time (seconds).
type PoissonArrivals struct {
	MeanInterarrival float64
	rng              *rand.Rand
	clock            float64
}

// NewPoissonArrivals creates an open arrival process; the first arrival
// occurs at an exponentially distributed time after zero.
func NewPoissonArrivals(meanInterarrival float64, seed int64) (*PoissonArrivals, error) {
	return NewPoissonArrivalsRand(meanInterarrival, rand.New(rand.NewSource(seed)))
}

// NewPoissonArrivalsRand is NewPoissonArrivals drawing from a
// caller-supplied (already seeded) source; see NewGeneratorRand.
func NewPoissonArrivalsRand(meanInterarrival float64, rng *rand.Rand) (*PoissonArrivals, error) {
	if meanInterarrival <= 0 {
		return nil, fmt.Errorf("workload: mean interarrival %v must be positive", meanInterarrival)
	}
	return &PoissonArrivals{
		MeanInterarrival: meanInterarrival,
		rng:              rng,
	}, nil
}

// Closed reports false.
func (p *PoissonArrivals) Closed() bool { return false }

// InitialCount returns 0: the open system starts empty.
func (p *PoissonArrivals) InitialCount() int { return 0 }

// Next returns the next arrival time; gaps are exponentially distributed
// with the configured mean.
func (p *PoissonArrivals) Next() float64 {
	p.clock += p.rng.ExpFloat64() * p.MeanInterarrival
	return p.clock
}
