package workload

import (
	"fmt"
	"math/rand"

	"tapejuke/internal/layout"
)

// Source produces the block-request stream for the simulator. Generator
// implements the paper's two-class hot/cold skew; ZipfGenerator is the
// extension for rank-based popularity.
type Source interface {
	// Next returns the next requested logical block.
	Next() layout.BlockID
	// Rand exposes the underlying random stream so other simulator
	// components can share one deterministic source.
	Rand() *rand.Rand
}

var (
	_ Source = (*Generator)(nil)
	_ Source = (*ZipfGenerator)(nil)
)

// ZipfGenerator draws blocks with Zipf-distributed popularity: block 0 is
// the most popular, block N-1 the least. This is an extension beyond the
// paper, whose skew model is the two-class hot/cold distribution; because
// the layout packages place blocks 0..NumHot-1 as the "hot" class, Zipf
// popularity composes naturally with the paper's placement and replication
// schemes (the most popular blocks are exactly the placed-and-replicated
// ones).
type ZipfGenerator struct {
	z   *rand.Zipf
	rng *rand.Rand
}

// NewZipfGenerator builds a Zipf source over the blocks of l with exponent
// s (> 1; larger is more skewed). Deterministic for a given seed.
func NewZipfGenerator(l *layout.Layout, s float64, seed int64) (*ZipfGenerator, error) {
	return NewZipfGeneratorRand(l, s, rand.New(rand.NewSource(seed)))
}

// NewZipfGeneratorRand is NewZipfGenerator drawing from a caller-supplied
// (already seeded) source; see NewGeneratorRand.
func NewZipfGeneratorRand(l *layout.Layout, s float64, rng *rand.Rand) (*ZipfGenerator, error) {
	if s <= 1 {
		return nil, fmt.Errorf("workload: Zipf exponent %v must exceed 1", s)
	}
	if l.NumBlocks() < 1 {
		return nil, fmt.Errorf("workload: layout holds no blocks")
	}
	return &ZipfGenerator{
		z:   rand.NewZipf(rng, s, 1, uint64(l.NumBlocks()-1)),
		rng: rng,
	}, nil
}

// Next returns the next requested block; lower IDs are more popular.
func (g *ZipfGenerator) Next() layout.BlockID { return layout.BlockID(g.z.Uint64()) }

// Rand exposes the generator's random source.
func (g *ZipfGenerator) Rand() *rand.Rand { return g.rng }
