package core

import (
	"math/rand"
	"testing"

	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
)

// Differential test: the optimized incremental builder (envelope.go) must
// produce bit-identical envelopes, assignments, and S1 snapshots to the
// retained naive reference (envelope_ref.go) over randomized layouts,
// replication degrees, and queue lengths. Every case is derived from a
// logged seed so failures reproduce.

// diffCompare runs both builders over st and reports the first mismatch.
// The optimized run goes through the shared reusable builder to also cover
// the reset path that Envelope.Reschedule exercises.
func diffCompare(t *testing.T, seed int64, st *sched.State, reused *builder) {
	t.Helper()
	ref := refBuildEnvelope(st)
	reused.reset(st)
	reused.build()
	opt := reused

	for tape := range ref.env {
		if opt.env[tape] != ref.env[tape] {
			t.Fatalf("seed %d: env[%d] = %d, reference %d (env opt=%v ref=%v)",
				seed, tape, opt.env[tape], ref.env[tape], opt.env, ref.env)
		}
	}
	for i := range ref.where {
		if opt.where[i] != ref.where[i] {
			t.Fatalf("seed %d: where[%d] = %v, reference %v (block %d)",
				seed, i, opt.where[i], ref.where[i], st.Pending[i].Block)
		}
	}
	for i := range ref.s1Where {
		if opt.s1Where[i] != ref.s1Where[i] {
			t.Fatalf("seed %d: s1Where[%d] = %v, reference %v",
				seed, i, opt.s1Where[i], ref.s1Where[i])
		}
	}
	for tape := range ref.count {
		if opt.count[tape] != ref.count[tape] {
			t.Fatalf("seed %d: count[%d] = %d, reference %d",
				seed, tape, opt.count[tape], ref.count[tape])
		}
	}
}

// randomManualState builds a scheduling state over a fully random manual
// layout: arbitrary replica placements, duplicate requests allowed.
func randomManualState(t *testing.T, rng *rand.Rand) *sched.State {
	t.Helper()
	tapes := 1 + rng.Intn(6)
	blocks := 1 + rng.Intn(30)
	// Every block could land on the same tape, so keep per-tape capacity
	// comfortably above the block count or the placement loop cannot finish.
	capBlocks := blocks + 20 + rng.Intn(200)
	used := make(map[layout.Replica]bool)
	copies := make([][]layout.Replica, blocks)
	for b := range copies {
		n := 1 + rng.Intn(tapes)
		for _, tp := range rng.Perm(tapes)[:n] {
			for {
				c := layout.Replica{Tape: tp, Pos: rng.Intn(capBlocks)}
				if !used[c] {
					used[c] = true
					copies[b] = append(copies[b], c)
					break
				}
			}
		}
	}
	l, err := layout.NewManual(tapes, capBlocks, 0, copies)
	if err != nil {
		t.Fatal(err)
	}
	mounted := rng.Intn(tapes+1) - 1 // -1 .. tapes-1
	head := 0
	if mounted >= 0 {
		head = rng.Intn(capBlocks + 1)
	}
	st := sched.NewState(l, costs())
	st.Mounted, st.Head = mounted, head
	n := 1 + rng.Intn(40)
	for i := 0; i < n; i++ {
		st.Pending = append(st.Pending, &sched.Request{
			ID: int64(i), Block: layout.BlockID(rng.Intn(blocks)),
		})
	}
	return st
}

// randomBuiltState builds a scheduling state over the paper's layout space
// (vertical/horizontal, varying replication and start position).
func randomBuiltState(t *testing.T, rng *rand.Rand) *sched.State {
	t.Helper()
	var l *layout.Layout
	var tapes int
	for l == nil {
		kind := layout.Horizontal
		if rng.Intn(2) == 0 {
			kind = layout.Vertical
		}
		tapes = 2 + rng.Intn(9)
		built, err := layout.Build(layout.Config{
			Tapes: tapes, TapeCapBlocks: 100 + rng.Intn(349),
			HotPercent: float64(rng.Intn(30)),
			Replicas:   rng.Intn(tapes), Kind: kind,
			StartPos: rng.Float64(),
		})
		if err != nil {
			continue // e.g. vertical hot region exceeding one tape; redraw
		}
		l = built
	}
	mounted := rng.Intn(tapes+1) - 1
	head := 0
	if mounted >= 0 {
		head = rng.Intn(l.TapeCap() + 1)
	}
	st := sched.NewState(l, costs())
	st.Mounted, st.Head = mounted, head
	n := 1 + rng.Intn(140)
	for i := 0; i < n; i++ {
		st.Pending = append(st.Pending, &sched.Request{
			ID: int64(i), Block: layout.BlockID(rng.Intn(l.NumBlocks())),
		})
	}
	return st
}

func TestEnvelopeDifferentialManual(t *testing.T) {
	reused := &builder{}
	for seed := int64(0); seed < 600; seed++ {
		rng := rand.New(rand.NewSource(seed))
		st := randomManualState(t, rng)
		diffCompare(t, seed, st, reused)
	}
}

func TestEnvelopeDifferentialBuilt(t *testing.T) {
	reused := &builder{}
	for seed := int64(1000); seed < 1500; seed++ {
		rng := rand.New(rand.NewSource(seed))
		st := randomBuiltState(t, rng)
		diffCompare(t, seed, st, reused)
	}
}

// The fresh-builder entry point used by tests and instrumentation must
// agree with the reused path.
func TestEnvelopeDifferentialFreshBuilder(t *testing.T) {
	for seed := int64(2000); seed < 2100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		st := randomManualState(t, rng)
		ref := refBuildEnvelope(st)
		opt := buildEnvelope(st)
		for tape := range ref.env {
			if opt.env[tape] != ref.env[tape] {
				t.Fatalf("seed %d: env[%d] = %d, reference %d",
					seed, tape, opt.env[tape], ref.env[tape])
			}
		}
		for i := range ref.where {
			if opt.where[i] != ref.where[i] {
				t.Fatalf("seed %d: where[%d] = %v, reference %v",
					seed, i, opt.where[i], ref.where[i])
			}
		}
	}
}
