package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
)

// Property: over random paper-space layouts and request sets, the upper
// envelope (1) covers every request, (2) never regresses below the mounted
// head, and (3) never exceeds one block past the outermost copy on a tape.
func TestEnvelopeInvariantsProperty(t *testing.T) {
	f := func(seed int64, nrRaw, reqRaw, headRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nr := int(nrRaw) % 10
		l, err := layout.Build(layout.Config{
			Tapes: 10, TapeCapBlocks: 448, HotPercent: 10,
			Replicas: nr, Kind: layout.Vertical, StartPos: 1,
		})
		if err != nil {
			return false
		}
		mounted := rng.Intn(10)
		head := int(headRaw) % 449
		st := sched.NewState(l, costs())
		st.Mounted, st.Head = mounted, head
		n := int(reqRaw)%100 + 1
		for i := 0; i < n; i++ {
			st.Pending = append(st.Pending, &sched.Request{
				ID: int64(i), Block: layout.BlockID(rng.Intn(l.NumBlocks())),
			})
		}
		env := computeUpperEnvelope(st)
		if env[mounted] < head {
			return false
		}
		for _, r := range st.Pending {
			inside := false
			for _, c := range l.Replicas(r.Block) {
				if c.Pos+1 <= env[c.Tape] {
					inside = true
					break
				}
			}
			if !inside {
				return false
			}
		}
		// Envelopes are bounded by the furthest requested copy (or head).
		maxPos := make([]int, 10)
		for i := range maxPos {
			maxPos[i] = 0
		}
		for _, r := range st.Pending {
			for _, c := range l.Replicas(r.Block) {
				if c.Pos+1 > maxPos[c.Tape] {
					maxPos[c.Tape] = c.Pos + 1
				}
			}
		}
		if head > maxPos[mounted] {
			maxPos[mounted] = head
		}
		for tape, e := range env {
			if e > maxPos[tape] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a full Reschedule conserves requests (extracted + remaining ==
// original) and every extracted request is targeted at a real copy on the
// selected tape.
func TestRescheduleConservationProperty(t *testing.T) {
	f := func(seed int64, variantRaw, reqRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l, err := layout.Build(layout.Config{
			Tapes: 10, TapeCapBlocks: 448, HotPercent: 10,
			Replicas: int(variantRaw) % 10, Kind: layout.Vertical, StartPos: 1,
		})
		if err != nil {
			return false
		}
		e := NewEnvelope(Variant(int(variantRaw) % 3))
		st := sched.NewState(l, costs())
		n := int(reqRaw)%80 + 1
		ids := make(map[int64]bool)
		for i := 0; i < n; i++ {
			r := &sched.Request{ID: int64(i), Block: layout.BlockID(rng.Intn(l.NumBlocks()))}
			st.Pending = append(st.Pending, r)
			ids[r.ID] = true
		}
		tape, sweep, ok := e.Reschedule(st)
		if !ok {
			return false
		}
		seen := make(map[int64]bool)
		for _, r := range sweep.Requests() {
			if seen[r.ID] {
				return false // duplicate
			}
			seen[r.ID] = true
			c, exists := l.ReplicaOn(r.Block, tape)
			if !exists || c != r.Target {
				return false
			}
		}
		for _, r := range st.Pending {
			if seen[r.ID] {
				return false // both extracted and pending
			}
			seen[r.ID] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
