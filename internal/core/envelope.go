package core

import (
	"sort"

	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
)

// builder carries the working state of the upper-envelope computation
// (steps 1-6 of the major rescheduler, Section 3.2).
type builder struct {
	st    *sched.State
	env   []int            // envelope boundary per tape (block boundary)
	count []int            // number of scheduled requests per tape
	where []layout.Replica // assigned copy per request index, Tape=-1 if unscheduled
	reqs  []*sched.Request // st.Pending snapshot
	onT   [][]int          // request indices scheduled on each tape

	// Snapshot of the schedule S1 at the end of step 2, kept so tests can
	// check the Theorem 2 bound on the extension cost C(S2) - C(S1).
	s1Where []layout.Replica
}

// computeUpperEnvelope runs the envelope-extension construction over the
// pending list and returns the per-tape upper envelope. The request
// assignments made along the way are discarded: the caller re-derives the
// chosen tape's service set from the envelope (the set of requests
// satisfiable within it), per the paper's tape-selection step.
func computeUpperEnvelope(st *sched.State) []int {
	return buildEnvelope(st).env
}

// buildEnvelope runs steps 1-6 and returns the full builder state,
// including the S1 snapshot and the final assignments.
func buildEnvelope(st *sched.State) *builder {
	b := &builder{
		st:    st,
		env:   make([]int, st.Layout.Tapes()),
		count: make([]int, st.Layout.Tapes()),
		reqs:  st.Pending,
		onT:   make([][]int, st.Layout.Tapes()),
	}
	b.where = make([]layout.Replica, len(b.reqs))
	for i := range b.where {
		b.where[i].Tape = -1
	}

	b.initialEnvelope() // step 1
	b.absorb()          // step 2
	b.s1Where = append([]layout.Replica(nil), b.where...)
	for b.unscheduledCount() > 0 {
		tape, prefix := b.bestExtension() // steps 3-4: choose prefix
		if tape < 0 {
			break // defensive: cannot happen while requests have replicas
		}
		b.extend(tape, prefix) // step 4: extend envelope
		b.shrink()             // step 5: shrink envelopes
	} // step 6: iterate
	return b
}

// initialEnvelope sets each tape's envelope to the head position after
// reading its highest non-replicated requested block, and stretches the
// mounted tape's envelope to the current head position if needed.
func (b *builder) initialEnvelope() {
	for i, r := range b.reqs {
		if b.st.Layout.Replicated(r.Block) {
			continue
		}
		c := b.st.Layout.Replicas(r.Block)[0]
		b.assign(i, c)
		if c.Pos+1 > b.env[c.Tape] {
			b.env[c.Tape] = c.Pos + 1
		}
	}
	if b.st.Mounted >= 0 && b.st.Head > b.env[b.st.Mounted] {
		b.env[b.st.Mounted] = b.st.Head
	}
}

// absorb schedules every request that some in-envelope copy can satisfy.
// When several copies qualify, the mounted tape wins; otherwise the tape
// with the most scheduled requests, ties broken by jukebox order after the
// mounted tape.
func (b *builder) absorb() {
	for i := range b.reqs {
		if b.where[i].Tape >= 0 {
			continue
		}
		if c, ok := b.insideChoice(i); ok {
			b.assign(i, c)
		}
	}
}

// insideChoice picks the copy of request i to absorb, among copies inside
// the current envelope.
func (b *builder) insideChoice(i int) (layout.Replica, bool) {
	var cands []layout.Replica
	for _, c := range b.st.Layout.Replicas(b.reqs[i].Block) {
		if c.Pos+1 <= b.env[c.Tape] {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return layout.Replica{}, false
	}
	for _, c := range cands {
		if c.Tape == b.st.Mounted {
			return c, true
		}
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if b.count[c.Tape] > b.count[best.Tape] ||
			(b.count[c.Tape] == b.count[best.Tape] &&
				b.jukeboxRank(c.Tape) < b.jukeboxRank(best.Tape)) {
			best = c
		}
	}
	return best, true
}

// jukeboxRank orders tapes circularly starting at the mounted tape (or tape
// 0 for an empty drive): rank 0 is the mounted tape itself.
func (b *builder) jukeboxRank(tape int) int {
	t0 := b.st.Mounted
	if t0 < 0 {
		t0 = 0
	}
	n := b.st.Layout.Tapes()
	return ((tape-t0)%n + n) % n
}

func (b *builder) assign(i int, c layout.Replica) {
	b.where[i] = c
	b.count[c.Tape]++
	b.onT[c.Tape] = append(b.onT[c.Tape], i)
}

func (b *builder) unassign(i int) {
	c := b.where[i]
	b.where[i].Tape = -1
	b.count[c.Tape]--
	list := b.onT[c.Tape]
	for k, idx := range list {
		if idx == i {
			b.onT[c.Tape] = append(list[:k], list[k+1:]...)
			break
		}
	}
}

func (b *builder) unscheduledCount() int {
	n := 0
	for i := range b.where {
		if b.where[i].Tape < 0 {
			n++
		}
	}
	return n
}

// bestExtension performs step 3: for every tape, form the extension list of
// unscheduled requests satisfiable by that tape (sorted by position) and
// compute the incremental bandwidth of each prefix; return the tape and
// prefix with the highest incremental bandwidth. Ties prefer the tape with
// the most scheduled requests inside the envelope, then jukebox order.
func (b *builder) bestExtension() (int, []int) {
	bestTape := -1
	var bestPrefix []int
	bestBW := -1.0
	for t := 0; t < b.st.Layout.Tapes(); t++ {
		ext := b.extensionList(t)
		if len(ext) == 0 {
			continue
		}
		// Evaluate every prefix with a cumulative cost scan.
		head := b.env[t]
		cum := 0.0
		for j, idx := range ext {
			pos := mustReplicaOn(b.st.Layout, b.reqs[idx].Block, t).Pos
			step, h := b.st.Costs.ServeOne(head, pos)
			cum += step
			head = h
			total := cum + locateBack(b.st.Costs, head, b.env[t])
			if b.env[t] == 0 && t != b.st.Mounted {
				total += b.st.Costs.Prof.SwitchTime()
			}
			bw := float64(j+1) * b.st.Costs.BlockMB / total
			if bw > bestBW+1e-12 ||
				(bw > bestBW-1e-12 && bestTape >= 0 && b.betterTie(t, bestTape)) {
				bestTape, bestBW = t, bw
				bestPrefix = append(bestPrefix[:0], ext[:j+1]...)
			}
		}
	}
	return bestTape, bestPrefix
}

// betterTie reports whether tape a beats tape c on the step-4 tie-break.
func (b *builder) betterTie(a, c int) bool {
	if b.count[a] != b.count[c] {
		return b.count[a] > b.count[c]
	}
	return b.jukeboxRank(a) < b.jukeboxRank(c)
}

// extensionList returns the indices of unscheduled requests with a copy on
// tape t, sorted by that copy's position. (All copies of unscheduled
// requests lie outside the envelope: anything inside was absorbed.)
func (b *builder) extensionList(t int) []int {
	var out []int
	for i := range b.reqs {
		if b.where[i].Tape >= 0 {
			continue
		}
		if _, ok := b.st.Layout.ReplicaOn(b.reqs[i].Block, t); ok {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(x, y int) bool {
		px := mustReplicaOn(b.st.Layout, b.reqs[out[x]].Block, t).Pos
		py := mustReplicaOn(b.st.Layout, b.reqs[out[y]].Block, t).Pos
		return px < py
	})
	return out
}

// extend performs step 4: schedule the chosen prefix on the tape and push
// the envelope out to cover it.
func (b *builder) extend(tape int, prefix []int) {
	for _, i := range prefix {
		c := mustReplicaOn(b.st.Layout, b.reqs[i].Block, tape)
		b.assign(i, c)
		if c.Pos+1 > b.env[tape] {
			b.env[tape] = c.Pos + 1
		}
	}
}

// shrink performs step 5: while some replicated request scheduled at the
// outer edge of tape a's envelope is also satisfiable inside another tape's
// envelope, move it there and pull tape a's envelope back to its next
// scheduled request. Among multiple shrinkable tapes, the one with the
// fewest scheduled requests goes first, ties to the lowest jukebox rank.
//
// A move is only taken when it strictly shrinks the source envelope (the
// paper shrinks "back to the preceding request"); this rules out zero-gain
// moves when duplicate requests pin the same edge position and guarantees
// termination, since every iteration strictly decreases the total envelope.
func (b *builder) shrink() {
	for {
		cand := -1
		for a := 0; a < b.st.Layout.Tapes(); a++ {
			if _, _, ok := b.shrinkMove(a); !ok {
				continue
			}
			if cand < 0 ||
				b.count[a] < b.count[cand] ||
				(b.count[a] == b.count[cand] && b.jukeboxRank(a) < b.jukeboxRank(cand)) {
				cand = a
			}
		}
		if cand < 0 {
			return
		}
		b.shrinkOne(cand)
	}
}

// shrinkMove determines whether tape a's envelope can shrink: its edge must
// be defined by a scheduled request, moving that request must strictly
// lower the envelope, and the request must be satisfiable inside another
// tape's envelope. It returns the edge request index and the post-move
// envelope boundary.
func (b *builder) shrinkMove(a int) (edge, newEnv int, ok bool) {
	edge, maxPos, second := -1, -1, -1
	for _, i := range b.onT[a] {
		p := b.where[i].Pos
		if p > maxPos {
			edge, second = i, maxPos
			maxPos = p
		} else if p > second {
			second = p
		}
	}
	if edge < 0 || maxPos+1 != b.env[a] {
		return -1, 0, false // envelope pinned by the head or empty
	}
	newEnv = second + 1
	if a == b.st.Mounted && b.st.Head > newEnv {
		newEnv = b.st.Head
	}
	if newEnv >= b.env[a] {
		return -1, 0, false // no strict shrink (duplicate edge position)
	}
	if _, reloc := b.relocation(a, edge); !reloc {
		return -1, 0, false
	}
	return edge, newEnv, true
}

// relocation finds the copy that the edge request of tape a should move to:
// a copy on another tape strictly inside that tape's envelope. Among
// several, the tape with the most scheduled requests wins, ties by jukebox
// order (mirroring the absorb rule).
func (b *builder) relocation(a, edge int) (layout.Replica, bool) {
	var best layout.Replica
	found := false
	for _, c := range b.st.Layout.Replicas(b.reqs[edge].Block) {
		if c.Tape == a || c.Pos+1 > b.env[c.Tape] {
			continue
		}
		if !found ||
			b.count[c.Tape] > b.count[best.Tape] ||
			(b.count[c.Tape] == b.count[best.Tape] &&
				b.jukeboxRank(c.Tape) < b.jukeboxRank(best.Tape)) {
			best, found = c, true
		}
	}
	return best, found
}

// shrinkOne moves tape a's edge request elsewhere and pulls the envelope
// back to the next scheduled request (or the mounted head / zero).
func (b *builder) shrinkOne(a int) {
	edge, newEnv, ok := b.shrinkMove(a)
	if !ok {
		return
	}
	c, _ := b.relocation(a, edge)
	b.unassign(edge)
	b.assign(edge, c)
	b.env[a] = newEnv
}

// mustReplicaOn is ReplicaOn for copies known to exist.
func mustReplicaOn(l *layout.Layout, blk layout.BlockID, tape int) layout.Replica {
	c, ok := l.ReplicaOn(blk, tape)
	if !ok {
		panic("core: missing replica")
	}
	return c
}

// locateBack returns the cost of locating from block boundary `from` back
// to boundary `to` (the "locate back to the position of the current
// envelope" term of the step-3 incremental cost).
func locateBack(costs *sched.CostModel, from, to int) float64 {
	sec, _ := costs.Prof.Locate(costs.PosMB(from), costs.PosMB(to))
	return sec
}

// extensionCost is the step-3 incremental cost of extending tape t's
// envelope (currently at `env`) through the given positions in order:
// locate+read through the positions, locate back to the envelope, plus the
// mechanical switch cost for a tape not yet in the schedule.
func extensionCost(st *sched.State, env, tape int, positions []int) float64 {
	head := env
	total := 0.0
	for _, pos := range positions {
		step, h := st.Costs.ServeOne(head, pos)
		total += step
		head = h
	}
	total += locateBack(st.Costs, head, env)
	if env == 0 && tape != st.Mounted {
		total += st.Costs.Prof.SwitchTime()
	}
	return total
}

// sweepOrderInts arranges positions into sweep execution order from the
// given head: ascending positions at or above the head, then descending
// positions below it.
func sweepOrderInts(positions []int, head int) []int {
	fwd := make([]int, 0, len(positions))
	var rev []int
	for _, p := range positions {
		if p >= head {
			fwd = append(fwd, p)
		} else {
			rev = append(rev, p)
		}
	}
	sort.Ints(fwd)
	sort.Sort(sort.Reverse(sort.IntSlice(rev)))
	return append(fwd, rev...)
}
