package core

import (
	mathbits "math/bits"
	"slices"
	"sort"

	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
)

// builder carries the working state of the upper-envelope computation
// (steps 1-6 of the major rescheduler, Section 3.2).
//
// This is the optimized builder: each tape's extension list is built once
// per reschedule (position-sorted) and maintained incrementally as
// requests are scheduled, and the step-3 prefix-bandwidth evaluation is
// cached per tape and recomputed only for tapes whose envelope or
// candidate set changed since the previous iteration. A builder is
// reusable across reschedules via reset, so steady-state reschedules are
// allocation-free. envelope_ref.go retains the naive construction; the
// differential test asserts both produce bit-identical results.
type builder struct {
	st    *sched.State
	env   []int            // envelope boundary per tape (block boundary)
	count []int            // number of scheduled requests per tape
	where []layout.Replica // assigned copy per request index, Tape=-1 if unscheduled
	reqs  []*sched.Request // st.Pending snapshot
	onT   [][]int          // request indices scheduled on each tape (unordered)

	// Snapshot of the schedule S1 at the end of step 2, kept so tests can
	// check the Theorem 2 bound on the extension cost C(S2) - C(S1).
	s1Where []layout.Replica

	unsched int // maintained count of unscheduled requests (where[i].Tape < 0)

	// Incremental step-3 state. ext[t] holds tape t's candidate extension
	// list: unscheduled requests with a copy on t, sorted by (position,
	// request index). Entries whose request has since been scheduled are
	// tombstones, compacted away on the next refresh. bw[t] caches the
	// incremental bandwidth of every prefix of ext[t]; it is valid exactly
	// when dirty[t] is false (no tombstones and env[t] unchanged since the
	// last refresh).
	ext   [][]extEntry
	bw    [][]float64
	dirty []bool

	prefix []int            // scratch: chosen prefix, request indices
	cands  []layout.Replica // scratch for insideChoice

	// noFaults caches "no failure mask is armed" for the whole build, so
	// the fault-free hot path skips the per-copy liveness checks.
	noFaults bool
}

// extEntry is one candidate in a tape's extension list.
type extEntry struct {
	req int // index into builder.reqs
	pos int // the copy's position on the list's tape
}

// computeUpperEnvelope runs the envelope-extension construction over the
// pending list and returns the per-tape upper envelope. The request
// assignments made along the way are discarded: the caller re-derives the
// chosen tape's service set from the envelope (the set of requests
// satisfiable within it), per the paper's tape-selection step.
func computeUpperEnvelope(st *sched.State) []int {
	return buildEnvelope(st).env
}

// buildEnvelope runs steps 1-6 and returns the full builder state,
// including the S1 snapshot and the final assignments.
func buildEnvelope(st *sched.State) *builder {
	b := &builder{}
	b.reset(st)
	b.build()
	return b
}

// reset prepares the builder for a fresh construction over st, reusing
// every previously allocated buffer.
func (b *builder) reset(st *sched.State) {
	tapes := st.Layout.Tapes()
	n := len(st.Pending)
	b.st = st
	b.reqs = st.Pending
	b.noFaults = st.Down == nil && st.DeadCopy == nil
	b.env = resetInts(b.env, tapes)
	b.count = resetInts(b.count, tapes)
	b.unsched = n

	if cap(b.where) < n {
		b.where = make([]layout.Replica, n)
	} else {
		b.where = b.where[:n]
	}
	for i := range b.where {
		b.where[i] = layout.Replica{Tape: -1}
	}

	b.onT = resetRowsInt(b.onT, tapes)
	b.ext = resetRowsExt(b.ext, tapes)
	b.bw = resetRowsFloat(b.bw, tapes)
	if cap(b.dirty) < tapes {
		b.dirty = make([]bool, tapes)
	} else {
		b.dirty = b.dirty[:tapes]
	}
	for t := range b.dirty {
		b.dirty[t] = true
	}
	b.s1Where = b.s1Where[:0]
	b.prefix = b.prefix[:0]
}

// build runs steps 1-6 over the state set by reset.
func (b *builder) build() {
	b.initialEnvelope() // step 1
	b.absorb()          // step 2
	b.s1Where = append(b.s1Where[:0], b.where...)
	b.initExtensions()
	for b.unsched > 0 {
		tape, prefix := b.bestExtension() // steps 3-4: choose prefix
		if tape < 0 {
			break // defensive: cannot happen while requests have replicas
		}
		b.extend(tape, prefix) // step 4: extend envelope
		b.shrink()             // step 5: shrink envelopes
	} // step 6: iterate
}

// initialEnvelope sets each tape's envelope to the head position after
// reading its highest requested block with a single surviving copy, and
// stretches the mounted tape's envelope to the current head position if
// needed. With the fault model off, "single surviving copy" is exactly
// "non-replicated"; with it on, a replicated block whose other copies were
// lost to failures is pinned just like an unreplicated one, and a request
// with no surviving copy at all is left unscheduled (the engine reports it
// unserviceable and never offers it to the scheduler again).
func (b *builder) initialEnvelope() {
	for i, r := range b.reqs {
		c, live := b.soleLiveCopy(r.Block)
		if !live {
			continue
		}
		b.assign(i, c)
		if c.Pos+1 > b.env[c.Tape] {
			b.env[c.Tape] = c.Pos + 1
		}
	}
	if b.st.Mounted >= 0 && b.st.Head > b.env[b.st.Mounted] {
		b.env[b.st.Mounted] = b.st.Head
	}
}

// soleLiveCopy returns block blk's only readable copy, or ok=false when the
// block has zero or several readable copies. With no failure mask armed it
// reduces to the replication test, inlined into the step-1 loop.
func (b *builder) soleLiveCopy(blk layout.BlockID) (layout.Replica, bool) {
	if b.noFaults {
		cs := b.st.Layout.Replicas(blk)
		if len(cs) != 1 {
			return layout.Replica{}, false
		}
		return cs[0], true
	}
	return b.soleLiveCopyMasked(blk)
}

func (b *builder) soleLiveCopyMasked(blk layout.BlockID) (layout.Replica, bool) {
	var sole layout.Replica
	n := 0
	for _, c := range b.st.Layout.Replicas(blk) {
		if !b.st.CopyOK(c) {
			continue
		}
		if n++; n > 1 {
			return layout.Replica{}, false
		}
		sole = c
	}
	return sole, n == 1
}

// copyOK is st.CopyOK behind the cached fault-free fast path.
func (b *builder) copyOK(c layout.Replica) bool {
	return b.noFaults || b.st.CopyOK(c)
}

// absorb schedules every request that some in-envelope copy can satisfy.
// When several copies qualify, the mounted tape wins; otherwise the tape
// with the most scheduled requests, ties broken by jukebox order after the
// mounted tape.
func (b *builder) absorb() {
	for i := range b.reqs {
		if b.where[i].Tape >= 0 {
			continue
		}
		if c, ok := b.insideChoice(i); ok {
			b.assign(i, c)
		}
	}
}

// insideChoice picks the copy of request i to absorb, among copies inside
// the current envelope.
func (b *builder) insideChoice(i int) (layout.Replica, bool) {
	cands := b.cands[:0]
	for _, c := range b.st.Layout.Replicas(b.reqs[i].Block) {
		if c.Pos+1 <= b.env[c.Tape] && b.copyOK(c) {
			cands = append(cands, c)
		}
	}
	b.cands = cands[:0]
	if len(cands) == 0 {
		return layout.Replica{}, false
	}
	for _, c := range cands {
		if c.Tape == b.st.Mounted {
			return c, true
		}
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if b.count[c.Tape] > b.count[best.Tape] ||
			(b.count[c.Tape] == b.count[best.Tape] &&
				b.jukeboxRank(c.Tape) < b.jukeboxRank(best.Tape)) {
			best = c
		}
	}
	return best, true
}

// jukeboxRank orders tapes circularly starting at the mounted tape (or tape
// 0 for an empty drive): rank 0 is the mounted tape itself.
func (b *builder) jukeboxRank(tape int) int {
	t0 := b.st.Mounted
	if t0 < 0 {
		t0 = 0
	}
	n := b.st.Layout.Tapes()
	return ((tape-t0)%n + n) % n
}

func (b *builder) assign(i int, c layout.Replica) {
	if b.where[i].Tape < 0 {
		b.unsched--
	}
	b.where[i] = c
	b.count[c.Tape]++
	b.onT[c.Tape] = append(b.onT[c.Tape], i)
}

// unassign removes request i from its tape by swap-delete. onT ordering is
// not relied upon anywhere: its only consumer, shrinkMove, scans for the
// maximum and second-maximum assigned positions by value, so the O(1)
// swap-delete replaces the previous O(n) in-place splice.
func (b *builder) unassign(i int) {
	c := b.where[i]
	b.where[i].Tape = -1
	b.unsched++
	b.count[c.Tape]--
	list := b.onT[c.Tape]
	for k, idx := range list {
		if idx == i {
			last := len(list) - 1
			list[k] = list[last]
			b.onT[c.Tape] = list[:last]
			break
		}
	}
}

// initExtensions builds every tape's extension list exactly once per
// reschedule: the unscheduled requests (after step 2) with a copy on the
// tape, sorted by position with ties (duplicate requests for one block) by
// request index. From here on the lists only lose members, so they are
// never re-sorted; scheduling a request tombstones its entries, compacted
// by the next per-tape refresh.
func (b *builder) initExtensions() {
	for t := range b.ext {
		b.ext[t] = b.ext[t][:0]
		b.dirty[t] = true
	}
	for i := range b.reqs {
		if b.where[i].Tape >= 0 {
			continue
		}
		for _, c := range b.st.Layout.Replicas(b.reqs[i].Block) {
			if !b.copyOK(c) {
				continue
			}
			b.ext[c.Tape] = append(b.ext[c.Tape], extEntry{req: i, pos: c.Pos})
		}
	}
	for t := range b.ext {
		slices.SortFunc(b.ext[t], func(x, y extEntry) int {
			if x.pos != y.pos {
				return x.pos - y.pos
			}
			return x.req - y.req
		})
	}
}

// refresh compacts tape t's extension list (dropping entries whose request
// has been scheduled; compaction preserves the sorted order) and
// recomputes the cached incremental bandwidth of every prefix with one
// cumulative cost scan.
func (b *builder) refresh(t int) {
	live := b.ext[t][:0]
	for _, e := range b.ext[t] {
		if b.where[e.req].Tape < 0 {
			live = append(live, e)
		}
	}
	b.ext[t] = live

	bw := b.bw[t][:0]
	head := b.env[t]
	cum := 0.0
	for j, e := range live {
		step, h := b.st.Costs.ServeOne(head, e.pos)
		cum += step
		head = h
		total := cum + locateBack(b.st.Costs, head, b.env[t])
		if b.env[t] == 0 && t != b.st.Mounted {
			total += b.st.Costs.SwitchTime()
		}
		bw = append(bw, float64(j+1)*b.st.Costs.BlockMB/total)
	}
	b.bw[t] = bw
	b.dirty[t] = false
}

// bestExtension performs step 3: across every tape's extension list,
// return the tape and prefix with the highest incremental bandwidth. Ties
// prefer the tape with the most scheduled requests inside the envelope,
// then jukebox order. Only tapes whose envelope or candidate set changed
// since the previous iteration are re-evaluated; the rest reuse their
// cached prefix bandwidths, so the comparison sequence (and hence every
// tie-break) is identical to the reference implementation's full rescan.
func (b *builder) bestExtension() (int, []int) {
	tapes := b.st.Layout.Tapes()
	for t := 0; t < tapes; t++ {
		if b.dirty[t] {
			b.refresh(t)
		}
	}
	bestTape, bestJ := -1, -1
	bestBW := -1.0
	for t := 0; t < tapes; t++ {
		for j, bw := range b.bw[t] {
			if bw > bestBW+1e-12 ||
				(bw > bestBW-1e-12 && bestTape >= 0 && b.betterTie(t, bestTape)) {
				bestTape, bestJ, bestBW = t, j, bw
			}
		}
	}
	if bestTape < 0 {
		return -1, nil
	}
	b.prefix = b.prefix[:0]
	for _, e := range b.ext[bestTape][:bestJ+1] {
		b.prefix = append(b.prefix, e.req)
	}
	return bestTape, b.prefix
}

// betterTie reports whether tape a beats tape c on the step-4 tie-break.
func (b *builder) betterTie(a, c int) bool {
	if b.count[a] != b.count[c] {
		return b.count[a] > b.count[c]
	}
	return b.jukeboxRank(a) < b.jukeboxRank(c)
}

// extend performs step 4: schedule the chosen prefix on the tape and push
// the envelope out to cover it. Every tape holding a copy of a newly
// scheduled request is marked dirty (the request leaves its candidate
// list), as is the extended tape itself (its envelope moved).
func (b *builder) extend(tape int, prefix []int) {
	for _, i := range prefix {
		c := mustReplicaOn(b.st.Layout, b.reqs[i].Block, tape)
		for _, cc := range b.st.Layout.Replicas(b.reqs[i].Block) {
			b.dirty[cc.Tape] = true
		}
		b.assign(i, c)
		if c.Pos+1 > b.env[tape] {
			b.env[tape] = c.Pos + 1
		}
	}
	b.dirty[tape] = true
}

// shrink performs step 5: while some replicated request scheduled at the
// outer edge of tape a's envelope is also satisfiable inside another tape's
// envelope, move it there and pull tape a's envelope back to its next
// scheduled request. Among multiple shrinkable tapes, the one with the
// fewest scheduled requests goes first, ties to the lowest jukebox rank.
//
// A move is only taken when it strictly shrinks the source envelope (the
// paper shrinks "back to the preceding request"); this rules out zero-gain
// moves when duplicate requests pin the same edge position and guarantees
// termination, since every iteration strictly decreases the total envelope.
func (b *builder) shrink() {
	for {
		cand := -1
		for a := 0; a < b.st.Layout.Tapes(); a++ {
			if _, _, ok := b.shrinkMove(a); !ok {
				continue
			}
			if cand < 0 ||
				b.count[a] < b.count[cand] ||
				(b.count[a] == b.count[cand] && b.jukeboxRank(a) < b.jukeboxRank(cand)) {
				cand = a
			}
		}
		if cand < 0 {
			return
		}
		b.shrinkOne(cand)
	}
}

// shrinkMove determines whether tape a's envelope can shrink: its edge must
// be defined by a scheduled request, moving that request must strictly
// lower the envelope, and the request must be satisfiable inside another
// tape's envelope. It returns the edge request index and the post-move
// envelope boundary.
func (b *builder) shrinkMove(a int) (edge, newEnv int, ok bool) {
	edge, maxPos, second := -1, -1, -1
	for _, i := range b.onT[a] {
		p := b.where[i].Pos
		if p > maxPos {
			edge, second = i, maxPos
			maxPos = p
		} else if p > second {
			second = p
		}
	}
	if edge < 0 || maxPos+1 != b.env[a] {
		return -1, 0, false // envelope pinned by the head or empty
	}
	newEnv = second + 1
	if a == b.st.Mounted && b.st.Head > newEnv {
		newEnv = b.st.Head
	}
	if newEnv >= b.env[a] {
		return -1, 0, false // no strict shrink (duplicate edge position)
	}
	if _, reloc := b.relocation(a, edge); !reloc {
		return -1, 0, false
	}
	return edge, newEnv, true
}

// relocation finds the copy that the edge request of tape a should move to:
// a copy on another tape strictly inside that tape's envelope. Among
// several, the tape with the most scheduled requests wins, ties by jukebox
// order (mirroring the absorb rule).
func (b *builder) relocation(a, edge int) (layout.Replica, bool) {
	var best layout.Replica
	found := false
	for _, c := range b.st.Layout.Replicas(b.reqs[edge].Block) {
		if c.Tape == a || c.Pos+1 > b.env[c.Tape] || !b.copyOK(c) {
			continue
		}
		if !found ||
			b.count[c.Tape] > b.count[best.Tape] ||
			(b.count[c.Tape] == b.count[best.Tape] &&
				b.jukeboxRank(c.Tape) < b.jukeboxRank(best.Tape)) {
			best, found = c, true
		}
	}
	return best, found
}

// shrinkOne moves tape a's edge request elsewhere and pulls the envelope
// back to the next scheduled request (or the mounted head / zero). The
// moved request stays scheduled throughout (unassign immediately followed
// by assign), so no extension list changes; only tape a's envelope moved,
// so only tape a's prefix-bandwidth cache is invalidated.
func (b *builder) shrinkOne(a int) {
	edge, newEnv, ok := b.shrinkMove(a)
	if !ok {
		return
	}
	c, _ := b.relocation(a, edge)
	b.unassign(edge)
	b.assign(edge, c)
	b.env[a] = newEnv
	b.dirty[a] = true
}

// mustReplicaOn is ReplicaOn for copies known to exist.
func mustReplicaOn(l *layout.Layout, blk layout.BlockID, tape int) layout.Replica {
	c, ok := l.ReplicaOn(blk, tape)
	if !ok {
		panic("core: missing replica")
	}
	return c
}

// locateBack returns the cost of locating from block boundary `from` back
// to boundary `to` (the "locate back to the position of the current
// envelope" term of the step-3 incremental cost).
func locateBack(costs *sched.CostModel, from, to int) float64 {
	sec, _ := costs.Locate(from, to)
	return sec
}

// extensionCost is the step-3 incremental cost of extending tape t's
// envelope (currently at `env`) through the given positions in order:
// locate+read through the positions, locate back to the envelope, plus the
// mechanical switch cost for a tape not yet in the schedule.
func extensionCost(st *sched.State, env, tape int, positions []int) float64 {
	head := env
	total := 0.0
	for _, pos := range positions {
		step, h := st.Costs.ServeOne(head, pos)
		total += step
		head = h
	}
	total += locateBack(st.Costs, head, env)
	if env == 0 && tape != st.Mounted {
		total += st.Costs.SwitchTime()
	}
	return total
}

// sweepOrderInts arranges positions into sweep execution order from the
// given head: ascending positions at or above the head, then descending
// positions below it.
func sweepOrderInts(positions []int, head int) []int {
	return sweepOrderInto(nil, positions, head)
}

// posSorter is reusable scratch for sweepOrderBits: an occupancy bitmap
// over block positions plus per-position multiplicities. Both are kept
// all-zero between calls (the bitmap is cleared word-wise, the counts
// sparsely through the input positions), so a call touches O(range/64 + n)
// words rather than the whole position space.
type posSorter struct {
	set []uint64
	cnt []uint32
}

// sweepOrderBits is sweepOrderInto for positions on the block grid: a
// counting sort keyed by the occupancy bitmap, emitting each position as
// many times as it occurs. Positions are small dense block indexes, so
// extracting set bits word by word replaces both comparison sorts; the
// output is identical (equal ints are indistinguishable, so counting sort
// is trivially stable).
func sweepOrderBits(dst, positions []int, head int, ps *posSorter) []int {
	maxp := -1
	for _, p := range positions {
		if p > maxp {
			maxp = p
		}
	}
	if maxp < 0 {
		return dst[:0]
	}
	words := maxp>>6 + 1
	if len(ps.set) < words {
		ps.set = make([]uint64, words)
		ps.cnt = make([]uint32, words*64)
	}
	set, cnt := ps.set, ps.cnt
	for _, p := range positions {
		set[p>>6] |= uint64(1) << uint(p&63)
		cnt[p]++
	}
	dst = dst[:0]
	start := head
	if start < 0 {
		start = 0
	}
	for w := start >> 6; w < words; w++ {
		word := set[w]
		if w == start>>6 {
			word &^= uint64(1)<<uint(start&63) - 1
		}
		for word != 0 {
			p := w<<6 | mathbits.TrailingZeros64(word)
			for c := cnt[p]; c > 0; c-- {
				dst = append(dst, p)
			}
			word &= word - 1
		}
	}
	limit := head
	if limit > maxp+1 {
		limit = maxp + 1
	}
	if limit > 0 {
		wtop := (limit - 1) >> 6
		for w := wtop; w >= 0; w-- {
			word := set[w]
			if w == wtop {
				if r := limit - wtop<<6; r < 64 {
					word &= uint64(1)<<uint(r) - 1
				}
			}
			for word != 0 {
				b := 63 - mathbits.LeadingZeros64(word)
				p := w<<6 | b
				for c := cnt[p]; c > 0; c-- {
					dst = append(dst, p)
				}
				word &^= uint64(1) << uint(b)
			}
		}
	}
	for i := 0; i < words; i++ {
		set[i] = 0
	}
	for _, p := range positions {
		cnt[p] = 0
	}
	return dst
}

// bandwidthBits is sweepOrderBits fused with CostModel.EffectiveBandwidth:
// it walks the occupancy bitmap in sweep order from startHead and
// accumulates the serve costs directly, never materializing the ordered
// position list. The additions happen in exactly the order ExecTime would
// perform them, so the score is bit-identical to the two-step computation
// (the core tests pin this). selectTape calls it once per candidate tape
// per major reschedule, the single hottest call site of the max-bandwidth
// variant.
func bandwidthBits(costs *sched.CostModel, mounted, head, tape, startHead int, positions []int, ps *posSorter) float64 {
	maxp := -1
	for _, p := range positions {
		if p > maxp {
			maxp = p
		}
	}
	if maxp < 0 {
		return 0
	}
	words := maxp>>6 + 1
	if len(ps.set) < words {
		ps.set = make([]uint64, words)
		ps.cnt = make([]uint32, words*64)
	}
	set, cnt := ps.set, ps.cnt
	for _, p := range positions {
		set[p>>6] |= uint64(1) << uint(p&63)
		cnt[p]++
	}
	exec := 0.0
	cur := startHead
	start := startHead
	if start < 0 {
		start = 0
	}
	for w := start >> 6; w < words; w++ {
		word := set[w]
		if w == start>>6 {
			word &^= uint64(1)<<uint(start&63) - 1
		}
		for word != 0 {
			p := w<<6 | mathbits.TrailingZeros64(word)
			for c := cnt[p]; c > 0; c-- {
				step, h := costs.ServeOne(cur, p)
				exec += step
				cur = h
			}
			word &= word - 1
		}
	}
	limit := startHead
	if limit > maxp+1 {
		limit = maxp + 1
	}
	if limit > 0 {
		wtop := (limit - 1) >> 6
		for w := wtop; w >= 0; w-- {
			word := set[w]
			if w == wtop {
				if r := limit - wtop<<6; r < 64 {
					word &= uint64(1)<<uint(r) - 1
				}
			}
			for word != 0 {
				b := 63 - mathbits.LeadingZeros64(word)
				p := w<<6 | b
				for c := cnt[p]; c > 0; c-- {
					step, h := costs.ServeOne(cur, p)
					exec += step
					cur = h
				}
				word &^= uint64(1) << uint(b)
			}
		}
	}
	for i := 0; i < words; i++ {
		set[i] = 0
	}
	for _, p := range positions {
		cnt[p] = 0
	}
	total := costs.SwitchCost(mounted, head, tape) + exec
	if total <= 0 {
		return 0
	}
	return float64(len(positions)) * costs.BlockMB / total
}

// sweepOrderInto is sweepOrderInts writing into a reusable buffer.
func sweepOrderInto(dst, positions []int, head int) []int {
	dst = dst[:0]
	for _, p := range positions {
		if p >= head {
			dst = append(dst, p)
		}
	}
	sort.Ints(dst)
	k := len(dst)
	for _, p := range positions {
		if p < head {
			dst = append(dst, p)
		}
	}
	tail := dst[k:]
	sort.Ints(tail)
	for i, j := 0, len(tail)-1; i < j; i, j = i+1, j-1 {
		tail[i], tail[j] = tail[j], tail[i]
	}
	return dst
}

// resetInts returns s resized to n and zeroed, reusing capacity.
func resetInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// resetRowsInt resizes a slice of rows to n rows, truncating each reused
// row to length zero.
func resetRowsInt(rows [][]int, n int) [][]int {
	if cap(rows) < n {
		grown := make([][]int, n)
		copy(grown, rows)
		rows = grown
	} else {
		rows = rows[:n]
	}
	for i := range rows {
		rows[i] = rows[i][:0]
	}
	return rows
}

func resetRowsExt(rows [][]extEntry, n int) [][]extEntry {
	if cap(rows) < n {
		grown := make([][]extEntry, n)
		copy(grown, rows)
		rows = grown
	} else {
		rows = rows[:n]
	}
	for i := range rows {
		rows[i] = rows[i][:0]
	}
	return rows
}

func resetRowsFloat(rows [][]float64, n int) [][]float64 {
	if cap(rows) < n {
		grown := make([][]float64, n)
		copy(grown, rows)
		rows = grown
	} else {
		rows = rows[:n]
	}
	for i := range rows {
		rows[i] = rows[i][:0]
	}
	return rows
}
