// Package core implements the envelope-extension scheduling algorithm of
// Section 3.2, the paper's primary contribution.
//
// The algorithm takes a global view across all tapes. The requests for
// non-replicated blocks pin down, per tape, a prefix that must be traversed
// no matter what; the collection of these prefixes is the "envelope".
// Requested blocks whose replicas already fall inside the envelope are
// absorbed for free. The envelope is then repeatedly extended by the prefix
// of unscheduled requests with the highest incremental bandwidth, and shrunk
// whenever a replicated block scheduled at the outer edge of one tape's
// envelope becomes satisfiable inside another tape's newly enclosed portion.
// The result is the "upper envelope", which satisfies every request; a
// tape-selection policy then picks which tape to service first.
//
// Scheduling retrievals in this setting is NP-hard (Theorem 1); the
// envelope-extension heuristic is within a harmonic factor of the optimal
// extension (Theorem 2), which package core exposes via Theorem2Bound.
package core

import (
	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
	"tapejuke/internal/stats"
	"tapejuke/internal/tapemodel"
)

// Variant selects the tape-switch policy the envelope algorithm applies to
// the per-tape request sets within the upper envelope.
type Variant int

const (
	// OldestRequest restricts the choice to tapes that can satisfy the
	// oldest pending request within the envelope, then picks the one with
	// the most satisfiable requests ("oldest request envelope").
	OldestRequest Variant = iota
	// MaxRequests picks the tape with the most requests satisfiable within
	// the envelope ("max requests envelope").
	MaxRequests
	// MaxBandwidth picks the tape with the highest effective bandwidth for
	// its within-envelope schedule ("max bandwidth envelope"). The paper's
	// recommended algorithm.
	MaxBandwidth
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case OldestRequest:
		return "oldest-request"
	case MaxRequests:
		return "max-requests"
	case MaxBandwidth:
		return "max-bandwidth"
	}
	return "unknown"
}

// Envelope is the envelope-extension scheduler. It satisfies
// sched.Scheduler. With no replicated data it degenerates into the dynamic
// algorithm with the same policy, as the paper observes.
//
// An Envelope reuses its builder and selection scratch buffers across
// reschedules, so the steady-state major-reschedule path is allocation-free
// apart from the sweep handed back to the engine.
type Envelope struct {
	variant Variant
	env     []int // upper envelope from the last major reschedule, per tape
	env0    []int // retired env backing stashed by ResetRun for reuse

	b *builder // reusable envelope construction state

	// Reusable selection/extraction scratch.
	sets     [][]*sched.Request // selectTape: per-tape in-envelope requests
	posBits  posSorter          // selectTape: bandwidthBits bitmap scratch
	oldestOn []bool             // selectTape: tapes covering the oldest request
	reqsBuf  []*sched.Request   // Reschedule: extracted requests
	posSets  [][]int            // selectTape: positions of sets' requests, same shape
}

// NewEnvelope returns the envelope-extension scheduler with the given
// tape-selection variant.
func NewEnvelope(v Variant) *Envelope { return &Envelope{variant: v} }

// Name returns e.g. "envelope-max-bandwidth".
func (e *Envelope) Name() string { return "envelope-" + e.variant.String() }

// ResetRun implements sched.RunResetter: it restores the just-constructed
// observable state (no envelope yet -- OnArrival and OnEvict key off
// e.env == nil) while parking the envelope's backing array and keeping the
// builder and selection scratch, so a reused scheduler starts the next run
// identical to a fresh one but without re-growing ~35 KB of buffers.
func (e *Envelope) ResetRun() {
	if e.env != nil {
		e.env0 = e.env[:0]
	}
	e.env = nil
}

// Variant returns the tape-selection variant.
func (e *Envelope) Variant() Variant { return e.variant }

// UpperEnvelope returns the per-tape envelope boundaries computed by the
// most recent major reschedule (block-boundary positions: env[t] = p means
// the schedule traverses tape t up to, but not past, position p). It returns
// nil before the first reschedule. Exposed for tests and instrumentation.
func (e *Envelope) UpperEnvelope() []int { return e.env }

// Reschedule computes the upper envelope over the whole pending list,
// selects a tape with the configured variant, and extracts every pending
// request satisfiable by that tape within the envelope.
func (e *Envelope) Reschedule(st *sched.State) (int, *sched.Sweep, bool) {
	if len(st.Pending) == 0 {
		return 0, nil, false
	}
	if e.b == nil {
		e.b = &builder{}
	}
	e.b.reset(st)
	e.b.build()
	// Copy the envelope out of the builder: e.env must survive (OnArrival
	// mutates it) while the builder is reset by the next reschedule. After a
	// ResetRun the backing array is parked in env0; reclaim it here so
	// reusing the scheduler across runs stays allocation-free.
	if e.env == nil {
		e.env, e.env0 = e.env0, nil
	}
	e.env = append(e.env[:0], e.b.env...)
	env := e.env

	tape, ok := e.selectTape(st, env)
	if !ok {
		return 0, nil, false
	}
	// Extract the requests satisfiable by `tape` within the upper envelope
	// (in general a superset of the per-tape schedule built during envelope
	// construction -- replicated requests assigned elsewhere may also have
	// an in-envelope copy here).
	reqs := e.reqsBuf[:0]
	for _, r := range st.Pending {
		if c, in := replicaInside(st, r, tape, env); in {
			r.Target = c
			reqs = append(reqs, r)
		}
	}
	e.reqsBuf = reqs[:0]
	if len(reqs) == 0 {
		return 0, nil, false
	}
	st.RemovePending(reqs)
	return tape, st.NewSweep(reqs, st.StartHead(tape)), true
}

// OnArrival implements the envelope incremental scheduler. A request for a
// block with a copy on the current tape inside the upper envelope is
// inserted into the in-flight sweep like the dynamic algorithms do.
// Otherwise the extension machinery (steps 3-5) runs for the single new
// request to decide which tape and copy should satisfy it; if that choice is
// the current tape and the position is still ahead of the head, the request
// joins the sweep, else it is deferred to the pending list.
func (e *Envelope) OnArrival(st *sched.State, r *sched.Request) bool {
	if st.Active == nil || st.Mounted < 0 || e.env == nil || !st.Up(st.Mounted) {
		return false
	}
	if c, ok := st.Layout.ReplicaOn(r.Block, st.Mounted); ok && c.Pos < e.env[st.Mounted] && st.CopyOK(c) {
		r.Target = c
		return st.Active.Insert(r, st.Head)
	}
	// Single-request envelope extension: choose the replica whose envelope
	// extension has the lowest incremental cost (equivalently, for one
	// block, the highest incremental bandwidth).
	bestTape, bestCost := -1, 0.0
	var bestCopy layout.Replica
	for _, c := range st.Layout.Replicas(r.Block) {
		if !st.CopyOK(c) {
			continue
		}
		cost := extensionCost(st, e.env[c.Tape], c.Tape, []int{c.Pos})
		if bestTape < 0 || cost < bestCost {
			bestTape, bestCost, bestCopy = c.Tape, cost, c
		}
	}
	if bestTape < 0 {
		return false
	}
	if bestCopy.Pos+1 > e.env[bestTape] {
		e.env[bestTape] = bestCopy.Pos + 1
	}
	if bestTape == st.Mounted {
		r.Target = bestCopy
		return st.Active.Insert(r, st.Head)
	}
	return false
}

// OnEvict tells the scheduler the engine cancelled r (deadline expiry) out
// of the drive's in-flight sweep. When r was scheduled on the mounted tape,
// the envelope boundary tightens to the remaining sweep's reach -- the head
// plus whatever is still scheduled ahead of it -- without a full rebuild, so
// incremental arrivals no longer ride through positions the sweep will never
// visit. Implements the engine's optional evictor hook.
func (e *Envelope) OnEvict(st *sched.State, r *sched.Request) {
	if e.env == nil || st.Mounted < 0 || r.Target.Tape != st.Mounted {
		return
	}
	edge := st.Head
	if st.Active != nil {
		if m := st.Active.MaxPos(); m+1 > edge {
			edge = m + 1
		}
	}
	if edge < e.env[st.Mounted] {
		e.env[st.Mounted] = edge
	}
}

// OnCopyAdded tells the scheduler the repair subsystem minted a new copy
// of block b at c. When the copy lands on the mounted tape ahead of the
// head during an active sweep, the envelope extends over it so
// incremental arrivals can target the fresh copy this pass -- the same
// extension OnArrival performs for a chosen replica. Copies elsewhere
// need nothing: every reschedule rebuilds the envelope from the live
// replica tables. Implements the engine's optional sched.CopyObserver
// hook.
func (e *Envelope) OnCopyAdded(st *sched.State, b layout.BlockID, c layout.Replica) {
	if e.env == nil || st.Active == nil || st.Mounted < 0 || c.Tape != st.Mounted {
		return
	}
	if c.Pos >= st.Head && c.Pos+1 > e.env[c.Tape] {
		e.env[c.Tape] = c.Pos + 1
	}
}

// OnCopyRemoved tells the scheduler a copy of block b at c was reclaimed.
// When the removed copy sat at the mounted tape's envelope edge, the
// boundary tightens to the remaining sweep's reach, exactly as OnEvict
// does, so incremental arrivals stop riding through a position nothing
// will visit.
func (e *Envelope) OnCopyRemoved(st *sched.State, b layout.BlockID, c layout.Replica) {
	if e.env == nil || st.Mounted < 0 || c.Tape != st.Mounted || c.Pos+1 != e.env[c.Tape] {
		return
	}
	edge := st.Head
	if st.Active != nil {
		if m := st.Active.MaxPos(); m+1 > edge {
			edge = m + 1
		}
	}
	if edge < e.env[st.Mounted] {
		e.env[st.Mounted] = edge
	}
}

// replicaInside returns block b's copy on `tape` when that copy lies inside
// the envelope and is readable. UsableOn is flattened here so the readable
// check inlines in the per-request extraction loop.
func replicaInside(st *sched.State, r *sched.Request, tape int, env []int) (layout.Replica, bool) {
	c, ok := st.Layout.ReplicaOn(r.Block, tape)
	if !ok || c.Pos+1 > env[tape] || !st.CopyOK(c) {
		return layout.Replica{}, false
	}
	return c, true
}

// selectTape applies the variant's tape-switch policy to the per-tape sets
// of requests satisfiable within the upper envelope. The per-tape sets and
// position buffers live on the Envelope and are reused across reschedules.
func (e *Envelope) selectTape(st *sched.State, env []int) (int, bool) {
	n := st.Layout.Tapes()
	if cap(e.sets) < n {
		grown := make([][]*sched.Request, n)
		copy(grown, e.sets)
		e.sets = grown
	} else {
		e.sets = e.sets[:n]
	}
	if cap(e.posSets) < n {
		grown := make([][]int, n)
		copy(grown, e.posSets)
		e.posSets = grown
	} else {
		e.posSets = e.posSets[:n]
	}
	sets, posSets := e.sets, e.posSets
	for t := range sets {
		sets[t] = sets[t][:0]
		posSets[t] = posSets[t][:0]
	}
	// The replica positions are recorded alongside the request sets so the
	// bandwidth scoring below never repeats the replica lookup.
	for _, r := range st.Pending {
		for _, c := range st.Layout.Replicas(r.Block) {
			if c.Pos+1 <= env[c.Tape] && st.CopyOK(c) {
				sets[c.Tape] = append(sets[c.Tape], r)
				posSets[c.Tape] = append(posSets[c.Tape], c.Pos)
			}
		}
	}

	candidate := func(t int) bool { return len(sets[t]) > 0 && st.Available(t) }
	if e.variant == OldestRequest {
		if cap(e.oldestOn) < n {
			e.oldestOn = make([]bool, n)
		} else {
			e.oldestOn = e.oldestOn[:n]
		}
		onTape := e.oldestOn
		for t := range onTape {
			onTape[t] = false
		}
		for _, c := range st.Layout.Replicas(st.Pending[0].Block) {
			if c.Pos+1 <= env[c.Tape] && st.CopyOK(c) {
				onTape[c.Tape] = true
			}
		}
		candidate = func(t int) bool { return onTape[t] && len(sets[t]) > 0 && st.Available(t) }
	}

	if st.AgeWeight > 0 {
		// Starvation-aware aging: restrict the choice to tapes whose
		// in-envelope set holds a request in the urgency window (the same
		// cut as the simple policies, over in-envelope requests). If no tape
		// passes both the base predicate and the window -- possible for the
		// oldest-request variant, whose oldest request may be out-urged by a
		// young near-deadline one -- fall back to the base predicate so a
		// schedulable system always schedules.
		maxU := 0.0
		for t := range sets {
			for _, r := range sets[t] {
				if u := st.Urgency(r); u > maxU {
					maxU = u
				}
			}
		}
		cut := maxU * st.AgeWeight / (1 + st.AgeWeight)
		base := candidate
		aged := func(t int) bool {
			if !base(t) {
				return false
			}
			for _, r := range sets[t] {
				if st.Urgency(r) >= cut {
					return true
				}
			}
			return false
		}
		any := false
		for t := 0; t < n && !any; t++ {
			any = aged(t)
		}
		if any {
			candidate = aged
		}
	}

	best, bestScore := -1, -1.0
	st.JukeboxOrder(func(t int) bool {
		if !candidate(t) {
			return true
		}
		var score float64
		if e.variant == MaxBandwidth {
			startHead := st.StartHead(t)
			score = bandwidthBits(st.Costs, st.Mounted, st.Head, t, startHead, e.posSets[t], &e.posBits)
		} else {
			score = float64(len(sets[t]))
		}
		if score > bestScore {
			best, bestScore = t, score
		}
		return true
	})
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Theorem2Bound returns the paper's Theorem 2 upper bound on the extension
// cost of the envelope schedule: with n requests unscheduled at the end of
// step 2, C(S2) - C(S1) <= H_n*(C(S2opt)-C(S1)) - n*(H_n-1)*(Cs+Cr) + n*Cd,
// where Cs is the short-forward-locate startup, Cr the block transfer time,
// Cd the difference between the long and short forward startup costs, and
// H_n the n-th harmonic number. optExtension is C(S2opt) - C(S1).
// The bound's constants come from the piecewise-linear helical-scan model,
// so it takes the concrete Profile rather than the Positioner interface.
func Theorem2Bound(prof *tapemodel.Profile, blockMB float64, n int, optExtension float64) float64 {
	h := stats.Harmonic(n)
	cs := prof.ShortForward.Startup
	cr := prof.Read(blockMB, 0)
	cd := prof.LongForward.Startup - prof.ShortForward.Startup
	nf := float64(n)
	return h*optExtension - nf*(h-1)*(cs+cr) + nf*cd
}
