package core

import (
	"testing"

	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
)

// evictFixture: three requests on tape 0 (positions 2, 5, 9), one on tape 1.
func evictFixture(t *testing.T) *sched.State {
	t.Helper()
	l, err := layout.NewManual(3, 100, 0, [][]layout.Replica{
		{{Tape: 0, Pos: 2}},
		{{Tape: 0, Pos: 5}},
		{{Tape: 0, Pos: 9}},
		{{Tape: 1, Pos: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return stateFor(t, l, 0, 0)
}

// TestOnEvictTightensEnvelope: cancelling the farthest scheduled request
// out of the in-flight sweep pulls the mounted tape's envelope boundary
// back to the sweep's remaining reach.
func TestOnEvictTightensEnvelope(t *testing.T) {
	st := evictFixture(t)
	for i := 0; i < 3; i++ {
		addReq(st, int64(i+1), layout.BlockID(i))
	}
	e := NewEnvelope(MaxRequests)
	tape, sweep, ok := e.Reschedule(st)
	if !ok || tape != 0 || sweep.Len() != 3 {
		t.Fatalf("reschedule: tape=%d len=%d ok=%v", tape, sweep.Len(), ok)
	}
	if e.UpperEnvelope()[0] != 10 {
		t.Fatalf("env[0] = %d, want 10 (through position 9)", e.UpperEnvelope()[0])
	}
	st.Active = sweep

	// Evict the request at position 9; the sweep now reaches only to 5.
	var victim *sched.Request
	for _, r := range sweep.Requests() {
		if r.Target.Pos == 9 {
			victim = r
		}
	}
	if victim == nil || !sweep.Remove(victim) {
		t.Fatal("could not remove the position-9 request from the sweep")
	}
	e.OnEvict(st, victim)
	if got := e.UpperEnvelope()[0]; got != 6 {
		t.Errorf("env[0] after eviction = %d, want 6 (sweep reach)", got)
	}
	// (An incremental arrival beyond the tightened boundary now pays the
	// full extension cost again instead of riding through for free; the
	// extension machinery may still choose to re-extend.)
}

// TestOnEvictIgnoresOtherTapes: evicting a request targeted at an
// unmounted tape leaves the mounted envelope alone.
func TestOnEvictIgnoresOtherTapes(t *testing.T) {
	st := evictFixture(t)
	for i := 0; i < 3; i++ {
		addReq(st, int64(i+1), layout.BlockID(i))
	}
	e := NewEnvelope(MaxRequests)
	_, sweep, ok := e.Reschedule(st)
	if !ok {
		t.Fatal("no schedule")
	}
	st.Active = sweep
	before := append([]int(nil), e.UpperEnvelope()...)
	e.OnEvict(st, &sched.Request{ID: 9, Block: 3, Target: layout.Replica{Tape: 1, Pos: 4}})
	for i, v := range e.UpperEnvelope() {
		if v != before[i] {
			t.Fatalf("envelope changed from %v to %v on a foreign eviction", before, e.UpperEnvelope())
		}
	}
}

// TestEnvelopeAgedSelection: with a dominant aging weight the envelope's
// tape choice moves to the tape holding the near-deadline request; with
// weight zero it is untouched.
func TestEnvelopeAgedSelection(t *testing.T) {
	mk := func() *sched.State {
		st := evictFixture(t)
		st.Now = 1000
		for i := 0; i < 3; i++ {
			addReq(st, int64(i+1), layout.BlockID(i)).Arrival = 990
		}
		urgent := addReq(st, 4, layout.BlockID(3))
		urgent.Arrival, urgent.Deadline = 900, 1001
		return st
	}

	st := mk()
	if tape, _, ok := NewEnvelope(MaxRequests).Reschedule(st); !ok || tape != 0 {
		t.Fatalf("unaged envelope chose tape %d, want the popular tape 0", tape)
	}
	st = mk()
	st.AgeWeight = 50
	if tape, _, ok := NewEnvelope(MaxRequests).Reschedule(st); !ok || tape != 1 {
		t.Errorf("aged envelope chose tape %d, want the urgent tape 1", tape)
	}
}

// TestEnvelopeOldestAgedFallback: for the oldest-request variant, when the
// urgency window excludes every tape serving the oldest request, the
// restriction wins -- the system never deadlocks and never starves the
// oldest request.
func TestEnvelopeOldestAgedFallback(t *testing.T) {
	st := evictFixture(t)
	st.Now = 1000
	addReq(st, 1, layout.BlockID(0)).Arrival = 0 // oldest, tape 0, no deadline
	urgent := addReq(st, 2, layout.BlockID(3))   // young, tape 1, nearly due
	urgent.Arrival, urgent.Deadline = 999, 1000.5

	st.AgeWeight = 1000
	tape, sweep, ok := NewEnvelope(OldestRequest).Reschedule(st)
	if !ok || tape != 0 {
		t.Fatalf("aged oldest-request envelope chose tape %d, want 0 (guarantee)", tape)
	}
	if sweep.Len() != 1 || sweep.Requests()[0].ID != 1 {
		t.Errorf("sweep does not serve the oldest request: %v", sweep.Requests())
	}
}
