package core

import (
	"math/rand"
	"testing"
)

// Property: bandwidthBits, the fused bitmap walk used by the max-bandwidth
// tape selection, is bit-identical to the two-step reference computation
// (sweepOrderBits into an explicit list, then EffectiveBandwidth over it)
// for random position multisets, heads, and switch situations, with and
// without the dense cost table.
func TestBandwidthBitsMatchesReference(t *testing.T) {
	for _, table := range []bool{false, true} {
		cm := costs()
		if table {
			if !cm.EnableTable(448) {
				t.Fatal("expected the EXB profile to be tabulable")
			}
		}
		rng := rand.New(rand.NewSource(11))
		var ps, ref posSorter
		for trial := 0; trial < 300; trial++ {
			n := rng.Intn(40) // 0..39 positions, duplicates likely
			positions := make([]int, n)
			for i := range positions {
				positions[i] = rng.Intn(448)
			}
			mounted := rng.Intn(10)
			tape := rng.Intn(10)
			head := rng.Intn(449)
			startHead := head
			if tape != mounted {
				startHead = 0
			}
			order := sweepOrderBits(nil, positions, startHead, &ref)
			want := cm.EffectiveBandwidth(mounted, head, tape, startHead, order)
			got := bandwidthBits(cm, mounted, head, tape, startHead, positions, &ps)
			if got != want {
				t.Fatalf("table=%v trial %d: bandwidthBits = %v, reference = %v (positions %v, mounted %d, tape %d, head %d)",
					table, trial, got, want, positions, mounted, tape, head)
			}
		}
	}
}
