package core

import (
	"math/rand"
	"testing"

	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
)

// benchEnvelopeState builds a replicated scheduling state with n pending
// requests: the envelope algorithm's costly case.
func benchEnvelopeState(b *testing.B, n, nr int) (*sched.State, []*sched.Request) {
	b.Helper()
	l, err := layout.Build(layout.Config{
		Tapes: 10, TapeCapBlocks: 448, HotPercent: 10,
		Replicas: nr, Kind: layout.Vertical, StartPos: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	st := sched.NewState(l, costs())
	st.Mounted, st.Head = 3, 100
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		st.Pending = append(st.Pending, &sched.Request{
			ID: int64(i), Block: layout.BlockID(rng.Intn(l.NumBlocks())),
		})
	}
	return st, append([]*sched.Request(nil), st.Pending...)
}

func benchUpperEnvelope(b *testing.B, n, nr int) {
	st, _ := benchEnvelopeState(b, n, nr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		computeUpperEnvelope(st)
	}
}

func BenchmarkUpperEnvelope60FullRepl(b *testing.B)  { benchUpperEnvelope(b, 60, 9) }
func BenchmarkUpperEnvelope140FullRepl(b *testing.B) { benchUpperEnvelope(b, 140, 9) }
func BenchmarkUpperEnvelope140NoRepl(b *testing.B)   { benchUpperEnvelope(b, 140, 0) }

func BenchmarkEnvelopeReschedule140(b *testing.B) {
	st, saved := benchEnvelopeState(b, 140, 9)
	e := NewEnvelope(MaxBandwidth)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := e.Reschedule(st); !ok {
			b.Fatal("reschedule failed")
		}
		st.Pending = st.Pending[:0]
		st.Pending = append(st.Pending, saved...)
	}
}

// BenchmarkEnvelopeReschedule exercises the pure major-reschedule path
// (envelope construction, tape selection, request extraction) without the
// simulation engine, across the queue lengths of the paper's figures and
// full replication. Allocations are reported so the steady-state
// reschedule's allocation profile is tracked by scripts/bench.sh.
func BenchmarkEnvelopeReschedule(b *testing.B) {
	cases := []struct {
		name string
		q    int // pending queue length
		nr   int // replicas per hot block
	}{
		{"q=60", 60, 4},
		{"q=140", 140, 4},
		{"repl=9", 60, 9},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			st, saved := benchEnvelopeState(b, tc.q, tc.nr)
			e := NewEnvelope(MaxBandwidth)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, ok := e.Reschedule(st); !ok {
					b.Fatal("reschedule failed")
				}
				st.Pending = st.Pending[:0]
				st.Pending = append(st.Pending, saved...)
			}
		})
	}
}

// BenchmarkEnvelopeRescheduleFaultHooks is the fault-free hot path with
// the fault-model hooks armed: a non-nil all-healthy Down mask and a
// DeadCopy callback that never kills a copy. The ISSUE's perf gate is that
// this stays within 5% of the plain BenchmarkEnvelopeReschedule cases —
// fault awareness must be free when nothing faults.
func BenchmarkEnvelopeRescheduleFaultHooks(b *testing.B) {
	cases := []struct {
		name string
		q    int
		nr   int
	}{
		{"q=60", 60, 4},
		{"q=140", 140, 4},
		{"repl=9", 60, 9},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			st, saved := benchEnvelopeState(b, tc.q, tc.nr)
			st.Down = make([]bool, st.Layout.Tapes())
			st.DeadCopy = func(tape, pos int) bool { return false }
			e := NewEnvelope(MaxBandwidth)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, ok := e.Reschedule(st); !ok {
					b.Fatal("reschedule failed")
				}
				st.Pending = st.Pending[:0]
				st.Pending = append(st.Pending, saved...)
			}
		})
	}
}

// BenchmarkEnvelopeRescheduleWithAging measures the overload extension's
// cost at the major reschedule: requests carry arrivals and deadlines and
// the aged tape-selection window is active. The "w=0" case is the PR's perf
// gate -- with the weight at zero the aged code must not run at all, so it
// stays within noise of the plain BenchmarkEnvelopeReschedule cases.
func BenchmarkEnvelopeRescheduleWithAging(b *testing.B) {
	cases := []struct {
		name   string
		q      int
		nr     int
		weight float64
	}{
		{"w=0/q=140", 140, 4, 0},
		{"w=1/q=140", 140, 4, 1},
		{"w=1/repl=9", 60, 9, 1},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			st, saved := benchEnvelopeState(b, tc.q, tc.nr)
			rng := rand.New(rand.NewSource(17))
			for i, r := range saved {
				r.Arrival = float64(i) * 10
				if i%2 == 0 {
					r.Deadline = r.Arrival + 500 + rng.Float64()*5000
				}
			}
			st.Now = float64(len(saved)) * 10
			st.AgeWeight = tc.weight
			e := NewEnvelope(MaxBandwidth)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, ok := e.Reschedule(st); !ok {
					b.Fatal("reschedule failed")
				}
				st.Pending = st.Pending[:0]
				st.Pending = append(st.Pending, saved...)
			}
		})
	}
}

func BenchmarkEnvelopeOnArrival(b *testing.B) {
	st, _ := benchEnvelopeState(b, 60, 9)
	e := NewEnvelope(MaxBandwidth)
	_, sweep, ok := e.Reschedule(st)
	if !ok {
		b.Fatal("setup failed")
	}
	st.Active = sweep
	rng := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &sched.Request{
			ID:    int64(1000 + i),
			Block: layout.BlockID(rng.Intn(st.Layout.NumBlocks())),
		}
		if !e.OnArrival(st, r) {
			st.Pending = append(st.Pending, r)
		}
	}
}
