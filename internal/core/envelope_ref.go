package core

import (
	"sort"

	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
)

// This file retains the straightforward O(iterations × tapes × pending·log n)
// envelope-extension construction as a reference implementation. The
// optimized builder in envelope.go must produce bit-identical envelopes,
// assignments, and tie-breaks; envelope_diff_test.go enforces that over
// randomized workloads and layouts. Keep this file naive and obviously
// correct — it is the specification the fast path is checked against.
//
// The only intentional departure from the original code is that
// refExtensionList orders equal positions by request index (duplicate
// requests for the same block share a position); the original sort.Slice
// left that order unspecified, which would make a bit-identical comparison
// ill-defined. The optimized builder uses the same canonical order.

// refBuilder mirrors builder but recomputes everything from scratch on
// every loop iteration.
type refBuilder struct {
	st      *sched.State
	env     []int
	count   []int
	where   []layout.Replica
	reqs    []*sched.Request
	onT     [][]int
	s1Where []layout.Replica
}

// refBuildEnvelope runs steps 1-6 naively.
func refBuildEnvelope(st *sched.State) *refBuilder {
	b := &refBuilder{
		st:    st,
		env:   make([]int, st.Layout.Tapes()),
		count: make([]int, st.Layout.Tapes()),
		reqs:  st.Pending,
		onT:   make([][]int, st.Layout.Tapes()),
	}
	b.where = make([]layout.Replica, len(b.reqs))
	for i := range b.where {
		b.where[i].Tape = -1
	}

	b.initialEnvelope() // step 1
	b.absorb()          // step 2
	b.s1Where = append([]layout.Replica(nil), b.where...)
	for b.unscheduledCount() > 0 {
		tape, prefix := b.bestExtension() // steps 3-4: choose prefix
		if tape < 0 {
			break
		}
		b.extend(tape, prefix) // step 4: extend envelope
		b.shrink()             // step 5: shrink envelopes
	} // step 6: iterate
	return b
}

func (b *refBuilder) initialEnvelope() {
	for i, r := range b.reqs {
		if b.st.Layout.Replicated(r.Block) {
			continue
		}
		c := b.st.Layout.Replicas(r.Block)[0]
		b.assign(i, c)
		if c.Pos+1 > b.env[c.Tape] {
			b.env[c.Tape] = c.Pos + 1
		}
	}
	if b.st.Mounted >= 0 && b.st.Head > b.env[b.st.Mounted] {
		b.env[b.st.Mounted] = b.st.Head
	}
}

func (b *refBuilder) absorb() {
	for i := range b.reqs {
		if b.where[i].Tape >= 0 {
			continue
		}
		if c, ok := b.insideChoice(i); ok {
			b.assign(i, c)
		}
	}
}

func (b *refBuilder) insideChoice(i int) (layout.Replica, bool) {
	var cands []layout.Replica
	for _, c := range b.st.Layout.Replicas(b.reqs[i].Block) {
		if c.Pos+1 <= b.env[c.Tape] {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return layout.Replica{}, false
	}
	for _, c := range cands {
		if c.Tape == b.st.Mounted {
			return c, true
		}
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if b.count[c.Tape] > b.count[best.Tape] ||
			(b.count[c.Tape] == b.count[best.Tape] &&
				b.jukeboxRank(c.Tape) < b.jukeboxRank(best.Tape)) {
			best = c
		}
	}
	return best, true
}

func (b *refBuilder) jukeboxRank(tape int) int {
	t0 := b.st.Mounted
	if t0 < 0 {
		t0 = 0
	}
	n := b.st.Layout.Tapes()
	return ((tape-t0)%n + n) % n
}

func (b *refBuilder) assign(i int, c layout.Replica) {
	b.where[i] = c
	b.count[c.Tape]++
	b.onT[c.Tape] = append(b.onT[c.Tape], i)
}

func (b *refBuilder) unassign(i int) {
	c := b.where[i]
	b.where[i].Tape = -1
	b.count[c.Tape]--
	list := b.onT[c.Tape]
	for k, idx := range list {
		if idx == i {
			b.onT[c.Tape] = append(list[:k], list[k+1:]...)
			break
		}
	}
}

func (b *refBuilder) unscheduledCount() int {
	n := 0
	for i := range b.where {
		if b.where[i].Tape < 0 {
			n++
		}
	}
	return n
}

func (b *refBuilder) bestExtension() (int, []int) {
	bestTape := -1
	var bestPrefix []int
	bestBW := -1.0
	for t := 0; t < b.st.Layout.Tapes(); t++ {
		ext := b.extensionList(t)
		if len(ext) == 0 {
			continue
		}
		head := b.env[t]
		cum := 0.0
		for j, idx := range ext {
			pos := mustReplicaOn(b.st.Layout, b.reqs[idx].Block, t).Pos
			step, h := b.st.Costs.ServeOne(head, pos)
			cum += step
			head = h
			total := cum + locateBack(b.st.Costs, head, b.env[t])
			if b.env[t] == 0 && t != b.st.Mounted {
				total += b.st.Costs.Prof.SwitchTime()
			}
			bw := float64(j+1) * b.st.Costs.BlockMB / total
			if bw > bestBW+1e-12 ||
				(bw > bestBW-1e-12 && bestTape >= 0 && b.betterTie(t, bestTape)) {
				bestTape, bestBW = t, bw
				bestPrefix = append(bestPrefix[:0], ext[:j+1]...)
			}
		}
	}
	return bestTape, bestPrefix
}

func (b *refBuilder) betterTie(a, c int) bool {
	if b.count[a] != b.count[c] {
		return b.count[a] > b.count[c]
	}
	return b.jukeboxRank(a) < b.jukeboxRank(c)
}

// refExtensionList rebuilds tape t's extension list from scratch: the
// indices of unscheduled requests with a copy on t, sorted by position with
// ties (duplicate requests for one block) by request index.
func (b *refBuilder) extensionList(t int) []int {
	var out []int
	for i := range b.reqs {
		if b.where[i].Tape >= 0 {
			continue
		}
		if _, ok := b.st.Layout.ReplicaOn(b.reqs[i].Block, t); ok {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(x, y int) bool {
		px := mustReplicaOn(b.st.Layout, b.reqs[out[x]].Block, t).Pos
		py := mustReplicaOn(b.st.Layout, b.reqs[out[y]].Block, t).Pos
		if px != py {
			return px < py
		}
		return out[x] < out[y]
	})
	return out
}

func (b *refBuilder) extend(tape int, prefix []int) {
	for _, i := range prefix {
		c := mustReplicaOn(b.st.Layout, b.reqs[i].Block, tape)
		b.assign(i, c)
		if c.Pos+1 > b.env[tape] {
			b.env[tape] = c.Pos + 1
		}
	}
}

func (b *refBuilder) shrink() {
	for {
		cand := -1
		for a := 0; a < b.st.Layout.Tapes(); a++ {
			if _, _, ok := b.shrinkMove(a); !ok {
				continue
			}
			if cand < 0 ||
				b.count[a] < b.count[cand] ||
				(b.count[a] == b.count[cand] && b.jukeboxRank(a) < b.jukeboxRank(cand)) {
				cand = a
			}
		}
		if cand < 0 {
			return
		}
		b.shrinkOne(cand)
	}
}

func (b *refBuilder) shrinkMove(a int) (edge, newEnv int, ok bool) {
	edge, maxPos, second := -1, -1, -1
	for _, i := range b.onT[a] {
		p := b.where[i].Pos
		if p > maxPos {
			edge, second = i, maxPos
			maxPos = p
		} else if p > second {
			second = p
		}
	}
	if edge < 0 || maxPos+1 != b.env[a] {
		return -1, 0, false
	}
	newEnv = second + 1
	if a == b.st.Mounted && b.st.Head > newEnv {
		newEnv = b.st.Head
	}
	if newEnv >= b.env[a] {
		return -1, 0, false
	}
	if _, reloc := b.relocation(a, edge); !reloc {
		return -1, 0, false
	}
	return edge, newEnv, true
}

func (b *refBuilder) relocation(a, edge int) (layout.Replica, bool) {
	var best layout.Replica
	found := false
	for _, c := range b.st.Layout.Replicas(b.reqs[edge].Block) {
		if c.Tape == a || c.Pos+1 > b.env[c.Tape] {
			continue
		}
		if !found ||
			b.count[c.Tape] > b.count[best.Tape] ||
			(b.count[c.Tape] == b.count[best.Tape] &&
				b.jukeboxRank(c.Tape) < b.jukeboxRank(best.Tape)) {
			best, found = c, true
		}
	}
	return best, found
}

func (b *refBuilder) shrinkOne(a int) {
	edge, newEnv, ok := b.shrinkMove(a)
	if !ok {
		return
	}
	c, _ := b.relocation(a, edge)
	b.unassign(edge)
	b.assign(edge, c)
	b.env[a] = newEnv
}
