package core

import (
	"testing"

	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
	"tapejuke/internal/stats"
	"tapejuke/internal/tapemodel"
)

func costs() *sched.CostModel {
	return &sched.CostModel{Prof: tapemodel.EXB8505XL(), BlockMB: 16}
}

func stateFor(t *testing.T, l *layout.Layout, mounted, head int) *sched.State {
	t.Helper()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	st := sched.NewState(l, costs())
	st.Mounted, st.Head = mounted, head
	return st
}

func addReq(st *sched.State, id int64, b layout.BlockID) *sched.Request {
	r := &sched.Request{ID: id, Block: b}
	st.Pending = append(st.Pending, r)
	return r
}

// TestFigure2Example reproduces the paper's Figure 2: blocks A and B on tape
// 1 near the beginning, C on tape 0, and D replicated immediately after C on
// tape 0 and at the far end of tape 1. With the head at the beginning of
// tape 1, the simple greedy algorithms would traverse all of tape 1 to fetch
// D; the envelope algorithm must instead extend tape 0's envelope from C to
// the adjacent copy of D.
func TestFigure2Example(t *testing.T) {
	// Block 0 = A (tape 1 pos 0), 1 = B (tape 1 pos 2),
	// 2 = C (tape 0 pos 5), 3 = D (tape 0 pos 6; tape 1 pos 440).
	l, err := layout.NewManual(2, 448, 0, [][]layout.Replica{
		{{Tape: 1, Pos: 0}},
		{{Tape: 1, Pos: 2}},
		{{Tape: 0, Pos: 5}},
		{{Tape: 0, Pos: 6}, {Tape: 1, Pos: 440}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := stateFor(t, l, 1, 0)
	for i := 0; i < 4; i++ {
		addReq(st, int64(i), layout.BlockID(i))
	}
	env := computeUpperEnvelope(st)
	// Tape 1's envelope covers only B (position 2 -> boundary 3): D must
	// not drag it to the end of the tape.
	if env[1] != 3 {
		t.Errorf("env[1] = %d, want 3 (through B only)", env[1])
	}
	// Tape 0's envelope is extended from C (boundary 6) through D's copy at
	// position 6 (boundary 7).
	if env[0] != 7 {
		t.Errorf("env[0] = %d, want 7 (C extended through D)", env[0])
	}
}

// TestEnvelopeDegeneratesWithoutReplication: with no replicated blocks, the
// upper envelope is exactly the per-tape highest request boundary.
func TestEnvelopeDegeneratesWithoutReplication(t *testing.T) {
	l, err := layout.NewManual(3, 100, 0, [][]layout.Replica{
		{{Tape: 0, Pos: 7}},
		{{Tape: 0, Pos: 3}},
		{{Tape: 1, Pos: 50}},
		{{Tape: 2, Pos: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := stateFor(t, l, -1, 0)
	for i := 0; i < 4; i++ {
		addReq(st, int64(i), layout.BlockID(i))
	}
	env := computeUpperEnvelope(st)
	want := []int{8, 51, 1}
	for tape, w := range want {
		if env[tape] != w {
			t.Errorf("env[%d] = %d, want %d", tape, env[tape], w)
		}
	}
}

// TestEnvelopeShrink constructs the situation of step 5: the mounted tape's
// cheap copy of R wins the first extension, then a later extension of tape 1
// encloses R's other copy, so tape 0's envelope must shrink back (here to
// zero: tape 0 drops out of the schedule entirely).
func TestEnvelopeShrink(t *testing.T) {
	// R: tape 0 pos 1 (cheap, mounted) and tape 1 pos 9.
	// S: tape 1 pos 20, tape 0 pos 150. T: tape 1 pos 21, tape 0 pos 151.
	l, err := layout.NewManual(2, 448, 0, [][]layout.Replica{
		{{Tape: 0, Pos: 1}, {Tape: 1, Pos: 9}},
		{{Tape: 1, Pos: 20}, {Tape: 0, Pos: 150}},
		{{Tape: 1, Pos: 21}, {Tape: 0, Pos: 151}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := stateFor(t, l, 0, 0)
	for i := 0; i < 3; i++ {
		addReq(st, int64(i), layout.BlockID(i))
	}
	env := computeUpperEnvelope(st)
	if env[0] != 0 {
		t.Errorf("env[0] = %d, want 0 (shrunk away after R relocated)", env[0])
	}
	if env[1] != 22 {
		t.Errorf("env[1] = %d, want 22 (through T at 21)", env[1])
	}
}

// TestEnvelopeCoversAllRequests: whatever the inputs, every pending request
// must have at least one copy inside the upper envelope.
func TestEnvelopeCoversAllRequests(t *testing.T) {
	l, err := layout.Build(layout.Config{
		Tapes: 10, TapeCapBlocks: 448, HotPercent: 10,
		Replicas: 9, Kind: layout.Vertical, StartPos: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := stateFor(t, l, 3, 100)
	for i := 0; i < 60; i++ {
		st.Pending = append(st.Pending, &sched.Request{
			ID:    int64(i),
			Block: layout.BlockID((i * 37) % l.NumBlocks()),
		})
	}
	env := computeUpperEnvelope(st)
	for _, r := range st.Pending {
		inside := false
		for _, c := range l.Replicas(r.Block) {
			if c.Pos+1 <= env[c.Tape] {
				inside = true
				break
			}
		}
		if !inside {
			t.Fatalf("request for block %d not covered by envelope %v", r.Block, env)
		}
	}
	// The envelope never regresses below the mounted head.
	if env[3] < 100 {
		t.Errorf("env[mounted] = %d, below the head position 100", env[3])
	}
}

func TestRescheduleExtractsWithinEnvelope(t *testing.T) {
	l, err := layout.Build(layout.Config{
		Tapes: 10, TapeCapBlocks: 448, HotPercent: 10,
		Replicas: 9, Kind: layout.Vertical, StartPos: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEnvelope(MaxBandwidth)
	st := stateFor(t, l, -1, 0)
	for i := 0; i < 40; i++ {
		addReq(st, int64(i), layout.BlockID((i*53)%l.NumBlocks()))
	}
	before := len(st.Pending)
	tape, sweep, ok := e.Reschedule(st)
	if !ok {
		t.Fatal("reschedule failed")
	}
	if sweep.Len() == 0 {
		t.Fatal("empty sweep")
	}
	if sweep.Len()+len(st.Pending) != before {
		t.Errorf("requests lost: %d + %d != %d", sweep.Len(), len(st.Pending), before)
	}
	env := e.UpperEnvelope()
	for _, r := range sweep.Requests() {
		if r.Target.Tape != tape {
			t.Fatalf("request targeted at tape %d, sweep tape %d", r.Target.Tape, tape)
		}
		if r.Target.Pos+1 > env[tape] {
			t.Fatalf("request at %d outside envelope %d", r.Target.Pos, env[tape])
		}
	}
}

func TestRescheduleEmptyPending(t *testing.T) {
	l, _ := layout.Build(layout.Config{Tapes: 4, TapeCapBlocks: 20, HotPercent: 20})
	st := stateFor(t, l, -1, 0)
	for _, v := range []Variant{OldestRequest, MaxRequests, MaxBandwidth} {
		if _, _, ok := NewEnvelope(v).Reschedule(st); ok {
			t.Errorf("%v rescheduled with empty pending", v)
		}
	}
}

func TestVariantSelection(t *testing.T) {
	// Tape 0 holds blocks 0,1 (two requests); tape 1 holds block 2 (one
	// request, the oldest).
	l, err := layout.NewManual(2, 100, 0, [][]layout.Replica{
		{{Tape: 0, Pos: 1}},
		{{Tape: 0, Pos: 2}},
		{{Tape: 1, Pos: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}

	newState := func() *sched.State {
		st := stateFor(t, l, -1, 0)
		addReq(st, 1, 2) // oldest: block 2 on tape 1
		addReq(st, 2, 0)
		addReq(st, 3, 1)
		return st
	}

	st := newState()
	tape, _, ok := NewEnvelope(MaxRequests).Reschedule(st)
	if !ok || tape != 0 {
		t.Errorf("max-requests envelope chose tape %d, want 0", tape)
	}

	st = newState()
	tape, sweep, ok := NewEnvelope(OldestRequest).Reschedule(st)
	if !ok || tape != 1 {
		t.Errorf("oldest-request envelope chose tape %d, want 1", tape)
	}
	if ok && sweep.Len() != 1 {
		t.Errorf("oldest-request sweep length %d, want 1", sweep.Len())
	}
}

func TestOnArrivalInsideEnvelope(t *testing.T) {
	l, err := layout.NewManual(2, 100, 0, [][]layout.Replica{
		{{Tape: 0, Pos: 10}},
		{{Tape: 0, Pos: 5}},
		{{Tape: 1, Pos: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEnvelope(MaxBandwidth)
	st := stateFor(t, l, -1, 0)
	addReq(st, 1, 0) // tape 0 pos 10 -> envelope boundary 11
	tape, sweep, ok := e.Reschedule(st)
	if !ok || tape != 0 {
		t.Fatalf("setup reschedule: tape=%d ok=%v", tape, ok)
	}
	st.Mounted, st.Head, st.Active = 0, 0, sweep

	// Block 1 (tape 0 pos 5) lies inside the envelope: inserted.
	r := &sched.Request{ID: 2, Block: 1}
	if !e.OnArrival(st, r) {
		t.Fatal("in-envelope arrival not inserted")
	}
	if st.Active.Len() != 2 {
		t.Fatalf("sweep length %d, want 2", st.Active.Len())
	}

	// Block 2 lives on tape 1 only: the single-request extension goes to
	// tape 1, so the arrival is deferred, but tape 1's envelope grows.
	r2 := &sched.Request{ID: 3, Block: 2}
	if e.OnArrival(st, r2) {
		t.Fatal("other-tape arrival inserted into mounted sweep")
	}
	if env := e.UpperEnvelope(); env[1] != 4 {
		t.Errorf("env[1] = %d, want 4 after single-request extension", env[1])
	}
}

func TestOnArrivalExtendsMountedEnvelope(t *testing.T) {
	// Block 1's only copy is far out on the mounted tape; the cheapest
	// extension is still the mounted tape, so the request joins the sweep
	// and the envelope stretches.
	l, err := layout.NewManual(2, 100, 0, [][]layout.Replica{
		{{Tape: 0, Pos: 10}},
		{{Tape: 0, Pos: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEnvelope(MaxBandwidth)
	st := stateFor(t, l, -1, 0)
	addReq(st, 1, 0)
	_, sweep, _ := e.Reschedule(st)
	st.Mounted, st.Head, st.Active = 0, 0, sweep

	r := &sched.Request{ID: 2, Block: 1}
	if !e.OnArrival(st, r) {
		t.Fatal("mounted-tape extension arrival not inserted")
	}
	if env := e.UpperEnvelope(); env[0] != 51 {
		t.Errorf("env[0] = %d, want 51", env[0])
	}
}

func TestOnArrivalIdleDefers(t *testing.T) {
	l, _ := layout.Build(layout.Config{Tapes: 4, TapeCapBlocks: 20, HotPercent: 20})
	e := NewEnvelope(MaxBandwidth)
	st := stateFor(t, l, -1, 0)
	if e.OnArrival(st, &sched.Request{ID: 1, Block: 0}) {
		t.Error("OnArrival before any reschedule should defer")
	}
}

func TestNames(t *testing.T) {
	cases := map[Variant]string{
		OldestRequest: "envelope-oldest-request",
		MaxRequests:   "envelope-max-requests",
		MaxBandwidth:  "envelope-max-bandwidth",
	}
	for v, want := range cases {
		if got := NewEnvelope(v).Name(); got != want {
			t.Errorf("Name(%v) = %q, want %q", v, got, want)
		}
		if NewEnvelope(v).Variant() != v {
			t.Errorf("Variant(%v) roundtrip failed", v)
		}
	}
	if Variant(99).String() != "unknown" {
		t.Error("unknown variant string")
	}
}

func TestTheorem2Bound(t *testing.T) {
	prof := tapemodel.EXB8505XL()
	// n = 0: no unscheduled requests, bound equals the optimal extension.
	if got := Theorem2Bound(prof, 16, 0, 100); got != 0 {
		t.Errorf("bound(n=0) = %v, want 0 (H_0 = 0)", got)
	}
	// n = 1: H_1 = 1, so the bound is opt + Cd.
	cd := prof.LongForward.Startup - prof.ShortForward.Startup
	if got, want := Theorem2Bound(prof, 16, 1, 100), 100+cd; got != want {
		t.Errorf("bound(n=1) = %v, want %v", got, want)
	}
	// The harmonic factor grows like H_n.
	b10 := Theorem2Bound(prof, 16, 10, 1000)
	if b10 <= 1000 {
		t.Errorf("bound(n=10) = %v, should exceed the optimal extension", b10)
	}
	if h := stats.Harmonic(10); b10 >= h*1000+10*100 {
		t.Errorf("bound(n=10) = %v, implausibly large", b10)
	}
}
