package core

import (
	"testing"

	"tapejuke/internal/layout"
)

// Step 2's replica choice: "choose the currently-mounted tape if possible,
// or the tape having maximal number of scheduled requests that is first in
// jukebox order after the currently mounted tape."
func TestAbsorbPrefersMountedTape(t *testing.T) {
	// X pins tape 1's envelope, Y pins tape 2's; Z is replicated inside
	// both envelopes.
	l, err := layout.NewManual(3, 100, 0, [][]layout.Replica{
		{{Tape: 1, Pos: 5}},                    // X
		{{Tape: 2, Pos: 7}},                    // Y
		{{Tape: 1, Pos: 2}, {Tape: 2, Pos: 3}}, // Z
	})
	if err != nil {
		t.Fatal(err)
	}
	st := stateFor(t, l, 2, 0) // tape 2 mounted
	for i := 0; i < 3; i++ {
		addReq(st, int64(i), layout.BlockID(i))
	}
	b := buildEnvelope(st)
	if got := b.where[2].Tape; got != 2 {
		t.Errorf("Z absorbed on tape %d, want the mounted tape 2", got)
	}
}

func TestAbsorbPrefersBusierTape(t *testing.T) {
	// No tape mounted; tape 2 has two scheduled non-replicated requests,
	// tape 1 has one. Z (inside both envelopes) must join tape 2.
	l, err := layout.NewManual(3, 100, 0, [][]layout.Replica{
		{{Tape: 1, Pos: 5}},
		{{Tape: 2, Pos: 7}},
		{{Tape: 2, Pos: 6}},
		{{Tape: 1, Pos: 2}, {Tape: 2, Pos: 3}}, // Z
	})
	if err != nil {
		t.Fatal(err)
	}
	st := stateFor(t, l, -1, 0)
	for i := 0; i < 4; i++ {
		addReq(st, int64(i), layout.BlockID(i))
	}
	b := buildEnvelope(st)
	if got := b.where[3].Tape; got != 2 {
		t.Errorf("Z absorbed on tape %d, want the busier tape 2", got)
	}
}

func TestAbsorbTieBreaksByJukeboxOrder(t *testing.T) {
	// Equal scheduled counts on tapes 1 and 2, nothing mounted: jukebox
	// order from tape 0 prefers tape 1.
	l, err := layout.NewManual(3, 100, 0, [][]layout.Replica{
		{{Tape: 1, Pos: 5}},
		{{Tape: 2, Pos: 7}},
		{{Tape: 1, Pos: 2}, {Tape: 2, Pos: 3}}, // Z
	})
	if err != nil {
		t.Fatal(err)
	}
	st := stateFor(t, l, -1, 0)
	for i := 0; i < 3; i++ {
		addReq(st, int64(i), layout.BlockID(i))
	}
	b := buildEnvelope(st)
	if got := b.where[2].Tape; got != 1 {
		t.Errorf("Z absorbed on tape %d, want tape 1 (first in jukebox order)", got)
	}
	// With tape 2 mounted, the circular order starts there instead.
	st = stateFor(t, l, 2, 0)
	for i := 0; i < 3; i++ {
		addReq(st, int64(i), layout.BlockID(i))
	}
	b = buildEnvelope(st)
	if got := b.where[2].Tape; got != 2 {
		t.Errorf("Z absorbed on tape %d, want the mounted tape 2", got)
	}
}

// Step 4's tie-break: identical incremental bandwidths go to the tape with
// more scheduled requests, then to jukebox order.
func TestExtensionTieBreaks(t *testing.T) {
	// R is replicated at the same position on tapes 1 and 2 (identical
	// extension cost from empty envelopes). With nothing else scheduled,
	// jukebox order from tape 0 prefers tape 1.
	l, err := layout.NewManual(3, 100, 0, [][]layout.Replica{
		{{Tape: 1, Pos: 4}, {Tape: 2, Pos: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := stateFor(t, l, -1, 0)
	addReq(st, 1, 0)
	b := buildEnvelope(st)
	if got := b.where[0].Tape; got != 1 {
		t.Errorf("R extended onto tape %d, want tape 1", got)
	}

	// Mounting tape 2 rotates the jukebox order so its rank drops to 0 and
	// it wins the same tie.
	st = stateFor(t, l, 2, 0)
	addReq(st, 1, 0)
	b = buildEnvelope(st)
	if got := b.where[0].Tape; got != 2 {
		t.Errorf("R extended onto tape %d, want the mounted tape 2 (rank 0)", got)
	}
}

// The oldest-request envelope variant only considers tapes whose envelope
// can satisfy the oldest request.
func TestOldestVariantRestriction(t *testing.T) {
	l, err := layout.NewManual(2, 100, 0, [][]layout.Replica{
		{{Tape: 1, Pos: 3}}, // oldest: only on tape 1
		{{Tape: 0, Pos: 1}},
		{{Tape: 0, Pos: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := stateFor(t, l, -1, 0)
	addReq(st, 1, 0) // oldest
	addReq(st, 2, 1)
	addReq(st, 3, 2)
	tape, sweep, ok := NewEnvelope(OldestRequest).Reschedule(st)
	if !ok || tape != 1 {
		t.Fatalf("chose tape %d (ok=%v), want 1", tape, ok)
	}
	if sweep.Len() != 1 {
		t.Errorf("sweep length %d, want 1 (only the oldest lives there)", sweep.Len())
	}
	// Tape 0's two requests stay pending for the next reschedule.
	if len(st.Pending) != 2 {
		t.Errorf("pending = %d, want 2", len(st.Pending))
	}
}
