package core

import (
	"math/rand"
	"testing"

	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
	"tapejuke/internal/tapemodel"
)

// scheduleCost is the concrete cost measure C(S) used for the empirical
// Theorem 2 check: for every tape that a schedule touches, the cost of
// switching to it, sweeping forward through the assigned positions in
// order, and rewinding to the beginning. Assignments with Tape < 0
// (unscheduled requests) contribute nothing. The extended version of the
// paper defines C rigorously; this measure follows the same structure
// (switch + traversal + rewind per touched tape).
func scheduleCost(st *sched.State, where []layout.Replica) float64 {
	perTape := make([][]int, st.Layout.Tapes())
	for _, c := range where {
		if c.Tape >= 0 {
			perTape[c.Tape] = append(perTape[c.Tape], c.Pos)
		}
	}
	total := 0.0
	for t, positions := range perTape {
		if len(positions) == 0 {
			continue
		}
		order := sweepOrderInts(positions, 0)
		exec, final := st.Costs.ExecTime(0, order)
		total += st.Costs.Prof.SwitchTime() + exec + st.Costs.Prof.Rewind(st.Costs.PosMB(final))
		_ = t
	}
	return total
}

// bruteForceOpt finds the cheapest extension of S1: every request left
// unscheduled at the end of step 2 is assigned to one of its copies so that
// the total schedule cost is minimal.
func bruteForceOpt(st *sched.State, b *builder) float64 {
	var free []int
	for i, c := range b.s1Where {
		if c.Tape < 0 {
			free = append(free, i)
		}
	}
	where := append([]layout.Replica(nil), b.s1Where...)
	best := -1.0
	var rec func(k int)
	rec = func(k int) {
		if k == len(free) {
			if c := scheduleCost(st, where); best < 0 || c < best {
				best = c
			}
			return
		}
		i := free[k]
		for _, c := range st.Layout.Replicas(b.reqs[i].Block) {
			where[i] = c
			rec(k + 1)
		}
		where[i].Tape = -1
	}
	rec(0)
	return best
}

// TestTheorem2BoundEmpirical checks the paper's approximation guarantee on
// random small instances: the extension cost of the envelope schedule,
// C(S2) - C(S1), stays within the harmonic-factor bound of the optimal
// extension found by brute force.
func TestTheorem2BoundEmpirical(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))

		// A small random instance: 3 tapes of 60 blocks, 8 blocks with 1-3
		// copies each at random distinct positions.
		const tapes, capBlocks, blocks = 3, 60, 8
		used := make(map[layout.Replica]bool)
		copies := make([][]layout.Replica, blocks)
		for bID := range copies {
			nCopies := 1 + rng.Intn(tapes)
			perm := rng.Perm(tapes)[:nCopies]
			for _, tp := range perm {
				for {
					c := layout.Replica{Tape: tp, Pos: rng.Intn(capBlocks)}
					if !used[c] {
						used[c] = true
						copies[bID] = append(copies[bID], c)
						break
					}
				}
			}
		}
		l, err := layout.NewManual(tapes, capBlocks, 0, copies)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st := sched.NewState(l, costs())
		nReq := 3 + rng.Intn(4)
		for i := 0; i < nReq; i++ {
			st.Pending = append(st.Pending, &sched.Request{
				ID: int64(i), Block: layout.BlockID(rng.Intn(blocks)),
			})
		}

		b := buildEnvelope(st)
		n := 0
		for _, c := range b.s1Where {
			if c.Tape < 0 {
				n++
			}
		}
		if n == 0 {
			continue // everything absorbed; nothing for steps 3-6 to do
		}
		c1 := scheduleCost(st, b.s1Where)
		c2 := scheduleCost(st, b.where)
		opt := bruteForceOpt(st, b)
		if opt < c1-1e-9 {
			t.Fatalf("seed %d: optimal extension %v below C(S1) %v", seed, opt, c1)
		}
		bound := Theorem2Bound(tapemodel.EXB8505XL(), st.Costs.BlockMB, n, opt-c1)
		if c2-c1 > bound+1e-6 {
			t.Errorf("seed %d: extension cost %.3f exceeds Theorem 2 bound %.3f (n=%d, opt=%.3f)",
				seed, c2-c1, bound, n, opt-c1)
		}
	}
}
