package trace

import (
	"bytes"
	"testing"

	"tapejuke/internal/sched"
	"tapejuke/internal/sim"
	"tapejuke/internal/tapemodel"
)

func recordedTrace(t *testing.T) []Record {
	t.Helper()
	var buf bytes.Buffer
	runWithRecorder(t, &buf)
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestVerifyCleanTrace(t *testing.T) {
	recs := recordedTrace(t)
	rep, err := Verify(recs, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("clean trace failed verification: %+v", rep)
	}
	if rep.Operations == 0 {
		t.Error("nothing replayed")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	recs := recordedTrace(t)
	// Inflate one read's duration, as a corrupted or falsified log would.
	for i := range recs {
		if recs[i].Kind == "read" {
			recs[i].Seconds += 5
			break
		}
	}
	rep, err := Verify(recs, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("tampered trace verified")
	}
	if rep.Mismatches != 1 || rep.MaxError < 4.9 {
		t.Errorf("report: %+v", rep)
	}
	if rep.First == "" {
		t.Error("first mismatch not described")
	}
}

func TestVerifyDetectsWrongModel(t *testing.T) {
	recs := recordedTrace(t)
	// Replaying an EXB trace against the fast drive must disagree widely.
	rep, err := Verify(recs, tapemodel.FastHelical(), 16, 10, 448, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("wrong-model replay verified")
	}
}

// A real two-drive trace interleaves reads from tapes mounted in different
// drives; single-deck replay must reject it rather than misverify.
func TestVerifyRejectsMultiDriveTrace(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	_, err := sim.Run(sim.Config{
		BlockMB: 16, TapeCapMB: 7168, Tapes: 10,
		HotPercent: 10, ReadHotPercent: 40,
		QueueLength: 40,
		Scheduler:   sched.NewDynamic(sched.MaxBandwidth),
		Drives:      2,
		SchedulerFactory: func() sched.Scheduler {
			return sched.NewDynamic(sched.MaxBandwidth)
		},
		Horizon: 60_000, Seed: 3,
		Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(recs, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6); err == nil {
		t.Error("two-drive trace verified on one deck")
	}
}

func TestVerifyRejectsUnreplayable(t *testing.T) {
	if _, err := Verify([]Record{{Kind: "write-flush"}}, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6); err == nil {
		t.Error("write-flush trace accepted")
	}
	// A read on an unmounted tape (as interleaved multi-drive traces
	// produce) is rejected rather than misverified.
	bad := []Record{
		{Kind: "switch", Tape: 1, Seconds: 62},
		{Kind: "read", Tape: 5, Pos: 3, Seconds: 40},
	}
	if _, err := Verify(bad, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6); err == nil {
		t.Error("cross-tape read accepted")
	}
	// Out-of-range positions surface as errors.
	bad = []Record{
		{Kind: "switch", Tape: 1, Seconds: 62},
		{Kind: "read", Tape: 1, Pos: 9999, Seconds: 40},
	}
	if _, err := Verify(bad, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6); err == nil {
		t.Error("out-of-range read accepted")
	}
}

func TestVerifyRejectsFaultTraces(t *testing.T) {
	// Fault-model records change drive timing in ways replay cannot check;
	// verification refuses them outright rather than misverifying.
	for _, kind := range []string{"fault", "tape-fail", "drive-repair", "unserviceable"} {
		if _, err := Verify([]Record{{Kind: kind}}, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6); err == nil {
			t.Errorf("%s trace accepted", kind)
		}
	}
}
