package trace

import (
	"bytes"
	"testing"

	"tapejuke/internal/faults"
	"tapejuke/internal/sched"
	"tapejuke/internal/sim"
	"tapejuke/internal/tapemodel"
)

func recordedTrace(t *testing.T) []Record {
	t.Helper()
	var buf bytes.Buffer
	runWithRecorder(t, &buf)
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestVerifyCleanTrace(t *testing.T) {
	recs := recordedTrace(t)
	rep, err := Verify(recs, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("clean trace failed verification: %+v", rep)
	}
	if rep.Operations == 0 {
		t.Error("nothing replayed")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	recs := recordedTrace(t)
	// Inflate one read's duration, as a corrupted or falsified log would.
	for i := range recs {
		if recs[i].Kind == "read" {
			recs[i].Seconds += 5
			break
		}
	}
	rep, err := Verify(recs, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("tampered trace verified")
	}
	if rep.Mismatches != 1 || rep.MaxError < 4.9 {
		t.Errorf("report: %+v", rep)
	}
	if rep.First == "" {
		t.Error("first mismatch not described")
	}
}

func TestVerifyDetectsWrongModel(t *testing.T) {
	recs := recordedTrace(t)
	// Replaying an EXB trace against the fast drive must disagree widely.
	rep, err := Verify(recs, tapemodel.FastHelical(), 16, 10, 448, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("wrong-model replay verified")
	}
}

// A real two-drive trace interleaves reads from tapes mounted in different
// drives; single-deck replay must reject it rather than misverify.
func TestVerifyRejectsMultiDriveTrace(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	_, err := sim.Run(sim.Config{
		BlockMB: 16, TapeCapMB: 7168, Tapes: 10,
		HotPercent: 10, ReadHotPercent: 40,
		QueueLength: 40,
		Scheduler:   sched.NewDynamic(sched.MaxBandwidth),
		Drives:      2,
		SchedulerFactory: func() sched.Scheduler {
			return sched.NewDynamic(sched.MaxBandwidth)
		},
		Horizon: 60_000, Seed: 3,
		Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(recs, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6); err == nil {
		t.Error("two-drive trace verified on one deck")
	}
}

func TestVerifyRejectsUnreplayable(t *testing.T) {
	if _, err := Verify([]Record{{Kind: "write-flush"}}, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6); err == nil {
		t.Error("write-flush trace accepted")
	}
	// A read on an unmounted tape (as interleaved multi-drive traces
	// produce) is rejected rather than misverified.
	bad := []Record{
		{Kind: "switch", Tape: 1, Seconds: 62},
		{Kind: "read", Tape: 5, Pos: 3, Seconds: 40},
	}
	if _, err := Verify(bad, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6); err == nil {
		t.Error("cross-tape read accepted")
	}
	// Out-of-range positions surface as errors.
	bad = []Record{
		{Kind: "switch", Tape: 1, Seconds: 62},
		{Kind: "read", Tape: 1, Pos: 9999, Seconds: 40},
	}
	if _, err := Verify(bad, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6); err == nil {
		t.Error("out-of-range read accepted")
	}
}

// faultTrace records a single-drive run with every fault class enabled.
func faultTrace(t *testing.T) []Record {
	t.Helper()
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	_, err := sim.Run(sim.Config{
		BlockMB: 16, TapeCapMB: 7168, Tapes: 10,
		HotPercent: 100, ReadHotPercent: 100,
		DataBlocks: 1000, Replicas: 1,
		QueueLength: 40,
		Scheduler:   sched.NewDynamic(sched.MaxBandwidth),
		Horizon:     300_000, Seed: 1,
		Faults: faults.Config{
			ReadTransientProb: 0.05,
			SwitchFailProb:    0.1,
			TapeMTBFSec:       400_000,
			DriveMTBFSec:      150_000,
			BadBlocksPerTape:  1,
		},
		Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// A fault-model trace replays: failed read attempts move the head through
// the target like successful reads, failed loads cost a switch without
// moving the deck, and a load-discovered tape death empties the drive.
func TestVerifyFaultTrace(t *testing.T) {
	recs := faultTrace(t)
	kinds := map[string]int{}
	for _, r := range recs {
		kinds[r.Kind]++
	}
	if kinds["fault"] == 0 || kinds["tape-fail"] == 0 {
		t.Fatalf("trace exercised no faults: %v", kinds)
	}
	rep, err := Verify(recs, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("fault trace failed verification: %+v", rep)
	}
	if rep.Operations <= kinds["read"] {
		t.Errorf("replayed %d operations; fault attempts (%d) not verified",
			rep.Operations, kinds["fault"])
	}
}

func TestVerifyDetectsTamperedFault(t *testing.T) {
	recs := faultTrace(t)
	for i := range recs {
		if recs[i].Kind == "fault" {
			recs[i].Seconds += 3
			break
		}
	}
	rep, err := Verify(recs, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("tampered fault attempt verified")
	}
}
