package trace

import (
	"fmt"
	"math"

	"tapejuke/internal/jukebox"
	"tapejuke/internal/tapemodel"
)

// VerifyReport summarizes a trace replay: every read and switch operation
// re-executed against the drive timing model, with recomputed durations
// compared to the recorded ones.
type VerifyReport struct {
	Operations int     // reads + switches replayed
	Mismatches int     // operations whose recomputed duration disagrees
	MaxError   float64 // largest absolute disagreement in seconds
	First      string  // description of the first mismatch, "" if none
}

// OK reports whether the trace is consistent with the timing model.
func (r *VerifyReport) OK() bool { return r.Mismatches == 0 }

// Verify replays a single-drive trace through a fresh jukebox deck with the
// given geometry and timing model, recomputing the duration of every read
// and tape switch and comparing it to the recorded value within tol
// seconds. It is an integrity check: a trace that fails either was recorded
// under different parameters or has been altered.
//
// Fault-model traces replay too: a failed read attempt ("fault" with a
// block position) consumes the same locate and transfer as a successful
// read and moves the head through the target; a failed load attempt
// ("fault" at position -1) consumes a switch without moving the deck; a
// "tape-fail" on an unmounted tape marks the end of a failed load (the
// drive ends empty), while one on the mounted tape leaves the dead tape in
// the drive. Drive repair, idle, completion, and unserviceable records
// carry no drive geometry and are skipped.
//
// Overload-extension records replay consistently too: "expire" and "shed"
// records cancel their request, and a later read, fault, or completion
// referencing a cancelled request fails verification (an altered trace
// cannot resurrect a request it already cancelled); "reject" records carry
// no request and are skipped.
//
// Repair-extension records replay like reads: "repair-read" and
// "repair-write" move the head through their target with the same locate
// and transfer mechanics, and their Request field carries the repair job
// ID. A tampered repair trace fails verification: a repair-write without a
// prior repair-read of the same job (the copy must come from a surviving
// copy), a second repair-write for a job that already completed, a
// repair-read from a tape the trace already declared failed, or a read of
// a (tape, position) the trace reclaimed without an intervening
// repair-write there (a reclaimed copy cannot serve requests).
//
// Health-extension records replay too. "scrub-read" moves the head like a
// read and fails verification on a tape the trace already declared failed,
// on a slot the trace emptied (a reclaimed or evacuated slot holds nothing
// to verify), or on a position with a prior "latent-found" (the copy is
// dead; the patrol skips it). "evacuate" is metadata-only and empties its
// slot exactly like a reclaim; emptying a slot twice fails verification.
// "latent-found" is metadata-only but must follow a head access -- read,
// fault, scrub-read, or repair-read -- at the same (tape, position) in the
// trace (detection without the read that detected it is fabrication), and
// a second latent-found at the same position fails (the escalation to dead
// happens once). "drive-fence" carries no drive geometry and is skipped.
//
// Traces containing write-flush events are rejected (the flush path moves
// the head through delta-log positions outside the replayed geometry), as
// are multi-drive traces (interleaved head positions are not replayable on
// one deck).
func Verify(recs []Record, prof tapemodel.Positioner, blockMB float64, tapes, capBlocks int, tol float64) (*VerifyReport, error) {
	for _, r := range recs {
		if r.Kind == "write-flush" {
			return nil, fmt.Errorf("trace: verification does not support write-flush traces")
		}
	}
	deck, err := jukebox.NewDeck(prof, blockMB, tapes, capBlocks)
	if err != nil {
		return nil, err
	}
	rep := &VerifyReport{}
	note := func(i int, kind string, got, want float64) {
		diff := math.Abs(got - want)
		if diff <= tol {
			return
		}
		rep.Mismatches++
		if diff > rep.MaxError {
			rep.MaxError = diff
		}
		if rep.First == "" {
			rep.First = fmt.Sprintf("record %d (%s): recorded %.6f s, recomputed %.6f s", i, kind, want, got)
		}
	}
	cancelled := make(map[int64]string) // request ID -> how it left the system
	failedTapes := make(map[int]bool)   // tapes the trace declared dead
	repairRead := make(map[int64]bool)  // repair jobs whose source read landed
	repairDone := make(map[int64]bool)  // repair jobs whose copy write landed
	reclaimed := make(map[[2]int]bool)  // (tape, pos) holding no data since reclaim or evacuation
	touched := make(map[[2]int]bool)    // (tape, pos) the head has accessed
	latent := make(map[[2]int]bool)     // (tape, pos) with a latent-found record
	packTP := func(t, p int) [2]int { return [2]int{t, p} }
	for i, r := range recs {
		if r.Request != 0 {
			switch r.Kind {
			case "expire", "shed":
				if why, gone := cancelled[r.Request]; gone {
					return nil, fmt.Errorf("trace: record %d cancels request %d already %s", i, r.Request, why)
				}
				cancelled[r.Request] = r.Kind
			case "read", "fault", "complete":
				if why, gone := cancelled[r.Request]; gone {
					return nil, fmt.Errorf("trace: record %d (%s) references request %d already %s",
						i, r.Kind, r.Request, why)
				}
				if r.Kind == "complete" {
					cancelled[r.Request] = "complete"
				}
			}
		}
		switch r.Kind {
		case "switch":
			got, err := deck.Mount(r.Tape)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d: %w", i, err)
			}
			rep.Operations++
			note(i, "switch", got, r.Seconds)
		case "read":
			if deck.Mounted() != r.Tape {
				return nil, fmt.Errorf("trace: record %d reads tape %d but tape %d is mounted (multi-drive trace?)",
					i, r.Tape, deck.Mounted())
			}
			if reclaimed[packTP(r.Tape, r.Pos)] {
				return nil, fmt.Errorf("trace: record %d reads tape %d pos %d, reclaimed with no copy written since",
					i, r.Tape, r.Pos)
			}
			got, err := deck.ReadBlock(r.Pos)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d: %w", i, err)
			}
			touched[packTP(r.Tape, r.Pos)] = true
			rep.Operations++
			note(i, "read", got, r.Seconds)
		case "fault":
			if r.Pos < 0 {
				// Failed load attempt: the mechanics run but the deck state
				// does not change, so every retry costs the same switch.
				got, err := deck.SwitchCost(r.Tape)
				if err != nil {
					return nil, fmt.Errorf("trace: record %d: %w", i, err)
				}
				rep.Operations++
				note(i, "fault-switch", got, r.Seconds)
				continue
			}
			// Failed read attempt: locate and transfer run in full and the
			// head ends past the target, exactly like a successful read.
			if deck.Mounted() != r.Tape {
				return nil, fmt.Errorf("trace: record %d faults on tape %d but tape %d is mounted (multi-drive trace?)",
					i, r.Tape, deck.Mounted())
			}
			if reclaimed[packTP(r.Tape, r.Pos)] {
				return nil, fmt.Errorf("trace: record %d faults on tape %d pos %d, reclaimed with no copy written since",
					i, r.Tape, r.Pos)
			}
			got, err := deck.ReadBlock(r.Pos)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d: %w", i, err)
			}
			touched[packTP(r.Tape, r.Pos)] = true
			rep.Operations++
			note(i, "fault-read", got, r.Seconds)
		case "tape-fail":
			failedTapes[r.Tape] = true
			if deck.Mounted() != r.Tape {
				// The death was discovered at load: the cartridge never
				// mounted and the drive ends empty. (A death discovered
				// mid-read leaves the dead tape in the drive.)
				deck.Unload()
			}
		case "repair-read":
			if failedTapes[r.Tape] {
				return nil, fmt.Errorf("trace: record %d repair-reads tape %d after its failure (job %d)",
					i, r.Tape, r.Request)
			}
			if repairRead[r.Request] {
				return nil, fmt.Errorf("trace: record %d repeats the source read of repair job %d", i, r.Request)
			}
			if deck.Mounted() != r.Tape {
				return nil, fmt.Errorf("trace: record %d repair-reads tape %d but tape %d is mounted (multi-drive trace?)",
					i, r.Tape, deck.Mounted())
			}
			if reclaimed[packTP(r.Tape, r.Pos)] {
				return nil, fmt.Errorf("trace: record %d repair-reads tape %d pos %d, reclaimed with no copy written since",
					i, r.Tape, r.Pos)
			}
			got, err := deck.ReadBlock(r.Pos)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d: %w", i, err)
			}
			repairRead[r.Request] = true
			touched[packTP(r.Tape, r.Pos)] = true
			rep.Operations++
			note(i, "repair-read", got, r.Seconds)
		case "repair-write":
			if !repairRead[r.Request] {
				return nil, fmt.Errorf("trace: record %d writes repair job %d's copy with no surviving-copy read before it",
					i, r.Request)
			}
			if repairDone[r.Request] {
				return nil, fmt.Errorf("trace: record %d completes repair job %d a second time", i, r.Request)
			}
			if deck.Mounted() != r.Tape {
				return nil, fmt.Errorf("trace: record %d repair-writes tape %d but tape %d is mounted (multi-drive trace?)",
					i, r.Tape, deck.Mounted())
			}
			got, err := deck.ReadBlock(r.Pos)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d: %w", i, err)
			}
			repairDone[r.Request] = true
			delete(reclaimed, packTP(r.Tape, r.Pos))
			touched[packTP(r.Tape, r.Pos)] = true
			rep.Operations++
			note(i, "repair-write", got, r.Seconds)
		case "reclaim":
			// Metadata-only: no drive motion, but the slot holds no data
			// until a later repair-write refills it.
			reclaimed[packTP(r.Tape, r.Pos)] = true
		case "scrub-read":
			if failedTapes[r.Tape] {
				return nil, fmt.Errorf("trace: record %d scrub-reads tape %d after its failure", i, r.Tape)
			}
			if deck.Mounted() != r.Tape {
				return nil, fmt.Errorf("trace: record %d scrub-reads tape %d but tape %d is mounted (multi-drive trace?)",
					i, r.Tape, deck.Mounted())
			}
			if reclaimed[packTP(r.Tape, r.Pos)] {
				return nil, fmt.Errorf("trace: record %d scrub-reads tape %d pos %d, emptied with no copy written since",
					i, r.Tape, r.Pos)
			}
			if latent[packTP(r.Tape, r.Pos)] {
				return nil, fmt.Errorf("trace: record %d scrub-reads tape %d pos %d, dead since its latent error was found",
					i, r.Tape, r.Pos)
			}
			got, err := deck.ReadBlock(r.Pos)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d: %w", i, err)
			}
			touched[packTP(r.Tape, r.Pos)] = true
			rep.Operations++
			note(i, "scrub-read", got, r.Seconds)
		case "evacuate":
			// Metadata-only, like a reclaim: the slot holds no data until a
			// later repair-write refills it.
			if reclaimed[packTP(r.Tape, r.Pos)] {
				return nil, fmt.Errorf("trace: record %d evacuates tape %d pos %d, already emptied", i, r.Tape, r.Pos)
			}
			reclaimed[packTP(r.Tape, r.Pos)] = true
		case "latent-found":
			// Metadata-only, but a detection needs a detector: some head
			// access at this position must precede it.
			if !touched[packTP(r.Tape, r.Pos)] {
				return nil, fmt.Errorf("trace: record %d finds a latent error at tape %d pos %d never accessed before it",
					i, r.Tape, r.Pos)
			}
			if latent[packTP(r.Tape, r.Pos)] {
				return nil, fmt.Errorf("trace: record %d finds the latent error at tape %d pos %d a second time",
					i, r.Tape, r.Pos)
			}
			latent[packTP(r.Tape, r.Pos)] = true
		}
	}
	return rep, nil
}
