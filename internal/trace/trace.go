// Package trace records simulator event streams to a line-oriented JSON
// format and computes operational summaries from them. A trace answers the
// questions an operator would ask of a real jukebox's activity log: how
// busy was the drive, how often did tapes switch, which tapes were hot, how
// long were the sweeps.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"tapejuke/internal/sim"
	"tapejuke/internal/stats"
)

// Record is the serialized form of one simulator event.
type Record struct {
	Kind    string  `json:"kind"`
	Time    float64 `json:"t"`
	Tape    int     `json:"tape"`
	Pos     int     `json:"pos"`
	Seconds float64 `json:"sec"`
	Request int64   `json:"req,omitempty"`
}

// Recorder is a sim.Observer that writes one JSON line per event. It
// buffers internally; call Flush before reading the destination.
type Recorder struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
	n   int64
}

// NewRecorder wraps the writer. Events are appended as JSON lines.
func NewRecorder(w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	return &Recorder{w: bw, enc: json.NewEncoder(bw)}
}

// Observe serializes one event. The first encoding error sticks and
// subsequent events are dropped; check Err after the run.
func (r *Recorder) Observe(ev sim.Event) {
	if r.err != nil {
		return
	}
	r.n++
	r.err = r.enc.Encode(Record{
		Kind:    ev.Kind.String(),
		Time:    ev.Time,
		Tape:    ev.Tape,
		Pos:     ev.Pos,
		Seconds: ev.Seconds,
		Request: ev.Request,
	})
}

// Flush drains the internal buffer.
func (r *Recorder) Flush() error {
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// Err returns the first error encountered while recording.
func (r *Recorder) Err() error { return r.err }

// Count returns the number of events recorded.
func (r *Recorder) Count() int64 { return r.n }

// Read parses a recorded trace back into records.
func Read(rd io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(rd)
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: record %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
}

// Summary aggregates a trace into operator-facing statistics.
type Summary struct {
	Events     int64
	Reads      int64
	Switches   int64
	Completes  int64
	Flushes    int64
	IdleSpells int64
	Expires    int64 // deadline expiries (overload extension)
	Sheds      int64 // requests shed by admission overflow
	Rejects    int64 // arrivals rejected by admission overflow

	RepairReads  int64 // repair-job source reads (repair extension)
	RepairWrites int64 // repair-job copy writes
	Reclaims     int64 // excess replicas reclaimed

	ScrubReads  int64 // scrub verification reads (health extension)
	LatentFinds int64 // latent errors detected (any path)
	Evacuations int64 // copies dropped from suspect tapes
	DriveFences int64 // drives fenced for maintenance

	Span            float64 // last event time
	ReadSeconds     float64 // total time inside read operations (locate+transfer)
	SwitchSeconds   float64
	RepairSeconds   float64 // time inside repair reads and writes
	ScrubSeconds    float64 // time inside scrub verification reads
	IdleSeconds     float64
	MeanSweepLen    float64 // reads per tape visit
	MeanSwitchGap   float64 // seconds between consecutive switches
	ReadsPerTape    map[int]int64
	BusiestTape     int
	BusiestTapeFrac float64

	// RepairedCopies counts repair jobs whose copy write landed, and
	// MeanTimeToRepairSec averages the gap between each job's source read
	// and its copy write (jobs still open at the end of the trace are not
	// counted). MeanTimeToDetectSec averages the detection latency the
	// latent-found records carry: how long each latent error sat on tape
	// before a read -- user, repair, or scrub -- touched it.
	RepairedCopies      int64
	MeanTimeToRepairSec float64
	MeanTimeToDetectSec float64
}

// Summarize computes a Summary from records in time order.
func Summarize(recs []Record) *Summary {
	s := &Summary{ReadsPerTape: make(map[int]int64), BusiestTape: -1}
	var gap stats.Accumulator
	lastSwitch := -1.0
	readsSinceSwitch := int64(0)
	var sweeps stats.Accumulator
	var mttr, mttd stats.Accumulator
	readAt := make(map[int64]float64) // repair job ID -> source-read time
	for _, r := range recs {
		s.Events++
		if r.Time > s.Span {
			s.Span = r.Time
		}
		switch r.Kind {
		case "read":
			s.Reads++
			s.ReadSeconds += r.Seconds
			readsSinceSwitch++
			if r.Tape >= 0 {
				s.ReadsPerTape[r.Tape]++
			}
		case "switch":
			s.Switches++
			s.SwitchSeconds += r.Seconds
			if lastSwitch >= 0 {
				gap.Add(r.Time - lastSwitch)
			}
			lastSwitch = r.Time
			if readsSinceSwitch > 0 {
				sweeps.Add(float64(readsSinceSwitch))
			}
			readsSinceSwitch = 0
		case "complete":
			s.Completes++
		case "write-flush":
			s.Flushes++
		case "idle":
			s.IdleSpells++
			s.IdleSeconds += r.Seconds
		case "expire":
			s.Expires++
		case "shed":
			s.Sheds++
		case "reject":
			s.Rejects++
		case "repair-read":
			s.RepairReads++
			s.RepairSeconds += r.Seconds
			if _, open := readAt[r.Request]; !open {
				readAt[r.Request] = r.Time
			}
		case "repair-write":
			s.RepairWrites++
			s.RepairSeconds += r.Seconds
			s.RepairedCopies++
			if t0, ok := readAt[r.Request]; ok {
				mttr.Add(r.Time - t0)
				delete(readAt, r.Request)
			}
		case "reclaim":
			s.Reclaims++
		case "scrub-read":
			s.ScrubReads++
			s.ScrubSeconds += r.Seconds
		case "latent-found":
			s.LatentFinds++
			mttd.Add(r.Seconds)
		case "evacuate":
			s.Evacuations++
		case "drive-fence":
			s.DriveFences++
		}
	}
	if readsSinceSwitch > 0 {
		sweeps.Add(float64(readsSinceSwitch))
	}
	s.MeanSweepLen = sweeps.Mean()
	s.MeanSwitchGap = gap.Mean()
	s.MeanTimeToRepairSec = mttr.Mean()
	s.MeanTimeToDetectSec = mttd.Mean()
	var best int64 = -1
	// Deterministic tie-break: lowest tape index wins.
	tapes := make([]int, 0, len(s.ReadsPerTape))
	for t := range s.ReadsPerTape {
		tapes = append(tapes, t)
	}
	sort.Ints(tapes)
	for _, t := range tapes {
		if s.ReadsPerTape[t] > best {
			best = s.ReadsPerTape[t]
			s.BusiestTape = t
		}
	}
	if s.Reads > 0 && best > 0 {
		s.BusiestTapeFrac = float64(best) / float64(s.Reads)
	}
	return s
}

// Format renders the summary as aligned text.
func (s *Summary) Format(w io.Writer) {
	fmt.Fprintf(w, "events            %d over %.0f simulated seconds\n", s.Events, s.Span)
	fmt.Fprintf(w, "reads             %d (%.0f s in read+locate)\n", s.Reads, s.ReadSeconds)
	fmt.Fprintf(w, "tape switches     %d (%.0f s; mean gap %.0f s)\n", s.Switches, s.SwitchSeconds, s.MeanSwitchGap)
	fmt.Fprintf(w, "mean sweep        %.1f reads per tape visit\n", s.MeanSweepLen)
	fmt.Fprintf(w, "completions       %d\n", s.Completes)
	if s.Flushes > 0 {
		fmt.Fprintf(w, "write flushes     %d\n", s.Flushes)
	}
	if s.IdleSpells > 0 {
		fmt.Fprintf(w, "idle              %d spells, %.0f s\n", s.IdleSpells, s.IdleSeconds)
	}
	if s.Expires+s.Sheds+s.Rejects > 0 {
		fmt.Fprintf(w, "overload          %d expired, %d shed, %d rejected\n", s.Expires, s.Sheds, s.Rejects)
	}
	if s.RepairReads+s.RepairWrites+s.Reclaims > 0 {
		fmt.Fprintf(w, "repair            %d reads, %d writes, %d reclaims (%.0f s; %d copies repaired, MTTR %.0f s)\n",
			s.RepairReads, s.RepairWrites, s.Reclaims, s.RepairSeconds, s.RepairedCopies, s.MeanTimeToRepairSec)
	}
	if s.ScrubReads+s.LatentFinds+s.Evacuations+s.DriveFences > 0 {
		fmt.Fprintf(w, "health            %d scrub reads (%.0f s), %d latent found (MTTD %.0f s), %d evacuations, %d fences\n",
			s.ScrubReads, s.ScrubSeconds, s.LatentFinds, s.MeanTimeToDetectSec, s.Evacuations, s.DriveFences)
	}
	if s.BusiestTape >= 0 {
		fmt.Fprintf(w, "busiest tape      %d (%.0f%% of reads)\n", s.BusiestTape, 100*s.BusiestTapeFrac)
	}
}
