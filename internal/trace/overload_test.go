package trace

import (
	"bytes"
	"testing"

	"tapejuke/internal/sched"
	"tapejuke/internal/sim"
	"tapejuke/internal/tapemodel"
)

// overloadTrace records a closed run with tight deadlines so the stream
// contains expire events.
func overloadTrace(t *testing.T) ([]Record, *sim.Result) {
	t.Helper()
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	res, err := sim.Run(sim.Config{
		BlockMB: 16, TapeCapMB: 7168, Tapes: 10,
		HotPercent: 10, ReadHotPercent: 40,
		QueueLength: 40,
		Scheduler:   sched.NewDynamic(sched.MaxBandwidth),
		Horizon:     80_000, Seed: 3,
		Deadlines: sim.DeadlineConfig{HotTTL: 1_200, ColdTTL: 1_200},
		Observer:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs, res
}

func TestSummarizeCountsOverloadEvents(t *testing.T) {
	recs, res := overloadTrace(t)
	s := Summarize(recs)
	if s.Expires == 0 {
		t.Fatal("trace of a deadlined run contains no expire records")
	}
	if s.Expires != res.Expired {
		t.Errorf("summary counts %d expiries, result reports %d", s.Expires, res.Expired)
	}
	var out bytes.Buffer
	s.Format(&out)
	if !bytes.Contains(out.Bytes(), []byte("overload")) {
		t.Errorf("formatted summary missing the overload line:\n%s", out.String())
	}
}

func TestVerifyAcceptsOverloadTrace(t *testing.T) {
	recs, _ := overloadTrace(t)
	rep, err := Verify(recs, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("clean overload trace failed verification: %+v", rep)
	}
}

// TestVerifyRejectsResurrection: a trace that serves or re-cancels a
// request after its expire/shed record has been altered.
func TestVerifyRejectsResurrection(t *testing.T) {
	recs, _ := overloadTrace(t)
	var expired int64
	idx := -1
	for i, r := range recs {
		if r.Kind == "expire" {
			expired, idx = r.Request, i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no expire record")
	}

	// A read of the cancelled request after its expiry.
	tampered := append(append([]Record{}, recs[:idx+1]...), Record{
		Kind: "read", Time: recs[idx].Time + 1, Tape: 0, Pos: 0, Seconds: 1, Request: expired,
	})
	if _, err := Verify(tampered, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6); err == nil {
		t.Error("read of an expired request verified")
	}

	// A second cancellation of the same request.
	tampered = append(append([]Record{}, recs[:idx+1]...), Record{
		Kind: "shed", Time: recs[idx].Time + 1, Tape: -1, Pos: -1, Request: expired,
	})
	if _, err := Verify(tampered, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6); err == nil {
		t.Error("double cancellation verified")
	}

	// Expiring a request that already completed.
	var completed int64
	cidx := -1
	for i, r := range recs {
		if r.Kind == "complete" {
			completed, cidx = r.Request, i
			break
		}
	}
	if cidx < 0 {
		t.Fatal("no complete record")
	}
	tampered = append(append([]Record{}, recs[:cidx+1]...), Record{
		Kind: "expire", Time: recs[cidx].Time + 1, Tape: -1, Pos: -1, Request: completed,
	})
	if _, err := Verify(tampered, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6); err == nil {
		t.Error("expiry of a completed request verified")
	}
}
