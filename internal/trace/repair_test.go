package trace

import (
	"bytes"
	"strings"
	"testing"

	"tapejuke/internal/core"
	"tapejuke/internal/faults"
	"tapejuke/internal/sim"
	"tapejuke/internal/tapemodel"
)

// repairTrace records a repair-enabled faulty run on a single drive: tapes
// die, lost replicas are rebuilt during idle time, and the promotion and
// reclamation thresholds add copy churn on top.
func repairTrace(t *testing.T) ([]Record, *sim.Result) {
	t.Helper()
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	res, err := sim.Run(sim.Config{
		BlockMB: 16, TapeCapMB: 7168, Tapes: 10, HotPercent: 100,
		ReadHotPercent: 100, DataBlocks: 1000, Replicas: 1,
		QueueLength: 0, MeanInterarrival: 300,
		Scheduler: core.NewEnvelope(core.MaxBandwidth),
		Horizon:   1_000_000, Seed: 13,
		Faults:   faults.Config{TapeMTBFSec: 1_500_000},
		Repair:   sim.RepairConfig{Enable: true},
		Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs, res
}

func TestSummarizeRepairTrace(t *testing.T) {
	recs, res := repairTrace(t)
	s := Summarize(recs)
	if s.RepairWrites != res.RepairedCopies {
		t.Errorf("trace shows %d repair writes, result reports %d repaired copies", s.RepairWrites, res.RepairedCopies)
	}
	if s.RepairReads < s.RepairWrites {
		t.Errorf("%d repair writes but only %d repair reads: every copy needs a source read", s.RepairWrites, s.RepairReads)
	}
	if s.RepairSeconds <= 0 {
		t.Error("repair ops recorded but no repair seconds accumulated")
	}
	var out bytes.Buffer
	s.Format(&out)
	if !strings.Contains(out.String(), "repair") {
		t.Errorf("summary omits the repair line:\n%s", out.String())
	}
}

func TestVerifyRepairTrace(t *testing.T) {
	recs, res := repairTrace(t)
	if res.RepairedCopies == 0 {
		t.Fatal("trace exercises no repairs")
	}
	rep, err := Verify(recs, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("clean repair trace failed verification: %+v", rep)
	}
}

// TestVerifyRejectsRepairTampering covers the resurrection-style tamperings
// of a repair trace, mirroring the cancelled-request rules: each rewrite
// below fabricates activity the repair state machine forbids.
func TestVerifyRejectsRepairTampering(t *testing.T) {
	recs, _ := repairTrace(t)
	verify := func(recs []Record) error {
		_, err := Verify(recs, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6)
		return err
	}
	find := func(kind string) int {
		for i, r := range recs {
			if r.Kind == kind {
				return i
			}
		}
		t.Fatalf("no %s record in trace", kind)
		return -1
	}

	t.Run("write without source read", func(t *testing.T) {
		// Strip job j's repair-read: its repair-write then claims a copy
		// that was never read from a surviving replica.
		i := find("repair-read")
		tampered := append(append([]Record{}, recs[:i]...), recs[i+1:]...)
		if verify(tampered) == nil {
			t.Error("repair-write with no prior source read verified")
		}
	})

	t.Run("duplicate job completion", func(t *testing.T) {
		i := find("repair-write")
		tampered := append(append([]Record{}, recs[:i+1]...), recs[i])
		if verify(tampered) == nil {
			t.Error("second repair-write for one job verified")
		}
	})

	t.Run("duplicate source read", func(t *testing.T) {
		i := find("repair-read")
		tampered := append(append([]Record{}, recs[:i+1]...), recs[i])
		if verify(tampered) == nil {
			t.Error("second repair-read for one job verified")
		}
	})

	t.Run("read from failed tape", func(t *testing.T) {
		// Move a tape's failure record ahead of a repair-read from it.
		ri := -1
		for i, r := range recs {
			if r.Kind == "repair-read" {
				ri = i
				break
			}
		}
		if ri < 0 {
			t.Fatal("no repair-read record")
		}
		tampered := append([]Record{{Kind: "tape-fail", Time: 0, Tape: recs[ri].Tape, Pos: -1}},
			append([]Record{}, recs...)...)
		if verify(tampered) == nil {
			t.Error("repair-read from a failed tape verified")
		}
	})
}

// TestVerifyRejectsReclaimResurrection: a read of a (tape, position) the
// trace already reclaimed -- with no repair-write refilling it -- is data
// resurrection and must not verify.
func TestVerifyRejectsReclaimResurrection(t *testing.T) {
	verify := func(recs []Record) error {
		_, err := Verify(recs, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6)
		return err
	}
	base := []Record{
		{Kind: "switch", Time: 0, Tape: 2, Pos: -1},
		{Kind: "read", Time: 1, Tape: 2, Pos: 5, Request: 1},
		{Kind: "reclaim", Time: 2, Tape: 2, Pos: 5},
	}
	// Durations are wrong everywhere, but resurrection is a hard error
	// (not a mismatch), so Verify must fail before tolerances matter.
	resurrect := append(append([]Record{}, base...),
		Record{Kind: "read", Time: 3, Tape: 2, Pos: 5, Request: 2})
	if verify(resurrect) == nil {
		t.Error("read of a reclaimed position verified")
	}

	// A repair-write refilling the slot makes a later read legitimate
	// again: this variant must produce no hard error.
	refill := append(append([]Record{}, base...),
		Record{Kind: "repair-read", Time: 3, Tape: 2, Pos: 3, Request: 9},
		Record{Kind: "repair-write", Time: 4, Tape: 2, Pos: 5, Request: 9},
		Record{Kind: "read", Time: 5, Tape: 2, Pos: 5, Request: 2})
	if err := verify(refill); err != nil {
		t.Errorf("read after repair-write refill rejected: %v", err)
	}
}
