package trace

import (
	"bytes"
	"strings"
	"testing"

	"tapejuke/internal/sched"
	"tapejuke/internal/sim"
)

// runWithRecorder simulates a short closed run recording all events.
func runWithRecorder(t *testing.T, buf *bytes.Buffer) *sim.Result {
	t.Helper()
	rec := NewRecorder(buf)
	res, err := sim.Run(sim.Config{
		BlockMB: 16, TapeCapMB: 7168, Tapes: 10,
		HotPercent: 10, ReadHotPercent: 40,
		QueueLength: 40,
		Scheduler:   sched.NewDynamic(sched.MaxBandwidth),
		Horizon:     80_000, Seed: 3,
		Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	if rec.Count() == 0 {
		t.Fatal("nothing recorded")
	}
	return res
}

func TestRecordReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	res := runWithRecorder(t, &buf)
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(recs)
	if s.Completes != res.TotalCompleted {
		t.Errorf("trace completions %d != result %d", s.Completes, res.TotalCompleted)
	}
	if s.Reads != res.TotalCompleted {
		t.Errorf("trace reads %d != completions %d", s.Reads, res.TotalCompleted)
	}
	// The engine counts post-warmup switches only, so the trace (which sees
	// all of them) must report at least as many.
	if s.Switches < res.TapeSwitches {
		t.Errorf("trace switches %d < result %d", s.Switches, res.TapeSwitches)
	}
	if s.Span <= 0 || s.Span > 81_000 {
		t.Errorf("span = %v", s.Span)
	}
	if s.MeanSweepLen <= 1 {
		t.Errorf("mean sweep %v, expected batching well above 1", s.MeanSweepLen)
	}
	if s.MeanSwitchGap <= 0 {
		t.Error("no switch gap measured")
	}
	if s.BusiestTape < 0 || s.BusiestTapeFrac <= 0 {
		t.Error("busiest tape not identified")
	}
}

func TestSummaryFormat(t *testing.T) {
	var buf bytes.Buffer
	runWithRecorder(t, &buf)
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	Summarize(recs).Format(&out)
	text := out.String()
	for _, want := range []string{"events", "reads", "tape switches", "mean sweep", "completions", "busiest tape"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
}

// The on-disk format is a contract: field names must stay stable so traces
// recorded by one version remain readable by the next.
func TestRecordWireFormat(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Observe(sim.Event{Kind: sim.EventRead, Time: 12.5, Tape: 3, Pos: 7, Seconds: 40.25, Request: 99})
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"read","t":12.5,"tape":3,"pos":7,"sec":40.25,"req":99}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("wire format drifted:\n got %q\nwant %q", got, want)
	}
	// req is omitted when zero.
	buf.Reset()
	rec = NewRecorder(&buf)
	rec.Observe(sim.Event{Kind: sim.EventSwitch, Time: 1, Tape: 2, Pos: -1, Seconds: 81})
	rec.Flush()
	if got := buf.String(); strings.Contains(got, "req") {
		t.Errorf("zero request id serialized: %q", got)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"kind\":\"read\"}\nnot json\n")); err == nil {
		t.Error("garbage line accepted")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Events != 0 || s.BusiestTape != -1 {
		t.Errorf("empty summary: %+v", s)
	}
	var out bytes.Buffer
	s.Format(&out) // must not panic
}

func TestRecorderPropagatesWriteErrors(t *testing.T) {
	rec := NewRecorder(failingWriter{})
	for i := 0; i < 10000; i++ { // exceed the bufio buffer to force a write
		rec.Observe(sim.Event{Kind: sim.EventRead, Time: float64(i)})
	}
	if rec.Flush() == nil && rec.Err() == nil {
		t.Error("write error not surfaced")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, errFail
}

var errFail = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }
