package trace

import (
	"bytes"
	"strings"
	"testing"

	"tapejuke/internal/core"
	"tapejuke/internal/faults"
	"tapejuke/internal/sim"
	"tapejuke/internal/tapemodel"
)

// healthTrace records a scrub-and-evacuate run on a single drive: latent
// errors develop on tape, the idle patrol finds them, a tape crosses the
// suspicion threshold, and its copies migrate off through evacuation jobs.
func healthTrace(t *testing.T) ([]Record, *sim.Result) {
	t.Helper()
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	res, err := sim.Run(sim.Config{
		BlockMB: 16, TapeCapMB: 7168, Tapes: 6, HotPercent: 100,
		ReadHotPercent: 100, DataBlocks: 150, Replicas: 2,
		QueueLength: 0, MeanInterarrival: 900,
		Scheduler: core.NewEnvelope(core.MaxBandwidth),
		Horizon:   3_000_000, Seed: 5,
		Faults: faults.Config{LatentErrorsPerTape: 3, LatentMeanOnsetSec: 300_000},
		Repair: sim.RepairConfig{Enable: true},
		Health: sim.HealthConfig{Enable: true, ScrubRate: 128,
			ErrHalfLifeSec: 1e12, SuspectScore: 2, Evacuate: true},
		Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs, res
}

func TestSummarizeHealthTrace(t *testing.T) {
	recs, res := healthTrace(t)
	s := Summarize(recs)
	if s.ScrubReads == 0 || s.ScrubSeconds <= 0 {
		t.Errorf("scrub activity missing from the summary: %d reads, %v s", s.ScrubReads, s.ScrubSeconds)
	}
	if s.LatentFinds != res.LatentErrorsFound {
		t.Errorf("trace shows %d latent finds, result reports %d", s.LatentFinds, res.LatentErrorsFound)
	}
	if s.Evacuations != res.EvacuatedCopies {
		t.Errorf("trace shows %d evacuations, result reports %d moved copies", s.Evacuations, res.EvacuatedCopies)
	}
	if s.RepairedCopies != s.RepairWrites {
		t.Errorf("RepairedCopies %d != RepairWrites %d", s.RepairedCopies, s.RepairWrites)
	}
	if s.RepairedCopies > 0 && s.MeanTimeToRepairSec <= 0 {
		t.Errorf("copies repaired but MeanTimeToRepairSec = %v", s.MeanTimeToRepairSec)
	}
	if s.LatentFinds > 0 && s.MeanTimeToDetectSec <= 0 {
		t.Errorf("latents found but MeanTimeToDetectSec = %v", s.MeanTimeToDetectSec)
	}
	var out bytes.Buffer
	s.Format(&out)
	if !strings.Contains(out.String(), "health") {
		t.Errorf("summary omits the health line:\n%s", out.String())
	}
}

func TestVerifyHealthTrace(t *testing.T) {
	recs, res := healthTrace(t)
	if res.LatentFoundByScrub == 0 || res.EvacuatedCopies == 0 {
		t.Fatalf("trace exercises too little: %d by scrub, %d evacuated",
			res.LatentFoundByScrub, res.EvacuatedCopies)
	}
	rep, err := Verify(recs, tapemodel.EXB8505XL(), 16, 6, 448, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("clean health trace failed verification: %+v", rep)
	}
}

// TestVerifyRejectsHealthTampering covers the fabrications the health rules
// forbid: scrubbing dead media, double-emptying a slot, and detections with
// no detecting read.
func TestVerifyRejectsHealthTampering(t *testing.T) {
	recs, _ := healthTrace(t)
	verify := func(recs []Record) error {
		_, err := Verify(recs, tapemodel.EXB8505XL(), 16, 6, 448, 1e-6)
		return err
	}
	find := func(kind string) int {
		for i, r := range recs {
			if r.Kind == kind {
				return i
			}
		}
		t.Fatalf("no %s record in trace", kind)
		return -1
	}

	t.Run("scrub after tape failure", func(t *testing.T) {
		i := find("scrub-read")
		tampered := append([]Record{{Kind: "tape-fail", Time: 0, Tape: recs[i].Tape, Pos: -1}},
			append([]Record{}, recs...)...)
		if verify(tampered) == nil {
			t.Error("scrub-read from a failed tape verified")
		}
	})

	t.Run("double evacuation", func(t *testing.T) {
		i := find("evacuate")
		tampered := append(append([]Record{}, recs[:i+1]...), recs[i])
		if verify(tampered) == nil {
			t.Error("emptying one slot twice verified")
		}
	})

	t.Run("latent-found without access", func(t *testing.T) {
		i := find("latent-found")
		// Move the detection to a position nothing in the trace ever read.
		forged := recs[i]
		forged.Pos = 447
		tampered := append(append([]Record{}, recs...), forged)
		if verify(tampered) == nil {
			t.Error("latent detection with no detecting read verified")
		}
	})

	t.Run("duplicate latent-found", func(t *testing.T) {
		i := find("latent-found")
		tampered := append(append([]Record{}, recs[:i+1]...), recs[i])
		if verify(tampered) == nil {
			t.Error("finding the same latent twice verified")
		}
	})

	t.Run("scrub of dead position", func(t *testing.T) {
		// A scrub-read at a position whose latent error the trace already
		// detected claims verification of dead media.
		i := find("latent-found")
		forged := Record{Kind: "scrub-read", Time: recs[i].Time + 1,
			Tape: recs[i].Tape, Pos: recs[i].Pos, Seconds: 1}
		tampered := append(append([]Record{}, recs[:i+1]...), forged)
		if verify(tampered) == nil {
			t.Error("scrub-read of a detected-dead position verified")
		}
	})
}

// TestVerifyRejectsEvacuationResurrection: a read of a slot the trace
// evacuated -- with no repair-write refilling it -- is data resurrection,
// exactly like the reclaim rule.
func TestVerifyRejectsEvacuationResurrection(t *testing.T) {
	verify := func(recs []Record) error {
		_, err := Verify(recs, tapemodel.EXB8505XL(), 16, 10, 448, 1e-6)
		return err
	}
	base := []Record{
		{Kind: "switch", Time: 0, Tape: 2, Pos: -1},
		{Kind: "read", Time: 1, Tape: 2, Pos: 5, Request: 1},
		{Kind: "evacuate", Time: 2, Tape: 2, Pos: 5},
	}
	resurrect := append(append([]Record{}, base...),
		Record{Kind: "read", Time: 3, Tape: 2, Pos: 5, Request: 2})
	if verify(resurrect) == nil {
		t.Error("read of an evacuated position verified")
	}
	scrubbed := append(append([]Record{}, base...),
		Record{Kind: "scrub-read", Time: 3, Tape: 2, Pos: 5})
	if verify(scrubbed) == nil {
		t.Error("scrub of an evacuated position verified")
	}

	// A repair-write refilling the slot makes a later read legitimate again.
	refill := append(append([]Record{}, base...),
		Record{Kind: "repair-read", Time: 3, Tape: 2, Pos: 3, Request: 9},
		Record{Kind: "repair-write", Time: 4, Tape: 2, Pos: 5, Request: 9},
		Record{Kind: "read", Time: 5, Tape: 2, Pos: 5, Request: 2})
	if err := verify(refill); err != nil {
		t.Errorf("read after repair-write refill rejected: %v", err)
	}
}
