package sim

import (
	"fmt"
	"math"

	"tapejuke/internal/sched"
)

// drive is one tape drive of a multi-drive jukebox: its mounted tape, head
// position, in-flight sweep, and the request currently being read.
type drive struct {
	mounted  int
	head     int
	active   *sched.Sweep
	inFlight *sched.Request // request whose read completes at freeAt
	opSec    float64        // duration of the in-flight operation
	switched int            // tape of an in-flight switch, -1 otherwise
	freeAt   float64        // time the drive next needs attention

	// Fault-model deferrals: an operation's fault outcome is resolved at
	// issue time (keeping injector draws in deterministic event order) but
	// its effects are applied when the drive gives up at freeAt, the
	// discovery time.
	faulted   *sched.Request   // read failing permanently at freeAt
	abort     []*sched.Request // requests to requeue at freeAt
	failTape  int              // tape to mask at freeAt, -1 none
	loadFail  bool             // failure was a load: unmount and release busy
	repairing float64          // repair downtime ending at freeAt
}

// multiEngine simulates a jukebox whose tapes are shared by several
// independently scheduled drives -- the extension the paper leaves as
// future work. Each drive runs the Section 2.2 service loop against the
// shared pending list; a tape mounted in one drive is unavailable to the
// others (the Busy vector seen by the schedulers).
//
// Every drive uses its own scheduler instance (schedulers are stateful), all
// of the same algorithm.
type multiEngine struct {
	*engine
	drives []drive
	scheds []sched.Scheduler
	busy   []bool
}

// multiAudit, set by tests, verifies the busy-vector/mount consistency
// after every event-loop step.
var multiAudit = false

// verifyBusy checks the busy-vector hygiene invariants: a tape mounted in
// (or being loaded into) a drive is busy for every other drive, no tape is
// mounted twice, and every busy tape is accounted for by exactly one drive
// (a release happens exactly once).
func (m *multiEngine) verifyBusy() error {
	owners := make(map[int]int)
	for d := range m.drives {
		t := m.drives[d].mounted
		if t < 0 {
			continue
		}
		if prev, dup := owners[t]; dup {
			return fmt.Errorf("sim: tape %d mounted in drives %d and %d", t, prev, d)
		}
		owners[t] = d
		if !m.busy[t] {
			return fmt.Errorf("sim: tape %d mounted in drive %d but not busy", t, d)
		}
	}
	busyCount := 0
	for t := range m.busy {
		if m.busy[t] {
			busyCount++
		}
	}
	if busyCount != len(owners) {
		return fmt.Errorf("sim: %d busy tapes but %d mounted drives", busyCount, len(owners))
	}
	return nil
}

// runMulti drives the multi-drive event loop. The embedded single-drive
// engine supplies workload generation and metric accounting; st.Mounted,
// st.Head and st.Active are views swapped per drive around scheduler calls.
func (m *multiEngine) runMulti() (*Result, error) {
	for i := range m.drives {
		m.drives[i] = drive{mounted: -1, switched: -1, failTape: -1}
	}
	for {
		if multiAudit {
			if err := m.verifyBusy(); err != nil {
				return nil, err
			}
		}
		// Next drive needing attention.
		d := -1
		for i := range m.drives {
			if d < 0 || m.drives[i].freeAt < m.drives[d].freeAt {
				d = i
			}
		}
		dr := &m.drives[d]
		if dr.freeAt >= m.cfg.Horizon {
			m.advanceClock(m.cfg.Horizon - m.now)
			break
		}
		m.advanceClock(dr.freeAt - m.now)
		m.pumpMulti()
		if m.flt != nil {
			m.settleFaults(d)
		}

		// Report a switch that just finished (events carry completion
		// times so the stream stays in time order across drives).
		if dr.switched >= 0 {
			m.emit(Event{Kind: EventSwitch, Time: m.now, Tape: dr.switched,
				Pos: -1, Seconds: dr.opSec})
			dr.switched = -1
		}
		// Finish the read that just completed.
		if dr.inFlight != nil {
			r := dr.inFlight
			dr.inFlight = nil
			m.emit(Event{Kind: EventRead, Time: m.now, Tape: r.Target.Tape,
				Pos: r.Target.Pos, Seconds: dr.opSec, Request: r.ID})
			m.completeMulti(d, r)
			if m.cfg.MaxCompletions > 0 && m.completed >= m.cfg.MaxCompletions {
				return m.result(), nil
			}
		}

		// A due drive failure takes the drive down for repair before any
		// further operation.
		if m.flt != nil && m.now >= m.flt.inj.DriveFailAt(d) {
			rep := m.flt.inj.DriveRepair(d, m.now)
			m.flt.driveFails++
			m.flt.repairSec += rep
			dr.repairing = rep
			dr.freeAt = m.now + rep
			continue
		}

		// Start the drive's next operation.
		if dr.active != nil && !dr.active.Empty() {
			m.startRead(d)
			continue
		}
		dr.active = nil
		if len(m.st.Pending) == 0 {
			m.parkDrive(d)
			continue
		}
		m.bindDrive(d)
		tape, sweep, ok := m.scheds[d].Reschedule(m.st)
		m.unbindDrive(d)
		if !ok {
			// Every candidate tape is busy in another drive (or FIFO's
			// oldest request is pinned to one); retry at the next event.
			m.parkDrive(d)
			continue
		}
		if m.busy[tape] && tape != dr.mounted {
			return nil, fmt.Errorf("sim: scheduler %s selected busy tape %d", m.scheds[d].Name(), tape)
		}
		if tape != dr.mounted {
			sw := m.st.Costs.SwitchCost(dr.mounted, dr.head, tape)
			if dr.mounted >= 0 {
				m.busy[dr.mounted] = false
			}
			m.busy[tape] = true
			dr.mounted, dr.head = tape, 0
			dr.active = sweep
			if m.flt != nil {
				m.issueFaultySwitch(d, tape, sw, sweep)
				continue
			}
			dr.freeAt = m.now + sw
			dr.switched, dr.opSec = tape, sw
			m.switchSec += sw // bucketed directly; clock advances via freeAt
			if m.now > m.warmupEnd {
				m.switches++
			}
			continue
		}
		dr.active = sweep
		m.startRead(d)
	}
	return m.result(), nil
}

// advanceClock moves wall-clock time without charging an activity bucket:
// in a multi-drive jukebox the locate/read/switch buckets accumulate
// drive-seconds (summed over drives) at the point each operation is issued,
// while idle time means every drive is empty-handed.
func (m *multiEngine) advanceClock(dt float64) {
	if dt <= 0 {
		return
	}
	if m.allIdle() {
		m.idleSec += dt
	}
	m.queueAreaSec += float64(m.outstanding) * dt
	m.now += dt
}

// startRead pops the drive's next request and schedules its completion.
func (m *multiEngine) startRead(d int) {
	dr := &m.drives[d]
	r := dr.active.Pop()
	if m.flt != nil {
		m.startFaultyRead(d, r)
		return
	}
	loc, rd, newHead := m.st.Costs.ServeOneParts(dr.head, r.Target.Pos)
	dr.head = newHead
	dr.inFlight = r
	dr.opSec = loc + rd
	dr.freeAt = m.now + loc + rd
	m.locateSec += loc
	m.readSec += rd
	if m.now > m.warmupEnd {
		m.readsPerTape[r.Target.Tape]++
	}
}

// parkDrive stalls a drive until the next other-drive event or arrival.
func (m *multiEngine) parkDrive(d int) {
	next := m.nextArr
	for i := range m.drives {
		if i != d && m.drives[i].freeAt > m.now && m.drives[i].freeAt < next {
			next = m.drives[i].freeAt
		}
	}
	if math.IsInf(next, 1) || next <= m.now {
		// Closed model with every other drive stuck too: nothing will ever
		// arrive. Jump to the horizon.
		next = m.cfg.Horizon
	}
	m.drives[d].freeAt = next
}

// completeMulti records a completion on drive d and routes the closed-model
// replacement through the incremental schedulers.
func (m *multiEngine) completeMulti(d int, r *sched.Request) {
	m.totalDone++
	m.outstanding--
	if m.now > m.warmupEnd {
		m.completed++
		rt := m.now - r.Arrival
		m.resp.Add(rt)
		m.respSample.Add(rt, m.gen.Rand().Int63n)
		if r.FaultedAt > 0 {
			m.flt.rerouted++
			m.flt.recovery.Add(m.now - r.FaultedAt)
		}
	}
	m.emit(Event{Kind: EventComplete, Time: m.now, Tape: r.Target.Tape,
		Pos: r.Target.Pos, Request: r.ID})
	if m.arr.Closed() {
		m.deliverMulti(m.newRequest(m.now))
	}
}

// pumpMulti delivers due external arrivals through the incremental
// schedulers.
func (m *multiEngine) pumpMulti() {
	for m.nextArr <= m.now {
		r := m.newRequest(m.nextArr)
		m.deliverMulti(r)
		m.nextArr = m.arr.Next()
	}
}

// deliverMulti offers a new request to each drive's in-flight sweep in
// drive order; the first acceptance wins, otherwise the request joins the
// shared pending list. Requests for blocks with no readable copy left are
// abandoned, as in the single-drive deliver.
func (m *multiEngine) deliverMulti(r *sched.Request) {
	for tries := 0; m.flt != nil && !m.st.Serviceable(r.Block); tries++ {
		m.unserviceable(r)
		if !m.arr.Closed() || !m.flt.anyTapeUp() || tries >= 100 {
			return
		}
		r = m.newRequest(m.now)
	}
	for d := range m.drives {
		if m.drives[d].active == nil {
			continue
		}
		m.bindDrive(d)
		ok := m.scheds[d].OnArrival(m.st, r)
		m.unbindDrive(d)
		if ok {
			return
		}
	}
	m.st.Pending = append(m.st.Pending, r)
}

// bindDrive points the shared scheduling state at drive d. Busy excludes
// every tape mounted elsewhere.
func (m *multiEngine) bindDrive(d int) {
	dr := &m.drives[d]
	m.st.Mounted, m.st.Head, m.st.Active = dr.mounted, dr.head, dr.active
	for t := range m.busy {
		m.st.Busy[t] = m.busy[t]
	}
	if dr.mounted >= 0 {
		m.st.Busy[dr.mounted] = false // its own tape is available to it
	}
}

// unbindDrive copies mutated view state back to the drive.
func (m *multiEngine) unbindDrive(d int) {
	dr := &m.drives[d]
	dr.active = m.st.Active
	m.st.Active = nil
}

// settleFaults applies the deferred effects of drive d's just-finished
// faulted operation. The failure was resolved when the operation was issued;
// it is discovered -- masked, requeued, reported -- now that the drive has
// given up at freeAt.
func (m *multiEngine) settleFaults(d int) {
	dr := &m.drives[d]
	if dr.repairing > 0 {
		m.emit(Event{Kind: EventDriveRepair, Time: m.now, Tape: -1, Pos: -1, Seconds: dr.repairing})
		dr.repairing = 0
	}
	if dr.failTape >= 0 {
		m.markTapeDown(dr.failTape)
		if dr.loadFail {
			// The cartridge never mounted: the drive is empty and the tape
			// goes back to the library (released exactly once, here).
			m.busy[dr.failTape] = false
			dr.mounted, dr.head = -1, 0
			dr.loadFail = false
		}
		dr.failTape = -1
	}
	if dr.faulted != nil {
		m.flt.permanent++
		m.emit(Event{Kind: EventFault, Time: m.now, Tape: dr.faulted.Target.Tape,
			Pos: dr.faulted.Target.Pos, Request: dr.faulted.ID})
		m.requeueFaulted(dr.faulted)
		dr.faulted = nil
	}
	for i, r := range dr.abort {
		m.requeueFaulted(r)
		dr.abort[i] = nil
	}
	dr.abort = dr.abort[:0]
	m.dropUnserviceable()
}

// startFaultyRead resolves the entire fault story of one read at issue time
// (all injector draws happen here, in deterministic event order) and
// schedules the drive to wake when the outcome -- success, permanent
// failure, or tape-failure discovery -- is known. Unlike the single-drive
// engine, intermediate transient attempts are counted but not emitted as
// events, since their interior times fall between drive events.
func (m *multiEngine) startFaultyRead(d int, r *sched.Request) {
	f := m.flt
	dr := &m.drives[d]
	tape, pos := r.Target.Tape, r.Target.Pos
	if f.inj.TapeFailed(tape, m.now) {
		// The medium is dead: the locate runs into the failure and the
		// whole sweep must be rerouted to surviving replicas.
		loc, _, _ := m.st.Costs.ServeOneParts(dr.head, pos)
		f.faultSec += loc
		f.permanent++
		dr.opSec = loc
		dr.freeAt = m.now + loc
		dr.failTape = tape
		dr.abort = append(dr.abort, r)
		for !dr.active.Empty() {
			dr.abort = append(dr.abort, dr.active.Pop())
		}
		dr.active = nil
		return
	}
	total := 0.0
	head := dr.head
	for attempt := 0; ; {
		loc, rd, newHead := m.st.Costs.ServeOneParts(head, pos)
		head = newHead
		total += loc + rd
		if f.inj.CopyDead(tape, pos) {
			f.faultSec += loc + rd
			dr.faulted = r
			break
		}
		if !f.inj.ReadAttemptFails() {
			m.locateSec += loc
			m.readSec += rd
			dr.inFlight = r
			if m.now > m.warmupEnd {
				m.readsPerTape[tape]++
			}
			break
		}
		f.faultSec += loc + rd
		f.transient++
		attempt++
		if attempt > f.inj.Retry().MaxRetries {
			f.inj.MarkDead(tape, pos)
			f.maskDirty = true
			dr.faulted = r // settleFaults counts the permanent failure
			break
		}
		f.retries++
		backoff := f.inj.Retry().Delay(attempt)
		total += backoff
		f.faultSec += backoff
	}
	dr.head = head
	dr.opSec = total
	dr.freeAt = m.now + total
}

// issueFaultySwitch resolves a tape load under the fault model at issue
// time. On success the switch completes after the consumed retry attempts
// plus the final load; on a failed load the drive wakes empty-handed with
// the tape masked and the extracted sweep requeued (applied in
// settleFaults). The caller has already marked the tape busy and mounted.
func (m *multiEngine) issueFaultySwitch(d, tape int, sw float64, sweep *sched.Sweep) {
	f := m.flt
	dr := &m.drives[d]
	wasted := 0.0
	failed := false
	if f.inj.TapeFailed(tape, m.now) {
		// The robot fetches the cartridge and the load fails: discovery.
		wasted = sw
		failed = true
	} else {
		for attempt := 0; f.inj.SwitchAttemptFails(); {
			f.switchFlt++
			wasted += sw
			attempt++
			if attempt > f.inj.Retry().MaxRetries {
				failed = true
				break
			}
			f.retries++
		}
	}
	f.faultSec += wasted
	if !failed {
		dr.freeAt = m.now + wasted + sw
		dr.switched, dr.opSec = tape, sw
		m.switchSec += sw
		if m.now > m.warmupEnd {
			m.switches++
		}
		return
	}
	dr.opSec = wasted
	dr.freeAt = m.now + wasted
	dr.failTape = tape
	dr.loadFail = true
	for !sweep.Empty() {
		dr.abort = append(dr.abort, sweep.Pop())
	}
	dr.active = nil
}

func (m *multiEngine) allIdle() bool {
	for i := range m.drives {
		if m.drives[i].inFlight != nil || (m.drives[i].active != nil && !m.drives[i].active.Empty()) {
			return false
		}
	}
	return true
}
