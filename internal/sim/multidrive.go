package sim

import (
	"fmt"
	"math"

	"tapejuke/internal/sched"
)

// drive is one tape drive of a multi-drive jukebox: its mounted tape, head
// position, in-flight sweep, and the request currently being read.
type drive struct {
	mounted  int
	head     int
	active   *sched.Sweep
	inFlight *sched.Request // request whose read completes at freeAt
	opSec    float64        // duration of the in-flight operation
	switched int            // tape of an in-flight switch, -1 otherwise
	freeAt   float64        // time the drive next needs attention
}

// multiEngine simulates a jukebox whose tapes are shared by several
// independently scheduled drives -- the extension the paper leaves as
// future work. Each drive runs the Section 2.2 service loop against the
// shared pending list; a tape mounted in one drive is unavailable to the
// others (the Busy vector seen by the schedulers).
//
// Every drive uses its own scheduler instance (schedulers are stateful), all
// of the same algorithm.
type multiEngine struct {
	*engine
	drives []drive
	scheds []sched.Scheduler
	busy   []bool
}

// runMulti drives the multi-drive event loop. The embedded single-drive
// engine supplies workload generation and metric accounting; st.Mounted,
// st.Head and st.Active are views swapped per drive around scheduler calls.
func (m *multiEngine) runMulti() (*Result, error) {
	for i := range m.drives {
		m.drives[i] = drive{mounted: -1, switched: -1}
	}
	for {
		// Next drive needing attention.
		d := -1
		for i := range m.drives {
			if d < 0 || m.drives[i].freeAt < m.drives[d].freeAt {
				d = i
			}
		}
		dr := &m.drives[d]
		if dr.freeAt >= m.cfg.Horizon {
			m.advanceClock(m.cfg.Horizon - m.now)
			break
		}
		m.advanceClock(dr.freeAt - m.now)
		m.pumpMulti()

		// Report a switch that just finished (events carry completion
		// times so the stream stays in time order across drives).
		if dr.switched >= 0 {
			m.emit(Event{Kind: EventSwitch, Time: m.now, Tape: dr.switched,
				Pos: -1, Seconds: dr.opSec})
			dr.switched = -1
		}
		// Finish the read that just completed.
		if dr.inFlight != nil {
			r := dr.inFlight
			dr.inFlight = nil
			m.emit(Event{Kind: EventRead, Time: m.now, Tape: r.Target.Tape,
				Pos: r.Target.Pos, Seconds: dr.opSec, Request: r.ID})
			m.completeMulti(d, r)
			if m.cfg.MaxCompletions > 0 && m.completed >= m.cfg.MaxCompletions {
				return m.result(), nil
			}
		}

		// Start the drive's next operation.
		if dr.active != nil && !dr.active.Empty() {
			m.startRead(d)
			continue
		}
		dr.active = nil
		if len(m.st.Pending) == 0 {
			m.parkDrive(d)
			continue
		}
		m.bindDrive(d)
		tape, sweep, ok := m.scheds[d].Reschedule(m.st)
		m.unbindDrive(d)
		if !ok {
			// Every candidate tape is busy in another drive (or FIFO's
			// oldest request is pinned to one); retry at the next event.
			m.parkDrive(d)
			continue
		}
		if m.busy[tape] && tape != dr.mounted {
			return nil, fmt.Errorf("sim: scheduler %s selected busy tape %d", m.scheds[d].Name(), tape)
		}
		if tape != dr.mounted {
			sw := m.st.Costs.SwitchCost(dr.mounted, dr.head, tape)
			if dr.mounted >= 0 {
				m.busy[dr.mounted] = false
			}
			m.busy[tape] = true
			dr.mounted, dr.head = tape, 0
			dr.active = sweep
			dr.freeAt = m.now + sw
			dr.switched, dr.opSec = tape, sw
			m.switchSec += sw // bucketed directly; clock advances via freeAt
			if m.now > m.warmupEnd {
				m.switches++
			}
			continue
		}
		dr.active = sweep
		m.startRead(d)
	}
	return m.result(), nil
}

// advanceClock moves wall-clock time without charging an activity bucket:
// in a multi-drive jukebox the locate/read/switch buckets accumulate
// drive-seconds (summed over drives) at the point each operation is issued,
// while idle time means every drive is empty-handed.
func (m *multiEngine) advanceClock(dt float64) {
	if dt <= 0 {
		return
	}
	if m.allIdle() {
		m.idleSec += dt
	}
	m.queueAreaSec += float64(m.outstanding) * dt
	m.now += dt
}

// startRead pops the drive's next request and schedules its completion.
func (m *multiEngine) startRead(d int) {
	dr := &m.drives[d]
	r := dr.active.Pop()
	loc, rd, newHead := m.st.Costs.ServeOneParts(dr.head, r.Target.Pos)
	dr.head = newHead
	dr.inFlight = r
	dr.opSec = loc + rd
	dr.freeAt = m.now + loc + rd
	m.locateSec += loc
	m.readSec += rd
	if m.now > m.warmupEnd {
		m.readsPerTape[r.Target.Tape]++
	}
}

// parkDrive stalls a drive until the next other-drive event or arrival.
func (m *multiEngine) parkDrive(d int) {
	next := m.nextArr
	for i := range m.drives {
		if i != d && m.drives[i].freeAt > m.now && m.drives[i].freeAt < next {
			next = m.drives[i].freeAt
		}
	}
	if math.IsInf(next, 1) || next <= m.now {
		// Closed model with every other drive stuck too: nothing will ever
		// arrive. Jump to the horizon.
		next = m.cfg.Horizon
	}
	m.drives[d].freeAt = next
}

// completeMulti records a completion on drive d and routes the closed-model
// replacement through the incremental schedulers.
func (m *multiEngine) completeMulti(d int, r *sched.Request) {
	m.totalDone++
	m.outstanding--
	if m.now > m.warmupEnd {
		m.completed++
		rt := m.now - r.Arrival
		m.resp.Add(rt)
		m.respSample.Add(rt, m.gen.Rand().Int63n)
	}
	m.emit(Event{Kind: EventComplete, Time: m.now, Tape: r.Target.Tape,
		Pos: r.Target.Pos, Request: r.ID})
	if m.arr.Closed() {
		m.deliverMulti(m.newRequest(m.now))
	}
}

// pumpMulti delivers due external arrivals through the incremental
// schedulers.
func (m *multiEngine) pumpMulti() {
	for m.nextArr <= m.now {
		r := m.newRequest(m.nextArr)
		m.deliverMulti(r)
		m.nextArr = m.arr.Next()
	}
}

// deliverMulti offers a new request to each drive's in-flight sweep in
// drive order; the first acceptance wins, otherwise the request joins the
// shared pending list.
func (m *multiEngine) deliverMulti(r *sched.Request) {
	for d := range m.drives {
		if m.drives[d].active == nil {
			continue
		}
		m.bindDrive(d)
		ok := m.scheds[d].OnArrival(m.st, r)
		m.unbindDrive(d)
		if ok {
			return
		}
	}
	m.st.Pending = append(m.st.Pending, r)
}

// bindDrive points the shared scheduling state at drive d. Busy excludes
// every tape mounted elsewhere.
func (m *multiEngine) bindDrive(d int) {
	dr := &m.drives[d]
	m.st.Mounted, m.st.Head, m.st.Active = dr.mounted, dr.head, dr.active
	for t := range m.busy {
		m.st.Busy[t] = m.busy[t]
	}
	if dr.mounted >= 0 {
		m.st.Busy[dr.mounted] = false // its own tape is available to it
	}
}

// unbindDrive copies mutated view state back to the drive.
func (m *multiEngine) unbindDrive(d int) {
	dr := &m.drives[d]
	dr.active = m.st.Active
	m.st.Active = nil
}

func (m *multiEngine) allIdle() bool {
	for i := range m.drives {
		if m.drives[i].inFlight != nil || (m.drives[i].active != nil && !m.drives[i].active.Empty()) {
			return false
		}
	}
	return true
}
