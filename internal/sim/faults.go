package sim

import (
	"sort"

	"tapejuke/internal/faults"
	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
	"tapejuke/internal/stats"
)

// faultState is the engine-side bookkeeping of the fault model: the stream
// injector, the shared down-tape mask, and the fault metrics. nil when the
// fault model is disabled, which keeps the fault-free hot path to a handful
// of nil checks.
type faultState struct {
	inj       *faults.Injector
	down      []bool // shared with st.Down: tapes discovered failed
	maskDirty bool   // a copy or tape was lost since the last pending scan

	retries    int64
	transient  int64
	permanent  int64
	switchFlt  int64
	driveFails int64
	repairSec  float64
	faultSec   float64
	unserv     int64 // whole run, for conservation
	unservPost int64 // post-warmup, for availability
	rerouted   int64
	recovery   stats.Accumulator
}

// anyTapeUp reports whether at least one tape has not failed.
func (f *faultState) anyTapeUp() bool {
	for _, d := range f.down {
		if !d {
			return true
		}
	}
	return false
}

// initFaults wires the fault injector into the engine when any fault class
// is enabled. capBlocks is the per-tape data capacity in blocks.
func (e *engine) initFaults(capBlocks int) error {
	fc := e.cfg.Faults
	if !fc.Enabled() {
		return nil
	}
	if fc.Seed == 0 {
		fc.Seed = e.cfg.Seed + 3
	}
	drives := e.cfg.Drives
	if drives < 1 {
		drives = 1
	}
	inj, err := faults.New(fc, e.cfg.Tapes, drives, capBlocks)
	if err != nil {
		return err
	}
	e.flt = &faultState{
		inj:  inj,
		down: make([]bool, e.cfg.Tapes),
		// Injected bad ranges may leave initially seeded requests with no
		// readable copy; the first pending scan must abandon those.
		maskDirty: inj.InjectedBadBlocks() > 0,
	}
	e.st.Down = e.flt.down
	e.st.DeadCopy = inj.CopyDead
	return nil
}

// unserviceable abandons a request whose every copy is lost: it leaves the
// system uncompleted.
func (e *engine) unserviceable(r *sched.Request) {
	e.outstanding--
	e.flt.unserv++
	if e.now > e.warmupEnd {
		e.flt.unservPost++
	}
	e.emit(Event{Kind: EventUnserviceable, Time: e.now, Tape: -1, Pos: -1, Request: r.ID})
}

// dropUnserviceable scans the pending list after the copy-availability mask
// changed and abandons every request with no readable copy left, so
// schedulers never see a request they cannot place. Closed-model processes
// whose request was abandoned issue a fresh one, availability permitting.
func (e *engine) dropUnserviceable() {
	if !e.flt.maskDirty {
		return
	}
	e.flt.maskDirty = false
	dropped := 0
	kept := e.st.Pending[:0]
	for _, r := range e.st.Pending {
		if e.st.Serviceable(r.Block) {
			kept = append(kept, r)
			continue
		}
		e.unserviceable(r)
		dropped++
	}
	for i := len(kept); i < len(e.st.Pending); i++ {
		e.st.Pending[i] = nil
	}
	e.st.Pending = kept
	if e.arr.Closed() {
		for ; dropped > 0 && e.flt.anyTapeUp(); dropped-- {
			e.deliverFn(e.newRequest(e.now))
		}
	}
}

// markTapeDown masks a tape discovered permanently failed.
func (e *engine) markTapeDown(tape int) {
	if e.flt.down[tape] {
		return
	}
	e.flt.down[tape] = true
	e.flt.maskDirty = true
	e.emit(Event{Kind: EventTapeFail, Time: e.now, Tape: tape, Pos: -1})
}

// requeueFaulted returns a request whose chosen copy was lost to the
// pending list, preserving (Arrival, ID) order so schedulers keep seeing an
// arrival-ordered list. If every copy is gone, the next dropUnserviceable
// scan abandons the request; it is never retried forever.
func (e *engine) requeueFaulted(r *sched.Request) {
	if r.FaultedAt == 0 {
		r.FaultedAt = e.now
	}
	r.Target = layout.Replica{}
	p := e.st.Pending
	i := sort.Search(len(p), func(i int) bool {
		return p[i].Arrival > r.Arrival || (p[i].Arrival == r.Arrival && p[i].ID > r.ID)
	})
	p = append(p, nil)
	copy(p[i+1:], p[i:])
	p[i] = r
	e.st.Pending = p
}

// requeueSweep sends every remaining sweep request back to the pending list.
func (e *engine) requeueSweep(sw *sched.Sweep) {
	for !sw.Empty() {
		e.requeueFaulted(sw.Pop())
	}
}

// checkDriveRepair serves a due single-drive failure: the drive is down for
// the repair time before any further operation.
func (e *engine) checkDriveRepair() {
	f := e.flt
	if e.now < f.inj.DriveFailAt(0) {
		return
	}
	rep := f.inj.DriveRepair(0, e.now)
	f.driveFails++
	e.advance(rep, &f.repairSec)
	e.emit(Event{Kind: EventDriveRepair, Time: e.now, Tape: -1, Pos: -1, Seconds: rep})
}

// faultySwitch performs a tape switch under the fault model. Load attempts
// may fail with the configured probability, each consuming the mechanical
// time, retried up to the policy bound; a tape past its failure time is
// discovered dead at load. It returns false with the drive left empty and
// the target tape masked when the load never succeeds.
func (e *engine) faultySwitch(tape int, sw float64) bool {
	f := e.flt
	for attempt := 0; ; {
		if f.inj.TapeFailed(tape, e.now) {
			// The robot fetches the cartridge and the load fails for good:
			// this is how an unmounted tape's death is discovered.
			e.advance(sw, &f.faultSec)
			e.st.Mounted, e.st.Head = -1, 0
			e.markTapeDown(tape)
			return false
		}
		if !f.inj.SwitchAttemptFails() {
			e.advance(sw, &e.switchSec)
			e.st.Mounted, e.st.Head = tape, 0
			if e.now > e.warmupEnd {
				e.switches++
			}
			e.emit(Event{Kind: EventSwitch, Time: e.now, Tape: tape, Pos: -1, Seconds: sw})
			return true
		}
		f.switchFlt++
		e.advance(sw, &f.faultSec)
		e.emit(Event{Kind: EventFault, Time: e.now, Tape: tape, Pos: -1, Seconds: sw})
		attempt++
		if attempt > f.inj.Retry().MaxRetries {
			// The loader cannot mount the cartridge; treat it as damaged.
			e.st.Mounted, e.st.Head = -1, 0
			e.markTapeDown(tape)
			return false
		}
		f.retries++
	}
}

// faultyRead serves one sweep request under the fault model. Transient
// errors retry with simulated-time backoff and escalate the copy to dead on
// exhaustion; a tape past its failure time aborts the whole sweep, sending
// its requests back to the pending list to be rerouted to surviving
// replicas.
func (e *engine) faultyRead(r *sched.Request, sweep *sched.Sweep) {
	f := e.flt
	tape, pos := r.Target.Tape, r.Target.Pos
	for attempt := 0; ; {
		e.checkDriveRepair()
		if f.inj.TapeFailed(tape, e.now) {
			// The medium died mid-schedule: the locate runs into the failure.
			loc, _, _ := e.st.Costs.ServeOneParts(e.st.Head, pos)
			e.advance(loc, &f.faultSec)
			f.permanent++
			e.markTapeDown(tape)
			e.requeueFaulted(r)
			e.requeueSweep(sweep)
			return
		}
		loc, rd, newHead := e.st.Costs.ServeOneParts(e.st.Head, pos)
		if f.inj.CopyDead(tape, pos) {
			// Possible when an earlier request in this sweep escalated the
			// same position; schedulers never target a copy already dead.
			e.advance(loc+rd, &f.faultSec)
			e.st.Head = newHead
			f.permanent++
			e.emit(Event{Kind: EventFault, Time: e.now, Tape: tape, Pos: pos,
				Seconds: loc + rd, Request: r.ID})
			e.requeueFaulted(r)
			return
		}
		if !f.inj.ReadAttemptFails() {
			e.advance(loc, &e.locateSec)
			e.advance(rd, &e.readSec)
			e.st.Head = newHead
			if e.now > e.warmupEnd {
				e.readsPerTape[tape]++
			}
			e.emit(Event{Kind: EventRead, Time: e.now, Tape: tape, Pos: pos,
				Seconds: loc + rd, Request: r.ID})
			e.complete(r)
			return
		}
		// Transient media error: the attempt consumed the drive anyway.
		e.advance(loc+rd, &f.faultSec)
		e.st.Head = newHead
		f.transient++
		e.emit(Event{Kind: EventFault, Time: e.now, Tape: tape, Pos: pos,
			Seconds: loc + rd, Request: r.ID})
		attempt++
		if attempt > f.inj.Retry().MaxRetries {
			f.inj.MarkDead(tape, pos)
			f.maskDirty = true
			f.permanent++
			e.requeueFaulted(r)
			return
		}
		f.retries++
		e.advance(f.inj.Retry().Delay(attempt), &f.faultSec)
	}
}

// faultResult folds the fault metrics into the result.
func (e *engine) faultResult(res *Result) {
	res.Availability = 1
	f := e.flt
	if f == nil {
		return
	}
	res.Retries = f.retries
	res.TransientFaults = f.transient
	res.PermanentFaults = f.permanent
	res.SwitchFaults = f.switchFlt
	for _, d := range f.down {
		if d {
			res.TapeFailures++
		}
	}
	res.DriveFailures = f.driveFails
	res.DriveRepairSeconds = f.repairSec
	res.FaultSeconds = f.faultSec
	res.Unserviceable = f.unserv
	res.Rerouted = f.rerouted
	res.MeanRecoverySec = f.recovery.Mean()
	if e.completed+f.unservPost > 0 {
		res.Availability = float64(e.completed) / float64(e.completed+f.unservPost)
	}
}
