package sim

import (
	"tapejuke/internal/faults"
	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
	"tapejuke/internal/stats"
)

// faultState is the engine-side bookkeeping of the fault model: the stream
// injector, the shared down-tape mask, and the fault metrics. nil when the
// fault model is disabled, which keeps the fault-free hot path to a handful
// of nil checks.
type faultState struct {
	inj       *faults.Injector
	down      []bool // shared with Shared.Down: tapes discovered failed
	upTapes   int    // tapes not yet discovered failed: len(down) minus set bits
	maskDirty bool   // a copy or tape was lost since the last pending scan

	retries    int64
	transient  int64
	permanent  int64
	switchFlt  int64
	driveFails int64
	repairSec  float64
	faultSec   float64
	unserv     int64 // whole run, for conservation
	unservPost int64 // post-warmup, for availability
	rerouted   int64
	recovery   stats.Accumulator

	// latentDet records when each latent error was first detected (packed
	// (tape,pos) -> detection time), by whichever path touched it first:
	// a failing user read, a scrub pass, or a repair read's verification.
	latentDet   map[int64]float64
	latentFound int64
}

// packCopyKey packs a physical position into the latent-detection map key.
func packCopyKey(tape, pos int) int64 { return int64(tape)<<32 | int64(uint32(pos)) }

// anyTapeUp reports whether at least one tape has not failed. The counter
// is maintained by markTapeDown, keeping this O(1) on the delivery path
// instead of an O(tapes) scan per call.
func (f *faultState) anyTapeUp() bool {
	return f.upTapes > 0
}

// initFaults wires the fault injector into the engine when any fault class
// is enabled. capBlocks is the per-tape data capacity in blocks.
func (e *engine) initFaults(capBlocks int) error {
	fc := e.cfg.Faults
	if !fc.Enabled() {
		return nil
	}
	if fc.Seed == 0 {
		fc.Seed = e.cfg.Seed + 3
	}
	drives := e.cfg.Drives
	if drives < 1 {
		drives = 1
	}
	inj, err := faults.New(fc, e.cfg.Tapes, drives, capBlocks)
	if err != nil {
		return err
	}
	e.flt = &faultState{
		inj:     inj,
		down:    make([]bool, e.cfg.Tapes),
		upTapes: e.cfg.Tapes,
		// Injected bad ranges may leave initially seeded requests with no
		// readable copy; the first pending scan must abandon those.
		maskDirty: inj.InjectedBadBlocks() > 0,
	}
	e.sh.Down = e.flt.down
	e.sh.DeadCopy = inj.CopyDead
	return nil
}

// noteLatentFound handles the first detection of a latent error at
// (tape, pos): the copy escalates to dead exactly like a retry-exhausted
// transient, the detection time and latency are recorded, and the repair
// planner is notified so a replacement copy gets minted. byScrub credits
// the background patrol (versus a user read or repair read finding it).
func (e *engine) noteLatentFound(tape, pos int, at float64, byScrub bool) {
	f := e.flt
	key := packCopyKey(tape, pos)
	if _, dup := f.latentDet[key]; dup {
		return
	}
	if f.latentDet == nil {
		f.latentDet = make(map[int64]float64)
	}
	f.latentDet[key] = at
	f.latentFound++
	f.inj.MarkDead(tape, pos)
	f.maskDirty = true
	if e.rep != nil {
		e.rep.pl.NoteCopyDead(tape, pos, at)
	}
	onset, _ := f.inj.LatentOnset(tape, pos)
	e.push(Event{Kind: EventLatentFound, Time: at, Tape: tape, Pos: pos, Seconds: at - onset})
	if h := e.hlt; h != nil {
		if byScrub {
			h.foundByScrub++
		}
		h.sc.NoteTapeError(tape, at)
		e.updateSuspect(tape, at)
	}
}

// unserviceable abandons a request whose every copy is lost: it leaves the
// system uncompleted.
func (e *engine) unserviceable(r *sched.Request) {
	r.Done = true
	e.outstanding--
	e.flt.unserv++
	if e.now > e.warmupEnd {
		e.flt.unservPost++
	}
	e.push(Event{Kind: EventUnserviceable, Time: e.now, Tape: -1, Pos: -1, Request: r.ID})
	e.freeRequest(r)
}

// dropUnserviceable scans the pending list after the copy-availability mask
// changed and abandons every request with no readable copy left, so
// schedulers never see a request they cannot place. Closed-model processes
// whose request was abandoned issue a fresh one, availability permitting.
func (e *engine) dropUnserviceable() {
	if !e.flt.maskDirty {
		return
	}
	e.flt.maskDirty = false
	dropped := 0
	kept := e.sh.Pending[:0]
	for _, r := range e.sh.Pending {
		if e.sh.Serviceable(r.Block) {
			kept = append(kept, r)
			continue
		}
		e.unserviceable(r)
		dropped++
	}
	for i := len(kept); i < len(e.sh.Pending); i++ {
		e.sh.Pending[i] = nil
	}
	e.sh.Pending = kept
	if e.arr.Closed() {
		for ; dropped > 0 && e.flt.anyTapeUp(); dropped-- {
			e.deliver(e.newRequest(e.now))
		}
	}
}

// markTapeDown masks a tape discovered permanently failed.
func (e *engine) markTapeDown(tape int) {
	if e.flt.down[tape] {
		return
	}
	e.flt.down[tape] = true
	e.flt.upTapes--
	e.flt.maskDirty = true
	e.push(Event{Kind: EventTapeFail, Time: e.now, Tape: tape, Pos: -1})
	if e.rep != nil {
		e.rep.pl.NoteTapeFail(tape, e.now)
	}
}

// requeueFaulted returns a request whose chosen copy was lost to the
// pending list, preserving (Arrival, ID) order so schedulers keep seeing an
// arrival-ordered list. If every copy is gone, the next dropUnserviceable
// scan abandons the request; it is never retried forever.
func (e *engine) requeueFaulted(r *sched.Request) {
	if r.Expired {
		// The request expired while its fault was in limbo between issue and
		// settle; it was counted at expiry time, and expireOne deferred the
		// recycling to us because the drive still referenced it until now.
		e.freeRequest(r)
		return
	}
	if r.FaultedAt == 0 {
		r.FaultedAt = e.now
	}
	r.Target = layout.Replica{}
	e.insertPending(r)
}

// abortSweep moves drive d's remaining sweep (and the failing request r,
// first) into its deferred requeue list: the scheduler state forgets the
// sweep immediately, but the pending list sees the requests only when the
// drive settles at the discovery time.
func (e *engine) abortSweep(d int, r *sched.Request) {
	dr := &e.drives[d]
	if r != nil {
		dr.abort = append(dr.abort, r)
	}
	if dr.st.Active != nil {
		for !dr.st.Active.Empty() {
			dr.abort = append(dr.abort, dr.st.Active.Pop())
		}
		e.sh.ReleaseSweep(dr.st.Active)
		dr.st.Active = nil
	}
}

// resolveFaultyRead issues one sweep request on drive d under the fault
// model, resolving the entire fault story now: transient errors retry with
// simulated-time backoff over the virtual clock vt and escalate the copy to
// dead on exhaustion; a tape past its failure time aborts the whole sweep;
// a due drive failure inserts its repair before the attempt. Only the
// completion time goes on the calendar -- requeues and tape masks apply at
// settle, the discovery time.
func (e *engine) resolveFaultyRead(d int, r *sched.Request) {
	f := e.flt
	dr := &e.drives[d]
	st := dr.st
	tape, pos := r.Target.Tape, r.Target.Pos
	vt := e.now
	for attempt := 0; ; {
		if vt >= f.inj.DriveFailAt(d) {
			rep := f.inj.DriveRepair(d, vt)
			f.driveFails++
			f.repairSec += rep
			vt += rep
			e.push(Event{Kind: EventDriveRepair, Time: vt, Tape: -1, Pos: -1, Seconds: rep})
			e.noteFaultErr(d, -1, vt)
		}
		if f.inj.TapeFailed(tape, vt) {
			// The medium died mid-schedule: the locate runs into the failure
			// and the rest of the sweep is rerouted to surviving replicas.
			loc, _, _ := e.sh.Costs.ServeOneParts(st.Head, pos)
			vt += loc
			f.faultSec += loc
			f.permanent++
			dr.failTape = tape
			e.abortSweep(d, r)
			e.beginOp(d, vt, true)
			return
		}
		loc, rd, newHead := e.sh.Costs.ServeOneParts(st.Head, pos)
		if f.inj.CopyDead(tape, pos) {
			// Possible when an earlier request in this sweep escalated the
			// same position; schedulers never target a copy already dead.
			vt += loc + rd
			f.faultSec += loc + rd
			st.Head = newHead
			f.permanent++
			e.push(Event{Kind: EventFault, Time: vt, Tape: tape, Pos: pos,
				Seconds: loc + rd, Request: r.ID})
			dr.faulted = r
			e.beginOp(d, vt, true)
			return
		}
		if f.inj.LatentActive(tape, pos, vt) {
			// A latent error developed here undetected and this user read
			// is the first to touch it: the read fails permanently, the
			// copy escalates to dead, and the request reroutes to a
			// surviving replica. Detection by table lookup -- no draw.
			vt += loc + rd
			f.faultSec += loc + rd
			st.Head = newHead
			f.permanent++
			e.push(Event{Kind: EventFault, Time: vt, Tape: tape, Pos: pos,
				Seconds: loc + rd, Request: r.ID})
			e.noteLatentFound(tape, pos, vt, false)
			dr.faulted = r
			e.beginOp(d, vt, true)
			return
		}
		if !f.inj.ReadAttemptFails() {
			vt += loc
			e.locateSec += loc
			vt += rd
			e.readSec += rd
			st.Head = newHead
			if vt > e.warmupEnd {
				e.readsPerTape[tape]++
			}
			e.push(Event{Kind: EventRead, Time: vt, Tape: tape, Pos: pos,
				Seconds: loc + rd, Request: r.ID})
			dr.inFlight = r
			e.beginOp(d, vt, true)
			return
		}
		// Transient media error: the attempt consumed the drive anyway.
		vt += loc + rd
		f.faultSec += loc + rd
		st.Head = newHead
		f.transient++
		e.push(Event{Kind: EventFault, Time: vt, Tape: tape, Pos: pos,
			Seconds: loc + rd, Request: r.ID})
		e.noteFaultErr(d, tape, vt)
		attempt++
		if attempt > f.inj.Retry().MaxRetries {
			f.inj.MarkDead(tape, pos)
			f.maskDirty = true
			f.permanent++
			if e.rep != nil {
				e.rep.pl.NoteCopyDead(tape, pos, e.now)
			}
			dr.faulted = r
			e.beginOp(d, vt, true)
			return
		}
		f.retries++
		bo := f.inj.Retry().Delay(attempt)
		vt += bo
		f.faultSec += bo
	}
}

// resolveFaultySwitch issues drive d's tape switch under the fault model.
// Load attempts may fail with the configured probability, each consuming
// the mechanical time, retried up to the policy bound; a tape past its
// failure time is discovered dead at load. When the load never succeeds,
// the drive ends the operation empty and the tape is masked at settle.
func (e *engine) resolveFaultySwitch(d int, tape int, sw float64) {
	f := e.flt
	dr := &e.drives[d]
	vt := e.now
	for attempt := 0; ; {
		if f.inj.TapeFailed(tape, vt) {
			// The robot fetches the cartridge and the load fails for good:
			// this is how an unmounted tape's death is discovered.
			vt += sw
			f.faultSec += sw
			break
		}
		if !f.inj.SwitchAttemptFails() {
			vt += sw
			e.switchSec += sw
			if vt > e.warmupEnd {
				e.switches++
			}
			e.push(Event{Kind: EventSwitch, Time: vt, Tape: tape, Pos: -1, Seconds: sw})
			e.beginOp(d, vt, true)
			return
		}
		f.switchFlt++
		vt += sw
		f.faultSec += sw
		e.push(Event{Kind: EventFault, Time: vt, Tape: tape, Pos: -1, Seconds: sw})
		e.noteFaultErr(d, tape, vt)
		attempt++
		if attempt > f.inj.Retry().MaxRetries {
			// The loader cannot mount the cartridge; treat it as damaged.
			break
		}
		f.retries++
	}
	dr.failTape, dr.loadFail = tape, true
	e.abortSweep(d, nil)
	e.beginOp(d, vt, false)
}

// faultResult folds the fault metrics into the result.
func (e *engine) faultResult(res *Result) {
	res.Availability = 1
	f := e.flt
	if f == nil {
		return
	}
	res.Retries = f.retries
	res.TransientFaults = f.transient
	res.PermanentFaults = f.permanent
	res.SwitchFaults = f.switchFlt
	for _, d := range f.down {
		if d {
			res.TapeFailures++
		}
	}
	res.DriveFailures = f.driveFails
	res.DriveRepairSeconds = f.repairSec
	res.FaultSeconds = f.faultSec
	res.Unserviceable = f.unserv
	res.Rerouted = f.rerouted
	res.MeanRecoverySec = f.recovery.Mean()
	if e.completed+f.unservPost > 0 {
		res.Availability = float64(e.completed) / float64(e.completed+f.unservPost)
	}
	res.LatentErrorsInjected = f.inj.InjectedLatentErrors()
	res.LatentErrorsFound = f.latentFound
	// Mean time to detect, over every latent error that developed within
	// the run: detection latency when found, censored at run end when not.
	// Censoring makes the metric comparable across detection regimes -- a
	// run that never finds an error does not get to pretend the error has
	// no latency.
	var sum float64
	n := 0
	for _, l := range f.inj.Latents() {
		if l.Onset >= e.now {
			continue
		}
		if det, ok := f.latentDet[packCopyKey(l.Tape, l.Pos)]; ok {
			sum += det - l.Onset
		} else {
			sum += e.now - l.Onset
		}
		n++
	}
	if n > 0 {
		res.MeanTimeToDetectSec = sum / float64(n)
	}
}
