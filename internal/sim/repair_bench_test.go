package sim

import "testing"

// BenchmarkFaultRepairIdle measures the repair-enabled faulty open run:
// the idle branch runs the planner's rotating scan and job steps between
// arrivals, tapes fail, and lost replicas are rebuilt. Tracked in
// BENCH_sched.json via scripts/bench.sh.
func BenchmarkFaultRepairIdle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := openRepairCfg(2)
		cfg.Horizon = 500_000
		cfg.Repair = RepairConfig{Enable: true}
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.RepairedCopies == 0 {
			b.Fatal("benchmark run repaired nothing")
		}
	}
}
