package sim

import (
	"testing"

	"tapejuke/internal/core"
	"tapejuke/internal/faults"
	"tapejuke/internal/sched"
)

func TestReviewMultiDriveRepairAudit(t *testing.T) {
	multiAudit = true
	defer func() { multiAudit = false }()
	for seed := int64(1); seed <= 20; seed++ {
		cfg := Config{
			BlockMB: 16, TapeCapMB: 7168, Tapes: 10, HotPercent: 100,
			ReadHotPercent: 100, DataBlocks: 1000, Replicas: 2,
			Drives:      2,
			QueueLength: 0, MeanInterarrival: 300,
			Scheduler:        core.NewEnvelope(core.MaxBandwidth),
			SchedulerFactory: func() sched.Scheduler { return core.NewEnvelope(core.MaxBandwidth) },
			Horizon:          2_000_000, Seed: seed,
			Faults: faults.Config{TapeMTBFSec: 600_000},
			Repair: RepairConfig{Enable: true},
		}
		if _, err := Run(cfg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
