package sim

import (
	"math"
	"reflect"
	"testing"

	"tapejuke/internal/core"
	"tapejuke/internal/faults"
	"tapejuke/internal/sched"
)

func multiCfg(drives int, factory func() sched.Scheduler) Config {
	cfg := quickCfg(factory())
	cfg.Drives = drives
	cfg.SchedulerFactory = factory
	return cfg
}

func TestMultiDriveBasics(t *testing.T) {
	factory := func() sched.Scheduler { return sched.NewDynamic(sched.MaxBandwidth) }
	res, err := Run(multiCfg(2, factory))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
	// Conservation still holds with a shared pending list.
	if out := res.TotalArrivals - res.TotalCompleted; out != 60 {
		t.Errorf("outstanding = %d, want 60", out)
	}
	if math.Abs(res.MeanQueueLen-60) > 0.5 {
		t.Errorf("MeanQueueLen = %v, want 60", res.MeanQueueLen)
	}
}

func TestMultiDriveBeatsOneDrive(t *testing.T) {
	factory := func() sched.Scheduler { return sched.NewDynamic(sched.MaxBandwidth) }
	one, err := Run(quickCfg(factory()))
	if err != nil {
		t.Fatal(err)
	}
	two, err := Run(multiCfg(2, factory))
	if err != nil {
		t.Fatal(err)
	}
	// Two drives should clearly outperform one on a closed workload; a
	// factor of at least 1.4 leaves room for shared-tape contention.
	if two.ThroughputKBps < one.ThroughputKBps*1.4 {
		t.Errorf("2 drives = %.1f KB/s, 1 drive = %.1f KB/s; expected ~2x",
			two.ThroughputKBps, one.ThroughputKBps)
	}
	// And never more than the drive count allows.
	if two.ThroughputKBps > one.ThroughputKBps*2.5 {
		t.Errorf("2 drives = %.1f KB/s implausibly exceeds 2x one drive (%.1f)",
			two.ThroughputKBps, one.ThroughputKBps)
	}
}

func TestMultiDriveDeterminism(t *testing.T) {
	factory := func() sched.Scheduler { return core.NewEnvelope(core.MaxBandwidth) }
	a, err := Run(multiCfg(2, factory))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(multiCfg(2, factory))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestMultiDriveAllSchedulers(t *testing.T) {
	factories := map[string]func() sched.Scheduler{
		"fifo":         func() sched.Scheduler { return sched.NewFIFO() },
		"static-rr":    func() sched.Scheduler { return sched.NewStatic(sched.RoundRobin) },
		"dynamic-mbw":  func() sched.Scheduler { return sched.NewDynamic(sched.MaxBandwidth) },
		"dynamic-omr":  func() sched.Scheduler { return sched.NewDynamic(sched.OldestMaxRequests) },
		"envelope-mbw": func() sched.Scheduler { return core.NewEnvelope(core.MaxBandwidth) },
		"envelope-old": func() sched.Scheduler { return core.NewEnvelope(core.OldestRequest) },
	}
	for name, f := range factories {
		for _, drives := range []int{2, 3} {
			for _, nr := range []int{0, 9} {
				cfg := multiCfg(drives, f)
				cfg.Horizon = 50_000
				cfg.Replicas = nr
				if nr > 0 {
					cfg.Kind = 1 // vertical
					cfg.StartPos = 1
				}
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s drives=%d nr=%d: %v", name, drives, nr, err)
				}
				if res.TotalCompleted == 0 {
					t.Errorf("%s drives=%d nr=%d: nothing completed", name, drives, nr)
				}
			}
		}
	}
}

func TestMultiDriveOpenModel(t *testing.T) {
	factory := func() sched.Scheduler { return sched.NewDynamic(sched.MaxBandwidth) }
	cfg := multiCfg(2, factory)
	cfg.QueueLength = 0
	cfg.MeanInterarrival = 500
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
	if res.IdleSeconds == 0 {
		t.Error("lightly loaded 2-drive open system should have fully idle periods")
	}
}

func TestMultiDriveObserver(t *testing.T) {
	factory := func() sched.Scheduler { return sched.NewDynamic(sched.MaxBandwidth) }
	cfg := multiCfg(2, factory)
	cfg.Horizon = 60_000
	counts := map[EventKind]int{}
	lastTime := -1.0
	cfg.Observer = ObserverFunc(func(ev Event) {
		counts[ev.Kind]++
		if ev.Time < lastTime {
			t.Errorf("event stream out of order: %v after %v", ev.Time, lastTime)
		}
		lastTime = ev.Time
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(counts[EventComplete]) != res.TotalCompleted {
		t.Errorf("observed %d completions, result says %d",
			counts[EventComplete], res.TotalCompleted)
	}
	if counts[EventRead] != counts[EventComplete] {
		t.Errorf("reads %d != completions %d", counts[EventRead], counts[EventComplete])
	}
	if counts[EventSwitch] < 2 {
		t.Errorf("only %d switches observed with 2 drives", counts[EventSwitch])
	}
}

func TestMultiDriveValidation(t *testing.T) {
	factory := func() sched.Scheduler { return sched.NewFIFO() }
	cfg := multiCfg(11, factory) // more drives than tapes
	if _, err := Run(cfg); err == nil {
		t.Error("11 drives on 10 tapes accepted")
	}
	cfg = multiCfg(2, factory)
	cfg.SchedulerFactory = nil
	if _, err := Run(cfg); err == nil {
		t.Error("multi-drive without factory accepted")
	}
}

// multiFaultCfg: the faultCfg jukebox driven by several drives.
func multiFaultCfg(drives, nr int, fc faults.Config) Config {
	cfg := faultCfg(nr, fc)
	cfg.Drives = drives
	cfg.SchedulerFactory = func() sched.Scheduler { return core.NewEnvelope(core.MaxBandwidth) }
	return cfg
}

// TestMultiDriveBusyHygiene turns on the whitebox busy-vector audit and
// runs fault-heavy multi-drive workloads: a tape must stay masked busy for
// exactly the duration of its in-flight switch, even when the load fails
// or the tape dies mid-operation.
func TestMultiDriveBusyHygiene(t *testing.T) {
	multiAudit = true
	defer func() { multiAudit = false }()
	configs := map[string]faults.Config{
		"fault-free":    {},
		"switch-faults": {SwitchFailProb: 0.3},
		"tape-failures": {TapeMTBFSec: 500_000},
		"everything": {
			ReadTransientProb: 0.05,
			SwitchFailProb:    0.15,
			TapeMTBFSec:       800_000,
			DriveMTBFSec:      200_000,
			BadBlocksPerTape:  1,
		},
	}
	for name, fc := range configs {
		for _, drives := range []int{2, 3} {
			cfg := multiFaultCfg(drives, 1, fc)
			cfg.Horizon = 400_000
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s drives=%d: %v", name, drives, err)
			}
			if res.TotalCompleted == 0 {
				t.Errorf("%s drives=%d: nothing completed", name, drives)
			}
		}
	}
}

// TestMultiDriveFaultDeterminism: the multi-drive engine stays bit-exact
// under every fault class.
func TestMultiDriveFaultDeterminism(t *testing.T) {
	fc := faults.Config{
		ReadTransientProb: 0.05,
		SwitchFailProb:    0.1,
		TapeMTBFSec:       1_500_000,
		DriveMTBFSec:      300_000,
		BadBlocksPerTape:  1,
	}
	run := func() *Result {
		r, err := Run(multiFaultCfg(2, 1, fc))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("multi-drive fault runs diverged:\n%+v\n%+v", a, b)
	}
	if a.TransientFaults == 0 || a.SwitchFaults == 0 {
		t.Errorf("expected fault activity: %+v", a)
	}
}

// TestMultiDriveNRSweep: replica-based recovery works with several drives
// too — requests stranded by a failed tape complete on surviving copies.
func TestMultiDriveNRSweep(t *testing.T) {
	fc := faults.Config{TapeMTBFSec: 2_000_000}
	none, err := Run(multiFaultCfg(2, 0, fc))
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(multiFaultCfg(2, 1, fc))
	if err != nil {
		t.Fatal(err)
	}
	if none.TapeFailures == 0 {
		t.Fatal("no tape failures; the experiment is vacuous")
	}
	if none.Unserviceable == 0 {
		t.Error("NR=0 with failed tapes abandoned nothing")
	}
	if one.Rerouted == 0 {
		t.Error("NR=1 never rerouted to a replica")
	}
	if one.Availability <= none.Availability {
		t.Errorf("replication did not improve availability: %.4f vs %.4f",
			one.Availability, none.Availability)
	}
	checkConservation(t, none, 40)
	checkConservation(t, one, 40)
}
