package sim

// EventKind labels one observed simulator event.
type EventKind int

const (
	// EventSwitch: the drive replaced the mounted tape.
	EventSwitch EventKind = iota
	// EventRead: one block retrieval (locate + transfer) finished.
	EventRead
	// EventComplete: a request left the system.
	EventComplete
	// EventIdle: the drive sat idle waiting for an arrival.
	EventIdle
	// EventWriteFlush: buffered delta writes were flushed to tape (the
	// write-model extension).
	EventWriteFlush
	// EventFault: a read or switch attempt failed (Seconds is the drive
	// time the failed attempt consumed). Every attempt is reported, at the
	// simulated time the attempt ends, regardless of drive count.
	EventFault
	// EventTapeFail: a tape was discovered permanently failed and masked
	// from all future scheduling.
	EventTapeFail
	// EventDriveRepair: a drive failed and completed its repair downtime
	// (Seconds; Time is the end of the repair).
	EventDriveRepair
	// EventUnserviceable: a request was abandoned because every copy of its
	// block is lost.
	EventUnserviceable
	// EventExpire: a request was cancelled at its deadline before its read
	// started (the overload extension).
	EventExpire
	// EventShed: a pending request was dropped by the shed-oldest admission
	// policy to make room for a newcomer.
	EventShed
	// EventReject: an arriving request was turned away by the reject
	// admission policy (it never entered the system's queue).
	EventReject
	// EventRepairRead: a background repair job read a surviving copy of
	// its block (Request is the repair job ID).
	EventRepairRead
	// EventRepairWrite: a background repair job wrote (minted) a new copy
	// at (Tape, Pos); the copy enters the replica tables when the write
	// settles (Request is the repair job ID).
	EventRepairWrite
	// EventReclaim: a cold excess copy at (Tape, Pos) was reclaimed
	// (metadata-only: the copy leaves the replica tables).
	EventReclaim
	// EventScrubRead: the background scrub scanner verified the live copy
	// at (Tape, Pos) during drive idle time (the health extension).
	EventScrubRead
	// EventEvacuate: the copy at (Tape, Pos) on a suspect tape was dropped
	// after its replacement committed elsewhere (metadata-only, like
	// EventReclaim).
	EventEvacuate
	// EventDriveFence: a drive crossed its error-score threshold and spent
	// Seconds of maintenance downtime fenced out of scheduling (Time is
	// the end of the maintenance).
	EventDriveFence
	// EventLatentFound: a latent error at (Tape, Pos) was detected -- by a
	// scrub pass, a repair read, or a failing user read -- and the copy
	// escalated to dead. Seconds is the detection latency since the error
	// developed.
	EventLatentFound
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventSwitch:
		return "switch"
	case EventRead:
		return "read"
	case EventComplete:
		return "complete"
	case EventIdle:
		return "idle"
	case EventWriteFlush:
		return "write-flush"
	case EventFault:
		return "fault"
	case EventTapeFail:
		return "tape-fail"
	case EventDriveRepair:
		return "drive-repair"
	case EventUnserviceable:
		return "unserviceable"
	case EventExpire:
		return "expire"
	case EventShed:
		return "shed"
	case EventReject:
		return "reject"
	case EventRepairRead:
		return "repair-read"
	case EventRepairWrite:
		return "repair-write"
	case EventReclaim:
		return "reclaim"
	case EventScrubRead:
		return "scrub-read"
	case EventEvacuate:
		return "evacuate"
	case EventDriveFence:
		return "drive-fence"
	case EventLatentFound:
		return "latent-found"
	}
	return "unknown"
}

// Event is one simulator occurrence, reported in simulated-time order.
type Event struct {
	Kind    EventKind
	Time    float64 // simulation time at the end of the event
	Tape    int     // tape involved (-1 when not applicable)
	Pos     int     // block position involved (-1 when not applicable)
	Seconds float64 // duration of the operation
	Request int64   // request ID (EventRead/EventComplete), 0 otherwise
}

// Observer receives simulator events. Observers must be fast; they run
// inline with the simulation. A nil observer costs nothing.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe calls f(e).
func (f ObserverFunc) Observe(e Event) { f(e) }
