package sim

import "testing"

// BenchmarkScrubIdle measures the health-enabled faulty open run: the idle
// branch interleaves the repair scan with the scrub patrol, latent errors
// develop and are caught by scrubbing, and suspect tapes are evacuated.
// Tracked in BENCH_sched.json via scripts/bench.sh.
func BenchmarkScrubIdle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := openHealthCfg(2)
		cfg.Health = HealthConfig{Enable: true, ScrubRate: 64,
			SuspectScore: 3, Evacuate: true}
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.ScrubbedMB == 0 {
			b.Fatal("benchmark run scrubbed nothing")
		}
	}
}
