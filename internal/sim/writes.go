package sim

import (
	"tapejuke/internal/sched"
	"tapejuke/internal/stats"
	"tapejuke/internal/workload"
)

// The paper's workload is read-only by assumption: "Writes would be
// directed to disk-resident delta files, occasionally written to tape
// during idle time or piggybacked on the read schedule" (Section 4). This
// file implements that write path as an extension so the claim can be
// exercised: delta writes buffer on disk at no cost to the requester and
// drain to per-tape delta logs either when a drive is already on the
// right tape (piggyback) or when the jukebox would otherwise idle. The
// buffers are jukebox-wide; with several drives, whichever drive frees up
// first picks up the flush, claiming the target tape through the shared
// busy vector like any other operation.

// WritePolicy selects when buffered delta writes drain to tape.
type WritePolicy int

const (
	// WritePiggyback appends a tape's buffered deltas to the read schedule
	// whenever a sweep on that tape finishes.
	WritePiggyback WritePolicy = iota
	// WriteIdleOnly flushes only while the drive has nothing to read
	// (open-queuing models; a closed jukebox never idles).
	WriteIdleOnly
	// WritePiggybackAndIdle does both.
	WritePiggybackAndIdle
)

// String names the policy.
func (p WritePolicy) String() string {
	switch p {
	case WritePiggyback:
		return "piggyback"
	case WriteIdleOnly:
		return "idle-only"
	case WritePiggybackAndIdle:
		return "piggyback+idle"
	}
	return "unknown"
}

// pendingWrite is one delta block waiting in the disk buffer.
type pendingWrite struct {
	arrival float64
	tape    int
}

// writeState tracks the write extension inside the engine.
type writeState struct {
	arr        *workload.PoissonArrivals
	next       float64
	buffer     [][]pendingWrite // per tape
	buffered   int
	maxBuffer  int
	logStart   int   // first block position of each tape's delta region
	logBlocks  int   // delta region length in blocks
	logCursor  []int // next append slot per tape (wraps; old deltas compact offline)
	flushed    int64
	flushSec   float64
	delay      stats.Accumulator
	flushCount int64 // flush operations (not blocks)
}

// initWrites sets up the write extension when configured.
func (e *engine) initWrites(dataCapBlocks int) error {
	cfg := e.cfg
	if cfg.WriteMeanInterarrival <= 0 {
		return nil
	}
	arr, err := workload.NewPoissonArrivals(cfg.WriteMeanInterarrival, cfg.Seed+2)
	if err != nil {
		return err
	}
	w := &writeState{
		arr:       arr,
		buffer:    make([][]pendingWrite, cfg.Tapes),
		logStart:  dataCapBlocks,
		logBlocks: int(cfg.WriteReserveMB / cfg.BlockMB),
		logCursor: make([]int, cfg.Tapes),
	}
	w.next = arr.Next()
	e.writes = w
	return nil
}

// pumpWrites buffers every delta write that has arrived by now. Each write
// targets the tape holding the (randomly drawn) base block it updates.
func (e *engine) pumpWrites() {
	w := e.writes
	if w == nil {
		return
	}
	for w.next <= e.now {
		blk := e.gen.Next()
		tape := e.sh.Layout.Replicas(blk)[0].Tape
		w.buffer[tape] = append(w.buffer[tape], pendingWrite{arrival: w.next, tape: tape})
		w.buffered++
		if w.buffered > w.maxBuffer {
			w.maxBuffer = w.buffered
		}
		w.next = w.arr.Next()
	}
}

// resolveFlush drains the mounted tape's buffered deltas into its delta
// log over the virtual clock vt: locate to the append cursor, then stream
// the blocks out. Write transfer time is modelled with the read-transfer
// segments (helical-scan drives read and write at the same streaming
// rate). Returns the advanced virtual clock.
func (e *engine) resolveFlush(st *sched.State, vt float64) float64 {
	w := e.writes
	tape := st.Mounted
	if w == nil || tape < 0 || len(w.buffer[tape]) == 0 {
		return vt
	}
	batch := w.buffer[tape]
	w.buffer[tape] = nil
	w.buffered -= len(batch)

	for _, pw := range batch {
		pos := w.logStart + w.logCursor[tape]
		w.logCursor[tape] = (w.logCursor[tape] + 1) % w.logBlocks
		loc, wr, newHead := e.sh.Costs.ServeOneParts(st.Head, pos)
		vt += loc + wr
		w.flushSec += loc + wr
		st.Head = newHead
		w.flushed++
		if vt > e.warmupEnd {
			w.delay.Add(vt - pw.arrival)
		}
	}
	w.flushCount++
	e.push(Event{Kind: EventWriteFlush, Time: vt, Tape: tape, Pos: st.Head,
		Seconds: 0, Request: int64(len(batch))})
	return vt
}

// fullestAvailable returns the tape with the largest write buffer among
// those drive state st may claim, or -1 when every buffered tape is held
// by another drive.
func (e *engine) fullestAvailable(st *sched.State) int {
	w := e.writes
	best, n := -1, 0
	for t, buf := range w.buffer {
		if len(buf) > n && st.Available(t) {
			best, n = t, len(buf)
		}
	}
	return best
}

// switchForFlush moves the drive to a flush target over the virtual clock.
// Flush switches charge switch time and count but emit no EventSwitch:
// they are housekeeping, not scheduled retrievals.
func (e *engine) switchForFlush(st *sched.State, tape int, vt float64) float64 {
	sw := e.sh.Costs.SwitchCost(st.Mounted, st.Head, tape)
	vt += sw
	e.switchSec += sw
	if vt > e.warmupEnd {
		e.switches++
	}
	if e.sh.Busy != nil {
		if st.Mounted >= 0 {
			e.sh.Busy[st.Mounted] = false
		}
		e.sh.Busy[tape] = true
	}
	st.Mounted, st.Head = tape, 0
	return vt
}

// piggybackOp runs the after-sweep write work on drive d: drain the
// mounted tape's buffer when the policy piggybacks, and force-drain the
// fullest available tape when the total buffer exceeds the threshold.
// Returns whether an operation was issued.
func (e *engine) piggybackOp(d int) bool {
	w := e.writes
	if w == nil {
		return false
	}
	st := e.drives[d].st
	vt := e.now
	did := false
	if e.cfg.WritePolicy == WritePiggyback || e.cfg.WritePolicy == WritePiggybackAndIdle {
		if st.Mounted >= 0 && len(w.buffer[st.Mounted]) > 0 {
			if e.deferWrites() {
				// Graceful degradation: keep the drive on read work while
				// overloaded; the force-drain threshold below still applies.
				e.ovl.deferred++
			} else {
				vt = e.resolveFlush(st, vt)
				did = true
			}
		}
	}
	if e.cfg.WriteFlushThreshold > 0 && w.buffered >= e.cfg.WriteFlushThreshold {
		// Overflow protection: take the switch hit for the fullest tape.
		if best := e.fullestAvailable(st); best >= 0 {
			if best != st.Mounted {
				vt = e.switchForFlush(st, best, vt)
			}
			vt = e.resolveFlush(st, vt)
			did = true
		}
	}
	if did {
		e.beginOp(d, vt, false)
	}
	return did
}

// idleFlushOp services the largest available write buffer on drive d while
// it has nothing to read (open-model idle periods). Returns whether an
// operation was issued.
func (e *engine) idleFlushOp(d int) bool {
	w := e.writes
	if w == nil || w.buffered == 0 {
		return false
	}
	if e.cfg.WritePolicy != WriteIdleOnly && e.cfg.WritePolicy != WritePiggybackAndIdle {
		return false
	}
	if e.deferWrites() {
		e.ovl.deferred++
		return false
	}
	st := e.drives[d].st
	best := e.fullestAvailable(st)
	if best < 0 {
		return false
	}
	vt := e.now
	if best != st.Mounted {
		vt = e.switchForFlush(st, best, vt)
	}
	vt = e.resolveFlush(st, vt)
	e.beginOp(d, vt, false)
	return true
}
