package sim

import (
	"tapejuke/internal/stats"
	"tapejuke/internal/workload"
)

// The paper's workload is read-only by assumption: "Writes would be
// directed to disk-resident delta files, occasionally written to tape
// during idle time or piggybacked on the read schedule" (Section 4). This
// file implements that write path as an extension so the claim can be
// exercised: delta writes buffer on disk at no cost to the requester and
// drain to per-tape delta logs either when the drive is already on the
// right tape (piggyback) or when the jukebox would otherwise idle.

// WritePolicy selects when buffered delta writes drain to tape.
type WritePolicy int

const (
	// WritePiggyback appends a tape's buffered deltas to the read schedule
	// whenever a sweep on that tape finishes.
	WritePiggyback WritePolicy = iota
	// WriteIdleOnly flushes only while the jukebox is idle (open-queuing
	// models; a closed jukebox never idles).
	WriteIdleOnly
	// WritePiggybackAndIdle does both.
	WritePiggybackAndIdle
)

// String names the policy.
func (p WritePolicy) String() string {
	switch p {
	case WritePiggyback:
		return "piggyback"
	case WriteIdleOnly:
		return "idle-only"
	case WritePiggybackAndIdle:
		return "piggyback+idle"
	}
	return "unknown"
}

// pendingWrite is one delta block waiting in the disk buffer.
type pendingWrite struct {
	arrival float64
	tape    int
}

// writeState tracks the write extension inside the engine.
type writeState struct {
	arr        *workload.PoissonArrivals
	next       float64
	buffer     [][]pendingWrite // per tape
	buffered   int
	maxBuffer  int
	logStart   int   // first block position of each tape's delta region
	logBlocks  int   // delta region length in blocks
	logCursor  []int // next append slot per tape (wraps; old deltas compact offline)
	flushed    int64
	flushSec   float64
	delay      stats.Accumulator
	flushCount int64 // flush operations (not blocks)
}

// initWrites sets up the write extension when configured.
func (e *engine) initWrites(dataCapBlocks int) error {
	cfg := e.cfg
	if cfg.WriteMeanInterarrival <= 0 {
		return nil
	}
	arr, err := workload.NewPoissonArrivals(cfg.WriteMeanInterarrival, cfg.Seed+2)
	if err != nil {
		return err
	}
	w := &writeState{
		arr:       arr,
		buffer:    make([][]pendingWrite, cfg.Tapes),
		logStart:  dataCapBlocks,
		logBlocks: int(cfg.WriteReserveMB / cfg.BlockMB),
		logCursor: make([]int, cfg.Tapes),
	}
	w.next = arr.Next()
	e.writes = w
	return nil
}

// pumpWrites buffers every delta write that has arrived by now. Each write
// targets the tape holding the (randomly drawn) base block it updates.
func (e *engine) pumpWrites() {
	w := e.writes
	if w == nil {
		return
	}
	for w.next <= e.now {
		blk := e.gen.Next()
		tape := e.st.Layout.Replicas(blk)[0].Tape
		w.buffer[tape] = append(w.buffer[tape], pendingWrite{arrival: w.next, tape: tape})
		w.buffered++
		if w.buffered > w.maxBuffer {
			w.maxBuffer = w.buffered
		}
		w.next = w.arr.Next()
	}
}

// flushTape drains the mounted tape's buffered deltas into its delta log:
// locate to the append cursor, then stream the blocks out. Write transfer
// time is modelled with the read-transfer segments (helical-scan drives
// read and write at the same streaming rate).
func (e *engine) flushTape(tape int) {
	w := e.writes
	if w == nil || tape != e.st.Mounted || len(w.buffer[tape]) == 0 {
		return
	}
	batch := w.buffer[tape]
	w.buffer[tape] = nil
	w.buffered -= len(batch)

	for _, pw := range batch {
		pos := w.logStart + w.logCursor[tape]
		w.logCursor[tape] = (w.logCursor[tape] + 1) % w.logBlocks
		loc, wr, newHead := e.st.Costs.ServeOneParts(e.st.Head, pos)
		e.advance(loc+wr, &w.flushSec)
		e.st.Head = newHead
		w.flushed++
		if e.now > e.warmupEnd {
			w.delay.Add(e.now - pw.arrival)
		}
	}
	w.flushCount++
	e.emit(Event{Kind: EventWriteFlush, Time: e.now, Tape: tape, Pos: e.st.Head,
		Seconds: 0, Request: int64(len(batch))})
}

// idleFlush services the largest write buffer while the jukebox has nothing
// to read (open model idle periods). It returns true if it did work.
func (e *engine) idleFlush() bool {
	w := e.writes
	if w == nil || w.buffered == 0 {
		return false
	}
	if e.cfg.WritePolicy != WriteIdleOnly && e.cfg.WritePolicy != WritePiggybackAndIdle {
		return false
	}
	best, n := -1, 0
	for t, buf := range w.buffer {
		if len(buf) > n {
			best, n = t, len(buf)
		}
	}
	if best < 0 {
		return false
	}
	if best != e.st.Mounted {
		sw := e.st.Costs.SwitchCost(e.st.Mounted, e.st.Head, best)
		e.advance(sw, &e.switchSec)
		e.st.Mounted, e.st.Head = best, 0
		if e.now > e.warmupEnd {
			e.switches++
		}
	}
	e.flushTape(best)
	return true
}

// piggybackFlush drains the mounted tape's buffer after a sweep when the
// policy allows, and force-drains any tape whose buffer exceeds the
// threshold.
func (e *engine) piggybackFlush() {
	w := e.writes
	if w == nil {
		return
	}
	if e.cfg.WritePolicy == WritePiggyback || e.cfg.WritePolicy == WritePiggybackAndIdle {
		e.flushTape(e.st.Mounted)
	}
	if e.cfg.WriteFlushThreshold > 0 && w.buffered >= e.cfg.WriteFlushThreshold {
		// Overflow protection: take the switch hit for the fullest tape.
		best, n := -1, 0
		for t, buf := range w.buffer {
			if len(buf) > n {
				best, n = t, len(buf)
			}
		}
		if best >= 0 && best != e.st.Mounted {
			sw := e.st.Costs.SwitchCost(e.st.Mounted, e.st.Head, best)
			e.advance(sw, &e.switchSec)
			e.st.Mounted, e.st.Head = best, 0
			if e.now > e.warmupEnd {
				e.switches++
			}
		}
		e.flushTape(best)
	}
}
