package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tapejuke/internal/core"
	"tapejuke/internal/sched"
	"tapejuke/internal/stats"
)

// randomConfig draws a plausible configuration from the full supported
// space: any scheduler, either queuing model, replication, placement,
// partial fill, clustering.
func randomConfig(rng *rand.Rand) Config {
	scheds := []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewFIFO() },
		func() sched.Scheduler { return sched.NewStatic(sched.Policy(rng.Intn(5))) },
		func() sched.Scheduler { return sched.NewDynamic(sched.Policy(rng.Intn(5))) },
		func() sched.Scheduler { return core.NewEnvelope(core.Variant(rng.Intn(3))) },
	}
	cfg := Config{
		BlockMB:        16,
		TapeCapMB:      7168,
		Tapes:          2 + rng.Intn(9),
		HotPercent:     float64(rng.Intn(11)),
		ReadHotPercent: float64(rng.Intn(81)),
		StartPos:       rng.Float64(),
		Scheduler:      scheds[rng.Intn(len(scheds))](),
		Horizon:        30_000,
		Seed:           rng.Int63(),
	}
	cfg.Replicas = rng.Intn(cfg.Tapes)
	if rng.Intn(2) == 0 && cfg.HotPercent > 0 {
		cfg.Kind = 1 // vertical
	}
	if rng.Intn(2) == 0 {
		cfg.QueueLength = 1 + rng.Intn(140)
	} else {
		cfg.MeanInterarrival = 20 + rng.Float64()*400
	}
	if rng.Intn(3) == 0 {
		cfg.SequentialProb = rng.Float64() * 0.9
	}
	if rng.Intn(4) == 0 {
		cfg.DataBlocks = 100 + rng.Intn(cfg.Tapes*400)
		cfg.PackAfterData = rng.Intn(2) == 0
	}
	return cfg
}

// Property: every runnable random configuration satisfies the global
// invariants -- request conservation, non-negative buckets, queue-length
// consistency, and per-tape read accounting.
func TestEngineInvariantsAcrossGrid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		res, err := Run(cfg)
		if err != nil {
			// Some random corners are legal rejections (e.g. vertical hot
			// set exceeding one tape, partial fill too small for replicas).
			return true
		}
		outstanding := res.TotalArrivals - res.TotalCompleted
		if outstanding < 0 {
			t.Logf("negative outstanding: %+v", res)
			return false
		}
		if cfg.QueueLength > 0 && outstanding != int64(cfg.QueueLength) {
			t.Logf("closed model outstanding %d != %d", outstanding, cfg.QueueLength)
			return false
		}
		if res.LocateSeconds < 0 || res.ReadSeconds < 0 || res.SwitchSeconds < 0 || res.IdleSeconds < 0 {
			t.Logf("negative bucket: %+v", res)
			return false
		}
		var tapeReads int64
		for _, n := range res.ReadsPerTape {
			if n < 0 {
				return false
			}
			tapeReads += n
		}
		if tapeReads != res.Completed {
			t.Logf("per-tape reads %d != completed %d", tapeReads, res.Completed)
			return false
		}
		if res.Completed > 0 && (res.MeanResponseSec <= 0 ||
			res.MeanResponseSec > res.MaxResponseSec+1e-9) {
			t.Logf("response stats inconsistent: %+v", res)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property (the paper's Question 6 as a statistical statement): under full
// replication the envelope scheduler's throughput dominates dynamic
// max-bandwidth across seeds -- never materially worse, better on average.
func TestEnvelopeDominatesDynamicUnderReplication(t *testing.T) {
	var envAcc, dynAcc stats.Accumulator
	for seed := int64(1); seed <= 5; seed++ {
		run := func(s sched.Scheduler) float64 {
			cfg := quickCfg(s)
			cfg.Replicas = 9
			cfg.Kind = 1 // vertical
			cfg.StartPos = 1
			cfg.Seed = seed
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res.ThroughputKBps
		}
		env := run(core.NewEnvelope(core.MaxBandwidth))
		dyn := run(sched.NewDynamic(sched.MaxBandwidth))
		envAcc.Add(env)
		dynAcc.Add(dyn)
		if env < dyn*0.97 {
			t.Errorf("seed %d: envelope %.1f materially below dynamic %.1f", seed, env, dyn)
		}
	}
	if envAcc.Mean() <= dynAcc.Mean() {
		t.Errorf("mean envelope %.1f should beat mean dynamic %.1f",
			envAcc.Mean(), dynAcc.Mean())
	}
	if math.IsNaN(envAcc.Mean()) {
		t.Fatal("no data")
	}
}
