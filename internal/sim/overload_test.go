package sim

import (
	"errors"
	"reflect"
	"testing"

	"tapejuke/internal/core"
	"tapejuke/internal/sched"
)

// overloadOutstanding recovers the end-of-run outstanding count from the
// conservation identity: every minted arrival either completed, expired,
// was shed, was abandoned as unserviceable, or is still in the system.
// (Rejected arrivals are never minted and appear in no other counter.)
func overloadOutstanding(res *Result) int64 {
	return res.TotalArrivals - res.TotalCompleted - res.Expired - res.Shed - res.Unserviceable
}

func checkOverloadConservation(t *testing.T, res *Result, maxOutstanding int64) {
	t.Helper()
	out := overloadOutstanding(res)
	if out < 0 || out > maxOutstanding {
		t.Errorf("conservation broken: %d arrivals = %d completed + %d expired + %d shed + %d unserviceable + outstanding %d (bound %d)",
			res.TotalArrivals, res.TotalCompleted, res.Expired, res.Shed, res.Unserviceable, out, maxOutstanding)
	}
	if res.DeadlineMissRate < 0 || res.DeadlineMissRate > 1 {
		t.Errorf("deadline miss rate %v out of [0,1]", res.DeadlineMissRate)
	}
}

// openOverloadCfg is an open-model workload offered faster than the drive
// can serve it, so the queue grows without relief measures.
func openOverloadCfg(s sched.Scheduler) Config {
	cfg := quickCfg(s)
	cfg.QueueLength = 0
	cfg.MeanInterarrival = 150
	return cfg
}

func collectEvents(t *testing.T, cfg Config) ([]Event, *Result) {
	t.Helper()
	var evs []Event
	cfg.Observer = ObserverFunc(func(ev Event) { evs = append(evs, ev) })
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return evs, res
}

// TestOverloadInertEventStream pins the inertness guarantee: an overload
// configuration whose layers are armed but can never fire (astronomical
// TTLs and bounds) produces the exact event stream and metrics of the
// overload-free engine, for both a dynamic and the envelope scheduler.
func TestOverloadInertEventStream(t *testing.T) {
	mk := map[string]func() sched.Scheduler{
		"dynamic":  func() sched.Scheduler { return sched.NewDynamic(sched.MaxBandwidth) },
		"envelope": func() sched.Scheduler { return core.NewEnvelope(core.MaxBandwidth) },
	}
	for name, f := range mk {
		t.Run(name, func(t *testing.T) {
			baseEvs, baseRes := collectEvents(t, quickCfg(f()))

			inert := quickCfg(f())
			inert.Deadlines = DeadlineConfig{HotTTL: 1e12, ColdTTL: 1e12, Fixed: true}
			inert.Admission = AdmissionConfig{MaxQueue: 1 << 30, Policy: AdmitReject}
			inert.Degrade = DegradeConfig{QueueThreshold: 1 << 30, MaxSweep: 1}
			evs, res := collectEvents(t, inert)

			if len(evs) != len(baseEvs) {
				t.Fatalf("event count diverged: %d with inert overload, %d without", len(evs), len(baseEvs))
			}
			for i := range evs {
				if evs[i] != baseEvs[i] {
					t.Fatalf("event %d diverged: %+v vs %+v", i, evs[i], baseEvs[i])
				}
			}
			if res.Completed != baseRes.Completed || res.ThroughputKBps != baseRes.ThroughputKBps ||
				res.MeanResponseSec != baseRes.MeanResponseSec || res.P99ResponseSec != baseRes.P99ResponseSec {
				t.Errorf("metrics diverged under inert overload:\n%+v\n%+v", res, baseRes)
			}
			if res.Expired != 0 || res.Shed != 0 || res.Rejected != 0 || res.TruncatedSweeps != 0 {
				t.Errorf("inert overload config fired: %+v", res)
			}
		})
	}
}

// TestDeadlineExpiryOpen: tight TTLs on an overloaded open system expire
// requests, every expiry is reported as an event, and the books balance.
func TestDeadlineExpiryOpen(t *testing.T) {
	cfg := openOverloadCfg(sched.NewDynamic(sched.MaxBandwidth))
	cfg.Deadlines = DeadlineConfig{HotTTL: 600, ColdTTL: 2_500}
	var expires, sheds int64
	cfg.Observer = ObserverFunc(func(ev Event) {
		switch ev.Kind {
		case EventExpire:
			expires++
		case EventShed:
			sheds++
		}
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Expired == 0 {
		t.Fatal("no expiries under tight TTLs on an overloaded system")
	}
	if expires != res.Expired {
		t.Errorf("%d expire events, result reports %d", expires, res.Expired)
	}
	if sheds != 0 || res.Shed != 0 {
		t.Errorf("shedding without admission control: %d events, %d reported", sheds, res.Shed)
	}
	if res.DeadlineMissRate == 0 {
		t.Error("expiries but zero miss rate")
	}
	if res.MaxQueueAgeSec <= 0 {
		t.Error("expiries but zero max queue age")
	}
	checkOverloadConservation(t, res, res.TotalArrivals)
}

// TestDeadlineExpiryClosedRespawn: in the closed model an expiry respawns
// the process's next request, so the population is exactly preserved.
func TestDeadlineExpiryClosedRespawn(t *testing.T) {
	cfg := quickCfg(core.NewEnvelope(core.MaxBandwidth))
	cfg.Deadlines = DeadlineConfig{HotTTL: 900, ColdTTL: 900}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Expired == 0 {
		t.Fatal("no expiries under tight TTLs")
	}
	if out := overloadOutstanding(res); out != int64(cfg.QueueLength) {
		t.Errorf("closed population drifted: outstanding %d, want %d", out, cfg.QueueLength)
	}
	if res.Completed == 0 {
		t.Error("expiry starved the run of completions")
	}
}

// TestAdmissionReject: a bounded queue under sustained overload turns
// arrivals away and the outstanding count respects the bound.
func TestAdmissionReject(t *testing.T) {
	cfg := openOverloadCfg(sched.NewDynamic(sched.MaxBandwidth))
	cfg.Admission = AdmissionConfig{MaxQueue: 30, Policy: AdmitReject}
	var rejects int64
	cfg.Observer = ObserverFunc(func(ev Event) {
		if ev.Kind == EventReject {
			rejects++
			if ev.Request != 0 {
				t.Errorf("reject event carries request ID %d; rejected arrivals are never minted", ev.Request)
			}
		}
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("overloaded bounded queue rejected nothing")
	}
	if rejects != res.Rejected {
		t.Errorf("%d reject events, result reports %d", rejects, res.Rejected)
	}
	if res.Shed != 0 {
		t.Errorf("reject policy shed %d requests", res.Shed)
	}
	checkOverloadConservation(t, res, 30)
}

// TestAdmissionShed: the shed policy admits the newcomer by dropping the
// oldest pending request instead.
func TestAdmissionShed(t *testing.T) {
	cfg := openOverloadCfg(sched.NewDynamic(sched.MaxBandwidth))
	cfg.Admission = AdmissionConfig{MaxQueue: 30, Policy: AdmitShed}
	var sheds int64
	cfg.Observer = ObserverFunc(func(ev Event) {
		if ev.Kind == EventShed {
			sheds++
			if ev.Request == 0 {
				t.Error("shed event without a victim request ID")
			}
		}
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatal("overloaded shed-policy queue shed nothing")
	}
	if sheds != res.Shed {
		t.Errorf("%d shed events, result reports %d", sheds, res.Shed)
	}
	checkOverloadConservation(t, res, 30)
}

// TestDegradeTruncatesSweeps: past the overload threshold, freshly built
// sweeps are cut to MaxSweep requests; nothing is lost.
func TestDegradeTruncatesSweeps(t *testing.T) {
	cfg := quickCfg(sched.NewDynamic(sched.MaxBandwidth))
	cfg.Degrade = DegradeConfig{QueueThreshold: 20, MaxSweep: 3}
	var maxSweepSeen int64
	var reads int64
	cfg.Observer = ObserverFunc(func(ev Event) {
		switch ev.Kind {
		case EventRead:
			reads++
		case EventSwitch:
			if reads > maxSweepSeen {
				maxSweepSeen = reads
			}
			reads = 0
		}
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TruncatedSweeps == 0 {
		t.Fatal("permanently overloaded closed run truncated no sweeps")
	}
	if out := overloadOutstanding(res); out != int64(cfg.QueueLength) {
		t.Errorf("truncation leaked requests: outstanding %d, want %d", out, cfg.QueueLength)
	}
	// Sweeps may grow past MaxSweep via incremental insertions mid-sweep,
	// but the reschedule-time cut must show: no sweep is wildly larger.
	if maxSweepSeen > 3+int64(cfg.QueueLength) {
		t.Errorf("observed a %d-read sweep despite truncation to 3", maxSweepSeen)
	}
	if res.Completed == 0 {
		t.Error("no completions")
	}
}

// TestDegradeDeferWrites: while overloaded, policy-driven flushes are
// skipped and counted; the force-drain threshold still empties buffers.
func TestDegradeDeferWrites(t *testing.T) {
	cfg := quickCfg(sched.NewDynamic(sched.MaxBandwidth))
	cfg.WriteMeanInterarrival = 400
	cfg.WritePolicy = WritePiggyback
	cfg.WriteFlushThreshold = 40
	cfg.Degrade = DegradeConfig{QueueThreshold: 10, DeferWrites: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeferredFlushes == 0 {
		t.Fatal("permanently overloaded run deferred no flushes")
	}
	if res.WritesFlushed == 0 {
		t.Error("deferral starved the force-drain threshold too; no writes ever flushed")
	}

	// Same run without deferral flushes earlier and more often.
	base := cfg
	base.Observer = nil
	base.Degrade = DegradeConfig{}
	bres, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if bres.DeferredFlushes != 0 {
		t.Errorf("deferral disabled but %d flushes deferred", bres.DeferredFlushes)
	}
}

// TestFlashCrowdAcceptance is the PR's acceptance experiment: a flash
// crowd hits an open system protected by deadlines, a bounded shed queue,
// and sweep truncation. The run completes, reports tail latencies and the
// overload counters, and the same seed reproduces every count exactly.
func TestFlashCrowdAcceptance(t *testing.T) {
	mkCfg := func() Config {
		cfg := quickCfg(core.NewEnvelope(core.MaxBandwidth))
		cfg.QueueLength = 0
		cfg.MeanInterarrival = 300
		cfg.Deadlines = DeadlineConfig{HotTTL: 3_000, ColdTTL: 12_000}
		cfg.Admission = AdmissionConfig{MaxQueue: 120, Policy: AdmitShed}
		cfg.Degrade = DegradeConfig{QueueThreshold: 25, MaxSweep: 6}
		cfg.Burst = BurstConfig{Factor: 12, FlashAt: 60_000, FlashLen: 15_000}
		cfg.AgeWeight = 1
		return cfg
	}
	run := func() *Result {
		res, err := Run(mkCfg())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Completed == 0 {
		t.Fatal("flash-crowd run completed nothing")
	}
	if !(res.P50ResponseSec > 0 && res.P50ResponseSec <= res.P95ResponseSec &&
		res.P95ResponseSec <= res.P99ResponseSec && res.P99ResponseSec <= res.MaxResponseSec) {
		t.Errorf("percentiles out of order: p50 %.1f, p95 %.1f, p99 %.1f, max %.1f",
			res.P50ResponseSec, res.P95ResponseSec, res.P99ResponseSec, res.MaxResponseSec)
	}
	if res.Expired == 0 {
		t.Error("flash crowd expired nothing despite tight TTLs")
	}
	if res.Shed == 0 && res.Rejected == 0 {
		t.Error("flash crowd never hit the admission bound")
	}
	if res.TruncatedSweeps == 0 {
		t.Error("flash crowd never triggered sweep truncation")
	}
	if res.DeadlineMissRate <= 0 || res.DeadlineMissRate > 1 {
		t.Errorf("deadline miss rate %v out of (0,1]", res.DeadlineMissRate)
	}
	checkOverloadConservation(t, res, 120)
	t.Logf("flash crowd: p99 %.0f s, miss rate %.3f, %d expired, %d shed, %d truncated",
		res.P99ResponseSec, res.DeadlineMissRate, res.Expired, res.Shed, res.TruncatedSweeps)

	if again := run(); !reflect.DeepEqual(res, again) {
		t.Errorf("same seed diverged:\n%+v\n%+v", res, again)
	}
}

// TestClosedFlashCrowd: FlashCount ephemeral extras join the closed
// population at FlashAt and drain away without respawning.
func TestClosedFlashCrowd(t *testing.T) {
	cfg := quickCfg(sched.NewDynamic(sched.MaxBandwidth))
	cfg.Burst = BurstConfig{Factor: 1, FlashAt: 50_000, FlashCount: 80}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(quickCfg(sched.NewDynamic(sched.MaxBandwidth)))
	if err != nil {
		t.Fatal(err)
	}
	out := overloadOutstanding(res)
	if out < int64(cfg.QueueLength) || out > int64(cfg.QueueLength+80) {
		t.Errorf("outstanding %d outside [%d, %d]", out, cfg.QueueLength, cfg.QueueLength+80)
	}
	if res.TotalArrivals <= base.TotalArrivals {
		t.Errorf("flash crowd added no arrivals: %d vs baseline %d", res.TotalArrivals, base.TotalArrivals)
	}
	if res.TotalCompleted <= base.TotalCompleted-160 {
		t.Errorf("flash crowd collapsed throughput: %d vs baseline %d", res.TotalCompleted, base.TotalCompleted)
	}
}

// TestAgingReducesTail: with deadlines assigned, turning on starvation-
// aware aging must not break conservation and keeps the run deterministic.
// (Whether it helps the tail is workload-dependent; the golden tests pin
// the zero-weight identity.)
func TestAgingRuns(t *testing.T) {
	for _, mk := range []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewDynamic(sched.MaxBandwidth) },
		func() sched.Scheduler { return sched.NewDynamic(sched.RoundRobin) },
		func() sched.Scheduler { return sched.NewStatic(sched.OldestMaxRequests) },
		func() sched.Scheduler { return core.NewEnvelope(core.OldestRequest) },
	} {
		cfg := quickCfg(mk())
		cfg.Deadlines = DeadlineConfig{HotTTL: 2_000, ColdTTL: 8_000}
		cfg.AgeWeight = 2
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed == 0 {
			t.Fatalf("%s: aging starved the run", res.SchedulerName)
		}
		if out := overloadOutstanding(res); out != int64(cfg.QueueLength) {
			t.Errorf("%s: outstanding %d, want %d", res.SchedulerName, out, cfg.QueueLength)
		}
	}
}

// TestOverloadConfigValidation covers the typed validation errors of the
// overload surface.
func TestOverloadConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"negative hot TTL", func(c *Config) { c.Deadlines.HotTTL = -1 }, "Deadlines.HotTTL"},
		{"negative cold TTL", func(c *Config) { c.Deadlines.ColdTTL = -60 }, "Deadlines.ColdTTL"},
		{"policy without bound", func(c *Config) { c.Admission.Policy = AdmitReject }, "Admission.MaxQueue"},
		{"negative bound", func(c *Config) { c.Admission.MaxQueue = -1 }, "Admission.MaxQueue"},
		{"bound without policy", func(c *Config) { c.Admission.MaxQueue = 10 }, "Admission.Policy"},
		{"unknown policy", func(c *Config) { c.Admission = AdmissionConfig{MaxQueue: 1, Policy: AdmitPolicy(9)} }, "Admission.Policy"},
		{"negative factor", func(c *Config) { c.Burst.Factor = -2 }, "Burst.Factor"},
		{"onFrac out of range", func(c *Config) { c.Burst.OnFrac = 1.5 }, "Burst.OnFrac"},
		{"negative flash", func(c *Config) { c.Burst.FlashLen = -1 }, "Burst"},
		{"burst without factor", func(c *Config) {
			c.QueueLength, c.MeanInterarrival = 0, 100
			c.Burst = BurstConfig{Period: 1000, OnFrac: 0.5}
		}, "Burst.Factor"},
		{"modulation without onFrac", func(c *Config) {
			c.QueueLength, c.MeanInterarrival = 0, 100
			c.Burst = BurstConfig{Factor: 2, Period: 1000}
		}, "Burst.OnFrac"},
		{"modulation in closed model", func(c *Config) {
			c.Burst = BurstConfig{Factor: 2, Period: 1000, OnFrac: 0.5}
		}, "Burst"},
		{"flash count in open model", func(c *Config) {
			c.QueueLength, c.MeanInterarrival = 0, 100
			c.Burst = BurstConfig{Factor: 2, FlashCount: 5}
		}, "Burst.FlashCount"},
		{"negative queue threshold", func(c *Config) { c.Degrade.QueueThreshold = -1 }, "Degrade.QueueThreshold"},
		{"negative max sweep", func(c *Config) { c.Degrade.MaxSweep = -5 }, "Degrade.MaxSweep"},
		{"degrade action without threshold", func(c *Config) { c.Degrade.MaxSweep = 5 }, "Degrade.QueueThreshold"},
		{"threshold without action", func(c *Config) { c.Degrade.QueueThreshold = 5 }, "Degrade"},
		{"defer writes without writes", func(c *Config) {
			c.Degrade = DegradeConfig{QueueThreshold: 5, DeferWrites: true}
		}, "Degrade.DeferWrites"},
		{"negative age weight", func(c *Config) { c.AgeWeight = -0.5 }, "AgeWeight"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := quickCfg(sched.NewDynamic(sched.MaxBandwidth))
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("bad config accepted")
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v is not a *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Errorf("error names field %q, want %q (%v)", ce.Field, tc.field, err)
			}
		})
	}

	// A fully armed valid configuration passes.
	cfg := quickCfg(sched.NewDynamic(sched.MaxBandwidth))
	cfg.QueueLength, cfg.MeanInterarrival = 0, 200
	cfg.Deadlines = DeadlineConfig{HotTTL: 1000, ColdTTL: 5000}
	cfg.Admission = AdmissionConfig{MaxQueue: 50, Policy: AdmitShed}
	cfg.Burst = BurstConfig{Factor: 8, OnFrac: 0.2, Period: 10_000, FlashAt: 50_000, FlashLen: 5_000}
	cfg.Degrade = DegradeConfig{QueueThreshold: 20, MaxSweep: 4}
	cfg.AgeWeight = 1
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid overload config rejected: %v", err)
	}
}

// FuzzOverloadConservation drives short runs across the overload-parameter
// space and asserts the conservation identity always balances: admitted
// arrivals = completed + expired + shed + unserviceable + outstanding,
// with outstanding within the model's population bound.
func FuzzOverloadConservation(f *testing.F) {
	f.Add(int64(1), byte(0), byte(0), byte(0), byte(0), byte(0), false)
	f.Add(int64(2), byte(30), byte(100), byte(20), byte(1), byte(6), false)
	f.Add(int64(3), byte(10), byte(40), byte(15), byte(2), byte(9), true)
	f.Add(int64(4), byte(250), byte(5), byte(0), byte(0), byte(40), true)
	f.Fuzz(func(t *testing.T, seed int64, hotTTL, coldTTL, bound, policy, burst byte, closed bool) {
		cfg := quickCfg(core.NewEnvelope(core.MaxBandwidth))
		cfg.Seed = seed
		cfg.Horizon = 150_000
		cfg.Deadlines = DeadlineConfig{HotTTL: float64(hotTTL) * 25, ColdTTL: float64(coldTTL) * 25}
		pol := AdmitPolicy(policy % 3)
		maxQueue := 0
		if pol != AdmitNone {
			maxQueue = 10 + int(bound)
			cfg.Admission = AdmissionConfig{MaxQueue: maxQueue, Policy: pol}
		}
		cfg.AgeWeight = float64(burst % 3)
		if burst%2 == 0 {
			cfg.Degrade = DegradeConfig{QueueThreshold: 12, MaxSweep: 4}
		}
		flash := 0
		if closed {
			cfg.QueueLength = 20
			if burst > 0 {
				flash = int(burst)
				cfg.Burst = BurstConfig{Factor: 1, FlashAt: 40_000, FlashCount: flash}
			}
		} else {
			cfg.QueueLength = 0
			cfg.MeanInterarrival = 250
			if burst > 0 {
				cfg.Burst = BurstConfig{
					Factor: float64(burst%10) + 2, OnFrac: 0.25, Period: 20_000,
					FlashAt: 40_000, FlashLen: 10_000,
				}
			}
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.SimSeconds <= 0 {
			t.Fatalf("degenerate run: %+v", res)
		}
		maxOut := res.TotalArrivals // open model without admission: no bound
		if closed {
			maxOut = int64(20 + flash)
		} else if pol != AdmitNone {
			maxOut = int64(maxQueue)
		}
		checkOverloadConservation(t, res, maxOut)
	})
}
