package sim

import (
	"errors"

	"tapejuke/internal/health"
	"tapejuke/internal/layout"
)

// HealthConfig enables the proactive media-health extension: a background
// scrub scanner that patrols tape regions during drive idle time (finding
// latent errors before a user read pays for the discovery), EWMA health
// scoring of tapes and drives over the fault model's error observations,
// preemptive evacuation of suspect tapes through the repair machinery, and
// fencing of error-prone drives for simulated maintenance. Zero value:
// disabled.
type HealthConfig struct {
	// Enable turns the health subsystem on.
	Enable bool
	// ScrubRate is the number of block positions one idle scrub operation
	// patrols. 0 disables scrubbing (scoring, evacuation, and fencing can
	// run without it). A real request arriving preempts the patrol at the
	// next issue; the cursor resumes where it stopped.
	ScrubRate int
	// ErrHalfLifeSec is the error score's exponential-decay half-life in
	// simulated seconds. 0 means the 100,000 s default.
	ErrHalfLifeSec float64
	// WearWeight is the age/wear hazard each tape mount adds to that
	// tape's health score. 0 disables the wear term.
	WearWeight float64
	// SuspectScore, when positive, marks a tape suspect once its health
	// score (decayed errors + wear) reaches it. Suspect tapes stop
	// receiving new copies; with Evacuate they are drained entirely.
	SuspectScore float64
	// Evacuate migrates every copy off a suspect tape using the repair
	// job machinery (mint a replacement elsewhere first, then drop the
	// suspect copy). Requires Repair.Enable.
	Evacuate bool
	// DriveFenceScore, when positive, fences a drive out of scheduling
	// once its error score reaches it; the drive returns after
	// MaintenanceSec with a cleared score.
	DriveFenceScore float64
	// MaintenanceSec is the fenced drive's maintenance downtime. 0 means
	// the 3600 s default.
	MaintenanceSec float64
}

// Enabled reports whether the health extension is active.
func (h HealthConfig) Enabled() bool { return h.Enable }

// validateHealth checks the health extension's configuration.
func (c *Config) validateHealth() error {
	h := c.Health
	if !h.Enabled() {
		return nil
	}
	if c.WriteMeanInterarrival > 0 {
		return errors.New("sim: the health model does not cover the write extension")
	}
	if h.ScrubRate < 0 {
		return &ConfigError{"Health.ScrubRate", "must be >= 0 (0 disables scrubbing)"}
	}
	if h.ErrHalfLifeSec < 0 {
		return &ConfigError{"Health.ErrHalfLifeSec", "must be >= 0"}
	}
	if h.WearWeight < 0 {
		return &ConfigError{"Health.WearWeight", "must be >= 0"}
	}
	if h.SuspectScore < 0 {
		return &ConfigError{"Health.SuspectScore", "must be >= 0"}
	}
	if h.DriveFenceScore < 0 {
		return &ConfigError{"Health.DriveFenceScore", "must be >= 0"}
	}
	if h.MaintenanceSec < 0 {
		return &ConfigError{"Health.MaintenanceSec", "must be >= 0"}
	}
	if h.Evacuate && !c.Repair.Enabled() {
		return &ConfigError{"Health.Evacuate", "evacuation uses the repair machinery (enable Repair)"}
	}
	if h.Evacuate && h.SuspectScore == 0 {
		return &ConfigError{"Health.Evacuate", "evacuation needs a positive SuspectScore to nominate tapes"}
	}
	return nil
}

// pendingEvac is one evacuation-copy removal vetoed at commit time (the
// block was in use); it is retried at the next idle repair visit.
type pendingEvac struct {
	block layout.BlockID
	from  layout.Replica
}

// healthState is the engine-side bookkeeping of the health extension. nil
// when health is disabled, keeping the default path to a handful of nil
// checks.
//
// Like repair, health consumes no injector randomness: the scrub pass
// checks tape liveness by time comparison and bad/latent positions by
// table lookup, and scoring is pure arithmetic over error observations
// the fault paths already make. Enabling it leaves the fault stream --
// and with it every injector draw -- bit-identical.
type healthState struct {
	cfg HealthConfig
	sc  *health.Scorer
	scr *health.Scrubber // nil when ScrubRate is 0

	suspect       []bool // tapes whose score crossed SuspectScore
	evacuated     []bool // suspect tapes fully drained of copies
	suspects      int
	pendingRemove []pendingEvac
	scratch       []int // scrub-region occupied positions, reused

	scrubbedBlocks int64
	scrubSec       float64
	foundByScrub   int64
	evacJobs       int64
	evacMoved      int64
	fenced         int64
}

// initHealth wires the health subsystem when enabled. Must run after
// initRepair (evacuation and the destination filter hang off the planner).
func (e *engine) initHealth() {
	hc := e.cfg.Health
	if !hc.Enabled() {
		return
	}
	if hc.ErrHalfLifeSec == 0 {
		hc.ErrHalfLifeSec = 100_000
	}
	if hc.MaintenanceSec == 0 {
		hc.MaintenanceSec = 3600
	}
	h := &healthState{
		cfg:       hc,
		sc:        health.NewScorer(e.cfg.Tapes, len(e.drives), hc.ErrHalfLifeSec, hc.WearWeight),
		suspect:   make([]bool, e.cfg.Tapes),
		evacuated: make([]bool, e.cfg.Tapes),
	}
	if hc.ScrubRate > 0 {
		h.scr = health.NewScrubber(e.cfg.Tapes, e.sh.Layout.TapeCap(), hc.ScrubRate)
	}
	e.hlt = h
	if e.rep != nil && hc.SuspectScore > 0 {
		// New copies -- repair and evacuation alike -- never land on a
		// suspect tape: placing data on media queued for evacuation would
		// be wasted motion.
		e.rep.pl.SetDestFilter(func(t int) bool { return !h.suspect[t] })
	}
}

// noteMount records tape wear on every mount attempt (the robot handled
// the cartridge whether or not the load succeeded).
func (e *engine) noteMount(tape int) {
	h := e.hlt
	if h == nil {
		return
	}
	h.sc.NoteMount(tape)
	e.updateSuspect(tape, e.now)
}

// noteFaultErr records one error observation from the fault paths against
// the tape (pass -1 for drive-only errors like drive failures) and the
// drive. Pure bookkeeping: the fault outcome itself was already resolved.
func (e *engine) noteFaultErr(d, tape int, at float64) {
	h := e.hlt
	if h == nil {
		return
	}
	if tape >= 0 {
		h.sc.NoteTapeError(tape, at)
		e.updateSuspect(tape, at)
	}
	if d >= 0 {
		h.sc.NoteDriveError(d, at)
	}
}

// updateSuspect promotes the tape to suspect when its score crosses the
// threshold. Suspicion is sticky: scores decay, the judgement does not
// (the media already demonstrated its error rate).
func (e *engine) updateSuspect(tape int, at float64) {
	h := e.hlt
	if h.cfg.SuspectScore <= 0 || h.suspect[tape] {
		return
	}
	if h.sc.TapeScore(tape, at) >= h.cfg.SuspectScore {
		h.suspect[tape] = true
		h.suspects++
	}
}

// healthFenceOp fences drive d for maintenance when its error score has
// crossed the threshold. Fencing happens between sweeps only (the drive
// finishes committed work first): the mounted tape is ejected, the drive
// leaves scheduling via the shared Fenced mask, and it returns after
// MaintenanceSec with a cleared error score. Returns whether the
// maintenance operation was issued.
func (e *engine) healthFenceOp(d int) bool {
	h := e.hlt
	if h.cfg.DriveFenceScore <= 0 {
		return false
	}
	if e.sh.Fenced != nil && e.sh.Fenced[d] {
		return false
	}
	if h.sc.DriveScore(d, e.now) < h.cfg.DriveFenceScore {
		return false
	}
	dr := &e.drives[d]
	st := dr.st
	if e.sh.Fenced == nil {
		e.sh.Fenced = make([]bool, len(e.drives))
	}
	e.sh.Fenced[d] = true
	h.fenced++
	if st.Mounted >= 0 {
		// Maintenance happens on an empty drive; the cartridge goes back
		// to the library so other drives may use it.
		if e.sh.Busy != nil {
			e.sh.Busy[st.Mounted] = false
		}
		st.Mounted, st.Head = -1, 0
	}
	m := h.cfg.MaintenanceSec
	dr.unfence = true
	e.push(Event{Kind: EventDriveFence, Time: e.now + m, Tape: -1, Pos: -1, Seconds: m})
	e.beginOp(d, e.now+m, false)
	return true
}

// idleScrubOp patrols the next scrub region on drive d when neither flush
// nor repair wants the idle slack: mount the region's tape if needed and
// verify every live copy in it, one region per operation so an arriving
// request preempts the patrol at the next issue. Empty regions cost
// nothing and are skipped (up to about one tape's worth per visit) so the
// cursor keeps moving over sparse layouts. Returns whether an operation
// was issued.
func (e *engine) idleScrubOp(d int) bool {
	h := e.hlt
	if h == nil || h.scr == nil {
		return false
	}
	dr := &e.drives[d]
	st := dr.st
	lay := e.sh.Layout
	maxTries := lay.TapeCap()/h.cfg.ScrubRate + 2
	for try := 0; try < maxTries; try++ {
		tape, start, n, ok := h.scr.Next(func(t int) bool {
			return !st.Available(t) || h.evacuated[t]
		})
		if !ok {
			return false
		}
		poss := h.scratch[:0]
		for p := start; p < start+n; p++ {
			if _, occupied := lay.BlockAt(tape, p); !occupied {
				continue
			}
			if e.flt != nil && e.flt.inj.CopyDead(tape, p) {
				// Already known dead (a pre-placed bad block or an earlier
				// escalation): nothing to verify, but make sure the repair
				// planner has seen the loss (idempotent).
				if e.rep != nil {
					e.rep.pl.NoteCopyDead(tape, p, e.now)
				}
				continue
			}
			poss = append(poss, p)
		}
		h.scratch = poss
		if len(poss) == 0 {
			continue
		}
		return e.issueScrub(d, tape, poss)
	}
	return false
}

// issueScrub runs one scrub operation over the occupied positions of a
// region: a verification read of each live copy, in position order. Scrub
// reads, like repair reads, are deterministic verification passes -- they
// draw no injector randomness; a latent error is found by table lookup
// and a tape already dead is discovered by time comparison -- so the
// fault stream is unchanged.
func (e *engine) issueScrub(d, tape int, poss []int) bool {
	dr := &e.drives[d]
	st := dr.st
	h := e.hlt
	vt := e.now
	if tape != st.Mounted {
		var ok bool
		if vt, ok = e.idleSwitch(d, tape, &h.scrubSec); !ok {
			return true // the failed load occupied the drive
		}
	}
	for _, pos := range poss {
		if e.flt != nil && e.flt.inj.TapeFailed(tape, vt) {
			// The medium died under the patrol: the locate runs into the
			// failure and the tape is masked at settle.
			loc, _, _ := e.sh.Costs.ServeOneParts(st.Head, pos)
			vt += loc
			h.scrubSec += loc
			dr.failTape = tape
			e.beginOp(d, vt, false)
			return true
		}
		loc, rd, newHead := e.sh.Costs.ServeOneParts(st.Head, pos)
		vt += loc + rd
		h.scrubSec += loc + rd
		st.Head = newHead
		h.scrubbedBlocks++
		e.push(Event{Kind: EventScrubRead, Time: vt, Tape: tape, Pos: pos, Seconds: loc + rd})
		if e.flt != nil && e.flt.inj.LatentActive(tape, pos, vt) {
			e.noteLatentFound(tape, pos, vt, true)
		}
	}
	e.beginOp(d, vt, false)
	return true
}

// healthEvacScan drives evacuation at idle repair visits: vetoed copy
// removals are retried, every copy still on a suspect tape gets an
// evacuation job (bounded per visit; the planner dedups by block), and
// fully drained tapes are marked evacuated.
func (e *engine) healthEvacScan() {
	h := e.hlt
	if h == nil || !h.cfg.Evacuate || e.rep == nil {
		return
	}
	if len(h.pendingRemove) > 0 {
		kept := h.pendingRemove[:0]
		for _, pr := range h.pendingRemove {
			if !e.evacRemove(pr.block, pr.from) {
				kept = append(kept, pr)
			}
		}
		for i := len(kept); i < len(h.pendingRemove); i++ {
			h.pendingRemove[i] = pendingEvac{}
		}
		h.pendingRemove = kept
	}
	if h.suspects == 0 {
		return
	}
	pl := e.rep.pl
	budget := 64
	for t := 0; t < len(h.suspect); t++ {
		if !h.suspect[t] || h.evacuated[t] || !e.sh.Up(t) {
			continue
		}
		live := 0
		for _, s := range e.sh.Layout.TapeContents(t) {
			from := layout.Replica{Tape: t, Pos: s.Pos}
			if !e.sh.CopyOK(from) {
				continue // dead copy: plain repair owns the block already
			}
			live++
			if budget == 0 {
				return
			}
			if pl.EnqueueEvacuation(s.Block, from, e.now) != nil {
				h.evacJobs++
				budget--
			}
		}
		// Drained: only dead copies (and no vetoed removals) remain, so the
		// tape holds nothing worth patrolling or mounting again.
		if live == 0 && !e.pendingRemoveOn(t) {
			h.evacuated[t] = true
		}
	}
}

// pendingRemoveOn reports whether a vetoed removal still points at the tape.
func (e *engine) pendingRemoveOn(tape int) bool {
	for _, pr := range e.hlt.pendingRemove {
		if pr.from.Tape == tape {
			return true
		}
	}
	return false
}

// evacRemove drops the suspect-tape copy an evacuation job replaced. The
// removal is metadata-only and happens strictly after the replacement
// copy committed, so the block never loses availability; copies a request
// still targets are vetoed (the caller retries). Returns whether the
// removal is settled (done, or moot because the copy is already gone).
func (e *engine) evacRemove(b layout.BlockID, from layout.Replica) bool {
	if !e.sh.CopyOK(from) {
		return true // the copy died on its own: plain repair owns it now
	}
	if c, ok := e.sh.Layout.ReplicaOn(b, from.Tape); !ok || c.Pos != from.Pos {
		return true // already removed (reclaim got there first)
	}
	if e.blockInUse(b) {
		return false
	}
	if err := e.sh.Layout.RemoveCopy(b, from.Tape); err != nil {
		return false
	}
	e.hlt.evacMoved++
	e.push(Event{Kind: EventEvacuate, Time: e.now, Tape: from.Tape, Pos: from.Pos})
	e.notifyCopyRemoved(b, from)
	return true
}

// healthResult folds the health metrics into the result.
func (e *engine) healthResult(res *Result) {
	h := e.hlt
	if h == nil {
		return
	}
	res.ScrubbedMB = float64(h.scrubbedBlocks) * e.cfg.BlockMB
	res.ScrubSeconds = h.scrubSec
	res.LatentFoundByScrub = h.foundByScrub
	res.SuspectTapes = h.suspects
	for _, ev := range h.evacuated {
		if ev {
			res.EvacuatedTapes++
		}
	}
	res.EvacuationJobs = h.evacJobs
	res.EvacuatedCopies = h.evacMoved
	res.FencedDrives = h.fenced
}
