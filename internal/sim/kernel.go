package sim

import (
	"fmt"
	"math"

	"tapejuke/internal/repair"
	"tapejuke/internal/sched"
)

// This file is the event-calendar kernel shared by every drive count. Each
// drive is a record with a wake time: the kernel repeatedly advances the
// clock to the earliest busy drive's completion, settles that operation's
// deferred effects, delivers due arrivals, and issues new operations on
// every free drive. A single-drive jukebox is the one-record case of the
// same loop, replacing the synchronous engine and the separate multi-drive
// engine that preceded it.
//
// Operations resolve their random outcome at issue time -- all injector and
// workload draws happen in deterministic order -- accumulating a virtual
// clock over attempt segments; only the completion time is placed on the
// calendar. State effects that other drives must not see early (tape masks,
// requeues, completions) are deferred to the settle at the discovery time.

// drive is one tape drive: its scheduling view (sharing the jukebox-wide
// Shared state), its scheduler instance, and the operation in flight.
type drive struct {
	st   *sched.State
	schd sched.Scheduler

	busy   bool    // an operation is in flight, finishing at freeAt
	freeAt float64 // completion time of the in-flight operation
	pump   bool    // deliver due arrivals after this settle even past the horizon

	inFlight *sched.Request // request whose read completes at freeAt

	// Fault-model deferrals: the outcome was resolved at issue time but its
	// effects apply when the drive gives up at freeAt, the discovery time.
	faulted  *sched.Request   // read failing permanently at freeAt
	abort    []*sched.Request // requests to requeue at freeAt
	failTape int              // tape to mask at freeAt, -1 none
	loadFail bool             // failure was a load: unmount and release busy

	// repairJob, when set, is a background repair write whose new copy is
	// minted at freeAt: other drives must not see it before the write lands.
	// repairRead is the job whose read step is in flight; both clear the
	// job's busy claim at settle.
	repairJob  *repair.Job
	repairRead *repair.Job

	// unfence, when set, marks the in-flight operation as the drive's
	// maintenance downtime: at freeAt the fence mask clears and the
	// drive's error score resets.
	unfence bool
}

// multiAudit, set by tests, verifies busy-vector/mount consistency at every
// kernel step of a multi-drive run.
var multiAudit = false

// run is the kernel loop. Per wake: deliver work and issue operations on
// free drives, then either settle the earliest completion or, with every
// drive empty-handed, sleep until the next arrival.
func (e *engine) run() (*Result, error) {
	for {
		if multiAudit && e.sh.Busy != nil {
			if err := e.verifyBusy(); err != nil {
				return nil, err
			}
		}
		if e.now < e.cfg.Horizon {
			e.expireDue()
			e.pumpArrivals()
			if e.cfg.MaxCompletions > 0 && e.completed >= e.cfg.MaxCompletions {
				e.flushEvents()
				return e.result(), nil
			}
			for i := range e.drives {
				if !e.drives[i].busy {
					if err := e.issue(i); err != nil {
						return nil, err
					}
				}
			}
			e.flushEvents()
		}

		d := e.nextSettle()
		if d < 0 {
			// Nothing in flight anywhere.
			if e.now >= e.cfg.Horizon {
				break
			}
			if len(e.sh.Pending) > 0 && len(e.drives) == 1 {
				return nil, fmt.Errorf("sim: scheduler %s failed to schedule %d pending requests",
					e.drives[0].schd.Name(), len(e.sh.Pending))
			}
			wake := e.nextArr
			if e.writes != nil && e.writes.next < wake {
				wake = e.writes.next
			}
			if e.ovl != nil {
				if te := e.nextDeadline(); te < wake {
					wake = te
				}
			}
			if math.IsInf(wake, 1) {
				break // closed model with nothing left to do
			}
			var dt float64
			if wake >= e.cfg.Horizon {
				dt = e.cfg.Horizon - e.now
			} else {
				dt = wake - e.now
			}
			e.idleSec += dt
			e.advanceClock(e.now + dt)
			e.push(Event{Kind: EventIdle, Time: e.now, Tape: -1, Pos: -1, Seconds: dt})
			e.flushEvents()
			if e.now >= e.cfg.Horizon {
				break
			}
			continue
		}

		if e.ovl != nil && e.now < e.cfg.Horizon {
			// Deadline expiry is a wake source: when a deadline falls before
			// the earliest completion, advance only to the deadline so the
			// expiry (and any closed-model respawn it triggers) is processed
			// at its own time, keeping the event stream in global order.
			if te := e.nextDeadline(); te <= e.drives[d].freeAt && te < e.cfg.Horizon {
				e.advanceClock(te)
				e.flushEvents()
				continue
			}
		}
		e.advanceClock(e.drives[d].freeAt)
		e.flushEvents()
		pumpAfter := e.settle(d)
		if e.now >= e.cfg.Horizon && pumpAfter {
			// Arrivals that landed during an overshooting read or switch are
			// still delivered (they count as arrivals even though no further
			// operation starts).
			e.pumpArrivals()
		}
		e.flushEvents()
	}
	e.flushEvents()
	return e.result(), nil
}

// advanceClock moves wall-clock time to target, accumulating the
// queue-length integral. Activity buckets are charged at issue time,
// segment by segment; idle time is charged only by the idle branch of the
// kernel loop, when no drive has an operation in flight.
func (e *engine) advanceClock(target float64) {
	if target <= e.now {
		return
	}
	e.queueAreaSec += float64(e.outstanding) * (target - e.now)
	e.now = target
	e.sh.Now = target
}

// nextSettle returns the busy drive with the earliest completion (lowest
// index on ties), or -1 when every drive is free.
func (e *engine) nextSettle() int {
	d := -1
	for i := range e.drives {
		if e.drives[i].busy && (d < 0 || e.drives[i].freeAt < e.drives[d].freeAt) {
			d = i
		}
	}
	return d
}

// beginOp places drive d's just-resolved operation on the calendar.
func (e *engine) beginOp(d int, freeAt float64, pumpAfter bool) {
	dr := &e.drives[d]
	dr.busy = true
	dr.freeAt = freeAt
	dr.pump = pumpAfter
}

// settle applies the deferred effects of drive d's finished operation at
// the discovery time e.now == freeAt: tape masks, sweep requeues, and the
// completion itself. It reports whether due arrivals should be delivered
// even past the horizon (reads and successful switches; see run).
func (e *engine) settle(d int) bool {
	dr := &e.drives[d]
	dr.busy = false
	pumpAfter := dr.pump
	dr.pump = false
	st := dr.st
	if dr.failTape >= 0 {
		e.markTapeDown(dr.failTape)
		if dr.loadFail {
			// The cartridge never mounted: the drive is empty and the tape
			// goes back to the library (released exactly once, here).
			if e.sh.Busy != nil {
				e.sh.Busy[dr.failTape] = false
			}
			st.Mounted, st.Head = -1, 0
			dr.loadFail = false
		}
		dr.failTape = -1
	}
	if dr.faulted != nil {
		e.requeueFaulted(dr.faulted)
		dr.faulted = nil
	}
	for i, r := range dr.abort {
		e.requeueFaulted(r)
		dr.abort[i] = nil
	}
	dr.abort = dr.abort[:0]
	if r := dr.inFlight; r != nil {
		dr.inFlight = nil
		e.complete(r)
	}
	if j := dr.repairRead; j != nil {
		dr.repairRead = nil
		j.Busy = false
	}
	if j := dr.repairJob; j != nil {
		dr.repairJob = nil
		j.Busy = false
		e.commitRepair(j)
	}
	if dr.unfence {
		// Maintenance is over: the drive rejoins scheduling with a clean
		// error history (the fence would otherwise re-trip immediately).
		dr.unfence = false
		e.sh.Fenced[d] = false
		e.hlt.sc.ResetDrive(d)
	}
	return pumpAfter
}

// issue starts drive d's next operation: a due repair, the next read of its
// sweep, a delta-write flush, or a major reschedule with its tape switch.
// The drive stays free when there is nothing it can do.
func (e *engine) issue(d int) error {
	dr := &e.drives[d]
	if e.now >= e.cfg.Horizon {
		return nil
	}
	st := dr.st
	if st.Active != nil {
		if !st.Active.Empty() {
			// Mid-sweep, a due drive failure binds to the next read attempt
			// (resolveFaultyRead inserts the repair before the attempt).
			e.startRead(d)
			return nil
		}
		e.sh.ReleaseSweep(st.Active)
		st.Active = nil
		// The sweep just drained: the write extension may piggyback a flush
		// on the mounted tape before the next major reschedule.
		if e.piggybackOp(d) {
			return nil
		}
	}
	if e.flt != nil {
		// Between sweeps, a due drive failure takes the drive down for
		// repair before any further operation; the pending-hygiene scan
		// waits until the drive is back.
		if e.now >= e.flt.inj.DriveFailAt(d) {
			rep := e.flt.inj.DriveRepair(d, e.now)
			e.flt.driveFails++
			e.flt.repairSec += rep
			e.beginOp(d, e.now+rep, false)
			e.push(Event{Kind: EventDriveRepair, Time: dr.freeAt, Tape: -1, Pos: -1, Seconds: rep})
			e.noteFaultErr(d, -1, dr.freeAt)
			return nil
		}
		e.dropUnserviceable()
	}
	if e.hlt != nil && e.healthFenceOp(d) {
		// The drive's error score crossed the fence threshold: it leaves
		// scheduling for maintenance before taking any further work.
		return nil
	}
	if len(e.sh.Pending) == 0 {
		// The drive would otherwise go idle: flush buffered writes first,
		// then give the slack to background repair, then to the scrub
		// patrol. Each runs one step per operation, so a real request
		// arriving preempts the background work at the next issue with
		// its progress intact.
		if !e.idleFlushOp(d) && !e.idleRepairOp(d) {
			e.idleScrubOp(d)
		}
		return nil
	}
	tape, sweep, ok := dr.schd.Reschedule(st)
	if ok && e.ovl != nil && e.ovl.degrade.MaxSweep > 0 && e.overloaded() {
		sweep = e.truncateSweep(st, tape, sweep)
	}
	if !ok {
		// Every candidate tape is claimed by another drive (or FIFO's oldest
		// request is pinned to one); retry at the next wake. The one-drive
		// case cannot unblock itself: the idle branch reports it.
		return nil
	}
	if e.cfg.RAO {
		// Serpentine drives execute the sweep in Recommended Access Order:
		// greedy nearest-first physical order from the head the schedule
		// starts at (0 after a switch). Scheduling costs were evaluated on
		// the elevator order; the reorder is a drive-level service detail.
		sweep.ReorderRAO(e.prof, e.cfg.BlockMB, st.StartHead(tape))
	}
	if e.sh.Busy != nil && e.sh.Busy[tape] && tape != st.Mounted {
		return fmt.Errorf("sim: scheduler %s selected busy tape %d", dr.schd.Name(), tape)
	}
	if tape != st.Mounted {
		sw := e.sh.Costs.SwitchCost(st.Mounted, st.Head, tape)
		if e.sh.Busy != nil {
			if st.Mounted >= 0 {
				e.sh.Busy[st.Mounted] = false
			}
			e.sh.Busy[tape] = true
		}
		st.Mounted, st.Head = tape, 0
		e.noteMount(tape)
		st.Active = sweep
		if e.flt != nil {
			e.resolveFaultySwitch(d, tape, sw)
			return nil
		}
		vt := e.now + sw
		e.switchSec += sw
		if vt > e.warmupEnd {
			e.switches++
		}
		e.push(Event{Kind: EventSwitch, Time: vt, Tape: tape, Pos: -1, Seconds: sw})
		e.beginOp(d, vt, true)
		return nil
	}
	st.Active = sweep
	e.startRead(d)
	return nil
}

// startRead pops the drive's next sweep request and issues its retrieval,
// resolving the completion time (and, under the fault model, the whole
// fault story) now.
func (e *engine) startRead(d int) {
	dr := &e.drives[d]
	st := dr.st
	r := st.Active.Pop()
	if e.ovl != nil && e.now > e.warmupEnd {
		e.noteQueueAge(e.now - r.Arrival)
	}
	if e.flt != nil {
		e.resolveFaultyRead(d, r)
		return
	}
	loc, rd, newHead := e.sh.Costs.ServeOneParts(st.Head, r.Target.Pos)
	vt := e.now
	vt += loc
	e.locateSec += loc
	vt += rd
	e.readSec += rd
	st.Head = newHead
	if vt > e.warmupEnd {
		e.readsPerTape[r.Target.Tape]++
	}
	e.push(Event{Kind: EventRead, Time: vt, Tape: r.Target.Tape,
		Pos: r.Target.Pos, Seconds: loc + rd, Request: r.ID})
	dr.inFlight = r
	e.beginOp(d, vt, true)
}

// verifyBusy checks the busy-vector hygiene invariants: every mounted (or
// loading) tape is busy, no tape is mounted twice, and every busy tape is
// accounted for by exactly one drive (a release happens exactly once).
func (e *engine) verifyBusy() error {
	owners := make(map[int]int)
	for d := range e.drives {
		t := e.drives[d].st.Mounted
		if t < 0 {
			continue
		}
		if prev, dup := owners[t]; dup {
			return fmt.Errorf("sim: tape %d mounted in drives %d and %d", t, prev, d)
		}
		owners[t] = d
		if !e.sh.Busy[t] {
			return fmt.Errorf("sim: tape %d mounted in drive %d but not busy", t, d)
		}
	}
	busyCount := 0
	for t := range e.sh.Busy {
		if e.sh.Busy[t] {
			busyCount++
		}
	}
	if busyCount != len(owners) {
		return fmt.Errorf("sim: %d busy tapes but %d mounted drives", busyCount, len(owners))
	}
	return nil
}

// queuedEvent pairs an event with its push sequence so simultaneous events
// release in push order.
type queuedEvent struct {
	ev  Event
	seq int64
}

// eventQueue is a monomorphic 4-ary min-heap on (time, sequence). It
// replaces the container/heap machinery: pushes and pops are direct slice
// operations on the concrete element type, with no interface boxing (which
// allocated one heap copy of every pushed event), and the 4-ary layout
// halves the levels walked per operation. (time, sequence) is a total
// order, so the pop sequence -- and hence the observed event stream -- is
// identical to the binary interface heap it replaces.
type eventQueue []queuedEvent

func (q eventQueue) less(i, j int) bool {
	if q[i].ev.Time != q[j].ev.Time {
		return q[i].ev.Time < q[j].ev.Time
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(it queuedEvent) {
	h := append(*q, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !h.less(i, p) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	*q = h
}

func (q *eventQueue) pop() queuedEvent {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = queuedEvent{}
	h = h[:n]
	*q = h
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h.less(j, best) {
				best = j
			}
		}
		if !h.less(best, i) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}

// push queues an event for the observer. Events may be pushed with future
// timestamps (an operation's interior attempts and completion, resolved at
// issue time); flushEvents releases them once the clock catches up, keeping
// the observed stream in global time order across drives.
func (e *engine) push(ev Event) {
	if e.cfg.Observer == nil {
		return
	}
	e.evSeq++
	e.evq.push(queuedEvent{ev: ev, seq: e.evSeq})
}

// flushEvents delivers every queued event due by now.
func (e *engine) flushEvents() {
	if e.cfg.Observer == nil {
		return
	}
	for len(e.evq) > 0 && e.evq[0].ev.Time <= e.now {
		e.cfg.Observer.Observe(e.evq.pop().ev)
	}
}
