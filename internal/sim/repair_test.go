package sim

import (
	"reflect"
	"testing"

	"tapejuke/internal/core"
	"tapejuke/internal/faults"
	"tapejuke/internal/sched"
)

// openRepairCfg is an open-model replicated workload with tape failures
// over a long horizon: the drive idles between arrivals, giving repair
// its execution window, and tapes die often enough that replicas are
// lost and rebuilt.
func openRepairCfg(nr int) Config {
	return Config{
		BlockMB: 16, TapeCapMB: 7168, Tapes: 10, HotPercent: 100,
		ReadHotPercent: 100, DataBlocks: 1000, Replicas: nr,
		QueueLength: 0, MeanInterarrival: 300,
		Scheduler: core.NewEnvelope(core.MaxBandwidth),
		Horizon:   2_000_000, Seed: 13,
		Faults: faults.Config{TapeMTBFSec: 1_200_000},
	}
}

// TestRepairInertEventStream pins the inertness guarantee of the repair
// extension: with repair disabled the engine is untouched (the golden
// tests pin that), and with the repair struct armed but unfireable -- no
// faults, no promotion or reclamation thresholds -- the full event stream
// and metrics are byte-identical to a run without it, for both a closed
// and an open (idle-branch-exercising) workload.
func TestRepairInertEventStream(t *testing.T) {
	cfgs := map[string]func(sched.Scheduler) Config{
		"closed": quickCfg,
		"open":   openOverloadCfg,
	}
	mk := map[string]func() sched.Scheduler{
		"dynamic":  func() sched.Scheduler { return sched.NewDynamic(sched.MaxBandwidth) },
		"envelope": func() sched.Scheduler { return core.NewEnvelope(core.MaxBandwidth) },
	}
	for cname, cf := range cfgs {
		for name, f := range mk {
			t.Run(cname+"/"+name, func(t *testing.T) {
				baseEvs, baseRes := collectEvents(t, cf(f()))

				armed := cf(f())
				armed.Repair = RepairConfig{Enable: true, HalfLifeSec: 50_000, ScanRate: 128}
				evs, res := collectEvents(t, armed)

				if len(evs) != len(baseEvs) {
					t.Fatalf("event count diverged: %d with armed repair, %d without", len(evs), len(baseEvs))
				}
				for i := range evs {
					if evs[i] != baseEvs[i] {
						t.Fatalf("event %d diverged: %+v vs %+v", i, evs[i], baseEvs[i])
					}
				}
				if res.Completed != baseRes.Completed || res.ThroughputKBps != baseRes.ThroughputKBps ||
					res.MeanResponseSec != baseRes.MeanResponseSec || res.IdleSeconds != baseRes.IdleSeconds {
					t.Errorf("metrics diverged under armed repair:\n%+v\n%+v", res, baseRes)
				}
				if res.RepairJobs != 0 || res.RepairedCopies != 0 || res.ReclaimedCopies != 0 ||
					res.RepairSeconds != 0 {
					t.Errorf("unfireable repair config fired: %+v", res)
				}
			})
		}
	}
}

// TestRepairImprovesAvailability is the tentpole acceptance experiment:
// with tape failures at NR in {1,2} over a multi-million-second horizon,
// enabling background repair strictly improves availability, mints
// copies, and reports a mean time to repair.
func TestRepairImprovesAvailability(t *testing.T) {
	for _, nr := range []int{1, 2} {
		off := openRepairCfg(nr)
		resOff, err := Run(off)
		if err != nil {
			t.Fatal(err)
		}

		on := openRepairCfg(nr)
		on.Repair = RepairConfig{Enable: true}
		resOn, err := Run(on)
		if err != nil {
			t.Fatal(err)
		}

		if resOn.RepairedCopies == 0 {
			t.Fatalf("NR=%d: repair enabled but no copies minted (%d jobs)", nr, resOn.RepairJobs)
		}
		if resOn.MeanTimeToRepairSec <= 0 {
			t.Errorf("NR=%d: MeanTimeToRepairSec = %v, want > 0", nr, resOn.MeanTimeToRepairSec)
		}
		if resOn.RepairSeconds <= 0 {
			t.Errorf("NR=%d: RepairSeconds = %v, want > 0", nr, resOn.RepairSeconds)
		}
		if resOn.Availability <= resOff.Availability {
			t.Errorf("NR=%d: availability %v with repair, %v without; want strict improvement",
				nr, resOn.Availability, resOff.Availability)
		}
		t.Logf("NR=%d: availability %.4f -> %.4f, %d copies repaired, MTTR %.0f s",
			nr, resOff.Availability, resOn.Availability, resOn.RepairedCopies, resOn.MeanTimeToRepairSec)
	}
}

// TestRepairDeterminism: identical configurations produce identical
// results, and the fault stream is not perturbed by the repair extension
// consuming injector randomness (it must consume none).
func TestRepairDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := openRepairCfg(2)
		cfg.Repair = RepairConfig{Enable: true}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repair runs diverged:\n%+v\n%+v", a, b)
	}

	// Same fault universe with and without repair: tape failures are
	// drawn at injector construction, so the count of *injected* faults
	// visible through the per-run failure times must match. The observable
	// proxy: a run with repair off and a run with repair on see the same
	// TapeFailures when every tape death is eventually discovered.
	off := openRepairCfg(2)
	resOff, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	if a.TapeFailures < resOff.TapeFailures {
		t.Errorf("repair run discovered fewer tape failures (%d) than baseline (%d)",
			a.TapeFailures, resOff.TapeFailures)
	}
}

// TestRepairInvariants runs the engine directly and checks the structural
// postconditions: the mutated layout still validates and no destination
// reservation leaks past the end of the run.
func TestRepairInvariants(t *testing.T) {
	cfg := openRepairCfg(2)
	cfg.Repair = RepairConfig{Enable: true}
	e, err := newEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.run(); err != nil {
		t.Fatal(err)
	}
	if err := e.sh.Layout.Validate(); err != nil {
		t.Errorf("layout invalid after repair run: %v", err)
	}
	if n := e.rep.pl.ReservedCount(); n != 0 {
		t.Errorf("%d destination reservations leaked", n)
	}
}

// TestRepairPromoteReclaim: with promotion and reclamation thresholds set
// on a fault-free open workload, hot blocks gain copies and cold excess
// copies are eventually reclaimed.
func TestRepairPromoteReclaim(t *testing.T) {
	cfg := Config{
		BlockMB: 16, TapeCapMB: 7168, Tapes: 10, HotPercent: 10,
		ReadHotPercent: 90, DataBlocks: 1000, Replicas: 0,
		QueueLength: 0, MeanInterarrival: 200,
		Scheduler: core.NewEnvelope(core.MaxBandwidth),
		Horizon:   1_000_000, Seed: 3,
		// The thresholds straddle the hot blocks' equilibrium heat
		// (~arrival rate x half-life / ln 2 ~= 1.3) so Poisson
		// fluctuation drives blocks across both: a lucky streak promotes,
		// a quiet stretch cools the block below the reclaim floor.
		Repair: RepairConfig{
			Enable: true, HalfLifeSec: 20_000,
			PromoteHeat: 3, ReclaimHeat: 1, MaxCopies: 3, ScanRate: 256,
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairedCopies == 0 {
		t.Errorf("promotion minted no copies (%d jobs)", res.RepairJobs)
	}
	if res.ReclaimedCopies == 0 {
		t.Errorf("reclamation removed no copies (%d minted)", res.RepairedCopies)
	}
}

// TestRepairConfigValidation covers the repair surface's typed errors.
func TestRepairConfigValidation(t *testing.T) {
	base := func() Config {
		c := quickCfg(sched.NewDynamic(sched.MaxBandwidth))
		c.Repair.Enable = true
		return c
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative half-life", func(c *Config) { c.Repair.HalfLifeSec = -1 }},
		{"negative promote", func(c *Config) { c.Repair.PromoteHeat = -1 }},
		{"negative reclaim", func(c *Config) { c.Repair.ReclaimHeat = -1 }},
		{"reclaim above promote", func(c *Config) { c.Repair.PromoteHeat = 1; c.Repair.ReclaimHeat = 2 }},
		{"max copies beyond tapes", func(c *Config) { c.Repair.MaxCopies = 11 }},
		{"negative scan rate", func(c *Config) { c.Repair.ScanRate = -1 }},
		{"write extension", func(c *Config) { c.WriteMeanInterarrival = 100 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate accepted an invalid repair config")
			}
		})
	}
	ok := base()
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate rejected a valid repair config: %v", err)
	}
}
