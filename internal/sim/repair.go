package sim

import (
	"errors"
	"fmt"

	"tapejuke/internal/layout"
	"tapejuke/internal/repair"
	"tapejuke/internal/sched"
	"tapejuke/internal/stats"
)

// RepairConfig enables the self-healing replication extension: background
// jobs that rebuild lost replicas, promote newly hot blocks, and reclaim
// cold excess copies during drive idle time. Zero value: disabled.
type RepairConfig struct {
	// Enable turns the repair subsystem on.
	Enable bool
	// HalfLifeSec is the heat tracker's exponential-decay half-life in
	// simulated seconds. 0 means the 100,000 s default.
	HalfLifeSec float64
	// PromoteHeat, when positive, mints an extra copy of any block whose
	// decayed heat reaches it (up to MaxCopies).
	PromoteHeat float64
	// ReclaimHeat, when positive, reclaims excess copies of blocks whose
	// heat has fallen to or below it.
	ReclaimHeat float64
	// MaxCopies caps promotion. 0 means 1 + Replicas.
	MaxCopies int
	// ScanRate is the number of blocks the rotating promote/reclaim scan
	// inspects per idle visit. 0 means 64.
	ScanRate int
}

// Enabled reports whether the repair extension is active.
func (r RepairConfig) Enabled() bool { return r.Enable }

// validateRepair checks the repair extension's configuration.
func (c *Config) validateRepair() error {
	r := c.Repair
	if !r.Enabled() {
		return nil
	}
	if c.WriteMeanInterarrival > 0 {
		return errors.New("sim: the repair model does not cover the write extension")
	}
	if r.HalfLifeSec < 0 {
		return &ConfigError{"Repair.HalfLifeSec", "must be >= 0"}
	}
	if r.PromoteHeat < 0 {
		return &ConfigError{"Repair.PromoteHeat", "must be >= 0"}
	}
	if r.ReclaimHeat < 0 {
		return &ConfigError{"Repair.ReclaimHeat", "must be >= 0"}
	}
	if r.PromoteHeat > 0 && r.ReclaimHeat >= r.PromoteHeat {
		return &ConfigError{"Repair.ReclaimHeat", "must be below PromoteHeat (copies would thrash)"}
	}
	if r.MaxCopies < 0 || r.MaxCopies > c.Tapes {
		return &ConfigError{"Repair.MaxCopies", fmt.Sprintf("must be in [0,%d] (at most one copy per tape)", c.Tapes)}
	}
	if r.ScanRate < 0 {
		return &ConfigError{"Repair.ScanRate", "must be >= 0"}
	}
	return nil
}

// repairState is the engine-side bookkeeping of the repair extension: the
// heat tracker, the job planner, and the repair metrics. nil when repair
// is disabled, keeping the default path to a handful of nil checks.
//
// Repair consumes no injector randomness -- tape liveness is a pure time
// comparison and copy liveness a table lookup -- so enabling it leaves the
// fault stream, and with it every non-repair event, bit-identical.
type repairState struct {
	pl   *repair.Planner
	heat *repair.Heat

	repaired  int64   // copies minted
	reclaimed int64   // excess copies given back
	repairSec float64 // drive time spent on repair reads and writes
	mttr      stats.Accumulator
}

// initRepair wires the repair subsystem when enabled. Must run after
// initFaults (the planner's liveness closures read the fault masks).
func (e *engine) initRepair() {
	rc := e.cfg.Repair
	if !rc.Enabled() {
		return
	}
	if rc.HalfLifeSec == 0 {
		rc.HalfLifeSec = 100_000
	}
	if rc.MaxCopies == 0 {
		rc.MaxCopies = 1 + e.cfg.Replicas
	}
	lay := e.sh.Layout
	heat := repair.NewHeat(lay.NumBlocks(), rc.HalfLifeSec)
	pl := repair.New(lay, heat, repair.Config{
		MaxCopies:   rc.MaxCopies,
		PromoteHeat: rc.PromoteHeat,
		ReclaimHeat: rc.ReclaimHeat,
		ScanRate:    rc.ScanRate,
	}, e.sh.CopyOK, e.sh.Up, func(tape, pos int) bool {
		return e.sh.DeadCopy == nil || !e.sh.DeadCopy(tape, pos)
	})
	e.rep = &repairState{pl: pl, heat: heat}
}

// idleRepairOp runs background repair on drive d when it would otherwise
// go idle: one job step (a surviving-copy read or a new-copy write) per
// operation, hottest block first, preceded by a bounded promote/reclaim
// scan. Returns whether an operation was issued.
func (e *engine) idleRepairOp(d int) bool {
	rp := e.rep
	if rp == nil {
		return false
	}
	e.healthEvacScan()
	rp.pl.Scan(e.now, e.reclaimCopy)
	for _, j := range rp.pl.Ranked(e.now) {
		if j.Busy {
			// Another drive is executing this job's current step.
			continue
		}
		switch j.Step {
		case repair.StepRead:
			if e.issueRepairRead(d, j) {
				return true
			}
		case repair.StepWrite:
			if e.issueRepairWrite(d, j) {
				return true
			}
		}
	}
	return false
}

// idleSwitch moves drive d to the given tape for a background step (a
// repair job or a scrub pass; sink receives the drive time on the failed
// path, so each subsystem is charged for its own mounts). Idle switches
// are real mounts: they emit EventSwitch so traces replay on the deck. A
// tape already dead at load is discovered exactly as in
// resolveFaultySwitch -- the drive ends the operation empty and the tape
// is masked at settle -- but without any injector draw, so the fault
// stream is unchanged. Returns the post-switch virtual time and whether
// the mount succeeded.
func (e *engine) idleSwitch(d, tape int, sink *float64) (float64, bool) {
	dr := &e.drives[d]
	st := dr.st
	sw := e.sh.Costs.SwitchCost(st.Mounted, st.Head, tape)
	vt := e.now + sw
	if e.sh.Busy != nil {
		if st.Mounted >= 0 {
			e.sh.Busy[st.Mounted] = false
		}
		e.sh.Busy[tape] = true
	}
	st.Mounted, st.Head = tape, 0
	e.noteMount(tape)
	if e.flt != nil && e.flt.inj.TapeFailed(tape, e.now) {
		*sink += sw
		dr.failTape, dr.loadFail = tape, true
		e.beginOp(d, vt, false)
		return vt, false
	}
	e.switchSec += sw
	if vt > e.warmupEnd {
		e.switches++
	}
	e.push(Event{Kind: EventSwitch, Time: vt, Tape: tape, Pos: -1, Seconds: sw})
	return vt, true
}

// issueRepairRead runs job j's read step on drive d: mount a surviving
// copy's tape if needed and read the copy into the drive buffer. The step
// completes at issue resolution (no injector draws), so the job advances
// to its write step immediately; interruption before the write resumes
// here with the read intact.
func (e *engine) issueRepairRead(d int, j *repair.Job) bool {
	dr := &e.drives[d]
	st := dr.st
	rp := e.rep
	src, status := rp.pl.PickSource(j, func(c layout.Replica) bool {
		return st.Available(c.Tape) && e.sh.CopyOK(c)
	})
	switch status {
	case repair.SrcDone, repair.SrcGone:
		rp.pl.Cancel(j)
		return false
	case repair.SrcBusy:
		return false
	}
	vt := e.now
	if src.Tape != st.Mounted {
		var ok bool
		if vt, ok = e.idleSwitch(d, src.Tape, &rp.repairSec); !ok {
			return true // the failed load occupied the drive
		}
	}
	if e.flt != nil && e.flt.inj.TapeFailed(src.Tape, vt) {
		// The source tape died while mounted: the locate runs into the
		// failure; the job resumes from the read step with another copy.
		loc, _, _ := e.sh.Costs.ServeOneParts(st.Head, src.Pos)
		rp.repairSec += loc
		dr.failTape = src.Tape
		e.beginOp(d, vt+loc, false)
		return true
	}
	if e.flt != nil && e.flt.inj.LatentActive(src.Tape, src.Pos, vt) {
		// The verification behind the repair read finds a latent error on
		// the chosen source: nothing is buffered, the copy escalates to
		// dead, and the job resumes from the read step with another copy.
		loc, rd, newHead := e.sh.Costs.ServeOneParts(st.Head, src.Pos)
		vt += loc + rd
		rp.repairSec += loc + rd
		st.Head = newHead
		// The failed attempt is a request-less fault record: the job ID
		// would collide with request IDs in the fault ledger, and the
		// discovery itself is recorded by the latent-found that follows.
		e.push(Event{Kind: EventFault, Time: vt, Tape: src.Tape, Pos: src.Pos,
			Seconds: loc + rd})
		e.noteLatentFound(src.Tape, src.Pos, vt, false)
		e.beginOp(d, vt, false)
		return true
	}
	loc, rd, newHead := e.sh.Costs.ServeOneParts(st.Head, src.Pos)
	vt += loc + rd
	rp.repairSec += loc + rd
	st.Head = newHead
	rp.pl.FinishRead(j)
	e.push(Event{Kind: EventRepairRead, Time: vt, Tape: src.Tape, Pos: src.Pos,
		Seconds: loc + rd, Request: j.ID})
	j.Busy = true
	dr.repairRead = j
	e.beginOp(d, vt, false)
	return true
}

// issueRepairWrite runs job j's write step on drive d: reserve the
// destination (most spare capacity), mount it if needed, and write the
// new copy. The copy is minted only at settle (commitRepair), so other
// drives never see it before the write lands; a destination that dies
// first aborts the commit and the job keeps its completed read.
func (e *engine) issueRepairWrite(d int, j *repair.Job) bool {
	dr := &e.drives[d]
	st := dr.st
	rp := e.rep
	if rp.pl.EvacMoot(j) {
		// The copy this evacuation was to vacate died on its own; plain
		// repair (the rotating scan) owns the block now.
		rp.pl.Cancel(j)
		return false
	}
	if j.Kind == repair.KindRepair && rp.pl.LiveCopies(j.Block) >= j.Want {
		rp.pl.Cancel(j)
		return false
	}
	dst, ok := rp.pl.ChooseDest(j, st.Available)
	if !ok {
		if !rp.pl.Feasible(j) {
			// No up tape can take the copy at all (not just a busy-tape
			// stall): drop the job; the rotating scan re-enqueues the
			// block if reclamation frees capacity.
			rp.pl.Cancel(j)
		}
		return false
	}
	vt := e.now
	if dst.Tape != st.Mounted {
		if vt, ok = e.idleSwitch(d, dst.Tape, &rp.repairSec); !ok {
			rp.pl.Abort(j)
			return true
		}
	}
	if e.flt != nil && e.flt.inj.TapeFailed(dst.Tape, vt) {
		loc, _, _ := e.sh.Costs.ServeOneParts(st.Head, dst.Pos)
		rp.repairSec += loc
		rp.pl.Abort(j)
		dr.failTape = dst.Tape
		e.beginOp(d, vt+loc, false)
		return true
	}
	loc, wr, newHead := e.sh.Costs.ServeOneParts(st.Head, dst.Pos)
	vt += loc + wr
	rp.repairSec += loc + wr
	st.Head = newHead
	e.push(Event{Kind: EventRepairWrite, Time: vt, Tape: dst.Tape, Pos: dst.Pos,
		Seconds: loc + wr, Request: j.ID})
	j.Busy = true
	dr.repairJob = j
	e.beginOp(d, vt, false)
	return true
}

// commitRepair mints job j's new copy at settle time. If the destination
// tape died between issue and settle nothing is minted: the reservation
// is released and the job stays at its write step (monotone -- the read
// is never repeated, the copy is added exactly once or not at all). An
// evacuation job additionally drops the suspect-tape copy it replaced,
// strictly after the mint, so the block's availability never dips.
func (e *engine) commitRepair(j *repair.Job) {
	rp := e.rep
	if !e.sh.Up(j.Dst.Tape) {
		rp.pl.Abort(j)
		return
	}
	c, err := rp.pl.Commit(j, e.now)
	if err != nil {
		rp.pl.Abort(j)
		return
	}
	e.notifyCopyAdded(j.Block, c)
	if j.Kind == repair.KindEvacuate {
		if h := e.hlt; h != nil && !e.evacRemove(j.Block, j.From) {
			h.pendingRemove = append(h.pendingRemove, pendingEvac{j.Block, j.From})
		}
		return
	}
	rp.repaired++
	rp.mttr.Add(e.now - j.At)
}

// reclaimCopy removes a cold excess copy nominated by the planner scan.
// Copies any in-flight or scheduled request still targets are vetoed;
// reclamation is metadata-only (the copy simply leaves the tables), so it
// consumes no drive time.
func (e *engine) reclaimCopy(b layout.BlockID, c layout.Replica) bool {
	if e.blockInUse(b) {
		return false
	}
	if err := e.sh.Layout.RemoveCopy(b, c.Tape); err != nil {
		return false
	}
	e.rep.reclaimed++
	e.push(Event{Kind: EventReclaim, Time: e.now, Tape: c.Tape, Pos: c.Pos})
	e.notifyCopyRemoved(b, c)
	return true
}

// blockInUse reports whether any drive holds a request for block b in an
// active sweep, in flight, or in a fault deferral.
func (e *engine) blockInUse(b layout.BlockID) bool {
	for i := range e.drives {
		dr := &e.drives[i]
		if dr.inFlight != nil && dr.inFlight.Block == b {
			return true
		}
		if dr.faulted != nil && dr.faulted.Block == b {
			return true
		}
		for _, r := range dr.abort {
			if r.Block == b {
				return true
			}
		}
		if dr.st.Active != nil {
			for _, r := range dr.st.Active.Requests() {
				if r.Block == b {
					return true
				}
			}
		}
	}
	return false
}

// notifyCopyAdded tells every scheduler that implements sched.CopyObserver
// about a minted copy, so incremental state (the envelope) can take it up
// without waiting for the next major reschedule.
func (e *engine) notifyCopyAdded(b layout.BlockID, c layout.Replica) {
	for i := range e.drives {
		dr := &e.drives[i]
		if co, ok := dr.schd.(sched.CopyObserver); ok {
			co.OnCopyAdded(dr.st, b, c)
		}
	}
}

// notifyCopyRemoved mirrors notifyCopyAdded for reclaimed copies.
func (e *engine) notifyCopyRemoved(b layout.BlockID, c layout.Replica) {
	for i := range e.drives {
		dr := &e.drives[i]
		if co, ok := dr.schd.(sched.CopyObserver); ok {
			co.OnCopyRemoved(dr.st, b, c)
		}
	}
}

// repairResult folds the repair metrics into the result.
func (e *engine) repairResult(res *Result) {
	rp := e.rep
	if rp == nil {
		return
	}
	res.RepairJobs = rp.pl.Created()
	res.RepairedCopies = rp.repaired
	res.ReclaimedCopies = rp.reclaimed
	res.RepairSeconds = rp.repairSec
	res.MeanTimeToRepairSec = rp.mttr.Mean()
}
