package sim

import (
	"testing"

	"tapejuke/internal/core"
	"tapejuke/internal/faults"
)

// TestUpTapeCounter pins the O(1) up-tape counter against the down mask it
// summarizes: markTapeDown transitions keep upTapes equal to the number of
// unmasked tapes, double-marking is idempotent, and anyTapeUp flips exactly
// when the last tape goes down.
func TestUpTapeCounter(t *testing.T) {
	cfg := faultCfg(1, faults.Config{TapeMTBFSec: 1})
	e, err := newEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	countUp := func() int {
		up := 0
		for _, d := range e.flt.down {
			if !d {
				up++
			}
		}
		return up
	}
	if e.flt.upTapes != cfg.Tapes || countUp() != cfg.Tapes {
		t.Fatalf("fresh engine: upTapes = %d, mask says %d, want %d", e.flt.upTapes, countUp(), cfg.Tapes)
	}
	for tape := 0; tape < cfg.Tapes; tape++ {
		e.markTapeDown(tape)
		e.markTapeDown(tape) // second mark must not double-count
		if want := countUp(); e.flt.upTapes != want {
			t.Fatalf("after downing tape %d: upTapes = %d, mask says %d", tape, e.flt.upTapes, want)
		}
		if want := tape < cfg.Tapes-1; e.flt.anyTapeUp() != want {
			t.Fatalf("after downing tape %d: anyTapeUp = %v, want %v", tape, e.flt.anyTapeUp(), want)
		}
	}
}

// faultOverloadCase runs one combined faults+overload configuration and
// checks the joint conservation identity. Every minted arrival must be
// accounted for by exactly one of: completion, deadline expiry, admission
// shedding, fault-driven abandonment, or still-outstanding at the horizon.
func faultOverloadCase(t *testing.T, seed int64, transient, switchP, badBlocks byte, tapeFail bool, nr byte,
	hotTTL, coldTTL float64, policy AdmitPolicy, maxQueue int) {
	t.Helper()
	fc := faults.Config{
		ReadTransientProb: float64(transient%50) / 100,
		SwitchFailProb:    float64(switchP%50) / 100,
		BadBlocksPerTape:  float64(badBlocks % 8),
	}
	if tapeFail {
		fc.TapeMTBFSec = 2_000_000
	}
	cfg := Config{
		BlockMB: 16, TapeCapMB: 7168, Tapes: 10, HotPercent: 100,
		ReadHotPercent: 100, DataBlocks: 1000, Replicas: int(nr % 3),
		QueueLength: 0, MeanInterarrival: 150,
		Scheduler: core.NewEnvelope(core.MaxBandwidth),
		Horizon:   150_000, Seed: seed,
		Faults:    fc,
		Deadlines: DeadlineConfig{HotTTL: hotTTL, ColdTTL: coldTTL},
		Admission: AdmissionConfig{MaxQueue: maxQueue, Policy: policy},
	}
	if err := cfg.Validate(); err != nil {
		t.Skip(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Outstanding is bounded by the admission queue when bounded, otherwise
	// by everything that could have arrived.
	bound := res.TotalArrivals
	if policy != AdmitNone {
		// In-service requests ride on top of the pending-queue bound; the
		// drive count is a safe allowance.
		bound = int64(maxQueue + 4)
	}
	checkOverloadConservation(t, res, bound)
	// AdmitShed also rejects when there is no pending victim to drop, so
	// only AdmitNone guarantees zero rejections.
	if res.Rejected > 0 && policy == AdmitNone {
		t.Errorf("policy %v rejected %d arrivals", policy, res.Rejected)
	}
	if res.Shed > 0 && policy != AdmitShed {
		t.Errorf("policy %v shed %d requests", policy, res.Shed)
	}
	if res.Expired > 0 && hotTTL == 0 && coldTTL == 0 {
		t.Errorf("deadlines disabled but %d requests expired", res.Expired)
	}
	// Transient read and switch failures escalate to dead copies and downed
	// tapes when retries exhaust, so only a fully fault-free config
	// guarantees zero unserviceable.
	if res.Unserviceable > 0 && !tapeFail && fc.BadBlocksPerTape == 0 &&
		fc.ReadTransientProb == 0 && fc.SwitchFailProb == 0 {
		t.Errorf("no faults configured but %d requests unserviceable", res.Unserviceable)
	}
}

// TestFaultOverloadConservation runs a deterministic spread of combined
// fault x overload configurations; the fuzz target below explores further.
func TestFaultOverloadConservation(t *testing.T) {
	cases := []struct {
		name              string
		transient, badBlk byte
		tapeFail          bool
		hotTTL            float64
		policy            AdmitPolicy
		maxQueue          int
	}{
		{"deadlines+tapefail", 10, 0, true, 1200, AdmitNone, 0},
		{"shed+badblocks", 0, 7, false, 0, AdmitShed, 30},
		{"reject+transient+deadlines", 25, 0, false, 900, AdmitReject, 25},
		{"everything", 15, 5, true, 1500, AdmitShed, 40},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faultOverloadCase(t, 11, tc.transient, 0, tc.badBlk, tc.tapeFail, 2,
				tc.hotTTL, tc.hotTTL/2, tc.policy, tc.maxQueue)
		})
	}
}

// FuzzFaultOverloadConservation fuzzes the combined conservation identity
// with fault injection and deadline/admission relief active at once: the
// two extensions must not double-count or lose a request between them
// (e.g. a request expiring while its faulted read is in limbo).
func FuzzFaultOverloadConservation(f *testing.F) {
	f.Add(int64(1), byte(10), byte(5), byte(3), true, byte(1), 1200.0, 600.0, byte(1), 30)
	f.Add(int64(2), byte(0), byte(0), byte(9), false, byte(2), 0.0, 800.0, byte(2), 20)
	f.Add(int64(3), byte(40), byte(20), byte(0), true, byte(0), 500.0, 0.0, byte(0), 0)
	f.Add(int64(4), byte(7), byte(7), byte(7), true, byte(2), 2000.0, 2000.0, byte(2), 60)
	f.Fuzz(func(t *testing.T, seed int64, transient, switchP, badBlocks byte, tapeFail bool, nr byte,
		hotTTL, coldTTL float64, policy byte, maxQueue int) {
		if hotTTL < 0 || coldTTL < 0 || hotTTL > 1e6 || coldTTL > 1e6 {
			t.Skip("TTL out of modeled range")
		}
		p := AdmitPolicy(policy % 3)
		if p != AdmitNone && (maxQueue < 1 || maxQueue > 500) {
			t.Skip("queue bound out of modeled range")
		}
		if p == AdmitNone {
			maxQueue = 0
		}
		faultOverloadCase(t, seed, transient, switchP, badBlocks, tapeFail, nr, hotTTL, coldTTL, p, maxQueue)
	})
}
