package sim

import (
	"math/rand"

	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
	"tapejuke/internal/stats"
	"tapejuke/internal/tapemodel"
)

// Session owns simulation state that is expensive to rebuild and safe to
// carry across runs: the immutable data layout and dense cost table (cached
// by configuration key, so replications and parameter sweeps that share
// them stop re-paying construction), and the per-run scratch -- the shared
// scheduling state with its sweep pool, the request free list, the drive
// records, the percentile reservoir, and the event-calendar storage --
// which is reset rather than reallocated. A Session is not safe for
// concurrent use: create one per worker goroutine.
//
// Session.Run is result-identical to the package-level Run for every
// configuration; the session tests pin this.
type Session struct {
	layKey  layout.Config
	lay     *layout.Layout
	costKey costKey
	costs   *sched.CostModel

	sh           *sched.Shared
	drives       []drive
	reqFree      []*sched.Request
	respSample   *stats.Reservoir
	readsPerTape []int64
	evq          eventQueue

	genRand *rand.Rand // workload generator stream, reseeded per run
	arrRand *rand.Rand // Poisson arrival stream, reseeded per run
}

// costKey identifies a cached cost model. The profile is compared by
// interface identity, which is why Runner pins one Positioner instance per
// profile name; a fresh instance per run would never hit.
type costKey struct {
	prof      tapemodel.Positioner
	blockMB   float64
	maxBlocks int
}

// NewSession creates an empty session.
func NewSession() *Session { return &Session{} }

// Run executes one simulation like the package-level Run, reusing the
// session's caches and scratch.
func (s *Session) Run(cfg Config) (*Result, error) {
	e, err := newEngine(cfg, s)
	if err != nil {
		return nil, err
	}
	res, rerr := e.run()
	s.reclaim(e)
	return res, rerr
}

// cachedLayout returns the layout for the given configuration, building and
// caching it on a key change. layout.Layout is immutable after Build (the
// fault and write extensions keep their masks and delta logs outside it),
// so sharing one instance across runs is safe.
func (s *Session) cachedLayout(key layout.Config) (*layout.Layout, error) {
	if s.lay != nil && s.layKey == key {
		return s.lay, nil
	}
	lay, err := layout.Build(key)
	if err != nil {
		return nil, err
	}
	s.lay, s.layKey = lay, key
	return lay, nil
}

// cachedCosts returns a cost model with its dense table enabled, cached by
// (profile, block size, table size). Profiles of unknown dynamic type are
// not cached: the key compares with ==, which would panic on an
// uncomparable Positioner implementation.
func (s *Session) cachedCosts(prof tapemodel.Positioner, blockMB float64, maxBlocks int) *sched.CostModel {
	cacheable := false
	switch prof.(type) {
	case *tapemodel.Profile, *tapemodel.Serpentine:
		cacheable = true
	}
	if cacheable {
		key := costKey{prof, blockMB, maxBlocks}
		if s.costs != nil && s.costKey == key {
			return s.costs
		}
		costs := newCostModel(prof, blockMB, maxBlocks)
		s.costs, s.costKey = costs, key
		return costs
	}
	return newCostModel(prof, blockMB, maxBlocks)
}

// genRng returns the session's recycled workload generator stream,
// reseeded in place -- Rand.Seed(s) reproduces exactly the stream of
// rand.New(rand.NewSource(s)), so reuse cannot change results. Nil-safe: a
// nil session returns a fresh generator, which is what the one-shot Run
// path uses.
func (s *Session) genRng(seed int64) *rand.Rand {
	if s == nil {
		return rand.New(rand.NewSource(seed))
	}
	return reseed(&s.genRand, seed)
}

// arrRng is genRng for the Poisson arrival stream.
func (s *Session) arrRng(seed int64) *rand.Rand {
	if s == nil {
		return rand.New(rand.NewSource(seed))
	}
	return reseed(&s.arrRand, seed)
}

func reseed(slot **rand.Rand, seed int64) *rand.Rand {
	if *slot == nil {
		*slot = rand.New(rand.NewSource(seed))
	} else {
		(*slot).Seed(seed)
	}
	return *slot
}

// reclaim harvests the finished engine's recyclable storage back into the
// session. Live requests are returned to the free list only when neither
// the fault nor the overload extension is armed: those keep extra request
// references (fault deferrals, the deadline calendar) whose overlap with
// the pending list would risk double-freeing; their runs just let the
// stragglers go to the garbage collector.
func (s *Session) reclaim(e *engine) {
	if e == nil {
		return
	}
	free := e.reqFree
	if e.flt == nil && e.ovl == nil {
		for i, r := range e.sh.Pending {
			if r != nil {
				free = append(free, r)
			}
			e.sh.Pending[i] = nil
		}
		e.sh.Pending = e.sh.Pending[:0]
		for i := range e.drives {
			dr := &e.drives[i]
			if dr.inFlight != nil {
				free = append(free, dr.inFlight)
				dr.inFlight = nil
			}
			if st := dr.st; st != nil && st.Active != nil {
				for r := st.Active.Pop(); r != nil; r = st.Active.Pop() {
					free = append(free, r)
				}
				e.sh.ReleaseSweep(st.Active)
				st.Active = nil
			}
		}
	}
	s.reqFree = free
	s.sh = e.sh
	s.drives = e.drives[:0]
	s.respSample = e.respSample
	s.readsPerTape = e.readsPerTape
	s.evq = e.evq[:0]
}
