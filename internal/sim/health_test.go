package sim

import (
	"errors"
	"reflect"
	"testing"

	"tapejuke/internal/core"
	"tapejuke/internal/faults"
	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
)

// openHealthCfg is an idle-heavy open-model replicated workload with latent
// errors developing on tape: the patrol window the health extension needs,
// and the silent corruption it exists to catch.
func openHealthCfg(nr int) Config {
	return Config{
		BlockMB: 16, TapeCapMB: 7168, Tapes: 10, HotPercent: 100,
		ReadHotPercent: 100, DataBlocks: 1000, Replicas: nr,
		QueueLength: 0, MeanInterarrival: 600,
		Scheduler: core.NewEnvelope(core.MaxBandwidth),
		Horizon:   2_000_000, Seed: 7,
		Faults: faults.Config{
			TapeMTBFSec: 3_000_000, BadBlocksPerTape: 1, BadBlockRangeLen: 4,
			LatentErrorsPerTape: 2, LatentMeanOnsetSec: 400_000,
		},
		Repair: RepairConfig{Enable: true},
	}
}

// TestHealthConfigValidation covers the typed errors of the health surface
// (and the repair fields feeding it) field by field.
func TestHealthConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"negative repair half-life", func(c *Config) { c.Repair.HalfLifeSec = -1 }, "Repair.HalfLifeSec"},
		{"negative promote heat", func(c *Config) { c.Repair.PromoteHeat = -1 }, "Repair.PromoteHeat"},
		{"negative reclaim heat", func(c *Config) { c.Repair.ReclaimHeat = -2 }, "Repair.ReclaimHeat"},
		{"reclaim above promote", func(c *Config) { c.Repair.PromoteHeat = 1; c.Repair.ReclaimHeat = 2 }, "Repair.ReclaimHeat"},
		{"max copies beyond tapes", func(c *Config) { c.Repair.MaxCopies = 99 }, "Repair.MaxCopies"},
		{"negative scan rate", func(c *Config) { c.Repair.ScanRate = -1 }, "Repair.ScanRate"},
		{"negative scrub rate", func(c *Config) { c.Health.ScrubRate = -1 }, "Health.ScrubRate"},
		{"negative error half-life", func(c *Config) { c.Health.ErrHalfLifeSec = -1 }, "Health.ErrHalfLifeSec"},
		{"negative wear weight", func(c *Config) { c.Health.WearWeight = -0.5 }, "Health.WearWeight"},
		{"negative suspect score", func(c *Config) { c.Health.SuspectScore = -3 }, "Health.SuspectScore"},
		{"negative fence score", func(c *Config) { c.Health.DriveFenceScore = -1 }, "Health.DriveFenceScore"},
		{"negative maintenance", func(c *Config) { c.Health.MaintenanceSec = -60 }, "Health.MaintenanceSec"},
		{"evacuate without repair", func(c *Config) {
			c.Repair.Enable = false
			c.Health.Evacuate = true
			c.Health.SuspectScore = 1
		}, "Health.Evacuate"},
		{"evacuate without suspect score", func(c *Config) { c.Health.Evacuate = true }, "Health.Evacuate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := quickCfg(sched.NewDynamic(sched.MaxBandwidth))
			cfg.Repair.Enable = true
			cfg.Health.Enable = true
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("bad config accepted")
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v is not a *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Errorf("error names field %q, want %q (%v)", ce.Field, tc.field, err)
			}
		})
	}

	// A fully armed valid configuration passes; the write extension does not
	// combine with health.
	cfg := quickCfg(sched.NewDynamic(sched.MaxBandwidth))
	cfg.Repair.Enable = true
	cfg.Health = HealthConfig{Enable: true, ScrubRate: 64, ErrHalfLifeSec: 50_000,
		WearWeight: 0.01, SuspectScore: 3, Evacuate: true, DriveFenceScore: 10, MaintenanceSec: 1800}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid health config rejected: %v", err)
	}
	cfg.WriteMeanInterarrival = 500
	if err := cfg.Validate(); err == nil {
		t.Error("health accepted alongside the write extension")
	}
}

// TestHealthInertEventStream pins the inertness guarantee: a health
// configuration armed but unfireable -- no scrubbing, astronomical suspicion
// and fencing thresholds -- produces the exact event stream and metrics of a
// health-free run over a fully faulty workload (latent errors included), for
// both a closed and an open workload. Scoring runs on every mount and fault
// along the way; it must consume no randomness and change nothing.
func TestHealthInertEventStream(t *testing.T) {
	arm := func(c Config) Config {
		c.Health = HealthConfig{
			Enable: true, ScrubRate: 0, ErrHalfLifeSec: 50_000, WearWeight: 1e-9,
			SuspectScore: 1e18, Evacuate: true, DriveFenceScore: 1e18, MaintenanceSec: 60,
		}
		return c
	}
	cfgs := map[string]func() Config{
		"open": func() Config { return openHealthCfg(2) },
		"closed": func() Config {
			c := quickCfg(core.NewEnvelope(core.MaxBandwidth))
			c.Replicas = 2
			c.Faults = faults.Config{
				ReadTransientProb: 0.02, SwitchFailProb: 0.01, BadBlocksPerTape: 1,
				TapeMTBFSec: 2_000_000, DriveMTBFSec: 1_000_000,
				LatentErrorsPerTape: 2, LatentMeanOnsetSec: 100_000,
			}
			c.Repair = RepairConfig{Enable: true}
			return c
		},
	}
	for name, mk := range cfgs {
		t.Run(name, func(t *testing.T) {
			baseEvs, baseRes := collectEvents(t, mk())
			evs, res := collectEvents(t, arm(mk()))

			if len(evs) != len(baseEvs) {
				t.Fatalf("event count diverged: %d with armed health, %d without", len(evs), len(baseEvs))
			}
			for i := range evs {
				if evs[i] != baseEvs[i] {
					t.Fatalf("event %d diverged: %+v vs %+v", i, evs[i], baseEvs[i])
				}
			}
			if res.Completed != baseRes.Completed || res.ThroughputKBps != baseRes.ThroughputKBps ||
				res.Availability != baseRes.Availability || res.IdleSeconds != baseRes.IdleSeconds ||
				res.LatentErrorsFound != baseRes.LatentErrorsFound ||
				res.MeanTimeToDetectSec != baseRes.MeanTimeToDetectSec {
				t.Errorf("metrics diverged under armed health:\n%+v\n%+v", res, baseRes)
			}
			if res.ScrubbedMB != 0 || res.LatentFoundByScrub != 0 || res.SuspectTapes != 0 ||
				res.EvacuationJobs != 0 || res.EvacuatedCopies != 0 || res.FencedDrives != 0 {
				t.Errorf("unfireable health config fired: %+v", res)
			}
		})
	}
}

// TestHealthScrubImprovesDetection is the tentpole acceptance experiment on
// a pinned long-horizon scenario: adding scrubbing to repair finds latent
// errors proactively and strictly lowers the mean time to detect, and
// adding evacuation on top never costs availability versus repair alone.
func TestHealthScrubImprovesDetection(t *testing.T) {
	repairOnly, err := Run(openHealthCfg(2))
	if err != nil {
		t.Fatal(err)
	}

	scrub := openHealthCfg(2)
	scrub.Health = HealthConfig{Enable: true, ScrubRate: 64}
	withScrub, err := Run(scrub)
	if err != nil {
		t.Fatal(err)
	}

	evac := openHealthCfg(2)
	evac.Health = HealthConfig{Enable: true, ScrubRate: 64, SuspectScore: 3, Evacuate: true}
	withEvac, err := Run(evac)
	if err != nil {
		t.Fatal(err)
	}

	if withScrub.LatentFoundByScrub == 0 {
		t.Fatal("scrub found no latent errors in an idle-heavy faulty run")
	}
	if withScrub.ScrubbedMB <= 0 || withScrub.ScrubSeconds <= 0 {
		t.Errorf("scrub ran nothing: %v MB in %v s", withScrub.ScrubbedMB, withScrub.ScrubSeconds)
	}
	if withScrub.MeanTimeToDetectSec >= repairOnly.MeanTimeToDetectSec {
		t.Errorf("MTTD %v with scrub, %v without; want strict improvement",
			withScrub.MeanTimeToDetectSec, repairOnly.MeanTimeToDetectSec)
	}
	if withScrub.Availability < repairOnly.Availability {
		t.Errorf("availability %v with scrub, %v repair-only; scrubbing must not cost availability",
			withScrub.Availability, repairOnly.Availability)
	}
	if withEvac.Availability < repairOnly.Availability {
		t.Errorf("availability %v with scrub+evacuation, %v repair-only; want no worse",
			withEvac.Availability, repairOnly.Availability)
	}
	if withEvac.MeanTimeToDetectSec >= repairOnly.MeanTimeToDetectSec {
		t.Errorf("MTTD %v with scrub+evacuation, %v repair-only; want strict improvement",
			withEvac.MeanTimeToDetectSec, repairOnly.MeanTimeToDetectSec)
	}
	t.Logf("availability: repair-only %.4f, +scrub %.4f, +evac %.4f; MTTD %.0f -> %.0f s (%d/%d latents by scrub)",
		repairOnly.Availability, withScrub.Availability, withEvac.Availability,
		repairOnly.MeanTimeToDetectSec, withScrub.MeanTimeToDetectSec,
		withScrub.LatentFoundByScrub, withScrub.LatentErrorsFound)
}

// TestHealthDeterminism: identical configurations reproduce identical
// results, and turning scrubbing on leaves the injected fault universe
// untouched (scrub consumes no injector randomness).
func TestHealthDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := openHealthCfg(2)
		cfg.Health = HealthConfig{Enable: true, ScrubRate: 64, SuspectScore: 3, Evacuate: true}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("health runs diverged:\n%+v\n%+v", a, b)
	}

	// With only construction-time fault classes (failure times and latent
	// placement, all drawn before the run starts) the fault universe is
	// fully pinned, so a scrub-on run must see the same injected faults and
	// tape failures as a scrub-off run -- only detection timing may differ.
	mk := func(scrub bool) *Result {
		cfg := openHealthCfg(2)
		cfg.Faults = faults.Config{TapeMTBFSec: 3_000_000, LatentErrorsPerTape: 2}
		if scrub {
			cfg.Health = HealthConfig{Enable: true, ScrubRate: 64}
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	on, off := mk(true), mk(false)
	if on.LatentErrorsInjected != off.LatentErrorsInjected {
		t.Errorf("scrub changed the injected latent count: %d vs %d",
			on.LatentErrorsInjected, off.LatentErrorsInjected)
	}
	if on.TapeFailures != off.TapeFailures {
		t.Errorf("scrub changed the tape failure count: %d vs %d", on.TapeFailures, off.TapeFailures)
	}
	if on.LatentErrorsFound < off.LatentErrorsFound {
		t.Errorf("scrub-on found fewer latents (%d) than scrub-off (%d)",
			on.LatentErrorsFound, off.LatentErrorsFound)
	}
}

// TestHealthEvacuationDrainsSuspectTape: on a small replicated layout with
// no-decay scoring, latent detections push a tape over the suspicion
// threshold and evacuation drains every live copy off it through the repair
// machinery, mint-before-remove throughout.
func TestHealthEvacuationDrainsSuspectTape(t *testing.T) {
	cfg := Config{
		BlockMB: 16, TapeCapMB: 7168, Tapes: 6, HotPercent: 100,
		ReadHotPercent: 100, DataBlocks: 150, Replicas: 2,
		QueueLength: 0, MeanInterarrival: 900,
		Scheduler: core.NewEnvelope(core.MaxBandwidth),
		Horizon:   3_000_000, Seed: 5,
		Faults: faults.Config{LatentErrorsPerTape: 3, LatentMeanOnsetSec: 300_000},
		Repair: RepairConfig{Enable: true},
		Health: HealthConfig{Enable: true, ScrubRate: 128,
			ErrHalfLifeSec: 1e12, SuspectScore: 2, Evacuate: true},
	}
	e, err := newEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SuspectTapes == 0 {
		t.Fatal("no tape crossed the suspicion threshold")
	}
	if res.EvacuatedTapes == 0 {
		t.Fatalf("no suspect tape fully evacuated (%d suspects, %d copies moved)",
			res.SuspectTapes, res.EvacuatedCopies)
	}
	if res.EvacuatedCopies == 0 {
		t.Error("evacuation moved no copies")
	}
	if err := e.sh.Layout.Validate(); err != nil {
		t.Errorf("layout invalid after evacuation run: %v", err)
	}
	if n := e.rep.pl.ReservedCount(); n != 0 {
		t.Errorf("%d destination reservations leaked", n)
	}
	// An evacuated tape holds no live copy: everything left on it is dead.
	for tp, done := range e.hlt.evacuated {
		if !done {
			continue
		}
		for _, s := range e.sh.Layout.TapeContents(tp) {
			if e.sh.CopyOK(layout.Replica{Tape: tp, Pos: s.Pos}) {
				t.Errorf("evacuated tape %d still holds a live copy of block %d at pos %d",
					tp, s.Block, s.Pos)
			}
		}
	}
}

// TestHealthDriveFence: a transient-error-heavy workload with a low fence
// threshold takes the drive down for maintenance and brings it back -- the
// run keeps completing requests on the other drive and afterwards.
func TestHealthDriveFence(t *testing.T) {
	cfg := Config{
		BlockMB: 16, TapeCapMB: 7168, Tapes: 10, HotPercent: 100,
		ReadHotPercent: 100, DataBlocks: 1000, Replicas: 1, Drives: 2,
		Scheduler:        core.NewEnvelope(core.MaxBandwidth),
		SchedulerFactory: func() sched.Scheduler { return core.NewEnvelope(core.MaxBandwidth) },
		QueueLength:      0, MeanInterarrival: 300,
		Horizon: 1_000_000, Seed: 3,
		Faults: faults.Config{ReadTransientProb: 0.05},
		Health: HealthConfig{Enable: true, ErrHalfLifeSec: 1e12, DriveFenceScore: 20, MaintenanceSec: 7200},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FencedDrives == 0 {
		t.Fatalf("no drive fenced under %d transient faults", res.TransientFaults)
	}
	if res.Completed == 0 {
		t.Fatal("run completed nothing")
	}
	t.Logf("%d fences over %d transient faults, %d completed", res.FencedDrives, res.TransientFaults, res.Completed)
}
