package sim

import (
	"math"
	"reflect"
	"testing"

	"tapejuke/internal/core"
	"tapejuke/internal/faults"
	"tapejuke/internal/sched"
)

// faultCfg is a partially filled jukebox where every block is hot (so NR
// replicates everything) under an aggressive tape-failure regime.
func faultCfg(nr int, fc faults.Config) Config {
	return Config{
		BlockMB:        16,
		TapeCapMB:      7168,
		Tapes:          10,
		HotPercent:     100,
		ReadHotPercent: 100,
		DataBlocks:     1000,
		Replicas:       nr,
		QueueLength:    40,
		Scheduler:      core.NewEnvelope(core.MaxBandwidth),
		Horizon:        1_000_000,
		Seed:           7,
		Faults:         fc,
	}
}

// checkConservation asserts every arrival is accounted for: completed,
// abandoned as unserviceable, or still outstanding (at most the closed
// queue length).
func checkConservation(t *testing.T, res *Result, queue int64) {
	t.Helper()
	outstanding := res.TotalArrivals - res.TotalCompleted - res.Unserviceable
	if outstanding < 0 || outstanding > queue {
		t.Errorf("conservation broken: %d arrivals, %d completed, %d unserviceable (outstanding %d, queue %d)",
			res.TotalArrivals, res.TotalCompleted, res.Unserviceable, outstanding, queue)
	}
}

// TestNRSweepAvailability is the PR's acceptance experiment: at a fixed
// tape-failure rate, replication buys availability. Without replicas,
// requests for blocks on failed tapes are unserviceable; with NR >= 1 they
// complete via surviving copies.
func TestNRSweepAvailability(t *testing.T) {
	fc := faults.Config{TapeMTBFSec: 3_000_000}
	res := make([]*Result, 3)
	for nr := 0; nr <= 2; nr++ {
		r, err := Run(faultCfg(nr, fc))
		if err != nil {
			t.Fatalf("NR=%d: %v", nr, err)
		}
		res[nr] = r
		checkConservation(t, r, 40)
		if r.TapeFailures == 0 {
			t.Fatalf("NR=%d: no tape failures; the experiment is vacuous", nr)
		}
		t.Logf("NR=%d: %d tape failures, availability %.4f, %d unserviceable, %d rerouted",
			nr, r.TapeFailures, r.Availability, r.Unserviceable, r.Rerouted)
	}
	// No replicas: blocks on failed tapes are simply gone.
	if res[0].Unserviceable == 0 {
		t.Error("NR=0 with tape failures reported no unserviceable requests")
	}
	if res[0].Availability >= 1 {
		t.Errorf("NR=0 availability = %v, want < 1", res[0].Availability)
	}
	// One replica: requests on failed tapes reroute to the surviving copy.
	if res[1].Rerouted == 0 {
		t.Error("NR=1 never rerouted a faulted request to a replica")
	}
	upFrac := float64(10-res[1].TapeFailures) / 10
	if res[1].Availability <= upFrac {
		t.Errorf("NR=1 availability %.4f not above the fault-free-tape fraction %.2f",
			res[1].Availability, upFrac)
	}
	// Availability grows monotonically with the replica count.
	if res[1].Availability <= res[0].Availability {
		t.Errorf("availability NR=1 (%.4f) <= NR=0 (%.4f)", res[1].Availability, res[0].Availability)
	}
	if res[2].Availability < res[1].Availability {
		t.Errorf("availability NR=2 (%.4f) < NR=1 (%.4f)", res[2].Availability, res[1].Availability)
	}
}

// TestFaultDeterminism: identical seed and config give bit-identical
// results with every fault class enabled (run under -race in CI).
func TestFaultDeterminism(t *testing.T) {
	fc := faults.Config{
		ReadTransientProb: 0.05,
		BadBlocksPerTape:  1,
		TapeMTBFSec:       2_000_000,
		DriveMTBFSec:      300_000,
		SwitchFailProb:    0.05,
	}
	run := func() *Result {
		r, err := Run(faultCfg(1, fc))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault runs diverged:\n%+v\n%+v", a, b)
	}
	if a.TransientFaults == 0 || a.Retries == 0 {
		t.Errorf("expected transient faults and retries, got %+v", a)
	}
}

// TestTransientRetriesRecover: transient errors with a generous retry
// budget cost time but lose nothing; every request still completes.
func TestTransientRetriesRecover(t *testing.T) {
	fc := faults.Config{
		ReadTransientProb: 0.1,
		Retry:             faults.RetryPolicy{MaxRetries: 12, BackoffSec: 30, BackoffFactor: 2},
	}
	res, err := Run(faultCfg(0, fc))
	if err != nil {
		t.Fatal(err)
	}
	if res.TransientFaults == 0 || res.Retries == 0 || res.FaultSeconds <= 0 {
		t.Fatalf("expected transient fault activity: %+v", res)
	}
	if res.Unserviceable != 0 {
		t.Errorf("transient-only run abandoned %d requests", res.Unserviceable)
	}
	if res.Availability != 1 {
		t.Errorf("availability = %v, want 1", res.Availability)
	}
	checkConservation(t, res, 40)
}

// TestRetryExhaustionEscalates: near-certain transient errors exhaust the
// retry budget, escalate copies to dead, and (without replicas) strand
// requests as unserviceable.
func TestRetryExhaustionEscalates(t *testing.T) {
	fc := faults.Config{
		ReadTransientProb: 0.95,
		Retry:             faults.RetryPolicy{MaxRetries: 1, BackoffSec: 5, BackoffFactor: 2},
	}
	cfg := faultCfg(0, fc)
	cfg.Horizon = 300_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PermanentFaults == 0 {
		t.Error("no escalations despite a 95% transient rate and 1 retry")
	}
	if res.Unserviceable == 0 {
		t.Error("escalated single-copy blocks were never abandoned")
	}
	checkConservation(t, res, 40)
}

// TestBadBlocksWithReplicas: pre-existing bad ranges kill copies; with a
// replica the affected blocks stay serviceable.
func TestBadBlocksWithReplicas(t *testing.T) {
	none, err := Run(faultCfg(0, faults.Config{BadBlocksPerTape: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if none.Unserviceable == 0 {
		t.Error("NR=0 with bad blocks abandoned nothing")
	}
	one, err := Run(faultCfg(1, faults.Config{BadBlocksPerTape: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if one.Availability <= none.Availability {
		t.Errorf("replication did not improve bad-block availability: %.4f vs %.4f",
			one.Availability, none.Availability)
	}
	checkConservation(t, none, 40)
	checkConservation(t, one, 40)
}

// TestDriveRepairAccounting: drive failures take the single drive down and
// the full time decomposition still covers the simulated span.
func TestDriveRepairAccounting(t *testing.T) {
	fc := faults.Config{DriveMTBFSec: 100_000, DriveRepairSec: 5_000, ReadTransientProb: 0.02}
	res, err := Run(faultCfg(0, fc))
	if err != nil {
		t.Fatal(err)
	}
	if res.DriveFailures == 0 || res.DriveRepairSeconds <= 0 {
		t.Fatalf("expected drive failures over 10 MTBFs: %+v", res)
	}
	total := res.LocateSeconds + res.ReadSeconds + res.SwitchSeconds +
		res.IdleSeconds + res.FaultSeconds + res.DriveRepairSeconds
	if math.Abs(total-res.SimSeconds) > 1e-6*res.SimSeconds {
		t.Errorf("time decomposition %v != sim time %v", total, res.SimSeconds)
	}
	checkConservation(t, res, 40)
}

// TestSwitchFaultsRetry: failed loads consume time and are retried.
func TestSwitchFaultsRetry(t *testing.T) {
	res, err := Run(faultCfg(0, faults.Config{SwitchFailProb: 0.2}))
	if err != nil {
		t.Fatal(err)
	}
	if res.SwitchFaults == 0 || res.FaultSeconds <= 0 {
		t.Fatalf("expected switch faults: %+v", res)
	}
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
	checkConservation(t, res, 40)
}

// TestFaultFreeRunHasCleanMetrics: with the fault model off, every fault
// metric is zero and availability is 1.
func TestFaultFreeRunHasCleanMetrics(t *testing.T) {
	res, err := Run(quickCfg(sched.NewDynamic(sched.MaxBandwidth)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 || res.TransientFaults != 0 || res.PermanentFaults != 0 ||
		res.SwitchFaults != 0 || res.TapeFailures != 0 || res.DriveFailures != 0 ||
		res.FaultSeconds != 0 || res.Unserviceable != 0 || res.Rerouted != 0 {
		t.Errorf("fault metrics nonzero in a fault-free run: %+v", res)
	}
	if res.Availability != 1 {
		t.Errorf("availability = %v, want 1", res.Availability)
	}
}

// TestOpenModelWithFaults: the Poisson workload abandons unserviceable
// arrivals instead of respawning them.
func TestOpenModelWithFaults(t *testing.T) {
	cfg := faultCfg(0, faults.Config{TapeMTBFSec: 1_500_000})
	cfg.QueueLength = 0
	cfg.MeanInterarrival = 200
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TapeFailures == 0 {
		t.Fatal("no tape failures; the run is vacuous")
	}
	if res.Unserviceable == 0 {
		t.Error("open model with dead tapes abandoned nothing")
	}
	// Open model: outstanding requests are unbounded but non-negative.
	if res.TotalCompleted+res.Unserviceable > res.TotalArrivals {
		t.Errorf("more dispositions than arrivals: %+v", res)
	}
}

// TestFaultEventsObserved: the observer sees the new event kinds and they
// arrive in time order.
func TestFaultEventsObserved(t *testing.T) {
	kinds := map[EventKind]int{}
	last := -1.0
	cfg := faultCfg(0, faults.Config{ReadTransientProb: 0.1, TapeMTBFSec: 1_000_000})
	cfg.Observer = ObserverFunc(func(ev Event) {
		if ev.Time < last {
			t.Fatalf("event stream out of order: %v after %v", ev.Time, last)
		}
		last = ev.Time
		kinds[ev.Kind]++
	})
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, k := range []EventKind{EventFault, EventTapeFail, EventUnserviceable} {
		if kinds[k] == 0 {
			t.Errorf("no %v events observed", k)
		}
	}
}

// FuzzFaultConservation drives short runs across the fault-parameter space
// and asserts the simulator neither errors, nor deadlocks, nor loses
// requests.
func FuzzFaultConservation(f *testing.F) {
	f.Add(int64(1), byte(5), byte(0), byte(0), false, byte(1))
	f.Add(int64(2), byte(0), byte(10), byte(2), true, byte(0))
	f.Add(int64(3), byte(50), byte(30), byte(5), true, byte(2))
	f.Fuzz(func(t *testing.T, seed int64, transient, switchP, badBlocks byte, tapeFail bool, nr byte) {
		fc := faults.Config{
			ReadTransientProb: float64(transient%90) / 100,
			SwitchFailProb:    float64(switchP%90) / 100,
			BadBlocksPerTape:  float64(badBlocks % 8),
		}
		if tapeFail {
			fc.TapeMTBFSec = 400_000
		}
		cfg := faultCfg(int(nr%3), fc)
		cfg.Seed = seed
		cfg.Horizon = 150_000
		cfg.QueueLength = 20
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkConservation(t, res, 20)
		if res.SimSeconds <= 0 {
			t.Fatalf("degenerate run: %+v", res)
		}
	})
}
