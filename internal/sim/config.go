// Package sim is the event-driven jukebox simulator implementing the
// service model of Section 2.2: a loop of major reschedules, tape switches,
// and sweep executions, with the incremental scheduler handling requests
// that arrive mid-sweep. It supports the paper's closed-queuing (constant
// queue length) and open-queuing (Poisson arrivals) request generation
// scenarios and reports the throughput/latency metrics the figures plot.
package sim

import (
	"errors"
	"fmt"

	"tapejuke/internal/faults"
	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
	"tapejuke/internal/tapemodel"
	"tapejuke/internal/workload"
)

// Config fully describes one simulation run.
type Config struct {
	// Profile is the drive timing model; nil selects the EXB-8505XL.
	Profile tapemodel.Positioner
	// BlockMB is the I/O transfer size in megabytes (the paper settles on
	// 16 MB; Figure 3 sweeps it).
	BlockMB float64
	// TapeCapMB is the capacity of one tape in megabytes (7 GB = 7168 MB in
	// the paper). The per-tape block count is TapeCapMB/BlockMB, truncated.
	TapeCapMB float64
	// Tapes is the number of tapes in the jukebox (10 in the paper).
	Tapes int

	// HotPercent (PH), Replicas (NR), Kind and StartPos (SP) configure the
	// data layout; see package layout.
	HotPercent float64
	Replicas   int
	Kind       layout.Kind
	StartPos   float64
	// DataBlocks, when positive, stores that many logical blocks instead
	// of filling the jukebox to capacity (partial fill, Section 4.8's
	// gradual-fill scenario).
	DataBlocks int
	// PackAfterData appends the hot/replica region right after each tape's
	// data instead of at the StartPos position (see layout.Config).
	PackAfterData bool

	// ReadHotPercent (RH) is the percent of requests directed to hot data.
	ReadHotPercent float64
	// SequentialProb, when positive, enables the clustered-access
	// extension: each request continues the previous block's sequential
	// run with this probability instead of drawing independently. The
	// paper's workloads are independent (zero).
	SequentialProb float64
	// ZipfS, when positive (must exceed 1), replaces the two-class
	// hot/cold skew with Zipf-distributed popularity over block ranks
	// (extension); ReadHotPercent and SequentialProb are then ignored.
	ZipfS float64

	// QueueLength > 0 selects the closed-queuing model with that many
	// I/O-bound processes. MeanInterarrival > 0 selects the open-queuing
	// model with Poisson arrivals. Exactly one must be set.
	QueueLength      int
	MeanInterarrival float64

	// Arrivals, when non-nil, replaces the arrival process the engine
	// would otherwise derive from QueueLength/MeanInterarrival (those
	// still validate and describe the nominal load). The farm front end
	// uses it to hand each library shard its routed sub-stream as a
	// replayed trace.
	Arrivals workload.Arrivals
	// Source, when non-nil, replaces the skewed block generator: the
	// engine draws every requested block from it instead of building a
	// hot/cold (or Zipf) generator. Paired with Arrivals by the farm so
	// the router, not the shard, decides which blocks are asked for.
	Source workload.Source

	// Scheduler services the requests. The instance may be stateful and
	// must be fresh for each run.
	Scheduler sched.Scheduler

	// Drives is the number of drives sharing the jukebox's tapes (default
	// 1, the paper's configuration; >1 enables the multi-drive extension).
	// Multi-drive runs need SchedulerFactory because every drive gets its
	// own stateful scheduler instance.
	Drives           int
	SchedulerFactory func() sched.Scheduler

	// Horizon is the simulated duration in seconds (the paper models 10
	// million seconds per run).
	Horizon float64
	// WarmupFrac is the fraction of the horizon excluded from metrics
	// (default 0.05 when zero).
	WarmupFrac float64
	// MaxCompletions, when positive, stops the run early after that many
	// post-warmup completions; benchmarks use it to bound work.
	MaxCompletions int64

	// RAO applies Recommended-Access-Order-style reordering to every sweep
	// before execution: the elevator order is replaced by a greedy
	// nearest-first physical order (sched.Sweep.ReorderRAO). Only
	// meaningful -- and only accepted -- on serpentine drive profiles,
	// where physical adjacency diverges from logical adjacency. The
	// schedulers' cost evaluation still scores elevator sweeps (the paper's
	// algorithms are unmodified); reordering happens at issue time, like a
	// drive-level RAO command.
	RAO bool

	// Seed makes runs deterministic.
	Seed int64

	// Observer, when non-nil, receives every simulator event (tape
	// switches, reads, completions, idle periods, write flushes) inline.
	Observer Observer

	// Write-model extension: the paper assumes writes go to disk-resident
	// delta files and reach tape "during idle time or piggybacked on the
	// read schedule". WriteMeanInterarrival > 0 enables a Poisson stream of
	// delta-block writes; WriteReserveMB of each tape (default 256 when
	// writes are enabled) is carved off the end as a circular delta log;
	// WritePolicy picks when buffers drain; a positive WriteFlushThreshold
	// force-drains the fullest tape once that many blocks are buffered.
	// The disk buffers are jukebox-wide: with several drives, whichever
	// drive frees up first picks up an eligible flush.
	WriteMeanInterarrival float64
	WritePolicy           WritePolicy
	WriteReserveMB        float64
	WriteFlushThreshold   int

	// Faults configures the fault-injection model (see package faults):
	// transient media errors, bad-block ranges, whole-tape and drive
	// failures, and switch failures, with bounded retries and replica-based
	// recovery. The zero value disables every fault class. When
	// Faults.Seed is zero the fault streams derive from Seed+3, keeping
	// fault and workload randomness independent.
	Faults faults.Config

	// Overload-robustness extensions. Each zero value disables its layer;
	// with all four off and AgeWeight zero the engine is bit-identical to
	// the overload-free simulator (the golden tests pin this).
	Deadlines DeadlineConfig
	Admission AdmissionConfig
	Burst     BurstConfig
	Degrade   DegradeConfig

	// AgeWeight enables starvation-aware aging in every scheduler's tape
	// selection (see sched.Shared.AgeWeight). Zero disables it.
	AgeWeight float64

	// Repair configures self-healing replication: background jobs that
	// rebuild lost replicas (and optionally promote hot blocks and reclaim
	// cold excess copies) during drive idle time. The zero value disables
	// the subsystem, leaving the event stream bit-identical to a build
	// without it.
	Repair RepairConfig

	// Health configures proactive media health: background latent-error
	// scrubbing, tape/drive health scoring, preemptive evacuation of
	// degrading tapes, and drive fencing. The zero value disables the
	// subsystem, leaving the event stream bit-identical to a build
	// without it.
	Health HealthConfig
}

// ConfigError is a typed validation error for the overload-robustness
// configuration surface, retrievable with errors.As.
type ConfigError struct {
	Field  string // the offending Config field, e.g. "Deadlines.HotTTL"
	Reason string
}

// Error implements the error interface.
func (e *ConfigError) Error() string { return fmt.Sprintf("sim: %s: %s", e.Field, e.Reason) }

// DeadlineConfig assigns per-class request deadlines: a request's deadline
// is its arrival time plus a TTL drawn from its block class's distribution.
// A request still incomplete at its deadline is cancelled (expired) unless
// it is already being read. The zero value disables deadlines.
type DeadlineConfig struct {
	// HotTTL and ColdTTL are the mean TTLs in seconds for requests on hot
	// and cold blocks; zero disables deadlines for that class.
	HotTTL  float64
	ColdTTL float64
	// Fixed uses the means as exact TTLs instead of exponential draws.
	Fixed bool
	// Seed for the TTL stream; zero derives Seed+4 so deadline randomness
	// stays independent of the workload's.
	Seed int64
}

// Enabled reports whether any class gets deadlines.
func (d DeadlineConfig) Enabled() bool { return d.HotTTL > 0 || d.ColdTTL > 0 }

// AdmitPolicy selects what a bounded admission queue does on overflow.
type AdmitPolicy int

const (
	// AdmitNone disables admission control (unbounded queue).
	AdmitNone AdmitPolicy = iota
	// AdmitReject turns the newly arriving request away.
	AdmitReject
	// AdmitShed drops the oldest pending request to admit the newcomer.
	AdmitShed
)

// String names the policy.
func (p AdmitPolicy) String() string {
	switch p {
	case AdmitNone:
		return "none"
	case AdmitReject:
		return "reject"
	case AdmitShed:
		return "shed-oldest"
	}
	return "unknown"
}

// AdmissionConfig bounds the number of outstanding requests. When the bound
// is reached, Policy decides who is turned away. Closed-model respawns are
// exempt (the fixed population is the bound there); external arrivals --
// open-model and flash-crowd extras -- are subject to it.
type AdmissionConfig struct {
	// MaxQueue is the outstanding-request bound; required positive when a
	// policy is set.
	MaxQueue int
	// Policy is the overflow behavior; AdmitNone disables admission control.
	Policy AdmitPolicy
}

// Enabled reports whether admission control is on.
func (a AdmissionConfig) Enabled() bool { return a.Policy != AdmitNone }

// BurstConfig makes the open-model arrival process bursty (ON-OFF
// modulation with exponential phases, plus one deterministic flash-crowd
// window) or injects a one-shot flash crowd into the closed model. The
// zero value keeps the stationary paper workloads.
type BurstConfig struct {
	// Factor multiplies the baseline arrival rate while bursting; required
	// positive when any burst shape is configured.
	Factor float64
	// OnFrac in (0,1) is the fraction of an ON-OFF cycle spent bursting;
	// Period is the mean cycle length in seconds (open model only).
	OnFrac float64
	Period float64
	// FlashAt starts a flash window: for FlashLen seconds the open model
	// arrives at Factor times the baseline rate (open model only), or
	// FlashCount one-shot ephemeral requests arrive at once (closed model
	// only).
	FlashAt    float64
	FlashLen   float64
	FlashCount int
	// Seed for the burst modulation stream; zero derives Seed+5.
	Seed int64
}

// Enabled reports whether any burst shape is configured.
func (b BurstConfig) Enabled() bool { return b.Period > 0 || b.FlashLen > 0 || b.FlashCount > 0 }

// DegradeConfig enables graceful degradation under sustained overload:
// whenever the outstanding-request count exceeds QueueThreshold, freshly
// built sweeps are truncated to the MaxSweep most urgent requests (the
// rest return to pending) and delta-write flushes are deferred, so drive
// time concentrates on near-deadline reads. The zero value disables it.
type DegradeConfig struct {
	// QueueThreshold is the outstanding-request count above which the
	// system counts as overloaded; zero disables degradation.
	QueueThreshold int
	// MaxSweep, when positive, truncates sweeps built while overloaded to
	// the MaxSweep most urgent requests.
	MaxSweep int
	// DeferWrites skips piggyback and idle delta-write flushes while
	// overloaded (the force-drain threshold still applies).
	DeferWrites bool
}

// Enabled reports whether degradation is on.
func (d DegradeConfig) Enabled() bool { return d.QueueThreshold > 0 }

// LayoutConfig returns the layout configuration the engine will build for
// c, plus the per-tape data capacity in blocks (tape capacity minus any
// write reserve). It applies the same write-reserve defaulting the engine
// does, so external pre-passes — the farm's placement planner and its
// per-shard fault projection — see exactly the geometry a run of c will
// simulate.
func (c Config) LayoutConfig() (layout.Config, int, error) {
	if c.WriteMeanInterarrival > 0 && c.WriteReserveMB == 0 {
		c.WriteReserveMB = 256
	}
	dataCapMB := c.TapeCapMB
	if c.WriteMeanInterarrival > 0 {
		dataCapMB -= c.WriteReserveMB
		if dataCapMB < c.BlockMB || c.WriteReserveMB < c.BlockMB {
			return layout.Config{}, 0, fmt.Errorf("sim: write reserve %v MB leaves no room for data or deltas", c.WriteReserveMB)
		}
	}
	capBlocks := int(dataCapMB / c.BlockMB)
	return layout.Config{
		Tapes:         c.Tapes,
		TapeCapBlocks: capBlocks,
		HotPercent:    c.HotPercent,
		Replicas:      c.Replicas,
		Kind:          c.Kind,
		StartPos:      c.StartPos,
		DataBlocks:    c.DataBlocks,
		PackAfterData: c.PackAfterData,
	}, capBlocks, nil
}

// Validate reports the first configuration error, applying no defaults.
func (c *Config) Validate() error {
	if c.BlockMB <= 0 {
		return errors.New("sim: BlockMB must be positive")
	}
	if c.TapeCapMB <= 0 {
		return errors.New("sim: TapeCapMB must be positive")
	}
	if c.TapeCapMB < c.BlockMB {
		return errors.New("sim: TapeCapMB must hold at least one block")
	}
	if c.Tapes < 1 {
		return errors.New("sim: need at least one tape")
	}
	if c.Scheduler == nil {
		return errors.New("sim: no scheduler")
	}
	if c.Drives < 0 || c.Drives > c.Tapes {
		return fmt.Errorf("sim: %d drives impossible with %d tapes", c.Drives, c.Tapes)
	}
	if c.Drives > 1 && c.SchedulerFactory == nil {
		return errors.New("sim: multi-drive runs need SchedulerFactory")
	}
	if c.QueueLength < 0 {
		return fmt.Errorf("sim: QueueLength %d must be non-negative", c.QueueLength)
	}
	if c.MeanInterarrival < 0 {
		return fmt.Errorf("sim: MeanInterarrival %v must be non-negative", c.MeanInterarrival)
	}
	closed := c.QueueLength > 0
	open := c.MeanInterarrival > 0
	if closed == open {
		return fmt.Errorf("sim: exactly one of QueueLength (%d) and MeanInterarrival (%v) must be positive",
			c.QueueLength, c.MeanInterarrival)
	}
	if c.Horizon <= 0 {
		return errors.New("sim: Horizon must be positive")
	}
	if c.WarmupFrac < 0 || c.WarmupFrac >= 1 {
		return errors.New("sim: WarmupFrac must be in [0,1)")
	}
	if c.SequentialProb < 0 || c.SequentialProb >= 1 {
		return errors.New("sim: SequentialProb must be in [0,1)")
	}
	if c.ZipfS < 0 || (c.ZipfS > 0 && c.ZipfS <= 1) {
		return errors.New("sim: ZipfS must be zero (disabled) or greater than 1")
	}
	if c.WriteMeanInterarrival < 0 {
		return errors.New("sim: WriteMeanInterarrival must be non-negative")
	}
	if c.WriteReserveMB < 0 || (c.WriteReserveMB > 0 && c.WriteReserveMB >= c.TapeCapMB) {
		return fmt.Errorf("sim: WriteReserveMB %v must leave room for data on a %v MB tape",
			c.WriteReserveMB, c.TapeCapMB)
	}
	if c.RAO {
		if _, ok := c.Profile.(*tapemodel.Serpentine); !ok {
			return errors.New("sim: RAO reordering requires a serpentine drive profile")
		}
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if c.Faults.Enabled() && c.WriteMeanInterarrival > 0 {
		return errors.New("sim: the fault model does not cover the write extension")
	}
	if err := c.validateOverload(); err != nil {
		return err
	}
	if err := c.validateRepair(); err != nil {
		return err
	}
	return c.validateHealth()
}

// validateOverload checks the overload-robustness surface, reporting typed
// *ConfigError values.
func (c *Config) validateOverload() error {
	d := c.Deadlines
	if d.HotTTL < 0 {
		return &ConfigError{"Deadlines.HotTTL", "TTL must be non-negative"}
	}
	if d.ColdTTL < 0 {
		return &ConfigError{"Deadlines.ColdTTL", "TTL must be non-negative"}
	}
	a := c.Admission
	if a.Policy < AdmitNone || a.Policy > AdmitShed {
		return &ConfigError{"Admission.Policy", fmt.Sprintf("unknown policy %d", a.Policy)}
	}
	if a.MaxQueue < 0 {
		return &ConfigError{"Admission.MaxQueue", "queue bound must be non-negative"}
	}
	if a.Enabled() && a.MaxQueue == 0 {
		return &ConfigError{"Admission.MaxQueue", "bounded admission needs a positive queue bound"}
	}
	if !a.Enabled() && a.MaxQueue > 0 {
		return &ConfigError{"Admission.Policy", "a queue bound needs an overflow policy"}
	}
	b := c.Burst
	if b.Factor < 0 {
		return &ConfigError{"Burst.Factor", "factor must be non-negative"}
	}
	if b.OnFrac < 0 || b.OnFrac >= 1 {
		return &ConfigError{"Burst.OnFrac", "ON fraction out of [0,1)"}
	}
	if b.Period < 0 || b.FlashAt < 0 || b.FlashLen < 0 || b.FlashCount < 0 {
		return &ConfigError{"Burst", "period/flash parameters must be non-negative"}
	}
	if b.Enabled() && b.Factor == 0 {
		return &ConfigError{"Burst.Factor", "bursting needs a rate factor"}
	}
	if b.Period > 0 && b.OnFrac == 0 {
		return &ConfigError{"Burst.OnFrac", "ON-OFF modulation needs a positive ON fraction"}
	}
	closed := c.QueueLength > 0
	if closed && (b.Period > 0 || b.FlashLen > 0) {
		return &ConfigError{"Burst", "rate modulation needs the open model (use FlashCount for closed flash crowds)"}
	}
	if !closed && b.FlashCount > 0 {
		return &ConfigError{"Burst.FlashCount", "one-shot flash counts need the closed model (use FlashLen for open flashes)"}
	}
	g := c.Degrade
	if g.QueueThreshold < 0 {
		return &ConfigError{"Degrade.QueueThreshold", "threshold must be non-negative"}
	}
	if g.MaxSweep < 0 {
		return &ConfigError{"Degrade.MaxSweep", "sweep bound must be non-negative"}
	}
	if !g.Enabled() && (g.MaxSweep > 0 || g.DeferWrites) {
		return &ConfigError{"Degrade.QueueThreshold", "degradation actions need an overload threshold"}
	}
	if g.Enabled() && g.MaxSweep == 0 && !g.DeferWrites {
		return &ConfigError{"Degrade", "an overload threshold needs a degradation action (MaxSweep or DeferWrites)"}
	}
	if g.DeferWrites && c.WriteMeanInterarrival <= 0 {
		return &ConfigError{"Degrade.DeferWrites", "deferring writes needs the write extension"}
	}
	if c.AgeWeight < 0 {
		return &ConfigError{"AgeWeight", "aging weight must be non-negative"}
	}
	return nil
}

// Result reports the metrics of one run. All "response" figures are
// request response times (completion minus arrival) in seconds, measured
// after warm-up.
type Result struct {
	SchedulerName string

	SimSeconds      float64 // simulated time actually covered
	MeasuredSeconds float64 // simulated time after warm-up

	Completed         int64   // post-warmup completions
	ThroughputKBps    float64 // KB retrieved per second after warm-up
	RequestsPerMinute float64
	MeanResponseSec   float64
	MaxResponseSec    float64
	P50ResponseSec    float64
	P95ResponseSec    float64
	P99ResponseSec    float64

	TapeSwitches   int64 // post-warmup tape switches
	LocateSeconds  float64
	ReadSeconds    float64
	SwitchSeconds  float64
	IdleSeconds    float64
	MeanQueueLen   float64 // time-averaged outstanding requests
	TotalArrivals  int64   // including warm-up
	TotalCompleted int64   // including warm-up

	// ReadsPerTape counts post-warmup block reads served from each tape,
	// exposing hot-tape concentration and switch economics.
	ReadsPerTape []int64

	// Write-model extension metrics (zero when writes are disabled).
	WritesFlushed     int64   // delta blocks written to tape
	WriteSeconds      float64 // drive time spent flushing deltas
	MeanWriteDelaySec float64 // buffer residence of flushed deltas (post-warmup)
	MaxBufferedWrites int     // peak disk-buffer occupancy in blocks

	// Fault-model metrics (zero when the fault model is disabled, except
	// Availability, which is then 1).
	Retries            int64   // transient-error retry attempts issued
	TransientFaults    int64   // read attempts failed with a recoverable error
	PermanentFaults    int64   // read operations failed permanently (dead copies, escalations, tape failures)
	SwitchFaults       int64   // failed tape load/unload attempts
	TapeFailures       int     // tapes discovered permanently failed by the end of the run
	DriveFailures      int64   // drive failures repaired
	DriveRepairSeconds float64 // downtime spent repairing drives
	FaultSeconds       float64 // drive time consumed by failed attempts and retry backoff
	Unserviceable      int64   // requests abandoned with every copy lost (whole run)
	Rerouted           int64   // post-warmup completions served by a surviving replica after a permanent fault
	MeanRecoverySec    float64 // mean extra wait from first permanent fault to completion (post-warmup)
	Availability       float64 // post-warmup completed / (completed + unserviceable)

	// Overload-robustness metrics (zero when deadlines, admission control,
	// and degradation are all disabled).
	Expired          int64   // requests cancelled at their deadline (whole run)
	LateCompletions  int64   // completions past their deadline (in-flight reads finish late; whole run)
	DeadlineMisses   int64   // post-warmup expiries + late completions of deadlined requests
	DeadlineMissRate float64 // post-warmup misses / deadlined outcomes (completions + expiries)
	Shed             int64   // pending requests dropped by AdmitShed overflow (whole run)
	Rejected         int64   // arrivals turned away by AdmitReject overflow (whole run)
	MaxQueueAgeSec   float64 // oldest age a pending request reached before service, expiry, or shedding (post-warmup)
	TruncatedSweeps  int64   // sweeps cut to the most urgent MaxSweep requests while overloaded
	DeferredFlushes  int64   // piggyback/idle delta flushes skipped while overloaded

	// Self-healing replication (all zero when Repair is disabled).
	RepairJobs          int64   // repair jobs enqueued (loss-driven and promotions)
	RepairedCopies      int64   // new copies minted by completed repair jobs
	ReclaimedCopies     int64   // cold excess copies reclaimed
	RepairSeconds       float64 // drive time spent on repair reads and writes (evacuation included)
	MeanTimeToRepairSec float64 // mean loss-discovery-to-commit latency of minted copies

	// Proactive media health. The scrub/evacuation/fence metrics are zero
	// when Health is disabled; the latent-error counters and
	// MeanTimeToDetectSec populate whenever the fault model injects
	// latent errors, with or without the health extension detecting them
	// early.
	ScrubbedMB           float64 // data verified by background scrub passes
	ScrubSeconds         float64 // drive time spent scrubbing
	LatentErrorsInjected int     // latent bad-block positions injected
	LatentErrorsFound    int64   // latent errors detected by any path
	LatentFoundByScrub   int64   // latent errors the scrub patrol found first
	SuspectTapes         int     // tapes whose health score crossed SuspectScore
	EvacuatedTapes       int     // suspect tapes fully drained of copies
	EvacuationJobs       int64   // evacuation jobs enqueued
	EvacuatedCopies      int64   // copies moved off suspect tapes
	FencedDrives         int64   // drive maintenance fences taken
	MeanTimeToDetectSec  float64 // mean onset-to-detection latency of developed latent errors (undetected ones censored at run end)
}

// EffectiveOfStreaming returns throughput as a fraction of the drive's
// streaming rate, the figure of merit in Section 4.1.
func (r *Result) EffectiveOfStreaming(p tapemodel.Positioner) float64 {
	stream := p.StreamingRateMBps() * 1024 // KB/s
	if stream == 0 {
		return 0
	}
	return r.ThroughputKBps / stream
}
