package sim

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"tapejuke/internal/core"
	"tapejuke/internal/faults"
	"tapejuke/internal/sched"
)

// goldenPath holds the Drives=1 Result metrics captured from the
// pre-unification synchronous single-drive engine (the engine.run loop that
// existed before the event-calendar kernel). The unified kernel must
// reproduce these metrics so the paper's reproduced figures cannot drift.
const goldenPath = "testdata/golden_single.json"

// goldenCases enumerates the pinned configurations: schedulers x
// {fault model on/off, write extension on/off} x {closed, open} x seeds.
// Each entry constructs a fresh Config (schedulers are stateful).
func goldenCases() map[string]func() Config {
	closed := func(s sched.Scheduler, seed int64) Config {
		cfg := quickCfg(s)
		cfg.Seed = seed
		return cfg
	}
	flt := func(s sched.Scheduler, nr int, seed int64, fc faults.Config) Config {
		cfg := faultCfg(nr, fc)
		cfg.Scheduler = s
		cfg.Seed = seed
		cfg.Horizon = 400_000
		cfg.Faults = fc
		return cfg
	}
	allFaults := faults.Config{
		ReadTransientProb: 0.05,
		SwitchFailProb:    0.1,
		TapeMTBFSec:       500_000,
		DriveMTBFSec:      150_000,
		BadBlocksPerTape:  1,
	}
	return map[string]func() Config{
		"closed-fifo-s1":   func() Config { return closed(sched.NewFIFO(), 1) },
		"closed-static-s1": func() Config { return closed(sched.NewStatic(sched.MaxRequests), 1) },
		"closed-dynmbw-s1": func() Config { return closed(sched.NewDynamic(sched.MaxBandwidth), 1) },
		"closed-envmbw-s1": func() Config { return closed(core.NewEnvelope(core.MaxBandwidth), 1) },
		"repl-envmbw-s1": func() Config {
			cfg := closed(core.NewEnvelope(core.MaxBandwidth), 1)
			cfg.Replicas = 4
			cfg.Kind = 1 // vertical
			cfg.StartPos = 1
			return cfg
		},
		"repl-dynmbw-s7": func() Config {
			cfg := closed(sched.NewDynamic(sched.MaxBandwidth), 7)
			cfg.Replicas = 4
			cfg.Kind = 1
			cfg.StartPos = 1
			return cfg
		},
		"open-dynmbw-s1": func() Config {
			cfg := closed(sched.NewDynamic(sched.MaxBandwidth), 1)
			cfg.QueueLength = 0
			cfg.MeanInterarrival = 120
			return cfg
		},
		"open-envmbw-s7": func() Config {
			cfg := closed(core.NewEnvelope(core.MaxBandwidth), 7)
			cfg.QueueLength = 0
			cfg.MeanInterarrival = 120
			return cfg
		},
		"faults-envmbw-s1": func() Config {
			return flt(core.NewEnvelope(core.MaxBandwidth), 1, 1, allFaults)
		},
		"faults-dynmbw-s7": func() Config {
			return flt(sched.NewDynamic(sched.MaxBandwidth), 1, 7, allFaults)
		},
		"faults-fifo-s1": func() Config {
			// NR=0: tape failures strand requests (the unserviceable path).
			return flt(sched.NewFIFO(), 0, 1, allFaults)
		},
		"faults-open-envmbw-s1": func() Config {
			cfg := flt(core.NewEnvelope(core.MaxBandwidth), 1, 1, allFaults)
			cfg.QueueLength = 0
			cfg.MeanInterarrival = 200
			return cfg
		},
		"writes-pb-dynmbw-s1": func() Config {
			cfg := closed(sched.NewDynamic(sched.MaxBandwidth), 1)
			cfg.WriteMeanInterarrival = 300
			cfg.WritePolicy = WritePiggyback
			return cfg
		},
		"writes-idle-dynmbw-s1": func() Config {
			cfg := closed(sched.NewDynamic(sched.MaxBandwidth), 1)
			cfg.QueueLength = 0
			cfg.MeanInterarrival = 1000
			cfg.WriteMeanInterarrival = 400
			cfg.WritePolicy = WriteIdleOnly
			cfg.WriteFlushThreshold = 50
			return cfg
		},
		"writes-both-envmbw-s7": func() Config {
			cfg := closed(core.NewEnvelope(core.MaxBandwidth), 7)
			cfg.WriteMeanInterarrival = 250
			cfg.WritePolicy = WritePiggybackAndIdle
			cfg.WriteFlushThreshold = 80
			return cfg
		},
	}
}

// compareResults checks got against the golden want: integer and string
// fields exactly, float fields within a relative tolerance that absorbs the
// clock-accumulation reordering of the unified kernel (the old engine summed
// operation segments one at a time; the kernel jumps to precomputed
// completion times, so the last few bits of long float sums may differ).
func compareResults(t *testing.T, name string, got, want *Result) {
	t.Helper()
	const tol = 1e-9
	gv := reflect.ValueOf(*got)
	wv := reflect.ValueOf(*want)
	rt := gv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		g, w := gv.Field(i), wv.Field(i)
		switch f.Type.Kind() {
		case reflect.Float64:
			gf, wf := g.Float(), w.Float()
			scale := math.Max(math.Abs(gf), math.Abs(wf))
			if diff := math.Abs(gf - wf); diff > tol*math.Max(scale, 1) {
				t.Errorf("%s: %s = %v, golden %v (diff %g)", name, f.Name, gf, wf, diff)
			}
		default:
			if !reflect.DeepEqual(g.Interface(), w.Interface()) {
				t.Errorf("%s: %s = %v, golden %v", name, f.Name, g.Interface(), w.Interface())
			}
		}
	}
}

// TestGoldenSingleDrive is the differential pin: Drives=1 on the current
// engine reproduces the Result metrics captured from the pre-refactor
// engine for every golden case. Regenerate (only ever from a known-good
// engine) with SIM_UPDATE_GOLDEN=1 go test ./internal/sim -run TestGoldenSingleDrive
func TestGoldenSingleDrive(t *testing.T) {
	cases := goldenCases()
	if os.Getenv("SIM_UPDATE_GOLDEN") != "" {
		out := make(map[string]*Result, len(cases))
		for name, mk := range cases {
			res, err := Run(mk())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out[name] = res
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(out, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden cases to %s", len(out), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (generate with SIM_UPDATE_GOLDEN=1): %v", err)
	}
	want := map[string]*Result{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			w, ok := want[name]
			if !ok {
				t.Fatalf("golden file has no entry %q; regenerate", name)
			}
			res, err := Run(cases[name]())
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, name, res, w)
		})
	}
}
