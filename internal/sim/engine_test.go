package sim

import (
	"math"
	"reflect"
	"testing"

	"tapejuke/internal/core"
	"tapejuke/internal/sched"
	"tapejuke/internal/tapemodel"
)

// quickCfg is a short closed-queuing run on the paper's jukebox.
func quickCfg(s sched.Scheduler) Config {
	return Config{
		BlockMB:        16,
		TapeCapMB:      7168,
		Tapes:          10,
		HotPercent:     10,
		ReadHotPercent: 40,
		QueueLength:    60,
		Scheduler:      s,
		Horizon:        200_000,
		Seed:           1,
	}
}

func TestClosedRunBasics(t *testing.T) {
	res, err := Run(quickCfg(sched.NewDynamic(sched.MaxBandwidth)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
	if res.ThroughputKBps <= 0 || res.MeanResponseSec <= 0 {
		t.Fatalf("degenerate metrics: %+v", res)
	}
	// Conservation: every arrival either completed or is still outstanding.
	outstanding := res.TotalArrivals - res.TotalCompleted
	if outstanding != 60 {
		t.Errorf("outstanding = %d, want the constant queue length 60", outstanding)
	}
	// The closed model holds the queue at exactly QueueLength.
	if math.Abs(res.MeanQueueLen-60) > 0.5 {
		t.Errorf("MeanQueueLen = %v, want 60", res.MeanQueueLen)
	}
	// Closed model never idles.
	if res.IdleSeconds != 0 {
		t.Errorf("closed model idled %v s", res.IdleSeconds)
	}
	// Per-tape read accounting covers every measured completion.
	var tapeReads int64
	for _, n := range res.ReadsPerTape {
		tapeReads += n
	}
	if tapeReads != res.Completed {
		t.Errorf("per-tape reads %d != completions %d", tapeReads, res.Completed)
	}
	// Time decomposition covers the simulated span.
	total := res.LocateSeconds + res.ReadSeconds + res.SwitchSeconds + res.IdleSeconds
	if math.Abs(total-res.SimSeconds) > 1e-6*res.SimSeconds {
		t.Errorf("time decomposition %v != sim time %v", total, res.SimSeconds)
	}
	// Effective rate is a sane fraction of streaming (paper: >30% with a
	// good scheduler at 16 MB).
	frac := res.EffectiveOfStreaming(tapemodel.EXB8505XL())
	if frac < 0.05 || frac > 1 {
		t.Errorf("effective fraction of streaming = %v", frac)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(quickCfg(sched.NewDynamic(sched.MaxRequests)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg(sched.NewDynamic(sched.MaxRequests)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
	c := quickCfg(sched.NewDynamic(sched.MaxRequests))
	c.Seed = 2
	r2, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, r2) {
		t.Error("different seeds gave bit-identical results")
	}
}

func TestFIFOIsWorst(t *testing.T) {
	fifo, err := Run(quickCfg(sched.NewFIFO()))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []sched.Scheduler{
		sched.NewStatic(sched.MaxRequests),
		sched.NewDynamic(sched.MaxBandwidth),
		core.NewEnvelope(core.MaxBandwidth),
	} {
		res, err := Run(quickCfg(s))
		if err != nil {
			t.Fatal(err)
		}
		if res.ThroughputKBps <= fifo.ThroughputKBps {
			t.Errorf("%s throughput %v should beat FIFO %v",
				s.Name(), res.ThroughputKBps, fifo.ThroughputKBps)
		}
	}
}

// Metric sanity: response percentiles are ordered, the simulated span
// tracks the horizon, and warm-up strictly reduces what is measured.
func TestMetricOrdering(t *testing.T) {
	res, err := Run(quickCfg(sched.NewDynamic(sched.MaxBandwidth)))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanResponseSec > res.P95ResponseSec {
		t.Errorf("mean %.1f above p95 %.1f", res.MeanResponseSec, res.P95ResponseSec)
	}
	if res.P95ResponseSec > res.MaxResponseSec {
		t.Errorf("p95 %.1f above max %.1f", res.P95ResponseSec, res.MaxResponseSec)
	}
	if res.SimSeconds < 200_000 || res.SimSeconds > 201_000 {
		t.Errorf("sim span %.0f strays from the 200k horizon", res.SimSeconds)
	}
	if res.MeasuredSeconds >= res.SimSeconds {
		t.Error("warm-up did not reduce the measured span")
	}
	if res.Completed >= res.TotalCompleted {
		t.Error("warm-up completions leaked into the measured count")
	}

	// A larger warm-up fraction strictly reduces measured completions.
	cfg := quickCfg(sched.NewDynamic(sched.MaxBandwidth))
	cfg.WarmupFrac = 0.5
	half, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if half.Completed >= res.Completed {
		t.Errorf("warmup 0.5 measured %d completions, warmup 0.05 measured %d",
			half.Completed, res.Completed)
	}
	if half.TotalCompleted != res.TotalCompleted {
		t.Errorf("warm-up changed the physics: %d vs %d total completions",
			half.TotalCompleted, res.TotalCompleted)
	}
}

// The paper notes the envelope algorithm "degenerates into the dynamic
// max-bandwidth algorithm" when nothing is replicated. In this
// implementation the degeneration is exact: with NR-0 the two schedulers
// make identical decisions, so whole simulations agree bit for bit.
func TestEnvelopeDegeneratesExactly(t *testing.T) {
	dyn, err := Run(quickCfg(sched.NewDynamic(sched.MaxBandwidth)))
	if err != nil {
		t.Fatal(err)
	}
	env, err := Run(quickCfg(core.NewEnvelope(core.MaxBandwidth)))
	if err != nil {
		t.Fatal(err)
	}
	// Scheduler names differ; everything else must match exactly.
	env.SchedulerName = dyn.SchedulerName
	if !reflect.DeepEqual(dyn, env) {
		t.Errorf("degeneration not exact:\ndynamic:  %+v\nenvelope: %+v", dyn, env)
	}
}

func TestOpenModelIdlesUnderLightLoad(t *testing.T) {
	cfg := quickCfg(sched.NewDynamic(sched.MaxBandwidth))
	cfg.QueueLength = 0
	cfg.MeanInterarrival = 2000 // far below service capacity
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IdleSeconds == 0 {
		t.Error("lightly loaded open system should idle")
	}
	if res.Completed == 0 {
		t.Error("no completions")
	}
	// Under light load the queue stays short.
	if res.MeanQueueLen > 5 {
		t.Errorf("MeanQueueLen = %v under light load", res.MeanQueueLen)
	}
}

func TestOpenModelSaturates(t *testing.T) {
	// An overloaded open system accumulates a backlog: arrivals far exceed
	// completions.
	cfg := quickCfg(sched.NewDynamic(sched.MaxBandwidth))
	cfg.QueueLength = 0
	cfg.MeanInterarrival = 5 // far above service capacity
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	backlog := res.TotalArrivals - res.TotalCompleted
	if backlog < 100 {
		t.Errorf("overloaded system backlog = %d, expected a long queue", backlog)
	}
}

func TestMaxCompletionsStopsEarly(t *testing.T) {
	cfg := quickCfg(sched.NewDynamic(sched.MaxBandwidth))
	cfg.Horizon = 10_000_000
	cfg.MaxCompletions = 50
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 50 {
		t.Errorf("Completed = %d, want 50", res.Completed)
	}
	if res.SimSeconds >= cfg.Horizon {
		t.Error("run did not stop early")
	}
}

func TestEnvelopeRunsWithReplication(t *testing.T) {
	cfg := quickCfg(core.NewEnvelope(core.MaxBandwidth))
	cfg.Replicas = 9
	cfg.StartPos = 1
	cfg.Kind = 1 // vertical
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
	if res.TotalArrivals-res.TotalCompleted != 60 {
		t.Errorf("conservation violated: %d arrivals, %d completed",
			res.TotalArrivals, res.TotalCompleted)
	}
}

func TestConfigValidation(t *testing.T) {
	good := quickCfg(sched.NewFIFO())
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero block size", func(c *Config) { c.BlockMB = 0 }},
		{"negative block size", func(c *Config) { c.BlockMB = -1 }},
		{"zero tape capacity", func(c *Config) { c.TapeCapMB = 0 }},
		{"negative tape capacity", func(c *Config) { c.TapeCapMB = -7168 }},
		{"capacity below one block", func(c *Config) { c.TapeCapMB = 1 }},
		{"no tapes", func(c *Config) { c.Tapes = 0 }},
		{"negative tapes", func(c *Config) { c.Tapes = -1 }},
		{"nil scheduler", func(c *Config) { c.Scheduler = nil }},
		{"negative drives", func(c *Config) { c.Drives = -1 }},
		{"more drives than tapes", func(c *Config) { c.Drives = c.Tapes + 1 }},
		{"multi-drive without factory", func(c *Config) { c.Drives = 2 }},
		{"negative queue length", func(c *Config) { c.QueueLength = -1 }},
		{"negative interarrival", func(c *Config) { c.MeanInterarrival = -100 }},
		{"neither workload model", func(c *Config) { c.QueueLength = 0 }},
		{"both workload models", func(c *Config) { c.MeanInterarrival = 100 }},
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"warmup fraction one", func(c *Config) { c.WarmupFrac = 1 }},
		{"negative warmup fraction", func(c *Config) { c.WarmupFrac = -0.1 }},
		{"sequential prob one", func(c *Config) { c.SequentialProb = 1 }},
		{"negative sequential prob", func(c *Config) { c.SequentialProb = -0.5 }},
		{"zipf exponent at most one", func(c *Config) { c.ZipfS = 1 }},
		{"negative zipf exponent", func(c *Config) { c.ZipfS = -2 }},
		{"negative write interarrival", func(c *Config) { c.WriteMeanInterarrival = -1 }},
		{"write reserve eats the tape", func(c *Config) { c.WriteReserveMB = c.TapeCapMB }},
		{"negative write reserve", func(c *Config) { c.WriteReserveMB = -1 }},
		{"negative transient probability", func(c *Config) { c.Faults.ReadTransientProb = -0.1 }},
		{"transient probability above one", func(c *Config) { c.Faults.ReadTransientProb = 1.5 }},
		{"negative bad-block rate", func(c *Config) { c.Faults.BadBlocksPerTape = -1 }},
		{"negative bad-block range", func(c *Config) { c.Faults.BadBlockRangeLen = -2 }},
		{"negative tape MTBF", func(c *Config) { c.Faults.TapeMTBFSec = -1 }},
		{"negative drive MTBF", func(c *Config) { c.Faults.DriveMTBFSec = -1 }},
		{"negative drive repair", func(c *Config) { c.Faults.DriveRepairSec = -1 }},
		{"switch probability above one", func(c *Config) { c.Faults.SwitchFailProb = 2 }},
		{"negative retry budget", func(c *Config) { c.Faults.Retry.MaxRetries = -1 }},
		{"negative backoff", func(c *Config) { c.Faults.Retry.BackoffSec = -1 }},
		{"shrinking backoff", func(c *Config) { c.Faults.Retry.BackoffFactor = 0.5 }},
		{"faults with writes", func(c *Config) {
			c.Faults.ReadTransientProb = 0.01
			c.WriteMeanInterarrival = 500
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := quickCfg(sched.NewFIFO())
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
	// Run surfaces layout errors.
	cfg := quickCfg(sched.NewFIFO())
	cfg.Replicas = 20
	if _, err := Run(cfg); err == nil {
		t.Error("impossible replication accepted")
	}
}

func TestSchedulersCompleteAcrossGrid(t *testing.T) {
	// Smoke-test every scheduler against replicated and non-replicated
	// layouts under both queuing models.
	scheds := func() []sched.Scheduler {
		return []sched.Scheduler{
			sched.NewFIFO(),
			sched.NewStatic(sched.RoundRobin),
			sched.NewStatic(sched.MaxRequests),
			sched.NewStatic(sched.MaxBandwidth),
			sched.NewStatic(sched.OldestMaxRequests),
			sched.NewStatic(sched.OldestMaxBandwidth),
			sched.NewDynamic(sched.RoundRobin),
			sched.NewDynamic(sched.MaxRequests),
			sched.NewDynamic(sched.MaxBandwidth),
			sched.NewDynamic(sched.OldestMaxRequests),
			sched.NewDynamic(sched.OldestMaxBandwidth),
			core.NewEnvelope(core.OldestRequest),
			core.NewEnvelope(core.MaxRequests),
			core.NewEnvelope(core.MaxBandwidth),
		}
	}
	for _, nr := range []int{0, 4} {
		for _, open := range []bool{false, true} {
			for _, s := range scheds() {
				cfg := quickCfg(s)
				cfg.Horizon = 50_000
				cfg.Replicas = nr
				if nr > 0 {
					cfg.StartPos = 1
				}
				if open {
					cfg.QueueLength = 0
					cfg.MeanInterarrival = 120
				}
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s nr=%d open=%v: %v", s.Name(), nr, open, err)
				}
				if res.TotalCompleted == 0 {
					t.Errorf("%s nr=%d open=%v: nothing completed", s.Name(), nr, open)
				}
			}
		}
	}
}
