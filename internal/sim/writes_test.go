package sim

import (
	"testing"

	"tapejuke/internal/sched"
)

func writeCfg(policy WritePolicy) Config {
	cfg := quickCfg(sched.NewDynamic(sched.MaxBandwidth))
	cfg.WriteMeanInterarrival = 500
	cfg.WritePolicy = policy
	return cfg
}

func TestPiggybackWritesFlush(t *testing.T) {
	res, err := Run(writeCfg(WritePiggyback))
	if err != nil {
		t.Fatal(err)
	}
	if res.WritesFlushed == 0 {
		t.Fatal("no delta writes reached tape")
	}
	if res.WriteSeconds <= 0 {
		t.Error("flushes should consume drive time")
	}
	if res.MeanWriteDelaySec <= 0 {
		t.Error("buffered writes should report a residence time")
	}
	// Reads continue to be served.
	if res.Completed == 0 {
		t.Error("read workload starved by writes")
	}
	// Writes cost read throughput, but not catastrophically at this rate
	// (one delta per ~500 s against ~80 s per read).
	noWrites, err := Run(quickCfg(sched.NewDynamic(sched.MaxBandwidth)))
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputKBps > noWrites.ThroughputKBps {
		t.Error("adding writes should not raise read throughput")
	}
	if res.ThroughputKBps < noWrites.ThroughputKBps*0.7 {
		t.Errorf("writes cost %.0f%% of read throughput; expected mild interference",
			100*(1-res.ThroughputKBps/noWrites.ThroughputKBps))
	}
}

func TestIdleOnlyWritesInOpenModel(t *testing.T) {
	cfg := writeCfg(WriteIdleOnly)
	cfg.QueueLength = 0
	cfg.MeanInterarrival = 1000 // light read load leaves idle time
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WritesFlushed == 0 {
		t.Fatal("idle-only policy never flushed despite idle time")
	}
}

func TestIdleOnlyClosedNeedsThreshold(t *testing.T) {
	// A closed jukebox never idles, so the idle-only policy alone buffers
	// forever; the force-flush threshold is the relief valve.
	cfg := writeCfg(WriteIdleOnly)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WritesFlushed != 0 {
		t.Errorf("idle-only closed model flushed %d blocks; expected none", res.WritesFlushed)
	}
	if res.MaxBufferedWrites < 100 {
		t.Errorf("buffer peaked at %d; expected a large backlog", res.MaxBufferedWrites)
	}

	cfg.WriteFlushThreshold = 50
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WritesFlushed == 0 {
		t.Error("threshold did not force flushes")
	}
	// The buffer can overshoot the threshold by the writes arriving during
	// one sweep, but not by much at this write rate.
	if res.MaxBufferedWrites > 80 {
		t.Errorf("buffer peaked at %d despite threshold 50", res.MaxBufferedWrites)
	}
}

func TestWriteValidation(t *testing.T) {
	cfg := writeCfg(WritePiggyback)
	cfg.WriteMeanInterarrival = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative write rate accepted")
	}
	cfg = writeCfg(WritePiggyback)
	cfg.WriteReserveMB = cfg.TapeCapMB
	if _, err := Run(cfg); err == nil {
		t.Error("full-tape write reserve accepted")
	}
}

// TestMultiDriveWritesDrain exercises the write extension on a two-drive
// jukebox: the shared buffers drain through whichever drive frees up, the
// busy vector keeps flush targets exclusive, and adding a second drive does
// not hurt the read side.
func TestMultiDriveWritesDrain(t *testing.T) {
	base := writeCfg(WritePiggybackAndIdle)
	base.WriteMeanInterarrival = 300
	base.WriteFlushThreshold = 60

	one, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Scheduler = sched.NewDynamic(sched.MaxBandwidth)
	cfg.Drives = 2
	cfg.SchedulerFactory = func() sched.Scheduler { return sched.NewDynamic(sched.MaxBandwidth) }
	two, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if two.WritesFlushed == 0 {
		t.Fatal("two-drive jukebox never flushed delta writes")
	}
	if two.WriteSeconds <= 0 {
		t.Error("flushes should consume drive time")
	}
	// Both runs see the same write stream; the two-drive jukebox must not
	// build a larger backlog than the single drive.
	if two.MaxBufferedWrites > one.MaxBufferedWrites {
		t.Errorf("two drives peaked at %d buffered writes, one drive at %d",
			two.MaxBufferedWrites, one.MaxBufferedWrites)
	}
	if two.Completed <= one.Completed {
		t.Errorf("two drives completed %d reads, one drive %d; writes starved the read side",
			two.Completed, one.Completed)
	}
	// Determinism holds with writes and multiple drives.
	again, err := Run(func() Config {
		c := base
		c.Scheduler = sched.NewDynamic(sched.MaxBandwidth)
		c.Drives = 2
		c.SchedulerFactory = func() sched.Scheduler { return sched.NewDynamic(sched.MaxBandwidth) }
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	if again.WritesFlushed != two.WritesFlushed || again.Completed != two.Completed {
		t.Error("two-drive write runs are not deterministic")
	}
}

func TestWritePolicyStrings(t *testing.T) {
	if WritePiggyback.String() != "piggyback" ||
		WriteIdleOnly.String() != "idle-only" ||
		WritePiggybackAndIdle.String() != "piggyback+idle" ||
		WritePolicy(9).String() != "unknown" {
		t.Error("WritePolicy.String mismatch")
	}
}

func TestObserverSeesEvents(t *testing.T) {
	cfg := writeCfg(WritePiggybackAndIdle)
	cfg.Horizon = 50_000
	counts := map[EventKind]int{}
	cfg.Observer = ObserverFunc(func(ev Event) {
		counts[ev.Kind]++
		// Operations in flight at the horizon finish past it; allow one
		// worst-case operation (switch + full-tape locate + read).
		if ev.Time < 0 || ev.Time > cfg.Horizon+700 {
			t.Errorf("event %v at impossible time %v", ev.Kind, ev.Time)
		}
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(counts[EventComplete]) != res.TotalCompleted {
		t.Errorf("observed %d completions, result says %d",
			counts[EventComplete], res.TotalCompleted)
	}
	if counts[EventRead] < counts[EventComplete] {
		t.Error("every completion requires a read")
	}
	if counts[EventSwitch] == 0 {
		t.Error("no switch events observed")
	}
	if counts[EventWriteFlush] == 0 {
		t.Error("no write-flush events observed")
	}
}

func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EventSwitch:     "switch",
		EventRead:       "read",
		EventComplete:   "complete",
		EventIdle:       "idle",
		EventWriteFlush: "write-flush",
		EventKind(42):   "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}
