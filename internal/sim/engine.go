package sim

import (
	"fmt"

	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
	"tapejuke/internal/stats"
	"tapejuke/internal/tapemodel"
	"tapejuke/internal/workload"
)

// Run executes one simulation and returns its metrics.
func Run(cfg Config) (*Result, error) {
	e, err := newEngine(cfg, nil)
	if err != nil {
		return nil, err
	}
	return e.run()
}

// newCostModel builds a cost model with its dense block-grid table enabled.
// The table devirtualizes the cost hot path and is bit-exact, so results
// are identical whether or not it builds (it declines serpentine profiles
// and inexact grids).
func newCostModel(prof tapemodel.Positioner, blockMB float64, maxBlocks int) *sched.CostModel {
	c := &sched.CostModel{Prof: prof, BlockMB: blockMB}
	c.EnableTable(maxBlocks)
	return c
}

// reservoirK is the percentile reservoir's sample capacity.
const reservoirK = 4096

// engine is the state of one in-progress simulation: the shared scheduling
// state, one drive record per drive, the workload streams, and the metric
// accumulators. A single-drive jukebox is simply the one-drive case of the
// same event-calendar kernel (kernel.go).
type engine struct {
	cfg     Config
	prof    tapemodel.Positioner
	sh      *sched.Shared
	drives  []drive
	gen     workload.Source
	arr     workload.Arrivals
	nextArr float64 // next undelivered external arrival time (+Inf closed)

	now         float64
	warmupEnd   float64
	outstanding int64
	nextID      int64

	// reqFree recycles Request structs whose previous occupant has fully
	// left the system (Done and off the deadline calendar), making
	// steady-state request turnover allocation-free.
	reqFree []*sched.Request

	// intn is e.gen.Rand().Int63n, bound once; passing the bound method
	// value into Reservoir.Add avoids allocating a fresh closure per
	// completion.
	intn func(int64) int64

	// metrics
	resp         stats.Accumulator
	respSample   *stats.Reservoir
	completed    int64 // post-warmup
	switches     int64 // post-warmup
	totalArr     int64
	totalDone    int64
	locateSec    float64
	readSec      float64
	switchSec    float64
	idleSec      float64
	queueAreaSec float64

	readsPerTape []int64

	// Deferred observer events, ordered by (time, push sequence); operations
	// queue their interior and end-of-operation events at issue time and the
	// kernel releases them as the clock passes them (kernel.go).
	evq   eventQueue
	evSeq int64

	writes *writeState    // write-model extension, nil when disabled
	flt    *faultState    // fault-model extension, nil when disabled
	ovl    *overloadState // overload-robustness extension, nil when disabled
	rep    *repairState   // self-healing replication extension, nil when disabled
	hlt    *healthState   // proactive media-health extension, nil when disabled
}

// newEngine assembles one run's state. sess, when non-nil, supplies cached
// layouts/cost tables and recycled scratch (see Session); nil preserves the
// build-everything-fresh path of the package-level Run.
func newEngine(cfg Config, sess *Session) (*engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Profile == nil {
		cfg.Profile = tapemodel.EXB8505XL()
	}
	if cfg.WarmupFrac == 0 {
		cfg.WarmupFrac = 0.05
	}
	if cfg.WriteMeanInterarrival > 0 && cfg.WriteReserveMB == 0 {
		cfg.WriteReserveMB = 256
	}
	layCfg, capBlocks, err := cfg.LayoutConfig()
	if err != nil {
		return nil, err
	}
	var lay *layout.Layout
	if sess != nil && !cfg.Repair.Enabled() {
		lay, err = sess.cachedLayout(layCfg)
	} else {
		// Repair mutates the layout in place, so a run with it enabled
		// must own a fresh instance rather than the session-shared one.
		lay, err = layout.Build(layCfg)
	}
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	var gen workload.Source
	if cfg.Source != nil {
		gen = cfg.Source
	} else if cfg.ZipfS > 0 {
		zg, err := workload.NewZipfGeneratorRand(lay, cfg.ZipfS, sess.genRng(cfg.Seed))
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		gen = zg
	} else {
		hg, err := workload.NewGeneratorRand(lay, cfg.ReadHotPercent, sess.genRng(cfg.Seed))
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		if err := hg.SetSequentialProb(cfg.SequentialProb); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		gen = hg
	}
	arr := cfg.Arrivals
	if arr == nil {
		if arr, err = newArrivals(&cfg, sess); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	nd := cfg.Drives
	if nd < 1 {
		nd = 1
	}
	// The cost table (enabled inside newCostModel/cachedCosts) covers the
	// whole tape: data region plus write reserve.
	tableBlocks := int(cfg.TapeCapMB / cfg.BlockMB)
	var costs *sched.CostModel
	var sh *sched.Shared
	if sess != nil {
		costs = sess.cachedCosts(cfg.Profile, cfg.BlockMB, tableBlocks)
		if sh = sess.sh; sh != nil {
			sh.Reset(lay, costs)
		}
	} else {
		costs = newCostModel(cfg.Profile, cfg.BlockMB, tableBlocks)
	}
	if sh == nil {
		sh = &sched.Shared{Layout: lay, Costs: costs}
	}
	if nd > 1 {
		// The busy vector exists only with competing drives; the single-drive
		// fast path keeps Available to a nil check.
		sh.Busy = make([]bool, cfg.Tapes)
	}
	e := &engine{
		cfg:       cfg,
		prof:      cfg.Profile,
		sh:        sh,
		gen:       gen,
		arr:       arr,
		warmupEnd: cfg.Horizon * cfg.WarmupFrac,
	}
	if sess != nil {
		// Adopt the session's recycled scratch: the request free list, the
		// reservoir with its sample buffers, the per-tape counters, the
		// drive records, and the event calendar's storage.
		e.reqFree, sess.reqFree = sess.reqFree, nil
		if r := sess.respSample; r != nil && r.K == reservoirK {
			r.Reset()
			e.respSample = r
		}
		if rt := sess.readsPerTape; cap(rt) >= cfg.Tapes {
			rt = rt[:cfg.Tapes]
			for i := range rt {
				rt[i] = 0
			}
			e.readsPerTape = rt
		}
		if cap(sess.drives) >= nd {
			e.drives = sess.drives[:nd]
		}
		e.evq = sess.evq[:0]
	}
	if e.respSample == nil {
		e.respSample = stats.NewReservoir(reservoirK)
	}
	if e.readsPerTape == nil {
		e.readsPerTape = make([]int64, cfg.Tapes)
	}
	if e.drives == nil {
		e.drives = make([]drive, nd)
	}
	e.intn = e.gen.Rand().Int63n
	for i := range e.drives {
		s := cfg.Scheduler
		if i > 0 {
			// Schedulers are stateful; every extra drive gets a fresh
			// instance of the same algorithm.
			s = cfg.SchedulerFactory()
		}
		e.drives[i] = drive{
			st:       &sched.State{Shared: sh, Mounted: -1},
			schd:     s,
			failTape: -1,
		}
	}
	if err := e.initWrites(capBlocks); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := e.initFaults(capBlocks); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := e.initOverload(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	e.initRepair()
	e.initHealth()
	// Seed the system: closed models start with the full queue present;
	// open models schedule their first Poisson arrival.
	for i := 0; i < arr.InitialCount(); i++ {
		sh.Pending = append(sh.Pending, e.newRequest(0))
	}
	e.nextArr = arr.Next()
	return e, nil
}

// newRequest mints a request for a randomly drawn block, reusing a recycled
// Request struct when one is free.
func (e *engine) newRequest(at float64) *sched.Request {
	e.nextID++
	e.totalArr++
	e.outstanding++
	var r *sched.Request
	if n := len(e.reqFree); n > 0 {
		r = e.reqFree[n-1]
		e.reqFree[n-1] = nil
		e.reqFree = e.reqFree[:n-1]
	} else {
		r = new(sched.Request)
	}
	*r = sched.Request{ID: e.nextID, Block: e.gen.Next(), Arrival: at}
	e.assignDeadline(r)
	return r
}

// freeRequest returns a request that has left the system to the free list.
// Requests still referenced by the deadline calendar are left alone; the
// calendar's lazy pruning frees them when they pop.
func (e *engine) freeRequest(r *sched.Request) {
	if r.OnCalendar {
		return
	}
	e.reqFree = append(e.reqFree, r)
}

// pumpArrivals delivers every external arrival due by now: first through
// the admission controller, then to the incremental schedulers, else to the
// pending list. External arrivals in a closed model are flash-crowd extras;
// they never respawn.
func (e *engine) pumpArrivals() {
	for e.nextArr <= e.now {
		at := e.nextArr
		e.nextArr = e.arr.Next()
		if !e.admitArrival() {
			continue
		}
		r := e.newRequest(at)
		if e.arr.Closed() {
			r.Ephemeral = true
		}
		e.deliver(r)
	}
	e.pumpWrites()
}

// deliver routes one new request through the incremental schedulers: it is
// offered to each drive executing a sweep, in drive order; the first
// acceptance wins, otherwise the request joins the shared pending list.
// With the fault model on, a request for a block with no readable copy left
// is abandoned immediately; a closed-model process then issues a fresh
// request (the respawn chain is bounded so heavy data loss cannot loop
// forever).
func (e *engine) deliver(r *sched.Request) {
	for tries := 0; ; tries++ {
		if e.flt == nil || e.sh.Serviceable(r.Block) {
			for i := range e.drives {
				dr := &e.drives[i]
				if dr.st.Active != nil && dr.schd.OnArrival(dr.st, r) {
					return
				}
			}
			e.sh.Pending = append(e.sh.Pending, r)
			return
		}
		e.unserviceable(r)
		if !e.arr.Closed() || !e.flt.anyTapeUp() || tries >= 100 {
			return
		}
		r = e.newRequest(e.now)
	}
}

// complete records the completion of request r at the current time and, in
// the closed model, spawns its replacement.
func (e *engine) complete(r *sched.Request) {
	e.totalDone++
	e.outstanding--
	if e.rep != nil {
		e.rep.heat.Touch(int(r.Block), e.now)
	}
	if e.now > e.warmupEnd {
		e.completed++
		rt := e.now - r.Arrival
		e.resp.Add(rt)
		e.respSample.Add(rt, e.intn)
		if r.FaultedAt > 0 {
			e.flt.rerouted++
			e.flt.recovery.Add(e.now - r.FaultedAt)
		}
	}
	if o := e.ovl; o != nil {
		r.Done = true
		if r.Deadline > 0 {
			if e.now > r.Deadline {
				o.late++
				if e.now > e.warmupEnd {
					o.missPost++
				}
			}
			if e.now > e.warmupEnd {
				o.deadlinedPost++
			}
		}
	}
	e.push(Event{Kind: EventComplete, Time: e.now, Tape: r.Target.Tape,
		Pos: r.Target.Pos, Request: r.ID})
	respawn := e.arr.Closed() && !r.Ephemeral
	e.freeRequest(r)
	if respawn {
		e.deliver(e.newRequest(e.now))
	}
}

func (e *engine) result() *Result {
	measured := e.now - e.warmupEnd
	if measured < 0 {
		measured = 0
	}
	res := &Result{
		SchedulerName:   e.drives[0].schd.Name(),
		SimSeconds:      e.now,
		MeasuredSeconds: measured,
		Completed:       e.completed,
		TapeSwitches:    e.switches,
		LocateSeconds:   e.locateSec,
		ReadSeconds:     e.readSec,
		SwitchSeconds:   e.switchSec,
		IdleSeconds:     e.idleSec,
		TotalArrivals:   e.totalArr,
		TotalCompleted:  e.totalDone,
		MeanResponseSec: e.resp.Mean(),
		MaxResponseSec:  e.resp.Max(),
		P50ResponseSec:  e.respSample.Percentile(0.50),
		P95ResponseSec:  e.respSample.Percentile(0.95),
		P99ResponseSec:  e.respSample.Percentile(0.99),
		ReadsPerTape:    append([]int64(nil), e.readsPerTape...),
	}
	if measured > 0 {
		res.ThroughputKBps = float64(e.completed) * e.cfg.BlockMB * 1024 / measured
		res.RequestsPerMinute = float64(e.completed) * 60 / measured
	}
	if e.now > 0 {
		res.MeanQueueLen = e.queueAreaSec / e.now
	}
	if w := e.writes; w != nil {
		res.WritesFlushed = w.flushed
		res.WriteSeconds = w.flushSec
		res.MeanWriteDelaySec = w.delay.Mean()
		res.MaxBufferedWrites = w.maxBuffer
	}
	e.faultResult(res)
	e.overloadResult(res)
	e.repairResult(res)
	e.healthResult(res)
	return res
}
