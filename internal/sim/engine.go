package sim

import (
	"fmt"
	"math"

	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
	"tapejuke/internal/stats"
	"tapejuke/internal/tapemodel"
	"tapejuke/internal/workload"
)

// Run executes one simulation and returns its metrics.
func Run(cfg Config) (*Result, error) {
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Drives > 1 {
		m := &multiEngine{
			engine: e,
			drives: make([]drive, cfg.Drives),
			busy:   make([]bool, cfg.Tapes),
		}
		m.st.Busy = make([]bool, cfg.Tapes)
		for i := 0; i < cfg.Drives; i++ {
			m.scheds = append(m.scheds, cfg.SchedulerFactory())
		}
		m.deliverFn = m.deliverMulti
		return m.runMulti()
	}
	return e.run()
}

// engine is the state of one in-progress simulation.
type engine struct {
	cfg     Config
	prof    tapemodel.Positioner
	st      *sched.State
	schd    sched.Scheduler
	gen     workload.Source
	arr     workload.Arrivals
	nextArr float64 // next undelivered external arrival time (+Inf closed)

	now         float64
	warmupEnd   float64
	outstanding int64
	nextID      int64

	// metrics
	resp         stats.Accumulator
	respSample   *stats.Reservoir
	completed    int64 // post-warmup
	switches     int64 // post-warmup
	totalArr     int64
	totalDone    int64
	locateSec    float64
	readSec      float64
	switchSec    float64
	idleSec      float64
	queueAreaSec float64

	readsPerTape []int64

	writes *writeState // write-model extension, nil when disabled
	flt    *faultState // fault-model extension, nil when disabled

	// deliverFn routes a request through the engine's arrival path; the
	// multi-drive engine overrides it with deliverMulti.
	deliverFn func(*sched.Request)
}

func newEngine(cfg Config) (*engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Profile == nil {
		cfg.Profile = tapemodel.EXB8505XL()
	}
	if cfg.WarmupFrac == 0 {
		cfg.WarmupFrac = 0.05
	}
	if cfg.WriteMeanInterarrival > 0 && cfg.WriteReserveMB == 0 {
		cfg.WriteReserveMB = 256
	}
	dataCapMB := cfg.TapeCapMB
	if cfg.WriteMeanInterarrival > 0 {
		dataCapMB -= cfg.WriteReserveMB
		if dataCapMB < cfg.BlockMB || cfg.WriteReserveMB < cfg.BlockMB {
			return nil, fmt.Errorf("sim: write reserve %v MB leaves no room for data or deltas", cfg.WriteReserveMB)
		}
	}
	capBlocks := int(dataCapMB / cfg.BlockMB)
	lay, err := layout.Build(layout.Config{
		Tapes:         cfg.Tapes,
		TapeCapBlocks: capBlocks,
		HotPercent:    cfg.HotPercent,
		Replicas:      cfg.Replicas,
		Kind:          cfg.Kind,
		StartPos:      cfg.StartPos,
		DataBlocks:    cfg.DataBlocks,
		PackAfterData: cfg.PackAfterData,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	var gen workload.Source
	if cfg.ZipfS > 0 {
		zg, err := workload.NewZipfGenerator(lay, cfg.ZipfS, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		gen = zg
	} else {
		hg, err := workload.NewGenerator(lay, cfg.ReadHotPercent, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		if err := hg.SetSequentialProb(cfg.SequentialProb); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		gen = hg
	}
	var arr workload.Arrivals
	if cfg.QueueLength > 0 {
		arr = workload.ClosedArrivals{QueueLength: cfg.QueueLength}
	} else {
		arr, err = workload.NewPoissonArrivals(cfg.MeanInterarrival, cfg.Seed+1)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	e := &engine{
		cfg:          cfg,
		prof:         cfg.Profile,
		schd:         cfg.Scheduler,
		gen:          gen,
		arr:          arr,
		warmupEnd:    cfg.Horizon * cfg.WarmupFrac,
		respSample:   stats.NewReservoir(4096),
		readsPerTape: make([]int64, cfg.Tapes),
		st: &sched.State{
			Layout:  lay,
			Costs:   &sched.CostModel{Prof: cfg.Profile, BlockMB: cfg.BlockMB},
			Mounted: -1,
		},
	}
	e.deliverFn = e.deliver
	if err := e.initWrites(capBlocks); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := e.initFaults(capBlocks); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	// Seed the system: closed models start with the full queue present;
	// open models schedule their first Poisson arrival.
	for i := 0; i < arr.InitialCount(); i++ {
		e.st.Pending = append(e.st.Pending, e.newRequest(0))
	}
	e.nextArr = arr.Next()
	return e, nil
}

// newRequest mints a request for a randomly drawn block.
func (e *engine) newRequest(at float64) *sched.Request {
	e.nextID++
	e.totalArr++
	e.outstanding++
	return &sched.Request{ID: e.nextID, Block: e.gen.Next(), Arrival: at}
}

// advance moves the clock by dt, charging the time to *bucket and
// accumulating the queue-length integral.
func (e *engine) advance(dt float64, bucket *float64) {
	e.queueAreaSec += float64(e.outstanding) * dt
	e.now += dt
	*bucket += dt
}

// pumpArrivals delivers every external arrival due by now: first to the
// incremental scheduler, else to the pending list.
func (e *engine) pumpArrivals() {
	for e.nextArr <= e.now {
		r := e.newRequest(e.nextArr)
		e.deliver(r)
		e.nextArr = e.arr.Next()
	}
	e.pumpWrites()
}

// deliver routes one new request through the incremental scheduler. With
// the fault model on, a request for a block with no readable copy left is
// abandoned immediately; a closed-model process then issues a fresh request
// (the respawn chain is bounded so heavy data loss cannot loop forever).
func (e *engine) deliver(r *sched.Request) {
	for tries := 0; ; tries++ {
		if e.flt == nil || e.st.Serviceable(r.Block) {
			if e.st.Active != nil && e.schd.OnArrival(e.st, r) {
				return
			}
			e.st.Pending = append(e.st.Pending, r)
			return
		}
		e.unserviceable(r)
		if !e.arr.Closed() || !e.flt.anyTapeUp() || tries >= 100 {
			return
		}
		r = e.newRequest(e.now)
	}
}

// complete records the completion of request r at the current time and, in
// the closed model, spawns its replacement.
func (e *engine) complete(r *sched.Request) {
	e.totalDone++
	e.outstanding--
	if e.now > e.warmupEnd {
		e.completed++
		rt := e.now - r.Arrival
		e.resp.Add(rt)
		e.respSample.Add(rt, e.gen.Rand().Int63n)
		if r.FaultedAt > 0 {
			e.flt.rerouted++
			e.flt.recovery.Add(e.now - r.FaultedAt)
		}
	}
	e.emit(Event{Kind: EventComplete, Time: e.now, Tape: r.Target.Tape,
		Pos: r.Target.Pos, Request: r.ID})
	if e.arr.Closed() {
		e.deliver(e.newRequest(e.now))
	}
}

func (e *engine) run() (*Result, error) {
	for e.now < e.cfg.Horizon {
		if e.flt != nil {
			e.checkDriveRepair()
			e.dropUnserviceable()
		}
		e.pumpArrivals()
		if len(e.st.Pending) == 0 {
			// The write extension uses idle periods to drain delta buffers.
			if e.idleFlush() {
				continue
			}
			// Idle: wait for the next arrival (step 4 of the service model).
			if math.IsInf(e.nextArr, 1) {
				break // closed model with zero queue cannot occur; done
			}
			var dt float64
			if e.nextArr >= e.cfg.Horizon {
				dt = e.cfg.Horizon - e.now
			} else {
				dt = e.nextArr - e.now
			}
			if e.writes != nil && e.writes.next < e.now+dt {
				dt = e.writes.next - e.now // wake early for a buffered write
			}
			e.advance(dt, &e.idleSec)
			e.emit(Event{Kind: EventIdle, Time: e.now, Tape: -1, Pos: -1, Seconds: dt})
			if e.now >= e.cfg.Horizon {
				break
			}
			continue
		}

		tape, sweep, ok := e.schd.Reschedule(e.st)
		if !ok {
			return nil, fmt.Errorf("sim: scheduler %s failed to schedule %d pending requests",
				e.schd.Name(), len(e.st.Pending))
		}
		if tape != e.st.Mounted {
			sw := e.st.Costs.SwitchCost(e.st.Mounted, e.st.Head, tape)
			if e.flt != nil {
				if !e.faultySwitch(tape, sw) {
					// The load never succeeded: the target tape is masked
					// and the extracted sweep goes back to the pending list
					// to be rerouted to surviving replicas.
					e.requeueSweep(sweep)
					continue
				}
			} else {
				e.advance(sw, &e.switchSec)
				e.st.Mounted, e.st.Head = tape, 0
				if e.now > e.warmupEnd {
					e.switches++
				}
				e.emit(Event{Kind: EventSwitch, Time: e.now, Tape: tape, Pos: -1, Seconds: sw})
			}
		}
		e.st.Active = sweep
		// Arrivals that landed during the switch meet the incremental
		// scheduler now.
		e.pumpArrivals()

		for !sweep.Empty() && e.now < e.cfg.Horizon {
			r := sweep.Pop()
			if e.flt != nil {
				e.faultyRead(r, sweep)
			} else {
				loc, rd, newHead := e.st.Costs.ServeOneParts(e.st.Head, r.Target.Pos)
				e.advance(loc, &e.locateSec)
				e.advance(rd, &e.readSec)
				e.st.Head = newHead
				if e.now > e.warmupEnd {
					e.readsPerTape[r.Target.Tape]++
				}
				e.emit(Event{Kind: EventRead, Time: e.now, Tape: r.Target.Tape,
					Pos: r.Target.Pos, Seconds: loc + rd, Request: r.ID})
				e.complete(r)
			}
			e.pumpArrivals()
			if e.cfg.MaxCompletions > 0 && e.completed >= e.cfg.MaxCompletions {
				e.st.Active = nil
				return e.result(), nil
			}
		}
		e.st.Active = nil
		if e.now < e.cfg.Horizon {
			e.piggybackFlush()
		}
		// The head stays where the last retrieval left it until the next
		// major reschedule decides on a rewind and switch.
	}
	return e.result(), nil
}

func (e *engine) result() *Result {
	measured := e.now - e.warmupEnd
	if measured < 0 {
		measured = 0
	}
	res := &Result{
		SchedulerName:   e.schd.Name(),
		SimSeconds:      e.now,
		MeasuredSeconds: measured,
		Completed:       e.completed,
		TapeSwitches:    e.switches,
		LocateSeconds:   e.locateSec,
		ReadSeconds:     e.readSec,
		SwitchSeconds:   e.switchSec,
		IdleSeconds:     e.idleSec,
		TotalArrivals:   e.totalArr,
		TotalCompleted:  e.totalDone,
		MeanResponseSec: e.resp.Mean(),
		MaxResponseSec:  e.resp.Max(),
		P95ResponseSec:  e.respSample.Percentile(0.95),
		ReadsPerTape:    append([]int64(nil), e.readsPerTape...),
	}
	if measured > 0 {
		res.ThroughputKBps = float64(e.completed) * e.cfg.BlockMB * 1024 / measured
		res.RequestsPerMinute = float64(e.completed) * 60 / measured
	}
	if e.now > 0 {
		res.MeanQueueLen = e.queueAreaSec / e.now
	}
	if w := e.writes; w != nil {
		res.WritesFlushed = w.flushed
		res.WriteSeconds = w.flushSec
		res.MeanWriteDelaySec = w.delay.Mean()
		res.MaxBufferedWrites = w.maxBuffer
	}
	e.faultResult(res)
	return res
}
