package sim

import (
	"math"
	"sort"

	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
	"tapejuke/internal/workload"
)

// overloadState is the engine-side bookkeeping of the overload-robustness
// extensions: the deadline calendar, the admission controller, and the
// degradation counters. nil when deadlines, admission control, and
// degradation are all disabled, which keeps the overload-free hot path to a
// handful of nil checks (the same pattern as faultState).
type overloadState struct {
	ttl     *workload.TTLSampler // deadline assignment, nil when deadlines off
	dl      deadlineHeap         // outstanding deadlined requests, lazily pruned
	admit   AdmissionConfig
	degrade DegradeConfig

	expired       int64 // requests cancelled at their deadline (whole run)
	late          int64 // completions past their deadline (whole run)
	missPost      int64 // post-warmup expiries + late completions
	deadlinedPost int64 // post-warmup deadlined outcomes (completions + expiries)
	shed          int64
	rejected      int64
	maxQueueAge   float64
	truncated     int64
	deferred      int64
}

// deadlineHeap is a monomorphic 4-ary min-heap of deadlined requests on
// (Deadline, ID) -- a total order, so pop order matches the binary
// interface heap it replaces. Requests that leave the system another way
// (completion, shedding, unserviceable) stay in the heap with Done set and
// are skipped lazily. OnCalendar mirrors heap membership so the request
// free list knows when a request is fully unreferenced.
type deadlineHeap []*sched.Request

func (h deadlineHeap) less(i, j int) bool {
	if h[i].Deadline != h[j].Deadline {
		return h[i].Deadline < h[j].Deadline
	}
	return h[i].ID < h[j].ID
}

func (h *deadlineHeap) push(r *sched.Request) {
	r.OnCalendar = true
	q := append(*h, r)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

func (h *deadlineHeap) pop() *sched.Request {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if q.less(j, best) {
				best = j
			}
		}
		if !q.less(best, i) {
			break
		}
		q[i], q[best] = q[best], q[i]
		i = best
	}
	top.OnCalendar = false
	return top
}

// evictor is implemented by schedulers that want to hear about requests the
// engine cancels out of their in-flight sweep (deadline expiry), e.g. the
// envelope scheduler tightening its envelope without a rebuild.
type evictor interface {
	OnEvict(st *sched.State, r *sched.Request)
}

// initOverload wires the overload extensions into the engine. It must run
// before the initial request seeding so seeded requests draw deadlines.
func (e *engine) initOverload() error {
	cfg := e.cfg
	e.sh.AgeWeight = cfg.AgeWeight
	if !cfg.Deadlines.Enabled() && !cfg.Admission.Enabled() && !cfg.Degrade.Enabled() {
		return nil
	}
	o := &overloadState{admit: cfg.Admission, degrade: cfg.Degrade}
	if d := cfg.Deadlines; d.Enabled() {
		seed := d.Seed
		if seed == 0 {
			seed = cfg.Seed + 4
		}
		ttl, err := workload.NewTTLSampler(e.sh.Layout, d.HotTTL, d.ColdTTL, d.Fixed, seed)
		if err != nil {
			return err
		}
		o.ttl = ttl
	}
	e.ovl = o
	return nil
}

// newArrivals builds the arrival process, bursty when configured. A
// non-nil session donates its recycled Poisson stream.
func newArrivals(cfg *Config, sess *Session) (workload.Arrivals, error) {
	b := cfg.Burst
	if cfg.QueueLength > 0 {
		if b.FlashCount > 0 {
			return &workload.FlashClosedArrivals{
				QueueLength: cfg.QueueLength,
				FlashAt:     b.FlashAt,
				FlashCount:  b.FlashCount,
			}, nil
		}
		return workload.ClosedArrivals{QueueLength: cfg.QueueLength}, nil
	}
	if b.Enabled() {
		seed := b.Seed
		if seed == 0 {
			seed = cfg.Seed + 5
		}
		return workload.NewBurstArrivals(cfg.MeanInterarrival, b.Factor, b.OnFrac,
			b.Period, b.FlashAt, b.FlashLen, seed)
	}
	return workload.NewPoissonArrivalsRand(cfg.MeanInterarrival, sess.arrRng(cfg.Seed+1))
}

// assignDeadline draws a TTL for a freshly minted request and places it on
// the deadline calendar.
func (e *engine) assignDeadline(r *sched.Request) {
	o := e.ovl
	if o == nil || o.ttl == nil {
		return
	}
	if ttl := o.ttl.TTL(r.Block); ttl > 0 {
		r.Deadline = r.Arrival + ttl
		o.dl.push(r)
	}
}

// nextDeadline returns the earliest live deadline on the calendar, pruning
// (and recycling) requests that already left the system, or +Inf when none
// remain.
func (e *engine) nextDeadline() float64 {
	o := e.ovl
	for len(o.dl) > 0 && o.dl[0].Done {
		e.freeRequest(o.dl.pop())
	}
	if len(o.dl) == 0 {
		return math.Inf(1)
	}
	return o.dl[0].Deadline
}

// expireDue cancels every deadlined request whose deadline has passed.
// Requests whose read is already in flight are left to complete late (the
// media transfer is not abandoned mid-read); everything else is removed from
// wherever it queues -- the pending list, an in-flight sweep, or a fault
// requeue in limbo -- and counted.
func (e *engine) expireDue() {
	o := e.ovl
	if o == nil {
		return
	}
	for len(o.dl) > 0 {
		r := o.dl[0]
		if r.Done {
			e.freeRequest(o.dl.pop())
			continue
		}
		if r.Deadline > e.now {
			return
		}
		o.dl.pop()
		if e.inFlightReq(r) {
			continue // completes late; counted at completion and recycled there
		}
		e.expireOne(r)
	}
}

// inFlightReq reports whether some drive is currently reading r.
func (e *engine) inFlightReq(r *sched.Request) bool {
	for i := range e.drives {
		if e.drives[i].inFlight == r {
			return true
		}
	}
	return false
}

// faultLimboReq reports whether some drive still references r in a fault
// limbo -- parked as the drive's permanently faulted read or on its
// aborted-sweep list -- between the issue that discovered the fault and the
// settle that will requeue it.
func (e *engine) faultLimboReq(r *sched.Request) bool {
	if e.flt == nil {
		return false
	}
	for i := range e.drives {
		dr := &e.drives[i]
		if dr.faulted == r {
			return true
		}
		for _, q := range dr.abort {
			if q == r {
				return true
			}
		}
	}
	return false
}

// expireOne cancels one request at its deadline: removes it from the
// pending list or its sweep (telling an evictor scheduler), counts the
// expiry, and -- in the closed model -- respawns the process's next request
// so the population stays constant (flash extras are ephemeral and do not
// respawn).
func (e *engine) expireOne(r *sched.Request) {
	if !e.removePendingOne(r) {
		for i := range e.drives {
			dr := &e.drives[i]
			if dr.st.Active != nil && dr.st.Active.Remove(r) {
				if ev, ok := dr.schd.(evictor); ok {
					ev.OnEvict(dr.st, r)
				}
				break
			}
		}
	}
	r.Expired, r.Done = true, true
	e.outstanding--
	o := e.ovl
	o.expired++
	if e.now > e.warmupEnd {
		o.missPost++
		o.deadlinedPost++
		e.noteQueueAge(e.now - r.Arrival)
	}
	e.push(Event{Kind: EventExpire, Time: e.now, Tape: -1, Pos: -1, Request: r.ID})
	respawn := e.arr.Closed() && !r.Ephemeral
	// A request expiring while a drive holds it in fault limbo must not be
	// recycled yet: the drive's settle still dereferences it, and a reused
	// struct would alias a live request (requeueFaulted would then push the
	// new occupant into the pending list a second time). requeueFaulted
	// sees Expired at settle and frees it there instead.
	if !e.faultLimboReq(r) {
		e.freeRequest(r)
	}
	if respawn {
		e.deliver(e.newRequest(e.now))
	}
}

// removePendingOne deletes r from the pending list by identity, preserving
// order; reports whether it was there.
func (e *engine) removePendingOne(r *sched.Request) bool {
	for i, q := range e.sh.Pending {
		if q == r {
			e.sh.Pending = append(e.sh.Pending[:i], e.sh.Pending[i+1:]...)
			return true
		}
	}
	return false
}

// admitArrival enforces the admission bound for one external arrival at
// e.now. It reports whether the arrival may enter; under AdmitShed it makes
// room by dropping the oldest pending request first. Arrivals rejected with
// no pending victim to shed are counted as rejected under either policy.
func (e *engine) admitArrival() bool {
	o := e.ovl
	if o == nil || !o.admit.Enabled() || e.outstanding < int64(o.admit.MaxQueue) {
		return true
	}
	if o.admit.Policy == AdmitShed && len(e.sh.Pending) > 0 {
		victim := e.sh.Pending[0]
		e.sh.Pending = e.sh.Pending[1:]
		victim.Done = true
		e.outstanding--
		o.shed++
		if e.now > e.warmupEnd {
			e.noteQueueAge(e.now - victim.Arrival)
		}
		e.push(Event{Kind: EventShed, Time: e.now, Tape: -1, Pos: -1, Request: victim.ID})
		e.freeRequest(victim)
		return true
	}
	o.rejected++
	e.push(Event{Kind: EventReject, Time: e.now, Tape: -1, Pos: -1})
	return false
}

// noteQueueAge tracks the oldest age any request reached before service,
// expiry, or shedding (post-warmup; callers gate on warm-up).
func (e *engine) noteQueueAge(age float64) {
	if e.ovl != nil && age > e.ovl.maxQueueAge {
		e.ovl.maxQueueAge = age
	}
}

// overloaded reports whether the outstanding-request count exceeds the
// degradation threshold.
func (e *engine) overloaded() bool {
	o := e.ovl
	return o != nil && o.degrade.Enabled() && e.outstanding > int64(o.degrade.QueueThreshold)
}

// deferWrites reports whether policy-driven delta flushes are suspended
// (graceful degradation; the force-drain threshold still applies).
func (e *engine) deferWrites() bool {
	return e.ovl != nil && e.ovl.degrade.DeferWrites && e.overloaded()
}

// truncateSweep cuts a freshly built sweep down to the MaxSweep most urgent
// requests while the system is overloaded, returning the rest to the
// pending list in (Arrival, ID) order. Urgency here is deadline order --
// earliest deadline first, deadline-free requests last, ties by arrival --
// so drive time concentrates on the requests that can still make it.
func (e *engine) truncateSweep(st *sched.State, tape int, sweep *sched.Sweep) *sched.Sweep {
	max := e.ovl.degrade.MaxSweep
	if sweep.Len() <= max {
		return sweep
	}
	reqs := sweep.Requests()
	sort.SliceStable(reqs, func(i, j int) bool {
		di, dj := reqs[i].Deadline, reqs[j].Deadline
		if di <= 0 {
			di = math.Inf(1)
		}
		if dj <= 0 {
			dj = math.Inf(1)
		}
		if di != dj {
			return di < dj
		}
		if reqs[i].Arrival != reqs[j].Arrival {
			return reqs[i].Arrival < reqs[j].Arrival
		}
		return reqs[i].ID < reqs[j].ID
	})
	for _, r := range reqs[max:] {
		r.Target = layout.Replica{}
		e.insertPending(r)
	}
	e.ovl.truncated++
	e.sh.ReleaseSweep(sweep)
	return e.sh.NewSweep(reqs[:max], st.StartHead(tape))
}

// insertPending returns a request to the pending list preserving
// (Arrival, ID) order, so schedulers keep seeing an arrival-ordered list.
func (e *engine) insertPending(r *sched.Request) {
	p := e.sh.Pending
	i := sort.Search(len(p), func(i int) bool {
		return p[i].Arrival > r.Arrival || (p[i].Arrival == r.Arrival && p[i].ID > r.ID)
	})
	p = append(p, nil)
	copy(p[i+1:], p[i:])
	p[i] = r
	e.sh.Pending = p
}

// overloadResult folds the overload metrics into the result.
func (e *engine) overloadResult(res *Result) {
	o := e.ovl
	if o == nil {
		return
	}
	res.Expired = o.expired
	res.LateCompletions = o.late
	res.DeadlineMisses = o.missPost
	if o.deadlinedPost > 0 {
		res.DeadlineMissRate = float64(o.missPost) / float64(o.deadlinedPost)
	}
	res.Shed = o.shed
	res.Rejected = o.rejected
	res.MaxQueueAgeSec = o.maxQueueAge
	res.TruncatedSweeps = o.truncated
	res.DeferredFlushes = o.deferred
}
