// Package faults models device unreliability in a tape jukebox: the fault
// classes a robotic tape library actually exhibits, generated as
// deterministic seeded streams so that fault runs are exactly reproducible.
//
// The paper studies replication purely as a performance lever; this package
// opens the availability axis the replication literature treats as primary
// (a replica is also redundancy). Five fault classes are modelled:
//
//   - transient media read errors: an individual block read fails with a
//     configurable probability and succeeds on retry;
//   - permanent bad-block ranges: short runs of tape positions that always
//     fail, placed per tape at initialization;
//   - whole-tape failures: each tape has an exponentially distributed time
//     to failure (mean TapeMTBFSec); once past it, every operation on the
//     tape fails permanently;
//   - drive failures: each drive has an exponential time between failures
//     and a fixed repair time during which it serves nothing;
//   - load/unload (switch) failures: a tape switch fails with a
//     configurable probability, consuming the mechanical time and forcing a
//     retry.
//
// A RetryPolicy bounds transient-error retries with simulated-time backoff
// and escalates to a permanent error on exhaustion. The Injector is the
// stream generator the simulator and jukebox Deck consult; it is
// single-goroutine, like the discrete-event simulator that owns it.
package faults

import (
	"fmt"
	"math"
	"math/rand"
)

// Config describes the fault environment of one run. The zero value
// disables every fault class.
type Config struct {
	// ReadTransientProb is the probability that one block-read attempt
	// fails with a recoverable media error. Retries redraw independently.
	ReadTransientProb float64
	// BadBlocksPerTape is the expected number of permanent bad-block
	// ranges per tape, placed uniformly at initialization (Poisson count
	// per tape). Reads inside a bad range always fail permanently.
	BadBlocksPerTape float64
	// BadBlockRangeLen is the maximum length, in blocks, of one bad range
	// (each range draws a length in [1, BadBlockRangeLen]; default 4).
	// Latent ranges (below) draw their lengths from the same bound.
	BadBlockRangeLen int
	// LatentErrorsPerTape is the expected number of latent bad-block ranges
	// per tape (Poisson count, like BadBlocksPerTape). A latent range is
	// placed at initialization but only becomes unreadable at its onset
	// time; until some read -- a user request or a background scrub --
	// touches it after onset, the error is undetected and the copy still
	// looks live to the scheduler. The media-patrol literature calls these
	// latent sector errors; they are what background scrubbing exists to
	// catch.
	LatentErrorsPerTape float64
	// LatentMeanOnsetSec is the mean of the exponential onset-time draw for
	// each latent range (default 500,000 s when latent errors are enabled).
	LatentMeanOnsetSec float64
	// TapeMTBFSec, when positive, gives each tape an exponentially
	// distributed time to permanent failure with this mean.
	TapeMTBFSec float64
	// DriveMTBFSec, when positive, gives each drive an exponentially
	// distributed uptime between failures with this mean.
	DriveMTBFSec float64
	// DriveRepairSec is the downtime of one drive failure (default 3600 s
	// when drive failures are enabled).
	DriveRepairSec float64
	// SwitchFailProb is the probability that one tape load/unload attempt
	// fails, consuming the mechanical switch time.
	SwitchFailProb float64

	// Retry bounds transient-error handling; zero values select the
	// defaults (3 retries, 30 s initial backoff, doubling).
	Retry RetryPolicy

	// Seed makes the fault streams deterministic. Independent of the
	// workload seed so fault and workload randomness do not interfere.
	Seed int64
}

// RetryPolicy bounds the handling of transient errors: up to MaxRetries
// extra attempts, with a simulated-time backoff before each, escalating to
// a permanent error when the budget is exhausted.
type RetryPolicy struct {
	// MaxRetries is the number of retry attempts after the first failure
	// (default 3 when the fault model is enabled).
	MaxRetries int
	// BackoffSec is the pause before the first retry (default 30 s).
	BackoffSec float64
	// BackoffFactor multiplies the pause for each further retry
	// (default 2).
	BackoffFactor float64
}

// withDefaults fills unset retry fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.BackoffSec == 0 {
		p.BackoffSec = 30
	}
	if p.BackoffFactor == 0 {
		p.BackoffFactor = 2
	}
	return p
}

// Delay returns the simulated-time backoff before retry attempt `attempt`
// (1-based: the pause before the first retry is Delay(1)).
func (p RetryPolicy) Delay(attempt int) float64 {
	d := p.BackoffSec
	for i := 1; i < attempt; i++ {
		d *= p.BackoffFactor
	}
	return d
}

// Enabled reports whether any fault class is active.
func (c Config) Enabled() bool {
	return c.ReadTransientProb > 0 || c.BadBlocksPerTape > 0 ||
		c.TapeMTBFSec > 0 || c.DriveMTBFSec > 0 || c.SwitchFailProb > 0 ||
		c.LatentErrorsPerTape > 0
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if c.ReadTransientProb < 0 || c.ReadTransientProb >= 1 {
		return fmt.Errorf("faults: ReadTransientProb %v out of [0,1)", c.ReadTransientProb)
	}
	if c.SwitchFailProb < 0 || c.SwitchFailProb >= 1 {
		return fmt.Errorf("faults: SwitchFailProb %v out of [0,1)", c.SwitchFailProb)
	}
	if c.BadBlocksPerTape < 0 {
		return fmt.Errorf("faults: BadBlocksPerTape %v must be non-negative", c.BadBlocksPerTape)
	}
	if c.BadBlockRangeLen < 0 {
		return fmt.Errorf("faults: BadBlockRangeLen %d must be non-negative", c.BadBlockRangeLen)
	}
	if c.LatentErrorsPerTape < 0 {
		return fmt.Errorf("faults: LatentErrorsPerTape %v must be non-negative", c.LatentErrorsPerTape)
	}
	if c.LatentMeanOnsetSec < 0 {
		return fmt.Errorf("faults: LatentMeanOnsetSec %v must be non-negative", c.LatentMeanOnsetSec)
	}
	if c.LatentMeanOnsetSec > 0 && c.LatentErrorsPerTape == 0 {
		return fmt.Errorf("faults: LatentMeanOnsetSec set without LatentErrorsPerTape")
	}
	if c.TapeMTBFSec < 0 {
		return fmt.Errorf("faults: TapeMTBFSec %v must be non-negative", c.TapeMTBFSec)
	}
	if c.DriveMTBFSec < 0 {
		return fmt.Errorf("faults: DriveMTBFSec %v must be non-negative", c.DriveMTBFSec)
	}
	if c.DriveRepairSec < 0 {
		return fmt.Errorf("faults: DriveRepairSec %v must be non-negative", c.DriveRepairSec)
	}
	if c.DriveRepairSec > 0 && c.DriveMTBFSec == 0 {
		return fmt.Errorf("faults: DriveRepairSec set without DriveMTBFSec")
	}
	r := c.Retry
	if r.MaxRetries < 0 || r.BackoffSec < 0 {
		return fmt.Errorf("faults: retry policy %+v must be non-negative", r)
	}
	if r.BackoffFactor != 0 && r.BackoffFactor < 1 {
		return fmt.Errorf("faults: BackoffFactor %v would shrink the backoff; need >= 1 (or 0 for the default)",
			r.BackoffFactor)
	}
	return nil
}

// Outcome classifies one faulted operation attempt.
type Outcome int

const (
	// OK: the attempt succeeded.
	OK Outcome = iota
	// Transient: the attempt failed but a retry may succeed.
	Transient
	// Permanent: the attempt failed and no retry on this copy can succeed.
	Permanent
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	}
	return "unknown"
}

// Injector generates the fault streams for one simulation run. It is not
// safe for concurrent use; the single-threaded discrete-event simulator
// consults it in event order, which is what makes runs reproducible.
type Injector struct {
	cfg   Config
	retry RetryPolicy
	rng   *rand.Rand

	tapeFailAt  []float64      // per-tape permanent failure time (+Inf = never)
	driveFailAt []float64      // per-drive next failure time (+Inf = never)
	bad         map[int64]bool // packed (tape,pos) of permanently dead copies
	badInjected int            // bad blocks placed at initialization
	tapeCap     int

	latent  map[int64]float64 // packed (tape,pos) -> latent-error onset time
	latents []Latent          // the same positions in deterministic draw order
}

// Latent is one latent bad-block position: physically unreadable from Onset
// on, but undetected (and still targeted by schedulers) until a read first
// touches it after onset.
type Latent struct {
	Tape, Pos int
	Onset     float64
}

// New builds the injector for a jukebox of `tapes` tapes of tapeCapBlocks
// blocks shared by `drives` drives. All randomness (bad-block placement,
// failure times, per-attempt draws) derives from cfg.Seed alone.
func New(cfg Config, tapes, drives, tapeCapBlocks int) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tapes < 1 || drives < 1 || tapeCapBlocks < 1 {
		return nil, fmt.Errorf("faults: invalid geometry (%d tapes, %d drives, %d blocks)", tapes, drives, tapeCapBlocks)
	}
	if cfg.BadBlockRangeLen == 0 {
		cfg.BadBlockRangeLen = 4
	}
	if cfg.DriveMTBFSec > 0 && cfg.DriveRepairSec == 0 {
		cfg.DriveRepairSec = 3600
	}
	inj := &Injector{
		cfg:     cfg,
		retry:   cfg.Retry.withDefaults(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		bad:     make(map[int64]bool),
		tapeCap: tapeCapBlocks,
	}
	inj.tapeFailAt = make([]float64, tapes)
	for t := range inj.tapeFailAt {
		inj.tapeFailAt[t] = math.Inf(1)
		if cfg.TapeMTBFSec > 0 {
			inj.tapeFailAt[t] = inj.rng.ExpFloat64() * cfg.TapeMTBFSec
		}
	}
	inj.driveFailAt = make([]float64, drives)
	for d := range inj.driveFailAt {
		inj.driveFailAt[d] = math.Inf(1)
		if cfg.DriveMTBFSec > 0 {
			inj.driveFailAt[d] = inj.rng.ExpFloat64() * cfg.DriveMTBFSec
		}
	}
	if cfg.BadBlocksPerTape > 0 {
		for t := 0; t < tapes; t++ {
			for n := poisson(inj.rng, cfg.BadBlocksPerTape); n > 0; n-- {
				start := inj.rng.Intn(tapeCapBlocks)
				length := 1 + inj.rng.Intn(cfg.BadBlockRangeLen)
				for p := start; p < start+length && p < tapeCapBlocks; p++ {
					key := packCopy(t, p)
					if !inj.bad[key] {
						inj.bad[key] = true
						inj.badInjected++
					}
				}
			}
		}
	}
	if cfg.LatentErrorsPerTape > 0 {
		// Drawn after every other stream so enabling latent errors leaves
		// the existing draws (and with them every pre-existing fault
		// configuration) bit-identical.
		if inj.cfg.LatentMeanOnsetSec == 0 {
			inj.cfg.LatentMeanOnsetSec = 500_000
		}
		inj.latent = make(map[int64]float64)
		for t := 0; t < tapes; t++ {
			for n := poisson(inj.rng, cfg.LatentErrorsPerTape); n > 0; n-- {
				start := inj.rng.Intn(tapeCapBlocks)
				length := 1 + inj.rng.Intn(inj.cfg.BadBlockRangeLen)
				onset := inj.rng.ExpFloat64() * inj.cfg.LatentMeanOnsetSec
				for p := start; p < start+length && p < tapeCapBlocks; p++ {
					key := packCopy(t, p)
					if inj.bad[key] {
						continue // already dead at birth: nothing latent about it
					}
					if prev, dup := inj.latent[key]; dup {
						// Overlapping latent ranges: the earliest onset wins.
						if onset < prev {
							inj.latent[key] = onset
							for i := range inj.latents {
								if inj.latents[i].Tape == t && inj.latents[i].Pos == p {
									inj.latents[i].Onset = onset
								}
							}
						}
						continue
					}
					inj.latent[key] = onset
					inj.latents = append(inj.latents, Latent{Tape: t, Pos: p, Onset: onset})
				}
			}
		}
	}
	return inj, nil
}

// poisson draws a Poisson-distributed count with the given mean (Knuth's
// method; means here are small).
func poisson(rng *rand.Rand, mean float64) int {
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func packCopy(tape, pos int) int64 { return int64(tape)<<32 | int64(uint32(pos)) }

// Config returns the (defaulted) configuration the injector runs.
func (i *Injector) Config() Config { return i.cfg }

// Retry returns the (defaulted) retry policy.
func (i *Injector) Retry() RetryPolicy { return i.retry }

// InjectedBadBlocks returns the number of bad block positions placed at
// initialization (before any escalations).
func (i *Injector) InjectedBadBlocks() int { return i.badInjected }

// TapeFailTime returns the tape's permanent failure time (+Inf = never).
func (i *Injector) TapeFailTime(tape int) float64 { return i.tapeFailAt[tape] }

// TapeFailed reports whether the tape has permanently failed by `now`.
func (i *Injector) TapeFailed(tape int, now float64) bool {
	return now >= i.tapeFailAt[tape]
}

// FailedTapes counts tapes permanently failed by `now`.
func (i *Injector) FailedTapes(now float64) int {
	n := 0
	for _, at := range i.tapeFailAt {
		if now >= at {
			n++
		}
	}
	return n
}

// CopyDead reports whether the physical copy at (tape, pos) is permanently
// unreadable: inside an injected bad-block range or escalated after retry
// exhaustion. It does not account for whole-tape failures (see TapeFailed).
func (i *Injector) CopyDead(tape, pos int) bool {
	if len(i.bad) == 0 {
		return false
	}
	return i.bad[packCopy(tape, pos)]
}

// MarkDead escalates the copy at (tape, pos) to permanently unreadable
// (retry exhaustion, or a latent error's first detected read).
func (i *Injector) MarkDead(tape, pos int) {
	i.bad[packCopy(tape, pos)] = true
}

// InjectedLatentErrors returns the number of latent bad-block positions
// placed at initialization.
func (i *Injector) InjectedLatentErrors() int { return len(i.latents) }

// Latents enumerates the injected latent errors in deterministic draw
// order. The slice is the injector's own; callers must not mutate it.
func (i *Injector) Latents() []Latent { return i.latents }

// LatentActive reports whether (tape, pos) holds a latent error that has
// developed (onset passed) but has not yet been detected: a read touching
// it now fails permanently and should call MarkDead, which moves the
// position from latent to detected-dead.
func (i *Injector) LatentActive(tape, pos int, now float64) bool {
	if len(i.latent) == 0 {
		return false
	}
	key := packCopy(tape, pos)
	onset, ok := i.latent[key]
	return ok && now >= onset && !i.bad[key]
}

// LatentOnset returns the onset time of the latent error at (tape, pos),
// if one was injected there -- the health signal the detection-latency
// metric measures against.
func (i *Injector) LatentOnset(tape, pos int) (float64, bool) {
	onset, ok := i.latent[packCopy(tape, pos)]
	return onset, ok
}

// ReadAttemptFails draws one transient-error trial for a block read
// attempt: true means the attempt fails with a recoverable media error.
func (i *Injector) ReadAttemptFails() bool {
	return i.cfg.ReadTransientProb > 0 && i.rng.Float64() < i.cfg.ReadTransientProb
}

// SwitchAttemptFails draws one trial for a tape load/unload attempt.
func (i *Injector) SwitchAttemptFails() bool {
	return i.cfg.SwitchFailProb > 0 && i.rng.Float64() < i.cfg.SwitchFailProb
}

// DriveFailAt returns the drive's next failure time (+Inf = never).
func (i *Injector) DriveFailAt(drive int) float64 { return i.driveFailAt[drive] }

// DriveRepair consumes the drive's pending failure: it returns the repair
// downtime and schedules the drive's next failure after the repair
// completes at `now` + repair.
func (i *Injector) DriveRepair(drive int, now float64) (repairSec float64) {
	repairSec = i.cfg.DriveRepairSec
	i.driveFailAt[drive] = now + repairSec + i.rng.ExpFloat64()*i.cfg.DriveMTBFSec
	return repairSec
}
