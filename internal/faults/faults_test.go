package faults

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{ReadTransientProb: -0.1},
		{ReadTransientProb: 1},
		{SwitchFailProb: 1.5},
		{BadBlocksPerTape: -1},
		{BadBlockRangeLen: -2},
		{TapeMTBFSec: -5},
		{DriveMTBFSec: -5},
		{DriveRepairSec: -5},
		{DriveRepairSec: 100}, // repair without MTBF
		{Retry: RetryPolicy{MaxRetries: -1}},
		{Retry: RetryPolicy{BackoffSec: -1}},
		{Retry: RetryPolicy{BackoffFactor: -1}},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	ok := []Config{
		{},
		{ReadTransientProb: 0.5, TapeMTBFSec: 1e6, DriveMTBFSec: 1e6, DriveRepairSec: 600},
		{BadBlocksPerTape: 2.5, SwitchFailProb: 0.01},
	}
	for _, c := range ok {
		if err := c.Validate(); err != nil {
			t.Errorf("config %+v rejected: %v", c, err)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	for _, c := range []Config{
		{ReadTransientProb: 0.1},
		{BadBlocksPerTape: 1},
		{TapeMTBFSec: 1e5},
		{DriveMTBFSec: 1e5},
		{SwitchFailProb: 0.1},
	} {
		if !c.Enabled() {
			t.Errorf("config %+v reports disabled", c)
		}
	}
}

func TestRetryPolicyDefaultsAndBackoff(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.MaxRetries != 3 || p.BackoffSec != 30 || p.BackoffFactor != 2 {
		t.Fatalf("defaults = %+v", p)
	}
	if d := p.Delay(1); d != 30 {
		t.Errorf("Delay(1) = %v, want 30", d)
	}
	if d := p.Delay(3); d != 120 {
		t.Errorf("Delay(3) = %v, want 120 (exponential)", d)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{
		ReadTransientProb: 0.2,
		BadBlocksPerTape:  1.5,
		TapeMTBFSec:       5e5,
		DriveMTBFSec:      3e5,
		SwitchFailProb:    0.05,
		Seed:              42,
	}
	a, err := New(cfg, 10, 2, 448)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, 10, 2, 448)
	if err != nil {
		t.Fatal(err)
	}
	for tape := 0; tape < 10; tape++ {
		if a.TapeFailTime(tape) != b.TapeFailTime(tape) {
			t.Fatalf("tape %d fail times differ", tape)
		}
		for pos := 0; pos < 448; pos++ {
			if a.CopyDead(tape, pos) != b.CopyDead(tape, pos) {
				t.Fatalf("bad-block maps differ at (%d,%d)", tape, pos)
			}
		}
	}
	for i := 0; i < 1000; i++ {
		if a.ReadAttemptFails() != b.ReadAttemptFails() {
			t.Fatalf("transient streams diverge at draw %d", i)
		}
		if a.SwitchAttemptFails() != b.SwitchAttemptFails() {
			t.Fatalf("switch streams diverge at draw %d", i)
		}
	}
	if a.InjectedBadBlocks() != b.InjectedBadBlocks() {
		t.Error("injected bad-block counts differ")
	}
}

func TestInjectorDisabledClasses(t *testing.T) {
	inj, err := New(Config{ReadTransientProb: 0.5}, 4, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(inj.TapeFailTime(0), 1) {
		t.Error("tape failure scheduled without TapeMTBFSec")
	}
	if !math.IsInf(inj.DriveFailAt(0), 1) {
		t.Error("drive failure scheduled without DriveMTBFSec")
	}
	if inj.TapeFailed(0, 1e18) {
		t.Error("tape failed with failures disabled")
	}
	if inj.CopyDead(2, 50) {
		t.Error("bad block present without BadBlocksPerTape")
	}
	if inj.SwitchAttemptFails() {
		t.Error("switch failed with SwitchFailProb 0")
	}
}

func TestMarkDeadEscalation(t *testing.T) {
	inj, err := New(Config{ReadTransientProb: 0.1}, 4, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if inj.CopyDead(1, 7) {
		t.Fatal("copy dead before escalation")
	}
	inj.MarkDead(1, 7)
	if !inj.CopyDead(1, 7) {
		t.Fatal("escalated copy not dead")
	}
	if inj.CopyDead(1, 8) || inj.CopyDead(2, 7) {
		t.Fatal("escalation leaked to other copies")
	}
}

func TestBadBlockPlacement(t *testing.T) {
	inj, err := New(Config{BadBlocksPerTape: 2, BadBlockRangeLen: 3, Seed: 7}, 8, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for tape := 0; tape < 8; tape++ {
		for pos := 0; pos < 200; pos++ {
			if inj.CopyDead(tape, pos) {
				count++
			}
		}
	}
	if count == 0 {
		t.Fatal("no bad blocks placed with BadBlocksPerTape=2 over 8 tapes")
	}
	if count != inj.InjectedBadBlocks() {
		t.Errorf("enumerated %d bad blocks, injector reports %d", count, inj.InjectedBadBlocks())
	}
	// Expected ~8*2*2 = 32 positions; allow a generous band.
	if count > 200 {
		t.Errorf("implausibly many bad blocks: %d", count)
	}
}

func TestDriveRepairSchedulesNextFailure(t *testing.T) {
	inj, err := New(Config{DriveMTBFSec: 1e4, DriveRepairSec: 500, Seed: 3}, 4, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	first := inj.DriveFailAt(0)
	if math.IsInf(first, 1) {
		t.Fatal("no drive failure scheduled")
	}
	repair := inj.DriveRepair(0, first)
	if repair != 500 {
		t.Fatalf("repair = %v, want 500", repair)
	}
	next := inj.DriveFailAt(0)
	if next < first+repair {
		t.Fatalf("next failure %v precedes end of repair %v", next, first+repair)
	}
	// Drive 1's schedule is untouched.
	if inj.DriveFailAt(1) == next {
		t.Error("drive schedules aliased")
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(Config{}, 0, 1, 10); err == nil {
		t.Error("0 tapes accepted")
	}
	if _, err := New(Config{}, 4, 0, 10); err == nil {
		t.Error("0 drives accepted")
	}
	if _, err := New(Config{ReadTransientProb: 2}, 4, 1, 10); err == nil {
		t.Error("invalid config accepted")
	}
}
