package faults

import (
	"testing"
)

// countDead enumerates the dead positions visible through CopyDead over an
// oversized position range, so placements leaking past the tape end would
// be seen.
func countDead(inj *Injector, tapes, scanTo int) (inside, outside int) {
	for t := 0; t < tapes; t++ {
		for p := 0; p < scanTo; p++ {
			if inj.CopyDead(t, p) {
				if p < inj.tapeCap {
					inside++
				} else {
					outside++
				}
			}
		}
	}
	return
}

// TestBadBlockRangeClipsAtTapeEnd: a range longer than the remaining tape
// is clipped, never wrapped or leaked past the end.
func TestBadBlockRangeClipsAtTapeEnd(t *testing.T) {
	const tapes, capBlocks = 6, 8
	// Ranges up to twice the tape length guarantee most draws overrun.
	inj, err := New(Config{BadBlocksPerTape: 3, BadBlockRangeLen: 2 * capBlocks, Seed: 5},
		tapes, 1, capBlocks)
	if err != nil {
		t.Fatal(err)
	}
	inside, outside := countDead(inj, tapes, 4*capBlocks)
	if outside != 0 {
		t.Errorf("%d bad positions past the tape end", outside)
	}
	if inside == 0 {
		t.Fatal("no bad blocks placed at all")
	}
	if inside != inj.InjectedBadBlocks() {
		t.Errorf("CopyDead shows %d positions, InjectedBadBlocks = %d", inside, inj.InjectedBadBlocks())
	}
}

// TestBadBlockOverlapMerges: overlapping ranges merge rather than double
// count -- the injected tally equals the number of distinct dead positions.
func TestBadBlockOverlapMerges(t *testing.T) {
	// A tiny tape with many long ranges forces heavy overlap.
	const tapes, capBlocks = 4, 4
	inj, err := New(Config{BadBlocksPerTape: 6, BadBlockRangeLen: capBlocks, Seed: 11},
		tapes, 1, capBlocks)
	if err != nil {
		t.Fatal(err)
	}
	inside, _ := countDead(inj, tapes, capBlocks)
	if inside != inj.InjectedBadBlocks() {
		t.Errorf("distinct dead positions %d != InjectedBadBlocks %d (overlap double-counted)",
			inside, inj.InjectedBadBlocks())
	}
	if inside > tapes*capBlocks {
		t.Errorf("%d dead positions on a %d-position jukebox", inside, tapes*capBlocks)
	}
}

// TestBadBlockRangeLenExtremes: a range bound of 1 places only single
// blocks, and a bound of the whole tape can kill a tape end to end but
// never more.
func TestBadBlockRangeLenExtremes(t *testing.T) {
	const tapes, capBlocks = 5, 16
	one, err := New(Config{BadBlocksPerTape: 2, BadBlockRangeLen: 1, Seed: 7},
		tapes, 1, capBlocks)
	if err != nil {
		t.Fatal(err)
	}
	// With length-1 ranges, dead positions are exactly the distinct starts:
	// no run longer than its draw count can appear. The observable bound:
	// at most poisson-total positions, all within the tape.
	inside, outside := countDead(one, tapes, 2*capBlocks)
	if outside != 0 {
		t.Errorf("length-1 ranges leaked %d positions past the tape end", outside)
	}
	if inside != one.InjectedBadBlocks() {
		t.Errorf("distinct dead %d != injected %d", inside, one.InjectedBadBlocks())
	}

	whole, err := New(Config{BadBlocksPerTape: 8, BadBlockRangeLen: capBlocks, Seed: 7},
		tapes, 1, capBlocks)
	if err != nil {
		t.Fatal(err)
	}
	inside, outside = countDead(whole, tapes, 2*capBlocks)
	if outside != 0 {
		t.Errorf("whole-tape ranges leaked %d positions past the tape end", outside)
	}
	if inside > tapes*capBlocks {
		t.Errorf("%d dead positions exceed jukebox capacity %d", inside, tapes*capBlocks)
	}
	if inside == 0 {
		t.Error("whole-tape ranges placed nothing")
	}
}

// TestBadBlockSeedDeterminism: the same seed reproduces the exact bad set;
// a different seed (overwhelmingly) does not.
func TestBadBlockSeedDeterminism(t *testing.T) {
	const tapes, capBlocks = 8, 32
	cfg := Config{BadBlocksPerTape: 2, BadBlockRangeLen: 4, LatentErrorsPerTape: 2, Seed: 21}
	a, err := New(cfg, tapes, 1, capBlocks)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, tapes, 1, capBlocks)
	if err != nil {
		t.Fatal(err)
	}
	for tp := 0; tp < tapes; tp++ {
		for p := 0; p < capBlocks; p++ {
			if a.CopyDead(tp, p) != b.CopyDead(tp, p) {
				t.Fatalf("seed %d bad sets diverge at (%d,%d)", cfg.Seed, tp, p)
			}
		}
	}
	la, lb := a.Latents(), b.Latents()
	if len(la) != len(lb) {
		t.Fatalf("latent counts diverge: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("latent %d diverges: %+v vs %+v", i, la[i], lb[i])
		}
	}

	cfg.Seed = 22
	c, err := New(cfg, tapes, 1, capBlocks)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for tp := 0; tp < tapes && same; tp++ {
		for p := 0; p < capBlocks; p++ {
			if a.CopyDead(tp, p) != c.CopyDead(tp, p) {
				same = false
				break
			}
		}
	}
	if same && len(a.Latents()) == len(c.Latents()) && a.InjectedBadBlocks() == c.InjectedBadBlocks() {
		t.Error("different seeds produced identical fault universes")
	}
}

// TestLatentPlacement: latent positions are disjoint from bad-at-birth
// positions, stay within the tape, agree between the slice and lookup
// views, and hold no duplicates.
func TestLatentPlacement(t *testing.T) {
	const tapes, capBlocks = 8, 16
	inj, err := New(Config{BadBlocksPerTape: 2, BadBlockRangeLen: 6,
		LatentErrorsPerTape: 3, Seed: 3}, tapes, 1, capBlocks)
	if err != nil {
		t.Fatal(err)
	}
	lats := inj.Latents()
	if len(lats) == 0 {
		t.Fatal("no latent errors placed")
	}
	if got := inj.InjectedLatentErrors(); got != len(lats) {
		t.Errorf("InjectedLatentErrors = %d, Latents has %d", got, len(lats))
	}
	seen := make(map[[2]int]bool)
	for _, l := range lats {
		if l.Pos < 0 || l.Pos >= capBlocks || l.Tape < 0 || l.Tape >= tapes {
			t.Errorf("latent %+v outside the jukebox geometry", l)
		}
		if inj.CopyDead(l.Tape, l.Pos) {
			t.Errorf("latent at (%d,%d) overlaps a bad-at-birth position", l.Tape, l.Pos)
		}
		if seen[[2]int{l.Tape, l.Pos}] {
			t.Errorf("duplicate latent position (%d,%d)", l.Tape, l.Pos)
		}
		seen[[2]int{l.Tape, l.Pos}] = true
		onset, ok := inj.LatentOnset(l.Tape, l.Pos)
		if !ok || onset != l.Onset {
			t.Errorf("LatentOnset(%d,%d) = %v,%v; slice has %v", l.Tape, l.Pos, onset, ok, l.Onset)
		}
		if l.Onset < 0 {
			t.Errorf("negative onset %v", l.Onset)
		}
	}
}

// TestLatentActiveLifecycle: inactive before onset, active after, and gone
// once detected (MarkDead).
func TestLatentActiveLifecycle(t *testing.T) {
	inj, err := New(Config{LatentErrorsPerTape: 3, LatentMeanOnsetSec: 1000, Seed: 9},
		4, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	lats := inj.Latents()
	if len(lats) == 0 {
		t.Fatal("no latent errors placed")
	}
	l := lats[0]
	if inj.LatentActive(l.Tape, l.Pos, l.Onset/2) {
		t.Error("latent active before its onset")
	}
	if !inj.LatentActive(l.Tape, l.Pos, l.Onset) {
		t.Error("latent inactive at its onset")
	}
	inj.MarkDead(l.Tape, l.Pos)
	if inj.LatentActive(l.Tape, l.Pos, l.Onset+1) {
		t.Error("latent still active after detection marked it dead")
	}
	if !inj.CopyDead(l.Tape, l.Pos) {
		t.Error("detected latent not dead")
	}
	// A position with no latent is never active.
	if inj.LatentActive(3, 15, 1e12) && func() bool { _, ok := inj.LatentOnset(3, 15); return !ok }() {
		t.Error("latent-free position reported active")
	}
}

// TestLatentDrawsAfterExistingStreams pins the compatibility guarantee:
// enabling latent errors must not shift any pre-existing draw, so the tape
// failure times and bad-block placement of a latent-enabled injector match
// the latent-free one bit for bit.
func TestLatentDrawsAfterExistingStreams(t *testing.T) {
	const tapes, capBlocks = 8, 32
	base := Config{BadBlocksPerTape: 2, BadBlockRangeLen: 4, TapeMTBFSec: 1e6,
		DriveMTBFSec: 5e5, Seed: 17}
	plain, err := New(base, tapes, 2, capBlocks)
	if err != nil {
		t.Fatal(err)
	}
	withL := base
	withL.LatentErrorsPerTape = 2
	lat, err := New(withL, tapes, 2, capBlocks)
	if err != nil {
		t.Fatal(err)
	}
	for tp := 0; tp < tapes; tp++ {
		if plain.TapeFailTime(tp) != lat.TapeFailTime(tp) {
			t.Errorf("tape %d failure time shifted: %v vs %v", tp, plain.TapeFailTime(tp), lat.TapeFailTime(tp))
		}
		for p := 0; p < capBlocks; p++ {
			if plain.CopyDead(tp, p) != lat.CopyDead(tp, p) {
				t.Errorf("bad set shifted at (%d,%d)", tp, p)
			}
		}
	}
	for d := 0; d < 2; d++ {
		if plain.DriveFailAt(d) != lat.DriveFailAt(d) {
			t.Errorf("drive %d failure time shifted: %v vs %v", d, plain.DriveFailAt(d), lat.DriveFailAt(d))
		}
	}
	if lat.InjectedLatentErrors() == 0 {
		t.Error("latent-enabled injector placed no latents")
	}
}

// TestLatentLookupsDrawNothing pins the scrub-inertness foundation: the
// lookups the engine's scrub and repair paths make -- LatentActive,
// TapeFailed, CopyDead, LatentOnset -- consume no injector randomness, so
// interleaving any number of them leaves the per-attempt draw streams
// bit-identical.
func TestLatentLookupsDrawNothing(t *testing.T) {
	const tapes, capBlocks = 6, 16
	cfg := Config{ReadTransientProb: 0.3, SwitchFailProb: 0.2,
		BadBlocksPerTape: 1, LatentErrorsPerTape: 2, TapeMTBFSec: 1e6, Seed: 29}
	clean, err := New(cfg, tapes, 1, capBlocks)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := New(cfg, tapes, 1, capBlocks)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		// Hammer the lookup surface between every draw on one injector.
		for tp := 0; tp < tapes; tp++ {
			for p := 0; p < capBlocks; p++ {
				noisy.LatentActive(tp, p, float64(i*1000))
				noisy.CopyDead(tp, p)
				noisy.LatentOnset(tp, p)
			}
			noisy.TapeFailed(tp, float64(i*1000))
		}
		noisy.FailedTapes(float64(i))
		if a, b := clean.ReadAttemptFails(), noisy.ReadAttemptFails(); a != b {
			t.Fatalf("draw %d: read streams diverged after lookups", i)
		}
		if a, b := clean.SwitchAttemptFails(), noisy.SwitchAttemptFails(); a != b {
			t.Fatalf("draw %d: switch streams diverged after lookups", i)
		}
	}
}
