package jukebox

import (
	"math"
	"testing"

	"tapejuke/internal/tapemodel"
)

func newDeck(t *testing.T) *Deck {
	t.Helper()
	d, err := NewDeck(tapemodel.EXB8505XL(), 16, 10, 448)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDeckConstruction(t *testing.T) {
	bad := []struct {
		prof    tapemodel.Positioner
		mb      float64
		tapes   int
		capBlks int
	}{
		{nil, 16, 10, 448},
		{tapemodel.EXB8505XL(), 0, 10, 448},
		{tapemodel.EXB8505XL(), 16, 0, 448},
		{tapemodel.EXB8505XL(), 16, 10, 0},
	}
	for i, c := range bad {
		if _, err := NewDeck(c.prof, c.mb, c.tapes, c.capBlks); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	d := newDeck(t)
	if d.Mounted() != -1 || d.Head() != 0 || d.Clock() != 0 {
		t.Error("fresh deck not in the empty state")
	}
}

func TestDeckMountSemantics(t *testing.T) {
	d := newDeck(t)
	// First mount into an empty drive: robot + load only.
	sec, err := d.Mount(3)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sec, 62) { // 20 + 42
		t.Errorf("initial load = %v, want 62", sec)
	}
	// Re-mounting the mounted tape is free.
	sec, err = d.Mount(3)
	if err != nil || sec != 0 {
		t.Errorf("same-tape mount = %v (%v), want 0", sec, err)
	}
	// Read something, then switch: rewind + BOT + 81.
	if _, err := d.ReadBlock(10); err != nil {
		t.Fatal(err)
	}
	sec, err = d.Mount(4)
	if err != nil {
		t.Fatal(err)
	}
	prof := tapemodel.EXB8505XL()
	want := prof.FullSwitch(11 * 16)
	if !almost(sec, want) {
		t.Errorf("switch = %v, want %v", sec, want)
	}
	if d.Head() != 0 || d.Mounted() != 4 {
		t.Error("switch did not reset the head")
	}
	if _, err := d.Mount(99); err == nil {
		t.Error("out-of-range tape accepted")
	}
}

func TestDeckReadAccounting(t *testing.T) {
	d := newDeck(t)
	if _, err := d.ReadBlock(0); err == nil {
		t.Error("read with empty drive accepted")
	}
	if _, err := d.Mount(0); err != nil {
		t.Fatal(err)
	}
	prof := tapemodel.EXB8505XL()
	sec, err := d.ReadBlock(10)
	if err != nil {
		t.Fatal(err)
	}
	wantLoc := prof.LocateForward(160)
	wantRead := prof.Read(16, tapemodel.Forward)
	if !almost(sec, wantLoc+wantRead) {
		t.Errorf("read = %v, want %v", sec, wantLoc+wantRead)
	}
	if d.Head() != 11 {
		t.Errorf("head = %d, want 11", d.Head())
	}
	if _, err := d.ReadBlock(448); err == nil {
		t.Error("out-of-range position accepted")
	}
	reads, switches, loc, rd, sw := d.Stats()
	if reads != 1 || switches != 1 {
		t.Errorf("counts: %d reads, %d switches", reads, switches)
	}
	if !almost(loc, wantLoc) || !almost(rd, wantRead) || !almost(sw, 62) {
		t.Errorf("decomposition: loc=%v rd=%v sw=%v", loc, rd, sw)
	}
	if !almost(d.Clock(), 62+wantLoc+wantRead) {
		t.Errorf("clock = %v", d.Clock())
	}
}

func TestDeckRewindAndIdle(t *testing.T) {
	d := newDeck(t)
	if _, err := d.Rewind(); err == nil {
		t.Error("rewind with empty drive accepted")
	}
	d.Mount(0)
	d.ReadBlock(100)
	prof := tapemodel.EXB8505XL()
	sec, err := d.Rewind()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sec, prof.Rewind(101*16)) {
		t.Errorf("rewind = %v", sec)
	}
	if d.Head() != 0 {
		t.Error("rewind left the head away from BOT")
	}
	before := d.Clock()
	if err := d.Idle(100); err != nil || !almost(d.Clock(), before+100) {
		t.Error("idle did not advance the clock")
	}
	if err := d.Idle(-1); err == nil {
		t.Error("negative idle accepted")
	}
}

// ExecuteSweep on a deck must agree exactly with the scheduling cost model
// used by the simulator: two implementations of the same physics.
func TestDeckAgreesWithCostModel(t *testing.T) {
	d := newDeck(t)
	d.Mount(2)
	positions := []int{5, 9, 30, 12, 3}
	got, err := d.ExecuteSweep(positions)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute with the cost model formulae.
	prof := tapemodel.EXB8505XL()
	head, want := 0, 0.0
	for _, p := range positions {
		loc, dir := prof.Locate(float64(head)*16, float64(p)*16)
		want += loc + prof.Read(16, dir)
		head = p + 1
	}
	if !almost(got, want) {
		t.Errorf("sweep = %v, want %v", got, want)
	}
	// A failing position aborts mid-sweep but keeps prior accounting.
	partial, err := d.ExecuteSweep([]int{1, 9999})
	if err == nil {
		t.Error("invalid position accepted")
	}
	if partial <= 0 {
		t.Error("partial sweep time lost")
	}
}
