package jukebox

import (
	"fmt"

	"tapejuke/internal/faults"
)

// MediaError reports a failed block read. Transient errors may succeed on
// retry; permanent ones never will (bad block or escalated copy).
type MediaError struct {
	Tape, Pos int
	Permanent bool
}

// Error describes the failure.
func (e *MediaError) Error() string {
	kind := "transient"
	if e.Permanent {
		kind = "permanent"
	}
	return fmt.Sprintf("jukebox: %s media error reading tape %d pos %d", kind, e.Tape, e.Pos)
}

// TapeFailedError reports an operation against a tape past its permanent
// failure time; no operation on the tape can ever succeed again.
type TapeFailedError struct {
	Tape int
}

// Error describes the failure.
func (e *TapeFailedError) Error() string {
	return fmt.Sprintf("jukebox: tape %d has permanently failed", e.Tape)
}

// SwitchError reports a failed tape load/unload attempt; the mechanical
// time was consumed and the drive is left empty, but a retry may succeed.
type SwitchError struct {
	Tape int
}

// Error describes the failure.
func (e *SwitchError) Error() string {
	return fmt.Sprintf("jukebox: load of tape %d failed", e.Tape)
}

// SetFaults attaches a fault injector to the deck. Subsequent Mount and
// ReadBlock calls consult it and may return the typed errors above; failed
// attempts still consume simulated time (tracked in FaultSeconds). The
// injector's notion of time is the deck's Clock. Retrying is the caller's
// decision; the deck itself never retries.
func (d *Deck) SetFaults(inj *faults.Injector) { d.flt = inj }

// FaultSeconds returns the simulated time consumed by failed operations.
func (d *Deck) FaultSeconds() float64 { return d.faultSec }

// mountFault checks a pending fault on mounting `tape`; on fault it charges
// the mechanical time, leaves the drive empty and returns the error.
func (d *Deck) mountFault(tape int, sec float64) error {
	if d.flt == nil {
		return nil
	}
	if d.flt.TapeFailed(tape, d.clock) {
		d.failOp(sec)
		d.mounted, d.head = -1, 0
		return &TapeFailedError{Tape: tape}
	}
	if d.flt.SwitchAttemptFails() {
		d.failOp(sec)
		d.mounted, d.head = -1, 0
		return &SwitchError{Tape: tape}
	}
	return nil
}

// readFault checks a pending fault on reading `pos`; on fault it charges
// the attempt time, advances the head past the position (the attempt ran),
// and returns the error.
func (d *Deck) readFault(pos int, sec float64) error {
	if d.flt == nil {
		return nil
	}
	switch {
	case d.flt.TapeFailed(d.mounted, d.clock):
		// The locate runs into the dead medium; the head position is moot.
		d.failOp(sec)
		return &TapeFailedError{Tape: d.mounted}
	case d.flt.CopyDead(d.mounted, pos):
		d.failOp(sec)
		d.head = pos + 1
		return &MediaError{Tape: d.mounted, Pos: pos, Permanent: true}
	case d.flt.ReadAttemptFails():
		d.failOp(sec)
		d.head = pos + 1
		return &MediaError{Tape: d.mounted, Pos: pos}
	}
	return nil
}

// failOp charges a failed operation's time.
func (d *Deck) failOp(sec float64) {
	d.clock += sec
	d.faultSec += sec
}
