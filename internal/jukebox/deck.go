// Package jukebox provides an imperative model of a robotic tape library:
// a Deck wraps one drive and a set of tapes and exposes the physical
// operations (mount, locate, read, rewind) with simulated-time accounting.
//
// The discrete-event simulator in internal/sim drives its own inlined drive
// state for speed; Deck is the library-facing building block for callers
// who want direct control -- replaying traces, validating schedules
// computed elsewhere, or scripting experiments operation by operation.
package jukebox

import (
	"errors"
	"fmt"

	"tapejuke/internal/faults"
	"tapejuke/internal/tapemodel"
)

// Deck is one drive plus its tape pool. The zero value is not usable; see
// NewDeck. All times are simulated seconds accumulated in Clock.
type Deck struct {
	prof    tapemodel.Positioner
	blockMB float64
	tapes   int
	capBlk  int

	mounted int // -1 when the drive is empty
	head    int // block boundary on the mounted tape

	clock     float64
	locateSec float64
	readSec   float64
	switchSec float64
	faultSec  float64
	reads     int64
	switches  int64

	flt *faults.Injector // nil disables the fault model
}

// NewDeck builds a deck of `tapes` tapes of capBlocks blocks of blockMB
// megabytes each, served by a drive with the given timing model.
func NewDeck(prof tapemodel.Positioner, blockMB float64, tapes, capBlocks int) (*Deck, error) {
	if prof == nil {
		return nil, errors.New("jukebox: nil drive profile")
	}
	if blockMB <= 0 || tapes < 1 || capBlocks < 1 {
		return nil, fmt.Errorf("jukebox: invalid geometry (%v MB x %d x %d)", blockMB, tapes, capBlocks)
	}
	return &Deck{
		prof:    prof,
		blockMB: blockMB,
		tapes:   tapes,
		capBlk:  capBlocks,
		mounted: -1,
	}, nil
}

// Clock returns the accumulated simulated time.
func (d *Deck) Clock() float64 { return d.clock }

// Mounted returns the mounted tape index, or -1 for an empty drive.
func (d *Deck) Mounted() int { return d.mounted }

// Head returns the head position (block boundary) on the mounted tape.
func (d *Deck) Head() int { return d.head }

// Stats returns operation counts and the time decomposition.
func (d *Deck) Stats() (reads, switches int64, locateSec, readSec, switchSec float64) {
	return d.reads, d.switches, d.locateSec, d.readSec, d.switchSec
}

func (d *Deck) posMB(pos int) float64 { return float64(pos) * d.blockMB }

// Mount makes `tape` the mounted tape, rewinding and ejecting the current
// one if necessary. Mounting the mounted tape is free. It returns the
// elapsed time.
func (d *Deck) Mount(tape int) (float64, error) {
	if tape < 0 || tape >= d.tapes {
		return 0, fmt.Errorf("jukebox: tape %d out of range [0,%d)", tape, d.tapes)
	}
	if tape == d.mounted {
		return 0, nil
	}
	var sec float64
	if d.mounted < 0 {
		sec = d.prof.InitialLoad()
	} else {
		sec = d.prof.FullSwitch(d.posMB(d.head))
	}
	if err := d.mountFault(tape, sec); err != nil {
		return sec, err
	}
	d.mounted = tape
	d.head = 0
	d.clock += sec
	d.switchSec += sec
	d.switches++
	return sec, nil
}

// SwitchCost returns the time Mount(tape) would take from the current
// state, without performing it: zero for the mounted tape, the initial
// load for an empty drive, otherwise a full switch (rewind, eject, fetch,
// load) from the current head position.
func (d *Deck) SwitchCost(tape int) (float64, error) {
	if tape < 0 || tape >= d.tapes {
		return 0, fmt.Errorf("jukebox: tape %d out of range [0,%d)", tape, d.tapes)
	}
	if tape == d.mounted {
		return 0, nil
	}
	if d.mounted < 0 {
		return d.prof.InitialLoad(), nil
	}
	return d.prof.FullSwitch(d.posMB(d.head)), nil
}

// Unload empties the drive without time accounting: the cartridge goes
// back to the library and the head state resets. It models the end of a
// failed load, where the tape never mounted; the mechanical time was
// already charged to the failed attempt.
func (d *Deck) Unload() {
	d.mounted = -1
	d.head = 0
}

// ReadBlock positions to `pos` on the mounted tape and reads one block,
// returning the elapsed time (locate + transfer).
func (d *Deck) ReadBlock(pos int) (float64, error) {
	if d.mounted < 0 {
		return 0, errors.New("jukebox: no tape mounted")
	}
	if pos < 0 || pos >= d.capBlk {
		return 0, fmt.Errorf("jukebox: position %d out of range [0,%d)", pos, d.capBlk)
	}
	loc, dir := d.prof.Locate(d.posMB(d.head), d.posMB(pos))
	rd := d.prof.Read(d.blockMB, dir)
	if err := d.readFault(pos, loc+rd); err != nil {
		return loc + rd, err
	}
	d.head = pos + 1
	d.clock += loc + rd
	d.locateSec += loc
	d.readSec += rd
	d.reads++
	return loc + rd, nil
}

// Rewind returns the head to the beginning of the mounted tape.
func (d *Deck) Rewind() (float64, error) {
	if d.mounted < 0 {
		return 0, errors.New("jukebox: no tape mounted")
	}
	sec := d.prof.Rewind(d.posMB(d.head))
	d.head = 0
	d.clock += sec
	d.switchSec += sec
	return sec, nil
}

// Idle advances the clock without drive activity (waiting for work).
func (d *Deck) Idle(sec float64) error {
	if sec < 0 {
		return errors.New("jukebox: negative idle time")
	}
	d.clock += sec
	return nil
}

// ExecuteSweep reads the given positions in order on the mounted tape and
// returns the total elapsed time. It is the Deck-level equivalent of
// executing a service list.
func (d *Deck) ExecuteSweep(positions []int) (float64, error) {
	total := 0.0
	for _, p := range positions {
		sec, err := d.ReadBlock(p)
		if err != nil {
			return total, err
		}
		total += sec
	}
	return total, nil
}
