package jukebox

import (
	"errors"
	"testing"

	"tapejuke/internal/faults"
)

// faultyDeck builds a deck with the given fault configuration attached.
func faultyDeck(t *testing.T, fc faults.Config) *Deck {
	t.Helper()
	d := newDeck(t)
	inj, err := faults.New(fc, 10, 1, 448)
	if err != nil {
		t.Fatal(err)
	}
	d.SetFaults(inj)
	return d
}

func TestDeckFaultFree(t *testing.T) {
	d := faultyDeck(t, faults.Config{})
	if _, err := d.Mount(0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadBlock(5); err != nil {
		t.Fatal(err)
	}
	if d.FaultSeconds() != 0 {
		t.Errorf("fault-free deck charged %v fault seconds", d.FaultSeconds())
	}
}

func TestDeckTransientMediaError(t *testing.T) {
	// Certain transient failure: every read attempt errors but charges time
	// and advances the head past the attempted position.
	d := faultyDeck(t, faults.Config{ReadTransientProb: 0.999999})
	if _, err := d.Mount(0); err != nil {
		t.Fatal(err)
	}
	before := d.Clock()
	sec, err := d.ReadBlock(5)
	var me *MediaError
	if !errors.As(err, &me) {
		t.Fatalf("got %v, want MediaError", err)
	}
	if me.Permanent {
		t.Error("transient error reported permanent")
	}
	if me.Tape != 0 || me.Pos != 5 {
		t.Errorf("error located at tape %d pos %d, want 0/5", me.Tape, me.Pos)
	}
	if sec <= 0 || d.Clock() != before+sec {
		t.Errorf("failed attempt charged %v, clock moved %v", sec, d.Clock()-before)
	}
	if d.FaultSeconds() != sec {
		t.Errorf("FaultSeconds = %v, want %v", d.FaultSeconds(), sec)
	}
	if d.Head() != 6 {
		t.Errorf("head = %d after failed read of 5, want 6", d.Head())
	}
	// The deck never retries on its own: read stats unchanged.
	reads, _, _, readSec, _ := d.Stats()
	if reads != 0 || readSec != 0 {
		t.Errorf("failed attempt counted as a read (%d, %v)", reads, readSec)
	}
}

func TestDeckPermanentMediaError(t *testing.T) {
	d := faultyDeck(t, faults.Config{})
	d.flt.MarkDead(0, 7)
	if _, err := d.Mount(0); err != nil {
		t.Fatal(err)
	}
	_, err := d.ReadBlock(7)
	var me *MediaError
	if !errors.As(err, &me) || !me.Permanent {
		t.Fatalf("got %v, want permanent MediaError", err)
	}
	// Neighboring blocks still read fine.
	if _, err := d.ReadBlock(8); err != nil {
		t.Fatalf("healthy block after a dead one: %v", err)
	}
}

func TestDeckTapeFailedError(t *testing.T) {
	// MTBF so short the tape is dead from (nearly) time zero; push the clock
	// past any plausible failure time first.
	d := faultyDeck(t, faults.Config{TapeMTBFSec: 1e-9})
	if err := d.Idle(1); err != nil {
		t.Fatal(err)
	}
	_, err := d.Mount(0)
	var tf *TapeFailedError
	if !errors.As(err, &tf) {
		t.Fatalf("got %v, want TapeFailedError", err)
	}
	if d.Mounted() != -1 {
		t.Errorf("drive not left empty after a failed mount (mounted %d)", d.Mounted())
	}
	if d.FaultSeconds() <= 0 {
		t.Error("failed mount consumed no time")
	}
}

func TestDeckSwitchError(t *testing.T) {
	d := faultyDeck(t, faults.Config{SwitchFailProb: 0.999999})
	sec, err := d.Mount(3)
	var se *SwitchError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want SwitchError", err)
	}
	if se.Tape != 3 {
		t.Errorf("SwitchError names tape %d, want 3", se.Tape)
	}
	if d.Mounted() != -1 {
		t.Errorf("drive not left empty after a failed load (mounted %d)", d.Mounted())
	}
	if sec <= 0 || d.FaultSeconds() != sec {
		t.Errorf("failed load charged %v, FaultSeconds %v", sec, d.FaultSeconds())
	}
	// Switch stats count successes only.
	_, switches, _, _, switchSec := d.Stats()
	if switches != 0 || switchSec != 0 {
		t.Errorf("failed load counted as a switch (%d, %v)", switches, switchSec)
	}
}

func TestDeckErrorStrings(t *testing.T) {
	for _, e := range []error{
		&MediaError{Tape: 1, Pos: 2},
		&MediaError{Tape: 1, Pos: 2, Permanent: true},
		&TapeFailedError{Tape: 3},
		&SwitchError{Tape: 4},
	} {
		if e.Error() == "" {
			t.Errorf("%T has an empty message", e)
		}
	}
}
