package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.Count() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Fatal("zero-value accumulator should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.Count() != 8 {
		t.Errorf("Count = %d, want 8", a.Count())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic set is 4; the unbiased sample
	// variance is 32/7.
	if math.Abs(a.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", a.Variance(), 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", a.Min(), a.Max())
	}
	if math.Abs(a.Sum()-40) > 1e-9 {
		t.Errorf("Sum = %v, want 40", a.Sum())
	}
}

// Property: the streaming mean matches a direct two-pass computation.
func TestAccumulatorMatchesDirect(t *testing.T) {
	f := func(xs []float64) bool {
		var a Accumulator
		sum := 0.0
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				ok = false
				break
			}
			a.Add(x)
			sum += x
		}
		if !ok || len(xs) == 0 {
			return true
		}
		want := sum / float64(len(xs))
		scale := math.Max(1, math.Abs(want))
		return math.Abs(a.Mean()-want)/scale < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReservoirSmall(t *testing.T) {
	r := NewReservoir(10)
	rng := rand.New(rand.NewSource(1))
	for i := 1; i <= 5; i++ {
		r.Add(float64(i), rng.Int63n)
	}
	if r.Seen() != 5 {
		t.Errorf("Seen = %d, want 5", r.Seen())
	}
	if got := r.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := r.Percentile(1); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	if got := r.Percentile(0.5); got != 3 {
		t.Errorf("P50 = %v, want 3", got)
	}
}

func TestReservoirBounded(t *testing.T) {
	r := NewReservoir(100)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		r.Add(rng.Float64(), rng.Int63n)
	}
	if len(r.samples) != 100 {
		t.Fatalf("reservoir grew to %d samples, cap 100", len(r.samples))
	}
	// A uniform [0,1) stream should have a median near 0.5.
	med := r.Percentile(0.5)
	if med < 0.3 || med > 0.7 {
		t.Errorf("median of uniform stream = %v, want near 0.5", med)
	}
}

func TestEmptyReservoir(t *testing.T) {
	r := NewReservoir(4)
	if got := r.Percentile(0.5); got != 0 {
		t.Errorf("empty reservoir percentile = %v, want 0", got)
	}
}

func TestHarmonic(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0}, {1, 1}, {2, 1.5}, {3, 1.5 + 1.0/3},
		{10, 2.9289682539682538},
	}
	for _, c := range cases {
		if got := Harmonic(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Harmonic(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

// Property: H_n is increasing and H_n <= 1 + ln(n) for n >= 1.
func TestHarmonicBounds(t *testing.T) {
	f := func(m uint8) bool {
		n := int(m)%500 + 1
		h := Harmonic(n)
		return h > Harmonic(n-1) && h <= 1+math.Log(float64(n))+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
