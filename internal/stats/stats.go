// Package stats provides the small statistical toolkit used by the
// simulator: streaming moment accumulation (Welford's algorithm), simple
// percentile estimation over retained samples, and harmonic numbers for the
// Theorem 2 approximation bound.
package stats

import (
	"math"
	"slices"
	"sort"
)

// Accumulator gathers streaming count/mean/variance/min/max without
// retaining samples.
type Accumulator struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// Count returns the number of observations.
func (a *Accumulator) Count() int64 { return a.n }

// Mean returns the sample mean, or 0 for an empty accumulator.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance, or 0 when fewer than two
// observations have been added.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation, or 0 for an empty accumulator.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 for an empty accumulator.
func (a *Accumulator) Max() float64 { return a.max }

// Sum returns n * mean, the total of all observations.
func (a *Accumulator) Sum() float64 { return a.mean * float64(a.n) }

// Reservoir retains up to K samples uniformly at random (Vitter's algorithm
// R) so that percentiles can be estimated over long runs with bounded
// memory. The caller supplies the random source as a function returning a
// uniform int64 in [0, n) to keep the package free of RNG policy.
type Reservoir struct {
	K       int
	samples []float64
	seen    int64

	// sorted caches a sorted copy of samples for Percentile, rebuilt only
	// when observations arrived since it was last built (sortedAt lags
	// seen). Back-to-back quantile reads then cost one sort total instead
	// of one sort each.
	sorted   []float64
	sortedAt int64
	keys     []uint64 // sortSamples scratch
	radix    []uint64 // radix-sort scatter scratch
}

// NewReservoir creates a reservoir holding at most k samples.
func NewReservoir(k int) *Reservoir {
	return &Reservoir{K: k, samples: make([]float64, 0, k)}
}

// Add offers one observation to the reservoir. intn must return a uniform
// random integer in [0, n).
func (r *Reservoir) Add(x float64, intn func(n int64) int64) {
	r.seen++
	if len(r.samples) < r.K {
		r.samples = append(r.samples, x)
		return
	}
	if j := intn(r.seen); j < int64(r.K) {
		r.samples[j] = x
	}
}

// Seen returns the total number of observations offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// Reset empties the reservoir for reuse, keeping its capacity and scratch
// storage so a session running many simulations allocates the sample
// buffers once.
func (r *Reservoir) Reset() {
	r.samples = r.samples[:0]
	r.seen = 0
	r.sorted = r.sorted[:0]
	r.sortedAt = 0
}

// Percentile returns the p-quantile (p in [0,1]) of the retained samples
// using linear interpolation, or 0 when the reservoir is empty.
func (r *Reservoir) Percentile(p float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	if r.sortedAt != r.seen || len(r.sorted) != len(r.samples) {
		r.sortSamples()
		r.sortedAt = r.seen
	}
	s := r.sorted
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// sortSamples rebuilds the sorted cache. Finite IEEE-754 doubles order
// like sign-adjusted unsigned integers, so the NaN-free case sorts bit
// patterns with single-instruction uint64 comparisons instead of the
// NaN-aware float comparator -- same resulting values, about 3x faster
// on a full reservoir. A NaN (which the bit mapping would misplace)
// falls back to sort.Float64s.
func (r *Reservoir) sortSamples() {
	const sign = uint64(1) << 63
	keys := r.keys[:0]
	for _, x := range r.samples {
		if x != x {
			r.sorted = append(r.sorted[:0], r.samples...)
			sort.Float64s(r.sorted)
			return
		}
		k := math.Float64bits(x)
		if k&sign != 0 {
			k = ^k
		} else {
			k |= sign
		}
		keys = append(keys, k)
	}
	r.keys = keys
	keys = r.sortKeys(keys)
	sorted := r.sorted[:0]
	for _, k := range keys {
		if k&sign != 0 {
			k &^= sign
		} else {
			k = ^k
		}
		sorted = append(sorted, math.Float64frombits(k))
	}
	r.sorted = sorted
}

// sortKeys sorts the key slice ascending and returns it (possibly in the
// reservoir's scatter scratch -- callers must use the return value). A full
// reservoir uses an LSD byte-radix sort, skipping passes whose digit is
// shared by every key: response-time samples cluster within a few orders of
// magnitude, so typically only three or four of the eight passes run,
// replacing the comparison sort's branchy n log n inner loop with counting
// passes. Small inputs stay on slices.Sort, which beats the passes' fixed
// cost there.
func (r *Reservoir) sortKeys(keys []uint64) []uint64 {
	if len(keys) < 128 {
		slices.Sort(keys)
		return keys
	}
	if cap(r.radix) < len(keys) {
		r.radix = make([]uint64, len(keys))
	}
	src, dst := keys, r.radix[:len(keys)]
	var counts [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for _, k := range src {
			counts[byte(k>>shift)]++
		}
		if counts[byte(src[0]>>shift)] == len(src) {
			continue // every key shares this digit; the pass is a no-op
		}
		sum := 0
		for i, c := range counts {
			counts[i] = sum
			sum += c
		}
		for _, k := range src {
			d := byte(k >> shift)
			dst[counts[d]] = k
			counts[d]++
		}
		src, dst = dst, src
	}
	return src
}

// Harmonic returns the n-th harmonic number H_n = sum_{i=1..n} 1/i, the
// factor appearing in the paper's Theorem 2 bound on the envelope-extension
// schedule cost. Harmonic(0) is 0.
func Harmonic(n int) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}
