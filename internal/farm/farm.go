// Package farm implements the cost-performance analysis of Section 4.8: a
// farm of identical tape jukeboxes whose aggregate cost is proportional to
// the jukebox count. Replication expands storage by E = 1 + NR*PH/100, so a
// replicated farm needs E times the jukeboxes of a non-replicated farm to
// hold the same data, and each of its jukeboxes sees only 1/E of the
// request load. The cost-performance ratio of scheme a versus scheme b
// reduces to the ratio of their per-jukebox throughputs.
package farm

import (
	"errors"
	"fmt"
	"math"
)

// ExpansionFactor returns E = 1 + NR*PH/100 (Figure 10a): the storage
// growth from keeping NR replicas of PH percent hot data.
func ExpansionFactor(replicas int, hotPercent float64) float64 {
	return 1 + float64(replicas)*hotPercent/100
}

// ScaledQueueLength returns the per-jukebox closed-queue length when a
// workload sized for a non-replicated farm (queue length base per jukebox)
// is spread over the E-times-larger replicated farm. The paper uses
// base/E, rounded to the nearest whole process, never below one.
func ScaledQueueLength(base int, e float64) (int, error) {
	if base < 1 {
		return 0, errors.New("farm: base queue length must be positive")
	}
	if e < 1 {
		return 0, fmt.Errorf("farm: expansion factor %v below 1", e)
	}
	q := int(math.Round(float64(base) / e))
	if q < 1 {
		q = 1
	}
	return q, nil
}

// CostPerformanceRatio compares replication scheme a against baseline b:
// the ratio of per-jukebox throughput (any consistent unit). A value above
// 1 means the replication scheme's extra performance pays for its extra
// storage.
func CostPerformanceRatio(throughputA, throughputB float64) (float64, error) {
	if throughputB <= 0 {
		return 0, errors.New("farm: baseline throughput must be positive")
	}
	if throughputA < 0 {
		return 0, errors.New("farm: negative throughput")
	}
	return throughputA / throughputB, nil
}

// Jukeboxes returns the number of jukeboxes a farm needs to hold `dataMB`
// megabytes of base data with the given per-jukebox capacity and expansion
// factor, rounding up (capacity grows one jukebox at a time, as the paper
// notes).
func Jukeboxes(dataMB, capacityMB, e float64) (int, error) {
	if dataMB < 0 || capacityMB <= 0 || e < 1 {
		return 0, errors.New("farm: invalid sizing inputs")
	}
	need := dataMB * e
	n := int(need / capacityMB)
	if float64(n)*capacityMB < need {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n, nil
}
