package farm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExpansionFactor(t *testing.T) {
	cases := []struct {
		nr   int
		ph   float64
		want float64
	}{
		{0, 10, 1},
		{9, 10, 1.9},
		{4, 25, 2},
		{9, 0, 1},
		{1, 100, 2},
	}
	for _, c := range cases {
		if got := ExpansionFactor(c.nr, c.ph); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("E(%d,%v) = %v, want %v", c.nr, c.ph, got, c.want)
		}
	}
}

func TestScaledQueueLength(t *testing.T) {
	cases := []struct {
		name string
		base int
		e    float64
		want int
	}{
		{"paper 60 over 1.9", 60, 1.9, 32},
		{"no expansion", 60, 1, 60},
		{"rounds up at half", 3, 2, 2},      // 1.5 -> 2 under round-half-away
		{"rounds down below half", 7, 5, 1}, // 1.4 -> 1
		// The clamp-to-1 edge: base/E < 0.5 would round to zero processes,
		// which a closed queue cannot have. The old int(x+0.5) cast happened
		// to truncate 0.9999 to 0 before the clamp rescued it; math.Round
		// makes the zero explicit and the clamp intentional.
		{"clamp tiny quotient", 1, 10, 1},      // 0.1 -> round 0 -> clamp 1
		{"clamp just below half", 4, 9, 1},     // 0.444 -> round 0 -> clamp 1
		{"half quotient rounds to 1", 1, 2, 1}, // 0.5 -> round 1, no clamp needed
		{"clamp huge expansion", 2, 1e6, 1},
	}
	for _, c := range cases {
		q, err := ScaledQueueLength(c.base, c.e)
		if err != nil || q != c.want {
			t.Errorf("%s: ScaledQueueLength(%d, %v) = %d (%v), want %d",
				c.name, c.base, c.e, q, err, c.want)
		}
	}
	if _, err := ScaledQueueLength(0, 1.5); err == nil {
		t.Error("zero base accepted")
	}
	if _, err := ScaledQueueLength(10, 0.5); err == nil {
		t.Error("expansion below 1 accepted")
	}
}

func TestCostPerformanceRatio(t *testing.T) {
	if r, err := CostPerformanceRatio(110, 100); err != nil || math.Abs(r-1.1) > 1e-12 {
		t.Errorf("ratio = %v (%v), want 1.1", r, err)
	}
	if _, err := CostPerformanceRatio(1, 0); err == nil {
		t.Error("zero baseline accepted")
	}
	if _, err := CostPerformanceRatio(-1, 10); err == nil {
		t.Error("negative throughput accepted")
	}
}

func TestJukeboxes(t *testing.T) {
	// 100 GB of data, 70 GB jukeboxes, no replication: 2 jukeboxes.
	if n, err := Jukeboxes(102400, 71680, 1); err != nil || n != 2 {
		t.Errorf("n = %d (%v), want 2", n, err)
	}
	// Full replication of 10% hot data: E=1.9 pushes it to 3.
	if n, err := Jukeboxes(102400, 71680, 1.9); err != nil || n != 3 {
		t.Errorf("n = %d (%v), want 3", n, err)
	}
	// Exact fit does not round up.
	if n, err := Jukeboxes(71680, 71680, 1); err != nil || n != 1 {
		t.Errorf("n = %d (%v), want 1", n, err)
	}
	if n, err := Jukeboxes(0, 71680, 1); err != nil || n != 1 {
		t.Errorf("empty farm n = %d (%v), want minimum 1", n, err)
	}
	if _, err := Jukeboxes(100, 0, 1); err == nil {
		t.Error("zero capacity accepted")
	}
}

// Property: E is monotone in both NR and PH, and the farm never shrinks
// when E grows.
func TestMonotonicityProperty(t *testing.T) {
	f := func(nr1, nr2 uint8, phRaw uint8) bool {
		a, b := int(nr1)%10, int(nr2)%10
		if a > b {
			a, b = b, a
		}
		ph := float64(phRaw % 101)
		ea, eb := ExpansionFactor(a, ph), ExpansionFactor(b, ph)
		if ea > eb {
			return false
		}
		na, err1 := Jukeboxes(1e6, 71680, ea)
		nb, err2 := Jukeboxes(1e6, 71680, eb)
		return err1 == nil && err2 == nil && na <= nb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
