package farm

import "testing"

// TestRouterImbalanceBound routes 1e5 synthetic keys over seven shards
// and checks the max/mean shard load. Rendezvous hashing over k keys and
// n shards gives each shard a Binomial(k, 1/n) load; at k=1e5, n=7 the
// standard deviation is ~110 on a mean of ~14286, so max/mean beyond
// 1.05 would be a >6-sigma event and indicates a broken mixer.
func TestRouterImbalanceBound(t *testing.T) {
	const keys, shards = 100_000, 7
	r, err := NewRouter(shards)
	if err != nil {
		t.Fatal(err)
	}
	var load [shards]int
	for k := uint64(0); k < keys; k++ {
		load[r.Owner(k)]++
	}
	max, total := 0, 0
	for s, n := range load {
		if n == 0 {
			t.Fatalf("shard %d received no keys", s)
		}
		total += n
		if n > max {
			max = n
		}
	}
	mean := float64(total) / shards
	if ratio := float64(max) / mean; ratio > 1.05 {
		t.Errorf("max/mean shard load = %.4f, want <= 1.05 (loads %v)", ratio, load)
	}
}

// TestRouterDeterministic checks that routing is a pure function: two
// routers over the same shard count agree on every key, and Prefer
// always leads with Owner.
func TestRouterDeterministic(t *testing.T) {
	a, _ := NewRouter(5)
	b, _ := NewRouter(5)
	var buf []int
	for k := uint64(0); k < 10_000; k++ {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %d: owners disagree (%d vs %d)", k, a.Owner(k), b.Owner(k))
		}
		buf = a.Prefer(k, 3, buf)
		if len(buf) != 3 {
			t.Fatalf("key %d: Prefer returned %d shards, want 3", k, len(buf))
		}
		if buf[0] != a.Owner(k) {
			t.Fatalf("key %d: Prefer[0]=%d != Owner=%d", k, buf[0], a.Owner(k))
		}
		seen := map[int]bool{}
		for _, s := range buf {
			if s < 0 || s >= 5 || seen[s] {
				t.Fatalf("key %d: bad preference list %v", k, buf)
			}
			seen[s] = true
		}
	}
}

// TestRouterRemapFraction grows the farm from 6 to 7 shards and measures
// how many keys move. Rendezvous hashing is consistent-hash-grade: a key
// moves only if the *new* shard's score beats its old owner's, so every
// moved key lands on shard 6 and the expected moved fraction is exactly
// 1/7 (each of the 7 shards is equally likely to hold a key's top score).
// A modulo router would remap ~6/7 of keys; we assert we are nowhere
// near that and that no key moved between two pre-existing shards.
func TestRouterRemapFraction(t *testing.T) {
	const keys = 100_000
	old, _ := NewRouter(6)
	grown, _ := NewRouter(7)
	moved := 0
	for k := uint64(0); k < keys; k++ {
		before, after := old.Owner(k), grown.Owner(k)
		if before == after {
			continue
		}
		if after != 6 {
			t.Fatalf("key %d moved between pre-existing shards %d -> %d", k, before, after)
		}
		moved++
	}
	frac := float64(moved) / keys
	// Binomial(1e5, 1/7): mean 1/7 ~ 0.1429, sigma ~ 0.0011.
	if frac < 0.135 || frac > 0.151 {
		t.Errorf("remap fraction = %.4f, want ~1/7 = %.4f", frac, 1.0/7)
	}
}

// TestRotateRange checks Rotate stays in range and actually varies with
// the sequence number (it drives per-request copy rotation).
func TestRotateRange(t *testing.T) {
	seenAll := map[int]bool{}
	for seq := int64(0); seq < 100; seq++ {
		i := Rotate(0xdeadbeef, seq, 3)
		if i < 0 || i >= 3 {
			t.Fatalf("Rotate out of range: %d", i)
		}
		seenAll[i] = true
	}
	if len(seenAll) != 3 {
		t.Errorf("Rotate over 100 seqs hit only %d of 3 slots", len(seenAll))
	}
	if Rotate(1, 2, 1) != 0 || Rotate(1, 2, 0) != 0 {
		t.Error("Rotate with n<=1 must return 0")
	}
}
