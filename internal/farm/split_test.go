package farm

import (
	"math"
	"reflect"
	"testing"

	"tapejuke/internal/workload"
)

// splitCfg builds a small three-tenant split over four shards.
func splitCfg(t *testing.T, policy Policy, copies int) SplitConfig {
	t.Helper()
	mk := func(mean float64, seed int64) workload.Arrivals {
		a, err := workload.NewPoissonArrivals(mean, seed)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	return SplitConfig{
		Shards:    4,
		Policy:    policy,
		Copies:    copies,
		FarmHot:   160,
		FarmCold:  1440,
		LocalHot:  40,
		LocalCold: 360,
		Horizon:   50_000,
		Tenants: []Tenant{
			{Arrivals: mk(120, 11), HotFrac: 0.8},
			{Arrivals: mk(300, 12), HotFrac: 0.4},
			{Arrivals: mk(600, 13), HotFrac: 0.1},
		},
		Seed: 7,
	}
}

func TestSplitDeterministicAndConserving(t *testing.T) {
	for _, pol := range []Policy{PlaceLocal, PlaceSpread, PlaceMirror} {
		a, err := Split(splitCfg(t, pol, 2))
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		b, err := Split(splitCfg(t, pol, 2))
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: split is not deterministic", pol)
		}
		var sum int64
		for s, tr := range a.Traces {
			if len(tr.Times) != len(tr.Blocks) {
				t.Fatalf("%v shard %d: %d times vs %d blocks", pol, s, len(tr.Times), len(tr.Blocks))
			}
			if int64(len(tr.Times)) != a.Routed[s] {
				t.Errorf("%v shard %d: routed %d != trace length %d", pol, s, a.Routed[s], len(tr.Times))
			}
			last := 0.0
			for _, at := range tr.Times {
				if at < last || at >= 50_000 {
					t.Fatalf("%v shard %d: arrival %v out of order or past horizon", pol, s, at)
				}
				last = at
			}
			for _, b := range tr.Blocks {
				if b < 0 || int(b) >= 400 {
					t.Fatalf("%v shard %d: local block %d out of range", pol, s, b)
				}
			}
			sum += a.Routed[s]
		}
		if sum != a.Total || a.Total == 0 {
			t.Errorf("%v: routed sum %d != total %d (or empty)", pol, sum, a.Total)
		}
	}
}

// TestSplitKeyStreamInvariant pins that the placement policy changes only
// *where* requests go, not the workload itself: total request count and
// the multiset of arrival times match across policies.
func TestSplitKeyStreamInvariant(t *testing.T) {
	local, err := Split(splitCfg(t, PlaceLocal, 0))
	if err != nil {
		t.Fatal(err)
	}
	spread, err := Split(splitCfg(t, PlaceSpread, 2))
	if err != nil {
		t.Fatal(err)
	}
	if local.Total != spread.Total {
		t.Fatalf("policy changed the workload: %d vs %d requests", local.Total, spread.Total)
	}
	sumTimes := func(r *SplitResult) float64 {
		var s float64
		for _, tr := range r.Traces {
			for _, at := range tr.Times {
				s += at
			}
		}
		return s
	}
	if math.Abs(sumTimes(local)-sumTimes(spread)) > 1e-6 {
		t.Error("policy perturbed the arrival time stream")
	}
}

// TestSplitFailover kills every hot copy on shard-of-first-preference for
// all blocks at time zero on one shard and checks requests fail over off
// it under spread placement, while local placement keeps routing to it
// (no cross-library copies to fail over to).
func TestSplitFailover(t *testing.T) {
	cfg := splitCfg(t, PlaceSpread, 2)
	dead := make([][]float64, cfg.Shards)
	alive := make([]float64, cfg.LocalHot)
	gone := make([]float64, cfg.LocalHot)
	for i := range alive {
		alive[i] = math.Inf(1)
	}
	// gone[i] == 0: every copy on shard 2 is dead from the start.
	for s := range dead {
		if s == 2 {
			dead[s] = gone
		} else {
			dead[s] = alive
		}
	}
	cfg.HotDeadAt = dead
	res, err := Split(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedOver == 0 {
		t.Error("spread placement with a dead shard should fail over")
	}
	// Shard 2 must still receive its cold share but no hot requests.
	for i, b := range res.Traces[2].Blocks {
		if int(b) < cfg.LocalHot {
			t.Fatalf("request %d: hot block %d routed to a shard with no live hot copies", i, b)
		}
	}

	// The same fault projection under local placement keeps hot load on
	// shard 2: per-library replication has nowhere to fail over.
	lc := splitCfg(t, PlaceLocal, 0)
	lc.HotDeadAt = dead
	lres, err := Split(lc)
	if err != nil {
		t.Fatal(err)
	}
	if lres.FailedOver != 0 {
		t.Error("local placement cannot fail over but counted failovers")
	}
	hotOn2 := false
	for _, b := range lres.Traces[2].Blocks {
		if int(b) < lc.LocalHot {
			hotOn2 = true
			break
		}
	}
	if !hotOn2 {
		t.Error("local placement should keep routing hot requests to the dead shard")
	}
}

func TestSplitValidation(t *testing.T) {
	bad := func(name string, mut func(*SplitConfig)) {
		cfg := splitCfg(t, PlaceSpread, 1)
		mut(&cfg)
		if _, err := Split(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	bad("zero shards", func(c *SplitConfig) { c.Shards = 0 })
	bad("no tenants", func(c *SplitConfig) { c.Tenants = nil })
	bad("closed tenant", func(c *SplitConfig) {
		c.Tenants[0].Arrivals = workload.ClosedArrivals{QueueLength: 5}
	})
	bad("hot frac out of range", func(c *SplitConfig) { c.Tenants[0].HotFrac = 1.5 })
	bad("empty universe", func(c *SplitConfig) { c.FarmHot, c.FarmCold = 0, 0 })
	bad("more copies than shards", func(c *SplitConfig) { c.Copies = 4 })
	bad("no local hot storage", func(c *SplitConfig) { c.LocalHot = 0 })
	bad("zero horizon", func(c *SplitConfig) { c.Horizon = 0 })
	bad("short dead table", func(c *SplitConfig) { c.HotDeadAt = make([][]float64, 2) })
}
