package farm

import (
	"fmt"
	"math"
	"math/rand"

	"tapejuke/internal/layout"
	"tapejuke/internal/workload"
)

// Policy selects where the farm lands the cross-library copies of hot
// data. All policies store the same cold data (hash-partitioned, one copy
// farm-wide); they differ in how many libraries hold each hot block.
type Policy int

const (
	// PlaceLocal keeps replication inside each library: every hot block
	// lives on exactly one library, which holds NR+1 in-library tape
	// copies (the paper's §4.4 scheme, scaled out by hashing blocks to
	// libraries). The router has exactly one destination per block.
	PlaceLocal Policy = iota
	// PlaceSpread puts the NR+1 copies of each hot block on NR+1
	// *different* libraries (the block's rendezvous preference list), one
	// tape copy per library. The router rotates requests over the
	// holders and fails over when a holder's copy has died.
	PlaceSpread
	// PlaceMirror mirrors the entire farm-wide hot set onto every
	// library. Any library can serve any hot request; storage cost grows
	// with the shard count instead of NR.
	PlaceMirror
)

// String names the policy as the CLI spells it.
func (p Policy) String() string {
	switch p {
	case PlaceLocal:
		return "local"
	case PlaceSpread:
		return "spread"
	case PlaceMirror:
		return "mirror"
	}
	return "unknown"
}

// Tenant is one open-model arrival class of the aggregated farm workload:
// an arrival process plus the fraction of its requests aimed at hot data.
// Farm load is the superposition of all tenants' streams.
type Tenant struct {
	// Arrivals is the tenant's (already seeded) open arrival process.
	Arrivals workload.Arrivals
	// HotFrac in [0,1] is the fraction of the tenant's requests that
	// target the farm's hot set.
	HotFrac float64
}

// SplitConfig describes the aggregated workload and farm geometry the
// front end routes over.
type SplitConfig struct {
	Shards int
	Policy Policy
	// Copies is the number of extra cross-library copies of each hot
	// block under PlaceSpread (the farm-level NR); ignored otherwise.
	Copies int

	// FarmHot and FarmCold are the farm-wide distinct hot and cold block
	// counts; requests draw uniformly within each class, as in the
	// paper's two-class skew.
	FarmHot  int
	FarmCold int
	// LocalHot and LocalCold are one library's stored hot and cold block
	// counts (every shard runs the same layout geometry). Farm blocks
	// map onto local blocks by stable hashing.
	LocalHot  int
	LocalCold int

	// HotDeadAt, when non-nil, holds for each shard the time at which
	// each local hot block becomes permanently unreadable on that shard
	// (+Inf = never), projected from the shard's deterministic fault
	// streams. The router consults it to fail over between copy holders.
	HotDeadAt [][]float64

	// Horizon bounds the generated stream; Tenants drive it; Seed feeds
	// the class/key draws (one stream, one Float64 + one Intn per
	// arrival, so routing policy never perturbs the workload).
	Horizon float64
	Tenants []Tenant
	Seed    int64
}

// Trace is one library's routed request sub-stream: arrival times and the
// shard-local block each request asks for, in arrival order.
type Trace struct {
	Times  []float64
	Blocks []layout.BlockID
}

// SplitResult is the routed farm workload.
type SplitResult struct {
	// Traces has one entry per shard.
	Traces []Trace
	// Routed counts requests sent to each shard.
	Routed []int64
	// FailedOver counts requests that skipped at least one dead copy
	// holder before landing (spread/mirror only).
	FailedOver int64
	// Total is the aggregate request count across all shards.
	Total int64
}

// maxSplitRequests bounds the materialized farm stream; beyond this the
// configuration is almost certainly a units mistake, not a workload.
const maxSplitRequests = 100_000_000

// shardSalt decorrelates the per-shard block-mapping hash from the
// routing hash.
func shardSalt(s int) uint64 {
	return mix64(uint64(s) + 0xd6e8feb86659fd93)
}

// hotKey and coldKey embed the block class in the routing key so hot and
// cold universes hash independently.
func hotKey(b int) uint64  { return uint64(b)<<1 | 1 }
func coldKey(b int) uint64 { return uint64(b) << 1 }

// Split generates the aggregated multi-tenant arrival stream, routes
// every request to a shard under the placement policy, and materializes
// the per-shard traces. It is a pure function of its configuration: the
// same SplitConfig always yields byte-identical traces.
func Split(cfg SplitConfig) (*SplitResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r, err := NewRouter(cfg.Shards)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &SplitResult{
		Traces: make([]Trace, cfg.Shards),
		Routed: make([]int64, cfg.Shards),
	}

	// The tenants' streams merge by repeatedly taking the earliest next
	// arrival; ties break toward the lower tenant index so the merge is
	// total and deterministic.
	next := make([]float64, len(cfg.Tenants))
	for i, t := range cfg.Tenants {
		next[i] = t.Arrivals.Next()
	}

	var prefBuf []int
	mirrorAll := make([]int, cfg.Shards)
	for s := range mirrorAll {
		mirrorAll[s] = s
	}
	var seq int64
	for {
		ten := -1
		for i, t := range next {
			if !math.IsInf(t, 1) && (ten < 0 || t < next[ten]) {
				ten = i
			}
		}
		if ten < 0 || next[ten] >= cfg.Horizon {
			break
		}
		at := next[ten]
		next[ten] = cfg.Tenants[ten].Arrivals.Next()

		// One Float64 (class) + one Intn (key) per arrival, always in
		// this order, so the key stream is invariant across policies.
		classDraw := rng.Float64()
		hot := classDraw < cfg.Tenants[ten].HotFrac
		if cfg.FarmCold == 0 {
			hot = true
		} else if cfg.FarmHot == 0 {
			hot = false
		}
		var key, shard int
		var local layout.BlockID
		if hot {
			key = rng.Intn(cfg.FarmHot)
			hk := hotKey(key)
			var cands []int
			switch cfg.Policy {
			case PlaceSpread:
				prefBuf = r.Prefer(hk, cfg.Copies+1, prefBuf)
				cands = prefBuf
			case PlaceMirror:
				cands = mirrorAll
			default: // PlaceLocal
				prefBuf = r.Prefer(hk, 1, prefBuf)
				cands = prefBuf
			}
			start := Rotate(hk, seq, len(cands))
			shard = -1
			for j := 0; j < len(cands); j++ {
				s := cands[(start+j)%len(cands)]
				if cfg.aliveHot(s, key, at) {
					if j > 0 {
						res.FailedOver++
					}
					shard = s
					break
				}
			}
			if shard < 0 {
				// Every holder has lost its copy: route to the rotation
				// target anyway; the shard will count it unserviceable,
				// exactly as a single library would.
				shard = cands[start]
			}
			local = cfg.localHot(shard, key)
		} else {
			key = rng.Intn(cfg.FarmCold)
			ck := coldKey(key)
			shard = r.Owner(ck)
			local = cfg.localCold(shard, key)
		}

		tr := &res.Traces[shard]
		tr.Times = append(tr.Times, at)
		tr.Blocks = append(tr.Blocks, local)
		res.Routed[shard]++
		res.Total++
		seq++
		if res.Total > maxSplitRequests {
			return nil, fmt.Errorf("farm: aggregated stream exceeds %d requests; check rates and horizon", maxSplitRequests)
		}
	}
	return res, nil
}

// localHot maps a farm hot block onto a shard-local hot block (stable per
// (shard, block); many farm blocks can alias one local block, which only
// redistributes uniform mass within the class).
func (cfg *SplitConfig) localHot(shard, key int) layout.BlockID {
	return layout.BlockID(mix64(hotKey(key)^shardSalt(shard)) % uint64(cfg.LocalHot))
}

// localCold maps a farm cold block onto a shard-local cold block; local
// cold block IDs start after the local hot range, as in package layout.
func (cfg *SplitConfig) localCold(shard, key int) layout.BlockID {
	return layout.BlockID(uint64(cfg.LocalHot) + mix64(coldKey(key)^shardSalt(shard))%uint64(cfg.LocalCold))
}

// aliveHot reports whether shard s still holds a readable copy of farm
// hot block key at time t, per the projected fault streams. With no
// projection every copy counts as alive (the shard handles its own
// faults; the router just cannot anticipate them).
func (cfg *SplitConfig) aliveHot(s, key int, t float64) bool {
	if cfg.HotDeadAt == nil || cfg.HotDeadAt[s] == nil {
		return true
	}
	return cfg.HotDeadAt[s][cfg.localHot(s, key)] > t
}

// validate reports the first configuration error.
func (cfg *SplitConfig) validate() error {
	if cfg.Shards < 1 {
		return fmt.Errorf("farm: split needs at least one shard, got %d", cfg.Shards)
	}
	if cfg.Horizon <= 0 {
		return fmt.Errorf("farm: split horizon %v must be positive", cfg.Horizon)
	}
	if len(cfg.Tenants) == 0 {
		return fmt.Errorf("farm: split needs at least one tenant")
	}
	for i, t := range cfg.Tenants {
		if t.Arrivals == nil || t.Arrivals.Closed() {
			return fmt.Errorf("farm: tenant %d needs an open arrival process", i)
		}
		if t.HotFrac < 0 || t.HotFrac > 1 {
			return fmt.Errorf("farm: tenant %d hot fraction %v out of [0,1]", i, t.HotFrac)
		}
	}
	if cfg.FarmHot < 0 || cfg.FarmCold < 0 || cfg.FarmHot+cfg.FarmCold == 0 {
		return fmt.Errorf("farm: bad farm universe (%d hot, %d cold)", cfg.FarmHot, cfg.FarmCold)
	}
	if cfg.FarmHot > 0 && cfg.LocalHot < 1 {
		return fmt.Errorf("farm: shards store no hot blocks but the farm universe has %d", cfg.FarmHot)
	}
	if cfg.FarmCold > 0 && cfg.LocalCold < 1 {
		return fmt.Errorf("farm: shards store no cold blocks but the farm universe has %d", cfg.FarmCold)
	}
	switch cfg.Policy {
	case PlaceLocal, PlaceMirror:
	case PlaceSpread:
		if cfg.Copies < 0 || cfg.Copies+1 > cfg.Shards {
			return fmt.Errorf("farm: spread placement cannot put %d copies on %d libraries", cfg.Copies+1, cfg.Shards)
		}
	default:
		return fmt.Errorf("farm: unknown placement policy %d", cfg.Policy)
	}
	if cfg.HotDeadAt != nil && len(cfg.HotDeadAt) != cfg.Shards {
		return fmt.Errorf("farm: HotDeadAt has %d shards, want %d", len(cfg.HotDeadAt), cfg.Shards)
	}
	return nil
}
