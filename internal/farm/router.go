package farm

import "fmt"

// Router shards request keys across the farm's libraries with rendezvous
// (highest-random-weight) hashing: every (key, shard) pair gets a pseudo-
// random score from a stateless mixer and the key is owned by the shard
// with the highest score. Compared with the balance-id buckets used by
// replication batchers, rendezvous hashing needs no table: it is fully
// determined by the shard count, and growing the farm from N to N+1
// shards moves exactly the keys whose new top score lands on the added
// shard — an expected 1/(N+1) of them, and only ever onto the new shard.
// That is consistent-hash-grade remapping without a ring.
//
// Beyond single ownership, the router exposes the full preference order
// (shards sorted by descending score), which placement policies use to
// pick where NR cross-library copies land and the front end uses to fail
// over when a copy's tape has died.
type Router struct {
	shards int
	scores []uint64 // Prefer scratch; makes the router single-goroutine
}

// NewRouter returns a router over n shards. The router keeps internal
// scratch, so a single Router must not be shared across goroutines; the
// split pre-pass that uses it is sequential by design.
func NewRouter(n int) (*Router, error) {
	if n < 1 {
		return nil, fmt.Errorf("farm: router needs at least one shard, got %d", n)
	}
	return &Router{shards: n, scores: make([]uint64, n)}, nil
}

// Shards reports the number of shards routed over.
func (r *Router) Shards() int { return r.shards }

// mix64 is the splitmix64 finalizer: a cheap invertible mixer whose output
// bits are well distributed even for sequential inputs. All routing,
// placement, and load-rotation decisions funnel through it so the farm is
// a pure function of (key, shard count, sequence number).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// score is the rendezvous weight of shard s for key k. The shard index is
// pre-mixed so that adjacent shards produce unrelated score streams.
func score(key uint64, shard int) uint64 {
	return mix64(key ^ mix64(uint64(shard)+0x9e3779b97f4a7c15))
}

// Owner returns the shard that owns key: the argmax of score over all
// shards, ties broken toward the lower index (ties are a 2^-64 event but
// the break keeps Owner a total deterministic function).
func (r *Router) Owner(key uint64) int {
	best, bestScore := 0, score(key, 0)
	for s := 1; s < r.shards; s++ {
		if sc := score(key, s); sc > bestScore {
			best, bestScore = s, sc
		}
	}
	return best
}

// Prefer appends the top-k shards for key in descending score order to
// buf (which may be nil) and returns the result. k is clamped to the
// shard count. The first element always equals Owner(key). Selection is
// O(k·N), fine for the small k (NR+1 copies) and modest N used here.
func (r *Router) Prefer(key uint64, k int, buf []int) []int {
	if k > r.shards {
		k = r.shards
	}
	buf = buf[:0]
	scores := r.scores
	for s := range scores {
		scores[s] = score(key, s)
	}
	taken := uint64(0) // bitmask; shards is far below 64 in practice
	var takenBig map[int]bool
	if r.shards > 64 {
		takenBig = make(map[int]bool, k)
	}
	for len(buf) < k {
		best, bestScore, found := 0, uint64(0), false
		for s := 0; s < r.shards; s++ {
			if takenBig != nil {
				if takenBig[s] {
					continue
				}
			} else if taken&(1<<uint(s)) != 0 {
				continue
			}
			if !found || scores[s] > bestScore {
				best, bestScore, found = s, scores[s], true
			}
		}
		if takenBig != nil {
			takenBig[best] = true
		} else {
			taken |= 1 << uint(best)
		}
		buf = append(buf, best)
	}
	return buf
}

// Rotate picks a deterministic pseudo-random index in [0, n) from a key
// and a per-request sequence number. The front end uses it to rotate
// each hot block's requests over the libraries holding a copy, so
// multi-copy placements spread a block's load instead of always hitting
// the top-scored holder.
func Rotate(key uint64, seq int64, n int) int {
	if n <= 1 {
		return 0
	}
	return int(mix64(key^mix64(uint64(seq)+0x632be59bd9b4e019)) % uint64(n))
}
