package lifecycle

import (
	"testing"

	"tapejuke/internal/core"
	"tapejuke/internal/layout"
	"tapejuke/internal/sim"
)

const (
	tapes     = 10
	capBlocks = 448
	capacity  = tapes * capBlocks
)

func TestPlanStages(t *testing.T) {
	cases := []struct {
		name       string
		data       int
		wantStage  Stage
		wantNR     int
		wantKind   layout.Kind
		wantPacked bool
	}{
		// 30% full: hot = 134 blocks, spare = 3136 -> full replication.
		{"early", capacity * 3 / 10, StageEarly, 9, layout.Vertical, true},
		// 80% full: hot = 358, spare = 896 -> 2 replica sets.
		{"partial", capacity * 8 / 10, StagePartial, 2, layout.Vertical, true},
		// 99% full: spare 44 < hot -> recapture.
		{"recapture", capacity*99/100 + 1, StageRecapture, 0, layout.Horizontal, false},
		// completely full
		{"full", capacity, StageRecapture, 0, layout.Horizontal, false},
	}
	for _, c := range cases {
		rec, err := Plan(tapes, capBlocks, c.data, 10)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if rec.Stage != c.wantStage || rec.Replicas != c.wantNR ||
			rec.Kind != c.wantKind || rec.Packed != c.wantPacked {
			t.Errorf("%s: got %+v", c.name, rec)
		}
		if rec.Rationale == "" {
			t.Errorf("%s: missing rationale", c.name)
		}
		// Every recommendation must materialize into a buildable layout.
		l, err := layout.Build(rec.LayoutConfig(tapes, capBlocks, c.data, 10))
		if err != nil {
			t.Fatalf("%s: recommended layout does not build: %v", c.name, err)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if l.NumBlocks() != c.data {
			t.Errorf("%s: layout stores %d blocks, want %d", c.name, l.NumBlocks(), c.data)
		}
	}
}

func TestPlanHotSetBeyondOneTape(t *testing.T) {
	// 30% hot on a half-full jukebox: the hot set exceeds one tape, so even
	// with spare capacity the plan must go horizontal.
	rec, err := Plan(tapes, capBlocks, capacity/2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != layout.Horizontal || rec.Replicas < 1 {
		t.Errorf("got %+v, want horizontal with replicas", rec)
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := Plan(1, 448, 100, 10); err == nil {
		t.Error("single tape accepted")
	}
	if _, err := Plan(10, 448, 0, 10); err == nil {
		t.Error("empty jukebox accepted")
	}
	if _, err := Plan(10, 448, capacity+1, 10); err == nil {
		t.Error("overflow accepted")
	}
	if _, err := Plan(10, 448, 100, 101); err == nil {
		t.Error("bad hot percent accepted")
	}
}

func TestStageStrings(t *testing.T) {
	if StageEarly.String() != "early" || StagePartial.String() != "partial" ||
		StageRecapture.String() != "recapture" || Stage(9).String() != "unknown" {
		t.Error("Stage.String mismatch")
	}
}

// The paper's performance story across the fill timeline, under its
// recommended scheduler (the envelope algorithm, which is what exploits
// replicas): following the recommendation always does at least as well as
// the naive layout (no replication, hot at tape starts) at the same
// occupancy, and better while spare capacity allows replication.
func TestRecommendationBeatsNaive(t *testing.T) {
	run := func(cfgL layout.Config) float64 {
		t.Helper()
		res, err := sim.Run(sim.Config{
			BlockMB: 16, TapeCapMB: 7168, Tapes: tapes,
			HotPercent: cfgL.HotPercent, Replicas: cfgL.Replicas,
			Kind: cfgL.Kind, StartPos: cfgL.StartPos,
			DataBlocks:     cfgL.DataBlocks,
			PackAfterData:  cfgL.PackAfterData,
			ReadHotPercent: 40,
			QueueLength:    60,
			Scheduler:      core.NewEnvelope(core.MaxBandwidth),
			Horizon:        300_000, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputKBps
	}
	for _, fill := range []float64{0.3, 0.6, 0.95} {
		data := int(fill * capacity)
		rec, err := Plan(tapes, capBlocks, data, 10)
		if err != nil {
			t.Fatal(err)
		}
		planned := run(rec.LayoutConfig(tapes, capBlocks, data, 10))
		naive := run(layout.Config{
			Tapes: tapes, TapeCapBlocks: capBlocks, HotPercent: 10,
			DataBlocks: data,
		})
		if planned < naive*0.98 { // at worst a wash, within noise
			t.Errorf("fill %.0f%%: recommendation %.1f KB/s loses to naive %.1f KB/s",
				fill*100, planned, naive)
		}
		if rec.Stage == StageEarly && planned < naive*1.02 {
			t.Errorf("fill %.0f%%: full replication should clearly beat naive (%.1f vs %.1f)",
				fill*100, planned, naive)
		}
	}
}
