// Package lifecycle implements the paper's closing operational
// recommendation (end of Section 4.8): how to lay out a jukebox as it
// gradually fills.
//
//   - While capacity is plentiful, dedicate one tape to the hottest data
//     (the preferred vertical layout) and append replicas of hot blocks at
//     the ends of the other tapes -- performance "for free" from spare
//     capacity.
//   - As data grows, keep only as many replicas as still fit.
//   - Near overflow, the hot tape is overwritten with base data (horizontal
//     layout, "nearly as good" under full replication), and finally the
//     replicas themselves are recaptured for base data.
//
// Plan turns an occupancy level into the recommended layout configuration;
// the gradualfill example and tests simulate each stage to confirm the
// recommendation's performance story.
package lifecycle

import (
	"errors"
	"fmt"

	"tapejuke/internal/layout"
)

// Stage names a phase of the jukebox's life.
type Stage int

const (
	// StageEarly: spare capacity covers a replica of every hot block on
	// every tape (full replication, vertical hot tape).
	StageEarly Stage = iota
	// StagePartial: spare capacity covers some replicas but not full
	// replication.
	StagePartial
	// StageRecapture: no room for any replica set; hot tape overwritten,
	// everything horizontal, hot data back at the tape beginnings.
	StageRecapture
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageEarly:
		return "early"
	case StagePartial:
		return "partial"
	case StageRecapture:
		return "recapture"
	}
	return "unknown"
}

// Recommendation is the layout the paper's procedure prescribes for a given
// occupancy.
type Recommendation struct {
	Stage     Stage
	Fill      float64 // base data as a fraction of raw capacity
	Replicas  int     // NR that fits in the spare capacity
	Kind      layout.Kind
	StartPos  float64 // hot/replica region placement (SP) when not packed
	Packed    bool    // append the hot/replica region right after the data
	Rationale string
}

// Plan recommends a layout for a jukebox of `tapes` tapes of capBlocks
// blocks holding dataBlocks of base data, of which hotPercent percent is
// hot. It follows Section 4.8: replicas at tape ends while they fit,
// vertical hot tape while one tape can hold the hot set, hot data at tape
// beginnings once replication is gone.
func Plan(tapes, capBlocks, dataBlocks int, hotPercent float64) (*Recommendation, error) {
	if tapes < 2 || capBlocks < 1 {
		return nil, errors.New("lifecycle: need at least two tapes with positive capacity")
	}
	if hotPercent < 0 || hotPercent > 100 {
		return nil, fmt.Errorf("lifecycle: hot percent %v out of range", hotPercent)
	}
	capacity := tapes * capBlocks
	if dataBlocks < 1 || dataBlocks > capacity {
		return nil, fmt.Errorf("lifecycle: %d data blocks do not fit %d-block capacity", dataBlocks, capacity)
	}
	hot := int(hotPercent / 100 * float64(dataBlocks))
	spare := capacity - dataBlocks

	nr := 0
	if hot > 0 {
		nr = spare / hot
	}
	if nr > tapes-1 {
		nr = tapes - 1
	}

	rec := &Recommendation{
		Fill:     float64(dataBlocks) / float64(capacity),
		Replicas: nr,
	}
	vertical := hot > 0 && hot <= capBlocks
	switch {
	case nr == tapes-1 && vertical:
		rec.Stage = StageEarly
		rec.Kind = layout.Vertical
		rec.Packed = true
		rec.Rationale = "spare capacity covers full replication: hot tape + replicas appended after each tape's data"
	case nr >= 1:
		rec.Stage = StagePartial
		rec.Packed = true
		if vertical {
			rec.Kind = layout.Vertical
			rec.Rationale = fmt.Sprintf("spare capacity covers %d replica set(s) appended after the data", nr)
		} else {
			rec.Kind = layout.Horizontal
			rec.Rationale = fmt.Sprintf("hot set exceeds one tape: horizontal layout with %d replica set(s) appended after the data", nr)
		}
	default:
		rec.Stage = StageRecapture
		rec.Kind = layout.Horizontal
		rec.StartPos = 0
		rec.Rationale = "no spare capacity: replicas recaptured, hot data at the tape beginnings"
	}
	return rec, nil
}

// LayoutConfig materializes the recommendation as a layout configuration
// for the given geometry.
func (r *Recommendation) LayoutConfig(tapes, capBlocks, dataBlocks int, hotPercent float64) layout.Config {
	return layout.Config{
		Tapes:         tapes,
		TapeCapBlocks: capBlocks,
		HotPercent:    hotPercent,
		Replicas:      r.Replicas,
		Kind:          r.Kind,
		StartPos:      r.StartPos,
		DataBlocks:    dataBlocks,
		PackAfterData: r.Packed,
	}
}
