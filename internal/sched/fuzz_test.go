package sched

import (
	"testing"

	"tapejuke/internal/layout"
)

// FuzzSweepInsert drives the sweep with adversarial build/insert/pop
// interleavings and checks the single-pass invariants: forward ascending,
// reverse descending, nothing lost or duplicated, accepted insertions only
// ahead of the head.
func FuzzSweepInsert(f *testing.F) {
	f.Add([]byte{10, 20, 30}, []byte{5, 25, 35}, uint8(15))
	f.Add([]byte{}, []byte{1}, uint8(0))
	f.Add([]byte{200, 100, 150}, []byte{120, 180, 90}, uint8(160))
	f.Fuzz(func(t *testing.T, build []byte, insert []byte, headRaw uint8) {
		if len(build) > 64 {
			build = build[:64]
		}
		if len(insert) > 64 {
			insert = insert[:64]
		}
		head := int(headRaw)
		var reqs []*Request
		for i, p := range build {
			reqs = append(reqs, &Request{ID: int64(i), Target: layout.Replica{Pos: int(p)}})
		}
		s := NewSweep(reqs, head)
		total := len(build)

		// Interleave pops and inserts.
		for i, p := range insert {
			if i%2 == 0 {
				if r := s.Pop(); r != nil {
					total--
					head = r.Target.Pos + 1
				}
			}
			r := &Request{ID: int64(1000 + i), Target: layout.Replica{Pos: int(p)}}
			if s.Insert(r, head) {
				total++
			}
		}
		if s.Len() != total {
			t.Fatalf("sweep length %d, bookkept %d", s.Len(), total)
		}
		for i := 1; i < len(s.Forward); i++ {
			if s.Forward[i].Target.Pos < s.Forward[i-1].Target.Pos {
				t.Fatal("forward phase out of order")
			}
		}
		for i := 1; i < len(s.Reverse); i++ {
			if s.Reverse[i].Target.Pos > s.Reverse[i-1].Target.Pos {
				t.Fatal("reverse phase out of order")
			}
		}
		// Draining pops everything exactly once.
		seen := make(map[int64]bool)
		for {
			r := s.Pop()
			if r == nil {
				break
			}
			if seen[r.ID] {
				t.Fatalf("request %d popped twice", r.ID)
			}
			seen[r.ID] = true
		}
		if len(seen) != total {
			t.Fatalf("drained %d, expected %d", len(seen), total)
		}
	})
}

// FuzzCostModel checks that schedule costs stay finite and non-negative
// over arbitrary position sequences.
func FuzzCostModel(f *testing.F) {
	f.Add([]byte{0, 5, 3, 10}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, headRaw uint8) {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		c := testCosts()
		positions := make([]int, len(raw))
		for i, b := range raw {
			positions[i] = int(b)
		}
		sec, final := c.ExecTime(int(headRaw), positions)
		if sec < 0 || sec != sec { // NaN check
			t.Fatalf("ExecTime = %v", sec)
		}
		if len(positions) > 0 && final != positions[len(positions)-1]+1 {
			t.Fatalf("final head %d after %v", final, positions)
		}
		bw := c.EffectiveBandwidth(0, int(headRaw), 1, 0, positions)
		if bw < 0 || bw != bw {
			t.Fatalf("bandwidth = %v", bw)
		}
		if bw > c.Prof.StreamingRateMBps()+1e-9 {
			t.Fatalf("bandwidth %v exceeds streaming rate", bw)
		}
	})
}
