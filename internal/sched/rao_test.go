package sched

import (
	"math/rand"
	"testing"

	"tapejuke/internal/layout"
	"tapejuke/internal/tapemodel"
)

// TestReorderRAONearestFirst checks the RAO contract on the LTO-9-class
// serpentine profile: the reordered sweep is a permutation of the original
// requests, every step serves a request with the minimum locate time from
// the head position the previous read left behind, and the committed order
// declines incremental insertion.
func TestReorderRAONearestFirst(t *testing.T) {
	p := tapemodel.LTO9Class()
	const blockMB = 16.0
	maxPos := int(float64(p.Tracks)*p.TrackMB/blockMB) - 1
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(24)
		reqs := make([]*Request, n)
		want := make(map[*Request]bool, n)
		for i := range reqs {
			reqs[i] = req(int64(i), rng.Intn(maxPos+1))
			want[reqs[i]] = true
		}
		head := rng.Intn(maxPos + 2)
		s := NewSweep(reqs, head)
		s.ReorderRAO(p, blockMB, head)

		order := s.Requests()
		if len(order) != n {
			t.Fatalf("trial %d: reorder kept %d of %d requests", trial, len(order), n)
		}
		for _, r := range order {
			if !want[r] {
				t.Fatalf("trial %d: request %d not from the original sweep (or duplicated)", trial, r.ID)
			}
			delete(want, r)
		}

		// Nearest-first: each served request minimizes the locate time from
		// the current head over everything still unserved.
		cur := float64(head) * blockMB
		for i, r := range order {
			sec, _ := p.Locate(cur, float64(r.Target.Pos)*blockMB)
			for _, later := range order[i+1:] {
				lsec, _ := p.Locate(cur, float64(later.Target.Pos)*blockMB)
				if lsec < sec {
					t.Fatalf("trial %d step %d: served pos %d (%.2f s) over nearer pos %d (%.2f s)",
						trial, i, r.Target.Pos, sec, later.Target.Pos, lsec)
				}
			}
			cur = float64(r.Target.Pos+1) * blockMB
		}

		// The committed order is frozen: arrivals go to pending instead.
		late := &Request{ID: 999, Target: layout.Replica{Tape: 0, Pos: maxPos / 2}}
		if s.Insert(late, head) {
			t.Fatalf("trial %d: Insert accepted into a committed RAO order", trial)
		}

		// The order drains through Pop like any sweep.
		for i := 0; !s.Empty(); i++ {
			if got := s.Pop(); got != order[i] {
				t.Fatalf("trial %d: Pop()[%d] = %d, want %d", trial, i, got.ID, order[i].ID)
			}
		}
	}
}
