package sched

import (
	"testing"

	"tapejuke/internal/layout"
	"tapejuke/internal/tapemodel"
)

// fixture builds a scheduling state over a small jukebox. Each block's
// placement is known: with 4 tapes, 20 blocks/tape, PH=20 and NR as given.
func fixture(t *testing.T, nr int, kind layout.Kind) *State {
	t.Helper()
	l, err := layout.Build(layout.Config{
		Tapes: 4, TapeCapBlocks: 20, HotPercent: 20,
		Replicas: nr, Kind: kind, StartPos: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewState(l, &CostModel{Prof: tapemodel.EXB8505XL(), BlockMB: 16})
}

// addReq appends a pending request for block b arriving at time at.
func addReq(st *State, id int64, b layout.BlockID, at float64) *Request {
	r := &Request{ID: id, Block: b, Arrival: at}
	st.Pending = append(st.Pending, r)
	return r
}

// coldOn returns some cold block whose single copy is on the given tape.
func coldOn(t *testing.T, st *State, tape int) layout.BlockID {
	t.Helper()
	for b := st.Layout.NumHot(); b < st.Layout.NumBlocks(); b++ {
		if st.Layout.Replicas(layout.BlockID(b))[0].Tape == tape {
			return layout.BlockID(b)
		}
	}
	t.Fatalf("no cold block on tape %d", tape)
	return 0
}

func TestFIFOServesInArrivalOrder(t *testing.T) {
	st := fixture(t, 0, layout.Horizontal)
	f := NewFIFO()
	b0 := coldOn(t, st, 2)
	b1 := coldOn(t, st, 1)
	addReq(st, 1, b0, 0)
	addReq(st, 2, b1, 1)

	tape, sweep, ok := f.Reschedule(st)
	if !ok || tape != 2 || sweep.Len() != 1 {
		t.Fatalf("first reschedule: tape=%d len=%d ok=%v", tape, sweep.Len(), ok)
	}
	if len(st.Pending) != 1 || st.Pending[0].ID != 2 {
		t.Fatal("FIFO should consume exactly the oldest request")
	}
	if f.OnArrival(st, &Request{}) {
		t.Error("FIFO OnArrival must always defer")
	}
}

func TestFIFOPrefersMountedReplica(t *testing.T) {
	st := fixture(t, 3, layout.Horizontal)
	f := NewFIFO()
	// Block 0 is hot and fully replicated across the 4 tapes.
	addReq(st, 1, 0, 0)
	st.Mounted = 3
	tape, _, ok := f.Reschedule(st)
	if !ok || tape != 3 {
		t.Errorf("FIFO chose tape %d, want mounted tape 3", tape)
	}
}

func TestStaticMaxRequests(t *testing.T) {
	st := fixture(t, 0, layout.Horizontal)
	s := NewStatic(MaxRequests)
	if s.Name() != "static-max-requests" {
		t.Errorf("Name = %q", s.Name())
	}
	// Two requests on tape 1, one on tape 2.
	addReq(st, 1, coldOn(t, st, 2), 0)
	addReq(st, 2, coldOn(t, st, 1), 1)
	b := coldOn(t, st, 1)
	addReq(st, 3, b+4, 2) // another block on tape 1 (cold round-robin stride is Tapes)

	tape, sweep, ok := s.Reschedule(st)
	if !ok {
		t.Fatal("reschedule failed")
	}
	if tape != 1 {
		t.Fatalf("chose tape %d, want 1 (2 requests vs 1)", tape)
	}
	if sweep.Len() != 2 {
		t.Fatalf("sweep has %d requests, want 2", sweep.Len())
	}
	if len(st.Pending) != 1 || st.Pending[0].ID != 1 {
		t.Fatal("pending should retain only the tape-2 request")
	}
	if s.OnArrival(st, &Request{}) {
		t.Error("static OnArrival must always defer")
	}
}

func TestStaticRoundRobinSkipsMounted(t *testing.T) {
	st := fixture(t, 0, layout.Horizontal)
	s := NewStatic(RoundRobin)
	st.Mounted = 1
	addReq(st, 1, coldOn(t, st, 1), 0)
	addReq(st, 2, coldOn(t, st, 3), 1)
	// Round robin starts after the mounted tape: 2, 3, 0, then 1.
	tape, _, ok := s.Reschedule(st)
	if !ok || tape != 3 {
		t.Errorf("round robin chose tape %d, want 3", tape)
	}
}

func TestStaticRoundRobinFallsBackToMounted(t *testing.T) {
	st := fixture(t, 0, layout.Horizontal)
	s := NewStatic(RoundRobin)
	st.Mounted = 1
	addReq(st, 1, coldOn(t, st, 1), 0)
	tape, _, ok := s.Reschedule(st)
	if !ok || tape != 1 {
		t.Errorf("round robin chose tape %d, want mounted 1 (only candidate)", tape)
	}
}

func TestStaticMaxBandwidthPrefersMountedTies(t *testing.T) {
	st := fixture(t, 0, layout.Horizontal)
	s := NewStatic(MaxBandwidth)
	st.Mounted = 2
	st.Head = 0
	// One request each on tapes 2 and 3 at comparable positions; the
	// mounted tape avoids the 81 s switch, so it must win.
	addReq(st, 1, coldOn(t, st, 3), 0)
	addReq(st, 2, coldOn(t, st, 2), 1)
	tape, _, ok := s.Reschedule(st)
	if !ok || tape != 2 {
		t.Errorf("max bandwidth chose tape %d, want mounted 2", tape)
	}
}

func TestOldestPolicies(t *testing.T) {
	st := fixture(t, 0, layout.Horizontal)
	// Oldest request is on tape 3; tape 1 has more requests but cannot
	// satisfy the oldest.
	addReq(st, 1, coldOn(t, st, 3), 0)
	addReq(st, 2, coldOn(t, st, 1), 1)
	b := coldOn(t, st, 1)
	addReq(st, 3, b+4, 2)

	for _, p := range []Policy{OldestMaxRequests, OldestMaxBandwidth} {
		tape, ok := SelectTape(st, p)
		if !ok || tape != 3 {
			t.Errorf("%v chose tape %d, want 3", p, tape)
		}
	}
	// Plain max-requests ignores the oldest and picks tape 1.
	if tape, _ := SelectTape(st, MaxRequests); tape != 1 {
		t.Errorf("max-requests chose tape %d, want 1", tape)
	}
}

func TestOldestWithReplicationPicksBusiestCopy(t *testing.T) {
	st := fixture(t, 3, layout.Horizontal)
	// Hot block 0 is on all 4 tapes, so every tape can satisfy the oldest;
	// load tape 2 with an extra cold request to make it the max-requests
	// winner among the candidates.
	addReq(st, 1, 0, 0)
	addReq(st, 2, coldOn(t, st, 2), 1)
	tape, ok := SelectTape(st, OldestMaxRequests)
	if !ok || tape != 2 {
		t.Errorf("oldest-max-requests chose tape %d, want 2", tape)
	}
}

func TestDynamicInsertsOnMountedTape(t *testing.T) {
	st := fixture(t, 0, layout.Horizontal)
	d := NewDynamic(MaxBandwidth)
	if d.Name() != "dynamic-max-bandwidth" {
		t.Errorf("Name = %q", d.Name())
	}
	b := coldOn(t, st, 1)
	addReq(st, 1, b, 0)
	tape, sweep, ok := d.Reschedule(st)
	if !ok || tape != 1 {
		t.Fatalf("reschedule: tape=%d ok=%v", tape, ok)
	}
	st.Mounted, st.Head, st.Active = tape, 0, sweep

	// A new request for another block on tape 1 ahead of the head is
	// inserted (cold round-robin fill places block b+4 on the same tape).
	r2 := &Request{ID: 2, Block: b + 4}
	if _, ok := st.Layout.ReplicaOn(r2.Block, 1); !ok {
		t.Fatal("fixture error: b+4 not on tape 1")
	}
	if !d.OnArrival(st, r2) {
		t.Fatal("dynamic should insert a mounted-tape request")
	}
	if st.Active.Len() != 2 {
		t.Fatalf("sweep length %d, want 2", st.Active.Len())
	}

	// A request for a block on another tape is deferred.
	r3 := &Request{ID: 3, Block: coldOn(t, st, 2)}
	if d.OnArrival(st, r3) {
		t.Error("dynamic inserted a request for an unmounted tape")
	}
}

func TestDynamicRejectsWhenIdle(t *testing.T) {
	st := fixture(t, 0, layout.Horizontal)
	d := NewDynamic(MaxRequests)
	if d.OnArrival(st, &Request{ID: 1, Block: 0}) {
		t.Error("OnArrival with no active sweep should defer")
	}
}

func TestRemovePending(t *testing.T) {
	st := fixture(t, 0, layout.Horizontal)
	a := addReq(st, 1, 0, 0)
	b := addReq(st, 2, 1, 1)
	c := addReq(st, 3, 2, 2)
	st.RemovePending([]*Request{a, c})
	if len(st.Pending) != 1 || st.Pending[0] != b {
		t.Errorf("pending after removal = %v", st.Pending)
	}
	st.RemovePending(nil)
	if len(st.Pending) != 1 {
		t.Error("RemovePending(nil) should be a no-op")
	}
}

func TestSelectTapeEmptyPending(t *testing.T) {
	st := fixture(t, 0, layout.Horizontal)
	for _, p := range []Policy{RoundRobin, MaxRequests, MaxBandwidth, OldestMaxRequests, OldestMaxBandwidth} {
		if _, ok := SelectTape(st, p); ok {
			t.Errorf("%v selected a tape with empty pending", p)
		}
	}
	for _, s := range []Scheduler{NewFIFO(), NewStatic(MaxRequests), NewDynamic(MaxRequests)} {
		if _, _, ok := s.Reschedule(st); ok {
			t.Errorf("%s rescheduled with empty pending", s.Name())
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{
		RoundRobin:         "round-robin",
		MaxRequests:        "max-requests",
		MaxBandwidth:       "max-bandwidth",
		OldestMaxRequests:  "oldest-max-requests",
		OldestMaxBandwidth: "oldest-max-bandwidth",
		Policy(99):         "unknown",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
}
