package sched

import "tapejuke/internal/layout"

// FIFO services requests strictly in arrival order. Each major reschedule
// serves exactly the oldest pending request; for random requests nearly
// every retrieval incurs a tape rewind, switch, and long locate, which is
// why the paper uses FIFO as the lower baseline (its Figure 4 curve is a
// vertical line: longer queues do not raise the service rate).
type FIFO struct{}

// NewFIFO returns the FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name returns "fifo".
func (*FIFO) Name() string { return "fifo" }

// Reschedule serves the oldest pending request. If the block has a copy on
// the mounted tape, that copy is used (the switch is then free); otherwise
// the first available copy's tape is loaded. With every copy on busy tapes
// (multi-drive operation) it reports failure and the drive waits.
func (*FIFO) Reschedule(st *State) (int, *Sweep, bool) {
	if len(st.Pending) == 0 {
		return 0, nil, false
	}
	r := st.Pending[0]
	target, found := layoutTarget(st, r)
	if !found {
		return 0, nil, false
	}
	r.Target = target
	st.RemovePending([]*Request{r})
	return target.Tape, st.NewSweep([]*Request{r}, st.StartHead(target.Tape)), true
}

// OnArrival always defers: FIFO never reorders.
func (*FIFO) OnArrival(*State, *Request) bool { return false }

// layoutTarget picks the copy FIFO should read: the mounted tape's copy
// when one exists and is readable, otherwise the first readable copy on an
// available tape.
func layoutTarget(st *State, r *Request) (layout.Replica, bool) {
	if st.Mounted >= 0 && st.Available(st.Mounted) {
		if c, ok := st.UsableOn(r.Block, st.Mounted); ok {
			return c, true
		}
	}
	for _, c := range st.Layout.Replicas(r.Block) {
		if st.Available(c.Tape) && st.CopyOK(c) {
			return c, true
		}
	}
	return layout.Replica{}, false
}
