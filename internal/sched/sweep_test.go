package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tapejuke/internal/layout"
)

func req(id int64, pos int) *Request {
	return &Request{ID: id, Target: layout.Replica{Tape: 0, Pos: pos}}
}

func popOrder(s *Sweep) []int {
	var out []int
	for !s.Empty() {
		out = append(out, s.Pop().Target.Pos)
	}
	return out
}

func TestSweepOrdering(t *testing.T) {
	// Head at 10: 12, 30 forward ascending; 7, 3 reverse descending.
	s := NewSweep([]*Request{req(1, 30), req(2, 7), req(3, 12), req(4, 3)}, 10)
	want := []int{12, 30, 7, 3}
	got := popOrder(s)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSweepHeadZeroAllForward(t *testing.T) {
	s := NewSweep([]*Request{req(1, 5), req(2, 2), req(3, 9)}, 0)
	if len(s.Reverse) != 0 {
		t.Fatal("head 0 should produce a purely forward sweep")
	}
	got := popOrder(s)
	if got[0] != 2 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("forward order = %v", got)
	}
}

func TestSweepTiesPreserveArrival(t *testing.T) {
	a, b := req(1, 5), req(2, 5)
	s := NewSweep([]*Request{a, b}, 0)
	if s.Pop() != a || s.Pop() != b {
		t.Error("equal positions should pop in arrival order")
	}
}

func TestSweepInsertForwardPhase(t *testing.T) {
	s := NewSweep([]*Request{req(1, 10), req(2, 20)}, 0)
	// Ahead of head in forward phase: accepted into forward order.
	if !s.Insert(req(3, 15), 5) {
		t.Fatal("insert ahead of head rejected")
	}
	// Behind the head during forward phase: joins the reverse phase.
	if !s.Insert(req(4, 2), 5) {
		t.Fatal("insert behind head rejected during forward phase")
	}
	got := popOrder(s)
	want := []int{10, 15, 20, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSweepInsertReversePhase(t *testing.T) {
	s := &Sweep{}
	s.Reverse = []*Request{req(1, 30), req(2, 10)}
	// Head descending at 40: position 20 is still ahead (below).
	if !s.Insert(req(3, 20), 40) {
		t.Fatal("reverse-phase insert below head rejected")
	}
	// Position 50 is above a descending head: passed, must be rejected.
	if s.Insert(req(4, 50), 40) {
		t.Fatal("reverse-phase insert above head accepted")
	}
	got := popOrder(s)
	want := []int{30, 20, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSweepInsertEmptyRejected(t *testing.T) {
	s := &Sweep{}
	if s.Insert(req(1, 5), 0) {
		t.Error("insert into empty sweep should be rejected (no sweep to join)")
	}
}

func TestSweepPeekAndMaxPos(t *testing.T) {
	s := NewSweep([]*Request{req(1, 10), req(2, 4)}, 8)
	if s.Peek().Target.Pos != 10 {
		t.Errorf("Peek = %d, want 10", s.Peek().Target.Pos)
	}
	if s.MaxPos() != 10 {
		t.Errorf("MaxPos = %d, want 10", s.MaxPos())
	}
	s.Pop()
	if s.MaxPos() != 4 {
		t.Errorf("MaxPos after pop = %d, want 4", s.MaxPos())
	}
	s.Pop()
	if s.MaxPos() != -1 || s.Peek() != nil || s.Pop() != nil {
		t.Error("empty sweep should report MaxPos -1 and nil Peek/Pop")
	}
}

// Property: a sweep built from random requests pops every request exactly
// once, in an order that is one forward (ascending) run followed by one
// reverse (descending) run.
func TestSweepSinglePassProperty(t *testing.T) {
	f := func(seed int64, n uint8, headRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%40 + 1
		head := int(headRaw) % 100
		reqs := make([]*Request, count)
		for i := range reqs {
			reqs[i] = req(int64(i), rng.Intn(100))
		}
		s := NewSweep(reqs, head)
		if s.Len() != count {
			return false
		}
		order := popOrder(s)
		if len(order) != count {
			return false
		}
		// Split at the first descent below head; forward run ascending and
		// >= head, reverse run descending and < head.
		i := 0
		for i < len(order) && order[i] >= head {
			if i > 0 && order[i] < order[i-1] && order[i-1] >= head {
				// still forward region; ascending required
				return false
			}
			i++
		}
		for j := i + 1; j < len(order); j++ {
			if order[j] > order[j-1] || order[j] >= head {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: dynamic insertion never duplicates or loses requests and keeps
// phase ordering intact.
func TestSweepInsertProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		head := rng.Intn(50)
		var reqs []*Request
		for i := 0; i < 10; i++ {
			reqs = append(reqs, req(int64(i), rng.Intn(100)))
		}
		s := NewSweep(reqs, head)
		inserted := 0
		for i := 0; i < 10; i++ {
			if s.Insert(req(int64(100+i), rng.Intn(100)), head) {
				inserted++
			}
		}
		total := s.Len()
		if total != 10+inserted {
			return false
		}
		// Forward ascending, reverse descending.
		for i := 1; i < len(s.Forward); i++ {
			if s.Forward[i].Target.Pos < s.Forward[i-1].Target.Pos {
				return false
			}
		}
		for i := 1; i < len(s.Reverse); i++ {
			if s.Reverse[i].Target.Pos > s.Reverse[i-1].Target.Pos {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
