package sched

import (
	"math/rand"
	"testing"

	"tapejuke/internal/layout"
	"tapejuke/internal/tapemodel"
)

// benchState builds a pending list of n requests over the paper's jukebox
// with the given replication.
func benchState(b *testing.B, n, nr int) *State {
	b.Helper()
	kind := layout.Horizontal
	sp := 0.0
	if nr > 0 {
		kind = layout.Vertical
		sp = 1
	}
	l, err := layout.Build(layout.Config{
		Tapes: 10, TapeCapBlocks: 448, HotPercent: 10,
		Replicas: nr, Kind: kind, StartPos: sp,
	})
	if err != nil {
		b.Fatal(err)
	}
	st := NewState(l, &CostModel{Prof: tapemodel.EXB8505XL(), BlockMB: 16})
	st.Mounted, st.Head = 3, 100
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		st.Pending = append(st.Pending, &Request{
			ID: int64(i), Block: layout.BlockID(rng.Intn(l.NumBlocks())),
		})
	}
	return st
}

// resetPending restores a pending list consumed by a Reschedule call.
func resetPending(st *State, saved []*Request) {
	st.Pending = st.Pending[:0]
	st.Pending = append(st.Pending, saved...)
}

func benchReschedule(b *testing.B, s Scheduler, n, nr int) {
	st := benchState(b, n, nr)
	saved := append([]*Request(nil), st.Pending...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, ok := s.Reschedule(st)
		if !ok {
			b.Fatal("reschedule failed")
		}
		resetPending(st, saved)
	}
}

func BenchmarkRescheduleStaticMaxRequests140(b *testing.B) {
	benchReschedule(b, NewStatic(MaxRequests), 140, 0)
}

func BenchmarkRescheduleStaticMaxBandwidth140(b *testing.B) {
	benchReschedule(b, NewStatic(MaxBandwidth), 140, 0)
}

func BenchmarkRescheduleDynamicMaxBandwidth140(b *testing.B) {
	benchReschedule(b, NewDynamic(MaxBandwidth), 140, 0)
}

func BenchmarkRescheduleFIFO(b *testing.B) {
	benchReschedule(b, NewFIFO(), 140, 0)
}

func BenchmarkSweepBuild140(b *testing.B) {
	st := benchState(b, 140, 0)
	reqs := st.SatisfiableBy(3)
	for _, r := range reqs {
		c, _ := st.Layout.ReplicaOn(r.Block, 3)
		r.Target = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewSweep(reqs, 100)
	}
}

func BenchmarkSweepInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	reqs := make([]*Request, 64)
	for i := range reqs {
		reqs[i] = &Request{ID: int64(i), Target: layout.Replica{Tape: 0, Pos: rng.Intn(448)}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSweep(reqs[:32], 0)
		for _, r := range reqs[32:] {
			s.Insert(r, 0)
		}
	}
}

func BenchmarkEffectiveBandwidth(b *testing.B) {
	st := benchState(b, 140, 0)
	positions := candidatePositions(st, 3)
	order := sweepOrder(positions, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Costs.EffectiveBandwidth(3, 100, 3, 100, order)
	}
}
