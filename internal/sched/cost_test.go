package sched

import (
	"math"
	"testing"

	"tapejuke/internal/tapemodel"
)

func testCosts() *CostModel {
	return &CostModel{Prof: tapemodel.EXB8505XL(), BlockMB: 16}
}

func TestServeOneForward(t *testing.T) {
	c := testCosts()
	// Head at block 0, target block 10: forward locate 160 MB (long segment),
	// then a 16 MB forward read.
	sec, head := c.ServeOne(0, 10)
	wantLoc := 14.342 + 0.028*160
	wantRead := 0.38 + 1.77*16
	if math.Abs(sec-(wantLoc+wantRead)) > 1e-9 {
		t.Errorf("ServeOne(0,10) = %v, want %v", sec, wantLoc+wantRead)
	}
	if head != 11 {
		t.Errorf("new head = %d, want 11", head)
	}
}

func TestServeOneSequential(t *testing.T) {
	c := testCosts()
	// Reading the block the head is parked at requires no locate.
	sec, head := c.ServeOne(5, 5)
	wantRead := 0.38 + 1.77*16
	if math.Abs(sec-wantRead) > 1e-9 {
		t.Errorf("sequential read = %v, want %v", sec, wantRead)
	}
	if head != 6 {
		t.Errorf("new head = %d, want 6", head)
	}
}

func TestServeOneReverse(t *testing.T) {
	c := testCosts()
	// Head at block 10, target block 5: reverse locate 80 MB, reverse read.
	sec, _ := c.ServeOne(10, 5)
	wantLoc := 13.74 + 0.0286*80
	wantRead := 1.77 * 16.0
	if math.Abs(sec-(wantLoc+wantRead)) > 1e-9 {
		t.Errorf("reverse ServeOne = %v, want %v", sec, wantLoc+wantRead)
	}
	// Reverse to block 0 pays the BOT overhead.
	sec0, _ := c.ServeOne(10, 0)
	wantLoc0 := 13.74 + 0.0286*160 + 21
	if math.Abs(sec0-(wantLoc0+wantRead)) > 1e-9 {
		t.Errorf("reverse-to-BOT ServeOne = %v, want %v", sec0, wantLoc0+wantRead)
	}
}

func TestExecTimeAdds(t *testing.T) {
	c := testCosts()
	t1, h1 := c.ServeOne(0, 3)
	t2, h2 := c.ServeOne(h1, 9)
	total, final := c.ExecTime(0, []int{3, 9})
	if math.Abs(total-(t1+t2)) > 1e-9 {
		t.Errorf("ExecTime = %v, want %v", total, t1+t2)
	}
	if final != h2 {
		t.Errorf("final head = %d, want %d", final, h2)
	}
	if zero, h := c.ExecTime(7, nil); zero != 0 || h != 7 {
		t.Error("empty schedule should cost nothing and keep the head")
	}
}

func TestSwitchCost(t *testing.T) {
	c := testCosts()
	if got := c.SwitchCost(3, 100, 3); got != 0 {
		t.Errorf("same-tape switch = %v, want 0", got)
	}
	// Empty drive: robot + load only.
	if got, want := c.SwitchCost(-1, 0, 2), 20.0+42.0; got != want {
		t.Errorf("empty-drive load = %v, want %v", got, want)
	}
	// Replacing a tape with the head at block 100 (1600 MB): rewind + BOT +
	// eject + robot + load.
	want := (13.74 + 0.0286*1600) + 21 + 81
	if got := c.SwitchCost(0, 100, 2); math.Abs(got-want) > 1e-9 {
		t.Errorf("full switch = %v, want %v", got, want)
	}
}

func TestEffectiveBandwidth(t *testing.T) {
	c := testCosts()
	// Serving more blocks in one mount yields higher effective bandwidth.
	one := c.EffectiveBandwidth(0, 0, 1, 0, []int{10})
	four := c.EffectiveBandwidth(0, 0, 1, 0, []int{10, 11, 12, 13})
	if four <= one {
		t.Errorf("batching should raise effective bandwidth: one=%v four=%v", one, four)
	}
	// The mounted tape avoids the switch cost entirely.
	mounted := c.EffectiveBandwidth(1, 0, 1, 0, []int{10})
	if mounted <= one {
		t.Errorf("mounted tape should beat a switch: mounted=%v switched=%v", mounted, one)
	}
	if got := c.EffectiveBandwidth(0, 0, 1, 0, nil); got != 0 {
		t.Errorf("empty schedule bandwidth = %v, want 0", got)
	}
	// Effective bandwidth can never exceed the streaming rate.
	stream := c.Prof.StreamingRateMBps()
	if four > stream {
		t.Errorf("effective bandwidth %v exceeds streaming rate %v", four, stream)
	}
}

// TestEnableTableSerpentine asserts the cost model refuses a table for the
// serpentine positioner and keeps serving bit-identical costs through the
// interface path.
func TestEnableTableSerpentine(t *testing.T) {
	tabled := &CostModel{Prof: tapemodel.DLT7000Class(), BlockMB: 16}
	if tabled.EnableTable(448) {
		t.Fatal("EnableTable must report false for a serpentine positioner")
	}
	if tabled.Table() != nil {
		t.Fatal("serpentine cost model must have no table")
	}
	plain := &CostModel{Prof: tapemodel.DLT7000Class(), BlockMB: 16}
	for _, pair := range [][2]int{{0, 10}, {10, 0}, {5, 5}, {447, 3}, {3, 447}} {
		gotLoc, gotRead, gotHead := tabled.ServeOneParts(pair[0], pair[1])
		wantLoc, wantRead, wantHead := plain.ServeOneParts(pair[0], pair[1])
		if math.Float64bits(gotLoc) != math.Float64bits(wantLoc) ||
			math.Float64bits(gotRead) != math.Float64bits(wantRead) ||
			gotHead != wantHead {
			t.Errorf("ServeOneParts(%d, %d) = (%v, %v, %d), interface path says (%v, %v, %d)",
				pair[0], pair[1], gotLoc, gotRead, gotHead, wantLoc, wantRead, wantHead)
		}
	}
}

// TestEnableTableBitIdentical asserts that enabling the table on a
// piecewise-linear profile changes no cost bit anywhere on the grid.
func TestEnableTableBitIdentical(t *testing.T) {
	tabled := testCosts()
	if !tabled.EnableTable(448) {
		t.Fatal("EnableTable must succeed on the exact 16 MB grid")
	}
	plain := testCosts()
	for from := 0; from <= 448; from += 7 {
		for to := 0; to <= 448; to += 11 {
			gotSec, gotDir := tabled.Locate(from, to)
			wantSec, wantDir := plain.Locate(from, to)
			if math.Float64bits(gotSec) != math.Float64bits(wantSec) || gotDir != wantDir {
				t.Fatalf("Locate(%d, %d) = (%v, %v), interface path says (%v, %v)",
					from, to, gotSec, gotDir, wantSec, wantDir)
			}
		}
	}
	for _, head := range []int{0, 1, 100, 448} {
		if got, want := tabled.SwitchCost(0, head, 2), plain.SwitchCost(0, head, 2); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("SwitchCost(0, %d, 2) = %v, interface path says %v", head, got, want)
		}
	}
	if got, want := tabled.SwitchCost(-1, 0, 2), plain.SwitchCost(-1, 0, 2); got != want {
		t.Errorf("empty-drive SwitchCost = %v, interface path says %v", got, want)
	}
}
