// Package sched provides the retrieval-scheduling framework of Section 3:
// the request and service-list (sweep) abstractions, schedule cost
// evaluation, and the simple scheduling algorithms (FIFO, five static and
// five dynamic tape-selection policies). The envelope-extension algorithm of
// Section 3.2 builds on this package and lives in internal/core.
package sched

import (
	"tapejuke/internal/layout"
)

// Request is one outstanding block retrieval.
type Request struct {
	ID      int64          // unique, in arrival order
	Block   layout.BlockID // requested logical block
	Arrival float64        // simulation time at which the request arrived

	// Target is the physical copy chosen to satisfy the request; it is set
	// by a scheduler when the request enters a service list.
	Target layout.Replica

	// FaultedAt records the simulation time at which the request first lost
	// a chosen copy to a permanent fault (zero if never). The engine uses it
	// to measure recovery latency when a surviving replica later serves the
	// request.
	FaultedAt float64

	// Deadline, when positive, is the absolute simulation time by which the
	// request must complete; a request still unserved at its deadline is
	// cancelled by the engine (deadline expiry). Zero means no deadline.
	Deadline float64

	// Expired marks a request cancelled by deadline expiry. The engine sets
	// it; schedulers never see expired requests (they are removed from the
	// pending list and any sweep at expiry time).
	Expired bool

	// Done marks a request that has left the system (completed, expired, or
	// unserviceable). The engine's deadline calendar uses it for lazy
	// deletion.
	Done bool

	// Ephemeral marks a closed-model flash-crowd extra: unlike the fixed
	// process population, its completion or expiry does not respawn a
	// replacement request.
	Ephemeral bool

	// OnCalendar marks a request currently held by the engine's deadline
	// calendar. The engine's request free list may only recycle a request
	// once it is both Done and off the calendar.
	OnCalendar bool
}
