package sched

import (
	"testing"

	"tapejuke/internal/layout"
)

func TestUrgency(t *testing.T) {
	st := fixture(t, 0, layout.Horizontal)
	st.Now = 100

	free := &Request{Arrival: 40} // no deadline: urgency is plain age
	if u := st.Urgency(free); u != 60 {
		t.Errorf("deadline-free urgency = %v, want 60", u)
	}

	future := &Request{Arrival: 200} // not yet arrived: clamps to zero
	if u := st.Urgency(future); u != 0 {
		t.Errorf("future request urgency = %v, want 0", u)
	}

	// A young request one second from its deadline out-urges a much older
	// deadline-free one: age 10 scaled by TTL/slack = 10 * 11/1.
	tight := &Request{Arrival: 90, Deadline: 101}
	if u := st.Urgency(tight); u <= st.Urgency(free) {
		t.Errorf("near-deadline urgency %v not above deadline-free %v", u, st.Urgency(free))
	}

	// Loose slack discounts below plain age: age 60 * TTL 160 / slack 100.
	loose := &Request{Arrival: 40, Deadline: 200}
	if u := st.Urgency(loose); u <= 60 {
		t.Errorf("deadlined urgency %v should exceed plain age once past half its TTL", u)
	}

	// At or past the deadline the urgency is finite but enormous.
	past := &Request{Arrival: 40, Deadline: 100}
	if u := st.Urgency(past); u <= st.Urgency(tight) {
		t.Errorf("past-deadline urgency %v not above near-deadline %v", u, st.Urgency(tight))
	}
}

// TestSelectTapeZeroWeightIdentical pins the inertness bit: AgeWeight zero
// must leave every policy's choice untouched on the same state.
func TestSelectTapeZeroWeightIdentical(t *testing.T) {
	policies := []Policy{RoundRobin, MaxRequests, MaxBandwidth, OldestMaxRequests, OldestMaxBandwidth}
	for _, p := range policies {
		st := fixture(t, 0, layout.Horizontal)
		st.Now = 1000
		addReq(st, 1, coldOn(t, st, 1), 0)
		addReq(st, 2, coldOn(t, st, 2), 10)
		addReq(st, 3, coldOn(t, st, 2), 20)
		base, ok := SelectTape(st, p)
		if !ok {
			t.Fatalf("%v: no selection", p)
		}
		st.AgeWeight = 0
		again, ok := SelectTape(st, p)
		if !ok || again != base {
			t.Errorf("%v: explicit zero weight changed the choice: %d vs %d", p, again, base)
		}
	}
}

// TestSelectTapeAgingPullsToUrgent: with a dominant weight, count- and
// bandwidth-maximizing policies abandon the popular tape for the one
// holding the near-deadline request.
func TestSelectTapeAgingPullsToUrgent(t *testing.T) {
	for _, p := range []Policy{MaxRequests, MaxBandwidth} {
		st := fixture(t, 0, layout.Horizontal)
		st.Now = 1000
		// Three requests make tape 2 the plain winner...
		addReq(st, 1, coldOn(t, st, 2), 990)
		addReq(st, 2, coldOn(t, st, 2), 990)
		addReq(st, 3, coldOn(t, st, 2), 990)
		// ...but the lone request on tape 1 is seconds from its deadline.
		urgent := addReq(st, 4, coldOn(t, st, 1), 900)
		urgent.Deadline = 1001

		if tape, ok := SelectTape(st, p); !ok || tape != 2 {
			t.Fatalf("%v: unaged choice = %d, want the popular tape 2", p, tape)
		}
		st.AgeWeight = 50
		if tape, ok := SelectTape(st, p); !ok || tape != 1 {
			t.Errorf("%v: aged choice = %d, want the urgent tape 1", p, tape)
		}
	}
}

// TestRoundRobinAgingSkipsAhead: aged round-robin skips tapes whose
// requests are all far from their deadlines.
func TestRoundRobinAgingSkipsAhead(t *testing.T) {
	st := fixture(t, 0, layout.Horizontal)
	st.Now = 1000
	addReq(st, 1, coldOn(t, st, 1), 990)
	urgent := addReq(st, 2, coldOn(t, st, 3), 900)
	urgent.Deadline = 1001

	if tape, ok := SelectTape(st, RoundRobin); !ok || tape != 1 {
		t.Fatalf("unaged round-robin chose %d, want the first tape in order (1)", tape)
	}
	st.AgeWeight = 50
	if tape, ok := SelectTape(st, RoundRobin); !ok || tape != 3 {
		t.Errorf("aged round-robin chose %d, want the urgent tape 3", tape)
	}
}

// TestOldestPoliciesKeepGuarantee: the oldest-request restriction survives
// aging -- when the aged set misses every tape serving the oldest request,
// the policy falls back to the oldest set rather than starving it.
func TestOldestPoliciesKeepGuarantee(t *testing.T) {
	for _, p := range []Policy{OldestMaxRequests, OldestMaxBandwidth} {
		st := fixture(t, 0, layout.Horizontal)
		st.Now = 1000
		// The oldest request sits alone on tape 3, deadline-free.
		addReq(st, 1, coldOn(t, st, 3), 0)
		// A younger near-deadline request on tape 1 dominates the urgency.
		urgent := addReq(st, 2, coldOn(t, st, 1), 999)
		urgent.Deadline = 1000.5

		st.AgeWeight = 1000
		tape, ok := SelectTape(st, p)
		if !ok || tape != 3 {
			t.Errorf("%v: aged choice = %d, want 3 (oldest-request guarantee)", p, tape)
		}
	}
}

func TestSweepRemove(t *testing.T) {
	mk := func() (*Sweep, []*Request) {
		reqs := []*Request{
			{ID: 1, Target: layout.Replica{Tape: 0, Pos: 2}},
			{ID: 2, Target: layout.Replica{Tape: 0, Pos: 8}},
			{ID: 3, Target: layout.Replica{Tape: 0, Pos: 5}},
			{ID: 4, Target: layout.Replica{Tape: 0, Pos: 3}},
		}
		return NewSweep(reqs, 4), reqs
	}

	s, reqs := mk()
	if !s.Remove(reqs[1]) { // forward-phase member (pos 8 >= head 4)
		t.Fatal("failed to remove a forward-phase request")
	}
	if s.Remove(reqs[1]) {
		t.Error("second removal of the same request succeeded")
	}
	var order []int64
	for s.Len() > 0 {
		order = append(order, s.Pop().ID)
	}
	want := []int64{3, 4, 1} // forward 5, then reverse 3, 2
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("post-removal order %v, want %v", order, want)
		}
	}

	s, reqs = mk()
	if !s.Remove(reqs[0]) { // reverse-phase member (pos 2 < head 4)
		t.Fatal("failed to remove a reverse-phase request")
	}
	order = order[:0]
	for s.Len() > 0 {
		order = append(order, s.Pop().ID)
	}
	want = []int64{3, 2, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("post-removal order %v, want %v", order, want)
		}
	}

	if s.Remove(&Request{ID: 99}) {
		t.Error("removing a foreign request succeeded")
	}
}
