package sched

// Static is a static scheduling algorithm (Section 3.1): at tape switch
// time it chooses a tape with the configured policy and forms the service
// list from every pending request that tape can satisfy. Newly arriving
// requests are always deferred to the pending list, even when they are for
// a block on the current tape.
type Static struct {
	policy Policy
}

// NewStatic returns the static algorithm with the given tape-selection
// policy.
func NewStatic(p Policy) *Static { return &Static{policy: p} }

// Name returns e.g. "static-max-bandwidth".
func (s *Static) Name() string { return "static-" + s.policy.String() }

// Policy returns the tape-selection policy.
func (s *Static) Policy() Policy { return s.policy }

// Reschedule chooses a tape by policy and extracts all pending requests
// satisfiable by that tape, sorted into a single sweep from the post-switch
// head position.
func (s *Static) Reschedule(st *State) (int, *Sweep, bool) {
	tape, ok := SelectTape(st, s.policy)
	if !ok {
		return 0, nil, false
	}
	return extractTape(st, tape)
}

// OnArrival always defers.
func (*Static) OnArrival(*State, *Request) bool { return false }

// extractTape removes every pending request with a readable copy on `tape`
// from the pending list, targets them at that copy, and builds the sweep.
func extractTape(st *State, tape int) (int, *Sweep, bool) {
	reqs := st.SatisfiableBy(tape)
	if len(reqs) == 0 {
		return 0, nil, false
	}
	for _, r := range reqs {
		c, _ := st.UsableOn(r.Block, tape)
		r.Target = c
	}
	st.RemovePending(reqs)
	return tape, st.NewSweep(reqs, st.StartHead(tape)), true
}
