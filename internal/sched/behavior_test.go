package sched

import (
	"math/rand"
	"testing"

	"tapejuke/internal/layout"
	"tapejuke/internal/tapemodel"
)

// Static and dynamic algorithms share the same major rescheduler: with an
// identical pending list they must pick the same tape and extract the same
// requests. They differ only mid-sweep.
func TestStaticDynamicRescheduleAgree(t *testing.T) {
	for _, p := range []Policy{RoundRobin, MaxRequests, MaxBandwidth, OldestMaxRequests, OldestMaxBandwidth} {
		build := func() *State {
			st := fixture(t, 0, layout.Horizontal)
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 12; i++ {
				addReq(st, int64(i), layout.BlockID(rng.Intn(st.Layout.NumBlocks())), float64(i))
			}
			return st
		}
		st1, st2 := build(), build()
		t1, s1, ok1 := NewStatic(p).Reschedule(st1)
		t2, s2, ok2 := NewDynamic(p).Reschedule(st2)
		if ok1 != ok2 || t1 != t2 {
			t.Fatalf("%v: static chose (%d,%v), dynamic (%d,%v)", p, t1, ok1, t2, ok2)
		}
		if s1.Len() != s2.Len() {
			t.Fatalf("%v: sweep lengths differ: %d vs %d", p, s1.Len(), s2.Len())
		}
		for !s1.Empty() {
			a, b := s1.Pop(), s2.Pop()
			if a.ID != b.ID || a.Target != b.Target {
				t.Fatalf("%v: sweeps diverge at %v vs %v", p, a, b)
			}
		}
	}
}

// CountByTape counts a replicated request once per tape holding a copy.
func TestCountByTapeWithReplication(t *testing.T) {
	st := fixture(t, 3, layout.Horizontal) // 4 tapes, hot blocks on all 4
	addReq(st, 1, 0, 0)                    // hot, fully replicated
	addReq(st, 2, coldOn(t, st, 2), 1)     // cold, single copy
	counts := st.CountByTape()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 4+1 {
		t.Errorf("total count = %d, want 5 (4 copies + 1 cold)", total)
	}
	if counts[2] != 2 {
		t.Errorf("tape 2 count = %d, want 2", counts[2])
	}
}

func TestJukeboxOrderAndStartHead(t *testing.T) {
	st := fixture(t, 0, layout.Horizontal)
	st.Mounted, st.Head = 2, 7

	var order []int
	st.JukeboxOrder(func(tp int) bool {
		order = append(order, tp)
		return true
	})
	want := []int{2, 3, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("jukebox order = %v, want %v", order, want)
		}
	}
	// Early termination.
	order = order[:0]
	st.JukeboxOrder(func(tp int) bool {
		order = append(order, tp)
		return len(order) < 2
	})
	if len(order) != 2 {
		t.Errorf("early stop visited %d tapes", len(order))
	}

	if st.StartHead(2) != 7 {
		t.Errorf("StartHead(mounted) = %d, want 7", st.StartHead(2))
	}
	if st.StartHead(1) != 0 {
		t.Errorf("StartHead(other) = %d, want 0", st.StartHead(1))
	}

	// Empty drive starts the order at tape 0.
	st.Mounted = -1
	order = order[:0]
	st.JukeboxOrder(func(tp int) bool {
		order = append(order, tp)
		return false
	})
	if order[0] != 0 {
		t.Errorf("empty-drive order starts at %d, want 0", order[0])
	}
}

// A full sweep's execution cost, computed operation by operation against
// hand-derived values from the published model.
func TestSweepExecutionGolden(t *testing.T) {
	c := &CostModel{Prof: tapemodel.EXB8505XL(), BlockMB: 16}
	// Head at block 5; serve blocks 10, 12 (forward) then 3 (reverse).
	// locate 5->10: 80 MB long:  14.342 + 0.028*80  = 16.582
	// read fwd 16 MB:            0.38 + 1.77*16     = 28.70
	// locate 11->12: 16 MB short: 4.834 + 0.378*16  = 10.882
	// read fwd:                                      28.70
	// locate 13->3: 160 MB rev:  13.74 + 0.0286*160 = 18.316
	// read rev 16 MB:            1.77*16            = 28.32
	want := 16.582 + 28.7 + 10.882 + 28.7 + 18.316 + 28.32
	got, final := c.ExecTime(5, []int{10, 12, 3})
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("ExecTime = %.6f, want %.6f", got, want)
	}
	if final != 4 {
		t.Errorf("final head = %d, want 4", final)
	}
}

// Max-bandwidth must weigh positions, not just counts: with equal request
// counts, the tape whose blocks sit near the beginning (short locates)
// wins over the tape whose blocks sit near the end.
func TestMaxBandwidthPrefersCloserData(t *testing.T) {
	l, err := layout.NewManual(2, 448, 0, [][]layout.Replica{
		{{Tape: 0, Pos: 2}},
		{{Tape: 0, Pos: 5}},
		{{Tape: 1, Pos: 440}},
		{{Tape: 1, Pos: 445}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(l, &CostModel{Prof: tapemodel.EXB8505XL(), BlockMB: 16})
	for i := 0; i < 4; i++ {
		st.Pending = append(st.Pending, &Request{ID: int64(i), Block: layout.BlockID(i)})
	}
	tape, ok := SelectTape(st, MaxBandwidth)
	if !ok || tape != 0 {
		t.Errorf("max-bandwidth chose tape %d, want 0 (near data)", tape)
	}
	// Max-requests is blind to position and ties to jukebox order, which
	// also lands on tape 0 here -- so flip the counts to separate them:
	// tape 1 has more requests but far data.
	st.Pending = append(st.Pending, &Request{ID: 5, Block: 2})
	if tape, _ := SelectTape(st, MaxRequests); tape != 1 {
		t.Errorf("max-requests chose tape %d, want 1 (count 3)", tape)
	}
	if tape, _ := SelectTape(st, MaxBandwidth); tape != 0 {
		t.Errorf("max-bandwidth chose tape %d, want 0 despite fewer requests", tape)
	}
}

func TestBusyTapeExclusion(t *testing.T) {
	st := fixture(t, 0, layout.Horizontal)
	addReq(st, 1, coldOn(t, st, 1), 0)
	addReq(st, 2, coldOn(t, st, 2), 1)
	st.Busy = make([]bool, 4)
	st.Busy[1] = true

	for _, p := range []Policy{RoundRobin, MaxRequests, MaxBandwidth} {
		tape, ok := SelectTape(st, p)
		if !ok || tape != 2 {
			t.Errorf("%v: chose tape %d (ok=%v), want 2 (tape 1 busy)", p, tape, ok)
		}
	}
	// FIFO skips a busy tape too: oldest request is on busy tape 1, so it
	// cannot be served; FIFO reports failure rather than violating the
	// exclusion (the engine retries later).
	f := NewFIFO()
	if tape, _, ok := f.Reschedule(st); ok && tape == 1 {
		t.Error("FIFO selected the busy tape")
	}

	// All candidate tapes busy: selection fails.
	st.Busy[2] = true
	if _, ok := SelectTape(st, MaxRequests); ok {
		t.Error("selection succeeded with every candidate busy")
	}
}
