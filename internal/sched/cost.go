package sched

import (
	"tapejuke/internal/tapemodel"
)

// CostModel evaluates the execution time of candidate schedules on one tape
// using the drive timing model. Head positions and block positions are in
// block units; a head at position h sits at byte offset h*BlockMB megabytes.
//
// The model normally crosses the tapemodel.Positioner interface for every
// evaluation. EnableTable precomputes a dense per-distance cost table for
// piecewise-linear profiles, after which on-grid evaluations are slice
// loads with bit-identical results; off-grid positions and non-tabulable
// positioners (the serpentine model) keep the interface path.
type CostModel struct {
	Prof    tapemodel.Positioner
	BlockMB float64

	tab *tapemodel.CostTable // nil until EnableTable, or when not tabulable
}

// EnableTable precomputes the dense cost table covering block positions
// 0..maxBlocks and reports whether the profile was tabulable (exact block
// grid, piecewise-linear profile). On false the model keeps the interface
// path everywhere; either way results are bit-identical.
func (c *CostModel) EnableTable(maxBlocks int) bool {
	c.tab = tapemodel.NewCostTable(c.Prof, c.BlockMB, maxBlocks)
	return c.tab != nil
}

// Table returns the enabled cost table, or nil. Exposed for tests.
func (c *CostModel) Table() *tapemodel.CostTable { return c.tab }

// PosMB converts a block-unit position to a megabyte offset.
func (c *CostModel) PosMB(pos int) float64 { return float64(pos) * c.BlockMB }

// Locate returns the time and direction of repositioning the head between
// two block boundaries (Profile.Locate on the megabyte offsets).
func (c *CostModel) Locate(from, to int) (float64, tapemodel.Direction) {
	if t := c.tab; t != nil && t.Covers(from) && t.Covers(to) {
		return t.Locate(from, to)
	}
	return c.Prof.Locate(c.PosMB(from), c.PosMB(to))
}

// ServeOne returns the time to serve a single block at position pos with the
// head currently at block-boundary head, and the resulting head position
// (pos+1). It charges the locate (with direction-dependent cost and the
// beginning-of-tape overhead when the target is position 0) plus the
// direction-dependent read of one block.
func (c *CostModel) ServeOne(head, pos int) (seconds float64, newHead int) {
	loc, rd, h := c.ServeOneParts(head, pos)
	return loc + rd, h
}

// ServeOneParts is ServeOne with the locate and read components reported
// separately, for time-decomposition accounting.
func (c *CostModel) ServeOneParts(head, pos int) (locate, read float64, newHead int) {
	if t := c.tab; t != nil && t.Covers(head) && t.Covers(pos) {
		loc, dir := t.Locate(head, pos)
		return loc, t.ReadBlock(dir), pos + 1
	}
	loc, dir := c.Prof.Locate(c.PosMB(head), c.PosMB(pos))
	rd := c.Prof.Read(c.BlockMB, dir)
	return loc, rd, pos + 1
}

// ExecTime returns the total time to execute the ordered service list
// `positions` starting with the head at block-boundary head, and the final
// head position. The list is executed in order, whatever that order is: the
// sweep-building schedulers pass forward-then-reverse orders, FIFO passes
// arrival order.
func (c *CostModel) ExecTime(head int, positions []int) (seconds float64, finalHead int) {
	total := 0.0
	for _, pos := range positions {
		t, h := c.ServeOne(head, pos)
		total += t
		head = h
	}
	return total, head
}

// SwitchCost returns the cost of making `tape` the mounted tape when
// `mounted` (with its head at block-boundary head) is currently loaded.
// Selecting the mounted tape is free. Loading into an empty drive costs the
// robotic motion and load only; replacing a tape adds the rewind of the old
// tape and its ejection.
func (c *CostModel) SwitchCost(mounted, head, tape int) float64 {
	if tape == mounted {
		return 0
	}
	if t := c.tab; t != nil {
		if mounted < 0 {
			return t.InitialLoad()
		}
		if t.Covers(head) {
			return t.FullSwitch(head)
		}
	}
	if mounted < 0 {
		return c.Prof.InitialLoad()
	}
	return c.Prof.FullSwitch(c.PosMB(head))
}

// SwitchTime returns the mechanical tape-switch time (eject + robot +
// load), excluding the head-position-dependent rewind.
func (c *CostModel) SwitchTime() float64 {
	if t := c.tab; t != nil {
		return t.SwitchTime()
	}
	return c.Prof.SwitchTime()
}

// EffectiveBandwidth returns the effective bandwidth (megabytes per second)
// of retrieving the given service list from `tape`: bytes retrieved divided
// by tape-switch overhead plus schedule execution time (Section 3.1). The
// service list must already be in execution order; startHead is the head
// position the schedule executes from (the current head for the mounted
// tape, 0 after a switch).
func (c *CostModel) EffectiveBandwidth(mounted, head, tape, startHead int, positions []int) float64 {
	if len(positions) == 0 {
		return 0
	}
	sw := c.SwitchCost(mounted, head, tape)
	exec, _ := c.ExecTime(startHead, positions)
	total := sw + exec
	if total <= 0 {
		return 0
	}
	return float64(len(positions)) * c.BlockMB / total
}
