package sched

// Dynamic is a dynamic scheduling algorithm (Section 3.1): the major
// rescheduler is identical to the static algorithm with the same policy,
// but requests that arrive during the execution of a service list are
// inserted into the in-flight sweep on the fly, provided the requested
// block is on the current tape at a position still ahead of the head.
type Dynamic struct {
	policy Policy
}

// NewDynamic returns the dynamic algorithm with the given tape-selection
// policy.
func NewDynamic(p Policy) *Dynamic { return &Dynamic{policy: p} }

// Name returns e.g. "dynamic-max-bandwidth".
func (d *Dynamic) Name() string { return "dynamic-" + d.policy.String() }

// Policy returns the tape-selection policy.
func (d *Dynamic) Policy() Policy { return d.policy }

// Reschedule behaves exactly like the static algorithm's major rescheduler.
func (d *Dynamic) Reschedule(st *State) (int, *Sweep, bool) {
	tape, ok := SelectTape(st, d.policy)
	if !ok {
		return 0, nil, false
	}
	return extractTape(st, tape)
}

// OnArrival inserts the request into the current sweep when its block has a
// copy on the mounted tape whose position the head has not yet passed.
func (d *Dynamic) OnArrival(st *State, r *Request) bool {
	return insertOnMounted(st, r)
}

// insertOnMounted implements the dynamic incremental scheduler shared by
// the dynamic algorithms and (within the envelope) the envelope algorithms.
func insertOnMounted(st *State, r *Request) bool {
	if st.Active == nil || st.Mounted < 0 || !st.Up(st.Mounted) {
		return false
	}
	c, ok := st.Layout.ReplicaOn(r.Block, st.Mounted)
	if !ok || !st.CopyOK(c) {
		return false
	}
	r.Target = c
	return st.Active.Insert(r, st.Head)
}
