package sched

import (
	"math"

	"tapejuke/internal/tapemodel"
)

// ReorderRAO replaces the sweep's two-phase elevator order with a greedy
// nearest-first schedule in the spirit of the LTO "Recommended Access
// Order" drive feature: starting from the head position the sweep executes
// from, it repeatedly serves the request whose copy has the lowest locate
// time from the current head.
//
// The paper's sweeps assume helical-scan geometry, where physical distance
// is monotone in logical distance and a single elevator pass is optimal
// per direction. On serpentine geometry logically distant blocks can be
// physically adjacent (same lengthwise position on a neighboring track),
// so the elevator order can zig-zag the physical head; asking the drive
// for its recommended order is how modern serpentine deployments schedule
// batches. Greedy nearest-first is the standard host-side approximation.
//
// Ties on locate time keep the earlier request in elevator order, so the
// result is deterministic. The reordered sweep is frozen, as if the batch
// had been handed to the drive: incremental insertion is declined (Insert
// returns false) and mid-sweep arrivals wait in the pending list for the
// next reschedule.
func (s *Sweep) ReorderRAO(p tapemodel.Positioner, blockMB float64, head int) {
	n := s.Len()
	if n == 0 {
		return
	}
	pool := append(s.tmp[:0], s.Forward...)
	pool = append(pool, s.Reverse...)
	s.tmp = pool
	ord := s.ord0[:0]
	cur := float64(head) * blockMB
	for len(pool) > 0 {
		best, bestSec := 0, math.Inf(1)
		for i, r := range pool {
			sec, _ := p.Locate(cur, float64(r.Target.Pos)*blockMB)
			if sec < bestSec {
				best, bestSec = i, sec
			}
		}
		r := pool[best]
		copy(pool[best:], pool[best+1:])
		pool[len(pool)-1] = nil
		pool = pool[:len(pool)-1]
		ord = append(ord, r)
		cur = float64(r.Target.Pos+1) * blockMB // head rests after the read block
	}
	s.tmp = s.tmp[:0]
	s.ord0, s.ord = ord, ord
	s.Forward, s.Reverse = nil, nil
}
