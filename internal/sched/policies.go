package sched

import "sort"

// Policy is a tape-selection rule used by the static and dynamic algorithms
// (Section 3.1) and by the envelope-extension algorithm's final tape choice
// (Section 3.2).
type Policy int

const (
	// RoundRobin selects the next tape in jukebox order after the mounted
	// tape that has a pending request.
	RoundRobin Policy = iota
	// MaxRequests selects a tape with the maximal number of satisfiable
	// pending requests, ties broken by jukebox order from the mounted tape.
	MaxRequests
	// MaxBandwidth selects the tape whose candidate schedule has the
	// highest effective bandwidth (bytes retrieved / (switch + execution
	// time)), ties broken by jukebox order.
	MaxBandwidth
	// OldestMaxRequests restricts the choice to tapes that can satisfy the
	// oldest pending request, then applies MaxRequests.
	OldestMaxRequests
	// OldestMaxBandwidth restricts the choice to tapes that can satisfy the
	// oldest pending request, then applies MaxBandwidth.
	OldestMaxBandwidth
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case MaxRequests:
		return "max-requests"
	case MaxBandwidth:
		return "max-bandwidth"
	case OldestMaxRequests:
		return "oldest-max-requests"
	case OldestMaxBandwidth:
		return "oldest-max-bandwidth"
	}
	return "unknown"
}

// SelectTape applies the policy to the current pending list and returns the
// chosen tape. ok is false when the pending list is empty.
func SelectTape(st *State, p Policy) (tape int, ok bool) {
	if len(st.Pending) == 0 {
		return 0, false
	}
	if st.AgeWeight > 0 {
		return selectTapeAged(st, p)
	}
	switch p {
	case RoundRobin:
		return selectRoundRobin(st)
	case MaxRequests:
		return selectByCount(st, allTapes(st))
	case MaxBandwidth:
		return selectByBandwidth(st, allTapes(st))
	case OldestMaxRequests:
		return selectByCount(st, oldestTapes(st))
	case OldestMaxBandwidth:
		return selectByBandwidth(st, oldestTapes(st))
	}
	return 0, false
}

// selectTapeAged applies the policy with its tape choice restricted to the
// aged candidate set: tapes holding a readable copy of a request whose
// urgency is within AgeWeight/(1+AgeWeight) of the pending maximum. The
// oldest-request policies intersect their oldest-set with the aged set and
// fall back to the plain oldest-set when the intersection is empty, so their
// starvation guarantee is never weakened by aging.
func selectTapeAged(st *State, p Policy) (int, bool) {
	aged := agedTapes(st)
	switch p {
	case RoundRobin:
		return selectRoundRobinAmong(st, aged)
	case MaxRequests:
		return selectByCount(st, aged)
	case MaxBandwidth:
		return selectByBandwidth(st, aged)
	case OldestMaxRequests:
		return selectByCount(st, intersectOldest(st, aged))
	case OldestMaxBandwidth:
		return selectByBandwidth(st, intersectOldest(st, aged))
	}
	return 0, false
}

// agedTapes lists the tapes holding a readable copy of at least one request
// in the urgency window [cut, max], where cut = max * AgeWeight/(1+AgeWeight).
// Weight zero admits every tape with a request (plain policy); the limit of
// large weights admits only tapes serving the most urgent request.
func agedTapes(st *State) []int {
	maxU := 0.0
	for _, r := range st.Pending {
		if u := st.Urgency(r); u > maxU {
			maxU = u
		}
	}
	cut := maxU * st.AgeWeight / (1 + st.AgeWeight)
	mark := make([]bool, st.Layout.Tapes())
	for _, r := range st.Pending {
		if st.Urgency(r) < cut {
			continue
		}
		for _, c := range st.Layout.Replicas(r.Block) {
			if st.CopyOK(c) {
				mark[c.Tape] = true
			}
		}
	}
	out := make([]int, 0, len(mark))
	for t, m := range mark {
		if m {
			out = append(out, t)
		}
	}
	return out
}

// intersectOldest intersects the aged candidate set with the tapes able to
// serve the oldest pending request, falling back to the latter when the
// intersection is empty (a young near-deadline request can out-urge the
// oldest one; the oldest-request policies still serve the oldest).
func intersectOldest(st *State, aged []int) []int {
	old := oldestTapes(st)
	inAged := make(map[int]bool, len(aged))
	for _, t := range aged {
		inAged[t] = true
	}
	var out []int
	for _, t := range old {
		if inAged[t] {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return old
	}
	return out
}

// selectRoundRobinAmong picks the first candidate tape in jukebox order
// after the mounted tape, the aged analogue of selectRoundRobin.
func selectRoundRobinAmong(st *State, candidates []int) (int, bool) {
	inCand := make(map[int]bool, len(candidates))
	for _, t := range candidates {
		inCand[t] = true
	}
	n := st.Layout.Tapes()
	start := 0
	if st.Mounted >= 0 {
		start = st.Mounted + 1
	}
	for i := 0; i < n; i++ {
		t := (start + i) % n
		if inCand[t] && st.Available(t) {
			return t, true
		}
	}
	return 0, false
}

func allTapes(st *State) []int {
	out := make([]int, st.Layout.Tapes())
	for i := range out {
		out[i] = i
	}
	return out
}

// oldestTapes lists the tapes holding a readable copy of the oldest
// pending request.
func oldestTapes(st *State) []int {
	var out []int
	for _, c := range st.Layout.Replicas(st.Pending[0].Block) {
		if st.CopyOK(c) {
			out = append(out, c.Tape)
		}
	}
	return out
}

func selectRoundRobin(st *State) (int, bool) {
	counts := st.CountByTape()
	n := st.Layout.Tapes()
	start := 0
	if st.Mounted >= 0 {
		start = st.Mounted + 1 // "after the currently mounted tape"
	}
	for i := 0; i < n; i++ {
		t := (start + i) % n
		if counts[t] > 0 && st.Available(t) {
			return t, true
		}
	}
	return 0, false
}

// selectByCount picks the candidate tape with the most satisfiable pending
// requests; ties go to the first tape in jukebox order starting at the
// mounted tape.
func selectByCount(st *State, candidates []int) (int, bool) {
	counts := st.CountByTape()
	best, bestCount := -1, 0
	inCand := make(map[int]bool, len(candidates))
	for _, t := range candidates {
		inCand[t] = true
	}
	st.JukeboxOrder(func(t int) bool {
		if inCand[t] && st.Available(t) && counts[t] > bestCount {
			best, bestCount = t, counts[t]
		}
		return true
	})
	if best < 0 {
		return 0, false
	}
	return best, true
}

// selectByBandwidth picks the candidate tape whose full candidate schedule
// yields the highest effective bandwidth; ties go to jukebox order.
func selectByBandwidth(st *State, candidates []int) (int, bool) {
	inCand := make(map[int]bool, len(candidates))
	for _, t := range candidates {
		inCand[t] = true
	}
	best, bestBW := -1, -1.0
	st.JukeboxOrder(func(t int) bool {
		if !inCand[t] || !st.Available(t) {
			return true
		}
		positions := candidatePositions(st, t)
		if len(positions) == 0 {
			return true
		}
		startHead := st.StartHead(t)
		order := sweepOrder(positions, startHead)
		bw := st.Costs.EffectiveBandwidth(st.Mounted, st.Head, t, startHead, order)
		if bw > bestBW {
			best, bestBW = t, bw
		}
		return true
	})
	if best < 0 {
		return 0, false
	}
	return best, true
}

// candidatePositions lists the readable replica positions on `tape` of the
// pending requests that tape can satisfy.
func candidatePositions(st *State, tape int) []int {
	var out []int
	for _, r := range st.Pending {
		// UsableOn flattened so both lookups inline on this hot path.
		if c, ok := st.Layout.ReplicaOn(r.Block, tape); ok && st.CopyOK(c) {
			out = append(out, c.Pos)
		}
	}
	return out
}

// sweepOrder arranges positions into single-sweep execution order from the
// given head: ascending positions >= head, then descending positions < head.
func sweepOrder(positions []int, head int) []int {
	fwd := make([]int, 0, len(positions))
	var rev []int
	for _, p := range positions {
		if p >= head {
			fwd = append(fwd, p)
		} else {
			rev = append(rev, p)
		}
	}
	sort.Ints(fwd)
	sort.Sort(sort.Reverse(sort.IntSlice(rev)))
	return append(fwd, rev...)
}
