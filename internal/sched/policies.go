package sched

import "sort"

// Policy is a tape-selection rule used by the static and dynamic algorithms
// (Section 3.1) and by the envelope-extension algorithm's final tape choice
// (Section 3.2).
type Policy int

const (
	// RoundRobin selects the next tape in jukebox order after the mounted
	// tape that has a pending request.
	RoundRobin Policy = iota
	// MaxRequests selects a tape with the maximal number of satisfiable
	// pending requests, ties broken by jukebox order from the mounted tape.
	MaxRequests
	// MaxBandwidth selects the tape whose candidate schedule has the
	// highest effective bandwidth (bytes retrieved / (switch + execution
	// time)), ties broken by jukebox order.
	MaxBandwidth
	// OldestMaxRequests restricts the choice to tapes that can satisfy the
	// oldest pending request, then applies MaxRequests.
	OldestMaxRequests
	// OldestMaxBandwidth restricts the choice to tapes that can satisfy the
	// oldest pending request, then applies MaxBandwidth.
	OldestMaxBandwidth
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case MaxRequests:
		return "max-requests"
	case MaxBandwidth:
		return "max-bandwidth"
	case OldestMaxRequests:
		return "oldest-max-requests"
	case OldestMaxBandwidth:
		return "oldest-max-bandwidth"
	}
	return "unknown"
}

// SelectTape applies the policy to the current pending list and returns the
// chosen tape. ok is false when the pending list is empty.
func SelectTape(st *State, p Policy) (tape int, ok bool) {
	if len(st.Pending) == 0 {
		return 0, false
	}
	switch p {
	case RoundRobin:
		return selectRoundRobin(st)
	case MaxRequests:
		return selectByCount(st, allTapes(st))
	case MaxBandwidth:
		return selectByBandwidth(st, allTapes(st))
	case OldestMaxRequests:
		return selectByCount(st, oldestTapes(st))
	case OldestMaxBandwidth:
		return selectByBandwidth(st, oldestTapes(st))
	}
	return 0, false
}

func allTapes(st *State) []int {
	out := make([]int, st.Layout.Tapes())
	for i := range out {
		out[i] = i
	}
	return out
}

// oldestTapes lists the tapes holding a readable copy of the oldest
// pending request.
func oldestTapes(st *State) []int {
	var out []int
	for _, c := range st.Layout.Replicas(st.Pending[0].Block) {
		if st.CopyOK(c) {
			out = append(out, c.Tape)
		}
	}
	return out
}

func selectRoundRobin(st *State) (int, bool) {
	counts := st.CountByTape()
	n := st.Layout.Tapes()
	start := 0
	if st.Mounted >= 0 {
		start = st.Mounted + 1 // "after the currently mounted tape"
	}
	for i := 0; i < n; i++ {
		t := (start + i) % n
		if counts[t] > 0 && st.Available(t) {
			return t, true
		}
	}
	return 0, false
}

// selectByCount picks the candidate tape with the most satisfiable pending
// requests; ties go to the first tape in jukebox order starting at the
// mounted tape.
func selectByCount(st *State, candidates []int) (int, bool) {
	counts := st.CountByTape()
	best, bestCount := -1, 0
	inCand := make(map[int]bool, len(candidates))
	for _, t := range candidates {
		inCand[t] = true
	}
	st.JukeboxOrder(func(t int) bool {
		if inCand[t] && st.Available(t) && counts[t] > bestCount {
			best, bestCount = t, counts[t]
		}
		return true
	})
	if best < 0 {
		return 0, false
	}
	return best, true
}

// selectByBandwidth picks the candidate tape whose full candidate schedule
// yields the highest effective bandwidth; ties go to jukebox order.
func selectByBandwidth(st *State, candidates []int) (int, bool) {
	inCand := make(map[int]bool, len(candidates))
	for _, t := range candidates {
		inCand[t] = true
	}
	best, bestBW := -1, -1.0
	st.JukeboxOrder(func(t int) bool {
		if !inCand[t] || !st.Available(t) {
			return true
		}
		positions := candidatePositions(st, t)
		if len(positions) == 0 {
			return true
		}
		startHead := st.StartHead(t)
		order := sweepOrder(positions, startHead)
		bw := st.Costs.EffectiveBandwidth(st.Mounted, st.Head, t, startHead, order)
		if bw > bestBW {
			best, bestBW = t, bw
		}
		return true
	})
	if best < 0 {
		return 0, false
	}
	return best, true
}

// candidatePositions lists the readable replica positions on `tape` of the
// pending requests that tape can satisfy.
func candidatePositions(st *State, tape int) []int {
	var out []int
	for _, r := range st.Pending {
		// UsableOn flattened so both lookups inline on this hot path.
		if c, ok := st.Layout.ReplicaOn(r.Block, tape); ok && st.CopyOK(c) {
			out = append(out, c.Pos)
		}
	}
	return out
}

// sweepOrder arranges positions into single-sweep execution order from the
// given head: ascending positions >= head, then descending positions < head.
func sweepOrder(positions []int, head int) []int {
	fwd := make([]int, 0, len(positions))
	var rev []int
	for _, p := range positions {
		if p >= head {
			fwd = append(fwd, p)
		} else {
			rev = append(rev, p)
		}
	}
	sort.Ints(fwd)
	sort.Sort(sort.Reverse(sort.IntSlice(rev)))
	return append(fwd, rev...)
}
