package sched

import (
	"slices"
	"sort"
)

// Sweep is a service list that executes in a single pass over the tape: a
// forward phase (ascending positions, forward locates only) followed by a
// reverse phase (descending positions, reverse locates only). Section 2.2.
//
// FIFO schedules are represented as degenerate sweeps holding one request.
//
// A sweep can alternatively carry an explicit execution order (set by
// ReorderRAO) that overrides the two-phase elevator order; see that method
// for the semantics.
type Sweep struct {
	Forward []*Request // ascending Target.Pos
	Reverse []*Request // descending Target.Pos

	// fwd0/rev0 remember the phase slices' backing arrays from their start
	// (Pop advances Forward/Reverse by re-slicing), so a drained sweep
	// returned to the Shared pool can rebuild in place without reallocating.
	fwd0, rev0 []*Request

	// ord, when it has remaining entries, is an explicit execution order
	// replacing the two phases (which are then empty). ord0 remembers its
	// backing array for pooling, like fwd0/rev0.
	ord, ord0 []*Request

	// sortByPos scratch.
	keys []uint64
	tmp  []*Request
}

// NewSweep builds a sweep over the given requests (whose Targets must
// already be set and lie on one tape), starting from head position `head`:
// requests at or above the head form the forward phase in ascending order;
// requests below the head form the reverse phase in descending order. Ties
// on position preserve arrival order.
func NewSweep(reqs []*Request, head int) *Sweep {
	s := &Sweep{}
	s.init(reqs, head)
	return s
}

// init (re)builds the sweep contents, reusing any backing arrays the sweep
// already owns.
func (s *Sweep) init(reqs []*Request, head int) {
	s.ord = nil
	fwd, rev := s.fwd0[:0], s.rev0[:0]
	for _, r := range reqs {
		if r.Target.Pos >= head {
			fwd = append(fwd, r)
		} else {
			rev = append(rev, r)
		}
	}
	s.sortByPos(fwd, false)
	s.sortByPos(rev, true)
	s.fwd0, s.rev0 = fwd, rev
	s.Forward, s.Reverse = fwd, rev
}

// sortByPos stable-sorts one phase by Target.Pos, descending when desc.
// Longer phases sort (pos, original index) packed into uint64 keys -- the
// index in the low bits reproduces stability exactly -- trading two extra
// passes for an ordered sort with single-instruction comparisons instead
// of a comparator-function stable sort.
func (s *Sweep) sortByPos(phase []*Request, desc bool) {
	if len(phase) < 16 {
		if desc {
			slices.SortStableFunc(phase, func(a, b *Request) int {
				return b.Target.Pos - a.Target.Pos
			})
		} else {
			slices.SortStableFunc(phase, func(a, b *Request) int {
				return a.Target.Pos - b.Target.Pos
			})
		}
		return
	}
	keys := s.keys[:0]
	for i, r := range phase {
		p := uint32(r.Target.Pos)
		if desc {
			p = ^p
		}
		keys = append(keys, uint64(p)<<32|uint64(uint32(i)))
	}
	s.keys = keys
	slices.Sort(keys)
	tmp := append(s.tmp[:0], phase...)
	s.tmp = tmp
	for i, k := range keys {
		phase[i] = tmp[uint32(k)]
	}
}

// Len returns the number of requests remaining in the sweep.
func (s *Sweep) Len() int { return len(s.ord) + len(s.Forward) + len(s.Reverse) }

// Empty reports whether the sweep has been fully executed.
func (s *Sweep) Empty() bool { return s.Len() == 0 }

// Peek returns the next request to execute without removing it, or nil.
func (s *Sweep) Peek() *Request {
	if len(s.ord) > 0 {
		return s.ord[0]
	}
	if len(s.Forward) > 0 {
		return s.Forward[0]
	}
	if len(s.Reverse) > 0 {
		return s.Reverse[0]
	}
	return nil
}

// Pop removes and returns the next request to execute, or nil.
func (s *Sweep) Pop() *Request {
	if len(s.ord) > 0 {
		r := s.ord[0]
		s.ord = s.ord[1:]
		return r
	}
	if len(s.Forward) > 0 {
		r := s.Forward[0]
		s.Forward = s.Forward[1:]
		return r
	}
	if len(s.Reverse) > 0 {
		r := s.Reverse[0]
		s.Reverse = s.Reverse[1:]
		return r
	}
	return nil
}

// Positions returns the remaining execution order as a position list
// (explicit order when set, else forward phase then reverse phase). Used
// for cost evaluation.
func (s *Sweep) Positions() []int {
	out := make([]int, 0, s.Len())
	for _, r := range s.ord {
		out = append(out, r.Target.Pos)
	}
	for _, r := range s.Forward {
		out = append(out, r.Target.Pos)
	}
	for _, r := range s.Reverse {
		out = append(out, r.Target.Pos)
	}
	return out
}

// Requests returns the remaining requests in execution order.
func (s *Sweep) Requests() []*Request {
	out := make([]*Request, 0, s.Len())
	out = append(out, s.ord...)
	out = append(out, s.Forward...)
	out = append(out, s.Reverse...)
	return out
}

// Insert adds r (whose Target must be on the mounted tape) to the in-flight
// sweep if its position is still ahead of the head in the existing schedule,
// per the dynamic incremental scheduler of Section 3.1. It returns false if
// the position has already been passed, in which case the caller defers the
// request to the pending list.
//
//   - While the forward phase is active (head moving up), positions at or
//     above the head join the forward phase; positions below the head join
//     the not-yet-started reverse phase.
//   - Once the reverse phase has begun (head moving down), only positions at
//     or below the head can still be served in this sweep.
func (s *Sweep) Insert(r *Request, head int) bool {
	if s.Empty() {
		return false
	}
	if len(s.ord) > 0 {
		// The sweep carries a committed explicit (RAO) order: the drive has
		// already handed the schedule down, so arrivals wait in pending.
		return false
	}
	if len(s.Forward) > 0 {
		if r.Target.Pos >= head {
			s.insertForward(r)
		} else {
			s.insertReverse(r)
		}
		return true
	}
	// Reverse phase in progress.
	if r.Target.Pos <= head {
		s.insertReverse(r)
		return true
	}
	return false
}

func (s *Sweep) insertForward(r *Request) {
	i := sort.Search(len(s.Forward), func(i int) bool {
		return s.Forward[i].Target.Pos > r.Target.Pos
	})
	s.Forward = append(s.Forward, nil)
	copy(s.Forward[i+1:], s.Forward[i:])
	s.Forward[i] = r
}

func (s *Sweep) insertReverse(r *Request) {
	i := sort.Search(len(s.Reverse), func(i int) bool {
		return s.Reverse[i].Target.Pos < r.Target.Pos
	})
	s.Reverse = append(s.Reverse, nil)
	copy(s.Reverse[i+1:], s.Reverse[i:])
	s.Reverse[i] = r
}

// Remove deletes r (matched by pointer identity) from the sweep, preserving
// the order of the remaining requests. It reports whether r was present.
// The engine uses it to cancel deadline-expired requests out of in-flight
// sweeps without rebuilding the schedule.
func (s *Sweep) Remove(r *Request) bool {
	for i, q := range s.ord {
		if q == r {
			s.ord = append(s.ord[:i], s.ord[i+1:]...)
			return true
		}
	}
	for i, q := range s.Forward {
		if q == r {
			s.Forward = append(s.Forward[:i], s.Forward[i+1:]...)
			return true
		}
	}
	for i, q := range s.Reverse {
		if q == r {
			s.Reverse = append(s.Reverse[:i], s.Reverse[i+1:]...)
			return true
		}
	}
	return false
}

// MaxPos returns the highest position remaining in the sweep, or -1 when the
// sweep is empty. The envelope incremental scheduler uses it to detect
// whether an insertion extends the traversed prefix.
func (s *Sweep) MaxPos() int {
	max := -1
	for _, r := range s.ord {
		if r.Target.Pos > max {
			max = r.Target.Pos
		}
	}
	if n := len(s.Forward); n > 0 && s.Forward[n-1].Target.Pos > max {
		max = s.Forward[n-1].Target.Pos
	}
	if len(s.Reverse) > 0 && s.Reverse[0].Target.Pos > max {
		max = s.Reverse[0].Target.Pos
	}
	return max
}
