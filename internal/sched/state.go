package sched

import (
	"tapejuke/internal/layout"
)

// State is the scheduling view of one drive: the mounted tape and head
// position, the pending list of unscheduled requests (in arrival order), and
// the in-flight sweep. The simulation engine owns and mutates it; schedulers
// read it and carve requests out of the pending list.
type State struct {
	Layout *layout.Layout
	Costs  *CostModel

	Mounted int // mounted tape index, or -1 for an empty drive
	Head    int // head position (block boundary) on the mounted tape

	Pending []*Request // unscheduled requests in arrival order
	Active  *Sweep     // the sweep currently executing, nil when idle

	// Busy marks tapes unavailable to the major rescheduler (mounted in
	// other drives of a multi-drive jukebox, the paper's stated future
	// work). nil means every tape is available.
	Busy []bool

	// Down marks tapes that have permanently failed (the fault model's
	// unavailable-tape mask). Schedulers must not select a down tape nor
	// target a copy on one; requests whose every copy is down are the
	// engine's problem (reported unserviceable), never a scheduler's.
	// nil means every tape is up.
	Down []bool

	// DeadCopy, when non-nil, reports physical copies that are permanently
	// unreadable (media bad blocks, or transient errors escalated after
	// retry exhaustion). Schedulers must not target a dead copy.
	DeadCopy func(tape, pos int) bool

	Clock float64 // current simulation time (seconds)
}

// Up reports whether the tape has not permanently failed.
func (st *State) Up(tape int) bool {
	return st.Down == nil || !st.Down[tape]
}

// Available reports whether the major rescheduler may select the tape:
// neither mounted in another drive nor permanently failed.
func (st *State) Available(tape int) bool {
	return (st.Busy == nil || !st.Busy[tape]) && st.Up(tape)
}

// CopyOK reports whether the physical copy is readable: its tape is up and
// the copy itself is not dead. Split so the fault-free path (no masks
// armed) inlines to two nil checks at every call site; the masked path
// pays one call.
func (st *State) CopyOK(c layout.Replica) bool {
	if st.Down == nil && st.DeadCopy == nil {
		return true
	}
	return st.copyOKMasked(c)
}

func (st *State) copyOKMasked(c layout.Replica) bool {
	if st.Down != nil && st.Down[c.Tape] {
		return false
	}
	return st.DeadCopy == nil || !st.DeadCopy(c.Tape, c.Pos)
}

// UsableOn returns block b's copy on the given tape when that copy exists
// and is readable.
func (st *State) UsableOn(b layout.BlockID, tape int) (layout.Replica, bool) {
	c, ok := st.Layout.ReplicaOn(b, tape)
	if !ok || !st.CopyOK(c) {
		return layout.Replica{}, false
	}
	return c, true
}

// Serviceable reports whether at least one readable copy of block b
// remains anywhere in the jukebox.
func (st *State) Serviceable(b layout.BlockID) bool {
	for _, c := range st.Layout.Replicas(b) {
		if st.CopyOK(c) {
			return true
		}
	}
	return false
}

// Scheduler is a scheduling algorithm: a major rescheduler invoked at tape
// switch time plus an incremental scheduler for requests that arrive during
// the execution of a service list (Section 2.2).
type Scheduler interface {
	// Name identifies the algorithm (e.g. "dynamic-max-bandwidth").
	Name() string

	// Reschedule selects the tape to service next, extracts the requests it
	// will serve from st.Pending (setting their Targets), and returns the
	// tape and the service list. ok is false when nothing can be scheduled
	// (empty pending list). Reschedule must not mutate st.Mounted/st.Head;
	// the engine performs the switch.
	Reschedule(st *State) (tape int, sweep *Sweep, ok bool)

	// OnArrival offers a newly arrived request to the incremental
	// scheduler while a sweep is executing. It returns true if the request
	// was inserted into st.Active; on false the engine appends the request
	// to st.Pending.
	OnArrival(st *State, r *Request) bool
}

// RemovePending deletes the given requests (matched by pointer identity)
// from the pending list, preserving arrival order of the remainder.
//
// Schedulers extract requests by filtering the pending list, so `taken` is
// almost always an ordered subsequence of Pending; that case is handled
// in place with no allocation. Arbitrary orders fall back to a set.
func (st *State) RemovePending(taken []*Request) {
	if len(taken) == 0 {
		return
	}
	k := 0
	for _, r := range st.Pending {
		if k < len(taken) && r == taken[k] {
			k++
		}
	}
	if k == len(taken) {
		// Ordered subsequence: single in-place filtering pass.
		kept := st.Pending[:0]
		k = 0
		for _, r := range st.Pending {
			if k < len(taken) && r == taken[k] {
				k++
				continue
			}
			kept = append(kept, r)
		}
		// Zero the tail so dropped requests do not linger in the backing
		// array.
		for i := len(kept); i < len(st.Pending); i++ {
			st.Pending[i] = nil
		}
		st.Pending = kept
		return
	}
	set := make(map[*Request]bool, len(taken))
	for _, r := range taken {
		set[r] = true
	}
	kept := st.Pending[:0]
	for _, r := range st.Pending {
		if !set[r] {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(st.Pending); i++ {
		st.Pending[i] = nil
	}
	st.Pending = kept
}

// SatisfiableBy returns the pending requests that have a readable replica
// on the given tape, in arrival order. UsableOn is flattened into the loop
// so both lookups inline on this hot path.
func (st *State) SatisfiableBy(tape int) []*Request {
	var out []*Request
	for _, r := range st.Pending {
		if c, ok := st.Layout.ReplicaOn(r.Block, tape); ok && st.CopyOK(c) {
			out = append(out, r)
		}
	}
	return out
}

// CountByTape returns, for each tape, the number of pending requests that
// tape could satisfy. A replicated request is counted on each tape holding
// a readable copy.
func (st *State) CountByTape() []int {
	counts := make([]int, st.Layout.Tapes())
	for _, r := range st.Pending {
		for _, c := range st.Layout.Replicas(r.Block) {
			if st.CopyOK(c) {
				counts[c.Tape]++
			}
		}
	}
	return counts
}

// JukeboxOrder iterates tape indices in jukebox order starting at the
// mounted tape (or tape 0 for an empty drive): mounted, mounted+1, ...,
// wrapping around. It calls f for each tape until f returns false.
func (st *State) JukeboxOrder(f func(tape int) bool) {
	t0 := st.Mounted
	if t0 < 0 {
		t0 = 0
	}
	n := st.Layout.Tapes()
	for i := 0; i < n; i++ {
		if !f((t0 + i) % n) {
			return
		}
	}
}

// StartHead returns the head position a schedule on `tape` would execute
// from: the current head when the tape is already mounted, 0 after a switch.
func (st *State) StartHead(tape int) int {
	if tape == st.Mounted {
		return st.Head
	}
	return 0
}
