package sched

import (
	"tapejuke/internal/layout"
)

// Shared is the scheduling state common to every drive of a jukebox: the
// data layout, the cost model, the arrival-ordered pending list, and the
// availability masks. A multi-drive jukebox has one Shared and one State
// view per drive; the single-drive case is simply one view.
type Shared struct {
	Layout *layout.Layout
	Costs  *CostModel

	Pending []*Request // unscheduled requests in arrival order

	// Busy marks tapes claimed by a drive (mounted, or being loaded): no
	// other drive may select them. The drive's own mounted tape is marked
	// here too; Available exempts it. nil means every tape is free (the
	// single-drive engine never allocates the vector).
	Busy []bool

	// Down marks tapes that have permanently failed (the fault model's
	// unavailable-tape mask). Schedulers must not select a down tape nor
	// target a copy on one; requests whose every copy is down are the
	// engine's problem (reported unserviceable), never a scheduler's.
	// nil means every tape is up.
	Down []bool

	// DeadCopy, when non-nil, reports physical copies that are permanently
	// unreadable (media bad blocks, or transient errors escalated after
	// retry exhaustion). Schedulers must not target a dead copy.
	DeadCopy func(tape, pos int) bool

	// Fenced marks drives withdrawn from scheduling for maintenance (the
	// health extension's drive fence, the drive-side analogue of Down).
	// The engine checks the mask before issuing work on a drive; it is
	// indexed by drive, not tape, so schedulers -- which see one drive's
	// State at a time -- never consult it. nil means no drive is fenced.
	Fenced []bool

	// Now is the current simulation time, maintained by the engine. Only the
	// aging term reads it; with AgeWeight zero it is never consulted.
	Now float64

	// AgeWeight enables starvation-aware aging in tape selection: a policy
	// restricts its choice to tapes that can serve a request whose urgency
	// (see Urgency) is at least AgeWeight/(1+AgeWeight) of the maximum over
	// the pending list. Zero disables aging and leaves every policy
	// bit-identical to the unaged implementation; the limit of large weights
	// converges on the paper's oldest-request restriction.
	AgeWeight float64

	// sweepFree pools drained Sweep structs (returned by ReleaseSweep) so
	// steady-state reschedules reuse sweep headers and phase arrays instead
	// of allocating fresh ones per sweep.
	sweepFree []*Sweep
}

// NewSweep builds a sweep like the package function, drawing the Sweep
// struct and its phase arrays from the shared pool when one is free.
func (sh *Shared) NewSweep(reqs []*Request, head int) *Sweep {
	n := len(sh.sweepFree)
	if n == 0 {
		return NewSweep(reqs, head)
	}
	s := sh.sweepFree[n-1]
	sh.sweepFree[n-1] = nil
	sh.sweepFree = sh.sweepFree[:n-1]
	s.init(reqs, head)
	return s
}

// ReleaseSweep returns a sweep the engine has finished executing (drained,
// aborted, or replaced) to the pool. The caller must drop every reference
// to the sweep; nil is ignored.
func (sh *Shared) ReleaseSweep(s *Sweep) {
	if s == nil {
		return
	}
	s.Forward, s.Reverse, s.ord = nil, nil, nil
	ord := s.ord0[:cap(s.ord0)]
	for i := range ord {
		ord[i] = nil
	}
	fwd := s.fwd0[:cap(s.fwd0)]
	for i := range fwd {
		fwd[i] = nil
	}
	rev := s.rev0[:cap(s.rev0)]
	for i := range rev {
		rev[i] = nil
	}
	tmp := s.tmp[:cap(s.tmp)]
	for i := range tmp {
		tmp[i] = nil
	}
	sh.sweepFree = append(sh.sweepFree, s)
}

// Reset prepares the Shared for a fresh run over a (possibly different)
// layout and cost model, dropping every reference to the previous run's
// requests while keeping the allocated storage: the pending list's backing
// array and the drained-sweep pool survive, so a session that reuses one
// Shared across runs pays no per-run sweep or pending allocation.
func (sh *Shared) Reset(l *layout.Layout, costs *CostModel) {
	for i := range sh.Pending {
		sh.Pending[i] = nil
	}
	sh.Pending = sh.Pending[:0]
	sh.Layout, sh.Costs = l, costs
	sh.Busy, sh.Down, sh.DeadCopy, sh.Fenced = nil, nil, nil, nil
	sh.Now, sh.AgeWeight = 0, 0
}

// slackFloor bounds deadline slack away from zero so the urgency of a
// request at (or past) its deadline stays finite.
const slackFloor = 1e-9

// Urgency scores how badly a pending request needs service at Shared.Now:
// its age for deadline-free requests, and age scaled by TTL/slack for
// deadlined ones, so a request nearing its deadline dominates an older
// request with time to spare. Used by the aging tape-selection term.
func (sh *Shared) Urgency(r *Request) float64 {
	age := sh.Now - r.Arrival
	if age < 0 {
		age = 0
	}
	if r.Deadline <= 0 {
		return age
	}
	slack := r.Deadline - sh.Now
	if slack < slackFloor {
		slack = slackFloor
	}
	return age * (r.Deadline - r.Arrival) / slack
}

// State is the scheduling view of one drive: the shared jukebox state plus
// the drive's mounted tape, head position, and in-flight sweep. The
// simulation engine owns and mutates it; schedulers read it and carve
// requests out of the pending list.
type State struct {
	*Shared

	Mounted int // mounted tape index, or -1 for an empty drive
	Head    int // head position (block boundary) on the mounted tape

	Active *Sweep // the sweep currently executing on this drive, nil when idle
}

// NewState builds a single-drive scheduling state (its own Shared) over the
// given layout and cost model, with an empty drive.
func NewState(l *layout.Layout, costs *CostModel) *State {
	return &State{
		Shared:  &Shared{Layout: l, Costs: costs},
		Mounted: -1,
	}
}

// Up reports whether the tape has not permanently failed.
func (sh *Shared) Up(tape int) bool {
	return sh.Down == nil || !sh.Down[tape]
}

// Available reports whether the major rescheduler may select the tape:
// neither claimed by another drive nor permanently failed. The drive's own
// mounted tape is marked busy in the shared vector but stays available to
// this view.
func (st *State) Available(tape int) bool {
	if st.Busy != nil && st.Busy[tape] && tape != st.Mounted {
		return false
	}
	return st.Up(tape)
}

// CopyOK reports whether the physical copy is readable: its tape is up and
// the copy itself is not dead. Split so the fault-free path (no masks
// armed) inlines to two nil checks at every call site; the masked path
// pays one call.
func (sh *Shared) CopyOK(c layout.Replica) bool {
	if sh.Down == nil && sh.DeadCopy == nil {
		return true
	}
	return sh.copyOKMasked(c)
}

func (sh *Shared) copyOKMasked(c layout.Replica) bool {
	if sh.Down != nil && sh.Down[c.Tape] {
		return false
	}
	return sh.DeadCopy == nil || !sh.DeadCopy(c.Tape, c.Pos)
}

// UsableOn returns block b's copy on the given tape when that copy exists
// and is readable.
func (sh *Shared) UsableOn(b layout.BlockID, tape int) (layout.Replica, bool) {
	c, ok := sh.Layout.ReplicaOn(b, tape)
	if !ok || !sh.CopyOK(c) {
		return layout.Replica{}, false
	}
	return c, true
}

// Serviceable reports whether at least one readable copy of block b
// remains anywhere in the jukebox.
func (sh *Shared) Serviceable(b layout.BlockID) bool {
	for _, c := range sh.Layout.Replicas(b) {
		if sh.CopyOK(c) {
			return true
		}
	}
	return false
}

// Scheduler is a scheduling algorithm: a major rescheduler invoked at tape
// switch time plus an incremental scheduler for requests that arrive during
// the execution of a service list (Section 2.2).
type Scheduler interface {
	// Name identifies the algorithm (e.g. "dynamic-max-bandwidth").
	Name() string

	// Reschedule selects the tape to service next, extracts the requests it
	// will serve from sh.Pending (setting their Targets), and returns the
	// tape and the service lish. ok is false when nothing can be scheduled
	// (empty pending list). Reschedule must not mutate sh.Mounted/sh.Head;
	// the engine performs the switch.
	Reschedule(st *State) (tape int, sweep *Sweep, ok bool)

	// OnArrival offers a newly arrived request to the incremental
	// scheduler while a sweep is executing. It returns true if the request
	// was inserted into sh.Active; on false the engine appends the request
	// to sh.Pending.
	OnArrival(st *State, r *Request) bool
}

// CopyObserver is implemented by schedulers whose incremental state
// depends on the replica tables. The repair subsystem mutates the layout
// at run time -- minting a copy when a repair write settles, removing one
// at reclaim -- and notifies every drive's scheduler so state built from
// the tables (the envelope) can adjust mid-sweep instead of waiting for
// the next major reschedule. Schedulers that recompute from the live
// layout on every decision need not implement it.
type CopyObserver interface {
	// OnCopyAdded reports a newly minted copy of block b at c.
	OnCopyAdded(st *State, b layout.BlockID, c layout.Replica)
	// OnCopyRemoved reports that block b's copy at c left the tables.
	OnCopyRemoved(st *State, b layout.BlockID, c layout.Replica)
}

// RunResetter is implemented by schedulers that carry state across
// reschedules within one run and can restore their just-constructed
// observable state while keeping allocated scratch. A session runner may
// reuse a scheduler across runs only if it implements RunResetter (and
// calls ResetRun between runs) or is known to be stateless, like FIFO and
// the static/dynamic policies; anything else must be built fresh.
type RunResetter interface {
	ResetRun()
}

// RemovePending deletes the given requests (matched by pointer identity)
// from the pending list, preserving arrival order of the remainder.
//
// Schedulers extract requests by filtering the pending list, so `taken` is
// almost always an ordered subsequence of Pending; that case is one
// in-place filtering pass with no allocation. The pass is optimistic: it
// removes taken[0..k) as it matches them in order, so if some of taken
// turns out to be out of order (k < len(taken) at the end), the matched
// prefix is already correctly gone and only the remainder taken[k:] needs
// a second, set-based pass.
func (sh *Shared) RemovePending(taken []*Request) {
	if len(taken) == 0 {
		return
	}
	kept := sh.Pending[:0]
	k := 0
	for _, r := range sh.Pending {
		if k < len(taken) && r == taken[k] {
			k++
			continue
		}
		kept = append(kept, r)
	}
	if rest := taken[k:]; len(rest) > 0 {
		// Out-of-order remainder: remove the stragglers by set.
		set := make(map[*Request]bool, len(rest))
		for _, r := range rest {
			set[r] = true
		}
		kept2 := kept[:0]
		for _, r := range kept {
			if !set[r] {
				kept2 = append(kept2, r)
			}
		}
		kept = kept2
	}
	// Zero the tail so dropped requests do not linger in the backing
	// array.
	for i := len(kept); i < len(sh.Pending); i++ {
		sh.Pending[i] = nil
	}
	sh.Pending = kept
}

// SatisfiableBy returns the pending requests that have a readable replica
// on the given tape, in arrival order. UsableOn is flattened into the loop
// so both lookups inline on this hot path.
func (sh *Shared) SatisfiableBy(tape int) []*Request {
	var out []*Request
	for _, r := range sh.Pending {
		if c, ok := sh.Layout.ReplicaOn(r.Block, tape); ok && sh.CopyOK(c) {
			out = append(out, r)
		}
	}
	return out
}

// CountByTape returns, for each tape, the number of pending requests that
// tape could satisfy. A replicated request is counted on each tape holding
// a readable copy.
func (sh *Shared) CountByTape() []int {
	counts := make([]int, sh.Layout.Tapes())
	for _, r := range sh.Pending {
		for _, c := range sh.Layout.Replicas(r.Block) {
			if sh.CopyOK(c) {
				counts[c.Tape]++
			}
		}
	}
	return counts
}

// JukeboxOrder iterates tape indices in jukebox order starting at the
// mounted tape (or tape 0 for an empty drive): mounted, mounted+1, ...,
// wrapping around. It calls f for each tape until f returns false.
func (st *State) JukeboxOrder(f func(tape int) bool) {
	t0 := st.Mounted
	if t0 < 0 {
		t0 = 0
	}
	n := st.Layout.Tapes()
	for i := 0; i < n; i++ {
		if !f((t0 + i) % n) {
			return
		}
	}
}

// StartHead returns the head position a schedule on `tape` would execute
// from: the current head when the tape is already mounted, 0 after a switch.
func (st *State) StartHead(tape int) int {
	if tape == st.Mounted {
		return st.Head
	}
	return 0
}
