// Package health implements proactive media-health mechanisms for the
// jukebox: an exponentially-decayed error scorer that grades tapes and
// drives from the error observations the simulator feeds it, and a
// rotating scrub cursor that patrols tape regions during drive idle time.
//
// The paper treats replication as a performance lever and PR7's repair
// subsystem made lost copies recoverable; both are reactive. This package
// supplies the predictive half: latent errors are found by background
// patrol reads before a user request pays for the discovery, error-prone
// media is marked suspect (and evacuated by the repair machinery), and an
// error-prone drive is fenced for maintenance. Everything here is pure
// bookkeeping over observations the engine already makes -- the package
// draws no randomness of its own, which is what keeps the fault streams
// bit-identical whether or not scrubbing runs.
package health

import "math"

// ewma is one lazily decayed exponential moving score: Add bumps it by 1,
// and the value halves every halfLife seconds of inactivity. The decay is
// applied on access (like the repair heat tracker), so idle entries cost
// nothing.
type ewma struct {
	v     float64
	stamp float64
}

func (w *ewma) at(now, halfLife float64) float64 {
	if w.v == 0 {
		return 0
	}
	if dt := now - w.stamp; dt > 0 && halfLife > 0 {
		return w.v * math.Exp2(-dt/halfLife)
	}
	return w.v
}

func (w *ewma) add(now, halfLife float64) {
	w.v = w.at(now, halfLife) + 1
	w.stamp = now
}

// Scorer grades tapes and drives from error observations. A tape's score
// is its decayed error count plus a wear hazard (wearWeight per mount): a
// tape that errors often, or that has been mounted far more than its
// peers, is the one most likely to fail next, so it is the one to evacuate
// first. A drive's score is its decayed error count alone.
type Scorer struct {
	halfLife   float64
	wearWeight float64

	tapes  []ewma
	drives []ewma
	mounts []int64
}

// NewScorer builds a scorer for the given geometry. halfLife is the
// error-score decay half-life in simulated seconds (non-positive disables
// decay); wearWeight is the hazard each tape mount adds to that tape's
// score (zero disables the wear term).
func NewScorer(tapes, drives int, halfLife, wearWeight float64) *Scorer {
	return &Scorer{
		halfLife:   halfLife,
		wearWeight: wearWeight,
		tapes:      make([]ewma, tapes),
		drives:     make([]ewma, drives),
		mounts:     make([]int64, tapes),
	}
}

// NoteTapeError records one error observation against a tape: a transient
// read fault, a failed load attempt, or a permanent media discovery.
func (s *Scorer) NoteTapeError(tape int, now float64) {
	s.tapes[tape].add(now, s.halfLife)
}

// NoteDriveError records one error observation against a drive.
func (s *Scorer) NoteDriveError(drive int, now float64) {
	s.drives[drive].add(now, s.halfLife)
}

// NoteMount records one mount of the tape (the wear signal).
func (s *Scorer) NoteMount(tape int) { s.mounts[tape]++ }

// Mounts returns the tape's recorded mount count.
func (s *Scorer) Mounts(tape int) int64 { return s.mounts[tape] }

// TapeScore returns the tape's current health score: decayed errors plus
// the wear hazard. Higher is worse.
func (s *Scorer) TapeScore(tape int, now float64) float64 {
	return s.tapes[tape].at(now, s.halfLife) + s.wearWeight*float64(s.mounts[tape])
}

// DriveScore returns the drive's current decayed error score.
func (s *Scorer) DriveScore(drive int, now float64) float64 {
	return s.drives[drive].at(now, s.halfLife)
}

// ResetDrive clears a drive's error history (post-maintenance: the fence
// would otherwise re-trip immediately on the stale score).
func (s *Scorer) ResetDrive(drive int) { s.drives[drive] = ewma{} }

// Scrubber is the rotating patrol cursor: it hands out consecutive
// fixed-size regions of (tape, position) space, wrapping tape by tape, so
// every position is eventually verified. The scrubber holds no notion of
// time or liveness; the caller skips tapes it must not touch and performs
// the actual reads, so an interrupted patrol simply resumes at the cursor.
type Scrubber struct {
	tapes, capBlocks, region int
	tape, pos                int
}

// NewScrubber builds a patrol cursor over `tapes` tapes of capBlocks
// positions, verifying `region` consecutive positions per step.
func NewScrubber(tapes, capBlocks, region int) *Scrubber {
	if region < 1 {
		region = 1
	}
	return &Scrubber{tapes: tapes, capBlocks: capBlocks, region: region}
}

// Next returns the next region to patrol -- tape, first position, and
// length -- and advances the cursor past it. Tapes for which skip returns
// true (failed media, tapes claimed by another drive) are passed over from
// the start of their region space; ok is false when every tape is
// currently skipped.
func (s *Scrubber) Next(skip func(tape int) bool) (tape, start, n int, ok bool) {
	for tries := 0; tries < s.tapes; tries++ {
		if skip != nil && skip(s.tape) {
			s.tape = (s.tape + 1) % s.tapes
			s.pos = 0
			continue
		}
		tape, start = s.tape, s.pos
		n = s.region
		if start+n > s.capBlocks {
			n = s.capBlocks - start
		}
		s.pos += n
		if s.pos >= s.capBlocks {
			s.tape = (s.tape + 1) % s.tapes
			s.pos = 0
		}
		return tape, start, n, true
	}
	return 0, 0, 0, false
}
