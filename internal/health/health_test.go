package health

import (
	"math"
	"testing"
)

func TestScorerDecayAndWear(t *testing.T) {
	s := NewScorer(3, 2, 100, 0.5)
	s.NoteTapeError(1, 0)
	s.NoteTapeError(1, 0)
	if got := s.TapeScore(1, 0); got != 2 {
		t.Errorf("score right after two errors = %v, want 2", got)
	}
	if got := s.TapeScore(1, 100); math.Abs(got-1) > 1e-12 {
		t.Errorf("score one half-life later = %v, want 1", got)
	}
	if got := s.TapeScore(0, 100); got != 0 {
		t.Errorf("untouched tape scores %v, want 0", got)
	}

	// Wear is undecayed: four mounts add 2.0 at any time.
	for i := 0; i < 4; i++ {
		s.NoteMount(2)
	}
	if s.Mounts(2) != 4 {
		t.Errorf("Mounts = %d, want 4", s.Mounts(2))
	}
	if got := s.TapeScore(2, 1e9); got != 2 {
		t.Errorf("wear-only score = %v, want 2", got)
	}
}

func TestScorerDriveReset(t *testing.T) {
	s := NewScorer(1, 2, 100, 0)
	s.NoteDriveError(0, 10)
	s.NoteDriveError(0, 10)
	if got := s.DriveScore(0, 10); got != 2 {
		t.Errorf("drive score = %v, want 2", got)
	}
	s.ResetDrive(0)
	if got := s.DriveScore(0, 10); got != 0 {
		t.Errorf("drive score after reset = %v, want 0", got)
	}
	if got := s.DriveScore(1, 10); got != 0 {
		t.Errorf("other drive score = %v, want 0", got)
	}
}

func TestScorerNoDecayWhenDisabled(t *testing.T) {
	s := NewScorer(1, 1, 0, 0) // non-positive half-life: no decay
	s.NoteTapeError(0, 0)
	if got := s.TapeScore(0, 1e12); got != 1 {
		t.Errorf("undecayed score = %v, want 1", got)
	}
}

func TestScrubberCoversEveryPosition(t *testing.T) {
	const tapes, capBlocks, region = 3, 10, 4
	s := NewScrubber(tapes, capBlocks, region)
	seen := make(map[[2]int]int)
	steps := 0
	for {
		tape, start, n, ok := s.Next(nil)
		if !ok {
			t.Fatal("Next gave up with no skip function")
		}
		if start+n > capBlocks {
			t.Fatalf("region [%d,%d) overruns tape capacity %d", start, start+n, capBlocks)
		}
		for p := start; p < start+n; p++ {
			seen[[2]int{tape, p}]++
		}
		steps++
		if len(seen) == tapes*capBlocks && seen[[2]int{0, 0}] == 2 {
			break // full coverage and the cursor wrapped back around
		}
		if steps > 100 {
			t.Fatal("cursor failed to cover the jukebox")
		}
	}
	for k, c := range seen {
		if c > 2 {
			t.Errorf("position %v patrolled %d times in two passes", k, c)
		}
	}
}

func TestScrubberSkip(t *testing.T) {
	s := NewScrubber(3, 4, 4)
	for i := 0; i < 10; i++ {
		tape, _, _, ok := s.Next(func(t int) bool { return t == 1 })
		if !ok {
			t.Fatal("Next gave up with two tapes allowed")
		}
		if tape == 1 {
			t.Fatal("patrolled a skipped tape")
		}
	}
	if _, _, _, ok := s.Next(func(int) bool { return true }); ok {
		t.Error("Next returned a region with every tape skipped")
	}
}
