package layout

import (
	"testing"
	"testing/quick"
)

// paperConfig mirrors the jukebox of the study: 10 tapes of 7 GB holding
// 16 MB blocks, i.e. 448 blocks per tape.
func paperConfig() Config {
	return Config{Tapes: 10, TapeCapBlocks: 448}
}

func mustBuild(t *testing.T, cfg Config) *Layout {
	t.Helper()
	l, err := Build(cfg)
	if err != nil {
		t.Fatalf("Build(%+v): %v", cfg, err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate(%+v): %v", cfg, err)
	}
	return l
}

func TestNoReplicationFillsCapacity(t *testing.T) {
	cfg := paperConfig()
	cfg.HotPercent = 10
	l := mustBuild(t, cfg)
	if got, want := l.NumBlocks(), 4480; got != want {
		t.Errorf("NumBlocks = %d, want %d", got, want)
	}
	if got, want := l.NumHot(), 448; got != want {
		t.Errorf("NumHot = %d, want %d", got, want)
	}
	if l.ExpansionFactor() != 1 {
		t.Errorf("ExpansionFactor = %v, want 1", l.ExpansionFactor())
	}
}

func TestFullReplicationShrinksData(t *testing.T) {
	cfg := paperConfig()
	cfg.HotPercent = 10
	cfg.Replicas = 9
	cfg.Kind = Vertical
	cfg.StartPos = 1
	l := mustBuild(t, cfg)
	// E = 1.9, so roughly 4480/1.9 = 2357 logical blocks fit.
	if l.NumBlocks() > 2357 || l.NumBlocks() < 2300 {
		t.Errorf("NumBlocks = %d, want about 2357", l.NumBlocks())
	}
	if e := l.ExpansionFactor(); e != 1.9 {
		t.Errorf("ExpansionFactor = %v, want 1.9", e)
	}
	// Every hot block must have a copy on every tape (full replication in a
	// 10-tape jukebox).
	for b := 0; b < l.NumHot(); b++ {
		if got := len(l.Replicas(BlockID(b))); got != 10 {
			t.Fatalf("hot block %d has %d copies, want 10", b, got)
		}
	}
	// Cold blocks have exactly one copy.
	for b := l.NumHot(); b < l.NumBlocks(); b++ {
		if got := len(l.Replicas(BlockID(b))); got != 1 {
			t.Fatalf("cold block %d has %d copies, want 1", b, got)
		}
	}
}

func TestVerticalPutsOriginalsOnTapeZero(t *testing.T) {
	cfg := paperConfig()
	cfg.HotPercent = 10
	cfg.Replicas = 3
	cfg.Kind = Vertical
	l := mustBuild(t, cfg)
	for b := 0; b < l.NumHot(); b++ {
		cs := l.Replicas(BlockID(b))
		if cs[0].Tape != 0 {
			t.Fatalf("hot block %d original on tape %d, want 0", b, cs[0].Tape)
		}
		for _, c := range cs[1:] {
			if c.Tape == 0 {
				t.Fatalf("hot block %d replica on the hot tape", b)
			}
		}
	}
}

func TestHorizontalSpreadsOriginals(t *testing.T) {
	cfg := paperConfig()
	cfg.HotPercent = 10
	cfg.Kind = Horizontal
	l := mustBuild(t, cfg)
	count := make([]int, cfg.Tapes)
	for b := 0; b < l.NumHot(); b++ {
		count[l.Replicas(BlockID(b))[0].Tape]++
	}
	for tape, c := range count {
		if c == 0 {
			t.Errorf("tape %d holds no hot originals in a horizontal layout", tape)
		}
	}
}

func TestStartPositionPlacement(t *testing.T) {
	cfg := paperConfig()
	cfg.HotPercent = 10
	cfg.Kind = Horizontal

	cfg.StartPos = 0
	l0 := mustBuild(t, cfg)
	// With SP=0 some hot block must sit at position 0 of some tape.
	found := false
	for tape := 0; tape < cfg.Tapes; tape++ {
		if b, ok := l0.BlockAt(tape, 0); ok && l0.IsHot(b) {
			found = true
		}
	}
	if !found {
		t.Error("SP=0: no hot block at the beginning of any tape")
	}

	cfg.StartPos = 1
	l1 := mustBuild(t, cfg)
	// With SP=1 the last position of each tape holding hot data must be hot.
	found = false
	for tape := 0; tape < cfg.Tapes; tape++ {
		if b, ok := l1.BlockAt(tape, cfg.TapeCapBlocks-1); ok && l1.IsHot(b) {
			found = true
		}
	}
	if !found {
		t.Error("SP=1: no hot block at the end of any tape")
	}

	// Mean hot position should increase with SP.
	meanHotPos := func(l *Layout) float64 {
		sum, n := 0.0, 0
		for b := 0; b < l.NumHot(); b++ {
			for _, c := range l.Replicas(BlockID(b)) {
				sum += float64(c.Pos)
				n++
			}
		}
		return sum / float64(n)
	}
	if meanHotPos(l0) >= meanHotPos(l1) {
		t.Errorf("mean hot position: SP=0 %.1f should be below SP=1 %.1f",
			meanHotPos(l0), meanHotPos(l1))
	}
}

func TestReplicaOn(t *testing.T) {
	cfg := paperConfig()
	cfg.HotPercent = 10
	cfg.Replicas = 9
	cfg.Kind = Vertical
	l := mustBuild(t, cfg)
	for tape := 0; tape < cfg.Tapes; tape++ {
		if _, ok := l.ReplicaOn(0, tape); !ok {
			t.Errorf("fully replicated block 0 missing from tape %d", tape)
		}
	}
	cold := BlockID(l.NumHot())
	n := 0
	for tape := 0; tape < cfg.Tapes; tape++ {
		if _, ok := l.ReplicaOn(cold, tape); ok {
			n++
		}
	}
	if n != 1 {
		t.Errorf("cold block on %d tapes, want exactly 1", n)
	}
}

func TestErrors(t *testing.T) {
	bad := []Config{
		{Tapes: 0, TapeCapBlocks: 10},
		{Tapes: 2, TapeCapBlocks: 0},
		{Tapes: 2, TapeCapBlocks: 10, HotPercent: -1},
		{Tapes: 2, TapeCapBlocks: 10, HotPercent: 101},
		{Tapes: 2, TapeCapBlocks: 10, Replicas: 2},
		{Tapes: 2, TapeCapBlocks: 10, Replicas: -1},
		{Tapes: 2, TapeCapBlocks: 10, StartPos: 1.5},
		{Tapes: 2, TapeCapBlocks: 10, StartPos: -0.5},
		// Vertical with more hot data than one tape holds.
		{Tapes: 2, TapeCapBlocks: 10, HotPercent: 90, Kind: Vertical},
	}
	for _, cfg := range bad {
		if _, err := Build(cfg); err == nil {
			t.Errorf("Build(%+v) succeeded, want error", cfg)
		}
	}
}

func TestAllHotAllCold(t *testing.T) {
	cfg := paperConfig()
	cfg.HotPercent = 0
	l := mustBuild(t, cfg)
	if l.NumHot() != 0 || l.NumCold() != 4480 {
		t.Errorf("PH=0: hot=%d cold=%d", l.NumHot(), l.NumCold())
	}
	cfg.HotPercent = 100
	cfg.Kind = Horizontal
	l = mustBuild(t, cfg)
	if l.NumHot() != 4480 || l.NumCold() != 0 {
		t.Errorf("PH=100: hot=%d cold=%d", l.NumHot(), l.NumCold())
	}
}

func TestPartialFill(t *testing.T) {
	cfg := paperConfig()
	cfg.HotPercent = 10
	cfg.DataBlocks = 1000 // well under the 4480 capacity
	l := mustBuild(t, cfg)
	if l.NumBlocks() != 1000 {
		t.Errorf("NumBlocks = %d, want 1000", l.NumBlocks())
	}
	if l.NumHot() != 100 {
		t.Errorf("NumHot = %d, want 100", l.NumHot())
	}
	// Overflow detection: too much data for the capacity with replicas.
	cfg.DataBlocks = 4400
	cfg.Replicas = 9
	cfg.Kind = Vertical
	if _, err := Build(cfg); err == nil {
		t.Error("oversubscribed partial fill accepted")
	}
}

func TestPackAfterData(t *testing.T) {
	cfg := paperConfig()
	cfg.HotPercent = 10
	cfg.Replicas = 9
	cfg.Kind = Vertical
	cfg.DataBlocks = 1340 // 30% full
	cfg.PackAfterData = true
	l := mustBuild(t, cfg)

	// On every replica tape, the hot region must sit immediately after the
	// cold data: scanning from position 0, occupied positions form one
	// contiguous run (no blank gap before the replicas).
	for tape := 0; tape < cfg.Tapes; tape++ {
		lastOccupied, firstFree := -1, -1
		for p := 0; p < cfg.TapeCapBlocks; p++ {
			if _, ok := l.BlockAt(tape, p); ok {
				if firstFree >= 0 {
					t.Fatalf("tape %d: occupied position %d after gap at %d", tape, p, firstFree)
				}
				lastOccupied = p
			} else if firstFree < 0 {
				firstFree = p
			}
		}
		if lastOccupied < 0 {
			t.Fatalf("tape %d empty", tape)
		}
	}

	// The mean locate target is far lower than with SP=1 placement on the
	// same data (the point of packing).
	cfg.PackAfterData = false
	cfg.StartPos = 1
	atEnd := mustBuild(t, cfg)
	meanHotPos := func(l *Layout) float64 {
		sum, n := 0.0, 0
		for b := 0; b < l.NumHot(); b++ {
			for _, c := range l.Replicas(BlockID(b)) {
				sum += float64(c.Pos)
				n++
			}
		}
		return sum / float64(n)
	}
	if meanHotPos(l) >= meanHotPos(atEnd) {
		t.Errorf("packed hot positions (%.0f) should sit before SP-1 positions (%.0f)",
			meanHotPos(l), meanHotPos(atEnd))
	}
}

func TestKindString(t *testing.T) {
	if Horizontal.String() != "horizontal" || Vertical.String() != "vertical" {
		t.Error("Kind.String mismatch")
	}
}

// Property: for arbitrary valid configurations the layout passes Validate
// and the physical footprint never exceeds capacity.
func TestBuildPropertyValid(t *testing.T) {
	f := func(tapes, capBlocks, ph, nr uint8, kindBit bool, spRaw uint8) bool {
		cfg := Config{
			Tapes:         int(tapes)%12 + 1,
			TapeCapBlocks: int(capBlocks)%80 + 20,
			HotPercent:    float64(ph % 101),
			StartPos:      float64(spRaw%101) / 100,
		}
		cfg.Replicas = int(nr) % cfg.Tapes // in [0, Tapes-1]
		if kindBit {
			cfg.Kind = Vertical
		}
		l, err := Build(cfg)
		if err != nil {
			// Overflow rejections are legal (vertical hot tape overflow, or
			// horizontal per-tape hot regions exceeding capacity at extreme
			// PH x NR); what matters is that successful builds validate.
			return true
		}
		if l.Validate() != nil {
			return false
		}
		// Footprint accounting.
		phys := 0
		for b := 0; b < l.NumBlocks(); b++ {
			phys += len(l.Replicas(BlockID(b)))
		}
		return phys <= cfg.Tapes*cfg.TapeCapBlocks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Every configuration in the paper's experimental grid must build and
// validate: PH in {5,10,20}, NR 0..9, SP in {0,0.25,0.5,0.75,1}, both kinds.
func TestPaperGridBuilds(t *testing.T) {
	for _, ph := range []float64{5, 10, 20} {
		for nr := 0; nr <= 9; nr++ {
			for _, sp := range []float64{0, 0.25, 0.5, 0.75, 1} {
				for _, kind := range []Kind{Horizontal, Vertical} {
					if kind == Vertical && ph > 10 {
						// The paper does not study vertical layouts with
						// more hot data than one tape holds.
						continue
					}
					cfg := paperConfig()
					cfg.HotPercent = ph
					cfg.Replicas = nr
					cfg.StartPos = sp
					cfg.Kind = kind
					l, err := Build(cfg)
					if err != nil {
						t.Fatalf("Build(PH=%v NR=%d SP=%v %v): %v", ph, nr, sp, kind, err)
					}
					if err := l.Validate(); err != nil {
						t.Fatalf("Validate(PH=%v NR=%d SP=%v %v): %v", ph, nr, sp, kind, err)
					}
				}
			}
		}
	}
}

// Property: hot block IDs are exactly 0..NumHot-1.
func TestHotPrefixProperty(t *testing.T) {
	f := func(ph uint8) bool {
		cfg := paperConfig()
		cfg.HotPercent = float64(ph % 101)
		l, err := Build(cfg)
		if err != nil {
			return false
		}
		for b := 0; b < l.NumBlocks(); b++ {
			if l.IsHot(BlockID(b)) != (b < l.NumHot()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
