package layout

import (
	"fmt"
	"sort"
)

// Mutation support for online re-replication. A layout built by Build or
// NewManual is normally immutable; the repair subsystem (internal/repair)
// rebuilds lost replicas and reclaims cold excess ones at run time, which
// requires adding and removing copies in place while keeping every derived
// index -- the copies lists, the blockAt grid, the dense posOn index, and
// the sorted per-tape slot tables -- consistent. Both mutators flip the
// `mutated` flag, which relaxes Validate's exact copy-count check (a
// repaired layout legitimately differs from its build-time replica counts)
// while every structural invariant still holds.

// Mutated reports whether the layout has been modified since construction.
func (l *Layout) Mutated() bool { return l.mutated }

// FreeBlocks returns the number of unoccupied positions on tape t.
func (l *Layout) FreeBlocks(t int) int {
	return l.cfg.TapeCapBlocks - len(l.tapeSlots[t])
}

// FirstFree returns the lowest unoccupied position on tape t for which ok
// (when non-nil) holds, or -1 when the tape has no acceptable free position.
func (l *Layout) FirstFree(t int, ok func(pos int) bool) int {
	for p, b := range l.blockAt[t] {
		if b == -1 && (ok == nil || ok(p)) {
			return p
		}
	}
	return -1
}

// AddCopy records a new physical copy of block b at (tape, pos). The
// position must be free and the block must not already have a copy on the
// tape (the at-most-one-copy-per-tape invariant).
func (l *Layout) AddCopy(b BlockID, tape, pos int) error {
	if int(b) < 0 || int(b) >= len(l.copies) {
		return fmt.Errorf("layout: AddCopy: no block %d", b)
	}
	if tape < 0 || tape >= l.cfg.Tapes || pos < 0 || pos >= l.cfg.TapeCapBlocks {
		return fmt.Errorf("layout: AddCopy: position (%d,%d) out of bounds", tape, pos)
	}
	if got := l.blockAt[tape][pos]; got != -1 {
		return fmt.Errorf("layout: AddCopy: position (%d,%d) holds block %d", tape, pos, got)
	}
	if _, dup := l.ReplicaOn(b, tape); dup {
		return fmt.Errorf("layout: AddCopy: block %d already has a copy on tape %d", b, tape)
	}
	l.copies[b] = append(l.copies[b], Replica{Tape: tape, Pos: pos})
	l.blockAt[tape][pos] = b
	if l.posOn != nil {
		l.posOn[int(b)*l.cfg.Tapes+tape] = int32(pos) + 1
	}
	l.insertSlot(tape, pos, b)
	l.mutated = true
	return nil
}

// RemoveCopy deletes block b's copy on the given tape. The sole remaining
// copy of a block cannot be removed (data loss is the fault model's job,
// not the mutation API's).
func (l *Layout) RemoveCopy(b BlockID, tape int) error {
	if int(b) < 0 || int(b) >= len(l.copies) {
		return fmt.Errorf("layout: RemoveCopy: no block %d", b)
	}
	c, ok := l.ReplicaOn(b, tape)
	if !ok {
		return fmt.Errorf("layout: RemoveCopy: block %d has no copy on tape %d", b, tape)
	}
	cs := l.copies[b]
	if len(cs) <= 1 {
		return fmt.Errorf("layout: RemoveCopy: refusing to remove the sole copy of block %d", b)
	}
	for i := range cs {
		if cs[i].Tape == tape {
			l.copies[b] = append(cs[:i], cs[i+1:]...)
			break
		}
	}
	l.blockAt[tape][c.Pos] = -1
	if l.posOn != nil {
		l.posOn[int(b)*l.cfg.Tapes+tape] = 0
	}
	l.removeSlot(tape, c.Pos)
	l.mutated = true
	return nil
}

// insertSlot places (pos, b) into tape t's sorted slot table.
func (l *Layout) insertSlot(t, pos int, b BlockID) {
	slots := l.tapeSlots[t]
	i := sort.Search(len(slots), func(i int) bool { return slots[i].Pos >= pos })
	slots = append(slots, Slot{})
	copy(slots[i+1:], slots[i:])
	slots[i] = Slot{Pos: pos, Block: b}
	l.tapeSlots[t] = slots
}

// removeSlot deletes the slot at pos from tape t's sorted slot table.
func (l *Layout) removeSlot(t, pos int) {
	slots := l.tapeSlots[t]
	i := sort.Search(len(slots), func(i int) bool { return slots[i].Pos >= pos })
	if i < len(slots) && slots[i].Pos == pos {
		l.tapeSlots[t] = append(slots[:i], slots[i+1:]...)
	}
}
