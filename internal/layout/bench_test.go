package layout

import "testing"

func benchBuild(b *testing.B, cfg Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildNoReplication(b *testing.B) {
	benchBuild(b, Config{Tapes: 10, TapeCapBlocks: 448, HotPercent: 10})
}

func BenchmarkBuildFullReplication(b *testing.B) {
	benchBuild(b, Config{
		Tapes: 10, TapeCapBlocks: 448, HotPercent: 10,
		Replicas: 9, Kind: Vertical, StartPos: 1,
	})
}

func BenchmarkReplicaOn(b *testing.B) {
	l, err := Build(Config{
		Tapes: 10, TapeCapBlocks: 448, HotPercent: 10,
		Replicas: 9, Kind: Vertical, StartPos: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.ReplicaOn(BlockID(i%l.NumBlocks()), i%10)
	}
}

func BenchmarkValidate(b *testing.B) {
	l, err := Build(Config{
		Tapes: 10, TapeCapBlocks: 448, HotPercent: 10,
		Replicas: 9, Kind: Vertical, StartPos: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
