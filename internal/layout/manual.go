package layout

import (
	"errors"
	"fmt"
)

// NewManual builds a layout from explicit replica lists: copies[b] holds the
// physical copies of block b, original first. Blocks 0..numHot-1 are hot.
// Manual layouts serve tests, examples, and callers with externally
// determined placements; Build remains the path for the paper's placement
// policies.
func NewManual(tapes, tapeCap, numHot int, copies [][]Replica) (*Layout, error) {
	if tapes < 1 || tapeCap < 1 {
		return nil, errors.New("layout: need at least one tape with positive capacity")
	}
	if numHot < 0 || numHot > len(copies) {
		return nil, fmt.Errorf("layout: numHot %d out of range [0,%d]", numHot, len(copies))
	}
	if len(copies) == 0 {
		return nil, errors.New("layout: no blocks")
	}
	l := &Layout{
		cfg:    Config{Tapes: tapes, TapeCapBlocks: tapeCap, Kind: Horizontal},
		numHot: numHot,
		manual: true,
	}
	l.blockAt = make([][]BlockID, tapes)
	for t := range l.blockAt {
		row := make([]BlockID, tapeCap)
		for i := range row {
			row[i] = -1
		}
		l.blockAt[t] = row
	}
	l.copies = make([][]Replica, len(copies))
	for b, cs := range copies {
		if len(cs) == 0 {
			return nil, fmt.Errorf("layout: block %d has no copies", b)
		}
		tapesSeen := make(map[int]bool)
		for _, c := range cs {
			if c.Tape < 0 || c.Tape >= tapes || c.Pos < 0 || c.Pos >= tapeCap {
				return nil, fmt.Errorf("layout: block %d copy %v out of bounds", b, c)
			}
			if tapesSeen[c.Tape] {
				return nil, fmt.Errorf("layout: block %d has two copies on tape %d", b, c.Tape)
			}
			tapesSeen[c.Tape] = true
			if l.blockAt[c.Tape][c.Pos] != -1 {
				return nil, fmt.Errorf("layout: position %v already occupied", c)
			}
			l.blockAt[c.Tape][c.Pos] = BlockID(b)
		}
		l.copies[b] = append([]Replica(nil), cs...)
	}
	l.finalize()
	return l, nil
}
