// Package layout maps logical data blocks onto tape positions in a jukebox,
// implementing the placement and replication schemes studied in Section 4 of
// the paper: horizontal vs. vertical hot-data layouts, the normalized
// start-position parameter SP, and NR-way replication of hot blocks with at
// most one copy of a block per tape.
//
// Logical blocks are numbered 0..NumBlocks-1 with the hot blocks first
// (0..NumHot-1), which lets the workload generator draw hot and cold
// requests from simple integer ranges.
package layout

import (
	"errors"
	"fmt"
)

// BlockID identifies a logical data block.
type BlockID int

// Replica is one physical copy of a logical block: a tape index and a block
// position on that tape (positions are numbered from 0 at the beginning of
// the tape).
type Replica struct {
	Tape int
	Pos  int
}

// Kind selects the hot-data layout across tapes.
type Kind int

const (
	// Horizontal distributes hot blocks (and their replicas) across all
	// tapes in the jukebox.
	Horizontal Kind = iota
	// Vertical collects all hot originals onto a single tape (tape 0);
	// replicas, if any, are distributed round-robin across the remaining
	// tapes.
	Vertical
)

// String names the layout kind.
func (k Kind) String() string {
	if k == Vertical {
		return "vertical"
	}
	return "horizontal"
}

// Config describes a data layout to build.
type Config struct {
	Tapes         int     // number of tapes in the jukebox
	TapeCapBlocks int     // capacity of each tape, in blocks
	HotPercent    float64 // PH: percent of logical blocks that are hot
	Replicas      int     // NR: extra copies of each hot block (0..Tapes-1)
	Kind          Kind    // horizontal or vertical hot layout
	StartPos      float64 // SP in [0,1]: normalized start of the hot region within a tape

	// DataBlocks, when positive, fixes the number of logical blocks stored
	// instead of filling the jukebox to capacity: a partially filled
	// library, as in the paper's gradual-fill scenario (Section 4.8). The
	// blocks plus all replicas must fit.
	DataBlocks int
	// PackAfterData places each tape's hot/replica region immediately
	// after that tape's cold data instead of at the StartPos-scaled
	// position -- "append replicas at the ends of the tapes" in the
	// append-only sense that matters on a partially filled tape (data must
	// be contiguous from the beginning of a helical tape, and locating
	// across blank tape to a far region wastes time). StartPos is ignored
	// when set.
	PackAfterData bool
}

// Layout is an immutable mapping from logical blocks to tape positions.
type Layout struct {
	cfg     Config
	numHot  int
	manual  bool        // built by NewManual: replica counts are caller-chosen
	mutated bool        // modified after construction by AddCopy/RemoveCopy
	copies  [][]Replica // indexed by BlockID; copies[b][0] is the original
	blockAt [][]BlockID // [tape][pos] -> block, or -1 for unused positions

	// posOn is a dense (block, tape) -> position index: posOn[b*Tapes+t]
	// holds pos+1 for block b's copy on tape t, or 0 when the block has no
	// copy there. It makes ReplicaOn an O(1) lookup on the scheduler hot
	// path. nil when blocks*tapes exceeds maxDenseIndex; ReplicaOn then
	// falls back to scanning the (short) copies list.
	posOn []int32
	// tapeSlots[t] lists tape t's occupied positions in ascending position
	// order: the per-tape candidate table consumed by schedulers that need
	// position-sorted traversal without re-sorting per call.
	tapeSlots [][]Slot
}

// Slot is one occupied position on a tape.
type Slot struct {
	Pos   int
	Block BlockID
}

// maxDenseIndex caps the dense replica index at 256 MiB (64M int32
// entries); pathological configurations beyond it use the scan fallback.
const maxDenseIndex = 64 << 20

// finalize builds the derived lookup structures (the dense replica index
// and the per-tape sorted candidate tables) once the copies and blockAt
// mappings are complete. Both Build and NewManual call it last.
func (l *Layout) finalize() {
	n := len(l.copies)
	t := l.cfg.Tapes
	if n*t <= maxDenseIndex {
		l.posOn = make([]int32, n*t)
		for b, cs := range l.copies {
			for _, c := range cs {
				l.posOn[b*t+c.Tape] = int32(c.Pos) + 1
			}
		}
	}
	l.tapeSlots = make([][]Slot, t)
	for tape, row := range l.blockAt {
		slots := make([]Slot, 0, len(row))
		for pos, b := range row { // ascending pos: sorted by construction
			if b >= 0 {
				slots = append(slots, Slot{Pos: pos, Block: b})
			}
		}
		l.tapeSlots[tape] = slots
	}
}

// Build computes a layout for the given configuration. The number of logical
// blocks is derived from the jukebox capacity and the replication expansion
// factor E = 1 + NR*PH/100: replicas consume capacity that would otherwise
// hold cold data, exactly as in Section 4.8 of the paper.
func Build(cfg Config) (*Layout, error) {
	if cfg.Tapes < 1 {
		return nil, errors.New("layout: need at least one tape")
	}
	if cfg.TapeCapBlocks < 1 {
		return nil, errors.New("layout: tape capacity must be positive")
	}
	if cfg.HotPercent < 0 || cfg.HotPercent > 100 {
		return nil, fmt.Errorf("layout: hot percent %v out of range [0,100]", cfg.HotPercent)
	}
	if cfg.Replicas < 0 || cfg.Replicas > cfg.Tapes-1 {
		return nil, fmt.Errorf("layout: %d replicas impossible with %d tapes (at most one copy per tape)", cfg.Replicas, cfg.Tapes)
	}
	if cfg.StartPos < 0 || cfg.StartPos > 1 {
		return nil, fmt.Errorf("layout: start position %v out of range [0,1]", cfg.StartPos)
	}

	capacity := cfg.Tapes * cfg.TapeCapBlocks
	ph := cfg.HotPercent / 100
	var numBlocks, numHot int
	if cfg.DataBlocks > 0 {
		numBlocks = cfg.DataBlocks
		numHot = int(ph * float64(numBlocks))
		if numBlocks+numHot*cfg.Replicas > capacity {
			return nil, fmt.Errorf("layout: %d blocks with %d replicas of %d hot blocks exceed capacity %d",
				numBlocks, cfg.Replicas, numHot, capacity)
		}
	} else {
		e := 1 + float64(cfg.Replicas)*ph
		numBlocks = int(float64(capacity) / e)
		numHot = int(ph * float64(numBlocks))
		// Rounding can leave the physical footprint slightly over capacity;
		// trim whole blocks until it fits.
		for numBlocks+numHot*cfg.Replicas > capacity {
			numBlocks--
			numHot = int(ph * float64(numBlocks))
		}
	}
	if numBlocks < 1 {
		return nil, errors.New("layout: capacity too small for any data")
	}
	if cfg.Kind == Vertical && numHot > cfg.TapeCapBlocks {
		return nil, fmt.Errorf("layout: vertical layout needs %d hot blocks on one tape of capacity %d", numHot, cfg.TapeCapBlocks)
	}
	if cfg.Kind == Vertical && numHot > 0 && cfg.Tapes == 1 && cfg.Replicas > 0 {
		return nil, errors.New("layout: vertical replication needs at least two tapes")
	}

	// Every hot block gets the same number of copies, every cold block one;
	// carving all replica lists out of a single arena keeps Build to a
	// handful of allocations instead of one tiny slice per block.
	copiesPerHot := cfg.Replicas + 1
	if cfg.Kind == Vertical && cfg.Tapes == 1 {
		copiesPerHot = 1
	}
	numCold := numBlocks - numHot
	arena := make([]Replica, numHot*copiesPerHot+numCold)

	l := &Layout{cfg: cfg, numHot: numHot}
	l.copies = make([][]Replica, numBlocks)
	for b := 0; b < numHot; b++ {
		off := b * copiesPerHot
		l.copies[b] = arena[off : off : off+copiesPerHot]
	}
	for c := 0; c < numCold; c++ {
		off := numHot*copiesPerHot + c
		l.copies[numHot+c] = arena[off : off : off+1]
	}
	l.blockAt = make([][]BlockID, cfg.Tapes)
	rows := make([]BlockID, cfg.Tapes*cfg.TapeCapBlocks)
	for i := range rows {
		rows[i] = -1
	}
	for t := range l.blockAt {
		l.blockAt[t] = rows[t*cfg.TapeCapBlocks : (t+1)*cfg.TapeCapBlocks : (t+1)*cfg.TapeCapBlocks]
	}

	// Assign each hot copy (original + replicas) to a tape. One counting
	// pass sizes the flat per-tape slab, one fill pass populates it.
	scratch := make([]int, 0, copiesPerHot)
	hotCount := make([]int, cfg.Tapes)
	for b := 0; b < numHot; b++ {
		for _, t := range hotCopyTapes(cfg, b, scratch) {
			hotCount[t]++
		}
	}
	perTapeHot := make([][]BlockID, cfg.Tapes)
	hotSlab := make([]BlockID, numHot*copiesPerHot)
	off := 0
	for t := range perTapeHot {
		perTapeHot[t] = hotSlab[off : off : off+hotCount[t]]
		off += hotCount[t]
	}
	for b := 0; b < numHot; b++ {
		for _, t := range hotCopyTapes(cfg, b, scratch) {
			perTapeHot[t] = append(perTapeHot[t], BlockID(b))
		}
	}

	// Place each tape's hot region contiguously, starting at the position
	// selected by SP (SP=0 puts the region at the beginning of the tape,
	// SP=1 at the end) or, when packing, right after the tape's share of
	// cold data.
	var packStart []int
	if cfg.PackAfterData {
		packStart = coldShares(cfg, perTapeHot, numBlocks-numHot)
		if packStart == nil {
			return nil, errors.New("layout: cold data does not fit alongside hot regions")
		}
	}
	for t := 0; t < cfg.Tapes; t++ {
		size := len(perTapeHot[t])
		if size > cfg.TapeCapBlocks {
			return nil, fmt.Errorf("layout: tape %d overflows with %d hot copies", t, size)
		}
		start := int(cfg.StartPos*float64(cfg.TapeCapBlocks-size) + 0.5)
		if cfg.PackAfterData {
			start = packStart[t]
		}
		if start+size > cfg.TapeCapBlocks {
			return nil, fmt.Errorf("layout: tape %d region [%d,%d) exceeds capacity", t, start, start+size)
		}
		for i, b := range perTapeHot[t] {
			pos := start + i
			l.blockAt[t][pos] = b
			l.copies[b] = append(l.copies[b], Replica{Tape: t, Pos: pos})
		}
	}

	// Originals come first in the copies list: for vertical layouts the
	// original lives on tape 0; for horizontal, on tape b mod Tapes. The
	// per-tape assignment above appends in tape order, so reorder when the
	// original is not already first.
	for b := 0; b < numHot; b++ {
		orig := originalTape(cfg, b)
		cs := l.copies[b]
		for i, c := range cs {
			if c.Tape == orig {
				cs[0], cs[i] = cs[i], cs[0]
				break
			}
		}
	}

	// Fill cold blocks round-robin across tapes into ascending free
	// positions, skipping tapes that are full.
	nextFree := make([]int, cfg.Tapes) // scan cursor per tape
	t := 0
	for c := 0; c < numCold; c++ {
		b := BlockID(numHot + c)
		placed := false
		for tries := 0; tries < cfg.Tapes; tries++ {
			tt := (t + tries) % cfg.Tapes
			pos := -1
			for p := nextFree[tt]; p < cfg.TapeCapBlocks; p++ {
				if l.blockAt[tt][p] == -1 {
					pos = p
					break
				}
			}
			if pos >= 0 {
				nextFree[tt] = pos + 1
				l.blockAt[tt][pos] = b
				l.copies[b] = append(l.copies[b], Replica{Tape: tt, Pos: pos})
				t = (tt + 1) % cfg.Tapes
				placed = true
				break
			}
			nextFree[tt] = cfg.TapeCapBlocks
		}
		if !placed {
			return nil, fmt.Errorf("layout: no room for cold block %d", b)
		}
	}
	l.finalize()
	return l, nil
}

// coldShares computes, per tape, how many cold blocks the round-robin fill
// will put on it when each tape's hot region sits immediately after its
// cold share -- i.e. the region start positions for PackAfterData. Returns
// nil if the cold blocks cannot fit.
func coldShares(cfg Config, perTapeHot [][]BlockID, cold int) []int {
	share := make([]int, cfg.Tapes)
	room := make([]int, cfg.Tapes)
	for t := range room {
		room[t] = cfg.TapeCapBlocks - len(perTapeHot[t])
	}
	t := 0
	for c := 0; c < cold; c++ {
		placed := false
		for tries := 0; tries < cfg.Tapes; tries++ {
			tt := (t + tries) % cfg.Tapes
			if share[tt] < room[tt] {
				share[tt]++
				t = (tt + 1) % cfg.Tapes
				placed = true
				break
			}
		}
		if !placed {
			return nil
		}
	}
	return share
}

// hotCopyTapes lists the tapes holding copies of hot block b (original
// first in the vertical sense is handled separately; this list is in
// ascending rotation order). The result is built in buf's storage, so one
// scratch buffer serves every call in a build loop.
func hotCopyTapes(cfg Config, b int, buf []int) []int {
	tapes := buf[:0]
	if cfg.Kind == Vertical {
		tapes = append(tapes, 0)
		if cfg.Tapes > 1 {
			rest := cfg.Tapes - 1
			for r := 0; r < cfg.Replicas; r++ {
				tapes = append(tapes, 1+(b+r)%rest)
			}
		}
		return tapes
	}
	for r := 0; r <= cfg.Replicas; r++ {
		tapes = append(tapes, (b+r)%cfg.Tapes)
	}
	return tapes
}

// originalTape returns the tape that holds the original (first) copy of hot
// block b.
func originalTape(cfg Config, b int) int {
	if cfg.Kind == Vertical {
		return 0
	}
	return b % cfg.Tapes
}

// Config returns the configuration this layout was built from.
func (l *Layout) Config() Config { return l.cfg }

// Tapes returns the number of tapes.
func (l *Layout) Tapes() int { return l.cfg.Tapes }

// TapeCap returns the per-tape capacity in blocks.
func (l *Layout) TapeCap() int { return l.cfg.TapeCapBlocks }

// NumBlocks returns the number of logical blocks stored.
func (l *Layout) NumBlocks() int { return len(l.copies) }

// NumHot returns the number of hot logical blocks (IDs 0..NumHot-1).
func (l *Layout) NumHot() int { return l.numHot }

// NumCold returns the number of cold logical blocks.
func (l *Layout) NumCold() int { return len(l.copies) - l.numHot }

// IsHot reports whether block b is hot.
func (l *Layout) IsHot(b BlockID) bool { return int(b) < l.numHot }

// Replicas returns the physical copies of block b; the original copy is
// first. The returned slice must not be modified.
func (l *Layout) Replicas(b BlockID) []Replica { return l.copies[b] }

// Replicated reports whether block b has more than one physical copy.
func (l *Layout) Replicated(b BlockID) bool { return len(l.copies[b]) > 1 }

// BlockAt returns the logical block stored at (tape, pos), if any.
func (l *Layout) BlockAt(tape, pos int) (BlockID, bool) {
	b := l.blockAt[tape][pos]
	return b, b >= 0
}

// ReplicaOn returns block b's copy on the given tape, if one exists. With
// the dense index in place (the common case) this is a single array load.
func (l *Layout) ReplicaOn(b BlockID, tape int) (Replica, bool) {
	if l.posOn != nil {
		if p := l.posOn[int(b)*l.cfg.Tapes+tape]; p != 0 {
			return Replica{Tape: tape, Pos: int(p) - 1}, true
		}
		return Replica{}, false
	}
	for _, r := range l.copies[b] {
		if r.Tape == tape {
			return r, true
		}
	}
	return Replica{}, false
}

// TapeContents returns tape t's occupied positions in ascending position
// order, precomputed at build time. The returned slice must not be
// modified.
func (l *Layout) TapeContents(t int) []Slot { return l.tapeSlots[t] }

// ExpansionFactor returns E = 1 + NR*PH/100, the storage growth caused by
// replication (Section 4.8, Figure 10a).
func (l *Layout) ExpansionFactor() float64 {
	return 1 + float64(l.cfg.Replicas)*l.cfg.HotPercent/100
}

// Validate checks the structural invariants of the layout and returns an
// error describing the first violation. It is used by tests and available to
// callers who construct unusual configurations.
func (l *Layout) Validate() error {
	seen := make(map[Replica]BlockID)
	for b, cs := range l.copies {
		if !l.manual && !l.mutated {
			want := 1
			if l.IsHot(BlockID(b)) && l.cfg.Tapes > 1 {
				want = 1 + l.cfg.Replicas
			}
			if len(cs) != want {
				return fmt.Errorf("block %d has %d copies, want %d", b, len(cs), want)
			}
		}
		tapes := make(map[int]bool)
		for _, c := range cs {
			if c.Tape < 0 || c.Tape >= l.cfg.Tapes || c.Pos < 0 || c.Pos >= l.cfg.TapeCapBlocks {
				return fmt.Errorf("block %d copy %v out of bounds", b, c)
			}
			if tapes[c.Tape] {
				return fmt.Errorf("block %d has two copies on tape %d", b, c.Tape)
			}
			tapes[c.Tape] = true
			if prev, dup := seen[c]; dup {
				return fmt.Errorf("position %v holds both block %d and block %d", c, prev, b)
			}
			seen[c] = BlockID(b)
			if got := l.blockAt[c.Tape][c.Pos]; got != BlockID(b) {
				return fmt.Errorf("blockAt%v = %d, want %d", c, got, b)
			}
		}
	}
	// Every occupied position must be claimed by some copy.
	for t := range l.blockAt {
		for p, b := range l.blockAt[t] {
			if b == -1 {
				continue
			}
			if _, ok := seen[Replica{Tape: t, Pos: p}]; !ok {
				return fmt.Errorf("position (%d,%d) holds block %d but no copy claims it", t, p, b)
			}
		}
	}
	return nil
}
