package layout

import (
	"strings"
	"testing"
)

func TestNewManualBasics(t *testing.T) {
	l, err := NewManual(2, 10, 1, [][]Replica{
		{{Tape: 0, Pos: 3}, {Tape: 1, Pos: 7}}, // hot, replicated
		{{Tape: 1, Pos: 0}},                    // cold
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Tapes() != 2 || l.TapeCap() != 10 {
		t.Errorf("geometry %d x %d, want 2 x 10", l.Tapes(), l.TapeCap())
	}
	if l.NumBlocks() != 2 || l.NumHot() != 1 || l.NumCold() != 1 {
		t.Errorf("counts: blocks=%d hot=%d cold=%d", l.NumBlocks(), l.NumHot(), l.NumCold())
	}
	if !l.Replicated(0) || l.Replicated(1) {
		t.Error("Replicated misreports")
	}
	if b, ok := l.BlockAt(1, 7); !ok || b != 0 {
		t.Errorf("BlockAt(1,7) = %d,%v", b, ok)
	}
	if _, ok := l.BlockAt(0, 9); ok {
		t.Error("empty position reported occupied")
	}
	if cfg := l.Config(); cfg.Tapes != 2 || cfg.TapeCapBlocks != 10 {
		t.Errorf("Config() = %+v", cfg)
	}
}

func TestNewManualErrors(t *testing.T) {
	cases := []struct {
		name   string
		tapes  int
		cap_   int
		numHot int
		copies [][]Replica
		want   string
	}{
		{"no tapes", 0, 10, 0, [][]Replica{{{0, 0}}}, "at least one tape"},
		{"no capacity", 1, 0, 0, [][]Replica{{{0, 0}}}, "at least one tape"},
		{"numHot too big", 1, 10, 2, [][]Replica{{{0, 0}}}, "numHot"},
		{"negative numHot", 1, 10, -1, [][]Replica{{{0, 0}}}, "numHot"},
		{"no blocks", 1, 10, 0, nil, "no blocks"},
		{"empty copies", 1, 10, 0, [][]Replica{{}}, "no copies"},
		{"tape out of range", 1, 10, 0, [][]Replica{{{1, 0}}}, "out of bounds"},
		{"pos out of range", 1, 10, 0, [][]Replica{{{0, 10}}}, "out of bounds"},
		{"negative pos", 1, 10, 0, [][]Replica{{{0, -1}}}, "out of bounds"},
		{"two copies one tape", 2, 10, 0, [][]Replica{{{0, 1}, {0, 2}}}, "two copies"},
		{"position collision", 2, 10, 0, [][]Replica{{{0, 1}}, {{0, 1}}}, "occupied"},
	}
	for _, c := range cases {
		_, err := NewManual(c.tapes, c.cap_, c.numHot, c.copies)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// Validate must detect structural corruption, exercised by tampering with a
// valid layout from inside the package.
func TestValidateDetectsCorruption(t *testing.T) {
	build := func() *Layout {
		l, err := NewManual(2, 10, 1, [][]Replica{
			{{Tape: 0, Pos: 3}, {Tape: 1, Pos: 7}},
			{{Tape: 1, Pos: 0}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	l := build()
	l.blockAt[0][3] = 1 // index disagrees with the copy list
	if err := l.Validate(); err == nil {
		t.Error("mismatched index not detected")
	}

	l = build()
	l.blockAt[0][9] = 0 // phantom occupancy no copy claims
	if err := l.Validate(); err == nil {
		t.Error("unclaimed position not detected")
	}

	l = build()
	l.copies[1] = append(l.copies[1], Replica{Tape: 0, Pos: 5})
	l.blockAt[0][5] = 1
	l.copies[1] = append(l.copies[1], Replica{Tape: 0, Pos: 6}) // 2 copies on tape 0
	l.blockAt[0][6] = 1
	if err := l.Validate(); err == nil {
		t.Error("duplicate per-tape copy not detected")
	}

	l = build()
	l.copies[0][1] = Replica{Tape: 5, Pos: 99} // out of bounds
	if err := l.Validate(); err == nil {
		t.Error("out-of-bounds copy not detected")
	}

	// Non-manual layouts additionally pin replica counts.
	built, err := Build(Config{Tapes: 4, TapeCapBlocks: 20, HotPercent: 20, Replicas: 2, StartPos: 1})
	if err != nil {
		t.Fatal(err)
	}
	built.copies[0] = built.copies[0][:1] // drop a replica
	if err := built.Validate(); err == nil {
		t.Error("missing replica not detected on built layout")
	}
}
