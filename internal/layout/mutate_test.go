package layout

import (
	"sort"
	"testing"
)

func mutLayout(t *testing.T) *Layout {
	t.Helper()
	l, err := Build(Config{Tapes: 4, TapeCapBlocks: 8, HotPercent: 25, Replicas: 1, DataBlocks: 12})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return l
}

func TestAddCopyMaintainsIndexes(t *testing.T) {
	l := mutLayout(t)
	b := BlockID(l.NumHot()) // a cold block: exactly one copy
	if n := len(l.Replicas(b)); n != 1 {
		t.Fatalf("cold block %d has %d copies before mutation", b, n)
	}
	// Find a tape without a copy of b and its first free position.
	dst := -1
	for tp := 0; tp < l.Tapes(); tp++ {
		if _, ok := l.ReplicaOn(b, tp); !ok && l.FreeBlocks(tp) > 0 {
			dst = tp
			break
		}
	}
	if dst < 0 {
		t.Fatal("no tape with spare capacity")
	}
	pos := l.FirstFree(dst, nil)
	if pos < 0 {
		t.Fatal("FirstFree found nothing on a tape with FreeBlocks > 0")
	}
	free := l.FreeBlocks(dst)

	if err := l.AddCopy(b, dst, pos); err != nil {
		t.Fatalf("AddCopy: %v", err)
	}
	if !l.Mutated() {
		t.Error("Mutated() = false after AddCopy")
	}
	if c, ok := l.ReplicaOn(b, dst); !ok || c.Pos != pos {
		t.Errorf("ReplicaOn(%d,%d) = %v,%v, want pos %d", b, dst, c, ok, pos)
	}
	if got, ok := l.BlockAt(dst, pos); !ok || got != b {
		t.Errorf("BlockAt(%d,%d) = %v,%v, want %d", dst, pos, got, ok, b)
	}
	if got := l.FreeBlocks(dst); got != free-1 {
		t.Errorf("FreeBlocks = %d, want %d", got, free-1)
	}
	slots := l.TapeContents(dst)
	if !sort.SliceIsSorted(slots, func(i, j int) bool { return slots[i].Pos < slots[j].Pos }) {
		t.Error("TapeContents not position-sorted after AddCopy")
	}
	found := false
	for _, s := range slots {
		if s.Pos == pos && s.Block == b {
			found = true
		}
	}
	if !found {
		t.Error("new copy missing from TapeContents")
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate after AddCopy: %v", err)
	}

	// Duplicate copy on the same tape and occupied positions are rejected.
	if err := l.AddCopy(b, dst, l.FirstFree(dst, nil)); err == nil {
		t.Error("AddCopy allowed a second copy on the same tape")
	}
	orig := l.Replicas(b)[0]
	other := BlockID(int(b) + 1)
	if err := l.AddCopy(other, orig.Tape, orig.Pos); err == nil {
		t.Error("AddCopy allowed an occupied position")
	}
}

func TestRemoveCopyMaintainsIndexes(t *testing.T) {
	l := mutLayout(t)
	b := BlockID(0) // hot: original + 1 replica
	cs := l.Replicas(b)
	if len(cs) != 2 {
		t.Fatalf("hot block has %d copies, want 2", len(cs))
	}
	victim := cs[1]
	free := l.FreeBlocks(victim.Tape)
	if err := l.RemoveCopy(b, victim.Tape); err != nil {
		t.Fatalf("RemoveCopy: %v", err)
	}
	if _, ok := l.ReplicaOn(b, victim.Tape); ok {
		t.Error("ReplicaOn still sees the removed copy")
	}
	if _, ok := l.BlockAt(victim.Tape, victim.Pos); ok {
		t.Error("BlockAt still occupied after RemoveCopy")
	}
	if got := l.FreeBlocks(victim.Tape); got != free+1 {
		t.Errorf("FreeBlocks = %d, want %d", got, free+1)
	}
	for _, s := range l.TapeContents(victim.Tape) {
		if s.Pos == victim.Pos {
			t.Error("removed copy still listed in TapeContents")
		}
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate after RemoveCopy: %v", err)
	}

	// The sole remaining copy is protected.
	if err := l.RemoveCopy(b, l.Replicas(b)[0].Tape); err == nil {
		t.Error("RemoveCopy deleted the sole copy")
	}
	// Removing a copy that does not exist fails.
	if err := l.RemoveCopy(b, victim.Tape); err == nil {
		t.Error("RemoveCopy succeeded on an absent copy")
	}
}

func TestAddRemoveRoundTrip(t *testing.T) {
	l := mutLayout(t)
	b := BlockID(0)
	victim := l.Replicas(b)[1]
	if err := l.RemoveCopy(b, victim.Tape); err != nil {
		t.Fatalf("RemoveCopy: %v", err)
	}
	if err := l.AddCopy(b, victim.Tape, victim.Pos); err != nil {
		t.Fatalf("AddCopy back: %v", err)
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate after round trip: %v", err)
	}
	if c, ok := l.ReplicaOn(b, victim.Tape); !ok || c != victim {
		t.Errorf("round trip lost the copy: %v, %v", c, ok)
	}
}
