package layout

import (
	"math/rand"
	"testing"
)

// naiveReplicaOn is the pre-index linear scan, kept as the oracle for the
// dense (block, tape) -> position index.
func naiveReplicaOn(l *Layout, b BlockID, tape int) (Replica, bool) {
	for _, r := range l.copies[b] {
		if r.Tape == tape {
			return r, true
		}
	}
	return Replica{}, false
}

func checkIndexAgainstScan(t *testing.T, l *Layout) {
	t.Helper()
	for b := 0; b < l.NumBlocks(); b++ {
		for tape := 0; tape < l.Tapes(); tape++ {
			got, gotOK := l.ReplicaOn(BlockID(b), tape)
			want, wantOK := naiveReplicaOn(l, BlockID(b), tape)
			if gotOK != wantOK || got != want {
				t.Fatalf("ReplicaOn(%d, %d) = %v,%v; scan says %v,%v",
					b, tape, got, gotOK, want, wantOK)
			}
		}
	}
}

func checkTapeContents(t *testing.T, l *Layout) {
	t.Helper()
	for tape := 0; tape < l.Tapes(); tape++ {
		slots := l.TapeContents(tape)
		// Sorted ascending and consistent with BlockAt.
		for i, s := range slots {
			if i > 0 && slots[i-1].Pos >= s.Pos {
				t.Fatalf("tape %d contents not strictly ascending at %d: %v", tape, i, slots)
			}
			if b, ok := l.BlockAt(tape, s.Pos); !ok || b != s.Block {
				t.Fatalf("tape %d slot %v disagrees with BlockAt (%v, %v)", tape, s, b, ok)
			}
		}
		// Complete: every occupied position appears.
		n := 0
		for pos := 0; pos < l.TapeCap(); pos++ {
			if _, ok := l.BlockAt(tape, pos); ok {
				n++
			}
		}
		if n != len(slots) {
			t.Fatalf("tape %d has %d occupied positions, contents table has %d", tape, n, len(slots))
		}
	}
}

func TestReplicaIndexBuiltLayouts(t *testing.T) {
	for _, cfg := range []Config{
		{Tapes: 10, TapeCapBlocks: 448, HotPercent: 10, Replicas: 9, Kind: Vertical, StartPos: 1},
		{Tapes: 10, TapeCapBlocks: 448, HotPercent: 10, Replicas: 4, Kind: Horizontal, StartPos: 0.5},
		{Tapes: 4, TapeCapBlocks: 20, HotPercent: 20},
		{Tapes: 1, TapeCapBlocks: 30, HotPercent: 0},
	} {
		l, err := Build(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		checkIndexAgainstScan(t, l)
		checkTapeContents(t, l)
	}
}

func TestReplicaIndexManualLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		tapes := 1 + rng.Intn(5)
		blocks := 1 + rng.Intn(20)
		// Keep per-tape capacity above the block count: every block could
		// land on the same tape and the placement loop must terminate.
		capBlocks := blocks + 10 + rng.Intn(50)
		used := make(map[Replica]bool)
		copies := make([][]Replica, blocks)
		for b := range copies {
			n := 1 + rng.Intn(tapes)
			for _, tp := range rng.Perm(tapes)[:n] {
				for {
					c := Replica{Tape: tp, Pos: rng.Intn(capBlocks)}
					if !used[c] {
						used[c] = true
						copies[b] = append(copies[b], c)
						break
					}
				}
			}
		}
		l, err := NewManual(tapes, capBlocks, 0, copies)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkIndexAgainstScan(t, l)
		checkTapeContents(t, l)
	}
}

// The scan fallback must behave identically when the dense index is
// disabled (as for layouts past maxDenseIndex).
func TestReplicaIndexFallback(t *testing.T) {
	l, err := Build(Config{Tapes: 10, TapeCapBlocks: 448, HotPercent: 10, Replicas: 9, Kind: Vertical, StartPos: 1})
	if err != nil {
		t.Fatal(err)
	}
	indexed := *l
	l.posOn = nil // force the fallback path
	for b := 0; b < l.NumBlocks(); b++ {
		for tape := 0; tape < l.Tapes(); tape++ {
			got, gotOK := l.ReplicaOn(BlockID(b), tape)
			want, wantOK := indexed.ReplicaOn(BlockID(b), tape)
			if gotOK != wantOK || got != want {
				t.Fatalf("fallback ReplicaOn(%d, %d) = %v,%v; index says %v,%v",
					b, tape, got, gotOK, want, wantOK)
			}
		}
	}
}
