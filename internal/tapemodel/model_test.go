package tapemodel

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestEXB8505XLConstants(t *testing.T) {
	p := EXB8505XL()
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"short forward k=1", p.LocateForward(1), 4.834 + 0.378},
		{"short forward k=28", p.LocateForward(28), 4.834 + 0.378*28},
		{"long forward k=29", p.LocateForward(29), 14.342 + 0.028*29},
		{"long forward k=1000", p.LocateForward(1000), 14.342 + 0.028*1000},
		{"short reverse k=1", p.LocateReverse(1), 4.99 + 0.328},
		{"short reverse k=28", p.LocateReverse(28), 4.99 + 0.328*28},
		{"long reverse k=29", p.LocateReverse(29), 13.74 + 0.0286*29},
		{"read fwd 16MB", p.Read(16, Forward), 0.38 + 1.77*16},
		{"read rev 16MB", p.Read(16, Reverse), 1.77 * 16},
		{"switch", p.SwitchTime(), 81},
	}
	for _, c := range cases {
		if !almostEqual(c.got, c.want) {
			t.Errorf("%s: got %v want %v", c.name, c.got, c.want)
		}
	}
}

func TestZeroDistanceLocateIsFree(t *testing.T) {
	p := EXB8505XL()
	if got := p.LocateForward(0); got != 0 {
		t.Errorf("LocateForward(0) = %v, want 0", got)
	}
	if got := p.LocateReverse(0); got != 0 {
		t.Errorf("LocateReverse(0) = %v, want 0", got)
	}
	sec, dir := p.Locate(100, 100)
	if sec != 0 || dir != Forward {
		t.Errorf("Locate(100,100) = %v,%v, want 0,Forward", sec, dir)
	}
}

func TestLocateDirectionAndBOT(t *testing.T) {
	p := EXB8505XL()

	sec, dir := p.Locate(0, 100)
	if dir != Forward {
		t.Fatalf("Locate(0,100) direction = %v, want Forward", dir)
	}
	if want := p.LocateForward(100); !almostEqual(sec, want) {
		t.Errorf("Locate(0,100) = %v, want %v", sec, want)
	}

	sec, dir = p.Locate(100, 40)
	if dir != Reverse {
		t.Fatalf("Locate(100,40) direction = %v, want Reverse", dir)
	}
	if want := p.LocateReverse(60); !almostEqual(sec, want) {
		t.Errorf("Locate(100,40) = %v, want %v", sec, want)
	}

	// Locating to physical beginning of tape adds the 21 s BOT overhead.
	sec, _ = p.Locate(100, 0)
	if want := p.LocateReverse(100) + 21; !almostEqual(sec, want) {
		t.Errorf("Locate(100,0) = %v, want %v (reverse + BOT)", sec, want)
	}
}

func TestRewindAndFullSwitch(t *testing.T) {
	p := EXB8505XL()
	if got := p.Rewind(0); got != 0 {
		t.Errorf("Rewind(0) = %v, want 0", got)
	}
	want := p.LocateReverse(500) + 21
	if got := p.Rewind(500); !almostEqual(got, want) {
		t.Errorf("Rewind(500) = %v, want %v", got, want)
	}
	if got := p.FullSwitch(500); !almostEqual(got, want+81) {
		t.Errorf("FullSwitch(500) = %v, want %v", got, want+81)
	}
	// Switching with the head at BOT costs only the mechanical 81 s.
	if got := p.FullSwitch(0); !almostEqual(got, 81) {
		t.Errorf("FullSwitch(0) = %v, want 81", got)
	}
}

func TestStreamingRate(t *testing.T) {
	p := EXB8505XL()
	// 1.77 s/MB -> about 0.565 MB/s, the EXB-8505XL native streaming rate.
	got := p.StreamingRateMBps()
	if math.Abs(got-1/1.77) > 1e-12 {
		t.Errorf("StreamingRateMBps = %v, want %v", got, 1/1.77)
	}
}

// Property: locate time is monotonically non-decreasing in distance within
// the same direction (the short->long segment boundary may introduce a jump,
// but never a decrease for these fitted constants).
func TestLocateMonotonic(t *testing.T) {
	for _, p := range []*Profile{EXB8505XL(), FastHelical()} {
		f := func(a, b uint16) bool {
			x, y := float64(a), float64(b)
			if x > y {
				x, y = y, x
			}
			return p.LocateForward(x) <= p.LocateForward(y)+1e-9 &&
				p.LocateReverse(x) <= p.LocateReverse(y)+1e-9
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// Property: a locate is never free for a positive distance, and reads scale
// with the amount of data.
func TestPositiveCosts(t *testing.T) {
	p := EXB8505XL()
	f := func(a uint16) bool {
		k := float64(a) + 0.5
		return p.LocateForward(k) > 0 &&
			p.LocateReverse(k) > 0 &&
			p.Read(k, Forward) > 0 &&
			p.Read(k, Reverse) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Locate(from,to) agrees with the direction-specific functions.
func TestLocateConsistency(t *testing.T) {
	p := EXB8505XL()
	f := func(a, b uint16) bool {
		from, to := float64(a), float64(b)
		sec, dir := p.Locate(from, to)
		switch {
		case to > from:
			return dir == Forward && almostEqual(sec, p.LocateForward(to-from))
		case to < from:
			want := p.LocateReverse(from - to)
			if to == 0 {
				want += p.BOTOverhead
			}
			return dir == Reverse && almostEqual(sec, want)
		default:
			return sec == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The paper observes that a "random walk" of locates and reads is predicted
// accurately by the model; here we check that the model at least yields the
// documented breakpoint behaviour: short locates are cheaper per-operation
// than long ones near the boundary, and a long locate of the whole tape
// (7 GB = 7168 MB) takes minutes, not milliseconds.
func TestQualitativeShape(t *testing.T) {
	p := EXB8505XL()
	fullTape := p.LocateForward(7168)
	if fullTape < 120 || fullTape > 600 {
		t.Errorf("full-tape forward locate = %v s, expected minutes (120..600 s)", fullTape)
	}
	// Crossing the short/long boundary produces a documented upward jump
	// (14.342+0.028*29 > 4.834+0.378*28 is false; the fitted long segment
	// actually undercuts slightly at the boundary -- verify the fitted
	// values rather than assuming continuity).
	short28 := p.LocateForward(28)
	long29 := p.LocateForward(29)
	if !almostEqual(short28, 15.418) {
		t.Errorf("LocateForward(28) = %v, want 15.418", short28)
	}
	if !almostEqual(long29, 15.154) {
		t.Errorf("LocateForward(29) = %v, want 15.154", long29)
	}
}

func TestProfileByName(t *testing.T) {
	if p := ProfileByName(""); p == nil || p.Name != EXB8505XL().Name {
		t.Errorf("default profile = %v, want EXB-8505XL", p)
	}
	if p := ProfileByName("exb8505xl"); p == nil {
		t.Error("exb8505xl not found")
	}
	if p := ProfileByName("fast"); p == nil {
		t.Error("fast not found")
	}
	if p := ProfileByName("nonsense"); p != nil {
		t.Errorf("nonsense resolved to %v, want nil", p)
	}
}

func TestDirectionString(t *testing.T) {
	if Forward.String() != "forward" || Reverse.String() != "reverse" {
		t.Error("Direction.String mismatch")
	}
}
