package tapemodel

import (
	"math"
	"testing"
)

// tableProfiles are the piecewise-linear profiles the table must reproduce.
func tableProfiles() []*Profile {
	return []*Profile{EXB8505XL(), FastHelical()}
}

// FuzzCostTableEquivalence proves the dense cost table reproduces the
// Profile piecewise-linear costs exactly -- bit-equal float64, not merely
// within tolerance -- for arbitrary block pairs on the grid. Bit equality
// is the property the simulator relies on: the table-backed cost model
// must leave every event stream unchanged.
func FuzzCostTableEquivalence(f *testing.F) {
	f.Add(0, 0, 16.0)
	f.Add(0, 447, 16.0)
	f.Add(447, 0, 16.0)
	f.Add(13, 12, 16.0)
	f.Add(100, 100, 16.0)
	f.Add(5, 200, 0.25)
	f.Add(31, 7, 2048.0)
	f.Fuzz(func(t *testing.T, from, to int, blockMB float64) {
		const maxBlocks = 448
		if from < 0 || from > maxBlocks || to < 0 || to > maxBlocks {
			t.Skip()
		}
		if blockMB <= 0 || math.IsInf(blockMB, 0) || math.IsNaN(blockMB) || blockMB > 1e6 {
			t.Skip()
		}
		for _, prof := range tableProfiles() {
			tab := NewCostTable(prof, blockMB, maxBlocks)
			if tab == nil {
				// Inexact grid: rejecting the table is the correct
				// behavior, nothing to compare.
				continue
			}
			fromMB := float64(from) * blockMB
			toMB := float64(to) * blockMB

			gotSec, gotDir := tab.Locate(from, to)
			wantSec, wantDir := prof.Locate(fromMB, toMB)
			if math.Float64bits(gotSec) != math.Float64bits(wantSec) || gotDir != wantDir {
				t.Errorf("%s: Locate(%d, %d) block=%v = (%v, %v), profile says (%v, %v)",
					prof.Name, from, to, blockMB, gotSec, gotDir, wantSec, wantDir)
			}
			if got, want := tab.ReadBlock(gotDir), prof.Read(blockMB, wantDir); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%s: ReadBlock(%v) block=%v = %v, profile says %v",
					prof.Name, gotDir, blockMB, got, want)
			}
			if got, want := tab.Rewind(from), prof.Rewind(fromMB); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%s: Rewind(%d) block=%v = %v, profile says %v",
					prof.Name, from, blockMB, got, want)
			}
			if got, want := tab.FullSwitch(from), prof.FullSwitch(fromMB); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%s: FullSwitch(%d) block=%v = %v, profile says %v",
					prof.Name, from, blockMB, got, want)
			}
		}
	})
}

// TestCostTableExhaustiveGrid sweeps every block pair of the benchmark
// configuration's grid (448 16 MB blocks) and asserts bit equality on the
// complete Locate surface, plus the scalar costs, for each tabulable
// profile. The fuzz test samples; this nails the exact grid the simulator
// runs on.
func TestCostTableExhaustiveGrid(t *testing.T) {
	const (
		blockMB   = 16.0
		maxBlocks = 448
	)
	for _, prof := range tableProfiles() {
		tab := NewCostTable(prof, blockMB, maxBlocks)
		if tab == nil {
			t.Fatalf("%s: expected a table on the exact 16 MB grid", prof.Name)
		}
		for from := 0; from <= maxBlocks; from++ {
			fromMB := float64(from) * blockMB
			if got, want := tab.Rewind(from), prof.Rewind(fromMB); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: Rewind(%d) = %v, profile says %v", prof.Name, from, got, want)
			}
			for to := 0; to <= maxBlocks; to++ {
				gotSec, gotDir := tab.Locate(from, to)
				wantSec, wantDir := prof.Locate(fromMB, float64(to)*blockMB)
				if math.Float64bits(gotSec) != math.Float64bits(wantSec) || gotDir != wantDir {
					t.Fatalf("%s: Locate(%d, %d) = (%v, %v), profile says (%v, %v)",
						prof.Name, from, to, gotSec, gotDir, wantSec, wantDir)
				}
			}
		}
		if got, want := tab.SwitchTime(), prof.SwitchTime(); got != want {
			t.Errorf("%s: SwitchTime = %v, want %v", prof.Name, got, want)
		}
		if got, want := tab.InitialLoad(), prof.InitialLoad(); got != want {
			t.Errorf("%s: InitialLoad = %v, want %v", prof.Name, got, want)
		}
	}
}

// TestSerpentineBypassesTable asserts the serpentine model gets no table --
// its locate cost depends on physical track geometry, not logical block
// distance, so distance-indexed entries cannot represent it -- and that a
// CostModel built over it still serves costs through the interface path.
func TestSerpentineBypassesTable(t *testing.T) {
	s := DLT7000Class()
	if tab := NewCostTable(s, 16.0, 448); tab != nil {
		t.Fatal("serpentine positioner must not get a cost table")
	}
}

// TestInexactGridRejected asserts that a block size whose multiples do not
// all land exactly on the float64 grid yields no table: distance-indexed
// lookups could then differ from Profile.Locate's megabyte-offset
// subtraction in the last bit, and the table is only allowed to exist when
// it is bit-exact. 0.1 is the canonical non-representable decimal;
// powers of two (16, 0.25) must keep their tables.
func TestInexactGridRejected(t *testing.T) {
	prof := EXB8505XL()
	if tab := NewCostTable(prof, 0.1, 448); tab != nil {
		t.Error("0.1 MB blocks are not exactly representable; table must be rejected")
	}
	if tab := NewCostTable(prof, 16.0, 448); tab == nil {
		t.Error("16 MB blocks are exact; table must be built")
	}
	if tab := NewCostTable(prof, 0.25, 448); tab == nil {
		t.Error("0.25 MB blocks are exact; table must be built")
	}
	if tab := NewCostTable(prof, 16.0, -1); tab != nil {
		t.Error("negative grid must be rejected")
	}
}
