package tapemodel

// Positioner abstracts the timing behaviour of a tape drive inside a
// robotic library. Profile implements it for single-pass (helical-scan)
// technologies -- the paper's setting -- and Serpentine implements it for
// multi-track linear technologies (Travan, DLT, IBM 3590), which the paper
// explicitly flags as needing modified algorithms. All offsets and
// distances are megabytes, all times seconds.
type Positioner interface {
	// Locate returns the time to reposition the head from byte offset
	// `from` MB to offset `to` MB and the direction of the resulting
	// motion (which the read model may care about).
	Locate(from, to float64) (seconds float64, dir Direction)
	// Read returns the time to transfer k megabytes after a locate in the
	// given direction.
	Read(k float64, dir Direction) float64
	// Rewind returns the time to return the head to the unload position
	// from byte offset `from` MB (drives must rewind before ejecting).
	Rewind(from float64) float64
	// SwitchTime returns the mechanical eject + robot + load time.
	SwitchTime() float64
	// FullSwitch returns Rewind(from) + SwitchTime().
	FullSwitch(from float64) float64
	// InitialLoad returns the cost of loading a tape into an empty drive
	// (robotic motion + load; nothing to rewind or eject).
	InitialLoad() float64
	// StreamingRateMBps returns the sustained transfer rate.
	StreamingRateMBps() float64
	// DisplayName identifies the model for reports.
	DisplayName() string
}

// InitialLoad returns the cost of loading a tape into an empty drive.
func (p *Profile) InitialLoad() float64 { return p.RobotTime + p.LoadTime }

// DisplayName returns the profile name.
func (p *Profile) DisplayName() string { return p.Name }

var _ Positioner = (*Profile)(nil)

// Serpentine models a multi-track linear ("serpentine") tape drive. The
// tape is divided into Tracks tracks of TrackMB each; logical offsets fill
// track 0 in the physical forward direction, track 1 in reverse, and so on.
// Positioning consists of a high-speed longitudinal seek to the target's
// physical position along the tape plus a per-track head step, so -- unlike
// the helical-scan model -- blocks that are logically distant can be
// physically adjacent. The constants below are synthetic but sized like a
// DLT-class drive; the type exists so the paper's caveat that its
// algorithms "would need to be modified for serpentine tapes" can be
// studied, not to reproduce any particular drive.
type Serpentine struct {
	Name    string
	Tracks  int
	TrackMB float64

	SeekStartup float64 // fixed cost of any locate
	SeekRateMB  float64 // longitudinal repositioning speed, MB of track length per second
	TrackStep   float64 // per-track head-step time

	ReadRate    Segment // transfer time for k MB
	BOTOverhead float64 // extra cost of returning to the load point

	EjectTime float64
	RobotTime float64
	LoadTime  float64
}

// DLT7000Class returns a synthetic serpentine profile with DLT7000-like
// characteristics scaled to the study's 7 GB tapes: 32 tracks of 224 MB,
// 5 MB/s streaming, fast longitudinal seeks.
func DLT7000Class() *Serpentine {
	return &Serpentine{
		Name:        "synthetic DLT7000-class serpentine drive",
		Tracks:      32,
		TrackMB:     224,
		SeekStartup: 2.0,
		SeekRateMB:  40, // about 6 s to cross a full track
		TrackStep:   1.5,
		ReadRate:    Segment{Startup: 0.2, PerMB: 0.2},
		BOTOverhead: 8,
		EjectTime:   15,
		RobotTime:   20,
		LoadTime:    40,
	}
}

// geometry returns the track index and physical longitudinal position of a
// byte offset. Odd tracks run backwards, so consecutive tracks meet at the
// turnaround points.
func (s *Serpentine) geometry(off float64) (track int, lengthwise float64) {
	track = int(off / s.TrackMB)
	if track >= s.Tracks {
		track = s.Tracks - 1
	}
	u := off - float64(track)*s.TrackMB
	if track%2 == 1 {
		u = s.TrackMB - u
	}
	return track, u
}

// Locate seeks longitudinally to the target's physical position and steps
// the head across the intervening tracks. The direction reported is the
// logical direction of motion.
func (s *Serpentine) Locate(from, to float64) (float64, Direction) {
	if from == to {
		return 0, Forward
	}
	ft, fu := s.geometry(from)
	tt, tu := s.geometry(to)
	longitudinal := fu - tu
	if longitudinal < 0 {
		longitudinal = -longitudinal
	}
	steps := ft - tt
	if steps < 0 {
		steps = -steps
	}
	sec := s.SeekStartup + longitudinal/s.SeekRateMB + float64(steps)*s.TrackStep
	if to == 0 {
		sec += s.BOTOverhead
	}
	if to > from {
		return sec, Forward
	}
	return sec, Reverse
}

// Read transfers k megabytes; serpentine drives stream at the same rate in
// either logical direction.
func (s *Serpentine) Read(k float64, _ Direction) float64 {
	if k <= 0 {
		return 0
	}
	return s.ReadRate.Time(k)
}

// Rewind returns the head to the load point.
func (s *Serpentine) Rewind(from float64) float64 {
	if from <= 0 {
		return 0
	}
	sec, _ := s.Locate(from, 0)
	return sec
}

// SwitchTime returns eject + robot + load.
func (s *Serpentine) SwitchTime() float64 { return s.EjectTime + s.RobotTime + s.LoadTime }

// FullSwitch returns the complete tape replacement cost.
func (s *Serpentine) FullSwitch(from float64) float64 { return s.Rewind(from) + s.SwitchTime() }

// InitialLoad returns the empty-drive load cost.
func (s *Serpentine) InitialLoad() float64 { return s.RobotTime + s.LoadTime }

// StreamingRateMBps returns the sustained transfer rate.
func (s *Serpentine) StreamingRateMBps() float64 {
	if s.ReadRate.PerMB == 0 {
		return 0
	}
	return 1 / s.ReadRate.PerMB
}

// DisplayName returns the drive name.
func (s *Serpentine) DisplayName() string { return s.Name }

var _ Positioner = (*Serpentine)(nil)

// PositionerByName resolves any registered drive model: the helical
// profiles of ProfileByName plus "dlt7000" and "lto9" for the synthetic
// serpentine drives. It returns nil for unknown names.
func PositionerByName(name string) Positioner {
	if p := ProfileByName(name); p != nil {
		return p
	}
	switch name {
	case "dlt7000", "serpentine":
		return DLT7000Class()
	case "lto9", "LTO-9":
		return LTO9Class()
	}
	return nil
}
