// Package tapemodel implements the tape drive timing model of Hillyer,
// Rastogi and Silberschatz (ICDE 1999), Section 2.1.
//
// The model targets single-pass (helical-scan) tape technologies in which the
// drive can read an entire tape in one forward pass and must rewind a tape
// before ejecting it. Positioning time is piecewise linear in the distance
// traversed, with separate fits for short and long motion in the forward and
// reverse directions. All times are in seconds; all distances are in
// megabytes (the paper fits its model to 1 MB logical blocks, so one unit of
// distance is one megabyte of tape).
package tapemodel

// Segment is one linear piece of the positioning model: a fixed startup time
// plus a per-megabyte term.
type Segment struct {
	Startup float64 // seconds
	PerMB   float64 // seconds per megabyte traversed
}

// Time evaluates the segment for a motion of k megabytes.
func (s Segment) Time(k float64) float64 {
	return s.Startup + s.PerMB*k
}

// Direction of the most recent head motion. The read-time model depends on
// whether the preceding locate was forward or reverse.
type Direction int

const (
	Forward Direction = iota
	Reverse
)

// String returns "forward" or "reverse".
func (d Direction) String() string {
	if d == Reverse {
		return "reverse"
	}
	return "forward"
}

// Profile describes the timing behaviour of one drive/library combination.
type Profile struct {
	Name string

	// Locate segments. Motion of k MB uses the Short segment when
	// k <= ShortMaxMB and the Long segment otherwise.
	ShortForward Segment
	LongForward  Segment
	ShortReverse Segment
	LongReverse  Segment
	ShortMaxMB   float64

	// BOTOverhead is the additional time incurred when a locate ends at the
	// physical beginning of the tape (the drive performs housekeeping
	// whenever it fully rewinds).
	BOTOverhead float64

	// Read segments: time to read k MB after a locate in the given
	// direction. (The paper measures 0.38 + 1.77k after a forward locate and
	// 1.77k after a reverse locate for the EXB-8505XL.)
	ReadForward Segment
	ReadReverse Segment

	// Tape switch components. A full switch is eject + robot + load; the
	// mandatory rewind before eject is charged separately via Rewind.
	EjectTime float64
	RobotTime float64
	LoadTime  float64
}

// LocateForward returns the time to move the head forward past k megabytes.
// A zero-distance motion is free: no locate command is issued and the read
// continues streaming.
func (p *Profile) LocateForward(k float64) float64 {
	if k <= 0 {
		return 0
	}
	if k <= p.ShortMaxMB {
		return p.ShortForward.Time(k)
	}
	return p.LongForward.Time(k)
}

// LocateReverse returns the time to move the head backward past k megabytes.
func (p *Profile) LocateReverse(k float64) float64 {
	if k <= 0 {
		return 0
	}
	if k <= p.ShortMaxMB {
		return p.ShortReverse.Time(k)
	}
	return p.LongReverse.Time(k)
}

// Locate returns the time to reposition the head from byte offset `from` MB
// to offset `to` MB, including the beginning-of-tape overhead when the target
// is offset 0, together with the direction of the motion. When from == to the
// motion is free and the reported direction is Forward (streaming continues).
func (p *Profile) Locate(from, to float64) (seconds float64, dir Direction) {
	switch {
	case to > from:
		seconds = p.LocateForward(to - from)
		dir = Forward
	case to < from:
		seconds = p.LocateReverse(from - to)
		dir = Reverse
		if to == 0 {
			seconds += p.BOTOverhead
		}
	default:
		return 0, Forward
	}
	return seconds, dir
}

// Read returns the time to transfer k megabytes when the preceding head
// motion was in direction dir.
func (p *Profile) Read(k float64, dir Direction) float64 {
	if k <= 0 {
		return 0
	}
	if dir == Reverse {
		return p.ReadReverse.Time(k)
	}
	return p.ReadForward.Time(k)
}

// Rewind returns the time to rewind from byte offset `from` MB to the
// physical beginning of the tape (a reverse locate plus the BOT overhead).
// Rewinding from offset 0 is free.
func (p *Profile) Rewind(from float64) float64 {
	if from <= 0 {
		return 0
	}
	return p.LocateReverse(from) + p.BOTOverhead
}

// SwitchTime returns the mechanical tape-switch time: eject the old tape,
// move the robotic arm, and load the new tape. It excludes the rewind of the
// old tape, which depends on the head position (see Rewind).
func (p *Profile) SwitchTime() float64 {
	return p.EjectTime + p.RobotTime + p.LoadTime
}

// FullSwitch returns the complete cost of replacing the mounted tape when the
// head sits at byte offset `from` MB: rewind, eject, robotic motion, load.
func (p *Profile) FullSwitch(from float64) float64 {
	return p.Rewind(from) + p.SwitchTime()
}

// StreamingRateMBps returns the sustained forward transfer rate implied by
// the read model (the asymptotic megabytes per second for long reads).
func (p *Profile) StreamingRateMBps() float64 {
	if p.ReadForward.PerMB == 0 {
		return 0
	}
	return 1 / p.ReadForward.PerMB
}
