package tapemodel

import "math"

// CostTable is a dense, devirtualized evaluation of a Profile on a block
// grid: every locate-forward, locate-reverse, and rewind cost for motions of
// 0..Max blocks is precomputed, along with the per-block read times and the
// mechanical switch constants. Simulation hot paths (the kernel's read
// issue, the scheduler cost model, the envelope's prefix-bandwidth scans)
// evaluate millions of these costs per run; the table turns each one from
// two interface calls plus piecewise-linear arithmetic into a slice load.
//
// The table is exact, not approximate: every entry is produced by the very
// Profile method it replaces, and a table is only built when the block grid
// itself is exact in float64 (every product d*blockMB rounds to the true
// real value, verified with an FMA residual check). Under that condition
// the float64 subtraction PosMB(to)-PosMB(from) performed by Profile.Locate
// yields exactly (to-from)*blockMB, so indexing by integer block distance
// reproduces the interface path bit for bit. Off-grid positions, non-grid
// block sizes, and non-Profile positioners (the serpentine model, whose
// cost is not a function of logical distance) simply get no table and keep
// the interface path.
type CostTable struct {
	Max int // highest block index (and distance) covered

	locFwd []float64 // locFwd[d]: Profile.LocateForward(d*blockMB)
	locRev []float64 // locRev[d]: Profile.LocateReverse(d*blockMB)
	rewind []float64 // rewind[h]: Profile.Rewind(h*blockMB)

	readFwd float64 // Profile.Read(blockMB, Forward)
	readRev float64 // Profile.Read(blockMB, Reverse)
	bot     float64 // Profile.BOTOverhead
	switchT float64 // Profile.SwitchTime()
	load    float64 // Profile.InitialLoad()
}

// gridExact reports whether every block boundary 0..max lands exactly on
// the float64 grid: d*blockMB must round to the true real product for every
// d. math.FMA(d, blockMB, -d*blockMB) computes the rounding residual with a
// single rounding, so it is zero exactly when the product is exact. When
// all products are exact, so is every difference of two boundaries, which
// is what makes distance-indexed lookups bit-equal to Profile.Locate.
func gridExact(blockMB float64, max int) bool {
	for d := 0; d <= max; d++ {
		p := float64(d) * blockMB
		if math.FMA(float64(d), blockMB, -p) != 0 {
			return false
		}
	}
	return true
}

// NewCostTable builds the dense cost table for positioner p on a grid of
// maxBlocks block boundaries of blockMB megabytes each. It returns nil --
// callers then stay on the interface path -- when p is not a piecewise
// -linear Profile (the serpentine model's locate cost depends on physical
// track geometry, not logical distance) or when the grid is not exactly
// representable in float64.
func NewCostTable(p Positioner, blockMB float64, maxBlocks int) *CostTable {
	prof, ok := p.(*Profile)
	if !ok || blockMB <= 0 || maxBlocks < 0 || !gridExact(blockMB, maxBlocks) {
		return nil
	}
	t := &CostTable{
		Max:     maxBlocks,
		locFwd:  make([]float64, maxBlocks+1),
		locRev:  make([]float64, maxBlocks+1),
		rewind:  make([]float64, maxBlocks+1),
		readFwd: prof.Read(blockMB, Forward),
		readRev: prof.Read(blockMB, Reverse),
		bot:     prof.BOTOverhead,
		switchT: prof.SwitchTime(),
		load:    prof.InitialLoad(),
	}
	for d := 0; d <= maxBlocks; d++ {
		k := float64(d) * blockMB
		t.locFwd[d] = prof.LocateForward(k)
		t.locRev[d] = prof.LocateReverse(k)
		t.rewind[d] = prof.Rewind(k)
	}
	return t
}

// Covers reports whether the block position lies on the table's grid.
func (t *CostTable) Covers(pos int) bool { return pos >= 0 && pos <= t.Max }

// Locate returns Profile.Locate for the motion between two on-grid block
// boundaries, bit-equal to the interface path (including the
// beginning-of-tape overhead on reverse motion to position 0).
func (t *CostTable) Locate(from, to int) (float64, Direction) {
	switch {
	case to > from:
		return t.locFwd[to-from], Forward
	case to < from:
		sec := t.locRev[from-to]
		if to == 0 {
			sec += t.bot
		}
		return sec, Reverse
	}
	return 0, Forward
}

// ReadBlock returns the one-block read time after a locate in direction
// dir, bit-equal to Profile.Read(blockMB, dir).
func (t *CostTable) ReadBlock(dir Direction) float64 {
	if dir == Reverse {
		return t.readRev
	}
	return t.readFwd
}

// Rewind returns Profile.Rewind from an on-grid block boundary.
func (t *CostTable) Rewind(from int) float64 { return t.rewind[from] }

// FullSwitch returns Profile.FullSwitch from an on-grid block boundary.
func (t *CostTable) FullSwitch(from int) float64 { return t.rewind[from] + t.switchT }

// SwitchTime returns the mechanical eject + robot + load time.
func (t *CostTable) SwitchTime() float64 { return t.switchT }

// InitialLoad returns the empty-drive load cost.
func (t *CostTable) InitialLoad() float64 { return t.load }
