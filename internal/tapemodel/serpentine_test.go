package tapemodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSerpentineGeometry(t *testing.T) {
	s := DLT7000Class()
	// Track 0 runs forward: offset 10 sits 10 MB down the tape.
	tr, u := s.geometry(10)
	if tr != 0 || u != 10 {
		t.Errorf("geometry(10) = track %d pos %v, want 0, 10", tr, u)
	}
	// Track 1 runs backward: offset TrackMB+10 sits TrackMB-10 down.
	tr, u = s.geometry(s.TrackMB + 10)
	if tr != 1 || math.Abs(u-(s.TrackMB-10)) > 1e-9 {
		t.Errorf("geometry = track %d pos %v, want 1, %v", tr, u, s.TrackMB-10)
	}
}

// The defining serpentine property: blocks that are logically far apart can
// be physically adjacent at a track turnaround, making the locate much
// cheaper than a same-distance move within one track.
func TestSerpentineTurnaroundCheapLocate(t *testing.T) {
	s := DLT7000Class()
	// End of track 0 to start of track 1 (logically adjacent AND physically
	// adjacent): distance TrackMB in logical terms would be mid-tape.
	nearTurn, _ := s.Locate(s.TrackMB-1, s.TrackMB+1) // 2 MB logical, ~0 longitudinal
	sameTrack, _ := s.Locate(0, s.TrackMB-1)          // full track longitudinally
	if nearTurn >= sameTrack {
		t.Errorf("turnaround locate %v should be far cheaper than full-track %v",
			nearTurn, sameTrack)
	}
	// Offsets TrackMB-1 and TrackMB+1 share the same longitudinal position
	// (1 MB from the turnaround), so the locate is startup + one track step.
	want := s.SeekStartup + s.TrackStep
	if math.Abs(nearTurn-want) > 1e-9 {
		t.Errorf("turnaround locate = %v, want %v", nearTurn, want)
	}
}

func TestSerpentineLocateSymmetryAndBOT(t *testing.T) {
	s := DLT7000Class()
	fwd, d1 := s.Locate(100, 500)
	rev, d2 := s.Locate(500, 100)
	if d1 != Forward || d2 != Reverse {
		t.Error("direction labels wrong")
	}
	if math.Abs(fwd-rev) > 1e-9 {
		t.Errorf("serpentine seeks should be symmetric: %v vs %v", fwd, rev)
	}
	withBOT, _ := s.Locate(500, 0)
	without, _ := s.Locate(500, 1)
	if withBOT <= without {
		t.Error("locating to the load point should cost the BOT overhead")
	}
	if sec, _ := s.Locate(42, 42); sec != 0 {
		t.Error("zero-distance locate should be free")
	}
}

func TestSerpentineInterface(t *testing.T) {
	s := DLT7000Class()
	if s.Read(10, Forward) != s.Read(10, Reverse) {
		t.Error("serpentine reads should not depend on direction")
	}
	if s.Read(0, Forward) != 0 {
		t.Error("empty read should be free")
	}
	if s.Rewind(0) != 0 {
		t.Error("rewind from the load point should be free")
	}
	if s.Rewind(1000) <= 0 {
		t.Error("rewind should cost time")
	}
	if s.SwitchTime() != 75 {
		t.Errorf("switch = %v, want 75", s.SwitchTime())
	}
	if s.FullSwitch(1000) != s.Rewind(1000)+75 {
		t.Error("FullSwitch mismatch")
	}
	if s.InitialLoad() != 60 {
		t.Errorf("InitialLoad = %v, want 60", s.InitialLoad())
	}
	if s.StreamingRateMBps() != 5 {
		t.Errorf("streaming = %v MB/s, want 5", s.StreamingRateMBps())
	}
	if s.DisplayName() == "" {
		t.Error("empty display name")
	}
}

func TestPositionerByName(t *testing.T) {
	if p := PositionerByName("exb8505xl"); p == nil || p.DisplayName() != EXB8505XL().Name {
		t.Error("helical profile not resolved")
	}
	if p := PositionerByName("dlt7000"); p == nil {
		t.Error("dlt7000 not resolved")
	}
	if p := PositionerByName("serpentine"); p == nil {
		t.Error("serpentine alias not resolved")
	}
	if p := PositionerByName("bogus"); p != nil {
		t.Error("bogus name resolved")
	}
}

// Property: serpentine locate cost is bounded by a full-tape worst case and
// is never negative.
func TestSerpentineLocateBounds(t *testing.T) {
	s := DLT7000Class()
	capMB := float64(s.Tracks) * s.TrackMB
	worst := s.SeekStartup + s.TrackMB/s.SeekRateMB +
		float64(s.Tracks)*s.TrackStep + s.BOTOverhead
	f := func(a, b uint16) bool {
		from := float64(a) * capMB / 65536
		to := float64(b) * capMB / 65536
		sec, _ := s.Locate(from, to)
		return sec >= 0 && sec <= worst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
