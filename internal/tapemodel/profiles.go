package tapemodel

// EXB8505XL returns the timing profile measured by the paper for an Exabyte
// EXB-8505XL helical-scan drive inside an EXB-210 library (Section 2.1):
//
//   - forward locate past k MB: 4.834 + 0.378k s for k <= 28, else 14.342 + 0.028k s
//   - reverse locate past k MB: 4.99 + 0.328k s for k <= 28, else 13.74 + 0.0286k s
//   - locating to the physical beginning of tape: +21 s
//   - reading k MB after a forward locate: 0.38 + 1.77k s; after a reverse
//     locate: 1.77k s
//   - tape switch: 19 s eject + 20 s robotic arm + 42 s load = 81 s
//
// The paper validates this model against hardware measurements with a mean
// locate-time error of 0.5% and a mean read-time error of 2.6%.
func EXB8505XL() *Profile {
	return &Profile{
		Name:         "Exabyte EXB-8505XL / EXB-210",
		ShortForward: Segment{Startup: 4.834, PerMB: 0.378},
		LongForward:  Segment{Startup: 14.342, PerMB: 0.028},
		ShortReverse: Segment{Startup: 4.99, PerMB: 0.328},
		LongReverse:  Segment{Startup: 13.74, PerMB: 0.0286},
		ShortMaxMB:   28,
		BOTOverhead:  21,
		ReadForward:  Segment{Startup: 0.38, PerMB: 1.77},
		ReadReverse:  Segment{Startup: 0, PerMB: 1.77},
		EjectTime:    19,
		RobotTime:    20,
		LoadTime:     42,
	}
}

// FastHelical returns a hypothetical higher-performance helical-scan profile:
// roughly 6x the streaming rate and twice the positioning speed of the
// EXB-8505XL, with a faster library mechanism. The paper notes (Section 2.1)
// that raising drive performance improves absolute numbers but does not alter
// the conclusions about scheduling, replication, and placement; this profile
// exists so that claim can be checked.
func FastHelical() *Profile {
	return &Profile{
		Name:         "hypothetical fast helical drive",
		ShortForward: Segment{Startup: 2.4, PerMB: 0.19},
		LongForward:  Segment{Startup: 7.2, PerMB: 0.014},
		ShortReverse: Segment{Startup: 2.5, PerMB: 0.165},
		LongReverse:  Segment{Startup: 6.9, PerMB: 0.0143},
		ShortMaxMB:   28,
		BOTOverhead:  10,
		ReadForward:  Segment{Startup: 0.2, PerMB: 0.295},
		ReadReverse:  Segment{Startup: 0, PerMB: 0.295},
		EjectTime:    10,
		RobotTime:    10,
		LoadTime:     20,
	}
}

// LTO9Class returns a synthetic serpentine profile with LTO-9-like drive
// characteristics scaled to the study's 7 GB tapes, the way DLT7000Class
// scales a DLT: 56 tracks of 128 MB, ~400 MB/s streaming (PerMB = 1/400),
// sub-second track steps, and a modern library mechanism an order of
// magnitude faster than the EXB-210. Real LTO-9 media hold 18 TB across
// thousands of wraps; shrinking the geometry while keeping the streaming
// rate and the seek/transfer ratios preserves what the scheduling study
// cares about -- positioning is cheap relative to the paper's drives and
// physically adjacent blocks can be logically distant -- without changing
// the jukebox's capacity axis. The type exists to unfreeze the hardware
// axis beyond the 1999 profiles, not to reproduce a particular drive.
func LTO9Class() *Serpentine {
	return &Serpentine{
		Name:        "synthetic LTO-9-class serpentine drive",
		Tracks:      56,
		TrackMB:     128,
		SeekStartup: 1.0,
		SeekRateMB:  16, // 8 s to cross a full track lengthwise
		TrackStep:   0.5,
		ReadRate:    Segment{Startup: 0.05, PerMB: 0.0025},
		BOTOverhead: 3,
		EjectTime:   6,
		RobotTime:   8,
		LoadTime:    12,
	}
}

// ProfileByName resolves a profile by its registry name. Recognized names are
// "exb8505xl" (default hardware of the paper) and "fast" (the hypothetical
// fast drive). It returns nil for unknown names.
func ProfileByName(name string) *Profile {
	switch name {
	case "", "exb8505xl", "EXB-8505XL":
		return EXB8505XL()
	case "fast", "fasthelical":
		return FastHelical()
	}
	return nil
}
