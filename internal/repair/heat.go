// Package repair implements the self-healing replication subsystem: a
// decayed per-block heat tracker and a planner that turns copy losses into
// job-id'd two-step repair jobs (read a surviving copy, write a fresh one
// to the tape with the most spare capacity), promotes newly hot
// under-replicated blocks, and reclaims cold excess replicas.
//
// The package is simulation-agnostic: liveness of tapes and copies is
// injected as predicates, and the engine drives jobs one step at a time
// during drive idle periods. Jobs are monotone under interruption --
// progress never regresses, a copy is minted atomically at commit or not
// at all, and every reservation a job holds is released when it finishes
// or cancels -- which the kill/resume fuzz in planner_test.go exercises.
package repair

import "math"

// Heat tracks exponentially decayed per-block access counts. Decay is
// lazy: each counter carries the timestamp of its last update and is
// scaled by 2^(-dt/halfLife) on the next touch or read, so idle blocks
// cost nothing per tick.
type Heat struct {
	halfLife float64
	count    []float64
	stamp    []float64
}

// NewHeat returns a tracker for `blocks` blocks with the given half-life
// in simulated seconds. A non-positive half-life disables decay (raw
// access counts).
func NewHeat(blocks int, halfLifeSec float64) *Heat {
	return &Heat{
		halfLife: halfLifeSec,
		count:    make([]float64, blocks),
		stamp:    make([]float64, blocks),
	}
}

// decayTo scales block b's counter forward to time now.
func (h *Heat) decayTo(b int, now float64) {
	if h.halfLife <= 0 {
		return
	}
	if dt := now - h.stamp[b]; dt > 0 {
		h.count[b] *= math.Exp2(-dt / h.halfLife)
	}
	h.stamp[b] = now
}

// Touch records one access to block b at time now.
func (h *Heat) Touch(b int, now float64) {
	h.decayTo(b, now)
	h.count[b]++
}

// At returns block b's decayed heat at time now.
func (h *Heat) At(b int, now float64) float64 {
	h.decayTo(b, now)
	return h.count[b]
}
