package repair

import (
	"math/rand"
	"testing"

	"tapejuke/internal/layout"
)

func TestHeatDecay(t *testing.T) {
	h := NewHeat(2, 100)
	h.Touch(0, 0)
	if got := h.At(0, 0); got != 1 {
		t.Fatalf("heat at touch time = %v, want 1", got)
	}
	if got := h.At(0, 100); got < 0.49 || got > 0.51 {
		t.Errorf("heat after one half-life = %v, want ~0.5", got)
	}
	if got := h.At(1, 1000); got != 0 {
		t.Errorf("untouched block heat = %v, want 0", got)
	}
	// A non-positive half-life disables decay.
	raw := NewHeat(1, 0)
	raw.Touch(0, 0)
	raw.Touch(0, 500)
	if got := raw.At(0, 10_000); got != 2 {
		t.Errorf("raw count = %v, want 2", got)
	}
}

// testJuke is the mutable liveness world the planner operates against.
type testJuke struct {
	lay  *layout.Layout
	down []bool
	dead map[layout.Replica]bool
}

func newTestJuke(t testing.TB, tapes, capBlocks, nr, blocks int) *testJuke {
	t.Helper()
	lay, err := layout.Build(layout.Config{
		Tapes: tapes, TapeCapBlocks: capBlocks, HotPercent: 50,
		Replicas: nr, DataBlocks: blocks,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return &testJuke{lay: lay, down: make([]bool, tapes), dead: make(map[layout.Replica]bool)}
}

func (j *testJuke) copyOK(c layout.Replica) bool { return !j.down[c.Tape] && !j.dead[c] }

func (j *testJuke) planner(cfg Config, heat *Heat) *Planner {
	return New(j.lay, heat, cfg, j.copyOK, func(tp int) bool { return !j.down[tp] }, nil)
}

// driveJob runs one full, uninterrupted repair cycle for the hottest job.
func driveJob(t *testing.T, jk *testJuke, pl *Planner, now float64) {
	t.Helper()
	jobs := pl.Ranked(now)
	if len(jobs) == 0 {
		t.Fatal("no job to drive")
	}
	j := jobs[0]
	if _, st := pl.PickSource(j, nil); st != SrcOK {
		t.Fatalf("PickSource status %d, want SrcOK", st)
	}
	pl.FinishRead(j)
	if _, ok := pl.ChooseDest(j, func(tp int) bool { return !jk.down[tp] }); !ok {
		t.Fatal("ChooseDest found nothing")
	}
	if _, err := pl.Commit(j, now); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestPlannerRepairsTapeFailure(t *testing.T) {
	jk := newTestJuke(t, 4, 16, 1, 16)
	pl := jk.planner(Config{}, NewHeat(jk.lay.NumBlocks(), 1000))

	victim := 0
	lost := len(jk.lay.TapeContents(victim))
	if lost == 0 {
		t.Fatal("tape 0 holds nothing")
	}
	jk.down[victim] = true
	pl.NoteTapeFail(victim, 10)

	// Every block that kept at least one live copy and fell under its base
	// count gets a job; blocks whose only copy died are beyond repair.
	for pl.Active() > 0 {
		driveJob(t, jk, pl, 20)
	}
	if pl.Created() == 0 {
		t.Fatal("tape failure enqueued no jobs")
	}
	for b := 0; b < jk.lay.NumBlocks(); b++ {
		blk := layout.BlockID(b)
		live, base := pl.LiveCopies(blk), pl.Base(blk)
		hadLive := false
		for _, c := range jk.lay.Replicas(blk) {
			if c.Tape != victim {
				hadLive = true
			}
		}
		if hadLive && live < base {
			t.Errorf("block %d: %d live copies after repair, want >= %d", b, live, base)
		}
	}
	if err := jk.lay.Validate(); err != nil {
		t.Errorf("Validate after repair: %v", err)
	}
	if pl.ReservedCount() != 0 {
		t.Errorf("leaked %d reservations", pl.ReservedCount())
	}
}

func TestPlannerPromoteAndReclaim(t *testing.T) {
	jk := newTestJuke(t, 4, 16, 1, 16)
	heat := NewHeat(jk.lay.NumBlocks(), 1e12) // effectively no decay
	pl := jk.planner(Config{MaxCopies: 3, PromoteHeat: 3, ReclaimHeat: 0.5, ScanRate: 64}, heat)

	hot := layout.BlockID(jk.lay.NumHot()) // a cold block with one copy
	for i := 0; i < 5; i++ {
		heat.Touch(int(hot), float64(i))
	}
	pl.Scan(10, func(layout.BlockID, layout.Replica) bool { return true })
	if pl.Active() != 1 {
		t.Fatalf("Active = %d after hot scan, want 1 promote job", pl.Active())
	}
	driveJob(t, jk, pl, 20)
	if got := pl.LiveCopies(hot); got != 2 {
		t.Fatalf("promoted block has %d live copies, want 2", got)
	}

	// A fresh planner (whose base is captured after a copy death) repairs
	// under-replicated blocks through the scan path, independent of heat.
	cold := jk.planner(Config{ScanRate: 64}, NewHeat(jk.lay.NumBlocks(), 1000))
	cs := jk.lay.Replicas(hot)
	jk.dead[cs[1]] = true
	cold.Scan(30, func(layout.BlockID, layout.Replica) bool { return true })
	if cold.Active() != 1 {
		t.Fatalf("scan did not enqueue repair for under-replicated block (Active=%d)", cold.Active())
	}
}

func TestScanReclaimsColdExcess(t *testing.T) {
	jk := newTestJuke(t, 4, 16, 1, 16)
	// Capture base, then mint an extra copy so live > base.
	pl := jk.planner(Config{ReclaimHeat: 0.5, ScanRate: 64}, NewHeat(jk.lay.NumBlocks(), 1000))
	b := layout.BlockID(jk.lay.NumHot())
	dst := -1
	for tp := 0; tp < jk.lay.Tapes(); tp++ {
		if _, ok := jk.lay.ReplicaOn(b, tp); !ok {
			dst = tp
			break
		}
	}
	pos := jk.lay.FirstFree(dst, nil)
	if err := jk.lay.AddCopy(b, dst, pos); err != nil {
		t.Fatalf("AddCopy: %v", err)
	}
	var got []layout.Replica
	pl.Scan(10, func(blk layout.BlockID, c layout.Replica) bool {
		if blk != b {
			t.Errorf("nominated block %d, want %d", blk, b)
		}
		got = append(got, c)
		if err := jk.lay.RemoveCopy(blk, c.Tape); err != nil {
			t.Fatalf("RemoveCopy: %v", err)
		}
		return true
	})
	if len(got) != 1 {
		t.Fatalf("reclaimed %d copies, want 1", len(got))
	}
	if got[0].Tape != dst || got[0].Pos != pos {
		t.Errorf("reclaimed %v, want the minted excess copy {%d %d}", got[0], dst, pos)
	}
	if err := jk.lay.Validate(); err != nil {
		t.Errorf("Validate after reclaim: %v", err)
	}
}

// killResumeCase runs one randomized kill/resume scenario: jobs are
// interrupted at arbitrary step boundaries (abandoned, aborted after an
// issued write, raced by new failures) and must stay monotone -- a job's
// step never regresses, no duplicate copy is ever minted, and when the
// table drains no reservation is left behind.
func killResumeCase(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	tapes := 4 + rng.Intn(4)
	capBlocks := 12 + rng.Intn(8)
	nr := 1 + rng.Intn(2)
	blocks := tapes * capBlocks / 4
	jk := newTestJuke(t, tapes, capBlocks, nr, blocks)
	heat := NewHeat(blocks, 500)
	pl := jk.planner(Config{MaxCopies: nr + 2, PromoteHeat: 4, ReclaimHeat: 0.1, ScanRate: 8}, heat)

	step := make(map[int64]Step) // high-water step per job ID
	lastID := int64(0)
	now := 0.0

	checkMonotone := func() {
		t.Helper()
		for _, j := range pl.Ranked(now) {
			if prev, ok := step[j.ID]; ok && j.Step < prev {
				t.Fatalf("seed %d: job %d regressed from step %d to %d", seed, j.ID, prev, j.Step)
			}
			if j.ID <= lastID-int64(pl.Active())-100 {
				t.Fatalf("seed %d: stale job %d reappeared", seed, j.ID)
			}
			step[j.ID] = j.Step
			if j.ID > lastID {
				lastID = j.ID
			}
		}
	}

	reclaim := func(b layout.BlockID, c layout.Replica) bool {
		if rng.Intn(2) == 0 {
			return false // engine veto: copy in use
		}
		if err := jk.lay.RemoveCopy(b, c.Tape); err != nil {
			t.Fatalf("seed %d: reclaim RemoveCopy: %v", seed, err)
		}
		return true
	}

	upTapes := func() int {
		n := 0
		for _, d := range jk.down {
			if !d {
				n++
			}
		}
		return n
	}

	for iter := 0; iter < 120; iter++ {
		now += rng.Float64() * 20
		heat.Touch(rng.Intn(blocks), now)

		switch rng.Intn(10) {
		case 0: // tape failure
			if upTapes() > 1 {
				tp := rng.Intn(tapes)
				if !jk.down[tp] {
					jk.down[tp] = true
					pl.NoteTapeFail(tp, now)
				}
			}
		case 1: // single copy death
			b := layout.BlockID(rng.Intn(blocks))
			cs := jk.lay.Replicas(b)
			c := cs[rng.Intn(len(cs))]
			if !jk.dead[c] {
				jk.dead[c] = true
				pl.NoteCopyDead(c.Tape, c.Pos, now)
			}
		case 2:
			pl.Scan(now, reclaim)
		}

		jobs := pl.Ranked(now)
		if len(jobs) == 0 {
			continue
		}
		j := jobs[rng.Intn(len(jobs))]
		if rng.Intn(3) == 0 {
			// Kill: the drive was preempted before issuing this step.
			checkMonotone()
			continue
		}
		switch j.Step {
		case StepRead:
			var filter func(layout.Replica) bool
			if rng.Intn(3) == 0 {
				busy := rng.Intn(tapes)
				filter = func(c layout.Replica) bool { return c.Tape != busy }
			}
			_, st := pl.PickSource(j, filter)
			switch st {
			case SrcOK:
				pl.FinishRead(j)
			case SrcGone, SrcDone:
				pl.Cancel(j)
			case SrcBusy:
				// resume later
			}
		case StepWrite:
			dst, ok := pl.ChooseDest(j, func(tp int) bool { return !jk.down[tp] })
			if !ok {
				continue
			}
			switch rng.Intn(5) {
			case 0:
				// Destination died between issue and settle: abort.
				pl.Abort(j)
				if j.Reserved {
					t.Fatalf("seed %d: reservation survived Abort", seed)
				}
				if j.Step != StepWrite {
					t.Fatalf("seed %d: Abort changed step to %d", seed, j.Step)
				}
			case 1:
				// The whole tape died mid-write: mark it down, then abort.
				jk.down[dst.Tape] = true
				pl.NoteTapeFail(dst.Tape, now)
				pl.Abort(j)
			default:
				if _, err := pl.Commit(j, now); err != nil {
					t.Fatalf("seed %d: Commit: %v", seed, err)
				}
				if err := jk.lay.Validate(); err != nil {
					t.Fatalf("seed %d: Validate after commit: %v", seed, err)
				}
			}
		}
		checkMonotone()
	}

	// Drain: run every remaining job to completion or cancellation.
	for guard := 0; pl.Active() > 0 && guard < 10*blocks; guard++ {
		j := pl.Ranked(now)[0]
		now++
		_, st := pl.PickSource(j, nil)
		switch st {
		case SrcGone, SrcDone:
			pl.Cancel(j)
			continue
		case SrcOK:
		}
		if j.Step == StepRead {
			pl.FinishRead(j)
		}
		if _, ok := pl.ChooseDest(j, func(tp int) bool { return !jk.down[tp] }); !ok {
			pl.Cancel(j) // no feasible destination remains
			continue
		}
		if _, err := pl.Commit(j, now); err != nil {
			t.Fatalf("seed %d: drain Commit: %v", seed, err)
		}
	}
	for _, j := range pl.Ranked(now) {
		pl.Cancel(j)
	}
	if pl.ReservedCount() != 0 {
		t.Fatalf("seed %d: %d reservations leaked after drain", seed, pl.ReservedCount())
	}
	if pl.Active() != 0 {
		t.Fatalf("seed %d: %d jobs leaked after drain", seed, pl.Active())
	}
	if err := jk.lay.Validate(); err != nil {
		t.Fatalf("seed %d: final Validate: %v", seed, err)
	}
}

// TestKillResumeSeeded runs the kill/resume scenario across 600 seeds,
// covering the >= 500 interruption cases the acceptance criteria require.
func TestKillResumeSeeded(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz loop")
	}
	for seed := int64(0); seed < 600; seed++ {
		killResumeCase(t, seed)
	}
}

func FuzzKillResume(f *testing.F) {
	for s := int64(0); s < 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		killResumeCase(t, seed)
	})
}
