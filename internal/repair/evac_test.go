package repair

import (
	"math/rand"
	"testing"

	"tapejuke/internal/layout"
)

func TestEnqueueEvacuation(t *testing.T) {
	jk := newTestJuke(t, 4, 16, 1, 16)
	pl := jk.planner(Config{}, NewHeat(jk.lay.NumBlocks(), 1000))

	b := layout.BlockID(0)
	from := jk.lay.Replicas(b)[0]
	live := pl.LiveCopies(b)
	j := pl.EnqueueEvacuation(b, from, 1)
	if j == nil {
		t.Fatal("EnqueueEvacuation returned nil for a live copy")
	}
	if j.Kind != KindEvacuate {
		t.Errorf("Kind = %d, want KindEvacuate", j.Kind)
	}
	if j.From != from {
		t.Errorf("From = %v, want %v", j.From, from)
	}
	if j.Want != live+1 {
		t.Errorf("Want = %d, want live+1 = %d (mint before remove)", j.Want, live+1)
	}

	// The planner dedups by block: one job per block, evacuation included.
	if pl.EnqueueEvacuation(b, from, 2) != nil {
		t.Error("second EnqueueEvacuation for the same block returned a job")
	}

	// A copy that is already dead has nothing to evacuate.
	b2 := layout.BlockID(1)
	c2 := jk.lay.Replicas(b2)[0]
	jk.dead[c2] = true
	if pl.EnqueueEvacuation(b2, c2, 3) != nil {
		t.Error("EnqueueEvacuation of a dead copy returned a job")
	}
}

func TestEvacuationDestFilter(t *testing.T) {
	jk := newTestJuke(t, 4, 16, 1, 16)
	pl := jk.planner(Config{}, NewHeat(jk.lay.NumBlocks(), 1000))
	b := layout.BlockID(0)
	from := jk.lay.Replicas(b)[0]

	// The destination filter keeps new copies off the suspect tape for
	// every job kind.
	pl.SetDestFilter(func(tp int) bool { return tp != from.Tape })
	j := pl.EnqueueEvacuation(b, from, 1)
	if j == nil {
		t.Fatal("EnqueueEvacuation returned nil")
	}
	if _, st := pl.PickSource(j, nil); st != SrcOK {
		t.Fatalf("PickSource status %d, want SrcOK", st)
	}
	pl.FinishRead(j)
	dst, ok := pl.ChooseDest(j, nil)
	if !ok {
		t.Fatal("ChooseDest found nothing with three tapes allowed")
	}
	if dst.Tape == from.Tape {
		t.Errorf("ChooseDest picked the filtered tape %d", dst.Tape)
	}
	pl.Abort(j)
	pl.Cancel(j)

	// A filter rejecting every tape leaves no feasible destination, so
	// nothing is enqueued in the first place.
	pl.SetDestFilter(func(int) bool { return false })
	if pl.EnqueueEvacuation(b, from, 2) != nil {
		t.Error("EnqueueEvacuation returned a job with no feasible destination")
	}
}

func TestEvacuationMoot(t *testing.T) {
	jk := newTestJuke(t, 4, 16, 1, 16)
	pl := jk.planner(Config{}, NewHeat(jk.lay.NumBlocks(), 1000))
	b := layout.BlockID(0)
	from := jk.lay.Replicas(b)[0]
	j := pl.EnqueueEvacuation(b, from, 1)
	if j == nil {
		t.Fatal("EnqueueEvacuation returned nil")
	}
	if pl.EvacMoot(j) {
		t.Fatal("fresh evacuation job reported moot")
	}
	// The copy to vacate dies on its own: evacuation has no purpose left
	// and plain repair owns the block now.
	jk.dead[from] = true
	if !pl.EvacMoot(j) {
		t.Error("EvacMoot = false for a dead From copy")
	}
	if _, st := pl.PickSource(j, nil); st != SrcDone {
		t.Errorf("PickSource status %d for a moot job, want SrcDone", st)
	}
	pl.Cancel(j)
	if pl.Active() != 0 {
		t.Errorf("Active = %d after cancelling the moot job", pl.Active())
	}
}

// evacKillResumeCase runs one randomized evacuation kill/resume scenario: a
// suspect tape is drained through the job machinery while jobs are killed at
// arbitrary step boundaries, From copies die under active jobs, and copy
// removals are vetoed and retried. Invariants: a job's step never regresses,
// no block ever holds fewer live copies than before its evacuation started
// (mint before remove), destinations never land on the suspect tape, and
// when the table drains no reservation is left behind and every live copy
// is off the suspect tape.
func evacKillResumeCase(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	tapes := 4 + rng.Intn(4)
	capBlocks := 12 + rng.Intn(8)
	nr := 1 + rng.Intn(2)
	blocks := tapes * capBlocks / 4
	jk := newTestJuke(t, tapes, capBlocks, nr, blocks)
	pl := jk.planner(Config{}, NewHeat(blocks, 500))

	suspect := rng.Intn(tapes)
	pl.SetDestFilter(func(tp int) bool { return tp != suspect })

	preLive := make(map[layout.BlockID]int)
	for b := 0; b < blocks; b++ {
		preLive[layout.BlockID(b)] = pl.LiveCopies(layout.BlockID(b))
	}
	killedFrom := make(map[layout.BlockID]bool)

	step := make(map[int64]Step)
	checkMonotone := func(now float64) {
		t.Helper()
		for _, j := range pl.Ranked(now) {
			if prev, ok := step[j.ID]; ok && j.Step < prev {
				t.Fatalf("seed %d: job %d regressed from step %d to %d", seed, j.ID, prev, j.Step)
			}
			step[j.ID] = j.Step
		}
	}
	checkFloor := func(b layout.BlockID) {
		t.Helper()
		floor := preLive[b]
		if killedFrom[b] {
			floor--
		}
		if live := pl.LiveCopies(b); live < floor {
			t.Fatalf("seed %d: block %d fell to %d live copies (pre-evacuation %d, fromDead=%v)",
				seed, b, live, preLive[b], killedFrom[b])
		}
	}

	var pending []layout.Replica // vetoed removals, with their block implied by position
	pendingBlock := make(map[layout.Replica]layout.BlockID)
	tryRemove := func(b layout.BlockID, from layout.Replica, veto bool) {
		if jk.dead[from] {
			return // moot: plain repair owns the dead copy now
		}
		if c, ok := jk.lay.ReplicaOn(b, from.Tape); !ok || c.Pos != from.Pos {
			return // already removed
		}
		if veto {
			if _, dup := pendingBlock[from]; !dup {
				pending = append(pending, from)
				pendingBlock[from] = b
			}
			return
		}
		if err := jk.lay.RemoveCopy(b, from.Tape); err != nil {
			t.Fatalf("seed %d: RemoveCopy after minting: %v", seed, err)
		}
		checkFloor(b)
	}
	retryPending := func(veto bool) {
		kept := pending[:0]
		for _, from := range pending {
			b := pendingBlock[from]
			if veto && rng.Intn(2) == 0 {
				kept = append(kept, from)
				continue
			}
			delete(pendingBlock, from)
			tryRemove(b, from, false)
		}
		pending = kept
	}

	now := 0.0
	for iter := 0; iter < 150; iter++ {
		now += rng.Float64() * 20

		// Nominate more of the suspect tape's contents (the planner dedups).
		if slots := jk.lay.TapeContents(suspect); len(slots) > 0 {
			s := slots[rng.Intn(len(slots))]
			from := layout.Replica{Tape: suspect, Pos: s.Pos}
			if !jk.dead[from] {
				pl.EnqueueEvacuation(s.Block, from, now)
			}
		}
		// Occasionally the From copy dies under an active job, mooting it.
		if jobs := pl.Ranked(now); len(jobs) > 0 && rng.Intn(8) == 0 {
			j := jobs[rng.Intn(len(jobs))]
			if j.Kind == KindEvacuate && !jk.dead[j.From] {
				jk.dead[j.From] = true
				killedFrom[j.Block] = true
			}
		}
		if rng.Intn(4) == 0 {
			retryPending(true)
		}

		jobs := pl.Ranked(now)
		if len(jobs) == 0 {
			continue
		}
		j := jobs[rng.Intn(len(jobs))]
		if rng.Intn(3) == 0 {
			checkMonotone(now) // killed: preempted before issuing this step
			continue
		}
		switch j.Step {
		case StepRead:
			_, st := pl.PickSource(j, nil)
			switch st {
			case SrcOK:
				pl.FinishRead(j)
			case SrcGone, SrcDone:
				pl.Cancel(j)
			}
		case StepWrite:
			if pl.EvacMoot(j) {
				pl.Cancel(j)
				break
			}
			dst, ok := pl.ChooseDest(j, nil)
			if !ok {
				break
			}
			if dst.Tape == suspect {
				t.Fatalf("seed %d: evacuation chose the suspect tape as destination", seed)
			}
			if rng.Intn(5) == 0 {
				pl.Abort(j)
				break
			}
			b, from := j.Block, j.From
			if _, err := pl.Commit(j, now); err != nil {
				t.Fatalf("seed %d: Commit: %v", seed, err)
			}
			tryRemove(b, from, rng.Intn(3) == 0)
			if err := jk.lay.Validate(); err != nil {
				t.Fatalf("seed %d: Validate after commit: %v", seed, err)
			}
		}
		checkMonotone(now)
	}

	// Drain: complete every remaining job and flush the vetoed removals.
	noDest := make(map[layout.BlockID]bool) // no feasible destination remained
	for guard := 0; pl.Active() > 0 && guard < 10*blocks; guard++ {
		j := pl.Ranked(now)[0]
		now++
		_, st := pl.PickSource(j, nil)
		switch st {
		case SrcGone, SrcDone:
			pl.Cancel(j)
			continue
		case SrcOK:
		}
		if j.Step == StepRead {
			pl.FinishRead(j)
		}
		if _, ok := pl.ChooseDest(j, nil); !ok {
			noDest[j.Block] = true
			pl.Cancel(j)
			continue
		}
		b, from := j.Block, j.From
		if _, err := pl.Commit(j, now); err != nil {
			t.Fatalf("seed %d: drain Commit: %v", seed, err)
		}
		tryRemove(b, from, false)
	}
	retryPending(false)

	if pl.ReservedCount() != 0 {
		t.Fatalf("seed %d: %d reservations leaked after drain", seed, pl.ReservedCount())
	}
	if pl.Active() != 0 {
		t.Fatalf("seed %d: %d jobs leaked after drain", seed, pl.Active())
	}
	if err := jk.lay.Validate(); err != nil {
		t.Fatalf("seed %d: final Validate: %v", seed, err)
	}
	for b := 0; b < blocks; b++ {
		checkFloor(layout.BlockID(b))
	}
	// Every copy still on the suspect tape is one evacuation could not own:
	// a copy that died before its replacement landed, or a block with no
	// feasible destination left.
	for _, s := range jk.lay.TapeContents(suspect) {
		if !jk.dead[layout.Replica{Tape: suspect, Pos: s.Pos}] && !noDest[s.Block] {
			t.Fatalf("seed %d: live copy of block %d left on the suspect tape after drain", seed, s.Block)
		}
	}
}

// TestEvacKillResumeSeeded runs the evacuation kill/resume scenario across
// many seeds.
func TestEvacKillResumeSeeded(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz loop")
	}
	for seed := int64(0); seed < 300; seed++ {
		evacKillResumeCase(t, seed)
	}
}

func FuzzEvacKillResume(f *testing.F) {
	for s := int64(0); s < 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		evacKillResumeCase(t, seed)
	})
}
