package repair

import (
	"sort"

	"tapejuke/internal/layout"
)

// Step identifies the next action a repair job needs. A job is a two-step
// state machine -- read a surviving copy, then write the new one -- and
// the step only ever advances: an interrupted job resumes from its last
// completed step.
type Step uint8

const (
	StepRead  Step = iota // next action: read a surviving copy
	StepWrite             // read done; next action: write the new copy
)

// SrcStatus reports the outcome of source selection for a job's read step.
type SrcStatus uint8

const (
	SrcOK   SrcStatus = iota // a surviving copy was chosen
	SrcBusy                  // live copies exist but none is claimable right now
	SrcGone                  // no live copy anywhere: the block is beyond repair
	SrcDone                  // the block already has its target number of live copies
)

// Kind distinguishes why a job exists. Both kinds run the same read/write
// state machine; they differ only in what happens around it.
type Kind uint8

const (
	// KindRepair restores a lost copy (or promotes a hot block). On commit
	// the block is re-examined and a fresh job enqueued if still under
	// target.
	KindRepair Kind = iota
	// KindEvacuate moves a copy off a suspect tape: mint one extra copy
	// elsewhere first, then (engine-side, after the commit settles) remove
	// the copy at From. Mint-before-remove means the block never drops
	// below its pre-evacuation copy count, so an interrupted evacuation
	// degrades to a no-op plus at most one spare copy.
	KindEvacuate
)

// Job is one unit of re-replication work: mint exactly one new copy of
// Block. Jobs are identified by a monotone ID so traces and the verifier
// can match a write step to the read step that fed it.
type Job struct {
	ID    int64
	Kind  Kind
	Block layout.BlockID
	At    float64 // enqueue time: when the copy loss was discovered
	Want  int     // target number of live copies for the block
	Step  Step
	Src   layout.Replica // surviving copy chosen for the read step
	Dst   layout.Replica // reserved destination; valid while Reserved
	From  layout.Replica // evacuation only: the copy to vacate after commit
	// Reserved marks that Dst's position is held in the planner's
	// reservation table; it is released on commit, abort, and cancel
	// alike.
	Reserved bool
	// Busy marks the job's current step as executing on some drive: set
	// at issue, cleared when that operation settles. Other drives skip a
	// busy job, so a step is never double-issued (a second drive would
	// otherwise follow the first's reservation onto its busy tape).
	Busy bool
}

// Config tunes the planner's promotion and reclamation policy.
type Config struct {
	// MaxCopies caps the number of copies per block that promotion may
	// reach. Repair of lost copies targets each block's build-time count
	// regardless.
	MaxCopies int
	// PromoteHeat, when positive, enqueues an extra copy for blocks whose
	// decayed heat reaches it.
	PromoteHeat float64
	// ReclaimHeat, when positive, nominates excess copies of blocks whose
	// heat has fallen to or below it for reclamation.
	ReclaimHeat float64
	// ScanRate is the number of blocks the rotating promote/reclaim scan
	// inspects per idle visit.
	ScanRate int
}

// Planner owns the repair job table. It mutates the layout only inside
// Commit (adding the minted copy); everything else is bookkeeping, so an
// interrupted job leaves no trace beyond its own entry.
type Planner struct {
	lay  *layout.Layout
	heat *Heat
	cfg  Config

	// copyOK reports whether a physical copy is readable (its tape is up
	// and the copy itself is not dead). tapeUp reports whether a tape may
	// receive new copies at all (not discovered failed). posOK reports
	// whether a free position may hold a new copy (not a known bad block).
	copyOK func(layout.Replica) bool
	tapeUp func(tape int) bool
	posOK  func(tape, pos int) bool
	// destOK, when non-nil, further filters destination tapes for every
	// job kind (the health extension excludes suspect tapes: repairing
	// onto a tape queued for evacuation would be wasted motion).
	destOK func(tape int) bool

	jobs      []*Job // active jobs in ID order
	byBlock   map[layout.BlockID]*Job
	base      []int32        // copies per block at construction time
	reserved  map[int64]bool // packed (tape,pos) held by in-flight writes
	resByTape []int32
	nextID    int64
	cursor    int // rotating scan position
	created   int64
	ranked    []*Job // scratch for Ranked
}

// New builds a planner over lay. copyOK, tapeUp, and posOK inject
// liveness; any may be nil, meaning everything is live.
func New(lay *layout.Layout, heat *Heat, cfg Config,
	copyOK func(layout.Replica) bool, tapeUp func(tape int) bool,
	posOK func(tape, pos int) bool) *Planner {
	if copyOK == nil {
		copyOK = func(layout.Replica) bool { return true }
	}
	if tapeUp == nil {
		tapeUp = func(int) bool { return true }
	}
	if posOK == nil {
		posOK = func(int, int) bool { return true }
	}
	if cfg.ScanRate <= 0 {
		cfg.ScanRate = 64
	}
	p := &Planner{
		lay: lay, heat: heat, cfg: cfg, copyOK: copyOK, tapeUp: tapeUp, posOK: posOK,
		byBlock:   make(map[layout.BlockID]*Job),
		base:      make([]int32, lay.NumBlocks()),
		reserved:  make(map[int64]bool),
		resByTape: make([]int32, lay.Tapes()),
		nextID:    1,
	}
	for b := range p.base {
		p.base[b] = int32(len(lay.Replicas(layout.BlockID(b))))
	}
	return p
}

func packPos(tape, pos int) int64 { return int64(tape)<<32 | int64(uint32(pos)) }

// SetDestFilter installs (or clears, with nil) the destination-tape filter
// consulted by feasibility checks and ChooseDest for every job. Existing
// reservations are unaffected; a newly excluded tape simply receives no
// further reservations.
func (p *Planner) SetDestFilter(f func(tape int) bool) { p.destOK = f }

// LiveCopies counts block b's readable copies.
func (p *Planner) LiveCopies(b layout.BlockID) int {
	n := 0
	for _, c := range p.lay.Replicas(b) {
		if p.copyOK(c) {
			n++
		}
	}
	return n
}

// Base returns block b's copy count at planner construction: the target
// that loss-driven repair restores.
func (p *Planner) Base(b layout.BlockID) int { return int(p.base[b]) }

// Active returns the number of jobs currently in the table.
func (p *Planner) Active() int { return len(p.jobs) }

// Created returns the total number of jobs ever enqueued.
func (p *Planner) Created() int64 { return p.created }

// ReservedCount returns the number of outstanding destination
// reservations; it must be zero once the job table drains (leaked scratch
// state otherwise).
func (p *Planner) ReservedCount() int { return len(p.reserved) }

// Feasible reports whether some up tape could receive a new copy of j's
// block right now: no existing copy there and spare capacity beyond the
// outstanding reservations. Jobs that fail this are cancelled instead of
// lingering; the rotating scan re-enqueues the block if capacity frees up
// (reclaim) while it is still under-replicated.
func (p *Planner) Feasible(j *Job) bool { return p.hasDest(j.Block) }

func (p *Planner) hasDest(b layout.BlockID) bool {
	for t := 0; t < p.lay.Tapes(); t++ {
		if !p.tapeUp(t) || (p.destOK != nil && !p.destOK(t)) {
			continue
		}
		if _, dup := p.lay.ReplicaOn(b, t); dup {
			continue
		}
		if p.lay.FreeBlocks(t)-int(p.resByTape[t]) > 0 {
			return true
		}
	}
	return false
}

// enqueue creates a job targeting `want` live copies of b, if one is
// worthwhile: no job already covers b, at least one copy survives, the
// block is below target, and a destination tape exists.
func (p *Planner) enqueue(b layout.BlockID, now float64, want int) *Job {
	if p.byBlock[b] != nil {
		return nil
	}
	live := p.LiveCopies(b)
	if live == 0 || live >= want {
		return nil
	}
	if !p.hasDest(b) {
		return nil
	}
	j := &Job{ID: p.nextID, Block: b, At: now, Want: want}
	p.nextID++
	p.created++
	p.jobs = append(p.jobs, j)
	p.byBlock[b] = j
	return j
}

// EnqueueEvacuation creates a job that moves block b's copy at `from` off
// its tape: mint one extra copy elsewhere (Want = live+1), then the caller
// removes `from` once the mint commits. Returns nil when the block is
// already covered by a job, the copy at `from` is not readable (nothing to
// vacate -- plain repair owns dead copies), no live copy exists, or no
// destination tape can take the extra copy.
func (p *Planner) EnqueueEvacuation(b layout.BlockID, from layout.Replica, now float64) *Job {
	if p.byBlock[b] != nil || !p.copyOK(from) {
		return nil
	}
	live := p.LiveCopies(b)
	if live == 0 || !p.hasDest(b) {
		return nil
	}
	j := &Job{ID: p.nextID, Kind: KindEvacuate, Block: b, At: now, Want: live + 1, From: from}
	p.nextID++
	p.created++
	p.jobs = append(p.jobs, j)
	p.byBlock[b] = j
	return j
}

// EvacMoot reports that an evacuation job's purpose has evaporated: the
// copy it was to vacate is no longer readable (its tape died, or the copy
// escalated to dead), so plain repair -- not evacuation -- now owns the
// block. Moot jobs should be cancelled.
func (p *Planner) EvacMoot(j *Job) bool {
	return j.Kind == KindEvacuate && !p.copyOK(j.From)
}

// NoteTapeFail reacts to a tape death: every block that had a copy on the
// tape is a repair candidate.
func (p *Planner) NoteTapeFail(tape int, now float64) {
	for _, s := range p.lay.TapeContents(tape) {
		p.enqueue(s.Block, now, p.Base(s.Block))
	}
}

// NoteCopyDead reacts to a single copy death (a bad block escalation).
func (p *Planner) NoteCopyDead(tape, pos int, now float64) {
	if b, ok := p.lay.BlockAt(tape, pos); ok {
		p.enqueue(b, now, p.Base(b))
	}
}

// Ranked returns the active jobs hottest-first (ties break toward the
// older job) so idle drive time goes to the blocks most likely to be
// requested. The returned slice is reused across calls.
func (p *Planner) Ranked(now float64) []*Job {
	p.ranked = append(p.ranked[:0], p.jobs...)
	sort.SliceStable(p.ranked, func(i, j int) bool {
		hi := p.heat.At(int(p.ranked[i].Block), now)
		hj := p.heat.At(int(p.ranked[j].Block), now)
		if hi != hj {
			return hi > hj
		}
		return p.ranked[i].ID < p.ranked[j].ID
	})
	return p.ranked
}

// PickSource selects the surviving copy j's read step should use. ok, when
// non-nil, further filters candidates (the engine rejects tapes another
// drive holds). SrcDone and SrcGone mean the job should be cancelled.
func (p *Planner) PickSource(j *Job, ok func(layout.Replica) bool) (layout.Replica, SrcStatus) {
	if p.EvacMoot(j) {
		return layout.Replica{}, SrcDone
	}
	if p.LiveCopies(j.Block) >= j.Want {
		return layout.Replica{}, SrcDone
	}
	anyLive := false
	for _, c := range p.lay.Replicas(j.Block) {
		if !p.copyOK(c) {
			continue
		}
		anyLive = true
		if ok == nil || ok(c) {
			j.Src = c
			return c, SrcOK
		}
	}
	if anyLive {
		return layout.Replica{}, SrcBusy
	}
	return layout.Replica{}, SrcGone
}

// FinishRead advances j past its completed read step.
func (p *Planner) FinishRead(j *Job) { j.Step = StepWrite }

// ChooseDest reserves a destination for j's write step: the acceptable
// tape with the most spare capacity (ties toward the lowest index) that
// holds no copy of the block, at its lowest usable free position. tapeOK,
// when non-nil, filters tapes (the engine requires up and claimable).
// Returns false when no destination exists right now.
func (p *Planner) ChooseDest(j *Job, tapeOK func(int) bool) (layout.Replica, bool) {
	if j.Reserved {
		return j.Dst, true
	}
	type cand struct {
		tape, spare int
	}
	var cands []cand
	for t := 0; t < p.lay.Tapes(); t++ {
		if !p.tapeUp(t) || (tapeOK != nil && !tapeOK(t)) ||
			(p.destOK != nil && !p.destOK(t)) {
			continue
		}
		if _, dup := p.lay.ReplicaOn(j.Block, t); dup {
			continue
		}
		spare := p.lay.FreeBlocks(t) - int(p.resByTape[t])
		if spare > 0 {
			cands = append(cands, cand{t, spare})
		}
	}
	sort.Slice(cands, func(i, k int) bool {
		if cands[i].spare != cands[k].spare {
			return cands[i].spare > cands[k].spare
		}
		return cands[i].tape < cands[k].tape
	})
	for _, c := range cands {
		pos := p.lay.FirstFree(c.tape, func(pos int) bool {
			return !p.reserved[packPos(c.tape, pos)] && p.posOK(c.tape, pos)
		})
		if pos < 0 {
			continue
		}
		j.Dst = layout.Replica{Tape: c.tape, Pos: pos}
		j.Reserved = true
		p.reserved[packPos(c.tape, pos)] = true
		p.resByTape[c.tape]++
		return j.Dst, true
	}
	return layout.Replica{}, false
}

// release drops j's destination reservation, if any.
func (p *Planner) release(j *Job) {
	if !j.Reserved {
		return
	}
	delete(p.reserved, packPos(j.Dst.Tape, j.Dst.Pos))
	p.resByTape[j.Dst.Tape]--
	j.Reserved = false
}

// Abort rolls back an issued write whose destination died before the
// commit settled: the reservation is released and the job stays at
// StepWrite with its completed read intact (monotone -- no regression).
func (p *Planner) Abort(j *Job) { p.release(j) }

// Commit finalizes j's write step: the minted copy enters the layout at
// the reserved destination, the reservation is released, and the job is
// retired. If a repair job's block is still under target (several copies
// were lost) a fresh job is enqueued; an evacuation job instead leaves the
// follow-up -- removing the copy at From -- to its caller. Returns the new
// copy.
func (p *Planner) Commit(j *Job, now float64) (layout.Replica, error) {
	if err := p.lay.AddCopy(j.Block, j.Dst.Tape, j.Dst.Pos); err != nil {
		return layout.Replica{}, err
	}
	c := j.Dst
	p.release(j)
	p.drop(j)
	if j.Kind == KindRepair {
		p.enqueue(j.Block, now, j.Want)
	}
	return c, nil
}

// Cancel retires j without minting anything, releasing any reservation.
func (p *Planner) Cancel(j *Job) {
	p.release(j)
	p.drop(j)
}

func (p *Planner) drop(j *Job) {
	for i, q := range p.jobs {
		if q == j {
			p.jobs = append(p.jobs[:i], p.jobs[i+1:]...)
			break
		}
	}
	if p.byBlock[j.Block] == j {
		delete(p.byBlock, j.Block)
	}
}

// Scan advances the rotating block scan by ScanRate blocks: it enqueues
// repair for under-replicated blocks the event path missed (injected bad
// blocks), promotes hot blocks toward MaxCopies, and nominates cold
// excess copies to the reclaim callback, which performs the removal (the
// engine vetoes copies that are in use) and reports whether it did.
func (p *Planner) Scan(now float64, reclaim func(layout.BlockID, layout.Replica) bool) {
	n := p.lay.NumBlocks()
	if n == 0 {
		return
	}
	steps := p.cfg.ScanRate
	if steps > n {
		steps = n
	}
	for i := 0; i < steps; i++ {
		b := layout.BlockID(p.cursor)
		p.cursor = (p.cursor + 1) % n
		if p.byBlock[b] != nil {
			continue
		}
		live := p.LiveCopies(b)
		base := p.Base(b)
		switch {
		case live >= 1 && live < base:
			p.enqueue(b, now, base)
		case p.cfg.PromoteHeat > 0 && live >= base && live < p.cfg.MaxCopies &&
			p.heat.At(int(b), now) >= p.cfg.PromoteHeat:
			p.enqueue(b, now, live+1)
		case p.cfg.ReclaimHeat > 0 && live > base &&
			p.heat.At(int(b), now) <= p.cfg.ReclaimHeat:
			if c, ok := p.reclaimVictim(b); ok {
				reclaim(b, c)
			}
		}
	}
}

// reclaimVictim picks the copy to give back: the newest live copy that is
// not the original.
func (p *Planner) reclaimVictim(b layout.BlockID) (layout.Replica, bool) {
	cs := p.lay.Replicas(b)
	for i := len(cs) - 1; i >= 1; i-- {
		if p.copyOK(cs[i]) {
			return cs[i], true
		}
	}
	return layout.Replica{}, false
}
