// Package analytic provides closed-form, first-order performance estimates
// for the tape jukebox, formalizing the paper's qualitative arguments (mean
// locate distance under a placement, sweep amortization of the tape-switch
// cost, the block-size knee of Figure 3). The estimates deliberately ignore
// scheduling cleverness -- they model a fair round-robin service of
// single-sweep batches -- so they bound the simple schedulers from below
// and give the simulator an independent cross-check: simulation and
// analysis must agree to first order on symmetric configurations, and
// tests assert that they do.
package analytic

import (
	"errors"
	"math"

	"tapejuke/internal/layout"
	"tapejuke/internal/tapemodel"
)

// RequestMass returns, per tape, the probability that a random request's
// block lives on that tape (original copies only), under the hot/cold skew
// RH (percent of requests to hot blocks). The masses sum to 1 for layouts
// without replication; with replication they describe original placement
// only, so callers studying replicas should not rely on them.
func RequestMass(l *layout.Layout, readHotPercent float64) []float64 {
	mass := make([]float64, l.Tapes())
	hot, cold := l.NumHot(), l.NumCold()
	rh := readHotPercent / 100
	for b := 0; b < l.NumBlocks(); b++ {
		var p float64
		if l.IsHot(layout.BlockID(b)) {
			p = rh / float64(hot)
		} else {
			p = (1 - rh) / float64(cold)
		}
		mass[l.Replicas(layout.BlockID(b))[0].Tape] += p
	}
	return mass
}

// PositionCDF returns the cumulative distribution of a random request's
// position on the given tape, conditioned on the request living there
// (original copies only). cdf[p] = P(position <= p). The final entry is 1
// unless the tape holds no request mass, in which case the CDF is all
// zeros.
func PositionCDF(l *layout.Layout, readHotPercent float64, tape int) []float64 {
	cdf := make([]float64, l.TapeCap())
	hot, cold := l.NumHot(), l.NumCold()
	rh := readHotPercent / 100
	total := 0.0
	for p := 0; p < l.TapeCap(); p++ {
		if b, ok := l.BlockAt(tape, p); ok && l.Replicas(b)[0].Tape == tape {
			if l.IsHot(b) {
				total += rh / float64(hot)
			} else {
				total += (1 - rh) / float64(cold)
			}
		}
		cdf[p] = total
	}
	if total == 0 {
		return cdf
	}
	for p := range cdf {
		cdf[p] /= total
	}
	return cdf
}

// ExpectedMaxPosition returns E[max position of k independent draws] from
// the per-position distribution described by cdf -- the expected one-way
// extent of a sweep serving k requests, the quantity behind the paper's
// placement arguments (Sections 4.3 and 4.5).
func ExpectedMaxPosition(cdf []float64, k int) float64 {
	if k <= 0 || len(cdf) == 0 {
		return 0
	}
	e := 0.0
	prev := 0.0
	for p, c := range cdf {
		fk := math.Pow(c, float64(k))
		e += float64(p) * (fk - prev)
		prev = fk
	}
	return e
}

// MeanPosition returns the mean of the distribution described by cdf.
func MeanPosition(cdf []float64) float64 {
	e := 0.0
	prev := 0.0
	for p, c := range cdf {
		e += float64(p) * (c - prev)
		prev = c
	}
	return e
}

// Estimate is a first-order prediction for a closed-queuing jukebox.
type Estimate struct {
	RequestsPerSweep float64 // batch size per tape visit
	SweepExtentMB    float64 // expected one-way travel per sweep
	SweepSeconds     float64 // locates + reads within one sweep
	SwitchSeconds    float64 // rewind + eject + robot + load per visit
	CycleSeconds     float64 // sweep + switch
	ThroughputKBps   float64 // k blocks per cycle
}

// ClosedThroughput estimates the steady-state throughput of a closed
// workload of the given queue length on a helical-scan jukebox serviced by
// fair single-sweep batches, sweeping forward from the beginning of the
// tape through the expected extent and rewinding. Locates within the sweep
// use the long-motion segment (batch gaps are almost always beyond the
// short threshold at realistic batch sizes).
//
// The batch size comes from the sawtooth equilibrium of fair rotation: a
// tape's pending count grows linearly from zero after each visit, so at
// visit time it holds twice the average, k = 2*Q*mass. (With Q outstanding
// in total and per-tape pending averaging k/2, sum(k/2) = Q.) The simulator
// confirms this within ~10%.
func ClosedThroughput(prof *tapemodel.Profile, blockMB float64, l *layout.Layout,
	readHotPercent float64, queueLength int) (*Estimate, error) {
	if queueLength < 1 {
		return nil, errors.New("analytic: queue length must be positive")
	}
	if prof == nil {
		return nil, errors.New("analytic: nil profile")
	}
	mass := RequestMass(l, readHotPercent)

	// Weighted average over tapes of the per-visit cost, visiting tapes in
	// proportion to their request mass.
	var sweepSec, switchSec, served, extentMB float64
	for t := 0; t < l.Tapes(); t++ {
		if mass[t] == 0 {
			continue
		}
		k := 2 * float64(queueLength) * mass[t] // sawtooth equilibrium
		if k < 1 {
			k = 1 // a visit serves at least the request that triggered it
		}
		cdf := PositionCDF(l, readHotPercent, t)
		extent := ExpectedMaxPosition(cdf, int(math.Round(k)))
		extMB := (extent + 1) * blockMB

		// k reads, k forward locates whose distances sum to the extent.
		reads := k * prof.Read(blockMB, tapemodel.Forward)
		locates := k*prof.LongForward.Startup + prof.LongForward.PerMB*extMB

		sweepSec += mass[t] * (reads + locates)
		switchSec += mass[t] * prof.FullSwitch(extMB)
		served += mass[t] * k
		extentMB += mass[t] * extMB
	}
	cycle := sweepSec + switchSec
	if cycle == 0 {
		return nil, errors.New("analytic: layout holds no request mass")
	}
	return &Estimate{
		RequestsPerSweep: served,
		SweepExtentMB:    extentMB,
		SweepSeconds:     sweepSec,
		SwitchSeconds:    switchSec,
		CycleSeconds:     cycle,
		ThroughputKBps:   served * blockMB * 1024 / cycle,
	}, nil
}

// OpenAssessment is the analytic view of an open-queuing (Poisson)
// workload: whether the offered load exceeds what the jukebox can serve.
type OpenAssessment struct {
	// SaturationKBps estimates the service ceiling: the closed-model
	// throughput at a deep queue, where batching has amortized the
	// overheads as far as it can.
	SaturationKBps float64
	// OfferedKBps is the arrival byte rate of the open workload.
	OfferedKBps float64
	// Utilization is offered/saturation; above ~1 the backlog diverges.
	Utilization float64
	// Saturated is Utilization >= 1.
	Saturated bool
}

// AssessOpen estimates whether a Poisson workload with the given mean
// interarrival time saturates the jukebox, explaining the paper's
// open-queuing observations: beyond saturation every reasonable scheduler
// moves the same bytes and differs only in delay.
func AssessOpen(prof *tapemodel.Profile, blockMB float64, l *layout.Layout,
	readHotPercent, meanInterarrival float64) (*OpenAssessment, error) {
	if meanInterarrival <= 0 {
		return nil, errors.New("analytic: mean interarrival must be positive")
	}
	// A deep queue stands in for the saturated regime.
	deep := 20 * l.Tapes()
	est, err := ClosedThroughput(prof, blockMB, l, readHotPercent, deep)
	if err != nil {
		return nil, err
	}
	a := &OpenAssessment{
		SaturationKBps: est.ThroughputKBps,
		OfferedKBps:    blockMB * 1024 / meanInterarrival,
	}
	if a.SaturationKBps > 0 {
		a.Utilization = a.OfferedKBps / a.SaturationKBps
	}
	a.Saturated = a.Utilization >= 1
	return a, nil
}

// BlockSizeKnee returns the analytic effective-rate curve of Figure 3's
// argument: with a fixed per-request positioning overhead `overheadSec`,
// the effective fraction of the streaming rate for a transfer of b MB is
// b*readPerMB / (overheadSec + b*readPerMB). It exposes why halving a
// 16 MB block nearly halves throughput on the EXB-8505XL.
func BlockSizeKnee(prof *tapemodel.Profile, overheadSec float64, blockMB float64) float64 {
	xfer := prof.ReadForward.PerMB * blockMB
	if xfer <= 0 {
		return 0
	}
	return xfer / (overheadSec + prof.ReadForward.Startup + xfer)
}
