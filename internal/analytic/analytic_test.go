package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
	"tapejuke/internal/sim"
	"tapejuke/internal/tapemodel"
)

func uniformLayout(t *testing.T) *layout.Layout {
	t.Helper()
	l, err := layout.Build(layout.Config{Tapes: 10, TapeCapBlocks: 448})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func skewedLayout(t *testing.T, sp float64) *layout.Layout {
	t.Helper()
	l, err := layout.Build(layout.Config{
		Tapes: 10, TapeCapBlocks: 448, HotPercent: 10, StartPos: sp,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRequestMassUniform(t *testing.T) {
	l := uniformLayout(t)
	mass := RequestMass(l, 0)
	sum := 0.0
	for tape, m := range mass {
		if math.Abs(m-0.1) > 0.001 {
			t.Errorf("tape %d mass = %v, want 0.1", tape, m)
		}
		sum += m
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("masses sum to %v", sum)
	}
}

func TestRequestMassSkewVertical(t *testing.T) {
	l, err := layout.Build(layout.Config{
		Tapes: 10, TapeCapBlocks: 448, HotPercent: 10, Kind: layout.Vertical,
	})
	if err != nil {
		t.Fatal(err)
	}
	// All hot data on tape 0, 40% of requests hot: tape 0 carries 40%.
	mass := RequestMass(l, 40)
	if math.Abs(mass[0]-0.4) > 0.01 {
		t.Errorf("hot tape mass = %v, want 0.40", mass[0])
	}
}

func TestPositionCDFMonotoneComplete(t *testing.T) {
	l := skewedLayout(t, 0)
	for tape := 0; tape < l.Tapes(); tape++ {
		cdf := PositionCDF(l, 40, tape)
		prev := 0.0
		for p, c := range cdf {
			if c < prev-1e-12 {
				t.Fatalf("tape %d: CDF decreases at %d", tape, p)
			}
			prev = c
		}
		if math.Abs(cdf[len(cdf)-1]-1) > 1e-9 {
			t.Errorf("tape %d: CDF ends at %v", tape, cdf[len(cdf)-1])
		}
	}
}

// The paper's Section 4.3 argument, analytically: hot data at the tape
// beginning lowers the mean request position (and hence mean locate
// distance) compared with hot data at the end.
func TestPlacementShiftsMeanPosition(t *testing.T) {
	begin := skewedLayout(t, 0)
	end := skewedLayout(t, 1)
	mb := MeanPosition(PositionCDF(begin, 40, 0))
	me := MeanPosition(PositionCDF(end, 40, 0))
	if mb >= me {
		t.Errorf("mean position with hot-at-start %v should be below hot-at-end %v", mb, me)
	}
}

func TestExpectedMaxPosition(t *testing.T) {
	// Uniform over 100 positions: E[max of k] ~ 100*k/(k+1) - 1.
	cdf := make([]float64, 100)
	for i := range cdf {
		cdf[i] = float64(i+1) / 100
	}
	for _, k := range []int{1, 4, 20} {
		got := ExpectedMaxPosition(cdf, k)
		want := 100*float64(k)/float64(k+1) - 1
		if math.Abs(got-want) > 2 {
			t.Errorf("E[max of %d] = %v, want about %v", k, got, want)
		}
	}
	if ExpectedMaxPosition(cdf, 0) != 0 || ExpectedMaxPosition(nil, 3) != 0 {
		t.Error("degenerate inputs should return 0")
	}
	// More draws push the maximum outward.
	if ExpectedMaxPosition(cdf, 10) <= ExpectedMaxPosition(cdf, 2) {
		t.Error("E[max] must grow with k")
	}
}

// The headline cross-check: the closed-form throughput estimate must agree
// with the simulator to first order on a symmetric configuration serviced
// by the fair scheduler it models (static round-robin).
func TestAnalyticMatchesSimulation(t *testing.T) {
	prof := tapemodel.EXB8505XL()
	for _, queue := range []int{20, 60, 140} {
		l := uniformLayout(t)
		est, err := ClosedThroughput(prof, 16, l, 0, queue)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			BlockMB: 16, TapeCapMB: 7168, Tapes: 10,
			QueueLength: queue,
			Scheduler:   sched.NewStatic(sched.RoundRobin),
			Horizon:     400_000, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(est.ThroughputKBps-res.ThroughputKBps) / res.ThroughputKBps
		if rel > 0.15 {
			t.Errorf("queue %d: analytic %.1f KB/s vs simulated %.1f KB/s (%.0f%% apart)",
				queue, est.ThroughputKBps, res.ThroughputKBps, rel*100)
		}
	}
}

func TestClosedThroughputErrors(t *testing.T) {
	l := uniformLayout(t)
	if _, err := ClosedThroughput(tapemodel.EXB8505XL(), 16, l, 0, 0); err == nil {
		t.Error("zero queue accepted")
	}
	if _, err := ClosedThroughput(nil, 16, l, 0, 10); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestEstimateShape(t *testing.T) {
	prof := tapemodel.EXB8505XL()
	l := uniformLayout(t)
	small, _ := ClosedThroughput(prof, 16, l, 0, 20)
	large, _ := ClosedThroughput(prof, 16, l, 0, 140)
	// Bigger batches amortize the switch: throughput grows with queue.
	if large.ThroughputKBps <= small.ThroughputKBps {
		t.Errorf("throughput should grow with queue: %v vs %v",
			small.ThroughputKBps, large.ThroughputKBps)
	}
	if large.RequestsPerSweep <= small.RequestsPerSweep {
		t.Error("requests per sweep should grow with queue")
	}
	if small.CycleSeconds != small.SweepSeconds+small.SwitchSeconds {
		t.Error("cycle decomposition broken")
	}
}

// AssessOpen must agree with simulated open-model behaviour: a workload it
// calls saturated accumulates a backlog; one it calls light idles.
func TestAssessOpenAgainstSimulation(t *testing.T) {
	prof := tapemodel.EXB8505XL()
	l, err := layout.Build(layout.Config{Tapes: 10, TapeCapBlocks: 448, HotPercent: 10})
	if err != nil {
		t.Fatal(err)
	}
	simulate := func(interarrival float64) *sim.Result {
		res, err := sim.Run(sim.Config{
			BlockMB: 16, TapeCapMB: 7168, Tapes: 10,
			HotPercent: 10, ReadHotPercent: 40,
			MeanInterarrival: interarrival,
			Scheduler:        sched.NewDynamic(sched.MaxBandwidth),
			Horizon:          400_000, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	heavy, err := AssessOpen(prof, 16, l, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !heavy.Saturated {
		t.Errorf("20 s interarrival called unsaturated: %+v", heavy)
	}
	if res := simulate(20); res.TotalArrivals-res.TotalCompleted < 100 {
		t.Errorf("simulation disagrees: backlog only %d", res.TotalArrivals-res.TotalCompleted)
	}

	light, err := AssessOpen(prof, 16, l, 40, 500)
	if err != nil {
		t.Fatal(err)
	}
	if light.Saturated {
		t.Errorf("500 s interarrival called saturated: %+v", light)
	}
	if res := simulate(500); res.IdleSeconds == 0 {
		t.Error("simulation disagrees: no idle time at light load")
	}

	if _, err := AssessOpen(prof, 16, l, 40, 0); err == nil {
		t.Error("zero interarrival accepted")
	}
}

func TestBlockSizeKnee(t *testing.T) {
	prof := tapemodel.EXB8505XL()
	const overhead = 50 // a representative per-request positioning cost
	at8 := BlockSizeKnee(prof, overhead, 8)
	at16 := BlockSizeKnee(prof, overhead, 16)
	at64 := BlockSizeKnee(prof, overhead, 64)
	if !(at8 < at16 && at16 < at64) {
		t.Errorf("knee not monotone: %v %v %v", at8, at16, at64)
	}
	// The Figure 3 argument: at 16 MB the effective rate passes ~30% of
	// streaming for a ~50 s overhead; at 8 MB it is far below.
	if at16 < 0.30 {
		t.Errorf("16 MB effective fraction = %v, expected above 0.30", at16)
	}
	ratio := at16 / at8
	if ratio < 1.4 || ratio > 2.2 {
		t.Errorf("16/8 MB ratio = %v, expected near the paper's ~2", ratio)
	}
	if BlockSizeKnee(prof, overhead, 0) != 0 {
		t.Error("zero block size should yield 0")
	}
}

// Property: ExpectedMaxPosition is monotone in k and bounded by the support.
func TestExpectedMaxProperty(t *testing.T) {
	f := func(raw []uint8, k1, k2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		total := 0.0
		for _, v := range raw {
			total += float64(v) + 1
		}
		cdf := make([]float64, len(raw))
		run := 0.0
		for i, v := range raw {
			run += float64(v) + 1
			cdf[i] = run / total
		}
		a, b := int(k1)%30+1, int(k2)%30+1
		if a > b {
			a, b = b, a
		}
		ea, eb := ExpectedMaxPosition(cdf, a), ExpectedMaxPosition(cdf, b)
		return ea <= eb+1e-9 && eb <= float64(len(raw)-1)+1e-9 && ea >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
