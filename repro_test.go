// Integration tests asserting the paper's eight experimental conclusions
// (Section 4) hold in this reproduction. Each test simulates the relevant
// configurations at a moderate horizon and checks the *shape* of the result
// -- who wins and roughly by how much -- rather than absolute numbers.
package tapejuke_test

import (
	"testing"

	"tapejuke"
)

// claimCfg is the study's reference configuration at a test-friendly
// horizon: long enough for stable means, short enough to keep `go test`
// fast.
func claimCfg() tapejuke.Config {
	return tapejuke.Config{HorizonSec: 400_000}.WithDefaults()
}

func mustRun(t *testing.T, cfg tapejuke.Config) *tapejuke.Result {
	t.Helper()
	res, err := tapejuke.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Question 1: the I/O size should be at least 16 MB; halving it to 8 MB
// costs close to a factor of two, and 16 MB sustains over 30% of the
// drive's streaming rate.
func TestQ1TransferSize(t *testing.T) {
	cfg := claimCfg()
	at16 := mustRun(t, cfg)
	cfg.BlockMB = 8
	at8 := mustRun(t, cfg)

	ratio := at16.ThroughputKBps / at8.ThroughputKBps
	if ratio < 1.3 {
		t.Errorf("16 MB / 8 MB throughput ratio = %.2f, paper reports nearly 2x", ratio)
	}
	stream, _ := tapejuke.StreamingRateKBps("exb8505xl")
	if frac := at16.ThroughputKBps / stream; frac < 0.30 {
		t.Errorf("16 MB blocks reach %.0f%% of streaming, paper reports above 30%%", frac*100)
	}
}

// Question 2: without replication, dynamic max-bandwidth is a top
// scheduler; dynamic algorithms beat their static counterparts at heavy
// load, and everything beats FIFO.
func TestQ2SchedulingNoReplication(t *testing.T) {
	run := func(a tapejuke.Algorithm, queue int) *tapejuke.Result {
		cfg := claimCfg()
		cfg.Algorithm = a
		cfg.QueueLength = queue
		return mustRun(t, cfg)
	}
	const heavy = 140
	fifo := run(tapejuke.FIFO, heavy)
	statBW := run(tapejuke.StaticMaxBandwidth, heavy)
	dynBW := run(tapejuke.DynamicMaxBandwidth, heavy)
	dynMR := run(tapejuke.DynamicMaxRequests, heavy)

	if statBW.ThroughputKBps <= fifo.ThroughputKBps*1.5 {
		t.Errorf("static max-bandwidth (%.0f) should crush FIFO (%.0f)",
			statBW.ThroughputKBps, fifo.ThroughputKBps)
	}
	if dynBW.ThroughputKBps <= statBW.ThroughputKBps {
		t.Errorf("dynamic (%.0f) should beat static (%.0f) at heavy load",
			dynBW.ThroughputKBps, statBW.ThroughputKBps)
	}
	// "the simpler max requests algorithm is nearly as good": within 10%.
	if dynMR.ThroughputKBps < dynBW.ThroughputKBps*0.9 {
		t.Errorf("dynamic max-requests (%.0f) should be within 10%% of max-bandwidth (%.0f)",
			dynMR.ThroughputKBps, dynBW.ThroughputKBps)
	}
}

// Section 4.2's fairness observation: "Heavy workloads favor the fair tape
// switching policies of round-robin and oldest request, which tend to
// prevent unlucky requests from incurring excessive delays waiting for
// their tape to be processed." Greedy max-bandwidth wins slightly on the
// mean; the fair policies win clearly on the tail.
func TestQ2FairPoliciesProtectTheTail(t *testing.T) {
	run := func(a tapejuke.Algorithm) *tapejuke.Result {
		cfg := claimCfg()
		cfg.Algorithm = a
		cfg.QueueLength = 140
		return mustRun(t, cfg)
	}
	greedy := run(tapejuke.DynamicMaxBandwidth)
	for _, fair := range []tapejuke.Algorithm{
		tapejuke.DynamicRoundRobin, tapejuke.DynamicOldestMaxRequests,
	} {
		res := run(fair)
		if res.MaxResponseSec >= greedy.MaxResponseSec {
			t.Errorf("%s max response %.0f should beat greedy %.0f at heavy load",
				fair, res.MaxResponseSec, greedy.MaxResponseSec)
		}
		if res.P95ResponseSec >= greedy.P95ResponseSec {
			t.Errorf("%s p95 %.0f should beat greedy %.0f at heavy load",
				fair, res.P95ResponseSec, greedy.P95ResponseSec)
		}
	}
}

// Question 3: without replication, hot data belongs at the beginning of the
// tape (SP-0 beats SP-1), and a vertical layout is best at moderate load.
func TestQ3HotPlacementNoReplication(t *testing.T) {
	cfg := claimCfg()
	cfg.StartPos = 0
	begin := mustRun(t, cfg)
	cfg.StartPos = 1
	end := mustRun(t, cfg)
	if begin.ThroughputKBps <= end.ThroughputKBps {
		t.Errorf("SP-0 (%.0f KB/s) should beat SP-1 (%.0f KB/s) without replication",
			begin.ThroughputKBps, end.ThroughputKBps)
	}
	cfg = claimCfg()
	cfg.Placement = tapejuke.Vertical
	vertical := mustRun(t, cfg)
	if vertical.ThroughputKBps <= begin.ThroughputKBps {
		t.Errorf("vertical (%.0f KB/s) should beat horizontal SP-0 (%.0f KB/s) at moderate load",
			vertical.ThroughputKBps, begin.ThroughputKBps)
	}
}

// Question 4: more replicas give better performance; full replication buys
// roughly 18% more requests per minute and cuts tape switches by about 20%.
func TestQ4Replication(t *testing.T) {
	run := func(nr int) *tapejuke.Result {
		cfg := claimCfg()
		cfg.Placement = tapejuke.Vertical
		cfg.Replicas = nr
		if nr > 0 {
			cfg.StartPos = 1
		}
		return mustRun(t, cfg)
	}
	none, half, full := run(0), run(4), run(9)
	if half.RequestsPerMinute <= none.RequestsPerMinute {
		t.Errorf("NR-4 (%.3f req/min) should beat NR-0 (%.3f)",
			half.RequestsPerMinute, none.RequestsPerMinute)
	}
	if full.RequestsPerMinute <= half.RequestsPerMinute {
		t.Errorf("NR-9 (%.3f req/min) should beat NR-4 (%.3f)",
			full.RequestsPerMinute, half.RequestsPerMinute)
	}
	gain := full.RequestsPerMinute/none.RequestsPerMinute - 1
	if gain < 0.08 || gain > 0.45 {
		t.Errorf("full-replication gain = %.0f%%, paper reports about 18%%", gain*100)
	}
	switchDrop := 1 - float64(full.TapeSwitches)/float64(none.TapeSwitches)
	if switchDrop < 0.10 {
		t.Errorf("tape switches dropped %.0f%%, paper reports about 20%%", switchDrop*100)
	}
}

// Question 5: with replication, hot data and replicas belong at the END of
// the tape -- the reverse of the no-replication answer.
func TestQ5ReplicaPlacement(t *testing.T) {
	run := func(sp float64) *tapejuke.Result {
		cfg := claimCfg()
		cfg.Placement = tapejuke.Vertical
		cfg.Replicas = 9
		cfg.StartPos = sp
		return mustRun(t, cfg)
	}
	begin, end := run(0), run(1)
	if end.ThroughputKBps <= begin.ThroughputKBps {
		t.Errorf("with full replication SP-1 (%.0f KB/s) should beat SP-0 (%.0f KB/s)",
			end.ThroughputKBps, begin.ThroughputKBps)
	}
	if end.MeanResponseSec >= begin.MeanResponseSec {
		t.Errorf("with full replication SP-1 delay (%.0f s) should beat SP-0 (%.0f s)",
			end.MeanResponseSec, begin.MeanResponseSec)
	}
}

// Question 6: with replication, the max-bandwidth envelope algorithm beats
// the dynamic max-bandwidth algorithm (paper: ~6% throughput, ~5% delay).
func TestQ6EnvelopeWithReplication(t *testing.T) {
	run := func(a tapejuke.Algorithm) *tapejuke.Result {
		cfg := claimCfg()
		cfg.Algorithm = a
		cfg.Placement = tapejuke.Vertical
		cfg.Replicas = 9
		cfg.StartPos = 1
		return mustRun(t, cfg)
	}
	dyn := run(tapejuke.DynamicMaxBandwidth)
	env := run(tapejuke.EnvelopeMaxBandwidth)
	if env.ThroughputKBps <= dyn.ThroughputKBps {
		t.Errorf("envelope (%.1f KB/s) should beat dynamic (%.1f KB/s) under replication",
			env.ThroughputKBps, dyn.ThroughputKBps)
	}
	if env.MeanResponseSec >= dyn.MeanResponseSec {
		t.Errorf("envelope delay (%.0f s) should beat dynamic (%.0f s) under replication",
			env.MeanResponseSec, dyn.MeanResponseSec)
	}
}

// Question 7: increasing skew uniformly improves throughput and delay, and
// full replication beats no replication across skews.
func TestQ7Skew(t *testing.T) {
	run := func(rh float64, full bool) *tapejuke.Result {
		cfg := claimCfg()
		cfg.Algorithm = tapejuke.EnvelopeMaxBandwidth
		cfg.ReadHotPercent = rh
		if full {
			cfg.Placement = tapejuke.Vertical
			cfg.Replicas = 9
			cfg.StartPos = 1
		}
		return mustRun(t, cfg)
	}
	prev := 0.0
	for _, rh := range []float64{20, 50, 80} {
		res := run(rh, true)
		if res.ThroughputKBps <= prev {
			t.Errorf("RH-%.0f throughput %.1f did not improve on %.1f", rh, res.ThroughputKBps, prev)
		}
		prev = res.ThroughputKBps
	}
	for _, rh := range []float64{40, 80} {
		none, full := run(rh, false), run(rh, true)
		if full.ThroughputKBps <= none.ThroughputKBps {
			t.Errorf("RH-%.0f: full replication (%.1f) should beat none (%.1f)",
				rh, full.ThroughputKBps, none.ThroughputKBps)
		}
	}
}

// The paper asserts its conclusions are "qualitatively independent of the
// particular bandwidth and capacity of the tape system modeled" (Section
// 6). Re-run the two headline comparisons on the hypothetical fast drive.
func TestConclusionsHoldOnFastDrive(t *testing.T) {
	run := func(mut func(*tapejuke.Config)) *tapejuke.Result {
		cfg := claimCfg()
		cfg.DriveProfile = "fast"
		mut(&cfg)
		return mustRun(t, cfg)
	}
	// Replication still beats none.
	none := run(func(c *tapejuke.Config) {})
	full := run(func(c *tapejuke.Config) {
		c.Placement = tapejuke.Vertical
		c.Replicas = 9
		c.StartPos = 1
	})
	if full.ThroughputKBps <= none.ThroughputKBps {
		t.Errorf("fast drive: replication %.1f should beat none %.1f",
			full.ThroughputKBps, none.ThroughputKBps)
	}
	// The envelope still beats plain dynamic under replication.
	env := run(func(c *tapejuke.Config) {
		c.Algorithm = tapejuke.EnvelopeMaxBandwidth
		c.Placement = tapejuke.Vertical
		c.Replicas = 9
		c.StartPos = 1
	})
	if env.ThroughputKBps <= full.ThroughputKBps {
		t.Errorf("fast drive: envelope %.1f should beat dynamic %.1f",
			env.ThroughputKBps, full.ThroughputKBps)
	}
}

// The paper's recurring open-queuing observation (Sections 4.2, 4.4, 4.7):
// at high load under Poisson arrivals, the choice of algorithm has little
// effect on throughput -- only on delay.
func TestOpenModelSchedulerMovesLatencyOnly(t *testing.T) {
	run := func(a tapejuke.Algorithm) *tapejuke.Result {
		cfg := claimCfg()
		cfg.Algorithm = a
		cfg.QueueLength = 0
		cfg.MeanInterarrivalSec = 60 // beyond the drive's service capacity
		cfg.Placement = tapejuke.Vertical
		cfg.Replicas = 9
		cfg.StartPos = 1
		return mustRun(t, cfg)
	}
	dyn := run(tapejuke.DynamicMaxBandwidth)
	env := run(tapejuke.EnvelopeMaxBandwidth)
	tpDelta := env.ThroughputKBps/dyn.ThroughputKBps - 1
	if tpDelta < -0.02 || tpDelta > 0.02 {
		t.Errorf("saturated open throughput moved %.1f%% with the scheduler; should be flat", tpDelta*100)
	}
	if env.MeanResponseSec >= dyn.MeanResponseSec {
		t.Errorf("envelope delay %.0f should beat dynamic %.0f under saturation",
			env.MeanResponseSec, dyn.MeanResponseSec)
	}
}

// Question 8: replication improves performance per dollar only for high
// skews; at moderate skew the cost-performance ratio is near (or below)
// one, at high skew clearly above one.
func TestQ8CostEffectiveness(t *testing.T) {
	ratioAt := func(rh float64) float64 {
		base := claimCfg()
		base.Algorithm = tapejuke.EnvelopeMaxBandwidth
		base.ReadHotPercent = rh
		baseline := mustRun(t, base)

		repl := base
		repl.Placement = tapejuke.Vertical
		repl.Replicas = 9
		repl.StartPos = 1
		q, err := tapejuke.ScaledQueueLength(base.QueueLength, repl.ExpansionFactor())
		if err != nil {
			t.Fatal(err)
		}
		repl.QueueLength = q
		r, err := tapejuke.CostPerformanceRatio(mustRun(t, repl), baseline)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	moderate := ratioAt(40)
	high := ratioAt(90)
	if moderate > 1.08 {
		t.Errorf("moderate-skew cost-performance = %.3f, paper reports around or below 1", moderate)
	}
	if high < 1.05 {
		t.Errorf("high-skew cost-performance = %.3f, paper reports a clear benefit (~1.1)", high)
	}
	if high <= moderate {
		t.Errorf("cost-performance should grow with skew: moderate %.3f, high %.3f", moderate, high)
	}
}
