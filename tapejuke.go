// Package tapejuke is a library for studying and improving the performance
// of single-drive tape jukeboxes, reproducing Hillyer, Rastogi and
// Silberschatz, "Scheduling and Data Replication to Improve Tape Jukebox
// Performance" (ICDE 1999).
//
// It provides:
//
//   - a validated analytic timing model of a helical-scan tape drive inside
//     a robotic library (locate, read, rewind, tape switch);
//   - the paper's full family of retrieval schedulers: FIFO, five static
//     and five dynamic tape-selection policies, and the envelope-extension
//     algorithm with three tape-selection variants;
//   - hot/cold data placement and replication schemes (horizontal and
//     vertical layouts, the SP start-position knob, NR-way replication);
//   - a deterministic event-driven simulator with closed-queuing (constant
//     queue) and open-queuing (Poisson) workload models; and
//   - the cost-performance analysis of replicated jukebox farms.
//
// The zero-effort entry point is Run:
//
//	cfg := tapejuke.Config{Algorithm: tapejuke.EnvelopeMaxBandwidth}.WithDefaults()
//	res, err := tapejuke.Run(cfg)
//
// which simulates the paper's reference jukebox (ten 7 GB tapes behind one
// Exabyte EXB-8505XL drive) under a moderately skewed closed workload.
package tapejuke

import (
	"errors"
	"fmt"

	"tapejuke/internal/farm"
	"tapejuke/internal/layout"
	"tapejuke/internal/sched"
	"tapejuke/internal/sim"
	"tapejuke/internal/tapemodel"
)

// Placement selects how hot data is laid out across the tapes.
type Placement string

const (
	// Horizontal spreads hot blocks (and replicas) across all tapes.
	Horizontal Placement = "horizontal"
	// Vertical collects all hot originals on a single tape.
	Vertical Placement = "vertical"
)

// Result holds the metrics of one simulation run; see the field
// documentation in the internal sim package mirror of this type.
type Result = sim.Result

// Config describes a jukebox, a data layout, a workload, and a scheduling
// algorithm. The zero value is not runnable; start from WithDefaults.
type Config struct {
	// DriveProfile names the drive timing model: "exb8505xl" (the paper's
	// measured drive, the default), "fast" (a hypothetical faster
	// helical-scan drive), or the synthetic serpentine drives "dlt7000"
	// and "lto9".
	DriveProfile string
	// BlockMB is the I/O transfer size in megabytes (default 16, the
	// paper's recommendation from Figure 3).
	BlockMB float64
	// TapeCapMB is one tape's capacity in megabytes (default 7168 = 7 GB).
	TapeCapMB float64
	// Tapes is the number of tapes in the jukebox (default 10).
	Tapes int
	// Drives is the number of drives sharing those tapes (default 1, the
	// paper's configuration; >1 enables the multi-drive extension the paper
	// leaves as future work).
	Drives int

	// HotPercent (PH) is the percent of stored blocks that are hot
	// (default 10). ReadHotPercent (RH) is the percent of requests
	// directed at hot blocks (default 40, the paper's "moderate skew").
	HotPercent     float64
	ReadHotPercent float64
	// SequentialProb in [0,1) enables the clustered-access extension:
	// each request continues the previous block's sequential run with
	// this probability (the paper's workloads are independent; default 0).
	SequentialProb float64
	// ZipfS > 1 replaces the two-class hot/cold skew with Zipf-distributed
	// popularity over block ranks (extension; ReadHotPercent is then
	// ignored). Zero keeps the paper's model.
	ZipfS float64
	// Replicas (NR) is the number of extra copies of each hot block,
	// at most one per tape (default 0).
	Replicas int
	// Placement lays hot data out horizontally or vertically (default
	// horizontal).
	Placement Placement
	// StartPos (SP) in [0,1] places the hot region within each tape:
	// 0 = beginning, 1 = end (default 0).
	StartPos float64
	// DataMB, when positive, stores only that much base data instead of
	// filling the jukebox (a partially filled library, as in the paper's
	// gradual-fill scenario of Section 4.8).
	DataMB float64
	// PackAfterData appends the hot/replica region right after each tape's
	// data instead of at the StartPos-scaled position: "replicas at the
	// tape ends" in the append-only sense that matters on a partially
	// filled tape. StartPos is ignored when set.
	PackAfterData bool

	// Algorithm selects the scheduler (default DynamicMaxBandwidth; see
	// Algorithms for the full list).
	Algorithm Algorithm

	// RAO reorders every sweep into a Recommended-Access-Order-style greedy
	// nearest-first physical order before execution, the way modern LTO
	// deployments schedule batches. Requires a serpentine drive profile
	// ("dlt7000" or "lto9"); helical-scan profiles reject it, since their
	// elevator order already is the physical order.
	RAO bool

	// QueueLength > 0 selects the closed-queuing workload with a constant
	// number of outstanding requests (default 60). MeanInterarrivalSec > 0
	// selects the open-queuing Poisson workload instead; set QueueLength
	// to 0 when using it.
	QueueLength         int
	MeanInterarrivalSec float64

	// HorizonSec is the simulated duration (default 2,000,000 s; the paper
	// runs 10,000,000 s). WarmupFrac of the horizon is excluded from
	// metrics (default 0.05).
	HorizonSec float64
	WarmupFrac float64
	// MaxCompletions, when positive, ends the run early after that many
	// measured completions.
	MaxCompletions int64

	// Writes enables the delta-write extension; see WriteConfig.
	Writes WriteConfig

	// Faults enables the fault-injection extension; see FaultConfig.
	Faults FaultConfig

	// Deadlines, Admission, Burst, Degrade and AgeWeight configure the
	// overload-robustness extension: per-class request deadlines with
	// expiry, a bounded admission queue, bursty arrivals, graceful
	// degradation, and starvation-aware aging in tape selection. Every zero
	// value disables its layer; with all of them off the simulator is
	// bit-identical to the overload-free engine.
	Deadlines DeadlineConfig
	Admission AdmissionConfig
	Burst     BurstConfig
	Degrade   DegradeConfig
	AgeWeight float64

	// Repair enables the self-healing replication extension; see
	// RepairConfig.
	Repair RepairConfig

	// Health enables the proactive media-health extension; see
	// HealthConfig.
	Health HealthConfig

	// Observer, when non-nil, receives every simulator event inline. It is
	// excluded from JSON serialization (live hook, not configuration).
	Observer Observer `json:"-"`

	// Seed makes runs reproducible (default 1).
	Seed int64
}

// WithDefaults fills unset fields with the paper's reference values and
// returns the completed configuration.
func (c Config) WithDefaults() Config {
	if c.DriveProfile == "" {
		c.DriveProfile = "exb8505xl"
	}
	if c.BlockMB == 0 {
		c.BlockMB = 16
	}
	if c.TapeCapMB == 0 {
		c.TapeCapMB = 7168
	}
	if c.Tapes == 0 {
		c.Tapes = 10
	}
	if c.Drives == 0 {
		c.Drives = 1
	}
	if c.HotPercent == 0 {
		c.HotPercent = 10
	}
	if c.ReadHotPercent == 0 {
		c.ReadHotPercent = 40
	}
	if c.Placement == "" {
		c.Placement = Horizontal
	}
	if c.Algorithm == "" {
		c.Algorithm = DynamicMaxBandwidth
	}
	if c.QueueLength == 0 && c.MeanInterarrivalSec == 0 {
		c.QueueLength = 60
	}
	if c.HorizonSec == 0 {
		c.HorizonSec = 2_000_000
	}
	if c.WarmupFrac == 0 {
		c.WarmupFrac = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Run simulates the configuration and returns its metrics.
func Run(c Config) (*Result, error) {
	sc, err := c.toSim()
	if err != nil {
		return nil, err
	}
	return sim.Run(*sc)
}

// toSim translates the public configuration into the internal one,
// instantiating the profile, layout kind, and scheduler.
func (c Config) toSim() (*sim.Config, error) {
	prof := tapemodel.PositionerByName(driveName(c.DriveProfile))
	if prof == nil {
		return nil, fmt.Errorf("tapejuke: unknown drive profile %q", c.DriveProfile)
	}
	var kind layout.Kind
	switch c.Placement {
	case Horizontal, "":
		kind = layout.Horizontal
	case Vertical:
		kind = layout.Vertical
	default:
		return nil, fmt.Errorf("tapejuke: unknown placement %q", c.Placement)
	}
	schd, err := NewScheduler(c.Algorithm)
	if err != nil {
		return nil, err
	}
	var factory func() sched.Scheduler
	if c.Drives > 1 {
		alg := c.Algorithm
		factory = func() sched.Scheduler {
			s, ferr := NewScheduler(alg)
			if ferr != nil {
				panic(ferr) // unreachable: the algorithm resolved above
			}
			return s
		}
	}
	sc := &sim.Config{
		Profile:          prof,
		BlockMB:          c.BlockMB,
		TapeCapMB:        c.TapeCapMB,
		Tapes:            c.Tapes,
		HotPercent:       c.HotPercent,
		Replicas:         c.Replicas,
		Kind:             kind,
		StartPos:         c.StartPos,
		DataBlocks:       int(c.DataMB / c.BlockMB),
		PackAfterData:    c.PackAfterData,
		ReadHotPercent:   c.ReadHotPercent,
		SequentialProb:   c.SequentialProb,
		ZipfS:            c.ZipfS,
		QueueLength:      c.QueueLength,
		MeanInterarrival: c.MeanInterarrivalSec,
		Scheduler:        schd,
		RAO:              c.RAO,
		Drives:           c.Drives,
		SchedulerFactory: factory,
		Horizon:          c.HorizonSec,
		WarmupFrac:       c.WarmupFrac,
		MaxCompletions:   c.MaxCompletions,
		Seed:             c.Seed,
		Observer:         c.Observer,
		Deadlines:        c.Deadlines,
		Admission:        c.Admission,
		Burst:            c.Burst,
		Degrade:          c.Degrade,
		AgeWeight:        c.AgeWeight,
		Repair:           c.Repair,
		Health:           c.Health,
	}
	if err := c.Writes.toSim(sc); err != nil {
		return nil, err
	}
	sc.Faults = c.Faults.toFaults()
	return sc, nil
}

// ExpansionFactor returns E = 1 + NR*PH/100, the storage growth caused by
// the configuration's replication (Figure 10a).
func (c Config) ExpansionFactor() float64 {
	return farm.ExpansionFactor(c.Replicas, c.HotPercent)
}

// CostPerformanceRatio compares the per-jukebox throughput of a replication
// scheme against a baseline (Section 4.8): a value above 1 means the
// performance gain pays for the storage expansion.
func CostPerformanceRatio(replicated, baseline *Result) (float64, error) {
	if replicated == nil || baseline == nil {
		return 0, errors.New("tapejuke: nil result")
	}
	return farm.CostPerformanceRatio(replicated.ThroughputKBps, baseline.ThroughputKBps)
}

// ScaledQueueLength spreads a closed workload sized at `base` outstanding
// requests per non-replicated jukebox across the E-times-larger replicated
// farm, as the Figure 10b experiment does.
func ScaledQueueLength(base int, expansion float64) (int, error) {
	return farm.ScaledQueueLength(base, expansion)
}

// StreamingRateKBps returns the named drive profile's sustained transfer
// rate in KB/s, the denominator of the "fraction of streaming" figure of
// merit.
func StreamingRateKBps(profile string) (float64, error) {
	p := tapemodel.PositionerByName(driveName(profile))
	if p == nil {
		return 0, fmt.Errorf("tapejuke: unknown drive profile %q", profile)
	}
	return p.StreamingRateMBps() * 1024, nil
}

// driveName maps the empty string to the default drive.
func driveName(name string) string {
	if name == "" {
		return "exb8505xl"
	}
	return name
}
