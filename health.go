package tapejuke

import (
	"tapejuke/internal/sim"
)

// Health-extension event kinds.
const (
	// EventScrubRead reports the background patrol verifying one live copy
	// during drive idle time.
	EventScrubRead = sim.EventScrubRead
	// EventLatentFound reports the first detection of a latent error; the
	// event's Seconds field carries the detection latency (how long the
	// error sat on tape before a read touched it).
	EventLatentFound = sim.EventLatentFound
	// EventEvacuate reports one copy dropped from a suspect tape after its
	// replacement committed elsewhere (metadata-only; no drive motion).
	EventEvacuate = sim.EventEvacuate
	// EventDriveFence reports a drive fenced out of scheduling for
	// maintenance; the event's Seconds field carries the downtime.
	EventDriveFence = sim.EventDriveFence
)

// HealthConfig enables the proactive media-health extension: a background
// scrub scanner that patrols tape regions during drive idle time (finding
// latent errors before a user read pays for the discovery), EWMA health
// scoring of tapes and drives over the fault model's error observations,
// preemptive evacuation of suspect tapes through the repair machinery, and
// fencing of error-prone drives for simulated maintenance. The zero value
// disables the extension entirely and the engine is bit-identical to the
// health-free one; see the internal sim package mirror of this type for
// field documentation.
type HealthConfig = sim.HealthConfig
