package tapejuke

import (
	"tapejuke/internal/faults"
	"tapejuke/internal/sim"
)

// Fault-model event kinds.
const (
	EventFault         = sim.EventFault
	EventTapeFail      = sim.EventTapeFail
	EventDriveRepair   = sim.EventDriveRepair
	EventUnserviceable = sim.EventUnserviceable
)

// FaultConfig enables the fault-injection extension on a Config: media and
// mechanism failures drawn as deterministic seeded streams, with bounded
// retries and replica-based recovery. The paper treats replication purely
// as a performance lever; this extension measures the availability a
// replica also buys. The zero value disables every fault class.
type FaultConfig struct {
	// ReadTransientProb is the probability that one block-read attempt
	// fails with a recoverable media error; failed attempts consume drive
	// time and retry with simulated-time backoff.
	ReadTransientProb float64
	// BadBlocksPerTape is the expected number of permanently unreadable
	// block ranges per tape, placed at initialization.
	BadBlocksPerTape float64
	// BadBlockRangeLen is the maximum length in blocks of one bad range
	// (default 4).
	BadBlockRangeLen int
	// TapeMTBFSec, when positive, gives each tape an exponentially
	// distributed time to permanent failure with this mean. Requests whose
	// every copy is lost are reported unserviceable; replicated blocks are
	// rerouted to surviving copies.
	TapeMTBFSec float64
	// DriveMTBFSec, when positive, gives each drive an exponential uptime
	// between failures; DriveRepairSec is the downtime per failure
	// (default 3600 s).
	DriveMTBFSec   float64
	DriveRepairSec float64
	// SwitchFailProb is the probability that one tape load attempt fails,
	// consuming the mechanical time before a retry.
	SwitchFailProb float64
	// LatentErrorsPerTape is the expected number of latent errors per tape:
	// positions that silently go permanently unreadable at an exponentially
	// distributed onset time and sit undetected until some read -- a user
	// request, a repair source read, or a health-extension scrub -- touches
	// them. LatentMeanOnsetSec is the mean onset time (default 500,000 s).
	LatentErrorsPerTape float64
	LatentMeanOnsetSec  float64

	// MaxRetries, BackoffSec and BackoffFactor bound transient-error
	// handling (defaults 3, 30 s, x2); exhaustion escalates the copy to
	// permanently dead.
	MaxRetries    int
	BackoffSec    float64
	BackoffFactor float64

	// Seed makes the fault streams deterministic independently of the
	// workload seed; zero derives it from Config.Seed.
	Seed int64
}

// Enabled reports whether any fault class is active.
func (f FaultConfig) Enabled() bool { return f.toFaults().Enabled() }

func (f FaultConfig) toFaults() faults.Config {
	return faults.Config{
		ReadTransientProb:   f.ReadTransientProb,
		BadBlocksPerTape:    f.BadBlocksPerTape,
		BadBlockRangeLen:    f.BadBlockRangeLen,
		TapeMTBFSec:         f.TapeMTBFSec,
		DriveMTBFSec:        f.DriveMTBFSec,
		DriveRepairSec:      f.DriveRepairSec,
		SwitchFailProb:      f.SwitchFailProb,
		LatentErrorsPerTape: f.LatentErrorsPerTape,
		LatentMeanOnsetSec:  f.LatentMeanOnsetSec,
		Retry: faults.RetryPolicy{
			MaxRetries:    f.MaxRetries,
			BackoffSec:    f.BackoffSec,
			BackoffFactor: f.BackoffFactor,
		},
		Seed: f.Seed,
	}
}
