// BenchmarkFullRun is the end-to-end hot-path benchmark: one complete
// closed-model simulation (q=140, envelope-max-bandwidth, the paper's
// heaviest evaluated workload) at a horizon scaled down far enough to
// iterate but long enough that the steady-state event loop dominates
// setup. As of PR6 it measures the Runner (session-reuse) path, the one
// the figures experiment engine actually executes per worker;
// BenchmarkFullRunCold keeps the build-everything-fresh path measurable.
// It is the benchmark scripts/bench.sh uses to track whole-kernel speed
// (and, with -benchmem, steady-state allocation) across PRs, and the
// designated -calibrate benchmark for cmd/benchdiff cross-machine
// normalization:
//
//	go test -run '^$' -bench 'BenchmarkFullRun$' -benchmem
package tapejuke_test

import (
	"testing"

	"tapejuke"
)

// fullRunConfig is the benchmark workload shared by the warm and cold
// variants.
func fullRunConfig() tapejuke.Config {
	return tapejuke.Config{
		Algorithm:   tapejuke.EnvelopeMaxBandwidth,
		QueueLength: 140,
		HorizonSec:  200_000,
		Seed:        1,
	}.WithDefaults()
}

func BenchmarkFullRun(b *testing.B) {
	cfg := fullRunConfig()
	r := tapejuke.NewRunner()
	var last *tapejuke.Result
	for i := 0; i < b.N; i++ {
		res, err := r.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.ThroughputKBps, "KB/s")
		b.ReportMetric(float64(last.Completed), "requests")
	}
}

// BenchmarkFullRunCold measures the same workload through the one-shot Run
// path, rebuilding layout, cost table, and scratch every iteration -- the
// setup cost the Runner amortizes away.
func BenchmarkFullRunCold(b *testing.B) {
	cfg := fullRunConfig()
	var last *tapejuke.Result
	for i := 0; i < b.N; i++ {
		res, err := tapejuke.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.ThroughputKBps, "KB/s")
		b.ReportMetric(float64(last.Completed), "requests")
	}
}
