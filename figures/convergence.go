package figures

import (
	"fmt"

	"tapejuke"
)

// Convergence is a methodology figure (not in the paper): throughput and
// mean response of the reference configuration as a function of the
// simulated horizon, with replications, showing where the estimators
// stabilize. The paper runs 10,000,000 s per point; this figure documents
// how much shorter horizons change the answers (very little beyond ~1M s),
// which justifies this repository's faster defaults.
//
// Unlike the paper figures it forces at least 3 replications, so it keeps
// its own grid rather than joining All's shared one (the shared grid runs
// every figure at a uniform replication count).
func Convergence(o Options) (*Figure, error) {
	if o.Replications < 3 {
		o.Replications = 3
	}
	return runPlan(o, planConvergence)
}

func planConvergence(o Options) (plan, error) {
	horizons := []float64{100_000, 300_000, 1_000_000, 3_000_000, 10_000_000}
	var jobs []job
	for _, alg := range []tapejuke.Algorithm{
		tapejuke.DynamicMaxBandwidth, tapejuke.EnvelopeMaxBandwidth,
	} {
		for _, h := range horizons {
			cfg := base(o)
			cfg.Algorithm = alg
			cfg.HorizonSec = h
			if alg == tapejuke.EnvelopeMaxBandwidth {
				cfg.Placement = tapejuke.Vertical
				cfg.Replicas = 9
				cfg.StartPos = 1
			}
			jobs = append(jobs, job{series: string(alg), param: h, cfg: cfg})
		}
	}
	return plan{jobs: jobs, finish: func(rows []Row) (*Figure, error) {
		return &Figure{
			ID:        "convergence",
			Title:     fmt.Sprintf("Estimator convergence with the simulated horizon (%d replications)", o.Replications),
			ParamName: "horizon_s",
			Rows:      rows,
		}, nil
	}}, nil
}
