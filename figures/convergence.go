package figures

import (
	"fmt"

	"tapejuke"
)

// Convergence is a methodology figure (not in the paper): throughput and
// mean response of the reference configuration as a function of the
// simulated horizon, with replications, showing where the estimators
// stabilize. The paper runs 10,000,000 s per point; this figure documents
// how much shorter horizons change the answers (very little beyond ~1M s),
// which justifies this repository's faster defaults.
func Convergence(o Options) (*Figure, error) {
	o = o.withDefaults()
	if o.Replications < 3 {
		o.Replications = 3
	}
	horizons := []float64{100_000, 300_000, 1_000_000, 3_000_000, 10_000_000}
	var jobs []job
	for _, alg := range []tapejuke.Algorithm{
		tapejuke.DynamicMaxBandwidth, tapejuke.EnvelopeMaxBandwidth,
	} {
		for _, h := range horizons {
			cfg := base(o)
			cfg.Algorithm = alg
			cfg.HorizonSec = h
			if alg == tapejuke.EnvelopeMaxBandwidth {
				cfg.Placement = tapejuke.Vertical
				cfg.Replicas = 9
				cfg.StartPos = 1
			}
			jobs = append(jobs, job{series: string(alg), param: h, cfg: cfg})
		}
	}
	rows, err := runAll(jobs, o.Workers, o.Replications)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:        "convergence",
		Title:     fmt.Sprintf("Estimator convergence with the simulated horizon (%d replications)", o.Replications),
		ParamName: "horizon_s",
		Rows:      rows,
	}, nil
}
