package figures

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"strings"
	"testing"
)

// renderToString renders a figure and fails the test on error.
func renderToString(t *testing.T, f *Figure, kind PlotKind) string {
	t.Helper()
	var buf bytes.Buffer
	if err := f.RenderSVG(&buf, kind); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// wellFormed checks the SVG parses as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
}

func TestRenderFig1Value(t *testing.T) {
	f, err := Fig1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	svg := renderToString(t, f, PlotAuto)
	wellFormed(t, svg)
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("missing svg envelope")
	}
	// Two series -> two polylines.
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
	if !strings.Contains(svg, "locate_seconds") {
		t.Error("missing y-axis label")
	}
	if strings.Contains(svg, "NaN") {
		t.Error("NaN leaked into coordinates")
	}
}

func TestRenderParametric(t *testing.T) {
	f := &Figure{
		ID:        "figX",
		Title:     "test <figure> & title",
		ParamName: "queue_length",
		Rows: []Row{
			{Series: "a", Param: 20, RequestsPerMinute: 0.5, MeanResponseSec: 2000, ThroughputKBps: 130},
			{Series: "a", Param: 60, RequestsPerMinute: 0.8, MeanResponseSec: 4500, ThroughputKBps: 215},
			{Series: "b", Param: 20, RequestsPerMinute: 0.4, MeanResponseSec: 2500, ThroughputKBps: 110},
			{Series: "b", Param: 60, RequestsPerMinute: 0.7, MeanResponseSec: 5000, ThroughputKBps: 190},
		},
	}
	svg := renderToString(t, f, PlotAuto) // auto -> parametric
	wellFormed(t, svg)
	if !strings.Contains(svg, "requests/minute") {
		t.Error("parametric axes not chosen")
	}
	// Title must be escaped.
	if strings.Contains(svg, "<figure>") {
		t.Error("unescaped markup in title")
	}
	if !strings.Contains(svg, "&lt;figure&gt; &amp; title") {
		t.Error("escaped title missing")
	}
	if got := strings.Count(svg, "<circle"); got != 4 {
		t.Errorf("point markers = %d, want 4", got)
	}
}

func TestRenderThroughputKind(t *testing.T) {
	f := &Figure{
		ID: "fig3", Title: "t", ParamName: "block_mb",
		Rows: []Row{
			{Series: "queue-60", Param: 8, ThroughputKBps: 130},
			{Series: "queue-60", Param: 16, ThroughputKBps: 215},
		},
	}
	svg := renderToString(t, f, PlotAuto)
	wellFormed(t, svg)
	if !strings.Contains(svg, "throughput (KB/s)") {
		t.Error("throughput axes not chosen for block_mb figures")
	}
}

func TestRenderLegendCapAndPaletteCycle(t *testing.T) {
	// 20 series: more than the legend shows and more than the palette
	// holds; rendering must stay well-formed with exactly maxLegendEntries
	// legend rows.
	f := &Figure{ID: "figL", Title: "many", ParamName: "p", ValueName: "v"}
	for i := 0; i < 20; i++ {
		f.Rows = append(f.Rows,
			Row{Series: fmt.Sprintf("s%02d", i), Param: 1, Value: float64(i)},
			Row{Series: fmt.Sprintf("s%02d", i), Param: 2, Value: float64(i + 1)},
		)
	}
	svg := renderToString(t, f, PlotAuto)
	wellFormed(t, svg)
	if got := strings.Count(svg, "<polyline"); got != 20 {
		t.Errorf("polylines = %d, want 20", got)
	}
	if got := strings.Count(svg, "<rect"); got != maxLegendEntries+1 { // + background
		t.Errorf("legend rects = %d, want %d", got-1, maxLegendEntries)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		25000: "25000",
		123.4: "123.4",
		12.34: "12.3",
		1.234: "1.234",
		0:     "0",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Errorf("xmlEscape = %q", got)
	}
}

func TestRenderEmptyFigure(t *testing.T) {
	f := &Figure{ID: "figE", Title: "empty"}
	var buf bytes.Buffer
	if err := f.RenderSVG(&buf, PlotAuto); err == nil {
		t.Error("empty figure rendered")
	}
}

func TestRenderDegenerateRange(t *testing.T) {
	// A single point (zero ranges) must not divide by zero.
	f := &Figure{
		ID: "figD", Title: "degenerate", ParamName: "p", ValueName: "v",
		Rows: []Row{{Series: "only", Param: 5, Value: 7}},
	}
	svg := renderToString(t, f, PlotAuto)
	wellFormed(t, svg)
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("degenerate range produced NaN/Inf coordinates")
	}
}
