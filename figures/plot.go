package figures

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// PlotKind selects the axes of a rendered chart.
type PlotKind int

const (
	// PlotAuto picks the kind the paper uses for the figure: parametric
	// throughput/delay when rows carry both, value-vs-param otherwise.
	PlotAuto PlotKind = iota
	// PlotParametric plots requests/minute (x) against mean response time
	// (y), tracing each series in parameter order -- the paper's
	// throughput/delay curves.
	PlotParametric
	// PlotValue plots Row.Value against Row.Param (Figures 1, 10a, 10b).
	PlotValue
	// PlotThroughput plots throughput (KB/s) against Row.Param (Figure 3).
	PlotThroughput
)

// chart geometry.
const (
	plotW, plotH         = 720, 480
	marginL, marginR     = 70, 170
	marginT, marginB     = 40, 55
	innerW               = plotW - marginL - marginR
	innerH               = plotH - marginT - marginB
	maxLegendEntries     = 16
	axisTicks            = 5
	pointRadius          = 2.5
	strokeWidth          = 1.6
	legendSwatch         = 14
	legendRowH           = 18
	titleFontSize        = 13
	labelFontSize        = 11
	tickFontSize         = 10
	defaultNumberFormatG = "%.4g"
)

// palette holds distinguishable series colors; they repeat after 14.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
	"#e377c2", "#17becf", "#bcbd22", "#7f7f7f", "#aec7e8", "#ff9896",
	"#98df8a", "#c5b0d5",
}

// RenderSVG writes the figure as a standalone SVG chart. Series are drawn
// as polylines with point markers and a legend; axes carry tick labels and
// the figure's parameter/value names.
func (f *Figure) RenderSVG(w io.Writer, kind PlotKind) error {
	if len(f.Rows) == 0 {
		return fmt.Errorf("figures: %s has no rows to plot", f.ID)
	}
	if kind == PlotAuto {
		kind = f.autoKind()
	}
	xs, ys, xlab, ylab := f.axes(kind)

	minX, maxX := bounds(xs)
	minY, maxY := bounds(ys)
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}
	// A little headroom.
	padY := (maxY - minY) * 0.05
	minY -= padY
	maxY += padY

	sx := func(v float64) float64 { return marginL + (v-minX)/(maxX-minX)*innerW }
	sy := func(v float64) float64 { return marginT + innerH - (v-minY)/(maxY-minY)*innerH }

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		plotW, plotH, plotW, plotH)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", plotW, plotH)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-size="%d" font-family="sans-serif">%s</text>`+"\n",
		marginL, marginT-18, titleFontSize, xmlEscape(f.ID+": "+f.Title))

	// Axes.
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+innerH, marginL+innerW, marginT+innerH)
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+innerH)
	for i := 0; i <= axisTicks; i++ {
		frac := float64(i) / axisTicks
		xv := minX + frac*(maxX-minX)
		yv := minY + frac*(maxY-minY)
		xpix := sx(xv)
		ypix := sy(yv)
		fmt.Fprintf(w, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			xpix, marginT+innerH, xpix, marginT+innerH+4)
		fmt.Fprintf(w, `<text x="%.1f" y="%d" font-size="%d" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
			xpix, marginT+innerH+16, tickFontSize, formatTick(xv))
		fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-4, ypix, marginL, ypix)
		fmt.Fprintf(w, `<text x="%d" y="%.1f" font-size="%d" font-family="sans-serif" text-anchor="end">%s</text>`+"\n",
			marginL-7, ypix+3, tickFontSize, formatTick(yv))
	}
	fmt.Fprintf(w, `<text x="%d" y="%d" font-size="%d" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
		marginL+innerW/2, plotH-14, labelFontSize, xmlEscape(xlab))
	fmt.Fprintf(w, `<text x="16" y="%d" font-size="%d" font-family="sans-serif" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`+"\n",
		marginT+innerH/2, labelFontSize, marginT+innerH/2, xmlEscape(ylab))

	// Series.
	order := f.seriesOrder()
	for si, name := range order {
		color := palette[si%len(palette)]
		var pts []point
		for i, r := range f.Rows {
			if r.Series != name {
				continue
			}
			pts = append(pts, point{x: xs[i], y: ys[i], param: r.Param})
		}
		sort.Slice(pts, func(a, b int) bool { return pts[a].param < pts[b].param })
		poly := ""
		for _, p := range pts {
			poly += fmt.Sprintf("%.1f,%.1f ", sx(p.x), sy(p.y))
		}
		fmt.Fprintf(w, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f"/>`+"\n",
			poly, color, strokeWidth)
		for _, p := range pts {
			fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n",
				sx(p.x), sy(p.y), pointRadius, color)
		}
		// Legend.
		if si < maxLegendEntries {
			ly := marginT + si*legendRowH
			lx := marginL + innerW + 12
			fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
				lx, ly, legendSwatch, legendSwatch-4, color)
			fmt.Fprintf(w, `<text x="%d" y="%d" font-size="%d" font-family="sans-serif">%s</text>`+"\n",
				lx+legendSwatch+5, ly+9, tickFontSize, xmlEscape(name))
		}
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}

type point struct{ x, y, param float64 }

// autoKind chooses the paper's presentation for the figure.
func (f *Figure) autoKind() PlotKind {
	switch {
	case f.ValueName != "":
		return PlotValue
	case f.ParamName == "block_mb":
		return PlotThroughput
	default:
		return PlotParametric
	}
}

// axes extracts per-row x/y values and axis labels for the plot kind.
func (f *Figure) axes(kind PlotKind) (xs, ys []float64, xlab, ylab string) {
	xs = make([]float64, len(f.Rows))
	ys = make([]float64, len(f.Rows))
	switch kind {
	case PlotValue:
		for i, r := range f.Rows {
			xs[i], ys[i] = r.Param, r.Value
		}
		return xs, ys, f.ParamName, f.ValueName
	case PlotThroughput:
		for i, r := range f.Rows {
			xs[i], ys[i] = r.Param, r.ThroughputKBps
		}
		return xs, ys, f.ParamName, "throughput (KB/s)"
	default:
		for i, r := range f.Rows {
			xs[i], ys[i] = r.RequestsPerMinute, r.MeanResponseSec
		}
		return xs, ys, "throughput (requests/minute)", "mean response time (s)"
	}
}

// seriesOrder lists series labels in first-appearance order.
func (f *Figure) seriesOrder() []string {
	var out []string
	seen := make(map[string]bool)
	for _, r := range f.Rows {
		if !seen[r.Series] {
			seen[r.Series] = true
			out = append(out, r.Series)
		}
	}
	return out
}

func bounds(vs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf(defaultNumberFormatG, v)
	}
}

func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			out = append(out, "&amp;"...)
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
