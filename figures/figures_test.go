package figures

import (
	"fmt"
	"math"
	"testing"
)

// tiny keeps figure tests fast: short horizon, two intensities.
func tiny() Options {
	return Options{HorizonSec: 40_000, QueueLengths: []int{20, 60}, Seed: 1}
}

func seriesSet(f *Figure) map[string]int {
	out := make(map[string]int)
	for _, r := range f.Rows {
		out[r.Series]++
	}
	return out
}

func TestFig1Shape(t *testing.T) {
	f, err := Fig1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	ss := seriesSet(f)
	if ss["forward"] == 0 || ss["reverse"] == 0 {
		t.Fatalf("missing series: %v", ss)
	}
	// Locate time grows with distance within each series, except for the
	// documented sub-second dip where the fitted short and long segments
	// meet (28 -> 29 MB).
	last := map[string]float64{}
	for _, r := range f.Rows {
		if prev, ok := last[r.Series]; ok && r.Value < prev-0.3 {
			t.Errorf("%s: locate time fell from %v to %v at %v MB", r.Series, prev, r.Value, r.Param)
		}
		last[r.Series] = r.Value
	}
}

func TestFig3TransferSizeShape(t *testing.T) {
	f, err := Fig3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Throughput at 16 MB blocks must clearly exceed 4 MB blocks for every
	// intensity (Question 1: small transfers starve the system).
	by := map[string]map[float64]float64{}
	for _, r := range f.Rows {
		if by[r.Series] == nil {
			by[r.Series] = map[float64]float64{}
		}
		by[r.Series][r.Param] = r.ThroughputKBps
	}
	for series, pts := range by {
		if pts[16] <= pts[4] {
			t.Errorf("%s: 16 MB (%v KB/s) should beat 4 MB (%v KB/s)", series, pts[16], pts[4])
		}
	}
}

func TestFig4FIFOVertical(t *testing.T) {
	f, err := Fig4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// FIFO's curve is a vertical line: throughput roughly constant in the
	// queue length, while delay grows with it (Section 4.2).
	var fifo []Row
	for _, r := range f.Rows {
		if r.Series == "fifo" {
			fifo = append(fifo, r)
		}
	}
	if len(fifo) != 2 {
		t.Fatalf("fifo rows = %d", len(fifo))
	}
	if rel := math.Abs(fifo[0].ThroughputKBps-fifo[1].ThroughputKBps) / fifo[0].ThroughputKBps; rel > 0.05 {
		t.Errorf("FIFO throughput varies %.1f%% across queue lengths; should be flat", rel*100)
	}
	if fifo[1].MeanResponseSec <= fifo[0].MeanResponseSec {
		t.Error("FIFO delay should grow with queue length")
	}
	// Dynamic max-bandwidth beats FIFO at the heavier load.
	for _, r := range f.Rows {
		if r.Series == "dynamic-max-bandwidth" && r.Param == 60 {
			if r.ThroughputKBps <= fifo[1].ThroughputKBps {
				t.Error("dynamic max-bandwidth should beat FIFO")
			}
		}
	}
}

func TestFig6MoreReplicasBetter(t *testing.T) {
	f, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	get := func(series string, q float64) float64 {
		for _, r := range f.Rows {
			if r.Series == series && r.Param == q {
				return r.ThroughputKBps
			}
		}
		t.Fatalf("missing %s q=%v", series, q)
		return 0
	}
	if get("NR-9", 60) <= get("NR-0", 60) {
		t.Error("full replication should beat none at queue 60")
	}
}

func TestFig10aExactValues(t *testing.T) {
	f, err := Fig10a(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Rows {
		var ph float64
		if _, err := fmtSscanfSeries(r.Series, &ph); err != nil {
			t.Fatalf("bad series %q", r.Series)
		}
		want := 1 + r.Param*ph/100
		if math.Abs(r.Value-want) > 1e-12 {
			t.Errorf("%s NR=%v: E=%v, want %v", r.Series, r.Param, r.Value, want)
		}
	}
}

func TestFig10bBaselineRatioOne(t *testing.T) {
	f, err := Fig10b(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Rows {
		if r.Param == 0 && math.Abs(r.Value-1) > 1e-9 {
			t.Errorf("%s: baseline ratio %v, want 1", r.Series, r.Value)
		}
		if r.Value <= 0 {
			t.Errorf("%s NR=%v: non-positive ratio %v", r.Series, r.Param, r.Value)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig1", tiny()); err != nil {
		t.Errorf("fig1: %v", err)
	}
	if _, err := ByID("fig99", tiny()); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestConvergenceFigure(t *testing.T) {
	// Shrink the study drastically for the test: the structure matters
	// here, not the statistics.
	o := Options{HorizonSec: 40_000, QueueLengths: []int{20}, Seed: 1, Replications: 3}
	f, err := Convergence(o)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "convergence" || len(f.Rows) == 0 {
		t.Fatalf("figure: %+v", f)
	}
	ss := seriesSet(f)
	if len(ss) != 2 {
		t.Errorf("series = %v, want the two reference schedulers", ss)
	}
	for _, r := range f.Rows {
		if r.ThroughputKBps <= 0 {
			t.Errorf("row %+v has no throughput", r)
		}
		if r.ThroughputCI95 <= 0 {
			t.Errorf("row %+v missing confidence interval", r)
		}
	}
}

func TestAllGeneratesEveryFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("generates every figure")
	}
	figs, err := All(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 10 {
		t.Fatalf("got %d figures, want 10", len(figs))
	}
	for _, f := range figs {
		if len(f.Rows) == 0 {
			t.Errorf("%s has no rows", f.ID)
		}
	}
}

func TestReplicationsProduceIntervals(t *testing.T) {
	o := tiny()
	o.Replications = 3
	f, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	anyCI := false
	for _, r := range f.Rows {
		if r.ThroughputCI95 < 0 || r.ResponseCI95 < 0 {
			t.Fatalf("negative CI in %+v", r)
		}
		if r.ThroughputCI95 > 0 {
			anyCI = true
		}
		// The interval should be narrow relative to the mean at these
		// horizons -- otherwise the figure points are noise.
		if r.ThroughputKBps > 0 && r.ThroughputCI95 > 0.25*r.ThroughputKBps {
			t.Errorf("CI %.2f is huge next to mean %.2f", r.ThroughputCI95, r.ThroughputKBps)
		}
	}
	if !anyCI {
		t.Error("no confidence intervals computed with 3 replications")
	}

	// Single runs carry no intervals.
	f, err = Fig3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Rows {
		if r.ThroughputCI95 != 0 || r.ResponseCI95 != 0 {
			t.Fatal("intervals reported without replications")
		}
	}
}

func TestExtensionFigures(t *testing.T) {
	o := tiny()
	for _, id := range []string{"serpentine", "multidrive", "gradualfill"} {
		f, err := ByID(id, o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(f.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
		for _, r := range f.Rows {
			if r.ThroughputKBps <= 0 {
				t.Errorf("%s: %s param %v has no throughput", id, r.Series, r.Param)
			}
		}
	}
	// Multi-drive scaling: 2 drives beat 1 at the same intensity.
	f, err := MultiDrive(o)
	if err != nil {
		t.Fatal(err)
	}
	get := func(series string, q float64) float64 {
		for _, r := range f.Rows {
			if r.Series == series && r.Param == q {
				return r.ThroughputKBps
			}
		}
		t.Fatalf("missing %s q=%v", series, q)
		return 0
	}
	if get("drives-2", 60) <= get("drives-1", 60) {
		t.Error("two drives should beat one")
	}
}

func TestOpenVariant(t *testing.T) {
	o := tiny()
	o.Open = true
	f, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if f.ParamName != "mean_interarrival_s" {
		t.Errorf("open param name = %q", f.ParamName)
	}
	if len(f.Rows) == 0 {
		t.Fatal("no rows")
	}
}

// fmtSscanfSeries parses "PH-10" style labels.
func fmtSscanfSeries(s string, ph *float64) (int, error) {
	return fmt.Sscanf(s, "PH-%f", ph)
}
