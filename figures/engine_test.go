package figures

import (
	"bytes"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"tapejuke"
)

// TestGridDeterministicAcrossWorkers pins the engine's central guarantee:
// the rows -- including replication means and confidence intervals, which
// are sensitive to floating-point summation order -- are identical at every
// worker count, because tasks write disjoint slots and the reduction is
// sequential in input order.
func TestGridDeterministicAcrossWorkers(t *testing.T) {
	o := tiny()
	o.Replications = 2
	p, err := planFig6(o.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	var ref []Row
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		rows, err := runGrid(p.jobs, workers, o.Replications)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = rows
			continue
		}
		if !reflect.DeepEqual(rows, ref) {
			t.Fatalf("workers=%d produced different rows", workers)
		}
	}
}

// TestAllTSVByteIdenticalAcrossWorkers drives the same guarantee end to
// end: the full figure set, serialized, is byte-identical at every worker
// count.
func TestAllTSVByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("generates every figure repeatedly")
	}
	render := func(workers int) string {
		o := tiny()
		o.Workers = workers
		figs, err := All(o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		for _, f := range figs {
			if err := f.WriteTSV(&buf, false); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	ref := render(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := render(workers); got != ref {
			t.Fatalf("workers=%d produced different TSV", workers)
		}
	}
}

// TestGridErrorAggregation: a failing job stops the grid, and the returned
// error carries the series/param/replication context of every recorded
// failure.
func TestGridErrorAggregation(t *testing.T) {
	good := base(tiny().withDefaults())
	good.HorizonSec = 10_000
	bad := good
	bad.Algorithm = "no-such-algorithm"
	jobs := []job{
		{series: "ok", param: 1, cfg: good},
		{series: "broken", param: 32, cfg: bad},
		{series: "also-broken", param: 64, cfg: bad},
	}
	_, err := runGrid(jobs, 1, 1)
	if err == nil {
		t.Fatal("grid with an invalid job succeeded")
	}
	if !strings.Contains(err.Error(), "broken param 32 rep 0") {
		t.Errorf("error lacks series/param/rep context: %v", err)
	}
	// With one worker the failure stops claiming before the third job, so
	// only the first failure is reported.
	if strings.Contains(err.Error(), "also-broken") {
		t.Errorf("worker kept claiming tasks after a failure: %v", err)
	}
}

// TestRunnerSharedAcrossSeries: the grid's per-worker Runner must produce
// results identical to fresh runs even though consecutive tasks reuse the
// same simulation context across different series and parameters.
func TestRunnerSharedAcrossSeries(t *testing.T) {
	o := tiny()
	p, err := planFig9(o.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := runGrid(p.jobs, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range p.jobs {
		res, err := tapejuke.Run(j.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rows[i].ThroughputKBps != res.ThroughputKBps ||
			rows[i].MeanResponseSec != res.MeanResponseSec {
			t.Fatalf("%s param %v: grid (%v, %v) != fresh run (%v, %v)",
				j.series, j.param,
				rows[i].ThroughputKBps, rows[i].MeanResponseSec,
				res.ThroughputKBps, res.MeanResponseSec)
		}
	}
}

func TestWriteTSVGolden(t *testing.T) {
	f := &Figure{
		ID:        "figX",
		Title:     "A test figure",
		ParamName: "queue_length",
		Rows: []Row{
			{Series: "a", Param: 20, ThroughputKBps: 123.456, RequestsPerMinute: 1.23456, MeanResponseSec: 45.67},
		},
	}
	var buf bytes.Buffer
	if err := f.WriteTSV(&buf, false); err != nil {
		t.Fatal(err)
	}
	want := "# figX: A test figure\n" +
		"figure\tseries\tqueue_length\tthroughput_kbps\treq_per_min\tmean_response_s\t-\n" +
		"figX\ta\t20\t123.46\t1.2346\t45.7\t0.0000\n\n"
	if got := buf.String(); got != want {
		t.Errorf("WriteTSV:\n%q\nwant:\n%q", got, want)
	}

	// forceCI switches to the interval column set even when all intervals
	// are zero, so -reps output keeps a stable schema.
	buf.Reset()
	if err := f.WriteTSV(&buf, true); err != nil {
		t.Fatal(err)
	}
	want = "# figX: A test figure\n" +
		"figure\tseries\tqueue_length\tthroughput_kbps\tthroughput_ci95\treq_per_min\tmean_response_s\tresponse_ci95\t-\n" +
		"figX\ta\t20\t123.46\t0.00\t1.2346\t45.7\t0.0\t0.0000\n\n"
	if got := buf.String(); got != want {
		t.Errorf("WriteTSV with forceCI:\n%q\nwant:\n%q", got, want)
	}
}

// TestLTO9Figure: the LTO-9 extension figure is selectable by name and
// carries the three series, including the RAO variant.
func TestLTO9Figure(t *testing.T) {
	f, err := ByID("lto9", tiny())
	if err != nil {
		t.Fatal(err)
	}
	ss := seriesSet(f)
	for _, s := range []string{"dyn", "env-NR9", "env-NR9-rao"} {
		if ss[s] == 0 {
			t.Errorf("missing series %s (have %v)", s, ss)
		}
	}
	for _, r := range f.Rows {
		if r.ThroughputKBps <= 0 {
			t.Errorf("%s param %v has no throughput", r.Series, r.Param)
		}
	}
}
