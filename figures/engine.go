package figures

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"tapejuke"
	"tapejuke/internal/stats"
)

// job is one simulated point of a figure (before replication fan-out).
// value, when non-nil, extracts an extra metric from each run's result; the
// replication mean lands in the row's Value column.
type job struct {
	series string
	param  float64
	cfg    tapejuke.Config
	value  func(*tapejuke.Result) float64
}

// plan is a figure broken into its simulation jobs plus a finishing step
// that shapes the resulting rows (one per job, in job order) into the
// figure. Analytic figures have no jobs. Plans exist so All can pour every
// figure's jobs into one shared worker pool with no barrier between
// figures: a slow straggler of one figure overlaps the next figure's work
// instead of idling the pool.
type plan struct {
	jobs   []job
	finish func([]Row) (*Figure, error)
}

// runPlan executes a single figure's plan on its own grid.
func runPlan(o Options, pf func(Options) (plan, error)) (*Figure, error) {
	o = o.withDefaults()
	p, err := pf(o)
	if err != nil {
		return nil, err
	}
	rows, err := runGrid(p.jobs, o.Workers, o.Replications)
	if err != nil {
		return nil, err
	}
	return p.finish(rows)
}

// runGrid executes every (job, replication) task on a pool of persistent
// workers and reduces the results to one mean row per job.
//
// Determinism: each task writes into its own slot of the per-metric arrays
// (disjoint writes, no shared accumulators, no locks), and the reduction
// below runs sequentially in job-then-replication input order, so the
// output -- including replication means and confidence intervals, which
// are sensitive to floating-point summation order -- is byte-identical at
// every worker count.
//
// Each worker owns one tapejuke.Runner for the lifetime of the grid, so
// data layouts, cost tables, and simulator scratch are reused across every
// task the worker claims rather than rebuilt per run.
//
// The first failure makes workers stop claiming tasks; already-claimed
// tasks finish, and every recorded error is returned joined, in task
// order, each carrying its series/param/replication context.
func runGrid(jobs []job, workers, reps int) ([]Row, error) {
	if workers < 1 {
		workers = 1
	}
	if reps < 1 {
		reps = 1
	}
	tasks := len(jobs) * reps
	if workers > tasks {
		workers = tasks
	}
	tps := make([]float64, tasks)
	rpms := make([]float64, tasks)
	resps := make([]float64, tasks)
	vals := make([]float64, tasks)
	errs := make([]error, tasks)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := tapejuke.NewRunner()
			for {
				t := int(next.Add(1)) - 1
				if t >= tasks || failed.Load() {
					return
				}
				i, rep := t/reps, t%reps
				cfg := jobs[i].cfg
				// Replication seeds are spaced 7919 (the 1000th prime)
				// apart: far enough that the streams a run derives from
				// its seed (workload at Seed, arrivals at Seed+1, writes
				// at Seed+2, bursts at Seed+5) never collide across
				// replications, and fixed so recorded figures stay
				// reproducible. See DESIGN.md section 13.
				cfg.Seed += int64(rep) * 7919
				res, err := r.Run(cfg)
				if err != nil {
					errs[t] = fmt.Errorf("%s param %v rep %d: %w",
						jobs[i].series, jobs[i].param, rep, err)
					failed.Store(true)
					return
				}
				tps[t] = res.ThroughputKBps
				rpms[t] = res.RequestsPerMinute
				resps[t] = res.MeanResponseSec
				if jobs[i].value != nil {
					vals[t] = jobs[i].value(res)
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		return nil, errors.Join(errs...)
	}
	rows := make([]Row, len(jobs))
	for i := range jobs {
		var tp, rpm, resp, val stats.Accumulator
		for rep := 0; rep < reps; rep++ {
			t := i*reps + rep
			tp.Add(tps[t])
			rpm.Add(rpms[t])
			resp.Add(resps[t])
			val.Add(vals[t])
		}
		rows[i] = Row{
			Series:            jobs[i].series,
			Param:             jobs[i].param,
			ThroughputKBps:    tp.Mean(),
			RequestsPerMinute: rpm.Mean(),
			MeanResponseSec:   resp.Mean(),
		}
		if jobs[i].value != nil {
			rows[i].Value = val.Mean()
		}
		if reps > 1 {
			n := math.Sqrt(float64(reps))
			rows[i].ThroughputCI95 = 1.96 * tp.StdDev() / n
			rows[i].ResponseCI95 = 1.96 * resp.StdDev() / n
		}
	}
	return rows, nil
}

// WriteTSV writes the figure in cmd/figures' tab-separated format: a
// commented "# id: title" line, a header, one line per row, and a trailing
// blank line. The confidence-interval columns appear when any row carries
// intervals or forceCI is set (cmd/figures forces them whenever -reps > 1
// so the column set never depends on the data).
func (f *Figure) WriteTSV(w io.Writer, forceCI bool) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", f.ID, f.Title); err != nil {
		return err
	}
	valueCol := f.ValueName
	if valueCol == "" {
		valueCol = "-"
	}
	hasCI := forceCI
	for _, r := range f.Rows {
		if r.ThroughputCI95 > 0 || r.ResponseCI95 > 0 {
			hasCI = true
			break
		}
	}
	if hasCI {
		if _, err := fmt.Fprintf(w, "figure\tseries\t%s\tthroughput_kbps\tthroughput_ci95\treq_per_min\tmean_response_s\tresponse_ci95\t%s\n",
			f.ParamName, valueCol); err != nil {
			return err
		}
		for _, r := range f.Rows {
			if _, err := fmt.Fprintf(w, "%s\t%s\t%g\t%.2f\t%.2f\t%.4f\t%.1f\t%.1f\t%.4f\n",
				f.ID, r.Series, r.Param,
				r.ThroughputKBps, r.ThroughputCI95, r.RequestsPerMinute,
				r.MeanResponseSec, r.ResponseCI95, r.Value); err != nil {
				return err
			}
		}
	} else {
		if _, err := fmt.Fprintf(w, "figure\tseries\t%s\tthroughput_kbps\treq_per_min\tmean_response_s\t%s\n",
			f.ParamName, valueCol); err != nil {
			return err
		}
		for _, r := range f.Rows {
			if _, err := fmt.Fprintf(w, "%s\t%s\t%g\t%.2f\t%.4f\t%.1f\t%.4f\n",
				f.ID, r.Series, r.Param,
				r.ThroughputKBps, r.RequestsPerMinute, r.MeanResponseSec, r.Value); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
