package figures

import (
	"fmt"

	"tapejuke"
)

// Farm sweeps shard count × cross-library placement policy for a
// replicated jukebox farm under a fixed per-library offered load (the
// farm-level arrival rate grows with the shard count). Each point is one
// RunFarm — itself parallel over shards with Options.Workers goroutines —
// reporting aggregate throughput and the completion-weighted P99 tail.
// Spread placement puts each hot block's NR+1 copies on NR+1 different
// libraries at the same expansion factor E as per-library replication,
// so the curve separation is pure placement effect.
func Farm(o Options) (*Figure, error) { return runPlan(o, planFarm) }

// planFarm has no grid jobs: every point is a farm run with its own
// internal worker pool, so the finish hook drives RunFarm directly.
func planFarm(o Options) (plan, error) {
	return plan{finish: func([]Row) (*Figure, error) {
		f := &Figure{
			ID:        "farm",
			Title:     "Jukebox farm: aggregate throughput and P99 tail vs. shards x placement (NR=1, equal E for local/spread)",
			ParamName: "shards",
			ValueName: "p99_response_s",
		}
		const perLibraryMean = 80 // seconds between arrivals per library
		for _, pol := range []tapejuke.FarmPlacement{tapejuke.FarmLocal, tapejuke.FarmSpread, tapejuke.FarmMirror} {
			for _, n := range []int{1, 2, 4} {
				cfg := base(o)
				cfg.QueueLength = 0
				cfg.MeanInterarrivalSec = perLibraryMean / float64(n)
				cfg.Algorithm = tapejuke.EnvelopeMaxBandwidth
				cfg.ReadHotPercent = 80
				cfg.Replicas = 1
				cfg.DataMB = 2000 * cfg.BlockMB // partial fill so mirroring fits
				cfg.Faults.TapeMTBFSec = 4_000_000
				fr, err := tapejuke.RunFarm(tapejuke.FarmConfig{
					Shards:    n,
					Placement: pol,
					Workers:   o.Workers,
					Base:      cfg,
				})
				if err != nil {
					return nil, fmt.Errorf("farm %s x%d: %w", pol, n, err)
				}
				f.Rows = append(f.Rows, Row{
					Series:            string(pol),
					Param:             float64(n),
					ThroughputKBps:    fr.ThroughputKBps,
					RequestsPerMinute: fr.RequestsPerMinute,
					MeanResponseSec:   fr.MeanResponseSec,
					Value:             fr.P99ResponseSec,
				})
			}
		}
		return f, nil
	}}, nil
}
