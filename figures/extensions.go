package figures

import (
	"fmt"

	"tapejuke"
)

// The figures in this file are extension studies beyond the paper,
// registered alongside the reproduction figures so cmd/figures can
// regenerate every number in EXPERIMENTS.md.

// serpentineSweep builds one series of queue-length jobs on the given
// serpentine drive profile, with mut applied to each configuration.
func serpentineSweep(o Options, profile, label string, mut func(*tapejuke.Config)) []job {
	var jobs []job
	for i := range o.QueueLengths {
		cfg := base(o)
		cfg.DriveProfile = profile
		cfg.RAO = false
		mut(&cfg)
		p := applyIntensity(&cfg, o, i)
		jobs = append(jobs, job{series: label, param: p, cfg: cfg})
	}
	return jobs
}

// Serpentine compares placements and schedulers on the synthetic DLT-class
// serpentine drive -- the technology the paper excludes. Two stories in one
// figure: hot-data placement barely matters on serpentine geometry (series
// "dyn-SP0" vs "dyn-SP1"), while replication plus the envelope scheduler
// still wins ("env-NR9" vs both).
func Serpentine(o Options) (*Figure, error) { return runPlan(o, planSerpentine) }

func planSerpentine(o Options) (plan, error) {
	var jobs []job
	jobs = append(jobs, serpentineSweep(o, "dlt7000", "dyn-SP0", func(c *tapejuke.Config) { c.StartPos = 0 })...)
	jobs = append(jobs, serpentineSweep(o, "dlt7000", "dyn-SP1", func(c *tapejuke.Config) { c.StartPos = 1 })...)
	jobs = append(jobs, serpentineSweep(o, "dlt7000", "env-NR9", func(c *tapejuke.Config) {
		c.Algorithm = tapejuke.EnvelopeMaxBandwidth
		c.Placement = tapejuke.Vertical
		c.Replicas = 9
		c.StartPos = 1
	})...)
	return plan{jobs: jobs, finish: func(rows []Row) (*Figure, error) {
		return &Figure{
			ID:        "serpentine",
			Title:     "Extension: placement and replication on a serpentine (DLT-class) drive",
			ParamName: intensityName(o),
			Rows:      rows,
		}, nil
	}}, nil
}

// LTO9 runs the same study on the LTO-9-class profile (many more track
// passes, far higher streaming rate) and adds a third story: the effect of
// Recommended-Access-Order sweep reordering on the envelope scheduler
// ("env-NR9-rao" vs "env-NR9"). RAO re-sorts each mounted-tape sweep by
// serpentine service order starting from the current head, the reordering
// modern LTO drives perform in firmware.
func LTO9(o Options) (*Figure, error) { return runPlan(o, planLTO9) }

func planLTO9(o Options) (plan, error) {
	env := func(c *tapejuke.Config) {
		c.Algorithm = tapejuke.EnvelopeMaxBandwidth
		c.Placement = tapejuke.Vertical
		c.Replicas = 9
		c.StartPos = 1
	}
	var jobs []job
	jobs = append(jobs, serpentineSweep(o, "lto9", "dyn", func(c *tapejuke.Config) {})...)
	jobs = append(jobs, serpentineSweep(o, "lto9", "env-NR9", env)...)
	jobs = append(jobs, serpentineSweep(o, "lto9", "env-NR9-rao", func(c *tapejuke.Config) {
		env(c)
		c.RAO = true
	})...)
	return plan{jobs: jobs, finish: func(rows []Row) (*Figure, error) {
		return &Figure{
			ID:        "lto9",
			Title:     "Extension: scheduling and RAO reordering on an LTO-9-class serpentine drive",
			ParamName: intensityName(o),
			Rows:      rows,
		}, nil
	}}, nil
}

// MultiDrive sweeps the drive count of the jukebox (the paper's future
// work) across workload intensities.
func MultiDrive(o Options) (*Figure, error) { return runPlan(o, planMultiDrive) }

func planMultiDrive(o Options) (plan, error) {
	var jobs []job
	for _, drives := range []int{1, 2, 3, 4} {
		for i := range o.QueueLengths {
			cfg := base(o)
			cfg.Drives = drives
			p := applyIntensity(&cfg, o, i)
			jobs = append(jobs, job{series: fmt.Sprintf("drives-%d", drives), param: p, cfg: cfg})
		}
	}
	return plan{jobs: jobs, finish: func(rows []Row) (*Figure, error) {
		return &Figure{
			ID:        "multidrive",
			Title:     "Extension: multi-drive jukebox scaling (shared tapes, shared pending list)",
			ParamName: intensityName(o),
			Rows:      rows,
		}, nil
	}}, nil
}

// GradualFill regenerates the Section 4.8 lifecycle table: the recommended
// layout versus the naive one at each occupancy, under the envelope
// scheduler. Row.Value carries the plan's replica count.
func GradualFill(o Options) (*Figure, error) { return runPlan(o, planGradualFill) }

func planGradualFill(o Options) (plan, error) {
	capacityMB := 10 * 7168.0
	var jobs []job
	for _, fill := range []float64{0.2, 0.4, 0.6, 0.8, 0.9, 0.97, 1.0} {
		planned := tapejuke.Config{
			Algorithm:  tapejuke.EnvelopeMaxBandwidth,
			DataMB:     fill * capacityMB,
			HorizonSec: o.HorizonSec,
			Seed:       o.Seed,
		}
		plannedCfg, _, err := tapejuke.PlanGradualFill(planned)
		if err != nil {
			return plan{}, err
		}
		jobs = append(jobs, job{series: "recommended", param: fill, cfg: plannedCfg})

		naive := planned.WithDefaults()
		jobs = append(jobs, job{series: "naive", param: fill, cfg: naive})
	}
	return plan{jobs: jobs, finish: func(rows []Row) (*Figure, error) {
		// Attach the replica counts to the recommended rows.
		out := make([]Row, len(rows))
		copy(out, rows)
		for i, r := range out {
			if r.Series != "recommended" {
				continue
			}
			cfg := tapejuke.Config{DataMB: r.Param * capacityMB}
			if _, gfPlan, err := tapejuke.PlanGradualFill(cfg); err == nil {
				out[i].Value = float64(gfPlan.Replicas)
			}
		}
		return &Figure{
			ID:        "gradualfill",
			Title:     "Extension: the Section 4.8 gradual-fill procedure vs. a naive layout",
			ParamName: "fill_fraction",
			ValueName: "plan_replicas",
			Rows:      out,
		}, nil
	}}, nil
}

// Repair studies the self-healing replication extension: availability as a
// function of the simulated horizon under random tape failures, with and
// without background repair, at one and two extra replicas. Longer horizons
// accumulate more tape deaths; without repair each death permanently erodes
// the surviving copy count, while the repair planner rebuilds lost replicas
// during idle time and holds availability up. Row.Value carries the
// availability (post-warmup completed / (completed + unserviceable)).
func Repair(o Options) (*Figure, error) { return runPlan(o, planRepair) }

// Health studies the proactive media-health extension on top of repair:
// availability and latent-error detection latency as a function of the
// horizon under tape failures and developing latent errors, for repair
// alone, repair plus idle-time scrubbing, and repair plus scrubbing plus
// preemptive evacuation of suspect tapes. Each variant appears twice: the
// "-avail" series carry availability in Row.Value and the "-mttd" series
// carry the mean onset-to-detection latency (undetected latents censored at
// the horizon), so longer horizons show scrubbing holding detection latency
// down while pure repair only learns of a latent when a read trips it.
func Health(o Options) (*Figure, error) { return runPlan(o, planHealth) }

func planHealth(o Options) (plan, error) {
	horizons := []float64{250_000, 500_000, 1_000_000, 1_500_000, 2_000_000}
	variants := []struct {
		label string
		mut   func(*tapejuke.Config)
	}{
		{"repair", func(c *tapejuke.Config) {}},
		{"scrub", func(c *tapejuke.Config) {
			c.Health = tapejuke.HealthConfig{Enable: true, ScrubRate: 64}
		}},
		{"scrub-evac", func(c *tapejuke.Config) {
			c.Health = tapejuke.HealthConfig{Enable: true, ScrubRate: 64,
				SuspectScore: 3, Evacuate: true}
		}},
	}
	metrics := []struct {
		label string
		value func(*tapejuke.Result) float64
	}{
		{"avail", func(r *tapejuke.Result) float64 { return r.Availability }},
		{"mttd", func(r *tapejuke.Result) float64 { return r.MeanTimeToDetectSec }},
	}
	var jobs []job
	for _, v := range variants {
		for _, m := range metrics {
			for _, h := range horizons {
				// The same open uniform-heat workload as the repair figure,
				// with latent errors developing alongside whole-tape deaths.
				cfg := tapejuke.Config{
					Algorithm:           tapejuke.EnvelopeMaxBandwidth,
					HotPercent:          100,
					ReadHotPercent:      100,
					DataMB:              16_000,
					Replicas:            2,
					MeanInterarrivalSec: 300,
					HorizonSec:          h,
					Seed:                13 + o.Seed,
					Faults: tapejuke.FaultConfig{
						TapeMTBFSec:         1_200_000,
						LatentErrorsPerTape: 2,
						LatentMeanOnsetSec:  400_000,
					},
					Repair: tapejuke.RepairConfig{Enable: true},
				}
				v.mut(&cfg)
				cfg = cfg.WithDefaults()
				cfg.QueueLength = 0
				jobs = append(jobs, job{series: v.label + "-" + m.label,
					param: h, cfg: cfg, value: m.value})
			}
		}
	}
	return plan{jobs: jobs, finish: func(rows []Row) (*Figure, error) {
		return &Figure{
			ID:        "health",
			Title:     "Extension: media-health scrubbing and evacuation under latent errors (PH-100 RH-100 NR-2, open model)",
			ParamName: "horizon_s",
			ValueName: "availability_or_mttd_s",
			Rows:      rows,
		}, nil
	}}, nil
}

func planRepair(o Options) (plan, error) {
	horizons := []float64{250_000, 500_000, 1_000_000, 1_500_000, 2_000_000}
	avail := func(r *tapejuke.Result) float64 { return r.Availability }
	var jobs []job
	for _, nr := range []int{1, 2} {
		for _, rep := range []bool{false, true} {
			for _, h := range horizons {
				// The open uniform-heat workload that separates the
				// series cleanly: every block hot and requested, so a
				// block whose copies all die is noticed as unserviceable
				// demand rather than silently never asked for.
				cfg := tapejuke.Config{
					Algorithm:           tapejuke.EnvelopeMaxBandwidth,
					HotPercent:          100,
					ReadHotPercent:      100,
					DataMB:              16_000,
					Replicas:            nr,
					MeanInterarrivalSec: 300,
					HorizonSec:          h,
					Seed:                13 + o.Seed,
					Faults:              tapejuke.FaultConfig{TapeMTBFSec: 1_200_000},
				}.WithDefaults()
				cfg.QueueLength = 0
				label := fmt.Sprintf("NR%d-norepair", nr)
				if rep {
					cfg.Repair = tapejuke.RepairConfig{Enable: true}
					label = fmt.Sprintf("NR%d-repair", nr)
				}
				jobs = append(jobs, job{series: label, param: h, cfg: cfg, value: avail})
			}
		}
	}
	return plan{jobs: jobs, finish: func(rows []Row) (*Figure, error) {
		return &Figure{
			ID:        "repair",
			Title:     "Extension: self-healing replication under tape failures (PH-100 RH-100, open model)",
			ParamName: "horizon_s",
			ValueName: "availability",
			Rows:      rows,
		}, nil
	}}, nil
}
