package figures

import (
	"fmt"

	"tapejuke"
)

// The figures in this file are extension studies beyond the paper,
// registered alongside the reproduction figures so cmd/figures can
// regenerate every number in EXPERIMENTS.md.

// Serpentine compares placements and schedulers on the synthetic DLT-class
// serpentine drive -- the technology the paper excludes. Two stories in one
// figure: hot-data placement barely matters on serpentine geometry (series
// "dyn-SP0" vs "dyn-SP1"), while replication plus the envelope scheduler
// still wins ("env-NR9" vs both).
func Serpentine(o Options) (*Figure, error) {
	o = o.withDefaults()
	mk := func(label string, mut func(*tapejuke.Config)) []job {
		var jobs []job
		for i := range o.QueueLengths {
			cfg := base(o)
			cfg.DriveProfile = "dlt7000"
			mut(&cfg)
			p := applyIntensity(&cfg, o, i)
			jobs = append(jobs, job{series: label, param: p, cfg: cfg})
		}
		return jobs
	}
	var jobs []job
	jobs = append(jobs, mk("dyn-SP0", func(c *tapejuke.Config) { c.StartPos = 0 })...)
	jobs = append(jobs, mk("dyn-SP1", func(c *tapejuke.Config) { c.StartPos = 1 })...)
	jobs = append(jobs, mk("env-NR9", func(c *tapejuke.Config) {
		c.Algorithm = tapejuke.EnvelopeMaxBandwidth
		c.Placement = tapejuke.Vertical
		c.Replicas = 9
		c.StartPos = 1
	})...)
	rows, err := runAll(jobs, o.Workers, o.Replications)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:        "serpentine",
		Title:     "Extension: placement and replication on a serpentine (DLT-class) drive",
		ParamName: intensityName(o),
		Rows:      rows,
	}, nil
}

// MultiDrive sweeps the drive count of the jukebox (the paper's future
// work) across workload intensities.
func MultiDrive(o Options) (*Figure, error) {
	o = o.withDefaults()
	var jobs []job
	for _, drives := range []int{1, 2, 3, 4} {
		for i := range o.QueueLengths {
			cfg := base(o)
			cfg.Drives = drives
			p := applyIntensity(&cfg, o, i)
			jobs = append(jobs, job{series: fmt.Sprintf("drives-%d", drives), param: p, cfg: cfg})
		}
	}
	rows, err := runAll(jobs, o.Workers, o.Replications)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:        "multidrive",
		Title:     "Extension: multi-drive jukebox scaling (shared tapes, shared pending list)",
		ParamName: intensityName(o),
		Rows:      rows,
	}, nil
}

// GradualFill regenerates the Section 4.8 lifecycle table: the recommended
// layout versus the naive one at each occupancy, under the envelope
// scheduler. Row.Value carries the plan's replica count.
func GradualFill(o Options) (*Figure, error) {
	o = o.withDefaults()
	capacityMB := 10 * 7168.0
	var jobs []job
	for _, fill := range []float64{0.2, 0.4, 0.6, 0.8, 0.9, 0.97, 1.0} {
		planned := tapejuke.Config{
			Algorithm:  tapejuke.EnvelopeMaxBandwidth,
			DataMB:     fill * capacityMB,
			HorizonSec: o.HorizonSec,
			Seed:       o.Seed,
		}
		plannedCfg, _, err := tapejuke.PlanGradualFill(planned)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job{series: "recommended", param: fill, cfg: plannedCfg})

		naive := planned.WithDefaults()
		jobs = append(jobs, job{series: "naive", param: fill, cfg: naive})
	}
	rows, err := runAll(jobs, o.Workers, o.Replications)
	if err != nil {
		return nil, err
	}
	// Attach the replica counts to the recommended rows.
	for i, r := range rows {
		if r.Series != "recommended" {
			continue
		}
		cfg := tapejuke.Config{DataMB: r.Param * capacityMB}
		if _, plan, err := tapejuke.PlanGradualFill(cfg); err == nil {
			rows[i].Value = float64(plan.Replicas)
		}
	}
	return &Figure{
		ID:        "gradualfill",
		Title:     "Extension: the Section 4.8 gradual-fill procedure vs. a naive layout",
		ParamName: "fill_fraction",
		ValueName: "plan_replicas",
		Rows:      rows,
	}, nil
}
