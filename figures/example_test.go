package figures_test

import (
	"fmt"

	"tapejuke/figures"
)

// Regenerate one paper figure at a reduced horizon and read a point off it.
func ExampleByID() {
	f, err := figures.ByID("fig10a", figures.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, r := range f.Rows {
		if r.Series == "PH-10" && r.Param == 9 {
			fmt.Printf("E(PH-10, NR-9) = %.1f\n", r.Value)
		}
	}
	// Output:
	// E(PH-10, NR-9) = 1.9
}
