// Package figures regenerates every figure of the paper's evaluation
// (Section 4, Figures 1 and 3-10) from the tapejuke simulator. Each figure
// is a set of labelled series of rows; cmd/figures prints them as TSV and
// the repository benchmarks run scaled-down versions.
//
// The paper's graphs are parametric: the independent variable (usually the
// closed-model queue length) traces a curve through (throughput, delay)
// space, and a family of curves varies the quantity under study. Rows carry
// the parameter value and all three outputs so either rendering works.
package figures

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"tapejuke"
	"tapejuke/internal/stats"
	"tapejuke/internal/tapemodel"
)

// Row is one simulated point of a figure.
type Row struct {
	Series string  // curve label, e.g. "queue-60" or "dynamic-max-bandwidth"
	Param  float64 // the independent variable tracing the curve
	// Outputs (zero when not applicable to the figure):
	ThroughputKBps    float64
	RequestsPerMinute float64
	MeanResponseSec   float64
	Value             float64 // figure-specific scalar (locate seconds, E, cost-performance ratio)

	// 95% confidence half-widths across replications (zero when
	// Options.Replications <= 1).
	ThroughputCI95 float64
	ResponseCI95   float64
}

// Figure is a reproducible paper figure.
type Figure struct {
	ID        string // e.g. "fig3"
	Title     string
	ParamName string // meaning of Row.Param
	ValueName string // meaning of Row.Value, "" if unused
	Rows      []Row
}

// Options scales the simulation effort behind each figure.
type Options struct {
	// HorizonSec is the simulated duration per run (default 1,000,000 s;
	// the paper uses 10,000,000 s).
	HorizonSec float64
	// Seed offsets all run seeds for replication studies.
	Seed int64
	// QueueLengths are the closed-model intensities traced by the
	// parametric figures (default 20,40,...,140 as in the paper).
	QueueLengths []int
	// Open switches the parametric figures to the open-queuing model,
	// tracing mean interarrival times instead of queue lengths (an
	// extension for checking the paper's open-queuing remarks).
	Open bool
	// Workers bounds concurrent simulations (default: GOMAXPROCS).
	Workers int
	// Replications runs every simulated point this many times with
	// distinct seeds and reports means with 95% confidence half-widths
	// (default 1: single runs, no intervals).
	Replications int
}

func (o Options) withDefaults() Options {
	if o.HorizonSec == 0 {
		o.HorizonSec = 1_000_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.QueueLengths) == 0 {
		o.QueueLengths = []int{20, 40, 60, 80, 100, 120, 140}
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Replications == 0 {
		o.Replications = 1
	}
	return o
}

// openInterarrivals maps the closed-model queue lengths to open-model mean
// interarrival times of comparable intensity: light load for short queues,
// saturation for long ones.
func openInterarrivals(queues []int) []float64 {
	out := make([]float64, len(queues))
	for i, q := range queues {
		out[i] = 1600 / float64(q) // 80 s at q=20 down to ~11 s at q=140
	}
	return out
}

// job is one simulation to run for a figure.
type job struct {
	series string
	param  float64
	cfg    tapejuke.Config
}

// runAll executes jobs concurrently (each replicated `reps` times with
// distinct seeds) and returns mean rows in input order.
func runAll(jobs []job, workers, reps int) ([]Row, error) {
	if reps < 1 {
		reps = 1
	}
	type cell struct {
		tp, rpm, resp stats.Accumulator
	}
	cells := make([]cell, len(jobs))
	errs := make([]error, len(jobs)*reps)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range jobs {
		for rep := 0; rep < reps; rep++ {
			wg.Add(1)
			go func(i, rep int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				cfg := jobs[i].cfg
				cfg.Seed += int64(rep) * 7919
				res, err := tapejuke.Run(cfg)
				if err != nil {
					errs[i*reps+rep] = fmt.Errorf("%s param %v: %w", jobs[i].series, jobs[i].param, err)
					return
				}
				mu.Lock()
				cells[i].tp.Add(res.ThroughputKBps)
				cells[i].rpm.Add(res.RequestsPerMinute)
				cells[i].resp.Add(res.MeanResponseSec)
				mu.Unlock()
			}(i, rep)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rows := make([]Row, len(jobs))
	for i := range jobs {
		rows[i] = Row{
			Series:            jobs[i].series,
			Param:             jobs[i].param,
			ThroughputKBps:    cells[i].tp.Mean(),
			RequestsPerMinute: cells[i].rpm.Mean(),
			MeanResponseSec:   cells[i].resp.Mean(),
		}
		if reps > 1 {
			n := math.Sqrt(float64(reps))
			rows[i].ThroughputCI95 = 1.96 * cells[i].tp.StdDev() / n
			rows[i].ResponseCI95 = 1.96 * cells[i].resp.StdDev() / n
		}
	}
	return rows, nil
}

// base returns the paper's reference configuration (moderate skew, closed
// queuing, dynamic max-bandwidth) at the option's horizon.
func base(o Options) tapejuke.Config {
	return tapejuke.Config{
		HorizonSec: o.HorizonSec,
		Seed:       o.Seed,
	}.WithDefaults()
}

// applyIntensity sets the workload intensity on cfg: queue length q for
// closed models, or the matching interarrival time for open models.
func applyIntensity(cfg *tapejuke.Config, o Options, idx int) float64 {
	if o.Open {
		ia := openInterarrivals(o.QueueLengths)[idx]
		cfg.QueueLength = 0
		cfg.MeanInterarrivalSec = ia
		return ia
	}
	cfg.QueueLength = o.QueueLengths[idx]
	return float64(o.QueueLengths[idx])
}

// All regenerates every figure.
func All(o Options) ([]*Figure, error) {
	gens := []func(Options) (*Figure, error){
		Fig1, Fig3, Fig4, Fig5, Fig6, Fig7, Fig8, Fig9, Fig10a, Fig10b,
	}
	var out []*Figure
	for _, g := range gens {
		f, err := g(o)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// ByID regenerates one figure by identifier ("fig1", "fig3".."fig9",
// "fig10a", "fig10b").
func ByID(id string, o Options) (*Figure, error) {
	gens := map[string]func(Options) (*Figure, error){
		"fig1": Fig1, "fig3": Fig3, "fig4": Fig4, "fig5": Fig5,
		"fig6": Fig6, "fig7": Fig7, "fig8": Fig8, "fig9": Fig9,
		"fig10a": Fig10a, "fig10b": Fig10b,
		// Extension and methodology figures, not in the paper:
		"convergence": Convergence,
		"serpentine":  Serpentine,
		"multidrive":  MultiDrive,
		"gradualfill": GradualFill,
	}
	g, ok := gens[id]
	if !ok {
		ids := make([]string, 0, len(gens))
		for k := range gens {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		return nil, fmt.Errorf("figures: unknown figure %q (have %v)", id, ids)
	}
	return g(o)
}

// Fig1 tabulates the locate-time model (Figure 1): seconds to locate past k
// megabytes, forward and reverse, on the EXB-8505XL profile. Pure model
// evaluation, no simulation.
func Fig1(Options) (*Figure, error) {
	p := tapemodel.EXB8505XL()
	f := &Figure{
		ID:        "fig1",
		Title:     "Locate time as a function of distance (1 MB logical blocks)",
		ParamName: "distance_mb",
		ValueName: "locate_seconds",
	}
	distances := []float64{1, 2, 4, 8, 16, 24, 28, 29, 32, 64, 128, 256, 512, 1024, 2048, 4096, 7168}
	for _, d := range distances {
		f.Rows = append(f.Rows,
			Row{Series: "forward", Param: d, Value: p.LocateForward(d)},
			Row{Series: "reverse", Param: d, Value: p.LocateReverse(d)},
		)
	}
	return f, nil
}

// Fig3 sweeps the I/O transfer size at four workload intensities
// (PH-10 RH-40 NR-0 SP-0, dynamic max-bandwidth).
func Fig3(o Options) (*Figure, error) {
	o = o.withDefaults()
	queues := []int{20, 60, 100, 140}
	blocks := []float64{2, 4, 8, 16, 32, 64}
	var jobs []job
	for _, q := range queues {
		for _, b := range blocks {
			cfg := base(o)
			cfg.BlockMB = b
			cfg.QueueLength = q
			if o.Open {
				cfg.QueueLength = 0
				cfg.MeanInterarrivalSec = 1600 / float64(q)
			}
			jobs = append(jobs, job{series: fmt.Sprintf("queue-%d", q), param: b, cfg: cfg})
		}
	}
	rows, err := runAll(jobs, o.Workers, o.Replications)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:        "fig3",
		Title:     "The effect of transfer size (PH-10 RH-40 NR-0 SP-0)",
		ParamName: "block_mb",
		Rows:      rows,
	}, nil
}

// Fig4 compares all eleven simple schedulers without replication
// (PH-10 RH-40 NR-0 SP-0). The paper plots nine; Section 3.1 defines
// eleven, so all are reported.
func Fig4(o Options) (*Figure, error) {
	o = o.withDefaults()
	algs := []tapejuke.Algorithm{
		tapejuke.FIFO,
		tapejuke.StaticRoundRobin, tapejuke.StaticMaxRequests, tapejuke.StaticMaxBandwidth,
		tapejuke.StaticOldestMaxRequests, tapejuke.StaticOldestMaxBandwidth,
		tapejuke.DynamicRoundRobin, tapejuke.DynamicMaxRequests, tapejuke.DynamicMaxBandwidth,
		tapejuke.DynamicOldestMaxRequests, tapejuke.DynamicOldestMaxBandwidth,
	}
	var jobs []job
	for _, a := range algs {
		for i := range o.QueueLengths {
			cfg := base(o)
			cfg.Algorithm = a
			p := applyIntensity(&cfg, o, i)
			jobs = append(jobs, job{series: string(a), param: p, cfg: cfg})
		}
	}
	rows, err := runAll(jobs, o.Workers, o.Replications)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:        "fig4",
		Title:     "Relative performance of scheduling algorithms, no replication (PH-10 RH-40 NR-0 SP-0)",
		ParamName: intensityName(o),
		Rows:      rows,
	}, nil
}

// Fig5 studies hot-data placement without replication: horizontal layouts
// at SP in {0,0.25,0.5,0.75,1} plus the vertical layout, under dynamic
// max-bandwidth.
func Fig5(o Options) (*Figure, error) {
	o = o.withDefaults()
	var jobs []job
	for _, sp := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for i := range o.QueueLengths {
			cfg := base(o)
			cfg.StartPos = sp
			p := applyIntensity(&cfg, o, i)
			jobs = append(jobs, job{series: fmt.Sprintf("SP-%.2f", sp), param: p, cfg: cfg})
		}
	}
	for i := range o.QueueLengths {
		cfg := base(o)
		cfg.Placement = tapejuke.Vertical
		p := applyIntensity(&cfg, o, i)
		jobs = append(jobs, job{series: "vertical", param: p, cfg: cfg})
	}
	rows, err := runAll(jobs, o.Workers, o.Replications)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:        "fig5",
		Title:     "Throughput and latency as a function of hot data placement, no replication (PH-10 RH-40 NR-0)",
		ParamName: intensityName(o),
		Rows:      rows,
	}, nil
}

// Fig6 varies the number of replicas of hot data from 0 to 9 (vertical
// layout, replicas at the tape end, dynamic max-bandwidth).
func Fig6(o Options) (*Figure, error) {
	o = o.withDefaults()
	var jobs []job
	for nr := 0; nr <= 9; nr++ {
		for i := range o.QueueLengths {
			cfg := base(o)
			cfg.Placement = tapejuke.Vertical
			cfg.Replicas = nr
			cfg.StartPos = 1
			if nr == 0 {
				cfg.StartPos = 0 // best no-replication placement
			}
			p := applyIntensity(&cfg, o, i)
			jobs = append(jobs, job{series: fmt.Sprintf("NR-%d", nr), param: p, cfg: cfg})
		}
	}
	rows, err := runAll(jobs, o.Workers, o.Replications)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:        "fig6",
		Title:     "Throughput and latency as a function of the number of replicas (PH-10 RH-40, vertical, SP-1)",
		ParamName: intensityName(o),
		Rows:      rows,
	}, nil
}

// Fig7 varies the placement of replicas with full replication (NR-9,
// vertical), SP from 0 to 1.
func Fig7(o Options) (*Figure, error) {
	o = o.withDefaults()
	var jobs []job
	for _, sp := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for i := range o.QueueLengths {
			cfg := base(o)
			cfg.Placement = tapejuke.Vertical
			cfg.Replicas = 9
			cfg.StartPos = sp
			p := applyIntensity(&cfg, o, i)
			jobs = append(jobs, job{series: fmt.Sprintf("SP-%.2f", sp), param: p, cfg: cfg})
		}
	}
	rows, err := runAll(jobs, o.Workers, o.Replications)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:        "fig7",
		Title:     "Throughput and latency as a function of replica placement (PH-10 RH-40 NR-9, vertical)",
		ParamName: intensityName(o),
		Rows:      rows,
	}, nil
}

// Fig8 compares schedulers under full replication at the tape end
// (PH-10 RH-40 NR-9 SP-1, vertical): the three envelope algorithms against
// every simple algorithm.
func Fig8(o Options) (*Figure, error) {
	o = o.withDefaults()
	var jobs []job
	for _, a := range tapejuke.Algorithms() {
		for i := range o.QueueLengths {
			cfg := base(o)
			cfg.Algorithm = a
			cfg.Placement = tapejuke.Vertical
			cfg.Replicas = 9
			cfg.StartPos = 1
			p := applyIntensity(&cfg, o, i)
			jobs = append(jobs, job{series: string(a), param: p, cfg: cfg})
		}
	}
	rows, err := runAll(jobs, o.Workers, o.Replications)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:        "fig8",
		Title:     "Relative performance of scheduling algorithms with replication (PH-10 RH-40 NR-9 SP-1)",
		ParamName: intensityName(o),
		Rows:      rows,
	}, nil
}

// Fig9 studies the importance of skew: RH from 20 to 80 percent, with no
// replication (SP-0) and full replication (SP-1), both under the
// max-bandwidth envelope algorithm.
func Fig9(o Options) (*Figure, error) {
	o = o.withDefaults()
	var jobs []job
	for _, rh := range []float64{20, 40, 60, 80} {
		for _, full := range []bool{false, true} {
			for i := range o.QueueLengths {
				cfg := base(o)
				cfg.Algorithm = tapejuke.EnvelopeMaxBandwidth
				cfg.ReadHotPercent = rh
				label := fmt.Sprintf("RH-%.0f-norepl", rh)
				if full {
					cfg.Placement = tapejuke.Vertical
					cfg.Replicas = 9
					cfg.StartPos = 1
					label = fmt.Sprintf("RH-%.0f-full", rh)
				}
				p := applyIntensity(&cfg, o, i)
				jobs = append(jobs, job{series: label, param: p, cfg: cfg})
			}
		}
	}
	rows, err := runAll(jobs, o.Workers, o.Replications)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:        "fig9",
		Title:     "The relationship between skew and performance improvements (PH-10, envelope-max-bandwidth)",
		ParamName: intensityName(o),
		Rows:      rows,
	}, nil
}

// Fig10a tabulates the storage expansion factor E = 1 + NR*PH/100 as a
// function of the replica count for several hot fractions. Analytic.
func Fig10a(Options) (*Figure, error) {
	f := &Figure{
		ID:        "fig10a",
		Title:     "Storage expansion factor of replication",
		ParamName: "replicas",
		ValueName: "expansion_factor",
	}
	for _, ph := range []float64{5, 10, 20, 30} {
		for nr := 0; nr <= 9; nr++ {
			cfg := tapejuke.Config{HotPercent: ph, Replicas: nr}
			f.Rows = append(f.Rows, Row{
				Series: fmt.Sprintf("PH-%.0f", ph),
				Param:  float64(nr),
				Value:  cfg.ExpansionFactor(),
			})
		}
	}
	return f, nil
}

// Fig10b computes the cost-performance ratio of replication versus no
// replication for NR in 0..9 at four skews (PH-10, queue 60 per
// non-replicated jukebox, scaled by 1/E for the replicated farm).
func Fig10b(o Options) (*Figure, error) {
	o = o.withDefaults()
	const baseQueue = 60
	skews := []float64{40, 60, 80, 95}

	// Baselines: NR-0, SP-0 horizontal at full queue, one per skew.
	baselineRes := make(map[float64]float64)
	var jobs []job
	for _, rh := range skews {
		for nr := 0; nr <= 9; nr++ {
			cfg := base(o)
			cfg.Algorithm = tapejuke.EnvelopeMaxBandwidth
			cfg.ReadHotPercent = rh
			cfg.Replicas = nr
			if nr > 0 {
				cfg.Placement = tapejuke.Vertical
				cfg.StartPos = 1
			}
			e := cfg.ExpansionFactor()
			q, err := tapejuke.ScaledQueueLength(baseQueue, e)
			if err != nil {
				return nil, err
			}
			cfg.QueueLength = q
			cfg.MeanInterarrivalSec = 0
			jobs = append(jobs, job{series: fmt.Sprintf("RH-%.0f", rh), param: float64(nr), cfg: cfg})
		}
	}
	rows, err := runAll(jobs, o.Workers, o.Replications)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		if r.Param == 0 {
			baselineRes[seriesSkew(r.Series)] = r.ThroughputKBps
		}
	}
	f := &Figure{
		ID:        "fig10b",
		Title:     "Cost-performance of replication vs. no replication (PH-10, queue 60/E)",
		ParamName: "replicas",
		ValueName: "cost_performance_ratio",
	}
	for _, r := range rows {
		baseT := baselineRes[seriesSkew(r.Series)]
		if baseT <= 0 {
			return nil, fmt.Errorf("figures: missing baseline for %s", r.Series)
		}
		r.Value = r.ThroughputKBps / baseT
		f.Rows = append(f.Rows, r)
	}
	return f, nil
}

func seriesSkew(series string) float64 {
	var rh float64
	fmt.Sscanf(series, "RH-%f", &rh)
	return rh
}

func intensityName(o Options) string {
	if o.Open {
		return "mean_interarrival_s"
	}
	return "queue_length"
}
