package tapejuke

import (
	"fmt"

	"tapejuke/internal/sim"
)

// Event is one simulator occurrence (tape switch, block read, request
// completion, idle period, or delta-write flush), reported in
// simulated-time order.
type Event = sim.Event

// EventKind labels an Event.
type EventKind = sim.EventKind

// Event kinds.
const (
	EventSwitch     = sim.EventSwitch
	EventRead       = sim.EventRead
	EventComplete   = sim.EventComplete
	EventIdle       = sim.EventIdle
	EventWriteFlush = sim.EventWriteFlush
)

// Observer receives simulator events inline; see ObserverFunc for the
// function adapter. Observers must be fast.
type Observer = sim.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = sim.ObserverFunc

// WritePolicy names a delta-write flush policy for the write-model
// extension: the paper assumes writes buffer in disk-resident delta files
// and reach tape "during idle time or piggybacked on the read schedule".
type WritePolicy string

const (
	// WritePiggyback flushes a tape's buffered deltas whenever a read sweep
	// on that tape completes.
	WritePiggyback WritePolicy = "piggyback"
	// WriteIdleOnly flushes only while the jukebox would otherwise idle.
	WriteIdleOnly WritePolicy = "idle-only"
	// WritePiggybackAndIdle does both.
	WritePiggybackAndIdle WritePolicy = "piggyback+idle"
)

// WriteConfig enables the write-model extension on a Config.
type WriteConfig struct {
	// MeanInterarrivalSec is the mean gap between delta-block writes
	// (Poisson); zero disables the extension.
	MeanInterarrivalSec float64
	// Policy picks when buffers drain (default piggyback).
	Policy WritePolicy
	// ReserveMB is carved off the end of every tape as a circular delta
	// log (default 256 MB).
	ReserveMB float64
	// FlushThreshold, when positive, force-drains the fullest tape once
	// that many blocks are buffered.
	FlushThreshold int
}

func (w WriteConfig) toSim(sc *sim.Config) error {
	if w.MeanInterarrivalSec == 0 {
		return nil
	}
	sc.WriteMeanInterarrival = w.MeanInterarrivalSec
	sc.WriteReserveMB = w.ReserveMB
	sc.WriteFlushThreshold = w.FlushThreshold
	switch w.Policy {
	case "", WritePiggyback:
		sc.WritePolicy = sim.WritePiggyback
	case WriteIdleOnly:
		sc.WritePolicy = sim.WriteIdleOnly
	case WritePiggybackAndIdle:
		sc.WritePolicy = sim.WritePiggybackAndIdle
	default:
		return fmt.Errorf("tapejuke: unknown write policy %q", w.Policy)
	}
	return nil
}
