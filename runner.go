package tapejuke

import (
	"tapejuke/internal/sched"
	"tapejuke/internal/sim"
	"tapejuke/internal/tapemodel"
)

// Runner executes simulations like Run while keeping the expensive or
// recyclable parts of a run alive between calls: the data layout and the
// dense cost table (cached by configuration, so replications and parameter
// sweeps that share them are built once), and the simulator's scratch
// storage -- scheduling state, request free lists, sample reservoirs, the
// event calendar -- which is reset instead of reallocated. Results are
// identical to Run for every configuration; only the setup cost changes.
//
// A Runner is not safe for concurrent use. The intended shape is one
// Runner per worker goroutine, each draining a queue of configurations
// (this is what the figures experiment engine does).
type Runner struct {
	sess     *sim.Session
	profName string
	prof     tapemodel.Positioner
	scheds   map[Algorithm]sched.Scheduler
}

// NewRunner creates an empty Runner.
func NewRunner() *Runner { return &Runner{sess: sim.NewSession()} }

// Run simulates the configuration and returns its metrics, reusing the
// Runner's cached state where the configuration allows.
func (r *Runner) Run(c Config) (*Result, error) {
	sc, err := r.prepare(c)
	if err != nil {
		return nil, err
	}
	return r.sess.Run(*sc)
}

// prepare translates c into the internal configuration and applies the
// Runner's reuse policies (profile pinning, scheduler recycling) without
// starting the run. The farm front end uses the split so it can inject a
// shard's routed trace streams into the prepared configuration and then
// run it on this Runner's session.
func (r *Runner) prepare(c Config) (*sim.Config, error) {
	sc, err := c.toSim()
	if err != nil {
		return nil, err
	}
	// Pin one Positioner instance per profile name: toSim resolves a fresh
	// instance every call, and the session's cost-table cache compares
	// profiles by identity, so without pinning it could never hit.
	name := driveName(c.DriveProfile)
	if r.prof != nil && name == r.profName {
		sc.Profile = r.prof
	} else {
		r.profName, r.prof = name, sc.Profile
	}
	// Reuse one scheduler per algorithm: the envelope family keeps ~35 KB of
	// builder and selection scratch that is expensive to re-grow every run.
	// Only single-drive runs qualify (multi-drive builds one scheduler per
	// drive through the factory), and only schedulers that are safely
	// resettable -- see the reuse rules on sched.RunResetter.
	if sc.SchedulerFactory == nil {
		alg := c.Algorithm
		if alg == "" {
			alg = DynamicMaxBandwidth
		}
		if cached, ok := r.scheds[alg]; ok {
			if reusable, rr := schedulerReusable(cached); reusable {
				if rr != nil {
					rr.ResetRun()
				}
				sc.Scheduler = cached
			}
		} else {
			if r.scheds == nil {
				r.scheds = make(map[Algorithm]sched.Scheduler)
			}
			r.scheds[alg] = sc.Scheduler
		}
	}
	return sc, nil
}

// schedulerReusable reports whether a scheduler instance may serve another
// run, and the RunResetter to invoke first (nil for the stateless
// schedulers, which need no reset).
func schedulerReusable(s sched.Scheduler) (bool, sched.RunResetter) {
	switch sc := s.(type) {
	case *sched.FIFO, *sched.Static, *sched.Dynamic:
		return true, nil // stateless across runs
	case sched.RunResetter:
		return true, sc
	}
	return false, nil
}
