// Gradualfill walks a jukebox through its life, from nearly empty to
// overflowing, following the paper's closing recommendation (Section 4.8):
// keep the hottest data on a dedicated tape, append replicas of it after
// the data on the other tapes while spare capacity lasts, and recapture
// that space as the archive grows. At every occupancy it compares the
// recommended layout against a naive one (no replication) under the
// envelope scheduler.
package main

import (
	"fmt"
	"log"

	"tapejuke"
)

func main() {
	const capacityMB = 10 * 7168.0

	fmt.Println("A jukebox's life under the Section 4.8 gradual-fill procedure")
	fmt.Printf("%6s %10s %4s %12s %12s %8s  %s\n",
		"fill", "stage", "NR", "plan KB/s", "naive KB/s", "gain", "rationale")

	for _, fill := range []float64{0.2, 0.4, 0.6, 0.8, 0.9, 0.97, 1.0} {
		base := tapejuke.Config{
			Algorithm:  tapejuke.EnvelopeMaxBandwidth,
			DataMB:     fill * capacityMB,
			HorizonSec: 600_000,
		}

		planned, plan, err := tapejuke.PlanGradualFill(base)
		if err != nil {
			log.Fatal(err)
		}
		pres, err := tapejuke.Run(planned)
		if err != nil {
			log.Fatal(err)
		}

		naive := base.WithDefaults() // horizontal, no replication, SP 0
		nres, err := tapejuke.Run(naive)
		if err != nil {
			log.Fatal(err)
		}

		gain := 100 * (pres.ThroughputKBps/nres.ThroughputKBps - 1)
		fmt.Printf("%5.0f%% %10s %4d %12.1f %12.1f %+7.1f%%  %s\n",
			plan.Fill*100, plan.Stage, plan.Replicas,
			pres.ThroughputKBps, nres.ThroughputKBps, gain, plan.Rationale)
	}

	fmt.Println()
	fmt.Println("Replication bought from spare capacity is a free win early in the")
	fmt.Println("timeline and degrades gracefully to the plain layout as space runs out.")
}
