// Archiver models a surveillance/telemetry archive that both reads and
// writes: analysts retrieve historical footage while new delta blocks
// trickle in continuously. The paper's design directs writes to
// disk-resident delta files and drains them to tape "during idle time or
// piggybacked on the read schedule"; this example compares those flush
// policies and shows what each costs the readers.
//
// It also demonstrates the Observer hook by tallying the jukebox's
// operation mix during one run.
package main

import (
	"fmt"
	"log"

	"tapejuke"
)

func main() {
	// A moderately busy open system: a read every ~150 s, a delta write
	// every ~300 s.
	base := tapejuke.Config{
		MeanInterarrivalSec: 150,
		Algorithm:           tapejuke.EnvelopeMaxBandwidth,
		Placement:           tapejuke.Vertical,
		Replicas:            9,
		StartPos:            1,
		HorizonSec:          1_000_000,
	}

	fmt.Println("Delta-write flush policies (open model: reads every ~150 s, writes every ~300 s)")
	fmt.Printf("  %-16s %10s %12s %14s %14s %12s\n",
		"policy", "read KB/s", "read wait", "writes flushed", "write delay", "peak buffer")
	for _, policy := range []tapejuke.WritePolicy{
		tapejuke.WritePiggyback,
		tapejuke.WriteIdleOnly,
		tapejuke.WritePiggybackAndIdle,
	} {
		cfg := base
		cfg.Writes = tapejuke.WriteConfig{
			MeanInterarrivalSec: 300,
			Policy:              policy,
			FlushThreshold:      200, // relief valve if flushing falls behind
		}
		res, err := tapejuke.Run(cfg.WithDefaults())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s %10.1f %10.0f s %14d %12.0f s %12d\n",
			policy, res.ThroughputKBps, res.MeanResponseSec,
			res.WritesFlushed, res.MeanWriteDelaySec, res.MaxBufferedWrites)
	}

	// Watch one run through the Observer hook: how the drive spends its
	// operations.
	fmt.Println()
	fmt.Println("Operation mix during the piggyback+idle run:")
	counts := map[tapejuke.EventKind]int{}
	cfg := base
	cfg.Writes = tapejuke.WriteConfig{
		MeanInterarrivalSec: 300,
		Policy:              tapejuke.WritePiggybackAndIdle,
	}
	cfg.Observer = tapejuke.ObserverFunc(func(ev tapejuke.Event) {
		counts[ev.Kind]++
	})
	if _, err := tapejuke.Run(cfg.WithDefaults()); err != nil {
		log.Fatal(err)
	}
	for _, k := range []tapejuke.EventKind{
		tapejuke.EventRead, tapejuke.EventSwitch,
		tapejuke.EventWriteFlush, tapejuke.EventIdle,
	} {
		fmt.Printf("  %-12s %6d\n", k, counts[k])
	}
}
