// Telco models a telecommunication provider's call-record archive, another
// workload from the paper's introduction: billing detail and fraud
// signatures are kept on tape for years, and two very different consumers
// read them back.
//
//   - The nightly fraud scan is a batch job: a fixed pool of worker
//     processes keeps a constant number of block reads outstanding. This is
//     the closed-queuing model.
//   - Daytime analysts issue sporadic ad-hoc queries: arrivals are Poisson
//     and the analyst cares about response time, not throughput. This is
//     the open-queuing model.
//
// The example runs both against the same jukebox and shows how the choice
// of scheduler changes what each consumer experiences -- including the
// paper's observation that under open queuing at high load, better
// scheduling improves latency but not throughput.
package main

import (
	"fmt"
	"log"

	"tapejuke"
)

func main() {
	// Recent months are hot (10% of data, 40% of reads).
	archive := tapejuke.Config{
		HotPercent:     10,
		ReadHotPercent: 40,
		Placement:      tapejuke.Vertical,
		Replicas:       9,
		StartPos:       1,
		HorizonSec:     1_000_000,
	}

	algorithms := []tapejuke.Algorithm{
		tapejuke.FIFO,
		tapejuke.DynamicMaxBandwidth,
		tapejuke.EnvelopeMaxBandwidth,
	}

	fmt.Println("Nightly fraud scan (closed model, 80 worker processes)")
	fmt.Printf("  %-28s %14s %16s\n", "scheduler", "KB/s", "scan of 10 GB")
	for _, a := range algorithms {
		cfg := archive
		cfg.Algorithm = a
		cfg.QueueLength = 80
		res, err := tapejuke.Run(cfg.WithDefaults())
		if err != nil {
			log.Fatal(err)
		}
		hours := 10 * 1024 * 1024 / res.ThroughputKBps / 3600
		fmt.Printf("  %-28s %14.1f %13.1f h\n", a, res.ThroughputKBps, hours)
	}
	fmt.Println()

	fmt.Println("Analyst queries (open model, Poisson arrivals)")
	fmt.Printf("  %-28s %12s %12s %12s\n", "scheduler", "load", "KB/s", "mean wait")
	for _, mean := range []float64{300, 60} {
		load := "light"
		if mean < 100 {
			load = "heavy"
		}
		for _, a := range algorithms {
			cfg := archive
			cfg.Algorithm = a
			cfg.QueueLength = 0
			cfg.MeanInterarrivalSec = mean
			res, err := tapejuke.Run(cfg.WithDefaults())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-28s %12s %12.1f %10.0f s\n",
				a, load, res.ThroughputKBps, res.MeanResponseSec)
		}
	}
	fmt.Println()
	fmt.Println("Note the open-queuing effect from Sections 4.2/4.4: once arrivals")
	fmt.Println("saturate the drive, every scheduler moves the same bytes per second;")
	fmt.Println("the good ones just make the analysts wait far less for them.")
}
