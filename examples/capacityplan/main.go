// Capacityplan reproduces the decision procedure of Section 4.8 as a
// planning tool: given a jukebox farm and a workload skew, how many
// replicas of hot data pay for themselves?
//
// For each replica count it reports the storage expansion factor, the
// per-jukebox throughput with the workload spread across the enlarged farm
// (queue 60/E), and the cost-performance ratio against the non-replicated
// baseline. It then prints the paper's recommendation for the measured
// skew.
package main

import (
	"fmt"
	"log"

	"tapejuke"
)

func main() {
	const baseQueue = 60

	for _, rh := range []float64{40, 80} {
		skew := "moderate"
		if rh >= 70 {
			skew = "high"
		}
		fmt.Printf("Skew: %.0f%% of requests to the hot 10%% of data (%s skew)\n", rh, skew)
		fmt.Printf("  %-3s %-6s %-7s %-12s %-10s\n", "NR", "E", "queue", "KB/s per box", "cost-perf")

		var baseline *tapejuke.Result
		best, bestNR := 0.0, 0
		for nr := 0; nr <= 9; nr++ {
			cfg := tapejuke.Config{
				Algorithm:      tapejuke.EnvelopeMaxBandwidth,
				HotPercent:     10,
				ReadHotPercent: rh,
				Replicas:       nr,
				HorizonSec:     1_000_000,
			}
			if nr > 0 {
				cfg.Placement = tapejuke.Vertical
				cfg.StartPos = 1 // replicas at the tape ends (Section 4.5)
			}
			e := cfg.ExpansionFactor()
			q, err := tapejuke.ScaledQueueLength(baseQueue, e)
			if err != nil {
				log.Fatal(err)
			}
			cfg.QueueLength = q

			res, err := tapejuke.Run(cfg.WithDefaults())
			if err != nil {
				log.Fatal(err)
			}
			ratio := 1.0
			if nr == 0 {
				baseline = res
			} else {
				ratio, err = tapejuke.CostPerformanceRatio(res, baseline)
				if err != nil {
					log.Fatal(err)
				}
			}
			if ratio > best {
				best, bestNR = ratio, nr
			}
			fmt.Printf("  %-3d %-6.2f %-7d %-12.1f %-10.3f\n",
				nr, e, q, res.ThroughputKBps, ratio)
		}

		switch {
		case best > 1.02:
			fmt.Printf("  => replicate: NR=%d improves performance per dollar by %.0f%%.\n",
				bestNR, (best-1)*100)
		case best >= 0.98:
			fmt.Println("  => cost-neutral: replicate into spare capacity only (free speedup).")
		default:
			fmt.Println("  => do not buy capacity for replicas; use spare space if it exists.")
		}
		fmt.Println()
	}
}
