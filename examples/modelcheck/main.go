// Modelcheck cross-validates the two independent performance models in
// this repository: the discrete-event simulator (Run) and the closed-form
// analytic estimate (Analyze). They implement the same physics by entirely
// different means, so their agreement is evidence that both are right --
// the same methodology the paper uses when it validates its locate-time
// model against hardware measurements before trusting the simulator.
package main

import (
	"fmt"
	"log"

	"tapejuke"
)

func main() {
	fmt.Println("Closed-form analysis vs. event-driven simulation")
	fmt.Println("(uniform access, no replication, static fair rotation assumed by the model)")
	fmt.Println()
	fmt.Printf("%8s %14s %14s %10s %22s\n",
		"queue", "analytic KB/s", "simulated KB/s", "delta", "batch (model vs sim)")

	for _, queue := range []int{20, 40, 60, 80, 100, 120, 140} {
		cfg := tapejuke.Config{
			HotPercent:  0, // uniform: the regime the closed form models best
			Algorithm:   tapejuke.StaticRoundRobin,
			QueueLength: queue,
			HorizonSec:  600_000,
		}.WithDefaults()

		est, err := tapejuke.Analyze(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tapejuke.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		simBatch := float64(res.Completed) / float64(res.TapeSwitches)
		delta := 100 * (res.ThroughputKBps - est.ThroughputKBps) / est.ThroughputKBps
		fmt.Printf("%8d %14.1f %14.1f %9.1f%% %10.1f vs %.1f\n",
			queue, est.ThroughputKBps, res.ThroughputKBps, delta,
			est.RequestsPerSweep, simBatch)
	}

	fmt.Println()
	fmt.Println("The sawtooth batch model (k = 2*queue/tapes) and the sweep-extent")
	fmt.Println("formula E[max of k] track the simulator within a few percent across")
	fmt.Println("the whole intensity range -- before any scheduling cleverness.")
}
