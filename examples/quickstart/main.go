// Quickstart: simulate the paper's reference jukebox (ten 7 GB tapes, one
// Exabyte EXB-8505XL drive) under a moderately skewed closed workload with
// the recommended scheduler, and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"tapejuke"
)

func main() {
	// Start from the paper's defaults: 16 MB blocks, PH-10/RH-40 skew,
	// closed queue of 60, 2M simulated seconds.
	cfg := tapejuke.Config{
		Algorithm: tapejuke.EnvelopeMaxBandwidth, // best overall (Section 4.6)
	}.WithDefaults()

	res, err := tapejuke.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	stream, err := tapejuke.StreamingRateKBps(cfg.DriveProfile)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheduler:       %s\n", res.SchedulerName)
	fmt.Printf("throughput:      %.1f KB/s (%.0f%% of the drive's %.0f KB/s streaming rate)\n",
		res.ThroughputKBps, 100*res.ThroughputKBps/stream, stream)
	fmt.Printf("requests/minute: %.3f\n", res.RequestsPerMinute)
	fmt.Printf("mean response:   %.0f s   p95: %.0f s\n", res.MeanResponseSec, res.P95ResponseSec)
	fmt.Printf("tape switches:   %d over %.0f measured seconds\n", res.TapeSwitches, res.MeasuredSeconds)
}
