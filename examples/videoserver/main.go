// Videoserver models the tape tier of a video-on-demand archive, one of the
// workloads that motivates the paper: a small set of popular titles draws
// most of the traffic, the long tail of the catalogue draws the rest.
//
// The example evaluates the paper's headline recommendation on this
// workload: replicate the popular titles on every tape and park the
// replicas at the tape ends, using the spare capacity the archive already
// has. It compares four deployments under an increasingly busy restore
// queue and reports how much the "free" replication buys.
package main

import (
	"fmt"
	"log"

	"tapejuke"
)

type deployment struct {
	name string
	cfg  tapejuke.Config
}

func main() {
	// The archive: a 10-tape jukebox of 7 GB tapes storing video segments
	// as 16 MB blocks. Ten percent of titles are "popular" and take 60% of
	// the restore requests -- a strong but realistic popularity skew.
	baseCfg := tapejuke.Config{
		HotPercent:     10,
		ReadHotPercent: 60,
		HorizonSec:     1_000_000,
	}

	deployments := []deployment{
		{
			name: "naive: popular titles scattered, FIFO restores",
			cfg: with(baseCfg, func(c *tapejuke.Config) {
				c.Algorithm = tapejuke.FIFO
			}),
		},
		{
			name: "scheduled: dynamic max-bandwidth, popular titles at tape starts",
			cfg: with(baseCfg, func(c *tapejuke.Config) {
				c.Algorithm = tapejuke.DynamicMaxBandwidth
				c.StartPos = 0
			}),
		},
		{
			name: "replicated: copies of popular titles at every tape's end",
			cfg: with(baseCfg, func(c *tapejuke.Config) {
				c.Algorithm = tapejuke.DynamicMaxBandwidth
				c.Placement = tapejuke.Vertical
				c.Replicas = 9
				c.StartPos = 1
			}),
		},
		{
			name: "replicated + envelope scheduling (paper's recommendation)",
			cfg: with(baseCfg, func(c *tapejuke.Config) {
				c.Algorithm = tapejuke.EnvelopeMaxBandwidth
				c.Placement = tapejuke.Vertical
				c.Replicas = 9
				c.StartPos = 1
			}),
		},
	}

	fmt.Println("Restore performance by deployment (closed queue of concurrent restores)")
	fmt.Println()
	for _, queue := range []int{20, 60, 140} {
		fmt.Printf("--- %d concurrent restore jobs ---\n", queue)
		var baseline float64
		for i, d := range deployments {
			cfg := d.cfg
			cfg.QueueLength = queue
			cfg = cfg.WithDefaults()
			res, err := tapejuke.Run(cfg)
			if err != nil {
				log.Fatalf("%s: %v", d.name, err)
			}
			gain := ""
			if i == 0 {
				baseline = res.ThroughputKBps
			} else if baseline > 0 {
				gain = fmt.Sprintf("  (%.1fx naive)", res.ThroughputKBps/baseline)
			}
			fmt.Printf("  %-62s %7.1f KB/s, mean wait %6.0f s%s\n",
				d.name, res.ThroughputKBps, res.MeanResponseSec, gain)
		}
		fmt.Println()
	}

	e := deployments[2].cfg.ExpansionFactor()
	fmt.Printf("Storage cost of full replication: %.1fx base data size.\n", e)
	fmt.Println("If that space is spare capacity, the speedup above is free (Section 4.8).")
}

func with(c tapejuke.Config, f func(*tapejuke.Config)) tapejuke.Config {
	f(&c)
	return c
}
