package tapejuke

import (
	"errors"

	"tapejuke/internal/layout"
	"tapejuke/internal/lifecycle"
)

// FillStage names a phase of the paper's gradual-fill procedure.
type FillStage = lifecycle.Stage

// Gradual-fill stages (Section 4.8).
const (
	FillEarly     = lifecycle.StageEarly
	FillPartial   = lifecycle.StagePartial
	FillRecapture = lifecycle.StageRecapture
)

// FillPlan reports what the gradual-fill procedure decided.
type FillPlan struct {
	Stage     FillStage
	Fill      float64 // base data as a fraction of raw capacity
	Replicas  int
	Rationale string
}

// PlanGradualFill applies the paper's closing recommendation (Section 4.8)
// to a partially filled jukebox: cfg.DataMB must be set to the base data
// volume. It returns a copy of cfg with the layout fields (Placement,
// Replicas, StartPos, PackAfterData) set as the procedure prescribes —
// a dedicated hot tape and replicas appended after the data while spare
// capacity allows, degrading gracefully to a plain horizontal layout as
// the jukebox fills — together with the plan and its rationale.
func PlanGradualFill(cfg Config) (Config, *FillPlan, error) {
	cfg = cfg.WithDefaults()
	if cfg.DataMB <= 0 {
		return cfg, nil, errors.New("tapejuke: PlanGradualFill needs DataMB")
	}
	capBlocks := int(cfg.TapeCapMB / cfg.BlockMB)
	dataBlocks := int(cfg.DataMB / cfg.BlockMB)
	rec, err := lifecycle.Plan(cfg.Tapes, capBlocks, dataBlocks, cfg.HotPercent)
	if err != nil {
		return cfg, nil, err
	}
	cfg.Replicas = rec.Replicas
	cfg.StartPos = rec.StartPos
	cfg.PackAfterData = rec.Packed
	if rec.Kind == layout.Vertical {
		cfg.Placement = Vertical
	} else {
		cfg.Placement = Horizontal
	}
	return cfg, &FillPlan{
		Stage:     rec.Stage,
		Fill:      rec.Fill,
		Replicas:  rec.Replicas,
		Rationale: rec.Rationale,
	}, nil
}
